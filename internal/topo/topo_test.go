package topo

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/netsim"
)

func TestMbps(t *testing.T) {
	spec := Mbps(10, 5*netsim.Millisecond)
	if spec.RateBps != 10_000_000 || spec.Delay != 5*netsim.Millisecond {
		t.Fatalf("Mbps = %+v", spec)
	}
}

func TestAutoIDsAndAddressing(t *testing.T) {
	sim := netsim.New(1)
	n := NewNetwork(sim)
	s1 := n.AddSwitch(asic.Config{})
	s2 := n.AddSwitch(asic.Config{})
	if s1.ID() != 1 || s2.ID() != 2 {
		t.Fatalf("switch ids: %d, %d", s1.ID(), s2.ID())
	}
	h1 := n.AddHost()
	h2 := n.AddHost()
	if h1.MAC == h2.MAC || h1.IP == h2.IP {
		t.Fatal("hosts share addresses")
	}
}

func TestPortAllocation(t *testing.T) {
	sim := netsim.New(1)
	n := NewNetwork(sim)
	a := n.AddSwitch(asic.Config{Ports: 3})
	b := n.AddSwitch(asic.Config{Ports: 3})
	ap, bp := n.LinkSwitches(a, b, Mbps(10, 0))
	if ap != 0 || bp != 0 {
		t.Fatalf("first link ports: %d, %d", ap, bp)
	}
	h := n.AddHost()
	hp := n.LinkHost(h, a, Mbps(10, 0))
	if hp != 1 {
		t.Fatalf("host port = %d", hp)
	}
	att := n.AttachmentOf(h)
	if att.Switch != a || att.Port != 1 {
		t.Fatalf("attachment = %+v", att)
	}
	// Exhaust a's ports: one more link fits, the next panics.
	n.LinkHost(n.AddHost(), a, Mbps(10, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("port exhaustion did not panic")
		}
	}()
	n.LinkHost(n.AddHost(), a, Mbps(10, 0))
}

func TestLineConnectivity(t *testing.T) {
	sim := netsim.New(1)
	n, src, dst, sws := Line(sim, 4, Mbps(100, 0), Mbps(100, 0), asic.Config{})
	if len(sws) != 4 || len(n.Hosts) != 2 {
		t.Fatalf("line shape: %d switches, %d hosts", len(sws), len(n.Hosts))
	}
	n.PrimeL2(netsim.Millisecond)
	src.Send(src.NewPacket(dst.MAC, dst.IP, 1, 2, 10))
	sim.RunUntil(sim.Now() + 100*netsim.Millisecond)
	if dst.Received < 2 { // broadcast + data
		t.Fatalf("dst received %d", dst.Received)
	}
}

func TestStarConnectivity(t *testing.T) {
	sim := netsim.New(1)
	n, hosts, sw := Star(sim, 5, Mbps(100, 0), asic.Config{Ports: 8})
	if len(hosts) != 5 || sw == nil {
		t.Fatal("star shape wrong")
	}
	n.PrimeL2(netsim.Millisecond)
	hosts[0].Send(hosts[0].NewPacket(hosts[4].MAC, hosts[4].IP, 1, 2, 10))
	sim.RunUntil(sim.Now() + 50*netsim.Millisecond)
	if hosts[4].Received < 5 { // 4 broadcasts + data
		t.Fatalf("received %d", hosts[4].Received)
	}
}

func TestDumbbellShape(t *testing.T) {
	sim := netsim.New(1)
	n, senders, receivers, a, b := Dumbbell(sim, 3, Mbps(100, 0), Mbps(10, 0), asic.Config{})
	if len(senders) != 3 || len(receivers) != 3 {
		t.Fatal("dumbbell hosts wrong")
	}
	for _, s := range senders {
		if n.AttachmentOf(s).Switch != a {
			t.Fatal("sender on wrong side")
		}
	}
	for _, r := range receivers {
		if n.AttachmentOf(r).Switch != b {
			t.Fatal("receiver on wrong side")
		}
	}
	n.PrimeL2(netsim.Millisecond)
	senders[0].Send(senders[0].NewPacket(receivers[0].MAC, receivers[0].IP, 1, 2, 10))
	sim.RunUntil(sim.Now() + 100*netsim.Millisecond)
	if receivers[0].Received == 0 {
		t.Fatal("no cross-bottleneck delivery")
	}
}

func TestLeafSpineShape(t *testing.T) {
	sim := netsim.New(1)
	n, hosts, leaves, spines := LeafSpine(sim, 2, 2, 2, Mbps(100, 0), Mbps(100, 0), asic.Config{})
	if len(leaves) != 2 || len(spines) != 2 {
		t.Fatal("fabric shape wrong")
	}
	if len(hosts) != 2 || len(hosts[0]) != 2 {
		t.Fatal("host grid wrong")
	}
	// Hosts hang off leaves; leaf ports 0..spines-1 go to spines.
	if n.AttachmentOf(hosts[0][0]).Switch != leaves[0] {
		t.Fatal("host not on its leaf")
	}
	if n.AttachmentOf(hosts[0][0]).Port < 2 {
		t.Fatal("host port overlaps spine uplinks")
	}
}
