// Package topo builds simulated networks out of asic switches, endhost
// hosts and netsim links.  It provides the standard shapes the
// experiments use: a line of switches (Figure 1), a dumbbell with one
// bottleneck (Figure 2), an incast star (§2.1) and a two-tier
// leaf-spine fabric (§2.3).
package topo

import (
	"fmt"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// LinkSpec describes one full-duplex link.
type LinkSpec struct {
	RateBps int64
	Delay   netsim.Time
}

// Mbps builds a LinkSpec for a rate in megabits/second.
func Mbps(rate float64, delay netsim.Time) LinkSpec {
	return LinkSpec{RateBps: int64(rate * 1e6), Delay: delay}
}

// Attachment records where a host plugs into the fabric.
type Attachment struct {
	Switch *asic.Switch
	Port   int
}

// Network is a constructed topology.
type Network struct {
	Sim      *netsim.Sim
	Switches []*asic.Switch
	Hosts    []*endhost.Host

	attach   map[*endhost.Host]Attachment
	nextPort map[*asic.Switch]int
	nextID   uint32
	nextHost uint64

	// Telemetry adopted from the first switch Config that carries it
	// (or set directly before wiring): new channels get the tracer
	// with a sequential link id so span logs identify each direction.
	trace    *obs.Tracer
	nextLink uint32
}

// SetTrace attaches the packet-lifecycle tracer to the topology; every
// channel created afterwards records link serialization, loss and
// delivery events under a sequential link id.
func (n *Network) SetTrace(tr *obs.Tracer) { n.trace = tr }

// traceChannel attaches the network tracer to a freshly built channel.
func (n *Network) traceChannel(ch *netsim.Channel) *netsim.Channel {
	if n.trace != nil {
		n.nextLink++
		ch.SetTrace(n.trace, n.nextLink)
	}
	return ch
}

// NewNetwork starts an empty topology on sim.
func NewNetwork(sim *netsim.Sim) *Network {
	return &Network{
		Sim:      sim,
		attach:   make(map[*endhost.Host]Attachment),
		nextPort: make(map[*asic.Switch]int),
	}
}

// AddSwitch creates a switch.  A zero cfg.ID is auto-assigned 1, 2, ...
// in creation order; cfg.Ports defaults to 16 so topology construction
// never runs out.
func (n *Network) AddSwitch(cfg asic.Config) *asic.Switch {
	n.nextID++
	if cfg.ID == 0 {
		cfg.ID = n.nextID
	}
	if cfg.Ports == 0 {
		cfg.Ports = 16
	}
	if cfg.Trace != nil && n.trace == nil {
		n.trace = cfg.Trace
	}
	sw := asic.New(n.Sim, cfg)
	n.Switches = append(n.Switches, sw)
	return sw
}

// AddHost creates a host with deterministic MAC 02:...:<k> and IP
// 10.0.0.<k>.
func (n *Network) AddHost() *endhost.Host {
	n.nextHost++
	k := n.nextHost
	mac := core.MACFromUint64(0x020000000000 | k)
	ip := core.IPv4Addr(10, 0, byte(k>>8), byte(k))
	h := endhost.NewHost(n.Sim, mac, ip)
	n.Hosts = append(n.Hosts, h)
	return h
}

// claimPort reserves the next free port on sw.
func (n *Network) claimPort(sw *asic.Switch) int {
	p := n.nextPort[sw]
	if p >= sw.Ports() {
		panic(fmt.Sprintf("topo: switch %d out of ports", sw.ID()))
	}
	n.nextPort[sw] = p + 1
	return p
}

// LinkHost connects h to sw over spec and returns the switch port used.
func (n *Network) LinkHost(h *endhost.Host, sw *asic.Switch, spec LinkSpec) int {
	port := n.claimPort(sw)
	up := n.traceChannel(netsim.NewChannel(n.Sim, spec.RateBps, spec.Delay, sw, port))
	h.NIC.Attach(up)
	down := n.traceChannel(netsim.NewChannel(n.Sim, spec.RateBps, spec.Delay, h, 0))
	sw.Wire(port, down)
	n.attach[h] = Attachment{Switch: sw, Port: port}
	return port
}

// LinkSwitches connects a and b over spec and returns the two ports
// used (a's, then b's).
func (n *Network) LinkSwitches(a, b *asic.Switch, spec LinkSpec) (int, int) {
	ap := n.claimPort(a)
	bp := n.claimPort(b)
	a.Wire(ap, n.traceChannel(netsim.NewChannel(n.Sim, spec.RateBps, spec.Delay, b, bp)))
	b.Wire(bp, n.traceChannel(netsim.NewChannel(n.Sim, spec.RateBps, spec.Delay, a, ap)))
	return ap, bp
}

// AttachmentOf reports where host h is plugged in.
func (n *Network) AttachmentOf(h *endhost.Host) Attachment { return n.attach[h] }

// PrimeL2 broadcasts one frame from every host so every switch learns
// every station, then runs the simulator for settle time.  Experiments
// call it before measuring so flooding doesn't pollute results.
func (n *Network) PrimeL2(settle netsim.Time) {
	for _, h := range n.Hosts {
		h.Broadcast()
	}
	n.Sim.RunUntil(n.Sim.Now() + settle)
}

// Line builds H0 — S0 — S1 — ... — S(k-1) — H1 with hosts on the ends:
// the Figure 1 walk.  It returns the network, the two hosts, and the
// switches in path order.
func Line(sim *netsim.Sim, switches int, edge, backbone LinkSpec, cfg asic.Config) (*Network, *endhost.Host, *endhost.Host, []*asic.Switch) {
	n := NewNetwork(sim)
	sws := make([]*asic.Switch, switches)
	for i := range sws {
		c := cfg
		c.ID = 0
		sws[i] = n.AddSwitch(c)
	}
	for i := 0; i+1 < switches; i++ {
		n.LinkSwitches(sws[i], sws[i+1], backbone)
	}
	src := n.AddHost()
	dst := n.AddHost()
	n.LinkHost(src, sws[0], edge)
	n.LinkHost(dst, sws[switches-1], edge)
	return n, src, dst, sws
}

// Star builds k hosts around one switch: the §2.1 incast shape.
func Star(sim *netsim.Sim, hosts int, edge LinkSpec, cfg asic.Config) (*Network, []*endhost.Host, *asic.Switch) {
	n := NewNetwork(sim)
	sw := n.AddSwitch(cfg)
	hs := make([]*endhost.Host, hosts)
	for i := range hs {
		hs[i] = n.AddHost()
		n.LinkHost(hs[i], sw, edge)
	}
	return n, hs, sw
}

// Dumbbell builds k sender hosts on switch A, k receiver hosts on
// switch B, and one bottleneck link A—B: the Figure 2 shape.  Senders
// are Hosts[0:k], receivers Hosts[k:2k].
func Dumbbell(sim *netsim.Sim, flows int, edge, bottleneck LinkSpec, cfg asic.Config) (*Network, []*endhost.Host, []*endhost.Host, *asic.Switch, *asic.Switch) {
	n := NewNetwork(sim)
	ca, cb := cfg, cfg
	ca.ID, cb.ID = 0, 0
	a := n.AddSwitch(ca)
	b := n.AddSwitch(cb)
	n.LinkSwitches(a, b, bottleneck)
	senders := make([]*endhost.Host, flows)
	receivers := make([]*endhost.Host, flows)
	for i := 0; i < flows; i++ {
		senders[i] = n.AddHost()
		n.LinkHost(senders[i], a, edge)
	}
	for i := 0; i < flows; i++ {
		receivers[i] = n.AddHost()
		n.LinkHost(receivers[i], b, edge)
	}
	return n, senders, receivers, a, b
}

// LeafSpine builds a two-tier fabric with hostsPerLeaf hosts on each of
// leaves leaf switches, all connected to every one of spines spine
// switches: the §2.3 datacenter shape.
func LeafSpine(sim *netsim.Sim, leaves, spines, hostsPerLeaf int, edge, fabric LinkSpec, cfg asic.Config) (*Network, [][]*endhost.Host, []*asic.Switch, []*asic.Switch) {
	n := NewNetwork(sim)
	leafSW := make([]*asic.Switch, leaves)
	spineSW := make([]*asic.Switch, spines)
	for i := range spineSW {
		c := cfg
		c.ID = 0
		spineSW[i] = n.AddSwitch(c)
	}
	for i := range leafSW {
		c := cfg
		c.ID = 0
		leafSW[i] = n.AddSwitch(c)
		for _, sp := range spineSW {
			n.LinkSwitches(leafSW[i], sp, fabric)
		}
	}
	hosts := make([][]*endhost.Host, leaves)
	for i := range hosts {
		hosts[i] = make([]*endhost.Host, hostsPerLeaf)
		for j := range hosts[i] {
			hosts[i][j] = n.AddHost()
			n.LinkHost(hosts[i][j], leafSW[i], edge)
		}
	}
	return n, hosts, leafSW, spineSW
}
