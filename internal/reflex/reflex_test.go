package reflex_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/fabric"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/reflex"
	"repro/internal/tcam"
	"repro/internal/topo"
)

// rig is a 2x2 leaf-spine with two hosts per leaf and a reflex arm on
// leaf 0.  Leaf 0's uplinks are port 0 (spine 0, the primary) and
// port 1 (spine 1, the backup); its hosts sit on ports 2 and 3.  All
// forwarding is exact-match TCAM routes installed in the fabric
// controller band, so the arm's authorizations land on band entries.
type rig struct {
	sim          *netsim.Sim
	net          *topo.Network
	leaf, spine  []*asic.Switch
	h00, h01     *endhost.Host // leaf 0
	h10, h11     *endhost.Host // leaf 1
	arm          *reflex.Arm
	tracer       *obs.Tracer
	primaryEntry uint32 // leaf 0's band entry steering h10 via port 0
}

const (
	hbEvery = 50 * netsim.Microsecond
	dwell   = netsim.Millisecond
)

func baseConfig(tr *obs.Tracer) reflex.Config {
	return reflex.Config{
		HeartbeatEvery: hbEvery,
		DeadAfter:      4,
		RevertDwell:    dwell,
		Trace:          tr,
	}
}

func newRig(t *testing.T, cfg reflex.Config) *rig {
	t.Helper()
	sim := netsim.New(1)
	tracer := obs.NewTracer(1 << 16)
	edge := topo.Mbps(1000, 5*netsim.Microsecond)
	fab := topo.Mbps(1000, 10*netsim.Microsecond)
	n, hosts, leaves, spines := topo.LeafSpine(sim, 2, 2, 2, edge, fab, asic.Config{Trace: tracer})
	r := &rig{
		sim: sim, net: n, leaf: leaves, spine: spines,
		h00: hosts[0][0], h01: hosts[0][1],
		h10: hosts[1][0], h11: hosts[1][1],
		tracer: tracer,
	}

	// Exact-match routes, everywhere, in the controller band.  Spine
	// port i faces leaf i; leaf uplink j faces spine j; leaf hosts sit
	// on ports 2 and 3.
	route := func(sw *asic.Switch, prio int, ip uint32, port int) uint32 {
		v, m := tcam.DstIPRule(ip)
		return sw.TCAM().Insert(fabric.BandBase+prio, v, m, tcam.Action{OutPort: port})
	}
	r.primaryEntry = route(leaves[0], 10, r.h10.IP, 0)
	route(leaves[0], 11, r.h11.IP, 0)
	route(leaves[0], 12, r.h00.IP, 2)
	route(leaves[0], 13, r.h01.IP, 3)
	route(leaves[1], 10, r.h10.IP, 2)
	route(leaves[1], 11, r.h11.IP, 3)
	route(leaves[1], 12, r.h00.IP, 0)
	route(leaves[1], 13, r.h01.IP, 0)
	for _, sp := range spines {
		route(sp, 10, r.h10.IP, 1)
		route(sp, 11, r.h11.IP, 1)
		route(sp, 12, r.h00.IP, 0)
		route(sp, 13, r.h01.IP, 0)
	}

	arm, err := reflex.Attach(sim, leaves[0], cfg)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	// Both uplinks are monitored via the same reflector: h00, reached
	// back through either spine, proving the full round trip of each
	// monitored egress direction.
	if err := arm.Monitor(0, r.h00.MAC, r.h00.IP); err != nil {
		t.Fatalf("Monitor(0): %v", err)
	}
	if err := arm.Monitor(1, r.h00.MAC, r.h00.IP); err != nil {
		t.Fatalf("Monitor(1): %v", err)
	}
	if err := arm.Authorize("h10-via-spine1", r.h10.IP, 0, 1); err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	r.arm = arm
	return r
}

// stream schedules one h00→h10 packet every period across [from, to).
func (r *rig) stream(from, to, period netsim.Time) (scheduled int) {
	for at := from; at < to; at += period {
		at := at
		r.sim.At(at, func() {
			r.h00.Send(r.h00.NewPacket(r.h10.MAC, r.h10.IP, 4000, 4001, 200))
		})
		scheduled++
	}
	return scheduled
}

func (r *rig) killPrimary() { r.leaf[0].Port(0).Channel().SetUp(false) }
func (r *rig) healPrimary() { r.leaf[0].Port(0).Channel().SetUp(true) }

func (r *rig) entryAction(t *testing.T, id uint32) tcam.Action {
	t.Helper()
	e, ok := r.leaf[0].TCAM().Get(id)
	if !ok {
		t.Fatalf("entry %d vanished", id)
	}
	return e.Action
}

// Healthy fabric: heartbeats round-trip, the lag stays at steady state,
// and the reflex never fires.
func TestHeartbeatEvidenceHealthy(t *testing.T) {
	r := newRig(t, baseConfig(nil))
	r.sim.RunUntil(2 * netsim.Millisecond)
	if lag := r.arm.Lag(0); lag > 1 {
		t.Fatalf("healthy lag %d, want <= 1", lag)
	}
	echo, _ := r.arm.Evidence(0)
	if echo == 0 {
		t.Fatal("no heartbeat echo landed in SRAM")
	}
	if r.arm.ProbesSent() < 30 {
		t.Fatalf("only %d probes sent in 2ms", r.arm.ProbesSent())
	}
	if r.arm.Fires() != 0 {
		t.Fatalf("reflex fired %d times on a healthy fabric", r.arm.Fires())
	}
}

// Killing the primary uplink fires the reflex: the armed entry is
// CAS-rewritten onto the backup spine, the detour is visible via
// ActiveDetours, and the stream keeps delivering.
func TestFireOnDeadEgress(t *testing.T) {
	r := newRig(t, baseConfig(obs.NewTracer(1<<14)))
	sent := r.stream(500*netsim.Microsecond, 3*netsim.Millisecond, 50*netsim.Microsecond)
	r.sim.At(netsim.Millisecond, r.killPrimary)
	r.sim.RunUntil(4 * netsim.Millisecond)

	if r.arm.Fires() != 1 {
		t.Fatalf("fires=%d, want 1", r.arm.Fires())
	}
	if !r.arm.Detoured("h10-via-spine1") {
		t.Fatal("authorization not detoured after fire")
	}
	if a := r.entryAction(t, r.primaryEntry); a.OutPort != 1 {
		t.Fatalf("entry action port %d, want backup 1", a.OutPort)
	}
	// Detection is bounded by DeadAfter heartbeats plus the probe round
	// trip (~250µs here), so only the packets inside that window die.
	lost := uint64(sent) - r.h10.Received
	if lost > 10 {
		t.Fatalf("lost %d of %d packets; reflex recovered too slowly", lost, sent)
	}
	if lost == 0 {
		t.Fatal("no packets lost: the kill never bit, so the test proves nothing")
	}

	dets := r.arm.ActiveDetours()
	if len(dets) != 1 {
		t.Fatalf("ActiveDetours: %d, want 1", len(dets))
	}
	d := dets[0]
	if d.EntryID != r.primaryEntry || d.Priority != 10 || d.PrimaryPort != 0 || d.BackupPort != 1 || d.DstIP != r.h10.IP {
		t.Fatalf("detour %+v is wrong", d)
	}
	live, _ := r.leaf[0].TCAM().Get(r.primaryEntry)
	if d.Version != live.Version {
		t.Fatalf("detour version %d, live entry %d", d.Version, live.Version)
	}
}

// After the link heals, the reflex reverts — but never before the
// flap-damping dwell has elapsed.
func TestRevertIsFlapDamped(t *testing.T) {
	r := newRig(t, baseConfig(nil))
	r.stream(500*netsim.Microsecond, 5*netsim.Millisecond, 50*netsim.Microsecond)
	r.sim.At(netsim.Millisecond, r.killPrimary)
	r.sim.At(1500*netsim.Microsecond, r.healPrimary)

	// Evidence is healthy again well before the dwell elapses, but the
	// detour must stand: dwell counts from the fire (~1.25ms).
	r.sim.RunUntil(2 * netsim.Millisecond)
	if r.arm.Fires() != 1 {
		t.Fatalf("fires=%d, want 1", r.arm.Fires())
	}
	if !r.arm.Detoured("h10-via-spine1") {
		t.Fatal("reverted before the flap-damping dwell")
	}

	r.sim.RunUntil(4 * netsim.Millisecond)
	if r.arm.Reverts() != 1 {
		t.Fatalf("reverts=%d, want 1", r.arm.Reverts())
	}
	if r.arm.Detoured("h10-via-spine1") {
		t.Fatal("still detoured after heal + dwell")
	}
	if a := r.entryAction(t, r.primaryEntry); a.OutPort != 0 {
		t.Fatalf("entry action port %d, want primary 0", a.OutPort)
	}
	// A second failure after the revert fires again: the arm re-armed.
	r.sim.At(4500*netsim.Microsecond, r.killPrimary)
	r.stream(4500*netsim.Microsecond, 6*netsim.Millisecond, 50*netsim.Microsecond)
	r.sim.RunUntil(6 * netsim.Millisecond)
	if r.arm.Fires() != 2 {
		t.Fatalf("fires=%d after second kill, want 2", r.arm.Fires())
	}
}

// A concurrent writer bumping the entry version makes the reflex lose
// its CAS and stand down — it never overwrites state it has not seen —
// until the operator re-arms it against the new version.
func TestCASRaceStandsDown(t *testing.T) {
	r := newRig(t, baseConfig(nil))
	// A controller-style write the arm has not seen: same action, new
	// version.
	if err := r.leaf[0].TCAM().Update(r.primaryEntry, tcam.Action{OutPort: 0}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	r.stream(500*netsim.Microsecond, 3*netsim.Millisecond, 50*netsim.Microsecond)
	r.sim.At(netsim.Millisecond, r.killPrimary)
	r.sim.RunUntil(2 * netsim.Millisecond)

	if r.arm.Fires() != 0 {
		t.Fatalf("fires=%d, want 0 (CAS must lose)", r.arm.Fires())
	}
	if r.arm.StaleWrites() == 0 {
		t.Fatal("no stale write recorded")
	}
	if !r.arm.Stale("h10-via-spine1") {
		t.Fatal("authorization should be stale")
	}
	if a := r.entryAction(t, r.primaryEntry); a.OutPort != 0 {
		t.Fatalf("entry action port %d changed by a stale reflex", a.OutPort)
	}

	// Re-arm against the live version: the next evidence check fires.
	r.sim.At(2*netsim.Millisecond, func() { r.arm.Rearm() })
	r.stream(2*netsim.Millisecond, 3*netsim.Millisecond, 50*netsim.Microsecond)
	r.sim.RunUntil(3 * netsim.Millisecond)
	if r.arm.Fires() != 1 {
		t.Fatalf("fires=%d after Rearm, want 1", r.arm.Fires())
	}
	if !r.arm.Detoured("h10-via-spine1") {
		t.Fatal("not detoured after Rearm + fire")
	}
}

// The per-switch budget bounds the blast radius: with Budget 1, a
// second authorized prefix on the same dead egress is refused.
func TestBudgetBoundsBlastRadius(t *testing.T) {
	cfg := baseConfig(nil)
	cfg.Budget = 1
	r := newRig(t, cfg)
	if err := r.arm.Authorize("h11-via-spine1", r.h11.IP, 0, 1); err != nil {
		t.Fatalf("Authorize h11: %v", err)
	}
	r.sim.At(netsim.Millisecond, r.killPrimary)
	r.sim.RunUntil(3 * netsim.Millisecond)

	if r.arm.Fires() != 1 {
		t.Fatalf("fires=%d, want exactly 1 under Budget 1", r.arm.Fires())
	}
	if r.arm.BudgetRefused() == 0 {
		t.Fatal("no budget refusal recorded")
	}
	detoured := 0
	for _, name := range []string{"h10-via-spine1", "h11-via-spine1"} {
		if r.arm.Detoured(name) {
			detoured++
		}
	}
	if detoured != 1 {
		t.Fatalf("%d prefixes detoured, want 1", detoured)
	}
}

// Persistent congestion (queue-depth EWMA above threshold past the
// dwell) fires the reflex just like a dead link.
func TestCongestionFires(t *testing.T) {
	sim := netsim.New(1)
	tracer := obs.NewTracer(1 << 14)
	edge := topo.Mbps(1000, 5*netsim.Microsecond)
	fab := topo.Mbps(10, 10*netsim.Microsecond) // slow uplinks: queues build
	_, hosts, leaves, spines := topo.LeafSpine(sim, 2, 2, 1, edge, fab, asic.Config{Trace: tracer})
	h00, h10 := hosts[0][0], hosts[1][0]
	route := func(sw *asic.Switch, prio int, ip uint32, port int) uint32 {
		v, m := tcam.DstIPRule(ip)
		return sw.TCAM().Insert(fabric.BandBase+prio, v, m, tcam.Action{OutPort: port})
	}
	route(leaves[0], 10, h10.IP, 0)
	route(leaves[0], 11, h00.IP, 2)
	route(leaves[1], 10, h10.IP, 2)
	route(leaves[1], 11, h00.IP, 0)
	for _, sp := range spines {
		route(sp, 10, h10.IP, 1)
		route(sp, 11, h00.IP, 0)
	}

	arm, err := reflex.Attach(sim, leaves[0], reflex.Config{
		HeartbeatEvery: hbEvery,
		DeadAfter:      1 << 20, // isolate the congestion trigger
		EWMAShift:      1,
		CongestBytes:   3000,
		CongestDwell:   200 * netsim.Microsecond,
		RevertDwell:    dwell,
		Trace:          tracer,
	})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := arm.Monitor(0, h00.MAC, h00.IP); err != nil {
		t.Fatalf("Monitor: %v", err)
	}
	if err := arm.Authorize("h10-congest", h10.IP, 0, 1); err != nil {
		t.Fatalf("Authorize: %v", err)
	}

	// 1000-byte packets every 20µs = 400Mbps of demand into a 10Mbps
	// uplink: the egress queue builds fast.
	for at := 100 * netsim.Microsecond; at < 2*netsim.Millisecond; at += 20 * netsim.Microsecond {
		at := at
		sim.At(at, func() {
			h00.Send(h00.NewPacket(h10.MAC, h10.IP, 4000, 4001, 1000))
		})
	}
	sim.RunUntil(2 * netsim.Millisecond)
	if arm.Fires() == 0 {
		t.Fatal("congestion reflex never fired")
	}
	if !arm.Detoured("h10-congest") {
		t.Fatal("prefix not detoured under persistent congestion")
	}
}

// A crash-restart wipes the SRAM evidence and resets the allocator; the
// arm rebases on the new boot epoch without spurious fires, and still
// fires for real failures afterwards.
func TestRebootRebase(t *testing.T) {
	r := newRig(t, baseConfig(nil))
	r.sim.RunUntil(netsim.Millisecond)
	epochBefore := r.leaf[0].Epoch()
	r.sim.At(netsim.Millisecond, func() { r.leaf[0].Reboot(100 * netsim.Microsecond) })
	r.sim.RunUntil(3 * netsim.Millisecond)

	if r.leaf[0].Epoch() == epochBefore {
		t.Fatal("reboot did not bump the epoch")
	}
	if r.arm.Fires() != 0 {
		t.Fatalf("spurious fires across reboot: %d", r.arm.Fires())
	}
	if lag := r.arm.Lag(0); lag > 1 {
		t.Fatalf("post-reboot lag %d, want <= 1 (evidence rebased)", lag)
	}
	echo, _ := r.arm.Evidence(0)
	if echo == 0 {
		t.Fatal("heartbeats did not resume after reboot")
	}

	// The rebased arm still protects: kill the primary, watch it fire.
	r.sim.At(3*netsim.Millisecond, r.killPrimary)
	r.stream(3*netsim.Millisecond, 4*netsim.Millisecond, 50*netsim.Microsecond)
	r.sim.RunUntil(4 * netsim.Millisecond)
	if r.arm.Fires() != 1 {
		t.Fatalf("fires=%d after reboot+kill, want 1", r.arm.Fires())
	}
}

// On a guarded switch, tenant TPPs address SRAM partition-relative and
// cannot reach the arm's evidence words: forged heartbeat echoes from a
// guest never land, while the operator path (which the real heartbeats
// use) does.
func TestGuardBlocksForgedEvidence(t *testing.T) {
	sim := netsim.New(1)
	edge := topo.Mbps(1000, 5*netsim.Microsecond)
	fab := topo.Mbps(1000, 10*netsim.Microsecond)
	_, hosts, leaves, _ := topo.LeafSpine(sim, 2, 2, 1, edge, fab, asic.Config{Guard: true})
	h00, h10 := hosts[0][0], hosts[1][0]
	route := func(sw *asic.Switch, prio int, ip uint32, port int) {
		v, m := tcam.DstIPRule(ip)
		sw.TCAM().Insert(fabric.BandBase+prio, v, m, tcam.Action{OutPort: port})
	}
	route(leaves[0], 10, h10.IP, 0)

	arm, err := reflex.Attach(sim, leaves[0], reflex.Config{})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	// No Monitor: the evidence words stay untouched unless a TPP
	// writes them.  Word addresses are private, but a forger can scan:
	// use the region the arm just allocated.
	reg, ok := leaves[0].Allocator().Lookup("reflex/evidence")
	if !ok {
		t.Fatal("evidence region not allocated")
	}
	_ = arm

	forge := func() *core.Packet {
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpSTORE, A: uint16(reg.Base), B: 0},
		}, 1)
		tpp.SetWord(0, 0xDEADBEEF)
		pkt := h00.NewPacket(h10.MAC, h10.IP, 4000, 4001, 0)
		pkt.Eth.Type = core.EtherTypeTPP
		pkt.TPP = tpp
		return pkt
	}

	// Guest tenant 1, granted a partition, tries to forge the echo.
	// The NIC seals the tenant identity at the edge (guests cannot
	// claim the operator id), and the guest's SRAM addressing is
	// partition-relative — which, because the partitioner carves
	// around operator task regions, can never alias the evidence
	// words: the STORE lands in the guest's own sandbox.
	if _, err := leaves[0].GrantTenant(1, guard.DefaultACL(), 8, 1, 4); err != nil {
		t.Fatalf("GrantTenant: %v", err)
	}
	h00.NIC.SetTenant(1)
	sim.At(100*netsim.Microsecond, func() { h00.Send(forge()) })
	sim.RunUntil(500 * netsim.Microsecond)
	if got := leaves[0].SRAM(mem.SRAMIndex(reg.Base)); got == 0xDEADBEEF {
		t.Fatal("guest tenant forged the heartbeat evidence")
	}
	part, _ := leaves[0].Guard().Partition(1)
	if got := leaves[0].SRAM(mem.SRAMIndex(part.Base)); got != 0xDEADBEEF {
		t.Fatalf("guest store did not relocate into its sandbox: word=%08x", got)
	}

	// The operator namespace (what real heartbeats use) can write it.
	h00.NIC.SetTenant(0)
	sim.At(500*netsim.Microsecond, func() { h00.Send(forge()) })
	sim.RunUntil(netsim.Millisecond)
	if got := leaves[0].SRAM(mem.SRAMIndex(reg.Base)); got != 0xDEADBEEF {
		t.Fatalf("operator write did not land: word=%08x", got)
	}
}

// The reflex transit check adds zero allocations to the healthy packet
// hot path (tracing off), keeping the forwarding loop allocation-free.
func TestTransitZeroAlloc(t *testing.T) {
	r := newRig(t, baseConfig(nil))
	r.sim.RunUntil(netsim.Millisecond) // evidence warm, steady state
	pkt := core.NewUDPPacket(
		core.Ethernet{Dst: r.h10.MAC, Type: core.EtherTypeIPv4},
		core.IPv4{TTL: 8, Proto: core.ProtoUDP, Dst: r.h10.IP},
		core.UDP{SrcPort: 4000, DstPort: 4001},
	)
	if n := testing.AllocsPerRun(1000, func() {
		if out := r.arm.Transit(pkt, 0); out != 0 {
			t.Fatalf("healthy transit rerouted to %d", out)
		}
	}); n != 0 {
		t.Fatalf("Transit allocates %.1f times per packet on the healthy path", n)
	}
}
