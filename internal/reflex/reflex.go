// Package reflex is the dataplane failure-reaction plane: sub-RTT
// fast-reroute driven entirely by in-band evidence, without waiting for
// the central controller's control loop.
//
// Each armed switch maintains per-egress liveness evidence in its own
// SRAM statistics region: a heartbeat echo counter written by small
// round-trip TPPs the arm injects out every monitored egress, and a
// queue-depth EWMA refreshed on every transit packet.  The heartbeat
// TPP is CEXEC-gated on [Switch:SwitchID], so its STORE commits only
// when the packet has made it out the monitored egress and *back* to
// its home switch — a round trip that proves the egress direction
// works, which unidirectional (gray) failures cannot fake.
//
// When the evidence says an egress is dead (heartbeat echoes stopped)
// or persistently congested (EWMA above threshold past a dwell), the
// reflex fires: a version-checked TCAM rewrite (compare-and-swap
// against the entry version captured at arming time) steers the
// affected prefix onto a precomputed loop-free backup next-hop.  The
// write discipline keeps the reflex safe against every concurrent
// writer:
//
//   - CAS against the captured version means a reflex never clobbers a
//     controller write it has not seen; a lost race marks the backup
//     stale and the reflex stands down until the operator re-arms.
//   - Only pre-authorized (prefix, primary, backup) triples are ever
//     installed, and a per-switch budget bounds how many detours can
//     stand at once — the blast radius of a wrong reflex is capped.
//   - A minimum dwell before revert (flap damping) keeps bursty
//     Gilbert-Elliott loss from oscillating routes.
//   - Evidence lives in the operator SRAM band: on a guarded switch,
//     tenant TPPs address memory partition-relative and cannot reach
//     it, so only operator-namespace TPPs can feed (or forge) the
//     evidence that arms reflexes.
//
// The fabric controller reconciles standing detours instead of fighting
// them: Arm implements fabric.DetourSource, so a reflex rewrite shows
// up in a fabric diff as an informational detour op, to be ratified
// into spec or restored once the link heals.
package reflex

import (
	"fmt"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/tcam"
)

// HeartbeatPort is the UDP port reflex heartbeats ride on, distinct
// from the prober's echo ports so reflector sinks can tell them apart.
const HeartbeatPort = 7077

// evidenceTask names the arm's SRAM allocation: two words per port
// (heartbeat echo, queue-depth EWMA).
const evidenceTask = "reflex/evidence"

// Config tunes one switch's reflex arm.  Zero values take defaults.
type Config struct {
	// HeartbeatEvery is the per-monitor heartbeat injection period
	// (default 50µs).
	HeartbeatEvery netsim.Time
	// DeadAfter is the heartbeat lag (sent minus echoed sequence)
	// beyond which the egress is declared dead (default 4).  It must
	// exceed the steady-state lag, which is the heartbeat round-trip
	// divided by HeartbeatEvery, plus the burst of loss the operator
	// wants ridden out.
	DeadAfter uint32
	// EWMAShift is the queue-depth EWMA gain: new = old + (sample-old)
	// >> shift (default 2).
	EWMAShift uint
	// CongestBytes arms the congestion reflex: an egress whose EWMA
	// stays at or above this many queued bytes for CongestDwell is
	// treated like a dead one.  0 (the default) disables it.
	CongestBytes uint32
	// CongestDwell is how long the EWMA must stay above CongestBytes
	// before the congestion reflex may fire (default 10 heartbeats).
	CongestDwell netsim.Time
	// RevertDwell is the flap damping: the minimum time a detour
	// stands before healthy evidence may revert it (default 20
	// heartbeats).
	RevertDwell netsim.Time
	// Budget caps how many detours may stand at once on this switch
	// (default 1).
	Budget int

	Metrics *obs.Registry
	Trace   *obs.Tracer
}

func (c Config) resolve() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 50 * netsim.Microsecond
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 4
	}
	if c.EWMAShift == 0 {
		c.EWMAShift = 2
	}
	if c.CongestDwell <= 0 {
		c.CongestDwell = 10 * c.HeartbeatEvery
	}
	if c.RevertDwell <= 0 {
		c.RevertDwell = 20 * c.HeartbeatEvery
	}
	if c.Budget <= 0 {
		c.Budget = 1
	}
	return c
}

// backup states.
const (
	stateArmed = iota
	stateDetoured
	stateStale
)

// monitor is one watched egress port.
type monitor struct {
	port   int
	dstMAC core.MAC
	dstIP  uint32
	sent   uint32 // heartbeat sequence last injected
	// congestion bookkeeping (derived from the EWMA evidence word)
	congested      bool
	congestedSince netsim.Time
	ticker         *netsim.Ticker
}

// backup is one pre-authorized (prefix, primary, backup) triple with
// the TCAM entry it is armed against.
type backup struct {
	name        string
	dstIP       uint32
	primaryPort int
	backupPort  int
	entryID     uint32
	version     uint32 // expected entry version for the next CAS
	priority    int    // absolute TCAM priority of the armed entry
	state       int
	since       netsim.Time // when the standing detour fired
}

type armMetrics struct {
	fires, reverts, stale, budget, probes *obs.Counter
}

// Arm is one switch's reflex plane.  It implements asic.ReflexHook (the
// per-packet transit check) and fabric.DetourSource (detour reporting
// to the controller's diff).
type Arm struct {
	sim *netsim.Sim
	sw  *asic.Switch
	cfg Config

	region mem.Region
	base   int    // SRAM index of region.Base
	epoch  uint32 // boot epoch the evidence is anchored to

	monitors []*monitor // indexed by port; nil = unmonitored
	backups  []*backup  // authorization order
	byDst    map[uint32]*backup

	active int // standing detours
	uid    uint64

	fires, reverts, stale, budgetRefused, probesSent uint64

	m armMetrics
}

// Attach builds a reflex arm on sw, allocates its SRAM evidence region
// and installs it as the switch's transit hook.
func Attach(sim *netsim.Sim, sw *asic.Switch, cfg Config) (*Arm, error) {
	a := &Arm{
		sim:      sim,
		sw:       sw,
		cfg:      cfg.resolve(),
		monitors: make([]*monitor, sw.Ports()),
		byDst:    make(map[uint32]*backup),
	}
	a.m = armMetrics{
		fires:   a.cfg.Metrics.Counter(fmt.Sprintf("switch/%d/reflex_fires", sw.ID())),
		reverts: a.cfg.Metrics.Counter(fmt.Sprintf("switch/%d/reflex_reverts", sw.ID())),
		stale:   a.cfg.Metrics.Counter(fmt.Sprintf("switch/%d/reflex_stale", sw.ID())),
		budget:  a.cfg.Metrics.Counter(fmt.Sprintf("switch/%d/reflex_budget_refused", sw.ID())),
		probes:  a.cfg.Metrics.Counter(fmt.Sprintf("switch/%d/reflex_probes", sw.ID())),
	}
	if err := a.rebase(); err != nil {
		return nil, err
	}
	sw.SetReflex(a)
	return a, nil
}

// rebase (re-)anchors the evidence to the switch's current boot epoch:
// allocate the SRAM region (a crash-restart resets the allocator and
// zeroes SRAM), reset heartbeat bookkeeping so the arm fails open
// until fresh evidence accumulates, and re-capture every armed entry's
// live version (the TCAM survives a reboot, but a controller may have
// rewritten entries while the evidence was dark).
func (a *Arm) rebase() error {
	reg, err := a.sw.Allocator().Alloc(evidenceTask, 2*a.sw.Ports())
	if err != nil {
		return fmt.Errorf("reflex: evidence alloc: %w", err)
	}
	a.region = reg
	a.base = mem.SRAMIndex(reg.Base)
	a.epoch = a.sw.Epoch()
	for _, m := range a.monitors {
		if m != nil {
			m.sent = 0
			m.congested = false
		}
	}
	for _, b := range a.backups {
		a.recapture(b)
	}
	a.recount()
	return nil
}

// recapture re-reads one backup's armed entry and re-derives its state
// from the live action.
func (a *Arm) recapture(b *backup) {
	e, ok := a.sw.TCAM().Get(b.entryID)
	if !ok {
		b.state = stateStale
		return
	}
	b.version = e.Version
	b.priority = e.Priority
	switch {
	case !e.Action.Drop && e.Action.OutPort == b.backupPort:
		b.state = stateDetoured
		if b.since == 0 {
			b.since = a.sim.Now()
		}
	case !e.Action.Drop && e.Action.OutPort == b.primaryPort:
		b.state = stateArmed
		b.since = 0
	default:
		b.state = stateStale
	}
}

func (a *Arm) recount() {
	n := 0
	for _, b := range a.backups {
		if b.state == stateDetoured {
			n++
		}
	}
	a.active = n
}

// Monitor arms liveness tracking for one egress port.  dstMAC/dstIP
// name the reflector: a destination routed *out this port* at this
// switch, back toward this switch at the far end, and into a sink
// here, so the heartbeat's round trip exercises exactly the monitored
// egress direction and its return path.
func (a *Arm) Monitor(port int, dstMAC core.MAC, dstIP uint32) error {
	if port < 0 || port >= len(a.monitors) {
		return fmt.Errorf("reflex: no port %d", port)
	}
	if a.monitors[port] != nil {
		return fmt.Errorf("reflex: port %d already monitored", port)
	}
	m := &monitor{port: port, dstMAC: dstMAC, dstIP: dstIP}
	a.monitors[port] = m
	// Stagger the first tick by port so co-armed monitors never burst
	// heartbeats in the same event.
	start := a.sim.Now() + a.cfg.HeartbeatEvery + netsim.Time(port)*netsim.Microsecond
	m.ticker = a.sim.Every(start, a.cfg.HeartbeatEvery, func() { a.tick(m) })
	return nil
}

// Authorize pre-installs one reroute the reflex may perform: steer
// dstIP from primaryPort onto backupPort.  The live TCAM entry routing
// dstIP via primaryPort is captured (id and version) as the only entry
// the reflex will ever rewrite; the caller vouches that backupPort is
// loop-free for this prefix.  The primary port must already be
// monitored — evidence is what pulls the trigger.
func (a *Arm) Authorize(name string, dstIP uint32, primaryPort, backupPort int) error {
	if primaryPort < 0 || primaryPort >= len(a.monitors) || a.monitors[primaryPort] == nil {
		return fmt.Errorf("reflex: primary port %d not monitored", primaryPort)
	}
	if backupPort == primaryPort {
		return fmt.Errorf("reflex: backup must differ from primary port %d", primaryPort)
	}
	if backupPort < 0 || backupPort >= a.sw.Ports() || !a.sw.Port(backupPort).Wired() {
		return fmt.Errorf("reflex: backup port %d not wired", backupPort)
	}
	if _, dup := a.byDst[dstIP]; dup {
		return fmt.Errorf("reflex: dst %08x already authorized", dstIP)
	}
	b := &backup{name: name, dstIP: dstIP, primaryPort: primaryPort, backupPort: backupPort}
	entry, ok := a.findEntry(dstIP, primaryPort)
	if !ok {
		return fmt.Errorf("reflex: no TCAM entry routes %08x via port %d", dstIP, primaryPort)
	}
	b.entryID, b.version, b.priority = entry.ID, entry.Version, entry.Priority
	a.backups = append(a.backups, b)
	a.byDst[dstIP] = b
	return nil
}

// findEntry locates the highest-priority exact-match entry steering
// dstIP out port.  Entries() is priority-descending, so the first hit
// is the one the lookup pipeline would use.
func (a *Arm) findEntry(dstIP uint32, port int) (tcam.Entry, bool) {
	for _, e := range a.sw.TCAM().Entries() {
		if e.Mask[tcam.KeyDstIP] == tcam.ExactMask && e.Value[tcam.KeyDstIP] == dstIP &&
			!e.Action.Drop && e.Action.OutPort == port {
			return e, true
		}
	}
	return tcam.Entry{}, false
}

func (a *Arm) hbIdx(port int) int   { return a.base + 2*port }
func (a *Arm) ewmaIdx(port int) int { return a.base + 2*port + 1 }

// tick is one monitor's heartbeat: refresh the queue evidence, inject
// the round-trip TPP, and run the dead/congested and revert checks that
// don't need a transit packet.
func (a *Arm) tick(m *monitor) {
	if a.sw.Booting() {
		return
	}
	if a.sw.Epoch() != a.epoch {
		if a.rebase() != nil {
			return
		}
	}
	now := a.sim.Now()
	a.updateEWMA(m, now)
	m.sent++
	a.probesSent++
	a.m.probes.Inc()
	a.sw.InjectLocal(a.heartbeat(m), m.port)

	if a.evidenceBad(m, now) {
		// Fire without waiting for a transit packet, so recovery is
		// bounded by the heartbeat period even on idle prefixes.
		for _, b := range a.backups {
			if b.primaryPort == m.port && b.state == stateArmed {
				a.fire(b, 0, now)
			}
		}
		return
	}
	a.checkRevert(m, now)
}

// heartbeat builds the round-trip liveness TPP: CEXEC gates the STORE
// on [Switch:SwitchID] == this switch, so the sequence number lands in
// the evidence word only when the packet has returned home — one full
// traversal of the monitored egress direction.  InjectLocal bypasses
// the local TCPU on the way out; the reflector routes the packet back.
func (a *Arm) heartbeat(m *monitor) *core.Packet {
	t := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
		{Op: core.OpSTORE, A: uint16(a.region.Base) + uint16(2*m.port), B: 2},
	}, 3)
	t.SetWord(0, ^uint32(0))  // CEXEC mask: compare the full ID word
	t.SetWord(1, a.sw.ID())   // CEXEC operand: home switch id
	t.SetWord(2, m.sent)      // STORE operand: heartbeat sequence
	a.uid++
	pkt := core.NewUDPPacket(
		core.Ethernet{Dst: m.dstMAC, Src: a.srcMAC(), Type: core.EtherTypeTPP},
		core.IPv4{TTL: 8, Proto: core.ProtoUDP, Dst: m.dstIP},
		core.UDP{SrcPort: HeartbeatPort, DstPort: HeartbeatPort},
	)
	pkt.TPP = t
	pkt.Meta.UID = (uint64(0xA50000|a.sw.ID()) << 40) | a.uid
	return pkt
}

// srcMAC is the arm's locally-administered source MAC, distinct per
// switch so heartbeats never fight host entries in L2 learning.
func (a *Arm) srcMAC() core.MAC {
	id := a.sw.ID()
	return core.MAC{0x06, 0x5F, 0x00, byte(id >> 16), byte(id >> 8), byte(id)}
}

// updateEWMA folds the egress queue depth into the evidence word and
// tracks the congestion dwell.  Called from both the heartbeat tick and
// the per-packet transit path, so the annotation is load-bearing.
//
//alloc:free
func (a *Arm) updateEWMA(m *monitor, now netsim.Time) {
	idx := a.ewmaIdx(m.port)
	q := uint32(a.sw.Port(m.port).QueueBytes())
	e := a.sw.SRAM(idx)
	e = uint32(int32(e) + ((int32(q) - int32(e)) >> a.cfg.EWMAShift))
	a.sw.SetSRAM(idx, e)
	if a.cfg.CongestBytes == 0 {
		return
	}
	if e >= a.cfg.CongestBytes {
		if !m.congested {
			m.congested = true
			m.congestedSince = now
		}
	} else {
		m.congested = false
	}
}

// evidenceBad reports whether the monitored egress is dead (heartbeat
// echoes stopped) or persistently congested.
//
//alloc:free
func (a *Arm) evidenceBad(m *monitor, now netsim.Time) bool {
	if m.sent-a.sw.SRAM(a.hbIdx(m.port)) > a.cfg.DeadAfter {
		return true
	}
	return m.congested && now-m.congestedSince >= a.cfg.CongestDwell
}

// Transit is the asic.ReflexHook: called by the egress pipeline with
// every packet's selected output port, it refreshes queue evidence and
// — when the evidence is bad and a pre-authorized backup exists for the
// packet's destination — fires the reroute, steering this very packet
// onto the backup.  The healthy path is allocation-free.
//
//alloc:free
func (a *Arm) Transit(pkt *core.Packet, out int) int {
	if out < 0 || out >= len(a.monitors) {
		return out
	}
	m := a.monitors[out]
	if m == nil || pkt.IP == nil {
		return out
	}
	if a.sw.Epoch() != a.epoch {
		// Evidence predates a crash-restart; stand down until the next
		// heartbeat tick rebases it.
		return out
	}
	now := a.sim.Now()
	a.updateEWMA(m, now)
	if !a.evidenceBad(m, now) {
		return out
	}
	b := a.byDst[pkt.IP.Dst]
	if b == nil || b.primaryPort != out || b.state != stateArmed {
		return out
	}
	return a.fire(b, pkt.Meta.UID, now)
}

// fire performs the guarded rewrite: budget check, then a CAS against
// the version captured at arming.  A lost race means another writer
// (controller, operator) touched the route since we last looked — the
// reflex stands down (stale) rather than overwrite unseen state.
func (a *Arm) fire(b *backup, uid uint64, now netsim.Time) int {
	if a.active >= a.cfg.Budget {
		a.budgetRefused++
		a.m.budget.Inc()
		a.span(uid, obs.StageReflexStale, uint64(b.entryID), 2)
		return b.primaryPort
	}
	if err := a.sw.TCAM().UpdateIfVersion(b.entryID, b.version, tcam.Action{OutPort: b.backupPort}); err != nil {
		b.state = stateStale
		a.stale++
		a.m.stale.Inc()
		a.span(uid, obs.StageReflexStale, uint64(b.entryID), 1)
		return b.primaryPort
	}
	b.version++
	b.state = stateDetoured
	b.since = now
	a.active++
	a.fires++
	a.m.fires.Inc()
	a.span(uid, obs.StageReflexFire, uint64(b.entryID), uint64(b.backupPort))
	return b.backupPort
}

// checkRevert restores primaries whose evidence is healthy again and
// whose flap-damping dwell has elapsed.  The revert is CAS-guarded like
// the fire: a raced version means someone else owns the route now.
func (a *Arm) checkRevert(m *monitor, now netsim.Time) {
	for _, b := range a.backups {
		if b.primaryPort != m.port || b.state != stateDetoured {
			continue
		}
		if now-b.since < a.cfg.RevertDwell {
			continue
		}
		if err := a.sw.TCAM().UpdateIfVersion(b.entryID, b.version, tcam.Action{OutPort: b.primaryPort}); err != nil {
			b.state = stateStale
			a.stale++
			a.m.stale.Inc()
			a.span(0, obs.StageReflexStale, uint64(b.entryID), 1)
			a.recount()
			continue
		}
		b.version++
		b.state = stateArmed
		b.since = 0
		a.active--
		a.reverts++
		a.m.reverts.Inc()
		a.span(0, obs.StageReflexRevert, uint64(b.entryID), uint64(b.primaryPort))
	}
}

func (a *Arm) span(uid uint64, st obs.Stage, x, y uint64) {
	a.cfg.Trace.Record(obs.SpanEvent{
		At: int64(a.sim.Now()), UID: uid, Node: a.sw.ID(), Stage: st, A: x, B: y,
	})
}

// Rearm re-reads every authorized entry and re-derives the arm's view
// from the live table.  The operator calls it after controller writes
// it sanctioned (a converge, a ratification) so stale backups come back
// into service against the new versions.
func (a *Arm) Rearm() {
	for _, b := range a.backups {
		a.recapture(b)
	}
	a.recount()
}

// Promote makes a ratified detour's backup the new primary: after the
// operator folds the detour into spec (fabric.Ratify + Converge), the
// live action IS the declared route, so the arm flips its triple and
// re-arms watching for the old primary's return path to be authorized
// again later.  The new primary port must already be monitored.
func (a *Arm) Promote(name string) error {
	for _, b := range a.backups {
		if b.name != name {
			continue
		}
		if b.state != stateDetoured {
			return fmt.Errorf("reflex: %s is not detoured", name)
		}
		if a.monitors[b.backupPort] == nil {
			return fmt.Errorf("reflex: new primary port %d not monitored", b.backupPort)
		}
		b.primaryPort, b.backupPort = b.backupPort, b.primaryPort
		b.state = stateArmed
		b.since = 0
		a.recapture(b)
		a.recount()
		return nil
	}
	return fmt.Errorf("reflex: no authorization %q", name)
}

// ActiveDetours implements fabric.DetourSource: the standing detours on
// band-managed entries, in authorization order.
func (a *Arm) ActiveDetours() []fabric.Detour {
	var out []fabric.Detour
	for _, b := range a.backups {
		if b.state != stateDetoured {
			continue
		}
		if b.priority < fabric.BandBase || b.priority >= fabric.BandBase+fabric.BandSize {
			continue // outside the controller band: invisible to fabric
		}
		out = append(out, fabric.Detour{
			EntryID:     b.entryID,
			Version:     b.version,
			DstIP:       b.dstIP,
			Priority:    b.priority - fabric.BandBase,
			PrimaryPort: b.primaryPort,
			BackupPort:  b.backupPort,
			Since:       b.since,
		})
	}
	return out
}

// Evidence returns one monitored port's raw SRAM evidence words.
func (a *Arm) Evidence(port int) (hbEcho, queueEWMA uint32) {
	return a.sw.SRAM(a.hbIdx(port)), a.sw.SRAM(a.ewmaIdx(port))
}

// Lag returns how many heartbeats the port's echo trails the send
// counter — the arm's deadness measure.
func (a *Arm) Lag(port int) uint32 {
	m := a.monitors[port]
	if m == nil {
		return 0
	}
	return m.sent - a.sw.SRAM(a.hbIdx(port))
}

// Detoured reports whether the named authorization currently stands
// detoured.
func (a *Arm) Detoured(name string) bool {
	for _, b := range a.backups {
		if b.name == name {
			return b.state == stateDetoured
		}
	}
	return false
}

// Stale reports whether the named authorization lost a CAS race and
// stands down awaiting Rearm.
func (a *Arm) Stale(name string) bool {
	for _, b := range a.backups {
		if b.name == name {
			return b.state == stateStale
		}
	}
	return false
}

// EntryOf returns the TCAM entry id the named authorization is armed
// against.
func (a *Arm) EntryOf(name string) (uint32, bool) {
	for _, b := range a.backups {
		if b.name == name {
			return b.entryID, true
		}
	}
	return 0, false
}

// Counters: lifetime totals, mirrored in the metrics registry.
func (a *Arm) Fires() uint64         { return a.fires }
func (a *Arm) Reverts() uint64       { return a.reverts }
func (a *Arm) StaleWrites() uint64   { return a.stale }
func (a *Arm) BudgetRefused() uint64 { return a.budgetRefused }
func (a *Arm) ProbesSent() uint64    { return a.probesSent }
