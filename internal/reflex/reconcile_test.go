package reflex_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/tcam"
)

// leaf0Spec is the fabric spec matching the rig's leaf0 routing as
// installed: primary forwarding for both remote hosts over spine 0.
func leaf0Spec(r *rig) fabric.Spec {
	return fabric.Spec{Devices: []fabric.DeviceSpec{{
		Device: "leaf0",
		Routes: []fabric.Route{
			{DstIP: r.h10.IP, Priority: 10, OutPort: 0},
			{DstIP: r.h11.IP, Priority: 11, OutPort: 0},
			{DstIP: r.h00.IP, Priority: 12, OutPort: 2},
			{DstIP: r.h01.IP, Priority: 13, OutPort: 3},
		},
	}}}
}

// The controller recognizes a live reflex detour: the diff reports it
// as an informational op (zero mutations — converge does not fight the
// emergency rewrite), Verify tolerates it, and Ratify folds it into a
// spec the fabric then converges on cleanly.  Promote completes the
// handoff by making the detour's port the arm's new primary.
func TestControllerRatifiesDetour(t *testing.T) {
	r := newRig(t, baseConfig(nil))
	ctrl := fabric.New(r.sim)
	ctrl.Register("leaf0", r.leaf[0])
	ctrl.RegisterDetours("leaf0", r.arm)
	spec := leaf0Spec(r)

	// Healthy fabric: live state is at spec, nothing to report.
	cs, errs, err := ctrl.Diff(spec)
	if err != nil || len(errs) != 0 {
		t.Fatalf("Diff: %v %v", err, errs)
	}
	if !cs.Empty() {
		t.Fatalf("healthy diff not empty:\n%s", cs)
	}

	// Kill the primary uplink; the reflex steers h10 onto spine 1.
	r.sim.At(netsim.Millisecond, r.killPrimary)
	r.sim.RunUntil(2 * netsim.Millisecond)
	if r.arm.Fires() != 1 {
		t.Fatalf("fires=%d, want 1", r.arm.Fires())
	}

	// The diff now carries exactly one informational detour op and no
	// mutations: the controller sees the drift, attributes it to the
	// reflex, and stands back.
	cs, errs, err = ctrl.Diff(spec)
	if err != nil || len(errs) != 0 {
		t.Fatalf("Diff after fire: %v %v", err, errs)
	}
	if got := cs.Mutations(); got != 0 {
		t.Fatalf("detoured diff wants %d mutations:\n%s", got, cs)
	}
	dets := cs.Detours()
	if len(dets) != 1 {
		t.Fatalf("detour ops = %d, want 1:\n%s", len(dets), cs)
	}
	op := dets[0]
	if op.EntryID != r.primaryEntry || op.BackupPort != 1 || op.Route.OutPort != 0 ||
		op.Route.DstIP != r.h10.IP || op.Route.Priority != 10 {
		t.Fatalf("detour op fields wrong: %+v", op)
	}
	if pending := ctrl.Verify(spec); len(pending) != 0 {
		t.Fatalf("Verify rejects a recognized detour: %v", pending)
	}

	// Ratify the detour into the spec and converge: the fabric is then
	// clean at the new routing, with no standing detours.
	rat, n := ctrl.Ratify(spec)
	if n != 1 {
		t.Fatalf("Ratify folded %d detours, want 1", n)
	}
	var res fabric.ConvergeResult
	ctrl.Converge(rat, fabric.ConvergeConfig{}, func(cr fabric.ConvergeResult) { res = cr })
	r.sim.RunUntil(3 * netsim.Millisecond)
	if !res.Converged {
		t.Fatalf("converge on ratified spec failed: %+v", res)
	}
	if len(res.Detours) != 0 {
		t.Fatalf("ratified converge still reports detours: %+v", res.Detours)
	}

	// Promote hands the arm its new primary; the detour clears without
	// touching the TCAM.
	if err := r.arm.Promote("h10-via-spine1"); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if len(r.arm.ActiveDetours()) != 0 {
		t.Fatal("detour still active after promotion")
	}
	if a := r.entryAction(t, r.primaryEntry); a.OutPort != 1 {
		t.Fatalf("entry action port %d after promote, want 1", a.OutPort)
	}
}

// When a reflex arm loses the CAS discipline (another writer bumped the
// entry version), its recorded detour no longer matches live state, so
// the controller treats the drift as ordinary and restores the spec's
// primary routing — the arm stands down and can be re-armed afterwards.
func TestControllerRestoresStaleArm(t *testing.T) {
	r := newRig(t, baseConfig(nil))
	ctrl := fabric.New(r.sim)
	ctrl.Register("leaf0", r.leaf[0])
	ctrl.RegisterDetours("leaf0", r.arm)
	spec := leaf0Spec(r)

	r.sim.At(netsim.Millisecond, r.killPrimary)
	r.sim.RunUntil(2 * netsim.Millisecond)
	if r.arm.Fires() != 1 {
		t.Fatalf("fires=%d, want 1", r.arm.Fires())
	}

	// Another writer touches the detoured entry: same action, bumped
	// version.  The arm's recorded (EntryID, Version) no longer matches
	// live state, so matchDetour must refuse the attribution.
	if err := r.leaf[0].TCAM().Update(r.primaryEntry, tcam.Action{OutPort: 1}); err != nil {
		t.Fatalf("Update: %v", err)
	}

	// Heal the link, then converge on the original spec: the drift is
	// ordinary now, so the controller rewrites the entry back to the
	// primary port.
	r.healPrimary()
	cs, _, err := ctrl.Diff(spec)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if got := cs.Mutations(); got != 1 {
		t.Fatalf("stale-arm diff wants %d mutations, want 1 restore:\n%s", got, cs)
	}
	if len(cs.Detours()) != 0 {
		t.Fatalf("stale arm still attributed as detour:\n%s", cs)
	}
	var res fabric.ConvergeResult
	ctrl.Converge(spec, fabric.ConvergeConfig{}, func(cr fabric.ConvergeResult) { res = cr })
	r.sim.RunUntil(3 * netsim.Millisecond)
	if !res.Converged {
		t.Fatalf("converge failed: %+v", res)
	}
	if a := r.entryAction(t, r.primaryEntry); a.OutPort != 0 {
		t.Fatalf("entry action port %d after restore, want primary 0", a.OutPort)
	}

	// The arm noticed the lost race or the restore; Rearm recaptures
	// the live entry (now at the primary) and re-arms it.
	r.arm.Rearm()
	if r.arm.Detoured("h10-via-spine1") || r.arm.Stale("h10-via-spine1") {
		t.Fatal("arm not re-armed after restore")
	}
	if len(r.arm.ActiveDetours()) != 0 {
		t.Fatal("spurious active detour after re-arm")
	}
}
