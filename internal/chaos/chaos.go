// Package chaos composes every fault the simulator can inject — switch
// crash-restarts, bursty (Gilbert–Elliott) frame loss, silent TCAM
// blackholes and TCPU admission throttling — into one deterministic
// leaf-spine soak, and checks that the end-host mechanisms built on
// TPPs degrade and recover the way the paper argues they must: RCP*
// re-seeds wiped rate registers and re-converges, accounting flags
// counter discontinuities instead of reporting garbage deltas, the
// probe machinery retries through loss, and dataplane telemetry stays
// exactly reconciled with switch counters throughout.
//
// The soak runs as a fabric scenario: dst-routing arrives as a
// declarative fabric.Spec the controller converges (and verifies after
// the crashes), the fault plan and workloads are scenario phases, and
// the scenario result rides in the soak Result so determinism covers
// the control plane too.
//
// Everything is seeded: the same Config produces the identical Result,
// which the soak test asserts by running every seed twice.
package chaos

import (
	"fmt"
	"strings"

	"repro/internal/accounting"
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/fabric"
	"repro/internal/fabric/scenario"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rcp"
	"repro/internal/topo"
)

// Config parameterizes the soak.  Zero values select the canonical
// scenario via Default.
type Config struct {
	Seed     int64
	Duration netsim.Time

	// RebootAt schedules crash-restarts of spine 0 (the RCP bottleneck
	// and the accounting counter's home switch).
	RebootAt  []netsim.Time
	BootDelay netsim.Time

	// Bursty loss window on the leaf0-spine1 fabric link.
	LossFrom, LossTo netsim.Time

	// Blackhole window on spine 1 for the throttle stream's target.
	HoleFrom, HoleTo netsim.Time

	// TPPRate/TPPBurst arm the admission gate on leaf 2 only, so the
	// probe streams transiting it get throttled while the RCP path
	// stays clean.
	TPPRate  float64
	TPPBurst int
}

// Default is the canonical chaos scenario: ~7 simulated seconds over a
// 3x2 leaf-spine fabric with two spine-0 crashes, a five-second bursty
// loss window, a half-second blackhole and a throttled edge switch.
func Default(seed int64) Config {
	return Config{
		Seed:      seed,
		Duration:  7 * netsim.Second,
		RebootAt:  []netsim.Time{3 * netsim.Second, 5 * netsim.Second},
		BootDelay: 50 * netsim.Millisecond,
		LossFrom:  1 * netsim.Second, LossTo: 6 * netsim.Second,
		HoleFrom: 2 * netsim.Second, HoleTo: 2500 * netsim.Millisecond,
		TPPRate: 100, TPPBurst: 4,
	}
}

// Result is the soak's observable outcome.  It contains only plain
// values so two runs with the same Config can be compared wholesale to
// prove determinism.
type Result struct {
	// Scenario is the control-plane outcome: the provision converge
	// that programmed the dst-routing spec, the fault plan, and the
	// end-of-soak verify that the routes survived the crashes.
	Scenario scenario.Result

	// Conservation audit over every queue of every switch:
	// EnqPkts == DeqPkts + FlushedPkts + Len() must hold (tail drops
	// never enter the queue), so Leaked (the sum of the differences)
	// must be zero — a reboot neither duplicates nor loses track of a
	// packet.
	Leaked int64

	// Reboot bookkeeping on spine 0.
	Reboots          uint64
	RebootDrops      uint64
	RebootSpans      int // StageSwitchReboot spans
	SwitchUpSpans    int // StageSwitchUp spans
	RebootDropSpans  int // StageRebootDrop spans from spine 0
	RebootsMetric    int64
	RebootDropMetric int64

	// RCP* recovery.
	EpochBumps  uint64
	Reinits     uint64
	RCPTimeouts uint64
	// RateSamples is LastRate sampled every 100ms (bytes/sec).
	RateSamples []float64
	// RateAfterReboot[i] is LastRate at RebootAt[i] + the recovery
	// window (30 control intervals).
	RateAfterReboot []float64

	// Accounting through the crashes.
	Polls           int
	NegativeDeltas  int
	Discontinuities uint64
	FinalTally      uint32

	// Throttling on leaf 2.
	Throttled       uint64 // switch counter
	ThrottleSpans   int    // StageThrottle spans from leaf 2
	ThrottleMetric  int64
	ThrottledEchoes int // stream echoes carrying FlagThrottled
	CleanEchoes     int // stream echoes executed end-to-end
	StreamTimeouts  uint64

	// Tracer health: reconciliation is only sound if nothing wrapped.
	SpansDropped uint64
}

// chaosScenario renders the soak's phase graph.  The fault events vary
// with Config (the reboot list is variable-length), so the document is
// generated rather than static.
func chaosScenario(cfg Config, holeIP uint32) string {
	var sb strings.Builder
	sb.WriteString("name: chaos-soak\nphases:\n")
	sb.WriteString("  - name: provision\n    kind: provision\n    budget: 5\n    backoff: 10ms\n")
	sb.WriteString("  - name: storm\n    kind: faults\n    needs: [provision]\n    events:\n")
	fmt.Fprintf(&sb, "      - at: %dns\n        kind: %v\n        target: leaf0-spine1\n"+
		"        pgoodbad: 0.01\n        pbadgood: 0.1\n        lossgood: 0.005\n        lossbad: 0.5\n",
		cfg.LossFrom, faults.LinkBurstyLoss)
	fmt.Fprintf(&sb, "      - at: %dns\n        kind: %v\n        target: leaf0-spine1\n",
		cfg.LossTo, faults.ClearLoss)
	fmt.Fprintf(&sb, "      - at: %dns\n        kind: %v\n        target: spine1\n        dstip: %s\n",
		cfg.HoleFrom, faults.Blackhole, core.IPv4String(holeIP))
	fmt.Fprintf(&sb, "      - at: %dns\n        kind: %v\n        target: spine1\n        dstip: %s\n",
		cfg.HoleTo, faults.ClearBlackhole, core.IPv4String(holeIP))
	for _, at := range cfg.RebootAt {
		fmt.Fprintf(&sb, "      - at: %dns\n        kind: %v\n        target: spine0\n        bootdelay: %dns\n",
			at, faults.SwitchReboot, cfg.BootDelay)
	}
	sb.WriteString("  - name: work\n    kind: workloads\n    needs: [provision]\n" +
		"    hooks: [rcp, accounting, stream, sampling]\n")
	fmt.Fprintf(&sb, "  - name: soak\n    kind: run\n    needs: [work, storm]\n    until: %dns\n",
		cfg.Duration)
	sb.WriteString("  - name: check\n    kind: asserts\n    needs: [soak]\n    hooks: [routes-intact]\n")
	return sb.String()
}

// Run executes the scenario.
func Run(cfg Config) Result {
	if cfg.Duration <= 0 {
		cfg = Default(cfg.Seed)
	}
	sim := netsim.New(cfg.Seed)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 19)

	// 3 leaves x 2 spines, built by hand so only the two switches whose
	// telemetry the soak reconciles (spine 0: reboots; leaf 2: the
	// admission gate) carry the tracer.  Construction order mirrors
	// topo.LeafSpine: spines first, then leaves, so leaf i's ports
	// 0..S-1 climb to spines 0..S-1 and spine s's ports 0..L-1 descend
	// to leaves 0..L-1.
	const (
		leavesN = 3
		spinesN = 2
		hostsN  = 2 // hosts per leaf; host j of any leaf rides spine j
	)
	n := topo.NewNetwork(sim)
	spines := make([]*asic.Switch, spinesN)
	spines[0] = n.AddSwitch(asic.Config{Ports: 8, Metrics: reg, Trace: tracer})
	spines[1] = n.AddSwitch(asic.Config{Ports: 8, Metrics: reg})
	leaves := make([]*asic.Switch, leavesN)
	leaves[0] = n.AddSwitch(asic.Config{Ports: 8, Metrics: reg})
	leaves[1] = n.AddSwitch(asic.Config{Ports: 8, Metrics: reg})
	leaves[2] = n.AddSwitch(asic.Config{Ports: 8, Metrics: reg, Trace: tracer,
		TPPRate: cfg.TPPRate, TPPBurst: cfg.TPPBurst})
	// Channels stay untraced: the soak reconciles switch spans only.
	n.SetTrace(nil)

	edge := topo.Mbps(20, 10*netsim.Microsecond)
	backbone := topo.Mbps(10, 10*netsim.Microsecond)
	for _, leaf := range leaves {
		for _, sp := range spines {
			n.LinkSwitches(leaf, sp, backbone)
		}
	}
	hosts := make([][]*endhost.Host, leavesN)
	for li := range hosts {
		hosts[li] = make([]*endhost.Host, hostsN)
		for j := range hosts[li] {
			hosts[li][j] = n.AddHost()
			n.LinkHost(hosts[li][j], leaves[li], edge)
		}
	}

	// Deterministic dst-routing (same scheme as the ndb hunt): host j
	// of any leaf is reached via spine j, so the fabric never depends
	// on learned L2 state a reboot would wipe.  The routes are a
	// declarative spec the controller converges, not hand inserts.
	leafRoutes := make([][]fabric.Route, leavesN)
	spineRoutes := make([][]fabric.Route, spinesN)
	for li := range hosts {
		for hj, h := range hosts[li] {
			leafRoutes[li] = append(leafRoutes[li], fabric.Route{
				DstIP: h.IP, Priority: 100, OutPort: n.AttachmentOf(h).Port})
			for other := range leaves {
				if other != li {
					leafRoutes[other] = append(leafRoutes[other], fabric.Route{
						DstIP: h.IP, Priority: 10, OutPort: hj})
				}
			}
			for si := range spines {
				spineRoutes[si] = append(spineRoutes[si], fabric.Route{
					DstIP: h.IP, Priority: 10, OutPort: li})
			}
		}
	}
	var spec fabric.Spec
	fab := fabric.New(sim)
	for li, sw := range leaves {
		name := fmt.Sprintf("leaf%d", li)
		fab.Register(name, sw)
		spec.Devices = append(spec.Devices, fabric.DeviceSpec{Device: name, Routes: leafRoutes[li]})
	}
	for si, sw := range spines {
		name := fmt.Sprintf("spine%d", si)
		fab.Register(name, sw)
		spec.Devices = append(spec.Devices, fabric.DeviceSpec{Device: name, Routes: spineRoutes[si]})
	}
	rcp.InitRateRegisters(append(append([]*asic.Switch{}, leaves...), spines...)...)

	// Fault plan: two spine-0 crashes, a bursty-loss window on
	// leaf0-spine1, and a silent blackhole for the throttle stream's
	// destination on spine 1.  The events live in the scenario; the
	// injector just needs the target registry.
	inj := faults.NewInjector(sim, tracer)
	inj.RegisterSwitch("spine0", spines[0])
	inj.RegisterSwitch("spine1", spines[1])
	inj.RegisterLink("leaf0-spine1",
		leaves[0].Port(1).Channel(), spines[1].Port(0).Channel())
	holeIP := hosts[2][1].IP

	// Workload 1: one RCP* flow hosts[0][0] -> hosts[1][0], bottlenecked
	// on the fabric and riding spine 0 — squarely in the crash zone.
	params := rcp.DefaultParams()
	ctlProber := endhost.NewProber(hosts[0][0])
	ctl := rcp.NewStarController(sim, hosts[0][0], ctlProber,
		hosts[1][0].MAC, hosts[1][0].IP, params)

	// Workload 2: a shared accounting tally in spine 0's SRAM.  One
	// writer increments it; a poller tracks deltas and must flag (not
	// corrupt) the discontinuity when a crash zeroes the tally.
	tallyAddr := mem.SRAMBase + 16
	writerProber := endhost.NewProber(hosts[0][1])
	writerProber.SetDefaults(endhost.ProbeConfig{
		Timeout: 100 * netsim.Millisecond, Retries: 2, Backoff: 2})
	writer := accounting.NewCounter(writerProber, hosts[2][0].MAC, hosts[2][0].IP,
		spines[0].ID(), tallyAddr, accounting.Atomic)
	pollProber := endhost.NewProber(hosts[1][1])
	pollProber.SetDefaults(endhost.ProbeConfig{
		Timeout: 100 * netsim.Millisecond, Retries: 2, Backoff: 2})
	poller := accounting.NewCounter(pollProber, hosts[2][0].MAC, hosts[2][0].IP,
		spines[0].ID(), tallyAddr, accounting.Atomic)

	// Workload 3: a collect-probe stream hosts[0][1] -> hosts[2][1]
	// that transits the bursty link, the blackholed destination AND the
	// throttled leaf — the compose-everything stream.
	streamProber := endhost.NewProber(hosts[0][1])
	streamCfg := endhost.ProbeConfig{
		Timeout: 50 * netsim.Millisecond, Retries: 1, Backoff: 2}
	streamProg := func() *core.TPP {
		tpp, err := endhost.CollectProgram(
			[]mem.Addr{mem.SwitchBase + mem.SwitchID, mem.SwitchBase + mem.SwitchEpoch},
			4, 5)
		if err != nil {
			panic(err)
		}
		return tpp
	}

	var res Result
	var lastValue uint32
	res.RateAfterReboot = make([]float64, len(cfg.RebootAt))

	env := &scenario.Env{
		Sim:        sim,
		Controller: fab,
		Injector:   inj,
		Spec:       spec,
		Seed:       cfg.Seed,
		Workloads: map[string]scenario.Hook{
			"rcp": func(*scenario.Env) error {
				ctl.Start()
				return nil
			},
			"accounting": func(*scenario.Env) error {
				sim.Every(20*netsim.Millisecond, 25*netsim.Millisecond, func() {
					writer.Add(1, nil)
				})
				sim.Every(60*netsim.Millisecond, 100*netsim.Millisecond, func() {
					poller.Poll(func(value uint32, delta int64, discont bool) {
						res.Polls++
						if delta < 0 {
							res.NegativeDeltas++
						}
						lastValue = value
					})
				})
				return nil
			},
			"stream": func(*scenario.Env) error {
				sim.Every(10*netsim.Millisecond, 5*netsim.Millisecond, func() {
					streamProber.ProbeCfg(hosts[2][1].MAC, hosts[2][1].IP, streamProg(), streamCfg,
						func(e *core.TPP) {
							if e.Flags&core.FlagThrottled != 0 {
								res.ThrottledEchoes++
							} else {
								res.CleanEchoes++
							}
						}, nil)
				})
				return nil
			},
			// Sampling: LastRate every 100ms, plus one checkpoint 30
			// control intervals after each reboot for the
			// bounded-recovery assertion.
			"sampling": func(*scenario.Env) error {
				sim.Every(100*netsim.Millisecond, 100*netsim.Millisecond, func() {
					res.RateSamples = append(res.RateSamples, ctl.LastRate)
				})
				for i, at := range cfg.RebootAt {
					i := i
					sim.At(at+30*params.T, func() { res.RateAfterReboot[i] = ctl.LastRate })
				}
				return nil
			},
		},
		Asserts: map[string]scenario.Hook{
			// TCAM state survives a crash-restart; after two of them the
			// live fabric must still verify field-for-field against the
			// routing spec.
			"routes-intact": func(e *scenario.Env) error {
				if errs := e.Controller.Verify(e.Spec); len(errs) > 0 {
					return fmt.Errorf("%d devices off spec: %v", len(errs), errs)
				}
				return nil
			},
		},
	}
	sc, err := scenario.Parse(chaosScenario(cfg, holeIP), nil)
	if err != nil {
		panic(fmt.Sprintf("chaos: bad scenario: %v", err))
	}
	res.Scenario = scenario.Run(env, sc)
	ctl.Stop()

	// Audit.
	for _, sw := range append(append([]*asic.Switch{}, leaves...), spines...) {
		for p := 0; p < sw.Ports(); p++ {
			port := sw.Port(p)
			for q := 0; q < port.Queues(); q++ {
				qu := port.Queue(q)
				res.Leaked += int64(qu.EnqPkts) -
					int64(qu.DeqPkts+qu.FlushedPkts+uint64(qu.Len()))
			}
		}
	}
	res.Reboots = spines[0].Reboots()
	res.RebootDrops = spines[0].RebootDrops()
	res.EpochBumps = ctl.EpochBumps
	res.Reinits = ctl.Reinits
	res.RCPTimeouts = ctl.Timeouts
	res.Discontinuities = poller.Discontinuities
	res.FinalTally = lastValue
	res.Throttled = leaves[2].TPPsThrottled()
	res.StreamTimeouts = streamProber.TimedOut
	res.SpansDropped = tracer.Dropped()

	for _, ev := range tracer.Events() {
		switch {
		case ev.Stage == obs.StageSwitchReboot && ev.Node == spines[0].ID():
			res.RebootSpans++
		case ev.Stage == obs.StageSwitchUp && ev.Node == spines[0].ID():
			res.SwitchUpSpans++
		case ev.Stage == obs.StageRebootDrop && ev.Node == spines[0].ID():
			res.RebootDropSpans++
		case ev.Stage == obs.StageThrottle && ev.Node == leaves[2].ID():
			res.ThrottleSpans++
		}
	}
	snap := reg.Snapshot(int64(sim.Now()))
	if m, ok := snap.Get(fmt.Sprintf("switch/%d/reboots", spines[0].ID())); ok {
		res.RebootsMetric = m.Value
	}
	if m, ok := snap.Get(fmt.Sprintf("switch/%d/reboot_drops", spines[0].ID())); ok {
		res.RebootDropMetric = m.Value
	}
	if m, ok := snap.Get(fmt.Sprintf("switch/%d/tpps_throttled", leaves[2].ID())); ok {
		res.ThrottleMetric = m.Value
	}
	return res
}
