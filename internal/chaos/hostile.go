package chaos

import (
	"fmt"

	"repro/internal/accounting"
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/fabric"
	"repro/internal/fabric/scenario"
	"repro/internal/faults"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rcp"
	"repro/internal/topo"
	"repro/internal/verify"
)

// Tenant cast of the hostile soak.
const (
	victim1Tenant = guard.TenantID(1) // RCP* flow 1 (control ACL)
	victim2Tenant = guard.TenantID(2) // RCP* flow 2 (control ACL)
	acctTenant    = guard.TenantID(3) // accounting writer + poller
	rogueTenant   = guard.TenantID(9) // the hostile flood
)

// HostileConfig parameterizes the hostile-tenant soak.  Zero values
// select the canonical scenario via DefaultHostile.
type HostileConfig struct {
	Seed     int64
	Duration netsim.Time

	// RoguePPS is the forged-TPP flood rate; RogueFrom is when the
	// rogue wakes up.  The flood runs to the end of the soak.
	RoguePPS  float64
	RogueFrom netsim.Time

	// TPPRate arms the per-tenant weighted admission gate on both
	// switches; the rogue's weighted share is a small fraction of it.
	TPPRate float64

	// ConvergeFrom starts the window whose rate samples must sit at
	// the victims' fair share.
	ConvergeFrom netsim.Time
}

// DefaultHostile is the canonical hostile-tenant scenario: 5 simulated
// seconds, a rogue waking at 500ms and flooding forged write-TPPs at
// 800/s — over 12x its weighted admission share — while two victim
// RCP* flows share a 20 Mb/s bottleneck and a victim accounting pair
// keeps a shared tally on the bottleneck switch.
func DefaultHostile(seed int64) HostileConfig {
	return HostileConfig{
		Seed:     seed,
		Duration: 5 * netsim.Second,
		RoguePPS: 800, RogueFrom: 500 * netsim.Millisecond,
		TPPRate:      2000,
		ConvergeFrom: 3 * netsim.Second,
	}
}

// HostileResult is the soak's observable outcome, plain values only so
// two same-seed runs can be compared wholesale.  Per-switch arrays are
// indexed 0 = the tenants' edge switch, 1 = the far switch.
type HostileResult struct {
	// Scenario is the control-plane outcome: the provision converge
	// that granted the tenant cast on both switches, the flood plan,
	// and the end-of-soak verify that every grant survived intact.
	Scenario scenario.Result

	// Flood bookkeeping.
	RogueSent uint64

	// Denial reconciliation, per switch: the switch counter, the
	// global metric, the rogue's per-tenant metric, the guard-table
	// sum over tenants, and the StageAccessDeny span count must agree
	// exactly.
	Denied            [2]uint64
	DeniedMetric      [2]int64
	RogueDeniedMetric [2]int64
	DeniedTable       [2]uint64
	DeniedSpans       [2]int
	RogueDenied       [2]uint64
	VictimDenied      [2]uint64 // tenants 1, 2 and 3 combined; must be 0

	// Admission: the rogue got throttled, the victims never did, and
	// the per-tenant table sums match the switch counters.
	Throttled       [2]uint64
	ThrottledTable  [2]uint64
	RogueThrottled  [2]uint64
	VictimThrottled [2]uint64

	// Victim convergence: LastRate sampled every 100ms, plus the mean
	// over [ConvergeFrom, Duration).  FairShare is C/2 for the shared
	// bottleneck.
	V1Samples, V2Samples []float64
	V1Mean, V2Mean       float64
	FairShare            float64

	// Victim accounting across the flood.
	Polls           int
	NegativeDeltas  int
	Discontinuities uint64
	WriterDone      uint64 // adds acknowledged by the writer
	WriterFailures  uint64 // adds abandoned after CSTORE conflicts
	FinalTally      uint32 // last value the poller observed
	TallyPhysical   uint32 // the tally word read straight out of SRAM

	// Queue conservation and tracer health.
	Leaked       int64
	SpansDropped uint64
}

// hostileTenants is the per-device tenant cast as spec entries.  The
// spec canonicalizes by tenant ID, so both switches grant in the same
// order (1, 2, 3, 9) and carve identical partitions: one static grant
// describes a program's runtime window on every hop.
func hostileTenants() []fabric.Tenant {
	return []fabric.Tenant{
		{ID: victim1Tenant, Policy: fabric.PolicyControl, Words: 64, Weight: 10, Burst: 16},
		{ID: victim2Tenant, Policy: fabric.PolicyControl, Words: 64, Weight: 10, Burst: 16},
		{ID: acctTenant, Policy: fabric.PolicyDefault, Words: 64, Weight: 10, Burst: 32},
		{ID: rogueTenant, Policy: fabric.PolicyDefault, Words: 64, Weight: 1, Burst: 4},
	}
}

// hostileScenario renders the soak's phase graph: provision the tenant
// grants, arm the flood, start the victim workloads, soak, verify the
// grants survived.
func hostileScenario(cfg HostileConfig, dstMAC core.MAC, dstIP uint32) string {
	return fmt.Sprintf(`name: hostile-soak
phases:
  - name: provision
    kind: provision
    budget: 5
    backoff: 10ms
  - name: flood
    kind: faults
    needs: [provision]
    events:
      - at: %dns
        kind: %v
        target: rogue
        pps: %g
        dstmac: %s
        dstip: %s
  - name: work
    kind: workloads
    needs: [provision]
    hooks: [seal, rcp, accounting, sampling]
  - name: soak
    kind: run
    needs: [work, flood]
    until: %dns
  - name: check
    kind: asserts
    needs: [soak]
    hooks: [grants-intact]
`, cfg.RogueFrom, faults.RogueTenant, cfg.RoguePPS,
		dstMAC, core.IPv4String(dstIP), cfg.Duration)
}

// RunHostile executes the hostile-tenant scenario.
func RunHostile(cfg HostileConfig) HostileResult {
	if cfg.Duration <= 0 {
		cfg = DefaultHostile(cfg.Seed)
	}
	sim := netsim.New(cfg.Seed)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 19)

	// Two guarded switches around one 20 Mb/s bottleneck.  s0 is the
	// tenants' edge: victims, accounting writer and the rogue all
	// attach there; receivers sit behind s1.
	n := topo.NewNetwork(sim)
	mk := func() *asic.Switch {
		return n.AddSwitch(asic.Config{Ports: 8, Metrics: reg, Trace: tracer,
			Guard: true, TPPRate: cfg.TPPRate})
	}
	s0, s1 := mk(), mk()
	n.SetTrace(nil) // switch spans only; channels stay untraced

	edge := topo.Mbps(40, 10*netsim.Microsecond)
	bottleneck := topo.Mbps(20, 10*netsim.Microsecond)
	n.LinkSwitches(s0, s1, bottleneck)

	v1, v2 := n.AddHost(), n.AddHost() // victim senders
	wr, rg := n.AddHost(), n.AddHost() // accounting writer, rogue
	for _, h := range []*endhost.Host{v1, v2, wr, rg} {
		n.LinkHost(h, s0, edge)
	}
	d1, d2 := n.AddHost(), n.AddHost() // victim receivers
	pl, rd := n.AddHost(), n.AddHost() // accounting poller, rogue's sink
	for _, h := range []*endhost.Host{d1, d2, pl, rd} {
		n.LinkHost(h, s1, edge)
	}
	n.PrimeL2(5 * netsim.Millisecond)

	// The tenant cast arrives as a declarative spec the controller
	// converges during the provision phase — no hand registration.
	fab := fabric.New(sim)
	fab.Register("s0", s0)
	fab.Register("s1", s1)
	spec := fabric.Spec{Devices: []fabric.DeviceSpec{
		{Device: "s0", Tenants: hostileTenants()},
		{Device: "s1", Tenants: hostileTenants()},
	}}
	rcp.InitRateRegisters(s0, s1)

	// The hostile flood is a declarative fault-plan event, like a
	// reboot or a loss window.
	inj := faults.NewInjector(sim, tracer)
	inj.RegisterHost("rogue", rg)

	// Victim workload 1+2: two RCP* flows sharing the bottleneck, so
	// each must converge to C/2.
	params := rcp.DefaultParams()
	ctl1 := rcp.NewStarController(sim, v1, endhost.NewProber(v1), d1.MAC, d1.IP, params)
	ctl2 := rcp.NewStarController(sim, v2, endhost.NewProber(v2), d2.MAC, d2.IP, params)

	// Victim workload 3: a shared tally in s1's SRAM (tenant-relative
	// word 16 of the accounting tenant's partition).  Writer and
	// poller approach from opposite sides; both paths transit s1.
	tallyAddr := mem.SRAMBase + 16
	writerProber := endhost.NewProber(wr)
	writerProber.SetDefaults(endhost.ProbeConfig{
		Timeout: 100 * netsim.Millisecond, Retries: 2, Backoff: 2})
	writer := accounting.NewCounter(writerProber, pl.MAC, pl.IP,
		s1.ID(), tallyAddr, accounting.Atomic)
	pollProber := endhost.NewProber(pl)
	pollProber.SetDefaults(endhost.ProbeConfig{
		Timeout: 100 * netsim.Millisecond, Retries: 2, Backoff: 2})
	poller := accounting.NewCounter(pollProber, wr.MAC, wr.IP,
		s1.ID(), tallyAddr, accounting.Atomic)

	var res HostileResult
	var lastValue uint32
	// Stop adding well before the end so every in-flight CSTORE chain
	// resolves and WriterDone reconciles exactly with the SRAM word.
	addUntil := cfg.Duration - 500*netsim.Millisecond

	env := &scenario.Env{
		Sim:        sim,
		Controller: fab,
		Injector:   inj,
		Spec:       spec,
		Seed:       cfg.Seed,
		Workloads: map[string]scenario.Hook{
			// Seal tenant identities at the trusted edge, and gate every
			// victim NIC with the grant-aware static verifier: a program
			// that passes here must never trip the dynamic guard.  The
			// grants are read back from the switch the provision phase
			// just programmed, not assumed.
			"seal": func(*scenario.Env) error {
				seal := func(h *endhost.Host, id guard.TenantID) error {
					g, ok := s0.Guard().Lookup(id)
					if !ok {
						return fmt.Errorf("tenant %d not provisioned", id)
					}
					h.NIC.SetTenant(uint8(id))
					h.NIC.SetVerifier(&verify.Config{Grant: &g}, nil)
					return nil
				}
				for _, pair := range []struct {
					h  *endhost.Host
					id guard.TenantID
				}{{v1, victim1Tenant}, {v2, victim2Tenant}, {wr, acctTenant}, {pl, acctTenant}} {
					if err := seal(pair.h, pair.id); err != nil {
						return err
					}
				}
				// The rogue's edge seals its identity but does not verify
				// — it models a tenant whose programs reach the fabric
				// unchecked.
				rg.NIC.SetTenant(uint8(rogueTenant))
				return nil
			},
			"rcp": func(*scenario.Env) error {
				ctl1.Start()
				ctl2.Start()
				return nil
			},
			"accounting": func(*scenario.Env) error {
				sim.Every(20*netsim.Millisecond, 25*netsim.Millisecond, func() {
					if sim.Now() < addUntil {
						writer.Add(1, func(uint32) { res.WriterDone++ })
					}
				})
				sim.Every(60*netsim.Millisecond, 100*netsim.Millisecond, func() {
					poller.Poll(func(value uint32, delta int64, discont bool) {
						res.Polls++
						if delta < 0 {
							res.NegativeDeltas++
						}
						lastValue = value
					})
				})
				return nil
			},
			// Sample both victims' rates every 100ms.
			"sampling": func(*scenario.Env) error {
				sim.Every(100*netsim.Millisecond, 100*netsim.Millisecond, func() {
					res.V1Samples = append(res.V1Samples, ctl1.LastRate)
					res.V2Samples = append(res.V2Samples, ctl2.LastRate)
				})
				return nil
			},
		},
		Asserts: map[string]scenario.Hook{
			// After five seconds of forged-write flood, every grant must
			// still verify field-for-field: the rogue never perturbed
			// the control plane.
			"grants-intact": func(e *scenario.Env) error {
				if errs := e.Controller.Verify(e.Spec); len(errs) > 0 {
					return fmt.Errorf("%d devices off spec: %v", len(errs), errs)
				}
				return nil
			},
		},
	}
	sc, err := scenario.Parse(hostileScenario(cfg, rd.MAC, rd.IP), nil)
	if err != nil {
		panic(fmt.Sprintf("chaos: bad scenario: %v", err))
	}
	res.Scenario = scenario.Run(env, sc)
	ctl1.Stop()
	ctl2.Stop()

	// Harvest.
	res.FairShare = float64(bottleneck.RateBps) / 8 / 2
	mean := func(samples []float64, from int) float64 {
		if from >= len(samples) {
			return 0
		}
		var sum float64
		for _, s := range samples[from:] {
			sum += s
		}
		return sum / float64(len(samples)-from)
	}
	fromIdx := int(cfg.ConvergeFrom / (100 * netsim.Millisecond))
	res.V1Mean = mean(res.V1Samples, fromIdx)
	res.V2Mean = mean(res.V2Samples, fromIdx)

	res.RogueSent = inj.RogueSent
	snap := reg.Snapshot(int64(sim.Now()))
	for i, sw := range []*asic.Switch{s0, s1} {
		res.Denied[i] = sw.TPPsDenied()
		res.Throttled[i] = sw.TPPsThrottled()
		tbl := sw.Guard()
		for _, id := range tbl.Tenants() {
			res.DeniedTable[i] += tbl.Denied(id)
			res.ThrottledTable[i] += tbl.Throttled(id)
		}
		res.RogueDenied[i] = tbl.Denied(rogueTenant)
		res.RogueThrottled[i] = tbl.Throttled(rogueTenant)
		for _, id := range []guard.TenantID{victim1Tenant, victim2Tenant, acctTenant} {
			res.VictimDenied[i] += tbl.Denied(id)
			res.VictimThrottled[i] += tbl.Throttled(id)
		}
		if m, ok := snap.Get(fmt.Sprintf("switch/%d/tpps_denied", sw.ID())); ok {
			res.DeniedMetric[i] = m.Value
		}
		if m, ok := snap.Get(fmt.Sprintf("switch/%d/tenant/%d/tpps_denied",
			sw.ID(), rogueTenant)); ok {
			res.RogueDeniedMetric[i] = m.Value
		}
	}
	for _, ev := range tracer.Events() {
		if ev.Stage != obs.StageAccessDeny {
			continue
		}
		switch ev.Node {
		case s0.ID():
			res.DeniedSpans[0]++
		case s1.ID():
			res.DeniedSpans[1]++
		}
	}

	res.WriterFailures = writer.Failures
	res.Discontinuities = poller.Discontinuities
	res.FinalTally = lastValue
	// Read the tally straight out of s1's SRAM through the accounting
	// tenant's relocation — the word the writer's CSTOREs landed on.
	if phys, ok := physSRAMAddr(s1, acctTenant, tallyAddr); ok {
		res.TallyPhysical = s1.SRAM(mem.SRAMIndex(phys))
	}

	for _, sw := range []*asic.Switch{s0, s1} {
		for p := 0; p < sw.Ports(); p++ {
			port := sw.Port(p)
			for q := 0; q < port.Queues(); q++ {
				qu := port.Queue(q)
				// Tail drops never enter the queue (EnqPkts + DropPkts
				// == offered), so they are not part of the balance.
				res.Leaked += int64(qu.EnqPkts) -
					int64(qu.DeqPkts+qu.FlushedPkts+uint64(qu.Len()))
			}
		}
	}
	res.SpansDropped = tracer.Dropped()
	return res
}

// physSRAMAddr resolves a tenant-relative address to its physical
// SRAM word on the given switch.
func physSRAMAddr(sw *asic.Switch, id guard.TenantID, a mem.Addr) (mem.Addr, bool) {
	g, ok := sw.Guard().Lookup(id)
	if !ok {
		return 0, false
	}
	return g.CheckLoad(a)
}
