package chaos

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// TestHostileSoak runs the hostile-tenant scenario for three pinned
// seeds and asserts the isolation contract end to end.  Each seed runs
// twice: the Results must be identical word for word.
func TestHostileSoak(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := DefaultHostile(seed)
			res := RunHostile(cfg)
			if again := RunHostile(cfg); !reflect.DeepEqual(res, again) {
				t.Fatalf("non-deterministic soak:\nfirst  %+v\nsecond %+v", res, again)
			}
			checkHostile(t, res)
		})
	}
}

func checkHostile(t *testing.T, res HostileResult) {
	t.Helper()

	// 0. The control plane held: the tenant cast converged in one
	// attempt (4 grants on each of 2 switches = 8 ops) and every grant
	// still verified field-for-field after the flood.
	if !res.Scenario.OK() {
		t.Fatalf("scenario not OK: aborted=%q failures=%v",
			res.Scenario.Aborted, res.Scenario.Failures())
	}
	prov := res.Scenario.Phases[0]
	if prov.Kind != "provision" || len(prov.Converges) != 1 {
		t.Fatalf("first phase = %+v, want one provision converge", prov)
	}
	if c := prov.Converges[0]; !c.Converged || c.Attempts != 1 || c.OpsApplied != 8 {
		t.Errorf("provision converge = %+v, want converged in 1 attempt with 8 ops", c)
	}

	// Reconciliation is only meaningful if the ring held every span
	// and no queue lost track of a packet.
	if res.SpansDropped != 0 {
		t.Fatalf("tracer dropped %d spans; raise its capacity", res.SpansDropped)
	}
	if res.Leaked != 0 {
		t.Errorf("queue conservation violated: %d packets unaccounted", res.Leaked)
	}

	// The rogue actually flooded.
	if res.RogueSent == 0 {
		t.Fatal("rogue generator sent nothing")
	}

	for i := 0; i < 2; i++ {
		// 1. The guard denied forged writes on both switches, and every
		// view of the denials agrees exactly: switch counter, global
		// metric, per-tenant metric, guard table, span stream.
		if res.Denied[i] == 0 {
			t.Errorf("switch %d: guard denied nothing under a forged-write flood", i)
		}
		if uint64(res.DeniedMetric[i]) != res.Denied[i] ||
			res.DeniedTable[i] != res.Denied[i] ||
			uint64(res.DeniedSpans[i]) != res.Denied[i] {
			t.Errorf("switch %d: denial telemetry disagrees: counter=%d metric=%d table=%d spans=%d",
				i, res.Denied[i], res.DeniedMetric[i], res.DeniedTable[i], res.DeniedSpans[i])
		}
		// 2. Every denial was the rogue's: statically verified victim
		// programs never trip the dynamic guard.
		if res.VictimDenied[i] != 0 {
			t.Errorf("switch %d: %d victim accesses denied; verified programs must never fault",
				i, res.VictimDenied[i])
		}
		if res.RogueDenied[i] != res.Denied[i] {
			t.Errorf("switch %d: rogue denials %d != total %d",
				i, res.RogueDenied[i], res.Denied[i])
		}
		if uint64(res.RogueDeniedMetric[i]) != res.RogueDenied[i] {
			t.Errorf("switch %d: rogue per-tenant metric %d != table %d",
				i, res.RogueDeniedMetric[i], res.RogueDenied[i])
		}

		// 3. Admission: the over-quota rogue absorbed the throttling.
		// Victims may see a handful of throttles during the startup
		// transient (their probes retry through them), but the rogue's
		// flood must take at least 50x more.
		if res.RogueThrottled[i] == 0 {
			t.Errorf("switch %d: rogue flood never throttled", i)
		}
		if res.VictimThrottled[i]*50 > res.RogueThrottled[i] {
			t.Errorf("switch %d: victims throttled %d times vs rogue %d; quota failed to shield them",
				i, res.VictimThrottled[i], res.RogueThrottled[i])
		}
		if res.ThrottledTable[i] != res.Throttled[i] {
			t.Errorf("switch %d: throttle table %d != counter %d",
				i, res.ThrottledTable[i], res.Throttled[i])
		}
	}

	// 4. Both victim flows converged to their fair share of the
	// bottleneck while the flood ran.
	for name, mean := range map[string]float64{"v1": res.V1Mean, "v2": res.V2Mean} {
		if math.Abs(mean-res.FairShare)/res.FairShare > 0.10 {
			t.Errorf("%s rate %.0f B/s, want within 10%% of fair share %.0f",
				name, mean, res.FairShare)
		}
	}

	// 5. The victim tally survived the flood byte-exact: every
	// acknowledged add landed, nothing else touched the word, and the
	// poller saw a clean monotone counter throughout.
	if res.Polls == 0 {
		t.Fatal("poller never completed a poll")
	}
	if res.WriterDone == 0 {
		t.Fatal("writer never completed an add")
	}
	if res.WriterFailures != 0 {
		t.Errorf("%d adds abandoned on an uncontended counter", res.WriterFailures)
	}
	if uint64(res.TallyPhysical) != res.WriterDone {
		t.Errorf("tally word = %d, want %d (one per acknowledged add)",
			res.TallyPhysical, res.WriterDone)
	}
	if res.NegativeDeltas != 0 || res.Discontinuities != 0 {
		t.Errorf("victim accounting corrupted: %d negative deltas, %d discontinuities",
			res.NegativeDeltas, res.Discontinuities)
	}
	if uint64(res.FinalTally) > res.WriterDone {
		t.Errorf("poller read %d, above the %d acknowledged adds",
			res.FinalTally, res.WriterDone)
	}
}
