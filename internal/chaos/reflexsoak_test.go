package chaos

import (
	"fmt"
	"reflect"
	"testing"
)

// TestReflexSoak runs the reflex fast-reroute soak — seeded gray flaps
// on the primary uplink racing a leaf crash-restart — for three pinned
// seeds, twice each: the two results must match word for word
// (including the per-millisecond fire/revert trajectory), and the
// robustness contract must hold at every seed.
func TestReflexSoak(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := DefaultReflexSoak(seed)
			res := RunReflexSoak(cfg)
			if again := RunReflexSoak(cfg); !reflect.DeepEqual(res, again) {
				t.Fatalf("non-deterministic reflex soak:\nfirst  %+v\nsecond %+v", res, again)
			}
			checkReflexSoak(t, cfg, res)
		})
	}
}

func checkReflexSoak(t *testing.T, cfg ReflexSoakConfig, res ReflexSoakResult) {
	t.Helper()

	// 1. The reflex reacted to every flap that killed the heartbeat
	// round trip: at least one fire, and every fire eventually matched
	// by a revert or a ratification (no detour leaks past the end).
	if res.Fires == 0 {
		t.Fatalf("reflex never fired across %d flaps: %+v", cfg.Flaps, res)
	}
	if res.Probes == 0 {
		t.Fatal("no heartbeats sent")
	}
	if res.EndDetoured && res.Ratified == 0 {
		t.Errorf("soak ended detoured without ratification: %+v", res)
	}
	if !res.EndDetoured && !res.EndStale {
		if res.Reverts == 0 {
			t.Errorf("arm ended armed but never reverted: %+v", res)
		}
	}

	// 2. No forwarding loop ever formed: a looped detour would burn
	// TTLs, and nothing may leak from the queues — crash-restart
	// included.
	if res.TTLDrops != 0 {
		t.Errorf("TTL drops = %d; a detour looped", res.TTLDrops)
	}
	if res.Leaked != 0 {
		t.Errorf("queue conservation violated: %d packets unaccounted", res.Leaked)
	}

	// 3. The crash happened and the arm survived it: the reboot wiped
	// the evidence SRAM, yet the run ended with the fabric reconciled.
	if res.Reboots != 1 {
		t.Errorf("Reboots = %d, want 1", res.Reboots)
	}
	if !res.Converged {
		t.Errorf("closing converge failed: %+v", res)
	}

	// 4. The detour carried traffic: losses stay bounded by the
	// detection windows (a few heartbeat periods per flap plus the
	// reboot's dark window), nowhere near a full flap outage.  Each
	// 2ms down window would cost ~40 packets unprotected; with the
	// reflex the whole soak loses far less than one window.
	lost := res.Sent - res.Delivered
	if res.Sent == 0 {
		t.Fatal("stream never sent")
	}
	if lost > 35 {
		t.Errorf("lost %d of %d packets; reflex did not hold the detour", lost, res.Sent)
	}

	// 5. The trajectory covered the whole run (one sample per ms).
	if len(res.Trajectory) < int(cfg.Duration/1e6)-1 {
		t.Errorf("trajectory has %d samples for a %v soak", len(res.Trajectory), cfg.Duration)
	}
}
