package chaos

import (
	"fmt"

	"repro/internal/asic"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/reflex"
	"repro/internal/tcam"
	"repro/internal/topo"
)

// ReflexSoakConfig parameterizes the reflex fast-reroute soak: a
// leaf-spine fabric whose primary uplink gray-flaps repeatedly (in
// seeded directions and with seeded jitter) while the home leaf
// crash-restarts mid-detour, racing the reflex arm's evidence and TCAM
// writes against the reboot wipe.  Zero values select the canonical
// scenario via DefaultReflexSoak.
type ReflexSoakConfig struct {
	Seed     int64
	Duration netsim.Time

	// Flaps is how many gray down/up cycles hit the leaf0-spine0 link.
	// Each flap's direction (leaf→spine vs spine→leaf) and exact
	// timing derive from Seed, so different seeds exercise different
	// failure surfaces — including the gray case where the stream is
	// untouched and only the heartbeat round trip dies.
	Flaps int

	// RebootAt crash-restarts leaf 0 (the reflex arm's home switch)
	// while a detour is standing; BootDelay is its dark window.
	RebootAt  netsim.Time
	BootDelay netsim.Time
}

// DefaultReflexSoak is the canonical reflex soak: 40 simulated
// milliseconds, three seeded gray flaps on the primary uplink, and a
// leaf-0 crash-restart inside the third flap's down window.
func DefaultReflexSoak(seed int64) ReflexSoakConfig {
	return ReflexSoakConfig{
		Seed:     seed,
		Duration: 40 * netsim.Millisecond,
		Flaps:    3,
		// The third flap darkens the uplink at >= 24ms (see flapPlan);
		// rebooting shortly after lands inside its detour window.
		RebootAt:  25 * netsim.Millisecond,
		BootDelay: 200 * netsim.Microsecond,
	}
}

// ReflexSoakResult is the soak's observable outcome, plain values only
// so two runs with the same config compare wholesale.
type ReflexSoakResult struct {
	// Reflex arm counters at end of run.
	Fires, Reverts, StaleWrites, Probes uint64

	// Stream accounting: packets the sender handed to the fabric and
	// packets the far host received.  The difference is the loss the
	// flaps and the reboot cost despite the reflex.
	Sent, Delivered uint64

	// Loop evidence: a reflex detour that formed a forwarding loop
	// would burn TTLs; both counters must stay zero.
	TTLDrops, Blackholes uint64

	// Conservation audit over every queue of every switch (see
	// Result.Leaked).
	Leaked int64

	// Reboot bookkeeping on leaf 0.
	Reboots     uint64
	RebootDrops uint64

	// Trajectory samples one word per millisecond:
	// fires<<40 | reverts<<20 | active detours.  Run-vs-run equality
	// of the whole slice pins the timing of every fire and revert, not
	// just the totals.
	Trajectory []uint64

	// End state: the armed entry's live out port, whether the arm
	// ended detoured or stale, and the closing fabric reconciliation —
	// Ratified counts detours folded into spec before the final
	// converge (zero when the reflex already reverted).
	FinalOutPort int
	EndDetoured  bool
	EndStale     bool
	Ratified     int
	Converged    bool
}

// flapPlan derives the seeded gray-flap schedule: flap i darkens one
// seeded direction of the leaf0-spine0 link at 4ms + i*10ms plus
// jitter, for 2ms plus jitter.  The jitter source is a local LCG over
// Seed — never the simulator's shared rng — so the plan is a pure
// function of the config.
func flapPlan(cfg ReflexSoakConfig) []faults.Event {
	r := uint64(cfg.Seed)
	next := func(n uint64) uint64 {
		r = r*6364136223846793005 + 1442695040888963407
		return (r >> 33) % n
	}
	var evs []faults.Event
	for i := 0; i < cfg.Flaps; i++ {
		down := 4*netsim.Millisecond + netsim.Time(i)*10*netsim.Millisecond +
			netsim.Time(next(1000))*netsim.Microsecond
		up := down + 2*netsim.Millisecond + netsim.Time(next(2000))*netsim.Microsecond
		dir := int(next(2))
		evs = append(evs,
			faults.Event{At: down, Kind: faults.LinkGrayDown, Target: "leaf0-spine0", Dir: dir},
			faults.Event{At: up, Kind: faults.LinkGrayUp, Target: "leaf0-spine0", Dir: dir},
		)
	}
	return evs
}

// RunReflexSoak executes the reflex fast-reroute soak.
func RunReflexSoak(cfg ReflexSoakConfig) ReflexSoakResult {
	if cfg.Duration <= 0 {
		cfg = DefaultReflexSoak(cfg.Seed)
	}
	sim := netsim.New(cfg.Seed)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 16)

	edge := topo.Mbps(1000, 5*netsim.Microsecond)
	fab := topo.Mbps(1000, 10*netsim.Microsecond)
	_, hosts, leaves, spines := topo.LeafSpine(sim, 2, 2, 2, edge, fab,
		asic.Config{Metrics: reg, Trace: tracer})
	h00, h10 := hosts[0][0], hosts[1][0]

	// Exact-match dst routes in the controller band, declared as a
	// fabric spec and mirrored as direct inserts (the soak provisions
	// by hand; the closing converge checks the spec still holds).
	// Leaf uplink j faces spine j; spine port i faces leaf i; hosts
	// sit on ports 2 and 3.
	all := append(append([]*asic.Switch{}, leaves...), spines...)
	insert := func(sw *asic.Switch, prio int, ip uint32, port int) {
		v, m := tcam.DstIPRule(ip)
		sw.TCAM().Insert(fabric.BandBase+prio, v, m, tcam.Action{OutPort: port})
	}
	leafPlan := [][]struct {
		prio, port int
		ip         uint32
	}{
		{{10, 0, h10.IP}, {11, 0, hosts[1][1].IP}, {12, 2, h00.IP}, {13, 3, hosts[0][1].IP}},
		{{10, 2, h10.IP}, {11, 3, hosts[1][1].IP}, {12, 0, h00.IP}, {13, 0, hosts[0][1].IP}},
	}
	for li, plan := range leafPlan {
		for _, p := range plan {
			insert(leaves[li], p.prio, p.ip, p.port)
		}
	}
	for _, sp := range spines {
		insert(sp, 10, h10.IP, 1)
		insert(sp, 11, hosts[1][1].IP, 1)
		insert(sp, 12, h00.IP, 0)
		insert(sp, 13, hosts[0][1].IP, 0)
	}
	ctrl := fabric.New(sim)
	ctrl.Register("leaf0", leaves[0])
	spec := fabric.Spec{Devices: []fabric.DeviceSpec{{
		Device: "leaf0",
		Routes: []fabric.Route{
			{DstIP: h10.IP, Priority: 10, OutPort: 0},
			{DstIP: hosts[1][1].IP, Priority: 11, OutPort: 0},
			{DstIP: h00.IP, Priority: 12, OutPort: 2},
			{DstIP: hosts[0][1].IP, Priority: 13, OutPort: 3},
		},
	}}}

	// The reflex arm on leaf 0: both uplinks monitored through the h00
	// reflector, h10's prefix armed onto spine 1.
	arm, err := reflex.Attach(sim, leaves[0], reflex.Config{
		Metrics: reg, Trace: tracer,
	})
	if err != nil {
		panic(fmt.Sprintf("chaos: reflex attach: %v", err))
	}
	ctrl.RegisterDetours("leaf0", arm)
	if err := arm.Monitor(0, h00.MAC, h00.IP); err != nil {
		panic(fmt.Sprintf("chaos: monitor 0: %v", err))
	}
	if err := arm.Monitor(1, h00.MAC, h00.IP); err != nil {
		panic(fmt.Sprintf("chaos: monitor 1: %v", err))
	}
	if err := arm.Authorize("h10-via-spine1", h10.IP, 0, 1); err != nil {
		panic(fmt.Sprintf("chaos: authorize: %v", err))
	}

	// Fault plan: seeded gray flaps on the primary uplink plus one
	// leaf-0 crash-restart racing the standing detour.
	inj := faults.NewInjector(sim, tracer)
	inj.RegisterLink("leaf0-spine0",
		leaves[0].Port(0).Channel(), spines[0].Port(0).Channel())
	inj.RegisterSwitch("leaf0", leaves[0])
	plan := faults.Plan{Seed: cfg.Seed, Events: flapPlan(cfg)}
	if cfg.RebootAt > 0 && cfg.RebootAt < cfg.Duration {
		plan.Events = append(plan.Events, faults.Event{
			At: cfg.RebootAt, Kind: faults.SwitchReboot,
			Target: "leaf0", BootDelay: cfg.BootDelay,
		})
	}
	if err := inj.Schedule(plan); err != nil {
		panic(fmt.Sprintf("chaos: reflex soak plan: %v", err))
	}

	// Workload: a steady h00 → h10 stream across the armed prefix.
	res := ReflexSoakResult{}
	sim.Every(100*netsim.Microsecond, 50*netsim.Microsecond, func() {
		res.Sent++
		h00.Send(h00.NewPacket(h10.MAC, h10.IP, 4000, 4001, 200))
	})

	// Trajectory sampler: one packed word per millisecond.
	sim.Every(netsim.Millisecond, netsim.Millisecond, func() {
		res.Trajectory = append(res.Trajectory,
			arm.Fires()<<40|arm.Reverts()<<20|uint64(len(arm.ActiveDetours())))
	})

	sim.RunUntil(cfg.Duration)

	// End-of-soak arm state, read before the closing reconciliation
	// mutates anything.
	res.EndDetoured = arm.Detoured("h10-via-spine1")
	res.EndStale = arm.Stale("h10-via-spine1")

	// Closing reconciliation: ratify any standing detour into the spec
	// (promoting the arm so it stops trying to revert a routing the
	// operator just blessed), then converge — the fabric must end
	// clean either way.  A stale arm's rewrite is ordinary drift here:
	// the converge restores the spec's primary.
	finalSpec, ratified := ctrl.Ratify(spec)
	res.Ratified = ratified
	if ratified > 0 {
		if err := arm.Promote("h10-via-spine1"); err != nil {
			panic(fmt.Sprintf("chaos: promote: %v", err))
		}
	}
	var cres fabric.ConvergeResult
	ctrl.Converge(finalSpec, fabric.ConvergeConfig{}, func(r fabric.ConvergeResult) { cres = r })
	sim.RunUntil(cfg.Duration + 10*netsim.Millisecond)
	res.Converged = cres.Converged

	// Audit.
	res.Fires = arm.Fires()
	res.Reverts = arm.Reverts()
	res.StaleWrites = arm.StaleWrites()
	res.Probes = arm.ProbesSent()
	res.Delivered = h10.Received
	if id, ok := arm.EntryOf("h10-via-spine1"); ok {
		if e, live := leaves[0].TCAM().Get(id); live {
			res.FinalOutPort = e.Action.OutPort
		}
	}
	for _, sw := range all {
		res.TTLDrops += reg.Counter(fmt.Sprintf("switch/%d/ttl_drops", sw.ID())).Value()
		res.Blackholes += reg.Counter(fmt.Sprintf("switch/%d/blackholes", sw.ID())).Value()
		for p := 0; p < sw.Ports(); p++ {
			port := sw.Port(p)
			for q := 0; q < port.Queues(); q++ {
				qu := port.Queue(q)
				res.Leaked += int64(qu.EnqPkts) -
					int64(qu.DeqPkts+qu.FlushedPkts+uint64(qu.Len()))
			}
		}
	}
	res.Reboots = leaves[0].Reboots()
	res.RebootDrops = leaves[0].RebootDrops()
	return res
}
