package chaos

import (
	"fmt"
	"reflect"
	"testing"
)

// TestChaosSoak runs the composed reboot + bursty-loss + blackhole +
// throttle scenario for three pinned seeds and asserts the robustness
// contract end to end.  Each seed runs twice: the two Results must be
// identical, word for word — the whole point of a seeded chaos plan is
// exact replay.
func TestChaosSoak(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := Default(seed)
			res := Run(cfg)
			if again := Run(cfg); !reflect.DeepEqual(res, again) {
				t.Fatalf("non-deterministic soak:\nfirst  %+v\nsecond %+v", res, again)
			}
			checkSoak(t, cfg, res)
		})
	}
}

func checkSoak(t *testing.T, cfg Config, res Result) {
	t.Helper()

	// 0. The control plane held: the routing spec converged in one
	// attempt (6 routes per leaf + 6 per spine = 30 ops), the fault
	// plan scheduled, and the end-of-soak verify found the live fabric
	// still field-for-field on spec after two crash-restarts.
	if !res.Scenario.OK() {
		t.Fatalf("scenario not OK: aborted=%q failures=%v",
			res.Scenario.Aborted, res.Scenario.Failures())
	}
	prov := res.Scenario.Phases[0]
	if prov.Kind != "provision" || len(prov.Converges) != 1 {
		t.Fatalf("first phase = %+v, want one provision converge", prov)
	}
	if c := prov.Converges[0]; !c.Converged || c.Attempts != 1 || c.OpsApplied != 30 {
		t.Errorf("provision converge = %+v, want converged in 1 attempt with 30 ops", c)
	}

	// Telemetry reconciliation is only meaningful if the ring held
	// every span.
	if res.SpansDropped != 0 {
		t.Fatalf("tracer dropped %d spans; raise its capacity", res.SpansDropped)
	}

	// 1. Conservation: no queue anywhere duplicated or leaked a packet,
	// two crash-restarts included.
	if res.Leaked != 0 {
		t.Errorf("queue conservation violated: %d packets unaccounted", res.Leaked)
	}

	// 2. The crashes happened, dropped traffic, and every counter view
	// of them agrees exactly.
	if want := uint64(len(cfg.RebootAt)); res.Reboots != want {
		t.Errorf("Reboots = %d, want %d", res.Reboots, want)
	}
	if res.RebootDrops == 0 {
		t.Error("reboots dropped no packets under live traffic")
	}
	if uint64(res.RebootsMetric) != res.Reboots || res.RebootSpans != int(res.Reboots) {
		t.Errorf("reboot telemetry disagrees: counter=%d metric=%d spans=%d",
			res.Reboots, res.RebootsMetric, res.RebootSpans)
	}
	if res.SwitchUpSpans != int(res.Reboots) {
		t.Errorf("SwitchUpSpans = %d, want %d", res.SwitchUpSpans, res.Reboots)
	}
	if uint64(res.RebootDropMetric) != res.RebootDrops ||
		uint64(res.RebootDropSpans) != res.RebootDrops {
		t.Errorf("reboot-drop telemetry disagrees: counter=%d metric=%d spans=%d",
			res.RebootDrops, res.RebootDropMetric, res.RebootDropSpans)
	}

	// 3. RCP* noticed every crash through the epoch word, re-seeded the
	// wiped registers, and re-converged within the bounded window.
	const fairShare = 1.25e6 // 10 Mb/s fabric bottleneck, bytes/sec
	if res.EpochBumps < uint64(len(cfg.RebootAt)) {
		t.Errorf("EpochBumps = %d, want >= %d", res.EpochBumps, len(cfg.RebootAt))
	}
	if res.Reinits == 0 {
		t.Error("controller never re-seeded a wiped rate register")
	}
	for i, rate := range res.RateAfterReboot {
		if rate < 0.65*fairShare {
			t.Errorf("rate %d control intervals after reboot %d = %.0f B/s, want >= %.0f",
				30, i, rate, 0.65*fairShare)
		}
	}

	// 4. Accounting flagged the wipe instead of reporting garbage.
	if res.Polls == 0 {
		t.Fatal("poller never completed a poll")
	}
	if res.NegativeDeltas != 0 {
		t.Errorf("%d negative deltas reported across reboots", res.NegativeDeltas)
	}
	if res.Discontinuities == 0 {
		t.Error("counter wipe never flagged as a discontinuity")
	}

	// 5. The admission gate bit, throttled packets still forwarded (the
	// flagged echoes made the full round trip), and counter, metric and
	// span stream agree exactly.
	if res.Throttled == 0 {
		t.Error("admission gate never throttled despite an over-budget stream")
	}
	if res.ThrottledEchoes == 0 {
		t.Error("no throttled echo returned: throttled packets were not forwarded")
	}
	if res.CleanEchoes == 0 {
		t.Error("no un-throttled echo returned: gate never admitted the stream")
	}
	if uint64(res.ThrottleSpans) != res.Throttled ||
		uint64(res.ThrottleMetric) != res.Throttled {
		t.Errorf("throttle telemetry disagrees: counter=%d metric=%d spans=%d",
			res.Throttled, res.ThrottleMetric, res.ThrottleSpans)
	}
	// Chaos bit the stream too: the blackhole window must have reaped
	// probes through the deadline machinery.
	if res.StreamTimeouts == 0 {
		t.Error("blackhole window reaped no stream probes")
	}
}
