package mem

import (
	"strings"
	"testing"
)

func TestLookupPaperMnemonics(t *testing.T) {
	// Every mnemonic spelled out in the paper's example programs must
	// resolve.
	paper := []string{
		"Queue:QueueSize",               // §2.1
		"Switch:SwitchID",               // §2.2 phase 1
		"Link:QueueSize",                // §2.2 phase 1
		"Link:RX-Utilization",           // §2.2 phase 1
		"Link:RCP-RateRegister",         // §2.2 phase 1 & 3
		"Switch:ID",                     // §2.3
		"PacketMetadata:MatchedEntryID", // §2.3
		"PacketMetadata:InputPort",      // §2.3
	}
	for _, name := range paper {
		if _, ok := LookupSymbol(name); !ok {
			t.Errorf("paper mnemonic %q does not resolve", name)
		}
	}
}

func TestSymbolAliases(t *testing.T) {
	a1, _ := LookupSymbol("Switch:SwitchID")
	a2, _ := LookupSymbol("Switch:ID")
	if a1 != a2 {
		t.Error("Switch:ID must alias Switch:SwitchID")
	}
	q1, _ := LookupSymbol("Queue:QueueSize")
	q2, _ := LookupSymbol("Queue:BytesEnqueued")
	if q1 != q2 {
		t.Error("Queue:QueueSize must alias Queue:BytesEnqueued")
	}
}

func TestSymbolAddressesLandInTheirNamespace(t *testing.T) {
	for _, name := range SymbolNames() {
		a, _ := LookupSymbol(name)
		ns := NamespaceOf(a)
		prefix := strings.SplitN(name, ":", 2)[0]
		want := map[string]Namespace{
			"Switch": NSSwitch, "Link": NSPort, "Queue": NSQueue,
			"PacketMetadata": NSPacket,
		}[prefix]
		if ns != want {
			t.Errorf("symbol %q resolves to namespace %v, want %v", name, ns, want)
		}
	}
}

func TestNameOfRoundTrip(t *testing.T) {
	for _, name := range []string{"Switch:SwitchID", "Link:QueueSize",
		"Link:RCP-RateRegister", "Queue:QueueSize"} {
		a, _ := LookupSymbol(name)
		if got := NameOf(a); got != name {
			t.Errorf("NameOf(%#x) = %q, want preferred name %q", a, got, name)
		}
	}
	if got := NameOf(SRAMBase + 0x20); got != "SRAM:0x20" {
		t.Errorf("SRAM NameOf = %q", got)
	}
	if got := NameOf(PortAbs(2, 0)); got != "Port2:0x0" {
		t.Errorf("PortAbs NameOf = %q", got)
	}
}

func TestParseSymbolOrAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
	}{
		{"Switch:SwitchID", SwitchBase + SwitchID},
		{"SRAM:0x10", SRAMBase + 0x10},
		{"SRAM:16", SRAMBase + 16},
		{"Port3:0", PortAbs(3, 0)},
		{"0x205", 0x205},
		{"517", 517},
	}
	for _, c := range cases {
		got, err := ParseSymbolOrAddr(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSymbolOrAddr(%q) = %#x, %v; want %#x", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"Nope:Thing", "SRAM:99999", "Port999:0", "0x9999", "xyz"} {
		if _, err := ParseSymbolOrAddr(bad); err == nil {
			t.Errorf("ParseSymbolOrAddr(%q) should fail", bad)
		}
	}
}

func TestSymbolNamesSortedAndComplete(t *testing.T) {
	names := SymbolNames()
	if len(names) < 25 {
		t.Fatalf("symbol table too small: %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("SymbolNames must be sorted and unique")
		}
	}
}
