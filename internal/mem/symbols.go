package mem

import (
	"fmt"
	"sort"
	"strings"
)

// symbols maps the [Namespace:Statistic] mnemonics used in TPP assembly
// to virtual addresses.  The table is what the paper calls the mapping
// "known upfront so that the TPP compiler can convert mnemonics ... into
// addresses".  Aliases cover the paper's own spellings.
var symbols = map[string]Addr{
	// Switch namespace.
	"Switch:SwitchID":         SwitchBase + SwitchID,
	"Switch:ID":               SwitchBase + SwitchID, // §2.3 spelling
	"Switch:NumPorts":         SwitchBase + SwitchNumPorts,
	"Switch:ClockLo":          SwitchBase + SwitchClockLo,
	"Switch:ClockHi":          SwitchBase + SwitchClockHi,
	"Switch:FlowTableVersion": SwitchBase + SwitchFlowVersion,
	"Switch:L2TableSize":      SwitchBase + SwitchL2Size,
	"Switch:L3TableSize":      SwitchBase + SwitchL3Size,
	"Switch:TCAMSize":         SwitchBase + SwitchTCAMSize,
	"Switch:PacketsSwitched":  SwitchBase + SwitchPackets,
	"Switch:TPPsExecuted":     SwitchBase + SwitchTPPs,
	"Switch:Epoch":            SwitchBase + SwitchEpoch,

	// Port / link namespace (context-relative to the egress port).
	"Link:QueueSize":        PortBase + PortQueueSize,
	"Link:RX-Utilization":   PortBase + PortRXUtil,
	"Link:TX-Utilization":   PortBase + PortTXUtil,
	"Link:RX-Bytes":         PortBase + PortRXBytes,
	"Link:TX-Bytes":         PortBase + PortTXBytes,
	"Link:Drop-Bytes":       PortBase + PortDropBytes,
	"Link:Enq-Bytes":        PortBase + PortEnqBytes,
	"Link:Capacity":         PortBase + PortCapacity,
	"Link:SNR":              PortBase + PortSNR,
	"Link:RCP-RateRegister": PortBase + PortScratchBase,
	"Link:Scratch0":         PortBase + PortScratchBase,
	"Link:Scratch1":         PortBase + PortScratchBase + 1,
	"Link:Scratch2":         PortBase + PortScratchBase + 2,
	"Link:Scratch3":         PortBase + PortScratchBase + 3,

	// Queue namespace (context-relative to the egress queue).
	"Queue:QueueSize":      QueueBase + QueueBytes,
	"Queue:BytesEnqueued":  QueueBase + QueueBytes,
	"Queue:BytesDropped":   QueueBase + QueueDropBytes,
	"Queue:Packets":        QueueBase + QueuePackets,
	"Queue:PacketsDropped": QueueBase + QueueDropPackets,
	"Queue:MaxBytes":       QueueBase + QueueMaxBytes,

	// Per-packet metadata namespace.
	"PacketMetadata:InputPort":      PacketBase + PacketInputPort,
	"PacketMetadata:OutputPort":     PacketBase + PacketOutputPort,
	"PacketMetadata:MatchedEntryID": PacketBase + PacketMatchedID,
	"PacketMetadata:MatchedEntryVersion": PacketBase +
		PacketMatchedVer,
	"PacketMetadata:QueueID":         PacketBase + PacketQueueID,
	"PacketMetadata:AlternateRoutes": PacketBase + PacketAltRoutes,
	"PacketMetadata:UIDLo":           PacketBase + PacketUIDLo,
	"PacketMetadata:UIDHi":           PacketBase + PacketUIDHi,
	"PacketMetadata:HopLatency":      PacketBase + PacketHopLatency,
}

// canonical is the preferred reverse mapping for disassembly; built once
// from symbols, keeping the lexicographically smallest name that is not
// an alias duplicate (aliases resolve to the first registered canonical
// spelling below).
var canonical = func() map[Addr]string {
	preferred := []string{
		"Switch:SwitchID", "Link:QueueSize", "Link:RCP-RateRegister",
		"Queue:QueueSize", "PacketMetadata:MatchedEntryID",
	}
	m := make(map[Addr]string)
	names := make([]string, 0, len(symbols))
	for n := range symbols { //lint:allow maporder (sorted before use)
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := symbols[n]
		if _, ok := m[a]; !ok {
			m[a] = n
		}
	}
	for _, n := range preferred {
		m[symbols[n]] = n
	}
	return m
}()

// LookupSymbol resolves a [Namespace:Statistic] mnemonic (without the
// brackets) to its virtual address.  Lookup is case-sensitive, matching
// the paper's spelling conventions.
func LookupSymbol(name string) (Addr, bool) {
	a, ok := symbols[name]
	return a, ok
}

// NameOf returns the canonical mnemonic for address a, or a hex literal
// ("0x123") when a has no symbolic name.
func NameOf(a Addr) string {
	if n, ok := canonical[a]; ok {
		return n
	}
	if i := SRAMIndex(a); i >= 0 {
		return fmt.Sprintf("SRAM:%#x", i)
	}
	if NamespaceOf(a) == NSPortAbs {
		port, stat := PortAbsDecode(a)
		return fmt.Sprintf("Port%d:%#x", port, stat)
	}
	return fmt.Sprintf("%#x", uint16(a))
}

// SymbolNames returns all known mnemonics, sorted; used by the assembler
// CLI to print the symbol table.
func SymbolNames() []string {
	names := make([]string, 0, len(symbols))
	for n := range symbols { //lint:allow maporder (sorted before return)
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseSymbolOrAddr resolves either a mnemonic, an "SRAM:<offset>" or
// "Port<p>:<stat>" locator, or a bare hex/decimal word address.
func ParseSymbolOrAddr(s string) (Addr, error) {
	if a, ok := LookupSymbol(s); ok {
		return a, nil
	}
	if rest, ok := strings.CutPrefix(s, "SRAM:"); ok {
		var off int
		if _, err := fmt.Sscanf(rest, "%v", &off); err != nil {
			return 0, fmt.Errorf("mem: bad SRAM offset %q", rest)
		}
		if off < 0 || off >= SRAMWords {
			return 0, fmt.Errorf("mem: SRAM offset %d out of range", off)
		}
		return SRAMBase + Addr(off), nil
	}
	if rest, ok := strings.CutPrefix(s, "Port"); ok && strings.Contains(rest, ":") {
		var port, stat int
		if _, err := fmt.Sscanf(rest, "%d:%v", &port, &stat); err == nil {
			if port < 0 || port >= MaxPorts || stat < 0 || stat >= PortAbsStride {
				return 0, fmt.Errorf("mem: port window %q out of range", s)
			}
			return PortAbs(port, stat), nil
		}
	}
	var a uint32
	if _, err := fmt.Sscanf(s, "%v", &a); err != nil || a >= AddrSpaceWords {
		return 0, fmt.Errorf("mem: unknown symbol or address %q", s)
	}
	return Addr(a), nil
}
