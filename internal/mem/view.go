package mem

import "fmt"

// View is the per-packet window onto a switch's unified memory map that
// the TCPU executes against.  A View is constructed by the ASIC for
// each TPP it processes: context-relative namespaces (Port, Queue,
// PacketMetadata) resolve using that packet's pipeline metadata.
type View interface {
	// Load reads the 32-bit word at address a.
	Load(a Addr) (uint32, error)
	// Store writes the word at address a, subject to the protection
	// map (Writable).
	Store(a Addr, v uint32) error
}

// AccessError describes a faulting TPP memory access; the TCPU converts
// it into the FlagError bit on the packet.
type AccessError struct {
	Addr  Addr
	Write bool
	Cause string
}

// Error implements the error interface.
func (e *AccessError) Error() string {
	op := "load"
	if e.Write {
		op = "store"
	}
	return fmt.Sprintf("mem: %s %s (%s): %s", op, NameOf(e.Addr), e.Addr.nsString(), e.Cause)
}

func (a Addr) nsString() string { return NamespaceOf(a).String() }

// ErrUnmapped builds the error for an access to an address no bank
// backs.
func ErrUnmapped(a Addr, write bool) error {
	return &AccessError{Addr: a, Write: write, Cause: "unmapped"}
}

// ErrReadOnly builds the error for a store to protected state.
func ErrReadOnly(a Addr) error {
	return &AccessError{Addr: a, Write: true, Cause: "read-only"}
}
