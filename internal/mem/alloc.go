package mem

import (
	"fmt"
	"sort"
)

// Region is a contiguous SRAM allocation handed to a network task.
type Region struct {
	Base  Addr // first word address (within the SRAM namespace)
	Words int
}

// End returns one past the last address of the region.
func (r Region) End() Addr { return r.Base + Addr(r.Words) }

// Contains reports whether address a falls inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// Allocator is the control-plane agent of §3.2 that partitions switch
// SRAM and isolates concurrently executing network tasks: "if end-hosts
// implement both RCP and ndb, the agent would allocate a non-overlapping
// set of SRAM addresses to RCP and ndb".
//
// Allocator is not safe for concurrent use; the control plane serializes
// allocation requests.
type Allocator struct {
	regions  map[string]Region
	reserved func() []Region
}

// NewAllocator builds an allocator over the switch's SRAM bank.
func NewAllocator() *Allocator {
	return &Allocator{regions: make(map[string]Region)}
}

// Alloc reserves words of SRAM for the named task using first-fit over
// the gaps between existing allocations.  Allocating again under the
// same name fails; tasks hold exactly one region.
func (al *Allocator) Alloc(task string, words int) (Region, error) {
	if words <= 0 {
		return Region{}, fmt.Errorf("mem: task %q requested %d words", task, words)
	}
	if _, ok := al.regions[task]; ok {
		return Region{}, fmt.Errorf("mem: task %q already holds a region", task)
	}
	taken := make([]Region, 0, len(al.regions))
	for _, r := range al.regions { //lint:allow maporder (sorted below)
		taken = append(taken, r)
	}
	if al.reserved != nil {
		taken = append(taken, al.reserved()...)
	}
	sort.Slice(taken, func(i, j int) bool { return taken[i].Base < taken[j].Base })
	cursor := SRAMBase
	for _, r := range taken {
		if int(r.Base-cursor) >= words {
			break
		}
		if r.End() > cursor {
			cursor = r.End()
		}
	}
	if int(SRAMBase)+SRAMWords-int(cursor) < words {
		return Region{}, fmt.Errorf("mem: SRAM exhausted: task %q wants %d words", task, words)
	}
	reg := Region{Base: cursor, Words: words}
	al.regions[task] = reg
	return reg, nil
}

// SetReserved registers a callback listing SRAM regions outside the
// allocator's control — tenant partitions carved by the guard — that
// Alloc must route around.  The callback is consulted on every Alloc,
// so the no-go set tracks live tenancy without explicit invalidation.
// A nil callback (the default, and every unguarded switch) reserves
// nothing.
func (al *Allocator) SetReserved(fn func() []Region) { al.reserved = fn }

// Regions returns every live task region, sorted by base address — the
// allocator-side half of the mutual-avoidance contract with the tenant
// partitioner.
func (al *Allocator) Regions() []Region {
	out := make([]Region, 0, len(al.regions))
	for _, r := range al.regions { //lint:allow maporder (sorted before return)
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Reset releases every region at once: the allocator state is switch
// soft state, so a crash-restart wipes it along with the SRAM bank it
// partitions.  Control-plane agents re-allocate after the switch boots.
func (al *Allocator) Reset() { clear(al.regions) }

// Free releases the named task's region.
func (al *Allocator) Free(task string) error {
	if _, ok := al.regions[task]; !ok {
		return fmt.Errorf("mem: task %q holds no region", task)
	}
	delete(al.regions, task)
	return nil
}

// Lookup returns the region held by task.
func (al *Allocator) Lookup(task string) (Region, bool) {
	r, ok := al.regions[task]
	return r, ok
}

// Tasks returns the names of all tasks holding regions, sorted.
func (al *Allocator) Tasks() []string {
	names := make([]string, 0, len(al.regions))
	for n := range al.regions { //lint:allow maporder (sorted before return)
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Owner returns the task whose region contains address a, if any.
func (al *Allocator) Owner(a Addr) (string, bool) {
	for n, r := range al.regions { //lint:allow maporder (regions are disjoint)
		if r.Contains(a) {
			return n, true
		}
	}
	return "", false
}
