package mem

import (
	"testing"
	"testing/quick"
)

func TestNamespaceOf(t *testing.T) {
	cases := []struct {
		a    Addr
		want Namespace
	}{
		{0x000, NSSwitch},
		{0x0FF, NSSwitch},
		{0x100, NSPort},
		{0x1FF, NSPort},
		{0x200, NSQueue},
		{0x300, NSPacket},
		{0x400, NSSRAM},
		{0xBFF, NSSRAM},
		{0xC00, NSPortAbs},
		{0xFFF, NSPortAbs},
		{0x1000, NSInvalid},
	}
	for _, c := range cases {
		if got := NamespaceOf(c.a); got != c.want {
			t.Errorf("NamespaceOf(%#x) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestNamespaceString(t *testing.T) {
	if NSPort.String() != "Link" || NSPacket.String() != "PacketMetadata" {
		t.Error("namespace names must match the paper's terminology")
	}
	if NSInvalid.String() != "Invalid" {
		t.Error("invalid namespace name")
	}
}

func TestByteAddr(t *testing.T) {
	if got := Addr(0x2C0).ByteAddr(); got != 0xB00 {
		t.Errorf("ByteAddr = %#x", got)
	}
}

func TestSRAMIndex(t *testing.T) {
	if got := SRAMIndex(SRAMBase + 17); got != 17 {
		t.Errorf("SRAMIndex = %d", got)
	}
	if got := SRAMIndex(PortBase); got != -1 {
		t.Errorf("non-SRAM address returned %d", got)
	}
}

func TestPortAbsRoundTrip(t *testing.T) {
	a := PortAbs(3, PortQueueSize)
	port, stat := PortAbsDecode(a)
	if port != 3 || stat != PortQueueSize {
		t.Fatalf("decode(%#x) = (%d,%d)", a, port, stat)
	}
	if NamespaceOf(a) != NSPortAbs {
		t.Fatal("PortAbs address not in the absolute window")
	}
}

func TestPortAbsRoundTripQuick(t *testing.T) {
	f := func(p, s uint8) bool {
		port := int(p) % MaxPorts
		stat := int(s) % PortAbsStride
		gp, gs := PortAbsDecode(PortAbs(port, stat))
		return gp == port && gs == stat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPortAbsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PortAbs(MaxPorts, 0)
}

func TestWritableProtectionMap(t *testing.T) {
	writable := []Addr{
		SRAMBase,
		SRAMBase + SRAMWords - 1,
		PortBase + PortScratchBase, // Link:RCP-RateRegister
		PortBase + PortScratchBase + PortScratchWords - 1,
		PortAbs(5, PortScratchBase),
	}
	for _, a := range writable {
		if !Writable(a) {
			t.Errorf("%s (%#x) should be writable", NameOf(a), a)
		}
	}
	readonly := []Addr{
		SwitchBase + SwitchID,
		PortBase + PortQueueSize,
		PortBase + PortCapacity,
		QueueBase + QueueBytes,
		PacketBase + PacketInputPort,
		PortAbs(5, PortQueueSize),
	}
	for _, a := range readonly {
		if Writable(a) {
			t.Errorf("%s (%#x) must be read-only to TPPs", NameOf(a), a)
		}
	}
}

func TestStatRegionsDoNotOverlapScratch(t *testing.T) {
	// The per-port statistics indexes must fit below the scratch area
	// or above it, never inside it.
	stats := []int{PortQueueSize, PortRXUtil, PortTXUtil, PortRXBytes,
		PortTXBytes, PortDropBytes, PortEnqBytes, PortCapacity, PortSNR}
	for _, s := range stats {
		if s >= PortScratchBase && s < PortScratchBase+PortScratchWords {
			t.Errorf("statistic index %d collides with task scratch", s)
		}
		if s >= portStatWords {
			t.Errorf("statistic index %d exceeds the port block size", s)
		}
	}
}
