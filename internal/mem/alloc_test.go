package mem

import (
	"math/rand"
	"testing"
)

func TestAllocatorBasic(t *testing.T) {
	al := NewAllocator()
	rcp, err := al.Alloc("rcp", 64)
	if err != nil {
		t.Fatal(err)
	}
	ndb, err := al.Alloc("ndb", 128)
	if err != nil {
		t.Fatal(err)
	}
	if rcp.End() > ndb.Base && ndb.End() > rcp.Base {
		t.Fatal("regions overlap")
	}
	if got, ok := al.Lookup("rcp"); !ok || got != rcp {
		t.Fatal("Lookup mismatch")
	}
	if owner, ok := al.Owner(rcp.Base + 3); !ok || owner != "rcp" {
		t.Fatalf("Owner = %q, %v", owner, ok)
	}
	if _, ok := al.Owner(SRAMBase + SRAMWords - 1); ok {
		t.Fatal("unallocated address has an owner")
	}
	if got := al.Tasks(); len(got) != 2 || got[0] != "ndb" || got[1] != "rcp" {
		t.Fatalf("Tasks = %v", got)
	}
}

func TestAllocatorDuplicateTask(t *testing.T) {
	al := NewAllocator()
	if _, err := al.Alloc("rcp", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc("rcp", 8); err == nil {
		t.Fatal("duplicate allocation accepted")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	al := NewAllocator()
	if _, err := al.Alloc("big", SRAMWords); err != nil {
		t.Fatalf("full-SRAM allocation should succeed: %v", err)
	}
	if _, err := al.Alloc("more", 1); err == nil {
		t.Fatal("over-allocation accepted")
	}
}

func TestAllocatorBadRequests(t *testing.T) {
	al := NewAllocator()
	if _, err := al.Alloc("t", 0); err == nil {
		t.Fatal("zero-word allocation accepted")
	}
	if _, err := al.Alloc("t", -5); err == nil {
		t.Fatal("negative allocation accepted")
	}
	if err := al.Free("ghost"); err == nil {
		t.Fatal("freeing unknown task succeeded")
	}
}

func TestAllocatorReuseAfterFree(t *testing.T) {
	al := NewAllocator()
	a, _ := al.Alloc("a", 100)
	if _, err := al.Alloc("b", SRAMWords-100); err != nil {
		t.Fatal(err)
	}
	if err := al.Free("a"); err != nil {
		t.Fatal(err)
	}
	a2, err := al.Alloc("c", 100)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatalf("freed hole not reused: got %+v, want %+v", a2, a)
	}
}

// Property: after any sequence of random allocs and frees, live regions
// never overlap and always stay within the SRAM bank.
func TestAllocatorInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	al := NewAllocator()
	live := make(map[string]bool)
	for i := 0; i < 500; i++ {
		name := string(rune('a' + r.Intn(20)))
		if live[name] && r.Intn(2) == 0 {
			if err := al.Free(name); err != nil {
				t.Fatal(err)
			}
			delete(live, name)
			continue
		}
		if !live[name] {
			if _, err := al.Alloc(name, 1+r.Intn(200)); err == nil {
				live[name] = true
			}
		}
		var regs []Region
		for task := range live {
			reg, ok := al.Lookup(task)
			if !ok {
				t.Fatalf("live task %q has no region", task)
			}
			if reg.Base < SRAMBase || int(reg.End()) > int(SRAMBase)+SRAMWords {
				t.Fatalf("region %+v outside SRAM", reg)
			}
			regs = append(regs, reg)
		}
		for i := range regs {
			for j := i + 1; j < len(regs); j++ {
				if regs[i].Base < regs[j].End() && regs[j].Base < regs[i].End() {
					t.Fatalf("regions overlap: %+v %+v", regs[i], regs[j])
				}
			}
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: SRAMBase + 10, Words: 5}
	if !r.Contains(SRAMBase+10) || !r.Contains(SRAMBase+14) {
		t.Error("region must contain its own words")
	}
	if r.Contains(SRAMBase+9) || r.Contains(SRAMBase+15) {
		t.Error("region contains foreign words")
	}
}

func TestAccessErrorMessages(t *testing.T) {
	e := ErrReadOnly(PortBase + PortQueueSize)
	if msg := e.Error(); msg == "" || !contains(msg, "read-only") || !contains(msg, "Link") {
		t.Errorf("ErrReadOnly message = %q", msg)
	}
	u := ErrUnmapped(0x50, false)
	if msg := u.Error(); !contains(msg, "unmapped") || !contains(msg, "load") {
		t.Errorf("ErrUnmapped message = %q", msg)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
