package mem

import "fmt"

// Addr is a word-granular virtual address into a switch's unified
// memory map.  It matches the 12-bit operand width of TPP instructions,
// so valid addresses are < AddrSpaceWords.
type Addr uint16

// AddrSpaceWords is the number of addressable 32-bit words (12-bit
// operands).
const AddrSpaceWords = 1 << 12

// ByteAddr returns the byte address of a, as printed in the paper's
// examples ("[Queue:QueueSize] will be compiled to a virtual memory
// address (say) 0xb000").
func (a Addr) ByteAddr() uint32 { return uint32(a) * 4 }

// Namespace identifies the memory bank an address falls into (Table 2).
type Namespace uint8

// The namespaces of the unified address space.
const (
	NSInvalid Namespace = iota
	NSSwitch            // per-switch, global
	NSPort              // per-port, context-relative to the egress port
	NSQueue             // per-queue, context-relative to the egress queue
	NSPacket            // per-packet metadata registers
	NSSRAM              // scratch SRAM shared by network tasks
	NSPortAbs           // absolute per-port statistics window
)

// String names the namespace using the paper's terminology.
func (n Namespace) String() string {
	switch n {
	case NSSwitch:
		return "Switch"
	case NSPort:
		return "Link"
	case NSQueue:
		return "Queue"
	case NSPacket:
		return "PacketMetadata"
	case NSSRAM:
		return "SRAM"
	case NSPortAbs:
		return "PortAbs"
	}
	return "Invalid"
}

// Region boundaries (word addresses).
const (
	SwitchBase  Addr = 0x000
	PortBase    Addr = 0x100
	QueueBase   Addr = 0x200
	PacketBase  Addr = 0x300
	SRAMBase    Addr = 0x400
	SRAMWords        = 0x800 // 2048 words = 8 KiB of scratch SRAM
	PortAbsBase Addr = 0xC00

	// PortAbsStride is the per-port block size in the absolute window:
	// word PortAbsBase + port*PortAbsStride + stat mirrors the
	// context-relative Port namespace word stat.
	PortAbsStride = 32
	// MaxPorts is the largest port count addressable through the
	// absolute window.
	MaxPorts = (AddrSpaceWords - int(PortAbsBase)) / PortAbsStride
)

// Per-switch statistic word indexes (offset from SwitchBase).
const (
	SwitchID          = 0 // administratively assigned switch id
	SwitchNumPorts    = 1
	SwitchClockLo     = 2 // dataplane clock, ns, low 32 bits
	SwitchClockHi     = 3
	SwitchFlowVersion = 4 // flow table version number (ndb, Table 2)
	SwitchL2Size      = 5 // entries in the L2 MAC table
	SwitchL3Size      = 6 // entries in the L3 LPM table
	SwitchTCAMSize    = 7 // entries in the TCAM
	SwitchPackets     = 8 // packets switched (low 32 bits)
	SwitchTPPs        = 9 // TPPs executed by the TCPU
	// SwitchEpoch is the boot generation counter: it starts at zero
	// and increments every time the switch crash-restarts, wiping its
	// soft state (scratch SRAM, learned L2 entries, task scratch
	// words).  Any TPP can read it, which is how end-hosts detect that
	// a switch on the path rebooted and reconcile their view of its
	// state (re-seed rate registers, re-base accounting deltas).
	SwitchEpoch = 10

	switchStatWords = 11
)

// Per-port (link) statistic word indexes (offset from PortBase, and from
// each block of the absolute window).  Rates are bytes/second, which
// represents links up to ~34 Gb/s in 32 bits.
const (
	PortQueueSize = 0  // bytes currently enqueued across the port's queues
	PortRXUtil    = 1  // EWMA ingress utilization, bytes/sec
	PortTXUtil    = 2  // EWMA egress utilization, bytes/sec
	PortRXBytes   = 3  // cumulative bytes received (wraps)
	PortTXBytes   = 4  // cumulative bytes transmitted (wraps)
	PortDropBytes = 5  // cumulative bytes dropped at the egress queues
	PortEnqBytes  = 6  // cumulative bytes enqueued
	PortCapacity  = 7  // link capacity, bytes/sec
	PortSNR       = 16 // wireless channel SNR, centi-dB (access points)

	// PortScratchBase..+PortScratchWords-1 are task scratch words that
	// TPPs may write; the control-plane agent assigns them to tasks.
	// Word PortScratchBase is conventionally the RCP fair-share rate
	// register ([Link:RCP-RateRegister]).
	PortScratchBase  = 8
	PortScratchWords = 8

	portStatWords = 32
)

// Per-queue statistic word indexes (offset from QueueBase).
const (
	QueueBytes       = 0 // bytes enqueued right now (occupancy)
	QueueDropBytes   = 1 // cumulative bytes dropped
	QueuePackets     = 2 // cumulative packets enqueued
	QueueDropPackets = 3 // cumulative packets dropped
	QueueMaxBytes    = 4 // configured capacity

	queueStatWords = 5
)

// Per-packet metadata word indexes (offset from PacketBase).
const (
	PacketInputPort  = 0
	PacketOutputPort = 1
	PacketMatchedID  = 2 // matched flow entry id (ndb)
	PacketMatchedVer = 3 // matched flow entry version (ndb)
	PacketQueueID    = 4
	PacketAltRoutes  = 5
	PacketUIDLo      = 6
	PacketUIDHi      = 7
	PacketHopLatency = 8 // ns spent in this switch so far (low 32 bits)

	packetStatWords = 9
)

// NamespaceOf classifies a word address.
func NamespaceOf(a Addr) Namespace {
	switch {
	case a >= AddrSpaceWords:
		return NSInvalid
	case a >= PortAbsBase:
		return NSPortAbs
	case a >= SRAMBase:
		return NSSRAM
	case a >= PacketBase:
		return NSPacket
	case a >= QueueBase:
		return NSQueue
	case a >= PortBase:
		return NSPort
	default:
		return NSSwitch
	}
}

// SRAMIndex converts an SRAM address to its word offset within the SRAM
// bank, or -1 if a is not an SRAM address.
func SRAMIndex(a Addr) int {
	if NamespaceOf(a) != NSSRAM {
		return -1
	}
	return int(a - SRAMBase)
}

// PortAbs returns the absolute-window address of statistic stat on port
// p.  It panics if p or stat are out of range; callers validate against
// MaxPorts.
func PortAbs(p int, stat int) Addr {
	if p < 0 || p >= MaxPorts || stat < 0 || stat >= PortAbsStride {
		panic(fmt.Sprintf("mem: PortAbs(%d, %d) out of range", p, stat))
	}
	return PortAbsBase + Addr(p*PortAbsStride+stat)
}

// PortAbsDecode splits an absolute-window address into (port, stat).
func PortAbsDecode(a Addr) (port, stat int) {
	off := int(a - PortAbsBase)
	return off / PortAbsStride, off % PortAbsStride
}

// Writable reports whether a TPP store to address a is permitted by the
// memory protection map: scratch SRAM and per-port task scratch words
// are read-write; every statistics word is read-only, which "isolates
// critical forwarding state from state modifiable by TPPs" (§4).
func Writable(a Addr) bool {
	switch NamespaceOf(a) {
	case NSSRAM:
		return true
	case NSPort:
		stat := int(a - PortBase)
		return stat >= PortScratchBase && stat < PortScratchBase+PortScratchWords
	case NSPortAbs:
		_, stat := PortAbsDecode(a)
		return stat >= PortScratchBase && stat < PortScratchBase+PortScratchWords
	default:
		return false
	}
}

// portStatReadable reports whether per-port stat index idx is backed by
// a register: the named statistics (0..PortCapacity), the task scratch
// words, and the SNR register form one contiguous readable block.
func portStatReadable(idx int) bool { return idx >= 0 && idx <= PortSNR }

// Readable reports whether a TPP load of address a is backed by a
// mapped register, i.e. whether it succeeds rather than faulting with
// an unmapped-address error.  It is the static mirror of the ASIC's
// per-packet memory view (internal/asic agreement is property-tested
// there); the verifier uses it to prove programs fault-free before
// injection.
//
// ports is the switch's port count, bounding the absolute per-port
// window; ports <= 0 means "unknown switch" and treats the whole
// window as mapped (the permissive end-host default, since an injector
// cannot know the port count of every switch on the path).
func Readable(a Addr, ports int) bool {
	switch NamespaceOf(a) {
	case NSSwitch:
		return int(a-SwitchBase) < switchStatWords
	case NSPort:
		return portStatReadable(int(a - PortBase))
	case NSQueue:
		return int(a-QueueBase) < queueStatWords
	case NSPacket:
		return int(a-PacketBase) < packetStatWords
	case NSSRAM:
		return true
	case NSPortAbs:
		port, stat := PortAbsDecode(a)
		if ports > 0 && port >= ports {
			return false
		}
		return portStatReadable(stat)
	}
	return false
}

// StoreOK reports whether a TPP store to address a succeeds on a
// switch with the given port count: the address must be writable per
// the protection map and backed by a mapped register.
func StoreOK(a Addr, ports int) bool { return Writable(a) && Readable(a, ports) }
