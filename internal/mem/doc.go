// Package mem defines the unified memory-mapped IO address space of
// §3.2.1 of the TPP paper: "The statistics can be broadly namespaced
// into per-switch (i.e. global), per-port, per-queue and per-packet...
// These statistics reside in different memory banks, but providing a
// unified address space makes them available to TPPs."
//
// Addresses are 12-bit word indexes (matching the instruction operand
// width in internal/core), covering a 16 KiB byte space per switch:
//
//	0x000–0x0FF  Switch namespace (global statistics)
//	0x100–0x1FF  Port/Link namespace, context-relative: resolves
//	             against the packet's egress port chosen earlier in
//	             the pipeline
//	0x200–0x2FF  Queue namespace, context-relative egress queue
//	0x300–0x3FF  PacketMetadata namespace (per-packet registers)
//	0x400–0xBFF  Scratch SRAM (2048 words), partitioned among network
//	             tasks by the control-plane agent (Allocator)
//	0xC00–0xFFF  Absolute per-port window: port p's statistics block
//	             at PortAbsBase + p*PortAbsStride
//
// "These address mappings must be known upfront so that the TPP
// compiler can convert mnemonics (such as PacketMetadata:InputPort)
// into addresses": the Symbols table provides that mapping and is
// shared by the assembler and the disassembler.
//
// The package also defines the access-control model of §4: the memory
// map "isolates critical forwarding state from state modifiable by
// TPPs".  Statistics namespaces are read-only to TPPs except for
// designated task scratch words; SRAM is read-write within a task's
// allocated region.
package mem
