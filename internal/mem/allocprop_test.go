package mem

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestAllocatorSequenceProperty drives random Alloc/Free/Reset
// sequences and asserts the isolation invariant the control-plane agent
// exists for: live regions never overlap, never leave the SRAM bank,
// and Reset leaves a completely empty allocator (so a rebooted switch
// re-partitions from scratch).
func TestAllocatorSequenceProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	al := NewAllocator()
	live := map[string]Region{}

	check := func(step int) {
		t.Helper()
		tasks := al.Tasks()
		if len(tasks) != len(live) {
			t.Fatalf("step %d: allocator holds %d regions, model %d", step, len(tasks), len(live))
		}
		regs := make([]Region, 0, len(tasks))
		for _, task := range tasks {
			r, ok := al.Lookup(task)
			if !ok {
				t.Fatalf("step %d: task %q listed but not found", step, task)
			}
			if r != live[task] {
				t.Fatalf("step %d: task %q region %+v, model %+v", step, task, r, live[task])
			}
			if r.Base < SRAMBase || int(r.End()) > int(SRAMBase)+SRAMWords {
				t.Fatalf("step %d: region %+v outside the SRAM bank", step, r)
			}
			regs = append(regs, r)
		}
		for i := range regs {
			for j := i + 1; j < len(regs); j++ {
				a, b := regs[i], regs[j]
				if a.Base < b.End() && b.Base < a.End() {
					t.Fatalf("step %d: regions overlap: %+v and %+v", step, a, b)
				}
			}
		}
	}

	for step := 0; step < 4000; step++ {
		switch op := rnd.Intn(100); {
		case op < 55: // alloc
			task := fmt.Sprintf("task-%d", rnd.Intn(24))
			words := 1 + rnd.Intn(300)
			reg, err := al.Alloc(task, words)
			_, held := live[task]
			switch {
			case err == nil && held:
				t.Fatalf("step %d: double-alloc of %q succeeded", step, task)
			case err == nil:
				live[task] = reg
			}
		case op < 90: // free
			task := fmt.Sprintf("task-%d", rnd.Intn(24))
			err := al.Free(task)
			_, held := live[task]
			if (err == nil) != held {
				t.Fatalf("step %d: Free(%q) err=%v but model held=%v", step, task, err, held)
			}
			delete(live, task)
		default: // reset (the crash-restart path)
			al.Reset()
			live = map[string]Region{}
			if got := al.Tasks(); len(got) != 0 {
				t.Fatalf("step %d: %d regions survived Reset", step, len(got))
			}
		}
		check(step)
	}
}
