package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	var tr *Tracer
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(5)
		g.Add(-1)
		h.Observe(1234)
		tr.Record(SpanEvent{At: 1, UID: 2, Stage: StageEnqueue})
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates: %v allocs/op", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if s := r.Snapshot(0); len(s.Metrics) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("switch/1/packets")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("switch/1/packets") != c {
		t.Fatal("counter handle not idempotent")
	}
	g := r.Gauge("switch/1/rate")
	g.Set(100)
	g.Add(-30)
	if g.Value() != 70 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if h.Sum() != 1025 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// Bucket layout: 0 -> b0, 1 -> b1, {2,3} -> b2, {4..7} -> b3,
	// {8..15} -> b4, 1000 -> b10.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1}
	for i := 0; i < NumBuckets; i++ {
		if got := h.Bucket(i); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %d", q)
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d (want upper edge of bucket 2)", q)
	}
	if BucketLow(3) != 4 || BucketHigh(3) != 7 {
		t.Fatalf("bucket 3 bounds [%d,%d]", BucketLow(3), BucketHigh(3))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 999 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("a/packets").Add(10)
	r.Gauge("a/rate").Set(42)
	r.Histogram("a/depth").Observe(100)

	before := r.Snapshot(1000)
	r.Counter("a/packets").Add(5)
	r.Gauge("a/rate").Set(40)
	r.Histogram("a/depth").Observe(200)
	r.Histogram("a/depth").Observe(100)
	after := r.Snapshot(2000)

	if m, ok := after.Get("a/packets"); !ok || m.Value != 15 {
		t.Fatalf("after counter: %+v", m)
	}
	d := Diff(before, after)
	if m, _ := d.Get("a/packets"); m.Value != 5 {
		t.Fatalf("diff counter = %d", m.Value)
	}
	if m, _ := d.Get("a/rate"); m.Value != 40 {
		t.Fatalf("diff gauge = %d (gauges keep the after value)", m.Value)
	}
	m, _ := d.Get("a/depth")
	if m.Count != 2 || m.Sum != 300 {
		t.Fatalf("diff histogram: %+v", m)
	}
	var n uint64
	for _, b := range m.Buckets {
		n += b.N
	}
	if n != 2 {
		t.Fatalf("diff buckets hold %d observations: %+v", n, m.Buckets)
	}
}

func TestSnapshotExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("sw/pkts").Add(3)
	r.Histogram("sw/depth").Observe(5)
	s := r.Snapshot(7)

	var jb strings.Builder
	if err := s.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines: %v", lines)
	}
	var m Metric
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	if m.Name != "sw/pkts" || m.Kind != KindCounter || m.Value != 3 || m.AtNs != 7 {
		t.Fatalf("decoded metric: %+v", m)
	}

	var cb strings.Builder
	if err := s.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cb.String(), "sw/depth,histogram") {
		t.Fatalf("csv:\n%s", cb.String())
	}
}

func TestTracerRingAndJourney(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(SpanEvent{At: int64(i), UID: uint64(i % 2), Stage: StageParser})
	}
	if tr.Len() != 4 || tr.Total() != 6 || tr.Dropped() != 2 {
		t.Fatalf("len=%d total=%d dropped=%d", tr.Len(), tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].At != 2 || evs[3].At != 5 {
		t.Fatalf("ring order: %+v", evs)
	}
	j := tr.Journey(1)
	if len(j) != 2 || j[0].At != 3 || j[1].At != 5 {
		t.Fatalf("journey: %+v", j)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTracerRecordNoAlloc(t *testing.T) {
	tr := NewTracer(64)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(SpanEvent{At: 1, UID: 2, Node: 3, Stage: StageEnqueue, A: 4, B: 5})
	})
	if allocs != 0 {
		t.Fatalf("enabled tracer allocates: %v allocs/op", allocs)
	}
}

func TestTracerExport(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(SpanEvent{At: 10, UID: 1, Node: 2, Stage: StageEnqueue, A: 0, B: 1500})
	var jb strings.Builder
	if err := tr.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.String(), `"stage":"enqueue"`) {
		t.Fatalf("jsonl: %s", jb.String())
	}
	var cb strings.Builder
	if err := tr.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cb.String(), "10,1,2,enqueue,0,1500") {
		t.Fatalf("csv: %s", cb.String())
	}
}

func TestStageNames(t *testing.T) {
	if StageParser.String() != "parser" || StageLinkRx.String() != "link-rx" {
		t.Fatal("stage names wrong")
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must name unknown")
	}
}
