package obs

import (
	"strings"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		// The bucket must actually contain the value.
		if b := BucketOf(c.v); c.v < BucketLow(b) || c.v > BucketHigh(b) {
			t.Errorf("%d outside its bucket [%d, %d]", c.v, BucketLow(b), BucketHigh(b))
		}
	}
}

func TestObserveBucket(t *testing.T) {
	h := NewHistogram()
	h.ObserveBucket(3, 5) // five samples in [4, 7]
	h.ObserveBucket(3, 0) // no-op
	h.ObserveBucket(-1, 2)
	h.ObserveBucket(NumBuckets, 2) // out of range: dropped
	if h.Count() != 5 || h.Bucket(3) != 5 {
		t.Fatalf("count %d bucket %d", h.Count(), h.Bucket(3))
	}
	// Sum and max use the bucket's representative low bound.
	if h.Sum() != 5*BucketLow(3) || h.Max() != BucketLow(3) {
		t.Fatalf("sum %d max %d", h.Sum(), h.Max())
	}
	// Folding pre-bucketed counts agrees with observing the bounds.
	h2 := NewHistogram()
	for i := 0; i < 5; i++ {
		h2.Observe(4)
	}
	if h2.Bucket(3) != h.Bucket(3) || h2.Count() != h.Count() {
		t.Fatal("ObserveBucket and Observe(low bound) disagree")
	}
	var nilH *Histogram
	nilH.ObserveBucket(3, 1) // must not panic
}

func TestQuantileExtremes(t *testing.T) {
	// Empty histogram: every quantile is zero.
	h := NewHistogram()
	if h.Quantile(0) != 0 || h.Quantile(0.5) != 0 || h.Quantile(1) != 0 {
		t.Fatal("empty histogram quantile not zero")
	}

	// Single bucket: q=0 and q=1 both land in it, clamped to Max.
	h.Observe(100) // bucket [64, 127]
	if got := h.Quantile(0); got != 100 {
		t.Fatalf("q=0 = %d", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("q=1 = %d", got)
	}
	// Out-of-range q clamps rather than misbehaving.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Fatal("out-of-range q not clamped")
	}

	// Two buckets: q=0 resolves to the lowest occupied bucket's bound,
	// q=1 to the overall max.
	h.Observe(5) // bucket [4, 7]
	if got := h.Quantile(0); got != 7 {
		t.Fatalf("two-bucket q=0 = %d", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("two-bucket q=1 = %d", got)
	}
}

func TestDiffBucketLengthMismatch(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h")
	h.Observe(5) // bucket [4, 7]
	before := reg.Snapshot(0)

	h.Observe(5)   // grows the existing bucket
	h.Observe(100) // new bucket [64, 127]: after has more buckets than before
	after := reg.Snapshot(1)

	d := Diff(before, after)
	m, ok := d.Get("h")
	if !ok || m.Count != 2 {
		t.Fatalf("diff count = %d", m.Count)
	}
	if len(m.Buckets) != 2 {
		t.Fatalf("diff buckets = %v", m.Buckets)
	}
	for _, b := range m.Buckets {
		if b.N != 1 {
			t.Fatalf("diff bucket %v, want n=1", b)
		}
	}

	// The reverse shape: a bucket present before but unchanged after
	// drops out of the diff entirely (no zero or negative entries).
	d2 := Diff(after, after)
	m2, _ := d2.Get("h")
	if m2.Count != 0 || len(m2.Buckets) != 0 {
		t.Fatalf("self-diff not empty: count %d buckets %v", m2.Count, m2.Buckets)
	}

	// before longer than after (metric only in before): absent from
	// the diff; metric only in after passes through whole.
	reg2 := NewRegistry()
	reg2.Histogram("h").Observe(5)
	onlyAfter := Diff(Snapshot{}, reg2.Snapshot(2))
	if m3, ok := onlyAfter.Get("h"); !ok || m3.Count != 1 {
		t.Fatalf("new metric did not pass through: %+v", m3)
	}
}

// TestSnapshotGolden pins the export byte-for-byte: deterministic,
// name-sorted ordering is part of the format contract (results files
// are committed and diffed), so any reordering or field change must
// show up here.
func TestSnapshotGolden(t *testing.T) {
	reg := NewRegistry()
	// Registered deliberately out of alphabetical order.
	reg.Histogram("rtt").Observe(5)
	reg.Histogram("rtt").Observe(100)
	reg.Counter("pkts").Add(3)
	reg.Gauge("queue").Set(-7)
	snap := reg.Snapshot(42)

	var jsonl strings.Builder
	if err := snap.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	wantJSONL := `{"at_ns":42,"name":"pkts","kind":"counter","value":3}
{"at_ns":42,"name":"queue","kind":"gauge","value":-7}
{"at_ns":42,"name":"rtt","kind":"histogram","count":2,"sum":105,"max":100,"buckets":[{"lo":4,"hi":7,"n":1},{"lo":64,"hi":127,"n":1}]}
`
	if jsonl.String() != wantJSONL {
		t.Errorf("WriteJSONL drifted:\ngot:\n%s\nwant:\n%s", jsonl.String(), wantJSONL)
	}

	var csv strings.Builder
	if err := snap.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	wantCSV := `name,kind,value,count,sum,max,p50,p99
pkts,counter,3,,,,,
queue,gauge,-7,,,,,
rtt,histogram,,2,105,100,7,7
`
	if csv.String() != wantCSV {
		t.Errorf("WriteCSV drifted:\ngot:\n%s\nwant:\n%s", csv.String(), wantCSV)
	}
}
