package obs

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/trace"
)

// Stage identifies where in a packet's lifecycle a span event was
// recorded.  The switch stages mirror the §3.1 ingress pipeline order:
// parser, lookup (TCAM slices first, then L3 LPM, then the L2 hash
// table), TCPU, memory manager, egress queue, scheduler; the link
// stages cover serialization and propagation between nodes.
type Stage uint8

// Lifecycle stages and the meaning of each event's A/B arguments.
const (
	// StageParser: packet entered the ingress pipeline.  A=input
	// port, B=wire bytes.  Node is the switch id.
	StageParser Stage = iota
	// StageLookupTCAM: a TCAM slice decided forwarding.  A=matched
	// entry id, B=entry version.
	StageLookupTCAM
	// StageLookupL3: the LPM table decided forwarding.  A=output
	// port, B=remaining TTL.
	StageLookupL3
	// StageLookupL2: the MAC table decided forwarding.  A=output
	// port, B=1 when this is a flooded copy.
	StageLookupL2
	// StageTCPU: the tiny CPU executed the packet's TPP.  A=modeled
	// pipeline cycles, B=instructions executed.
	StageTCPU
	// StageMemMgr: the memory manager admitted the packet toward its
	// egress queue.  A=queue id, B=queue bytes before admission.
	StageMemMgr
	// StageEnqueue: the packet was stored in its egress queue.
	// A=queue id, B=queue bytes after (the depth the packet sees).
	StageEnqueue
	// StageDrop: the egress queue dropped the packet (drop-tail).
	// A=queue id, B=wire bytes lost.
	StageDrop
	// StageSched: the scheduler dequeued the packet for transmission.
	// A=queue id, B=nanoseconds since the packet entered the switch
	// (per-hop latency).
	StageSched
	// StageTTLDrop: the packet's TTL expired at this switch.  A=input
	// port.
	StageTTLDrop
	// StageBlackhole: no forwarding decision existed.  A=input port.
	StageBlackhole
	// StageStrip: an untrusted edge port stripped the packet's TPP
	// (§4 security).  A=input port.
	StageStrip
	// StageLinkTx: the link began serializing the packet.  A=wire
	// bytes, B=serialization nanoseconds.  Node is the link id.
	StageLinkTx
	// StageLinkLoss: the loss model corrupted the frame in flight.
	// A=wire bytes.  Node is the link id.
	StageLinkLoss
	// StageLinkRx: the last bit arrived at the far end.  A=receiver
	// port, B=wire bytes.  Node is the link id.
	StageLinkRx
	// StageLinkDown: the frame was dropped because the link was (or
	// went) down while it was in flight.  A=wire bytes.  Node is the
	// link id.
	StageLinkDown
	// StageFaultInject: the fault injector applied a fault.  UID is 0
	// (no packet); Node is the target's link or switch id; A encodes
	// the fault kind (internal/faults.Kind).
	StageFaultInject
	// StageFaultRecover: the fault injector cleared a fault.  Fields
	// as for StageFaultInject.
	StageFaultRecover
	// StageVerifyReject: the paranoid parser statically rejected the
	// packet's TPP and stripped it.  A=input port, B=error count.
	StageVerifyReject
	// StageThrottle: the TCPU admission gate was out of tokens, so the
	// packet forwarded without executing its TPP (core.FlagThrottled
	// is set on the program).  A=egress port, B=input port.
	StageThrottle
	// StageSwitchReboot: the switch crash-restarted, dropping queued
	// packets and wiping soft state.  UID is 0 (no packet); Node is
	// the switch id; A=new boot epoch, B=boot delay in nanoseconds.
	StageSwitchReboot
	// StageSwitchUp: the switch finished booting and resumed
	// forwarding.  UID is 0; A=boot epoch.
	StageSwitchUp
	// StageRebootDrop: the packet arrived at (or was in the pipeline
	// of) a switch that was down rebooting, and was dropped.  A=input
	// port, B=wire bytes.
	StageRebootDrop
	// StageAccessDeny: the tenant guard denied one memory access in the
	// TCPU memory stage (fail-forward: a denied LOAD returned the poison
	// value, a denied STORE was dropped, and execution continued).  One
	// event per denied access, so the span stream reconciles exactly
	// against the tpps_denied counters.  A=denied word address shifted
	// left one with the write bit in bit 0, B=tenant id.
	StageAccessDeny
	// StageCStore: a CSTORE committed (the compare matched and the
	// store was applied) in the TCPU memory stage.  One event per
	// commit, so the span stream reconciles exactly against the
	// cstore_commits counter.  A=word address stored, B=value stored.
	StageCStore
	// StageSweep: an in-band telemetry collector folded one sweep of a
	// dataplane histogram window into its host-side accumulation.  UID
	// is 0 (no single packet); Node is the swept switch id; A=sweep
	// sequence number, B=observations folded by this sweep.
	StageSweep
	// StageSpinEdge: the fixed-function spin-bit observer saw the
	// watched flow's spin bit transition and bucketed the edge-to-edge
	// interval into its SRAM histogram.  A=interval in nanoseconds,
	// B=1 when the interval was bucketed (0 for the flow's first edge,
	// which has no predecessor).
	StageSpinEdge
	// StageReflexFire: a reflex arm's CAS-checked TCAM rewrite steered
	// a prefix onto its pre-authorized backup next-hop.  UID is the
	// triggering transit packet (0 when congestion fired from a
	// heartbeat check).  A=the rewritten entry id, B=the backup port.
	StageReflexFire
	// StageReflexRevert: a detoured prefix was CAS-restored to its
	// primary next-hop after the egress healed and the flap-damping
	// dwell elapsed.  A=the rewritten entry id, B=the primary port.
	StageReflexRevert
	// StageReflexStale: a reflex write was refused — the entry version
	// raced (another writer touched the route since arming) or the
	// per-switch reflex budget was exhausted.  A=the entry id,
	// B=1 for a version race, 2 for budget exhaustion.
	StageReflexStale
)

var stageNames = [...]string{
	StageParser:       "parser",
	StageLookupTCAM:   "lookup-tcam",
	StageLookupL3:     "lookup-l3",
	StageLookupL2:     "lookup-l2",
	StageTCPU:         "tcpu",
	StageMemMgr:       "memmgr",
	StageEnqueue:      "enqueue",
	StageDrop:         "drop",
	StageSched:        "sched",
	StageTTLDrop:      "ttl-drop",
	StageBlackhole:    "blackhole",
	StageStrip:        "tpp-strip",
	StageLinkTx:       "link-tx",
	StageLinkLoss:     "link-loss",
	StageLinkRx:       "link-rx",
	StageLinkDown:     "link-down",
	StageFaultInject:  "fault-inject",
	StageFaultRecover: "fault-recover",
	StageVerifyReject: "verify-reject",
	StageThrottle:     "tpp-throttle",
	StageSwitchReboot: "switch-reboot",
	StageSwitchUp:     "switch-up",
	StageRebootDrop:   "reboot-drop",
	StageAccessDeny:   "access-deny",
	StageCStore:       "cstore-commit",
	StageSweep:        "sweep",
	StageSpinEdge:     "spin-edge",
	StageReflexFire:   "reflex-fire",
	StageReflexRevert: "reflex-revert",
	StageReflexStale:  "reflex-stale",
}

// String names the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// SpanEvent is one recorded point in a packet's journey.  Node is the
// switch id for pipeline stages and the link id for link stages; A and
// B carry stage-specific arguments (documented on each Stage constant).
// The struct is all-scalar so recording never allocates.
type SpanEvent struct {
	At    int64
	UID   uint64
	Node  uint32
	Stage Stage
	A, B  uint64
}

// DefaultTraceCap is the default ring capacity: enough for ~4k packet
// journeys of a dozen-plus events each.
const DefaultTraceCap = 1 << 16

// Tracer is a bounded ring buffer of span events.  When full, the
// oldest events are overwritten (Dropped counts them); recording is
// mutex-guarded and allocation-free.  All methods are no-ops on a nil
// receiver.
type Tracer struct {
	mu  sync.Mutex
	buf []SpanEvent
	n   uint64 // total events ever recorded
}

// NewTracer builds a tracer holding up to capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]SpanEvent, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (t *Tracer) Record(ev SpanEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = ev
	t.n++
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Total returns the number of events ever recorded, including
// overwritten ones.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := uint64(len(t.buf))
	if t.n < size {
		out := make([]SpanEvent, t.n)
		copy(out, t.buf[:t.n])
		return out
	}
	out := make([]SpanEvent, 0, size)
	start := t.n % size
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}

// Journey returns the retained events of one packet, oldest first —
// the reconstructable per-hop record the ndb debugger consumes.
func (t *Tracer) Journey(uid uint64) []SpanEvent {
	var out []SpanEvent
	for _, ev := range t.Events() {
		if ev.UID == uid {
			out = append(out, ev)
		}
	}
	return out
}

// Reset discards all retained events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.n = 0
	t.mu.Unlock()
}

// spanJSON is the JSONL wire form of a SpanEvent.
type spanJSON struct {
	At    int64  `json:"at_ns"`
	UID   uint64 `json:"uid"`
	Node  uint32 `json:"node"`
	Stage string `json:"stage"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
}

// WriteJSONL emits the retained events, one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(spanJSON{
			At: ev.At, UID: ev.UID, Node: ev.Node,
			Stage: ev.Stage.String(), A: ev.A, B: ev.B,
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the retained events as CSV rows.
func (t *Tracer) WriteCSV(w io.Writer) error {
	c := trace.NewCSV(w, "at_ns", "uid", "node", "stage", "a", "b")
	for _, ev := range t.Events() {
		c.Row(ev.At, ev.UID, ev.Node, ev.Stage.String(), ev.A, ev.B)
	}
	return c.Err()
}
