// Package obs is the simulation-time-aware telemetry subsystem: the
// structured observability layer the paper's thesis demands of the
// network is applied here to the reproduction itself.
//
// It has two halves:
//
//   - A metric Registry of counters, gauges and fixed log2-bucket
//     histograms, keyed hierarchically ("switch/3/port/1/queue_depth_bytes").
//     Handles are resolved once at construction time; every hot-path
//     operation (Counter.Add, Histogram.Observe, Tracer.Record) is a
//     safe no-op on a nil receiver, so a dataplane built without
//     telemetry pays nothing — no branches on a config struct, no
//     allocations, no atomic traffic.
//
//   - A packet-lifecycle Tracer: a bounded ring buffer of SpanEvents
//     recorded at each pipeline stage (parser, lookup, TCPU, memory
//     manager, egress queue, scheduler) and at each link (serialization
//     start, loss, delivery), from which any packet's full journey can
//     be reconstructed by UID and fed to the internal/ndb debugger.
//
// Both halves export snapshots as JSONL (one object per line, for
// ingestion) and CSV (via internal/trace, for the experiment
// harnesses), and Diff produces counter/histogram deltas for tests.
//
// All mutating operations are safe for concurrent use: counters,
// gauges and histogram buckets are atomics and the tracer ring is
// mutex-guarded, so the -race telemetry tests can hammer them from
// parallel benchmarks.
package obs
