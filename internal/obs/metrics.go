package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.  All methods are no-ops
// on a nil receiver, so disabled telemetry costs one predictable branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add shifts the value by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the histogram bucket count: bucket 0 holds the value 0
// and bucket i (1..64) holds values in [2^(i-1), 2^i).  Fixed log2
// buckets keep Observe allocation-free and O(1) — the shape P4TG uses
// for in-dataplane RTT histograms — at the cost of ~2x value
// resolution, which is plenty for queue depths, latencies and cycle
// counts spanning many decades.
const NumBuckets = 65

// BucketLow returns the smallest value bucket i holds.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the largest value bucket i holds.
func BucketHigh(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<i - 1
}

// BucketOf maps a value to its bucket index: bits.Len64 is the log2
// bucketing function (0 -> 0, [2^(i-1), 2^i) -> i).  It is exported so
// dataplane code (the in-band histogram workloads) buckets values with
// exactly the same function the host-side histograms use, making the
// two directly comparable bucket-for-bucket.
func BucketOf(v uint64) int { return bits.Len64(v) }

func bucketOf(v uint64) int { return BucketOf(v) }

// Histogram accumulates a distribution in fixed log2 buckets.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// NewHistogram builds a standalone histogram (outside any registry);
// experiment code uses this when it wants the distribution shape
// without a full telemetry setup.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe folds one value in.  No-op on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveBucket folds n pre-bucketed observations directly into bucket
// i — the aggregation path for dataplane-computed histograms, whose
// sweeps deliver per-bucket counts rather than raw values.  Sum and Max
// are maintained with the bucket's lower edge as the representative
// value (the true values were quantized away in the dataplane), so Mean
// and Quantile stay conservative underestimates.  No-op on a nil
// receiver or an out-of-range bucket.
func (h *Histogram) ObserveBucket(i int, n uint64) {
	if h == nil || n == 0 || i < 0 || i >= NumBuckets {
		return
	}
	h.buckets[i].Add(n)
	h.count.Add(n)
	rep := BucketLow(i)
	h.sum.Add(rep * n)
	for {
		cur := h.max.Load()
		if rep <= cur || h.max.CompareAndSwap(cur, rep) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Bucket returns the observation count of bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= NumBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the buckets,
// reporting the upper edge of the bucket the quantile falls in (clamped
// to the true maximum), so the estimate never understates.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			hi := BucketHigh(i)
			if m := h.Max(); m < hi {
				return m
			}
			return hi
		}
	}
	return h.Max()
}

// String summarizes the distribution on one line.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50<=%d p99<=%d max=%d",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}
