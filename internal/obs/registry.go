package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Registry holds the metric namespace.  Names are hierarchical,
// slash-separated paths ("switch/3/port/1/queue_depth_bytes"); handles
// are resolved once, at construction time, and used lock-free on the
// hot path.  All lookup methods are safe on a nil *Registry and return
// nil handles, whose operations are no-ops — the disabled-telemetry
// fast path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Metric kinds in snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Low  uint64 `json:"lo"`
	High uint64 `json:"hi"`
	N    uint64 `json:"n"`
}

// Metric is one metric's state in a snapshot.
type Metric struct {
	AtNs int64  `json:"at_ns"`
	Name string `json:"name"`
	Kind string `json:"kind"`

	// Value is the counter count or the gauge value.
	Value int64 `json:"value,omitempty"`

	// Histogram fields.
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Max     uint64   `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile of a histogram metric from its
// snapshotted buckets (0 for other kinds or empty histograms).
func (m Metric) Quantile(q float64) uint64 {
	if m.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(m.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range m.Buckets {
		cum += b.N
		if cum >= target {
			if m.Max < b.High {
				return m.Max
			}
			return b.High
		}
	}
	return m.Max
}

// Snapshot is a point-in-time copy of every registered metric, sorted
// by name.
type Snapshot struct {
	AtNs    int64
	Metrics []Metric
}

// Snapshot captures the registry at simulated time atNs.
func (r *Registry) Snapshot(atNs int64) Snapshot {
	s := Snapshot{AtNs: atNs}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters { //lint:allow maporder (sorted before return)
		s.Metrics = append(s.Metrics, Metric{
			AtNs: atNs, Name: name, Kind: KindCounter, Value: int64(c.Value()),
		})
	}
	for name, g := range r.gauges { //lint:allow maporder (sorted before return)
		s.Metrics = append(s.Metrics, Metric{
			AtNs: atNs, Name: name, Kind: KindGauge, Value: g.Value(),
		})
	}
	for name, h := range r.hists { //lint:allow maporder (sorted before return)
		m := Metric{
			AtNs: atNs, Name: name, Kind: KindHistogram,
			Count: h.Count(), Sum: h.Sum(), Max: h.Max(),
		}
		for i := 0; i < NumBuckets; i++ {
			if n := h.Bucket(i); n > 0 {
				m.Buckets = append(m.Buckets, Bucket{Low: BucketLow(i), High: BucketHigh(i), N: n})
			}
		}
		s.Metrics = append(s.Metrics, m)
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}

// Get returns the named metric from the snapshot.
func (s Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return Metric{}, false
}

// WriteJSONL emits one JSON object per metric, one per line.
func (s Snapshot) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, m := range s.Metrics {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the snapshot as CSV rows: histogram distributions are
// summarized as count/sum/max plus approximate p50 and p99.
func (s Snapshot) WriteCSV(w io.Writer) error {
	c := trace.NewCSV(w, "name", "kind", "value", "count", "sum", "max", "p50", "p99")
	for _, m := range s.Metrics {
		if m.Kind == KindHistogram {
			c.Row(m.Name, m.Kind, "", m.Count, m.Sum, m.Max, m.Quantile(0.5), m.Quantile(0.99))
		} else {
			c.Row(m.Name, m.Kind, m.Value, "", "", "", "", "")
		}
	}
	return c.Err()
}

// Diff returns after minus before: counter and histogram counts become
// deltas (metrics only in after pass through; gauges and histogram
// maxima keep the after value, as they are not meaningfully
// subtractable).  Tests use it to assert what one operation contributed.
func Diff(before, after Snapshot) Snapshot {
	prev := make(map[string]Metric, len(before.Metrics))
	for _, m := range before.Metrics {
		prev[m.Name] = m
	}
	out := Snapshot{AtNs: after.AtNs}
	for _, m := range after.Metrics {
		p, ok := prev[m.Name]
		if ok && p.Kind == m.Kind {
			switch m.Kind {
			case KindCounter:
				m.Value -= p.Value
			case KindHistogram:
				m.Count -= p.Count
				m.Sum -= p.Sum
				m.Buckets = diffBuckets(p.Buckets, m.Buckets)
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// diffBuckets subtracts the before counts bucket-by-bucket, dropping
// buckets that end up empty.
func diffBuckets(before, after []Bucket) []Bucket {
	prev := make(map[uint64]uint64, len(before))
	for _, b := range before {
		prev[b.Low] = b.N
	}
	var out []Bucket
	for _, b := range after {
		b.N -= prev[b.Low]
		if b.N > 0 {
			out = append(out, b)
		}
	}
	return out
}
