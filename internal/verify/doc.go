// Package verify statically verifies tiny packet programs before they
// enter the network, in the spirit of the eBPF verifier: a single-pass
// abstract interpretation over a parsed core.TPP that proves the
// program is memory-safe and cheap enough to run at line rate, or
// reports exactly why not, instruction by instruction.
//
// The paper's feasibility argument (§3.3) and its security story (§3.5
// "TPP whitelisting") both assume switches only see programs that are
// provably well-behaved; the dynamic checks in internal/tcpu fire
// mid-pipeline, after the packet is already in flight, where the only
// remedy is flagging the packet.  Verification moves those checks to
// injection time, where a bad program can still be rejected.
//
// Four property families are checked:
//
//   - Wire-format sanity: version, addressing mode, 4-byte alignment
//     of the stack pointer, per-hop record size and packet memory, and
//     operand encodability.
//   - Memory safety: every LOAD/STORE/PUSH/POP/CSTORE/CEXEC operand is
//     resolved against internal/mem's unified address map.  Loads must
//     hit mapped registers, stores must hit writable ones (statistics
//     and protected ranges are read-only), and every packet-memory
//     access — absolute in stack mode, hop-relative in hop mode — must
//     land inside the program's packet memory at the hop being
//     verified.
//   - Resource bounds: the per-instruction retire cycle under
//     internal/tcpu's Figure 5 pipeline model must stay within the
//     configured cycle budget (tcpu.BudgetCycles by default, or a
//     budget derived from tcpu.CheckLineRate), and the program must
//     fit the device instruction limit.
//   - Semantic lints (warnings, not rejections): CEXEC/CSTORE guards
//     that read packet memory no prior instruction initialized, and
//     instructions made unreachable by a CEXEC that can never pass.
//
// The contract, fuzz-tested in FuzzVerify: a program that verifies
// with no error-severity diagnostics never trips a dynamic fault in
// the TCPU on its first hop.
package verify
