package verify

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/tcpu"
)

// Code classifies a diagnostic, stable across message rewording so
// callers (and tests) can match on it.
type Code string

// Diagnostic codes.
const (
	// CodeWireFormat: the raw bytes do not parse as a TPP section.
	CodeWireFormat Code = "wire-format"
	// CodeMisaligned: a section violates 4-byte alignment (packet
	// memory length, stack pointer, or per-hop record size).
	CodeMisaligned Code = "misaligned"
	// CodeBadVersion: unsupported TPP wire-format version.
	CodeBadVersion Code = "bad-version"
	// CodeBadMode: unknown addressing mode.
	CodeBadMode Code = "bad-mode"
	// CodeBadOpcode: an instruction uses an opcode outside the set.
	CodeBadOpcode Code = "bad-opcode"
	// CodeBadOperand: an operand exceeds the 12-bit encodable range.
	CodeBadOperand Code = "bad-operand"
	// CodeTooLong: the program exceeds the device instruction limit.
	CodeTooLong Code = "program-too-long"
	// CodeOOBPacketMem: a packet-memory access lands outside the
	// program's packet memory (including hop-relative addresses and
	// stack overflow/underflow).
	CodeOOBPacketMem Code = "oob-packet-memory"
	// CodeUnmapped: a switch-memory operand addresses no register.
	CodeUnmapped Code = "unmapped-address"
	// CodeReadOnly: a store targets a protected/statistics address.
	CodeReadOnly Code = "read-only-store"
	// CodeModeMismatch: PUSH/POP outside stack addressing mode.
	CodeModeMismatch Code = "mode-mismatch"
	// CodeACLDenied: the tenant's ACL denies the access class on this
	// namespace — at runtime the guard would poison the load or drop
	// the store and set FlagAccessFault.
	CodeACLDenied Code = "acl-denied"
	// CodePartitionOOB: an SRAM access falls outside the tenant's
	// base+bounds partition (tenant-relative addresses run from word 0
	// to the partition size).
	CodePartitionOOB Code = "partition-oob"
	// CodeOverBudget: the instruction retires past the per-packet
	// cycle budget, so the program cannot run at line rate.
	CodeOverBudget Code = "over-budget"
	// CodeUninitGuard (warning): a CEXEC/CSTORE guard reads packet
	// memory that nothing initialized.
	CodeUninitGuard Code = "uninitialized-guard"
	// CodeDeadCode (warning): instructions after the last reachable
	// PC.
	CodeDeadCode Code = "dead-code"
	// CodeZeroHopLen (warning): hop addressing with a zero per-hop
	// record size, so every hop overwrites the same words.
	CodeZeroHopLen Code = "zero-hop-record"
	// CodeTrailingBytes (warning): bytes after the TPP section.
	CodeTrailingBytes Code = "trailing-bytes"
)

// Severity splits diagnostics into rejections and lints.
type Severity uint8

const (
	// Warn marks a lint: suspicious but not a rejection.
	Warn Severity = iota
	// Err marks a proof obligation failure: the program is rejected.
	Err
)

// String names the severity.
func (s Severity) String() string {
	if s == Err {
		return "error"
	}
	return "warning"
}

// Diagnostic pins one finding to an instruction.  PC is the
// instruction index, or -1 for program-level findings (header fields,
// overall length).
type Diagnostic struct {
	PC       int
	Code     Code
	Severity Severity
	Msg      string
}

// String formats the diagnostic as "pc 3: error: [code] msg".
func (d Diagnostic) String() string {
	loc := "program"
	if d.PC >= 0 {
		loc = fmt.Sprintf("pc %d", d.PC)
	}
	return fmt.Sprintf("%s: %s: [%s] %s", loc, d.Severity, d.Code, d.Msg)
}

// Result is a verification outcome: the full diagnostic list, in
// program order.
type Result struct {
	Diags []Diagnostic
}

// OK reports whether the program verified: no error-severity
// diagnostics (warnings do not reject).
func (r Result) OK() bool { return len(r.Errors()) == 0 }

// Errors returns only the error-severity diagnostics.
func (r Result) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == Err {
			out = append(out, d)
		}
	}
	return out
}

// String renders one diagnostic per line.
func (r Result) String() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Config parameterizes verification for a target device.  The zero
// value models the paper's default switch: a five-instruction TCPU
// with the §3.3 cut-through cycle budget and an unknown port count.
type Config struct {
	// MaxInstructions is the device program-length limit; zero means
	// tcpu.DefaultMaxInstructions.
	MaxInstructions int
	// BudgetCycles is the per-packet execution budget; zero means
	// tcpu.BudgetCycles.  Derive a line-rate budget with ForLineRate.
	BudgetCycles int
	// Ports bounds the absolute per-port statistics window; zero
	// means unknown (the whole window is assumed mapped, the
	// permissive end-host default).
	Ports int
	// Grant, when non-nil, additionally checks every switch-memory
	// access against a tenant's entitlement: the per-namespace ACL and
	// the SRAM partition bounds.  The check calls the same
	// guard.Grant.CheckLoad/CheckStore the dataplane guard enforces
	// with, so a program that verifies under a grant never triggers a
	// dynamic FlagAccessFault on a switch honoring that grant — the
	// injection-time rejection the extended paper's edge demands.
	Grant *guard.Grant
}

func (c Config) maxIns() int {
	if c.MaxInstructions <= 0 {
		return tcpu.DefaultMaxInstructions
	}
	return c.MaxInstructions
}

func (c Config) budget() int {
	if c.BudgetCycles <= 0 {
		return tcpu.BudgetCycles
	}
	return c.BudgetCycles
}

// ForLineRate derives a Config whose cycle budget is the per-packet
// budget of the given line-rate feasibility check: a program the
// verifier accepts under it provably sustains that switch's worst-case
// packet rate on the modeled TCPU pipelines.
func ForLineRate(lr tcpu.LineRateCheck) Config {
	b := int(lr.PerPacketBudgetCycles)
	if b < 1 {
		b = 1
	}
	return Config{BudgetCycles: b}
}

// Verify runs the full static check over a parsed TPP at its current
// header state (the stack pointer / hop counter the program will carry
// into its first switch).  The TPP is not modified.
func Verify(t *core.TPP, cfg Config) Result {
	var r Result
	diag := func(pc int, code Code, sev Severity, format string, args ...any) {
		r.Diags = append(r.Diags, Diagnostic{PC: pc, Code: code, Severity: sev, Msg: fmt.Sprintf(format, args...)})
	}

	// Wire-format sanity (the static mirror of core.Validate, plus
	// the checks Validate leaves to the TCPU).
	structOK := true
	if t.Version != core.TPPVersion {
		diag(-1, CodeBadVersion, Err, "unsupported TPP version %d (want %d)", t.Version, core.TPPVersion)
		structOK = false
	}
	if t.Mode != core.AddrStack && t.Mode != core.AddrHop {
		diag(-1, CodeBadMode, Err, "invalid addressing mode %d", uint8(t.Mode))
		structOK = false
	}
	if len(t.Ins) > core.MaxTPPInstructions {
		diag(-1, CodeTooLong, Err, "%d instructions exceed the wire-format maximum %d", len(t.Ins), core.MaxTPPInstructions)
		structOK = false
	} else if len(t.Ins) > cfg.maxIns() {
		diag(-1, CodeTooLong, Err, "%d instructions exceed the device limit %d", len(t.Ins), cfg.maxIns())
	}
	if len(t.Mem)%4 != 0 {
		diag(-1, CodeMisaligned, Err, "packet memory length %d is not 4-byte aligned", len(t.Mem))
		structOK = false
	}
	if t.Mode == core.AddrHop && t.HopLen%4 != 0 {
		diag(-1, CodeMisaligned, Err, "per-hop record size %d is not 4-byte aligned", t.HopLen)
		structOK = false
	}
	if t.Mode == core.AddrHop && t.HopLen == 0 && len(t.Ins) > 0 {
		diag(-1, CodeZeroHopLen, Warn, "hop addressing with zero per-hop record size: every hop writes the same words")
	}
	if t.Mode == core.AddrStack && t.Ptr%4 != 0 {
		diag(-1, CodeMisaligned, Err, "stack pointer %d is not 4-byte aligned", t.Ptr)
		structOK = false
	}
	for pc, in := range t.Ins {
		if !in.Op.Valid() {
			diag(pc, CodeBadOpcode, Err, "invalid opcode %d", uint8(in.Op))
			structOK = false
		}
		if in.A > core.MaxOperand {
			diag(pc, CodeBadOperand, Err, "switch operand %#x exceeds %d bits", in.A, core.OperandBits)
			structOK = false
		}
		if in.B > core.MaxOperand {
			diag(pc, CodeBadOperand, Err, "packet operand %#x exceeds %d bits", in.B, core.OperandBits)
			structOK = false
		}
	}
	if !structOK {
		// The abstract walk needs a structurally sound program; the
		// findings above already reject it.
		return r
	}

	w := walker{t: t, cfg: cfg, diag: diag}
	w.run()
	return r
}

// walker is the abstract-interpretation state for one straight-line
// pass over the program at its first hop.
type walker struct {
	t    *core.TPP
	cfg  Config
	diag func(pc int, code Code, sev Severity, format string, args ...any)

	sp       int    // abstract stack pointer, bytes (stack mode)
	sp0Words int    // words below the initial SP count as initialized
	written  []bool // packet-memory words written by earlier instructions
	stalls   int    // worst-case CSTORE stall cycles accrued so far
}

func (w *walker) run() {
	t := w.t
	words := t.MemWords()
	w.written = make([]bool, words)
	if t.Mode == core.AddrStack {
		w.sp = int(t.Ptr)
		w.sp0Words = int(t.Ptr) / 4
	}

	budget := w.cfg.budget()
	for pc, in := range t.Ins {
		if halts, known := w.step(pc, in); halts && known {
			if pc+1 < len(t.Ins) {
				w.diag(pc+1, CodeDeadCode, Warn,
					"instructions %d..%d are unreachable: the CEXEC at pc %d can never pass", pc+1, len(t.Ins)-1, pc)
			}
			return
		}
		// Figure 5 pipeline: instruction pc retires at cycle
		// PipelineLatency+pc, plus one stall per (worst-case
		// successful) CSTORE at or before it.
		if retire := tcpu.PipelineLatency + pc + w.stalls; retire > budget {
			w.diag(pc, CodeOverBudget, Err,
				"instruction retires at cycle %d, past the %d-cycle per-packet budget", retire, budget)
		}
	}
}

// effective resolves a packet operand to a word index at the hop being
// verified, mirroring core.TPP.EffectiveWord.
func (w *walker) effective(b uint16) int {
	if w.t.Mode == core.AddrHop {
		return int(w.t.Ptr)*(int(w.t.HopLen)/4) + int(b)
	}
	return int(b)
}

// markWrite records that the program overwrote word i: the word is now
// initialized, and its injection-time contents no longer constant.
func (w *walker) markWrite(i int) {
	if i >= 0 && i < len(w.written) {
		w.written[i] = true
	}
}

// initialized reports whether word i provably holds a meaningful value
// when read: pre-set nonzero memory, anything below the initial stack
// pointer, or a word an earlier instruction wrote.
func (w *walker) initialized(i int) bool {
	if i < 0 || i >= len(w.written) {
		return false
	}
	return w.written[i] || w.t.Word(i) != 0 || (w.t.Mode == core.AddrStack && i < w.sp0Words)
}

// checkPkt bounds-checks packet-memory word i for instruction pc.
func (w *walker) checkPkt(pc, i int, what string) bool {
	if i >= 0 && i < w.t.MemWords() {
		return true
	}
	w.diag(pc, CodeOOBPacketMem, Err,
		"%s packet-memory word %d out of range (%d words)", what, i, w.t.MemWords())
	return false
}

// checkLoad verifies that switch address a is a mapped register and,
// under a tenant grant, that the tenant may read it.
func (w *walker) checkLoad(pc int, a uint16) {
	if !mem.Readable(mem.Addr(a), w.cfg.Ports) {
		w.diag(pc, CodeUnmapped, Err, "load from unmapped address %s (%#x)", mem.NameOf(mem.Addr(a)), mem.Addr(a).ByteAddr())
		return
	}
	w.checkGrant(pc, mem.Addr(a), false)
}

// checkGrant rejects any access the tenant's grant would deny at
// runtime, deciding through the same CheckLoad/CheckStore the guard
// uses — which is what makes static acceptance imply dynamic silence.
func (w *walker) checkGrant(pc int, addr mem.Addr, write bool) {
	g := w.cfg.Grant
	if g == nil {
		return
	}
	ok := false
	if write {
		_, ok = g.CheckStore(addr)
	} else {
		_, ok = g.CheckLoad(addr)
	}
	if ok {
		return
	}
	verb, access := "load from", "read"
	if write {
		verb, access = "store to", "write"
	}
	ns := mem.NamespaceOf(addr)
	if ns == mem.NSSRAM && g.ACL.Allows(ns, write) {
		w.diag(pc, CodePartitionOOB, Err,
			"%s %s (%#x): SRAM word %d is outside the tenant's %d-word partition",
			verb, mem.NameOf(addr), addr.ByteAddr(), mem.SRAMIndex(addr), g.Words())
		return
	}
	w.diag(pc, CodeACLDenied, Err,
		"%s %s (%#x): the tenant ACL denies %s access to the %s namespace",
		verb, mem.NameOf(addr), addr.ByteAddr(), access, ns)
}

// checkStore verifies that switch address a accepts TPP stores and,
// under a tenant grant, that the tenant may write it.
func (w *walker) checkStore(pc int, a uint16) {
	addr := mem.Addr(a)
	switch {
	case mem.StoreOK(addr, w.cfg.Ports):
		w.checkGrant(pc, addr, true)
	case mem.Writable(addr):
		w.diag(pc, CodeUnmapped, Err, "store to unmapped address %s (%#x)", mem.NameOf(addr), addr.ByteAddr())
	case mem.Readable(addr, w.cfg.Ports):
		w.diag(pc, CodeReadOnly, Err, "store to protected address %s (%#x): statistics are read-only", mem.NameOf(addr), addr.ByteAddr())
	default:
		w.diag(pc, CodeUnmapped, Err, "store to unmapped address %s (%#x)", mem.NameOf(addr), addr.ByteAddr())
	}
}

// guardRead lint-checks a CEXEC/CSTORE guard word.
func (w *walker) guardRead(pc, i int, what string) {
	if !w.initialized(i) {
		w.diag(pc, CodeUninitGuard, Warn,
			"%s reads packet-memory word %d, which nothing initialized", what, i)
	}
}

// step analyzes one instruction.  halts reports that execution cannot
// continue past it; known reports the halt is statically certain (a
// CEXEC over constants that can never pass), which makes everything
// after it dead code.
func (w *walker) step(pc int, in core.Instruction) (halts, known bool) {
	t := w.t
	switch in.Op {
	case core.OpNOP:

	case core.OpLOAD:
		w.checkLoad(pc, in.A)
		i := w.effective(in.B)
		if w.checkPkt(pc, i, "LOAD writes") {
			w.markWrite(i)
		}

	case core.OpSTORE:
		i := w.effective(in.B)
		w.checkPkt(pc, i, "STORE reads")
		w.checkStore(pc, in.A)

	case core.OpPUSH:
		if t.Mode != core.AddrStack {
			w.diag(pc, CodeModeMismatch, Err, "PUSH requires stack addressing mode")
			return false, false
		}
		w.checkLoad(pc, in.A)
		if w.sp+4 > len(t.Mem) {
			w.diag(pc, CodeOOBPacketMem, Err,
				"PUSH exhausts packet memory at the first hop (SP=%d, %d bytes)", w.sp, len(t.Mem))
			return false, false
		}
		w.markWrite(w.sp / 4)
		w.sp += 4

	case core.OpPOP:
		if t.Mode != core.AddrStack {
			w.diag(pc, CodeModeMismatch, Err, "POP requires stack addressing mode")
			return false, false
		}
		if w.sp < 4 {
			w.diag(pc, CodeOOBPacketMem, Err, "POP on an empty stack")
			return false, false
		}
		if w.sp > len(t.Mem) {
			w.diag(pc, CodeOOBPacketMem, Err,
				"POP reads past packet memory (SP=%d, %d bytes)", w.sp, len(t.Mem))
			return false, false
		}
		w.sp -= 4
		w.checkStore(pc, in.A)

	case core.OpCSTORE:
		base := w.effective(in.B)
		ok := w.checkPkt(pc, base, "CSTORE condition") &&
			w.checkPkt(pc, base+1, "CSTORE source") &&
			w.checkPkt(pc, base+2, "CSTORE result")
		w.checkStore(pc, in.A)
		if ok {
			w.guardRead(pc, base, "CSTORE condition")
			w.guardRead(pc, base+1, "CSTORE source")
			w.markWrite(base + 2)
		}
		// Worst case the compare succeeds: one extra stall cycle in
		// the Figure 5 pipeline (memory read + write in one
		// instruction).
		w.stalls++

	case core.OpCEXEC:
		base := w.effective(in.B)
		ok := w.checkPkt(pc, base, "CEXEC mask") && w.checkPkt(pc, base+1, "CEXEC value")
		w.checkLoad(pc, in.A)
		if !ok {
			return false, false
		}
		w.guardRead(pc, base, "CEXEC mask")
		w.guardRead(pc, base+1, "CEXEC value")
		// If both guard words still hold their injection-time
		// contents, the predicate is a compile-time constant in
		// value bits outside the mask: (reg & mask) can never equal
		// a value with bits the mask clears.
		if !w.written[base] && !w.written[base+1] {
			mask, val := t.Word(base), t.Word(base+1)
			if val&^mask != 0 {
				return true, true
			}
		}
		return true, false // may halt at runtime; successors stay reachable

	case core.OpADD, core.OpSUB, core.OpMAX:
		w.checkLoad(pc, in.A)
		i := w.effective(in.B)
		if w.checkPkt(pc, i, in.Op.String()+" updates") {
			w.markWrite(i)
		}
	}
	return false, false
}

// VerifyWire checks a raw TPP section: wire-format sanity first (a
// section that does not parse is rejected with a single wire-format
// diagnostic), then the full static verification of the decoded
// program.  The decoded TPP is returned when parsing succeeded.
func VerifyWire(b []byte, cfg Config) (Result, *core.TPP) {
	var t core.TPP
	n, err := core.ParseTPP(b, &t)
	if err != nil {
		return Result{Diags: []Diagnostic{{
			PC: -1, Code: CodeWireFormat, Severity: Err, Msg: err.Error(),
		}}}, nil
	}
	r := Verify(&t, cfg)
	if n < len(b) {
		r.Diags = append(r.Diags, Diagnostic{
			PC: -1, Code: CodeTrailingBytes, Severity: Warn,
			Msg: fmt.Sprintf("%d trailing bytes after the TPP section", len(b)-n),
		})
	}
	return r, &t
}
