package verify_test

import (
	"testing"

	. "repro/internal/verify"

	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/microburst"
	"repro/internal/ndb"
	"repro/internal/tcpu"
	"repro/internal/wireless"
)

// hasErr reports whether the result carries an error with the given
// code at the given PC.
func hasErr(r Result, pc int, code Code) bool {
	for _, d := range r.Errors() {
		if d.PC == pc && d.Code == code {
			return true
		}
	}
	return false
}

func TestRejectsOutOfBoundsStore(t *testing.T) {
	// STORE reads pkt[9] but the program owns 2 words of memory.
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.SRAMBase), B: 9},
	}, 2)
	r := Verify(tpp, Config{})
	if r.OK() {
		t.Fatalf("out-of-bounds store verified:\n%s", r)
	}
	if !hasErr(r, 0, CodeOOBPacketMem) {
		t.Fatalf("want %s at pc 0, got:\n%s", CodeOOBPacketMem, r)
	}
}

func TestRejectsProtectedStore(t *testing.T) {
	// [Queue:QueueSize] is a statistics register: read-only.
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.QueueBase + mem.QueueBytes), B: 0},
	}, 1)
	r := Verify(tpp, Config{})
	if !hasErr(r, 0, CodeReadOnly) {
		t.Fatalf("want %s at pc 0, got:\n%s", CodeReadOnly, r)
	}
	// POP stores too: same protection.
	tpp = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPOP, A: uint16(mem.SwitchBase + mem.SwitchID)},
	}, 1)
	tpp.Ptr = 4
	if r := Verify(tpp, Config{}); !hasErr(r, 0, CodeReadOnly) {
		t.Fatalf("POP to statistics register verified:\n%s", r)
	}
}

func TestRejectsMisalignedSections(t *testing.T) {
	tpp := core.NewTPP(core.AddrStack, nil, 2)
	tpp.Ptr = 2 // not 4-byte aligned
	if r := Verify(tpp, Config{}); !hasErr(r, -1, CodeMisaligned) {
		t.Fatalf("misaligned stack pointer verified:\n%s", r)
	}

	tpp = core.NewTPP(core.AddrHop, nil, 4)
	tpp.HopLen = 6 // not 4-byte aligned
	if r := Verify(tpp, Config{}); !hasErr(r, -1, CodeMisaligned) {
		t.Fatalf("misaligned hop record verified:\n%s", r)
	}

	tpp = core.NewTPP(core.AddrStack, nil, 2)
	tpp.Mem = tpp.Mem[:6] // torn word
	if r := Verify(tpp, Config{}); !hasErr(r, -1, CodeMisaligned) {
		t.Fatalf("misaligned packet memory verified:\n%s", r)
	}
}

func TestRejectsOverBudgetProgram(t *testing.T) {
	// A 64-port 10GbE switch at min packet size shares one 1GHz clock
	// across 5 pipelines: ~5 cycles of budget per packet.  A
	// five-instruction program needs 8.
	lr := tcpu.CheckLineRate(64, 10, 64, 5, 1.0)
	cfg := ForLineRate(lr)
	if cfg.BudgetCycles >= tcpu.PipelineLatency+5-1 {
		t.Fatalf("line-rate budget %d too generous for the test premise", cfg.BudgetCycles)
	}
	ins := make([]core.Instruction, 5)
	for i := range ins {
		ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(mem.SwitchBase + mem.SwitchID)}
	}
	tpp := core.NewTPP(core.AddrStack, ins, 5)
	r := Verify(tpp, cfg)
	if r.OK() {
		t.Fatalf("over-budget program verified under %d-cycle budget:\n%s", cfg.BudgetCycles, r)
	}
	found := false
	for _, d := range r.Errors() {
		if d.Code == CodeOverBudget {
			found = true
			// The diagnostic must be per-instruction: pinned to the
			// first instruction that retires past the budget.
			if d.PC < 0 || d.PC >= len(ins) {
				t.Fatalf("over-budget diagnostic not pinned to a PC: %v", d)
			}
		}
	}
	if !found {
		t.Fatalf("want %s, got:\n%s", CodeOverBudget, r)
	}
	// The same program fits the default §3.3 cut-through budget.
	if r := Verify(tpp, Config{}); !r.OK() {
		t.Fatalf("program rejected under the default budget:\n%s", r)
	}
}

func TestRejectsUnmappedAddresses(t *testing.T) {
	// Switch namespace only backs 10 statistic words.
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.SwitchBase) + 200},
	}, 1)
	if r := Verify(tpp, Config{}); !hasErr(r, 0, CodeUnmapped) {
		t.Fatalf("unmapped load verified:\n%s", r)
	}
	// Absolute port window beyond the switch's port count.
	tpp = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.PortAbs(5, mem.PortQueueSize))},
	}, 1)
	if r := Verify(tpp, Config{Ports: 2}); !hasErr(r, 0, CodeUnmapped) {
		t.Fatalf("out-of-range port window load verified:\n%s", r)
	}
	// ...but verifies when the port count is unknown (permissive).
	if r := Verify(tpp, Config{}); !r.OK() {
		t.Fatalf("port window load rejected without a port bound:\n%s", r)
	}
}

func TestRejectsModeAndStackMisuse(t *testing.T) {
	tpp := core.NewTPP(core.AddrHop, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.SwitchBase + mem.SwitchID)},
	}, 4)
	tpp.HopLen = 4
	if r := Verify(tpp, Config{}); !hasErr(r, 0, CodeModeMismatch) {
		t.Fatalf("PUSH in hop mode verified:\n%s", r)
	}

	tpp = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPOP, A: uint16(mem.SRAMBase)},
	}, 1)
	if r := Verify(tpp, Config{}); !hasErr(r, 0, CodeOOBPacketMem) {
		t.Fatalf("POP on empty stack verified:\n%s", r)
	}

	// PUSH with no room at the first hop.
	tpp = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.SwitchBase + mem.SwitchID)},
	}, 0)
	if r := Verify(tpp, Config{}); !hasErr(r, 0, CodeOOBPacketMem) {
		t.Fatalf("PUSH into zero-word memory verified:\n%s", r)
	}
}

func TestRejectsOverlongProgram(t *testing.T) {
	ins := make([]core.Instruction, 6)
	for i := range ins {
		ins[i] = core.Instruction{Op: core.OpNOP}
	}
	tpp := core.NewTPP(core.AddrStack, ins, 0)
	if r := Verify(tpp, Config{}); !hasErr(r, -1, CodeTooLong) {
		t.Fatalf("six instructions verified under the default 5-instruction device:\n%s", r)
	}
	if r := Verify(tpp, Config{MaxInstructions: 8}); !r.OK() {
		t.Fatalf("six instructions rejected under an 8-instruction device:\n%s", r)
	}
}

func TestHopRelativeBounds(t *testing.T) {
	// Hop 3 of a 4-words-per-hop program addressing 8 words of memory:
	// effective word 3*1+0 = 3 in range; offset 5 is not.
	tpp := core.NewTPP(core.AddrHop, []core.Instruction{
		{Op: core.OpLOAD, A: uint16(mem.SwitchBase + mem.SwitchID), B: 5},
	}, 4)
	tpp.HopLen = 4
	tpp.Ptr = 3
	if r := Verify(tpp, Config{}); !hasErr(r, 0, CodeOOBPacketMem) {
		t.Fatalf("hop-relative out-of-bounds load verified:\n%s", r)
	}
	tpp.Ptr = 2
	tpp.Ins[0].B = 1 // word 2*1+1 = 3: in range
	if r := Verify(tpp, Config{}); !r.OK() {
		t.Fatalf("in-range hop-relative load rejected:\n%s", r)
	}
}

func TestLintsUninitializedGuard(t *testing.T) {
	// CEXEC over zeroed, never-written packet memory above the stack
	// pointer: a guard nothing initialized.
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
	}, 2)
	r := Verify(tpp, Config{})
	if !r.OK() {
		t.Fatalf("lint must not reject:\n%s", r)
	}
	found := false
	for _, d := range r.Diags {
		if d.Code == CodeUninitGuard && d.Severity == Warn {
			found = true
		}
	}
	if !found {
		t.Fatalf("want %s warning, got:\n%s", CodeUninitGuard, r)
	}

	// Pre-initialized guards (the RCP/accounting pattern) stay clean.
	tpp = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
	}, 2)
	tpp.SetWord(0, 0xFFFFFFFF)
	tpp.SetWord(1, 7)
	for _, d := range Verify(tpp, Config{}).Diags {
		if d.Code == CodeUninitGuard {
			t.Fatalf("initialized guard still linted: %v", d)
		}
	}
}

func TestLintsDeadCodeAfterImpossibleCEXEC(t *testing.T) {
	// mask 0x0F but value 0xF0: (reg & 0x0F) can never have high bits.
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
		{Op: core.OpPUSH, A: uint16(mem.SwitchBase + mem.SwitchID)},
	}, 3)
	tpp.SetWord(0, 0x0F)
	tpp.SetWord(1, 0xF0)
	tpp.Ptr = 8
	r := Verify(tpp, Config{})
	if !r.OK() {
		t.Fatalf("dead-code lint must not reject:\n%s", r)
	}
	found := false
	for _, d := range r.Diags {
		if d.Code == CodeDeadCode && d.PC == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("want %s at pc 1, got:\n%s", CodeDeadCode, r)
	}
}

func TestRejectsStructurallyInvalid(t *testing.T) {
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{{Op: core.Opcode(99)}}, 0)
	if r := Verify(tpp, Config{}); !hasErr(r, 0, CodeBadOpcode) {
		t.Fatalf("bad opcode verified:\n%s", r)
	}
	tpp = core.NewTPP(core.AddrStack, nil, 0)
	tpp.Version = 9
	if r := Verify(tpp, Config{}); !hasErr(r, -1, CodeBadVersion) {
		t.Fatalf("bad version verified:\n%s", r)
	}
	tpp = core.NewTPP(core.AddrMode(7), nil, 0)
	if r := Verify(tpp, Config{}); !hasErr(r, -1, CodeBadMode) {
		t.Fatalf("bad mode verified:\n%s", r)
	}
}

// TestAcceptsExperimentPrograms verifies every TPP program the rcp,
// ndb, microburst, blackhole, accounting and wireless workloads inject
// today: the verifier must not reject working production programs.
func TestAcceptsExperimentPrograms(t *testing.T) {
	cfg := Config{}

	programs := map[string]*core.TPP{
		"microburst-telemetry": microburst.TelemetryProgram(7),
		"microburst-breakdown": microburst.BreakdownProgram(7),
		"ndb-trace":            ndb.TraceProgram(7),
		"wireless-snr":         wireless.SNRProgram(4),
	}

	// rcp phase-1 collect (the paper's program, via the same helper
	// rcp/star.go uses) and the blackhole hop trace.
	collect, err := endhost.CollectProgram([]mem.Addr{
		mem.SwitchBase + mem.SwitchID,
		mem.QueueBase + mem.QueueBytes,
		mem.PortBase + mem.PortRXUtil,
		mem.PortBase + mem.PortScratchBase,
	}, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	programs["rcp-collect"] = collect

	capacity, err := endhost.CollectProgram([]mem.Addr{
		mem.SwitchBase + mem.SwitchID,
		mem.PortBase + mem.PortCapacity,
	}, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	programs["rcp-capacity"] = capacity

	blackhole, err := endhost.CollectProgram([]mem.Addr{mem.SwitchBase + mem.SwitchID}, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	programs["blackhole-hoptrace"] = blackhole

	// rcp phase-3 rate update (star.go sendUpdate).
	update := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
		{Op: core.OpSTORE, A: uint16(mem.PortBase + mem.PortScratchBase), B: 2},
	}, 3)
	update.SetWord(0, 0xFFFFFFFF)
	update.SetWord(1, 3) // bottleneck switch id
	update.SetWord(2, 125_000)
	update.Ptr = 12
	programs["rcp-update"] = update

	// accounting's atomic counter increment (accounting.go attempt).
	cstore := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
		{Op: core.OpCSTORE, A: uint16(mem.SRAMBase + 16), B: 2},
	}, 5)
	cstore.SetWord(0, 0xFFFFFFFF)
	cstore.SetWord(1, 1)
	cstore.SetWord(2, 10)
	cstore.SetWord(3, 11)
	programs["accounting-cstore"] = cstore

	for name, tpp := range programs {
		if r := Verify(tpp, cfg); !r.OK() {
			t.Errorf("%s rejected:\n%s", name, r)
		}
		// The wire round-trip must verify identically.
		if r, parsed := VerifyWire(tpp.AppendTo(nil), cfg); parsed == nil || !r.OK() {
			t.Errorf("%s rejected on the wire:\n%s", name, r)
		}
	}
}

func TestVerifyWireRejectsGarbage(t *testing.T) {
	r, tpp := VerifyWire([]byte{1, 2, 3}, Config{})
	if tpp != nil || r.OK() {
		t.Fatalf("truncated section verified: %v\n%s", tpp, r)
	}
	if !hasErr(r, -1, CodeWireFormat) {
		t.Fatalf("want %s, got:\n%s", CodeWireFormat, r)
	}
}
