package verify

import (
	"testing"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/mem"
)

func hasCode(r Result, c Code) bool {
	for _, d := range r.Diags {
		if d.Code == c {
			return true
		}
	}
	return false
}

// The verifier must reject, at injection time, exactly the accesses the
// dataplane guard would deny at runtime.
func TestVerifyAgainstGrant(t *testing.T) {
	g := guard.Grant{
		ACL:       guard.DefaultACL(),
		Partition: mem.Region{Base: mem.SRAMBase + 0x40, Words: 16},
	}
	cfg := Config{Grant: &g}

	// Reading statistics is fine under the default tenant ACL.
	r := Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
		{Op: core.OpPUSH, A: uint16(mem.PortBase + mem.PortTXUtil)},
	}, 2), cfg)
	if !r.OK() {
		t.Fatalf("stats probe rejected under default ACL:\n%v", r)
	}

	// A store to the port scratch words (RCP's rate register) is an ACL
	// denial for a default tenant...
	r = Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.PortBase + mem.PortScratchBase), B: 0},
	}, 1), cfg)
	if r.OK() || !hasCode(r, CodeACLDenied) {
		t.Fatalf("port scratch store not acl-denied:\n%v", r)
	}
	// ...but fine for a control tenant.
	ctrl := g
	ctrl.ACL = guard.ControlACL()
	r = Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.PortBase + mem.PortScratchBase), B: 0},
	}, 1), Config{Grant: &ctrl})
	if !r.OK() {
		t.Fatalf("control tenant's rate store rejected:\n%v", r)
	}

	// SRAM addresses are tenant-relative: word 15 is the last word of
	// the 16-word partition, word 16 is out of bounds.
	r = Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.SRAMBase + 15), B: 0},
	}, 1), cfg)
	if !r.OK() {
		t.Fatalf("in-partition store rejected:\n%v", r)
	}
	r = Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.SRAMBase + 16), B: 0},
	}, 1), cfg)
	if r.OK() || !hasCode(r, CodePartitionOOB) {
		t.Fatalf("out-of-partition store not partition-oob:\n%v", r)
	}
	// Loads are bounds-checked too (a denied load still leaks poison to
	// the echo and trips FlagAccessFault).
	r = Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpLOAD, A: uint16(mem.SRAMBase + 0x700), B: 0},
	}, 1), cfg)
	if r.OK() || !hasCode(r, CodePartitionOOB) {
		t.Fatalf("out-of-partition load not partition-oob:\n%v", r)
	}

	// CSTORE decides through the store path.
	r = Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCSTORE, A: uint16(mem.SRAMBase + 16), B: 0},
	}, 3), cfg)
	if r.OK() || !hasCode(r, CodePartitionOOB) {
		t.Fatalf("out-of-partition CSTORE not rejected:\n%v", r)
	}

	// The operator grant reproduces the unguarded verdicts.
	op := guard.OperatorGrant()
	r = Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.SRAMBase + 0x7FF), B: 0},
		{Op: core.OpSTORE, A: uint16(mem.PortBase + mem.PortScratchBase), B: 0},
	}, 1), Config{Grant: &op})
	if !r.OK() {
		t.Fatalf("operator program rejected:\n%v", r)
	}

	// Base protection still dominates: even the operator cannot store
	// over statistics, and the diagnostic stays read-only-store.
	r = Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
	}, 1), Config{Grant: &op})
	if r.OK() || !hasCode(r, CodeReadOnly) {
		t.Fatalf("statistics store under operator grant:\n%v", r)
	}

	// Nil grant: the tenant checks vanish entirely.
	r = Verify(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.SRAMBase + 0x700), B: 0},
		{Op: core.OpSTORE, A: uint16(mem.PortBase + mem.PortScratchBase), B: 0},
	}, 1), Config{})
	if !r.OK() {
		t.Fatalf("ungranted config rejected a legal program:\n%v", r)
	}
}
