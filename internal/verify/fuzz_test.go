package verify_test

import (
	"testing"

	. "repro/internal/verify"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/microburst"
	"repro/internal/ndb"
	"repro/internal/netsim"
	"repro/internal/tcpu"
	"repro/internal/wireless"
)

// FuzzVerify pins the verifier's central soundness claim: any wire
// bytes that parse and verify cleanly must execute on a real switch
// without tripping a single dynamic fault.  The static address model,
// stack tracking and bounds checks are only trustworthy if no input —
// however adversarial — can slip a faulting program past them.
func FuzzVerify(f *testing.F) {
	// Seed with the production programs every experiment injects, so
	// the fuzzer starts from deep, valid corpus entries.
	seeds := []*core.TPP{
		microburst.TelemetryProgram(7),
		microburst.BreakdownProgram(7),
		ndb.TraceProgram(7),
		wireless.SNRProgram(4),
		core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
			{Op: core.OpPOP, A: uint16(mem.SRAMBase + 8)},
		}, 4),
	}
	hop := core.NewTPP(core.AddrHop, []core.Instruction{
		{Op: core.OpLOAD, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
		{Op: core.OpLOAD, A: uint16(mem.QueueBase + mem.QueueBytes), B: 1},
	}, 6)
	hop.HopLen = 8
	seeds = append(seeds, hop)
	for _, s := range seeds {
		f.Add(s.AppendTo(nil))
	}
	// And with near-miss garbage so the mutator explores the reject
	// boundary too.
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 9, 200, 255, 255, 0, 2, 0, 0, 0, 0})

	const ports = 2
	sim := netsim.New(1)
	sw := asic.New(sim, asic.Config{ID: 1, Ports: ports})
	cfg := Config{Ports: ports}

	f.Fuzz(func(t *testing.T, data []byte) {
		var tpp core.TPP
		if _, err := core.ParseTPP(data, &tpp); err != nil {
			return
		}
		res := Verify(&tpp, cfg)
		if !res.OK() {
			return
		}
		// Accepted: execution must not fault.  The switch keeps its
		// SRAM mutations between iterations; a verified program's
		// safety cannot depend on memory contents, so any reachable
		// state is fair game.
		view := sw.ViewForTesting(nil, 0)
		r := tcpu.Exec(&tpp, view)
		if r.Fault != nil {
			t.Fatalf("verified program faulted: %v\nprogram: %+v", r.Fault, tpp)
		}
	})
}
