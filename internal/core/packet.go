package core

import (
	"fmt"
)

// Metadata holds the per-packet registers an ASIC keeps alongside a
// packet while it moves through the pipeline ("in its registers, the
// ASIC keeps metadata such as input port, the selected route, etc. for
// every packet").  It is exposed to TPPs through the PacketMetadata
// namespace and reset at every switch.  Metadata never goes on the
// wire.
type Metadata struct {
	UID          uint64 // simulator-unique packet id, for tracing
	InPort       uint32 // ingress port at the current switch
	OutPort      uint32 // egress port selected by the lookup pipeline
	QueueID      uint32 // egress queue selected by the scheduler
	MatchedEntry uint32 // id of the matched flow-table entry (ndb)
	MatchedVer   uint32 // version number of the matched entry (ndb)
	AltRoutes    uint32 // number of alternate routes for the packet
	EnqueuedAt   int64  // sim time ns when enqueued at current switch
}

// Packet is a fully decoded frame moving through the simulator.  Layers
// after Eth are optional: a TPP packet is Eth+TPP and usually
// encapsulates IP/UDP; a plain data packet has TPP == nil.
//
// PadLen is the number of additional, virtual payload bytes: congestion
// experiments move megabytes of payload whose contents never matter, so
// the simulator accounts for their length without materializing them.
// Serialize emits them as zeros.
type Packet struct {
	Eth     Ethernet
	TPP     *TPP
	IP      *IPv4
	UDP     *UDP
	Payload []byte
	PadLen  int

	Meta Metadata

	// pooled marks a packet drawn from the packet pool (see pool.go);
	// set only by ClonePooled, cleared by Recycle and Adopt.  A shallow
	// struct copy inherits the flag, so copies must Adopt themselves.
	pooled bool
	// block points back to the pool slot a ClonePooled copy was drawn
	// from (nil for heap-owned packets); Recycle uses it to return the
	// whole co-allocated block and to tell the resident packet apart
	// from a shallow copy.
	block *pooledBlock
	// dbg is the pooldebug sanitizer state: zero-sized in release
	// builds, a slot-generation pin under -tags pooldebug (pool_debug.go).
	dbg poolDebug
}

// udpPacketBlock co-allocates a packet with its IP and UDP headers.
// Data-packet construction is on the generator hot path of every
// congestion and telemetry experiment; one allocation instead of three
// is measurable at line rate.  The three die together, so block
// lifetime equals packet lifetime.
type udpPacketBlock struct {
	pkt Packet
	ip  IPv4
	udp UDP
}

// NewUDPPacket builds an Eth+IP+UDP data packet in a single allocation.
func NewUDPPacket(eth Ethernet, ip IPv4, udp UDP) *Packet {
	b := &udpPacketBlock{pkt: Packet{Eth: eth}, ip: ip, udp: udp}
	b.pkt.IP = &b.ip
	b.pkt.UDP = &b.udp
	return &b.pkt
}

// PayloadLen returns the application payload length in bytes, including
// virtual padding.
func (p *Packet) PayloadLen() int { return len(p.Payload) + p.PadLen }

// WireLen returns the total frame size in bytes as it would appear on
// the wire; links charge serialization time for this many bytes.
//
//alloc:free
func (p *Packet) WireLen() int {
	p.checkLive("WireLen")
	n := EthernetHeaderLen
	if p.TPP != nil {
		n += p.TPP.WireLen()
	}
	if p.IP != nil {
		n += p.IP.HeaderLen()
	}
	if p.UDP != nil {
		n += UDPHeaderLen
	}
	return n + p.PayloadLen()
}

// Clone deep-copies the packet, including its TPP and payload, so that a
// flooded or mirrored copy executes and mutates independently.
func (p *Packet) Clone() *Packet {
	p.checkLive("Clone")
	c := *p
	// The copy is heap-owned regardless of p's provenance: it shares no
	// buffers with p's pool slot, so it must not inherit the back
	// pointer (or the sanitizer's generation pin) either.
	c.pooled, c.block, c.dbg = false, nil, poolDebug{}
	if p.TPP != nil {
		c.TPP = p.TPP.Clone()
	}
	if p.IP != nil {
		ip := *p.IP
		ip.Options = append([]byte(nil), p.IP.Options...)
		c.IP = &ip
	}
	if p.UDP != nil {
		u := *p.UDP
		c.UDP = &u
	}
	c.Payload = append([]byte(nil), p.Payload...)
	return &c
}

// Serialize produces the full wire representation of the frame.  Layers
// are emitted outermost first (the inverse of Decode); zero Length
// fields in IP and UDP headers are filled from the actual sizes.
func (p *Packet) Serialize() []byte {
	p.checkLive("Serialize")
	b := make([]byte, 0, p.WireLen())
	b = p.Eth.AppendTo(b)
	if p.TPP != nil {
		b = p.TPP.AppendTo(b)
	}
	if p.IP != nil {
		ip := *p.IP
		if ip.TotalLen == 0 {
			n := ip.HeaderLen() + p.PayloadLen()
			if p.UDP != nil {
				n += UDPHeaderLen
			}
			ip.TotalLen = uint16(n)
		}
		b = ip.AppendTo(b)
	}
	if p.UDP != nil {
		u := *p.UDP
		if u.Length == 0 {
			u.Length = uint16(UDPHeaderLen + p.PayloadLen())
		}
		b = u.AppendTo(b)
	}
	b = append(b, p.Payload...)
	for i := 0; i < p.PadLen; i++ {
		b = append(b, 0)
	}
	return b
}

// Decode parses a wire-format frame into a Packet.  The inner layers
// after the Ethernet (and optional TPP) header are decoded when their
// EtherType/protocol is understood; unknown payloads are kept as opaque
// bytes.
func Decode(b []byte) (*Packet, error) {
	p := &Packet{}
	n, err := ParseEthernet(b, &p.Eth)
	if err != nil {
		return nil, err
	}
	b = b[n:]
	if p.Eth.Type == EtherTypeTPP {
		p.TPP = &TPP{}
		n, err = ParseTPP(b, p.TPP)
		if err != nil {
			return nil, fmt.Errorf("core: decoding TPP: %w", err)
		}
		b = b[n:]
		// The TPP encapsulates the original payload; if any bytes
		// remain, they begin with an IPv4 header in our stack.
		if len(b) == 0 {
			return p, nil
		}
	}
	if p.Eth.Type == EtherTypeIPv4 || p.Eth.Type == EtherTypeTPP {
		p.IP = &IPv4{}
		n, err = ParseIPv4(b, p.IP)
		if err != nil {
			return nil, err
		}
		b = b[n:]
		if p.IP.Proto == ProtoUDP {
			p.UDP = &UDP{}
			n, err = ParseUDP(b, p.UDP)
			if err != nil {
				return nil, err
			}
			b = b[n:]
		}
	}
	p.Payload = append([]byte(nil), b...)
	return p, nil
}
