//go:build !pooldebug

package core

// Release builds carry no pool sanitizer state: poolDebug and
// blockDebug are zero-sized and every hook is an empty method the
// compiler inlines away, so the pooled hot path pays nothing for the
// instrumentation points.  Build with -tags pooldebug for the checking
// implementations (pool_debug.go).

// poolDebugEnabled reports which pool implementation this binary
// carries; tests use it to pick the expected violation behavior.
const poolDebugEnabled = false

// poolDebug is the per-packet-copy sanitizer state (empty in release).
type poolDebug struct{}

// blockDebug is the per-pool-slot sanitizer state (empty in release).
type blockDebug struct{}

func (p *Packet) checkLive(string) {}
func (p *Packet) checkRecycle()    {}
func (p *Packet) markIssued()      {}
func (p *Packet) poisonAndRetire() {}

func (b *pooledBlock) checkCanary() {}
