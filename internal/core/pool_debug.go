//go:build pooldebug

package core

import (
	"fmt"
	"runtime"
	"strings"
)

// The pooldebug build tag turns the packet pool into a sanitizer, the
// dynamic counterpart of the poollife static analyzer: Recycle poisons
// every buffer the slot owns and bumps the slot's generation counter;
// ClonePooled verifies the poison canary before reusing a slot; and
// the instrumented accessors (WireLen, Serialize, Clone, Adopt, ...)
// panic — naming the call site that recycled the packet — when invoked
// through a reference issued before the recycle.  The chaos and
// hostile soaks run under `-tags pooldebug -race` in CI, so any
// lifecycle rule the linter's intraprocedural view cannot see is still
// caught end to end.  Violations panic rather than log: a lifecycle
// bug invalidates the simulation, exactly like a determinism breach.

// poolDebugEnabled reports which pool implementation this binary
// carries; tests use it to pick the expected violation behavior.
const poolDebugEnabled = true

// poolDebug is the per-packet-copy sanitizer state: the slot
// generation this copy was issued under.  Shallow struct copies
// inherit it, which is what lets a stale referent be told apart from
// the slot's current incarnation at the same address.
type poolDebug struct {
	gen uint64
}

// blockDebug is the per-pool-slot sanitizer state.
type blockDebug struct {
	gen        uint64 // bumped by every Recycle; issued copies pin the value
	poisoned   bool   // slot buffers hold the canary pattern
	recycledBy string // fabric call site of the most recent Recycle
}

const (
	poisonByte = 0xdd
	poisonOp   = Opcode(poisonByte)
)

// checkLive panics when p is a reference into a pool slot that has
// been recycled since the reference was issued.
func (p *Packet) checkLive(op string) {
	if p.block != nil && p.dbg.gen != p.block.dbg.gen {
		panic(fmt.Sprintf("core: pooldebug: %s on a packet recycled at %s (issued gen %d, slot gen %d)",
			op, p.block.dbg.recycledBy, p.dbg.gen, p.block.dbg.gen))
	}
}

// checkRecycle enforces the recycle-side rules: recycling twice (or
// through any stale reference) and recycling a shallow copy both
// panic.  Release builds degrade the same cases to no-ops.
func (p *Packet) checkRecycle() {
	if p.block == nil {
		return
	}
	if p.dbg.gen != p.block.dbg.gen {
		panic(fmt.Sprintf("core: pooldebug: Recycle on a packet already recycled at %s",
			p.block.dbg.recycledBy))
	}
	if p.pooled && p != &p.block.pkt {
		panic("core: pooldebug: Recycle on a shallow copy of a pooled packet; " +
			"Adopt the copy and abandon the original instead")
	}
}

// markIssued pins the slot generation into the freshly issued copy.
func (p *Packet) markIssued() { p.dbg.gen = p.block.dbg.gen }

// poisonAndRetire records the recycler's call site, invalidates every
// outstanding reference by bumping the slot generation, and fills the
// slot's buffers (to capacity, not length) with the canary pattern so
// a write through a stale alias is detectable at the next reuse.
func (p *Packet) poisonAndRetire() {
	b := p.block
	b.dbg.recycledBy = callerSite()
	b.dbg.gen++
	b.dbg.poisoned = true
	poisonBytes(b.pkt.Payload)
	poisonBytes(b.tpp.Mem)
	poisonBytes(b.ip.Options)
	ins := b.tpp.Ins[:cap(b.tpp.Ins)]
	for i := range ins {
		ins[i] = Instruction{Op: poisonOp, A: poisonByte, B: poisonByte}
	}
}

// checkCanary verifies, as a slot leaves the pool, that nothing wrote
// through a stale alias while the slot sat recycled.
func (b *pooledBlock) checkCanary() {
	if !b.dbg.poisoned {
		return // fresh slot from New: never poisoned, nothing to check
	}
	if !poisonIntact(b.pkt.Payload) || !poisonIntact(b.tpp.Mem) || !poisonIntact(b.ip.Options) {
		panic(fmt.Sprintf("core: pooldebug: pool slot buffers clobbered after Recycle at %s "+
			"(a stale referent wrote through aliased buffers)", b.dbg.recycledBy))
	}
	ins := b.tpp.Ins[:cap(b.tpp.Ins)]
	for i := range ins {
		if ins[i] != (Instruction{Op: poisonOp, A: poisonByte, B: poisonByte}) {
			panic(fmt.Sprintf("core: pooldebug: pool slot instructions clobbered after Recycle at %s",
				b.dbg.recycledBy))
		}
	}
}

func poisonBytes(s []byte) {
	s = s[:cap(s)]
	for i := range s {
		s[i] = poisonByte
	}
}

func poisonIntact(s []byte) bool {
	s = s[:cap(s)]
	for i := range s {
		if s[i] != poisonByte {
			return false
		}
	}
	return true
}

// callerSite names the first frame outside the pool implementation:
// the fabric code that performed the Recycle.
func callerSite() string {
	var pcs [8]uintptr
	n := runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		if !strings.HasSuffix(f.File, "/pool.go") && !strings.HasSuffix(f.File, "/pool_debug.go") || !more {
			return fmt.Sprintf("%s:%d", f.File, f.Line)
		}
	}
}
