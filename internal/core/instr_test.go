package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpcodeNames(t *testing.T) {
	cases := map[Opcode]string{
		OpNOP:    "NOP",
		OpLOAD:   "LOAD",
		OpSTORE:  "STORE",
		OpPUSH:   "PUSH",
		OpPOP:    "POP",
		OpCSTORE: "CSTORE",
		OpCEXEC:  "CEXEC",
		OpADD:    "ADD",
		OpSUB:    "SUB",
		OpMAX:    "MAX",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Opcode(%d).String() = %q, want %q", op, got, want)
		}
		if !op.Valid() {
			t.Errorf("Opcode %s should be valid", want)
		}
	}
	if Opcode(200).Valid() {
		t.Error("Opcode(200) should be invalid")
	}
	if got := Opcode(200).String(); got != "OP(200)" {
		t.Errorf("invalid opcode string = %q", got)
	}
}

func TestInstructionWordRoundTrip(t *testing.T) {
	in := Instruction{Op: OpCSTORE, A: 0xABC, B: 0x123}
	out := DecodeInstruction(in.Word())
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestInstructionWordLayout(t *testing.T) {
	in := Instruction{Op: OpLOAD, A: 0xFFF, B: 0x001}
	if got, want := in.Word(), uint32(1)<<24|uint32(0xFFF)<<12|1; got != want {
		t.Fatalf("Word() = %#x, want %#x", got, want)
	}
}

// Property: Word followed by DecodeInstruction is the identity for all
// encodable instructions.
func TestInstructionRoundTripQuick(t *testing.T) {
	f := func(op uint8, a, b uint16) bool {
		in := Instruction{Op: Opcode(op), A: a & MaxOperand, B: b & MaxOperand}
		return DecodeInstruction(in.Word()) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionValidate(t *testing.T) {
	ok := Instruction{Op: OpPUSH, A: 100}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instruction rejected: %v", err)
	}
	bad := []Instruction{
		{Op: Opcode(99)},
		{Op: OpLOAD, A: MaxOperand + 1},
		{Op: OpLOAD, B: MaxOperand + 1},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("instruction %+v should be invalid", in)
		}
	}
}

func TestOpcodeUsesB(t *testing.T) {
	usesB := map[Opcode]bool{
		OpNOP: false, OpLOAD: true, OpSTORE: true, OpPUSH: false,
		OpPOP: false, OpCSTORE: true, OpCEXEC: true, OpADD: true,
		OpSUB: true, OpMAX: true,
	}
	for op, want := range usesB {
		if got := op.UsesB(); got != want {
			t.Errorf("%s.UsesB() = %v, want %v", op, got, want)
		}
	}
}

func TestOpcodeWrites(t *testing.T) {
	writes := map[Opcode]bool{
		OpNOP: false, OpLOAD: false, OpSTORE: true, OpPUSH: false,
		OpPOP: true, OpCSTORE: true, OpCEXEC: false, OpADD: false,
		OpSUB: false, OpMAX: false,
	}
	for op, want := range writes {
		if got := op.Writes(); got != want {
			t.Errorf("%s.Writes() = %v, want %v", op, got, want)
		}
	}
}

func TestInstructionString(t *testing.T) {
	if got := (Instruction{Op: OpPUSH, A: 0x201}).String(); got != "PUSH [0x201]" {
		t.Errorf("PUSH string = %q", got)
	}
	if got := (Instruction{Op: OpNOP}).String(); got != "NOP" {
		t.Errorf("NOP string = %q", got)
	}
	if got := (Instruction{Op: OpSTORE, A: 0x108, B: 2}).String(); got != "STORE [0x108], [Packet:2]" {
		t.Errorf("STORE string = %q", got)
	}
}

// randomInstructions builds a slice of valid random instructions.
func randomInstructions(r *rand.Rand, n int) []Instruction {
	ins := make([]Instruction, n)
	for i := range ins {
		ins[i] = Instruction{
			Op: Opcode(r.Intn(int(opMax) + 1)),
			A:  uint16(r.Intn(MaxOperand + 1)),
			B:  uint16(r.Intn(MaxOperand + 1)),
		}
	}
	return ins
}
