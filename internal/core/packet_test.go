package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMACBasics(t *testing.T) {
	m := MACFromUint64(0x0000123456789abc)
	if got := m.String(); got != "12:34:56:78:9a:bc" {
		t.Errorf("String() = %q", got)
	}
	if m.Uint64() != 0x123456789abc {
		t.Errorf("Uint64() = %#x", m.Uint64())
	}
	if m.IsBroadcast() {
		t.Error("unicast reported as broadcast")
	}
	if !BroadcastMAC.IsBroadcast() {
		t.Error("broadcast not recognized")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: MACFromUint64(1), Src: MACFromUint64(2), Type: EtherTypeTPP}
	wire := e.AppendTo(nil)
	if len(wire) != EthernetHeaderLen {
		t.Fatalf("header length %d", len(wire))
	}
	var out Ethernet
	n, err := ParseEthernet(wire, &out)
	if err != nil || n != EthernetHeaderLen || out != e {
		t.Fatalf("round trip: %+v err=%v n=%d", out, err, n)
	}
	if _, err := ParseEthernet(wire[:10], &out); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := IPv4{TOS: 0x10, TotalLen: 128, ID: 7, TTL: 64, Proto: ProtoUDP,
		Src: IPv4Addr(10, 0, 0, 1), Dst: IPv4Addr(10, 0, 1, 2)}
	wire := h.AppendTo(nil)
	var out IPv4
	n, err := ParseIPv4(wire, &out)
	if err != nil || n != IPv4HeaderLen {
		t.Fatalf("parse: n=%d err=%v", n, err)
	}
	if out.TOS != h.TOS || out.TotalLen != h.TotalLen || out.ID != h.ID ||
		out.TTL != h.TTL || out.Proto != h.Proto || out.Src != h.Src || out.Dst != h.Dst {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, h)
	}
	// Corrupt one byte: the checksum must catch it.
	wire[16] ^= 0x40
	if _, err := ParseIPv4(wire, &out); err == nil {
		t.Error("corrupted header accepted")
	}
}

func TestIPv4AddrFormatting(t *testing.T) {
	ip := IPv4Addr(192, 168, 1, 200)
	if got := IPv4String(ip); got != "192.168.1.200" {
		t.Errorf("IPv4String = %q", got)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 5000, DstPort: 53, Length: 20}
	wire := u.AppendTo(nil)
	var out UDP
	if n, err := ParseUDP(wire, &out); err != nil || n != UDPHeaderLen || out != u {
		t.Fatalf("round trip: %+v err=%v", out, err)
	}
	if _, err := ParseUDP(wire[:4], &out); err == nil {
		t.Error("truncated header accepted")
	}
}

func samplePacket() *Packet {
	tpp := NewTPP(AddrStack, []Instruction{
		{Op: OpPUSH, A: 0x200}, // PUSH [Queue:QueueSize]
	}, 8)
	return &Packet{
		Eth: Ethernet{Dst: MACFromUint64(2), Src: MACFromUint64(1), Type: EtherTypeTPP},
		TPP: tpp,
		IP: &IPv4{TTL: 64, Proto: ProtoUDP,
			Src: IPv4Addr(10, 0, 0, 1), Dst: IPv4Addr(10, 0, 0, 2)},
		UDP:     &UDP{SrcPort: 9000, DstPort: 9001},
		Payload: []byte("probe"),
	}
}

func TestPacketSerializeDecode(t *testing.T) {
	p := samplePacket()
	wire := p.Serialize()
	if len(wire) != p.WireLen() {
		t.Fatalf("wire length %d != WireLen %d", len(wire), p.WireLen())
	}
	out, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out.Eth != p.Eth {
		t.Errorf("eth mismatch: %+v", out.Eth)
	}
	if out.TPP == nil || out.TPP.MemWords() != 8 || len(out.TPP.Ins) != 1 {
		t.Fatalf("TPP mismatch: %+v", out.TPP)
	}
	if out.IP == nil || out.IP.Src != p.IP.Src || out.IP.Dst != p.IP.Dst {
		t.Fatalf("IP mismatch: %+v", out.IP)
	}
	if out.UDP == nil || out.UDP.DstPort != 9001 {
		t.Fatalf("UDP mismatch: %+v", out.UDP)
	}
	if string(out.Payload) != "probe" {
		t.Fatalf("payload mismatch: %q", out.Payload)
	}
}

func TestPacketSerializeFillsLengths(t *testing.T) {
	p := samplePacket()
	wire := p.Serialize()
	out, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	wantIP := uint16(IPv4HeaderLen + UDPHeaderLen + len(p.Payload))
	if out.IP.TotalLen != wantIP {
		t.Errorf("IP TotalLen = %d, want %d", out.IP.TotalLen, wantIP)
	}
	wantUDP := uint16(UDPHeaderLen + len(p.Payload))
	if out.UDP.Length != wantUDP {
		t.Errorf("UDP Length = %d, want %d", out.UDP.Length, wantUDP)
	}
}

func TestPacketPadLenAccounting(t *testing.T) {
	p := &Packet{
		Eth:    Ethernet{Type: EtherTypeIPv4},
		IP:     &IPv4{TTL: 1, Proto: ProtoUDP},
		UDP:    &UDP{},
		PadLen: 1000,
	}
	if got, want := p.WireLen(), EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen+1000; got != want {
		t.Fatalf("WireLen = %d, want %d", got, want)
	}
	wire := p.Serialize()
	if len(wire) != p.WireLen() {
		t.Fatalf("serialized %d bytes, want %d", len(wire), p.WireLen())
	}
}

func TestPacketCloneIndependence(t *testing.T) {
	p := samplePacket()
	c := p.Clone()
	c.TPP.SetWord(0, 77)
	c.IP.TTL = 1
	c.UDP.DstPort = 1
	c.Payload[0] = 'X'
	c.Meta.OutPort = 9
	if p.TPP.Word(0) == 77 || p.IP.TTL == 1 || p.UDP.DstPort == 1 ||
		p.Payload[0] == 'X' || p.Meta.OutPort == 9 {
		t.Fatal("Clone shares state with original")
	}
}

func TestDecodePlainTPPNoInner(t *testing.T) {
	p := &Packet{
		Eth: Ethernet{Type: EtherTypeTPP},
		TPP: NewTPP(AddrStack, nil, 4),
	}
	out, err := Decode(p.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if out.TPP == nil || out.IP != nil || out.UDP != nil || len(out.Payload) != 0 {
		t.Fatalf("bare TPP decode: %+v", out)
	}
}

// Property: Serialize followed by Decode preserves the wire image, for
// arbitrary combinations of layers.
func TestPacketRoundTripQuick(t *testing.T) {
	f := func(seed int64, hasTPP, hasIP, hasUDP bool, payLen uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := &Packet{Eth: Ethernet{Dst: MACFromUint64(uint64(r.Int63())),
			Src: MACFromUint64(uint64(r.Int63()))}}
		if hasTPP {
			p.Eth.Type = EtherTypeTPP
			p.TPP = NewTPP(AddrStack, randomInstructions(r, r.Intn(6)), r.Intn(10))
			r.Read(p.TPP.Mem)
		} else if hasIP {
			p.Eth.Type = EtherTypeIPv4
		} else {
			// No inner layers at all: treat as opaque IPv4-less frame.
			p.Eth.Type = EtherTypeIPv4
		}
		if hasIP || !hasTPP {
			p.IP = &IPv4{TTL: uint8(r.Intn(255) + 1), Proto: ProtoUDP,
				Src: r.Uint32(), Dst: r.Uint32()}
			if hasUDP {
				p.UDP = &UDP{SrcPort: uint16(r.Uint32()), DstPort: uint16(r.Uint32())}
			} else {
				p.IP.Proto = 250 // unknown proto: payload stays opaque
			}
		}
		if p.IP == nil {
			// A bare TPP carries no opaque payload: anything after the
			// TPP section must begin with an IPv4 header in our stack.
			payLen = 0
		}
		p.Payload = make([]byte, payLen)
		r.Read(p.Payload)
		wire := p.Serialize()
		out, err := Decode(wire)
		if err != nil {
			return false
		}
		// Re-serializing the decoded packet must reproduce the bytes.
		wire2 := out.Serialize()
		return string(wire) == string(wire2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
