package core

import (
	"testing"
)

func poolFixture() *Packet {
	return &Packet{
		Eth: Ethernet{Type: EtherTypeTPP},
		TPP: &TPP{
			Version: 1, Mode: AddrStack, HopLen: 12, Ptr: 4,
			Ins: []Instruction{{Op: OpLOAD, A: 1, B: 0}, {Op: OpSTORE, A: 2, B: 1}},
			Mem: []byte{1, 2, 3, 4, 5, 6, 7, 8},
		},
		IP:      &IPv4{TTL: 64, Proto: ProtoUDP, Src: 1, Dst: 2, Options: []byte{7, 4, 0, 0}},
		UDP:     &UDP{SrcPort: 9, DstPort: 10},
		Payload: []byte("cookie"),
	}
}

// The pool slot is a single co-allocated block: recycling a clone and
// drawing again must reuse the same block and the same layer buffers,
// even when an intermediate incarnation carried fewer layers than the
// one before it (the slot keeps custody of headers the packet dropped).
func TestPoolBlockAndBufferReuse(t *testing.T) {
	src := poolFixture()

	c := src.ClonePooled()
	if !c.Pooled() {
		t.Fatal("ClonePooled copy not marked pooled")
	}
	if c.block == nil || c != &c.block.pkt {
		t.Fatal("ClonePooled copy is not its block's resident packet")
	}
	block := c.block
	insPtr := &c.TPP.Ins[0]
	c.Recycle()
	if c.Pooled() {
		t.Fatal("Recycle left the packet marked pooled")
	}

	// A TPP-less incarnation must not lose the slot's TPP buffers...
	plain := &Packet{Eth: Ethernet{Type: EtherTypeIPv4}, Payload: []byte("x")}
	c2 := plain.ClonePooled()
	if c2.block != block {
		t.Skip("pool handed back a different slot; reuse not observable this run")
	}
	if c2.TPP != nil {
		t.Fatal("TPP-less clone carries a TPP")
	}
	c2.Recycle()

	// ...so a later TPP-carrying incarnation reuses them.
	c3 := src.ClonePooled()
	if c3.block != block {
		t.Skip("pool handed back a different slot; reuse not observable this run")
	}
	if &c3.TPP.Ins[0] != insPtr {
		t.Error("slot did not reuse its instruction buffer across a TPP-less incarnation")
	}
	c3.Recycle()
}

// ClonePooled must deep-copy: mutating the clone's buffers must not be
// visible through the source, whatever the slot held before.
func TestPoolCloneIsDeep(t *testing.T) {
	src := poolFixture()
	c := src.ClonePooled()

	c.TPP.Ins[0] = Instruction{Op: OpNOP}
	c.TPP.Mem[0] = 0xff
	c.IP.Options[0] = 0xff
	c.Payload[0] = 'X'
	c.UDP.SrcPort = 4242

	if src.TPP.Ins[0].Op != OpLOAD || src.TPP.Mem[0] != 1 ||
		src.IP.Options[0] != 7 || src.Payload[0] != 'c' || src.UDP.SrcPort != 9 {
		t.Fatal("mutating the pooled clone leaked into the source packet")
	}
	c.Recycle()
}

// Recycling a shallow copy is the forbidden aliasing case: release
// builds must degrade it to abandoning the slot (no panic, and the
// slot must NOT be handed out again under the copy), mirroring how
// Recycle on a non-pooled packet is a safe no-op.
func TestPoolShallowCopyRecycleAbandons(t *testing.T) {
	if poolDebugEnabled {
		t.Skip("pooldebug escalates this violation to a panic; see pooldebug_test.go")
	}
	src := poolFixture()
	c := src.ClonePooled()
	sc := *c // shallow: aliases c's buffers
	sc.Recycle()
	if sc.Pooled() {
		t.Fatal("Recycle left the shallow copy marked pooled")
	}
	// The resident packet is still live and untouched.
	if c.WireLen() != src.WireLen() {
		t.Fatal("abandoning a shallow copy corrupted the resident packet")
	}
}

// Adopt severs the packet from the pool: a later Recycle is a no-op
// and the adopted packet's buffers stay valid indefinitely.
func TestPoolAdoptSevers(t *testing.T) {
	src := poolFixture()
	c := src.ClonePooled()
	c.Adopt()
	if c.Pooled() {
		t.Fatal("Adopt left the packet marked pooled")
	}
	c.Recycle() // must be a no-op
	if c.Payload[0] != 'c' || c.TPP.Ins[0].Op != OpLOAD {
		t.Fatal("Recycle after Adopt touched the packet")
	}
}

// Clone (the heap variant) of a pooled packet must produce a fully
// independent packet: no pool back pointer, so recycling the original
// cannot invalidate the clone.
func TestPoolHeapCloneIndependent(t *testing.T) {
	src := poolFixture()
	c := src.ClonePooled()
	h := c.Clone()
	if h.Pooled() || h.block != nil {
		t.Fatal("heap Clone of a pooled packet kept pool ownership state")
	}
	c.Recycle()
	if h.WireLen() == 0 || h.Payload[0] != 'c' {
		t.Fatal("heap clone invalidated by recycling its source")
	}
}
