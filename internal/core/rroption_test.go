package core

import "testing"

func TestRecordRouteOptionLifecycle(t *testing.T) {
	opts := NewRecordRouteOption(3)
	if len(opts)%4 != 0 || len(opts) > MaxIPv4Options {
		t.Fatalf("option block length %d", len(opts))
	}
	for i := uint32(1); i <= 3; i++ {
		if !RecordRouteAppend(opts, i) {
			t.Fatalf("append %d failed", i)
		}
	}
	// Fourth append: slots full, silently refused — the classic
	// Record Route failure mode.
	if RecordRouteAppend(opts, 4) {
		t.Fatal("append beyond capacity succeeded")
	}
	addrs := RecordRouteAddrs(opts)
	if len(addrs) != 3 || addrs[0] != 1 || addrs[2] != 3 {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestRecordRouteClamping(t *testing.T) {
	if got := len(NewRecordRouteOption(100)); got > MaxIPv4Options {
		t.Fatalf("oversized option: %d bytes", got)
	}
	small := NewRecordRouteOption(0)
	if !RecordRouteAppend(small, 7) {
		t.Fatal("single-slot option unusable")
	}
	if MaxRecordRouteSlots != 9 {
		t.Fatalf("MaxRecordRouteSlots = %d, want 9 (40-byte option space)", MaxRecordRouteSlots)
	}
}

func TestRecordRouteOnForeignBytes(t *testing.T) {
	if RecordRouteAppend(nil, 1) || RecordRouteAppend([]byte{1, 2, 3, 4}, 1) {
		t.Fatal("append accepted non-RR options")
	}
	if RecordRouteAddrs([]byte{9, 9, 9}) != nil {
		t.Fatal("addrs parsed from non-RR options")
	}
}

func TestIPv4OptionsRoundTrip(t *testing.T) {
	h := IPv4{TTL: 64, Proto: ProtoUDP, Src: 1, Dst: 2,
		Options: NewRecordRouteOption(2)}
	RecordRouteAppend(h.Options, 0xAABBCCDD)
	wire := h.AppendTo(nil)
	if len(wire) != h.HeaderLen() {
		t.Fatalf("serialized %d bytes, header len %d", len(wire), h.HeaderLen())
	}
	var out IPv4
	n, err := ParseIPv4(wire, &out)
	if err != nil || n != h.HeaderLen() {
		t.Fatalf("parse: n=%d err=%v", n, err)
	}
	addrs := RecordRouteAddrs(out.Options)
	if len(addrs) != 1 || addrs[0] != 0xAABBCCDD {
		t.Fatalf("addrs after round trip: %v", addrs)
	}
}

func TestIPv4PacketWithOptionsRoundTrip(t *testing.T) {
	p := &Packet{
		Eth: Ethernet{Type: EtherTypeIPv4},
		IP: &IPv4{TTL: 64, Proto: ProtoUDP, Src: 1, Dst: 2,
			Options: NewRecordRouteOption(4)},
		UDP:     &UDP{SrcPort: 1, DstPort: 2},
		Payload: []byte("hi"),
	}
	wire := p.Serialize()
	if len(wire) != p.WireLen() {
		t.Fatalf("wire %d != WireLen %d", len(wire), p.WireLen())
	}
	out, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.IP.Options) != len(p.IP.Options) {
		t.Fatal("options lost in decode")
	}
	if string(out.Payload) != "hi" {
		t.Fatalf("payload: %q", out.Payload)
	}
}

func TestMalformedOptionsPanicOnSerialize(t *testing.T) {
	h := IPv4{Options: []byte{1, 2, 3}} // unaligned
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.AppendTo(nil)
}
