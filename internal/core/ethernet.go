package core

import (
	"encoding/binary"
	"fmt"
)

// EtherType identifies the protocol encapsulated in an Ethernet frame.
type EtherType uint16

// EtherTypes understood by the simulated dataplane.
const (
	// EtherTypeTPP is the uniquely identifiable EtherType that marks a
	// frame as carrying a tiny packet program.  The TCPU ignores every
	// other EtherType ("Non-TPP packets are ignored by the TCPU").
	EtherTypeTPP EtherType = 0x6666
	// EtherTypeIPv4 is the standard IPv4 EtherType.
	EtherTypeIPv4 EtherType = 0x0800
)

// EthernetHeaderLen is the length in bytes of an Ethernet II header.
const EthernetHeaderLen = 14

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// MACFromUint64 builds a MAC from the low 48 bits of v.  It is handy for
// assigning deterministic addresses to simulated hosts.
func MACFromUint64(v uint64) MAC {
	var m MAC
	m[0] = byte(v >> 40)
	m[1] = byte(v >> 32)
	m[2] = byte(v >> 24)
	m[3] = byte(v >> 16)
	m[4] = byte(v >> 8)
	m[5] = byte(v)
	return m
}

// Uint64 returns the address as an integer (upper 16 bits zero).
func (m MAC) Uint64() uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// String formats the address in the usual colon-separated hex notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst  MAC
	Src  MAC
	Type EtherType
}

// AppendTo serializes the header onto b and returns the extended slice.
func (e *Ethernet) AppendTo(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, uint16(e.Type))
}

// ParseEthernet decodes an Ethernet header from the front of b.  It
// returns the number of bytes consumed.
func ParseEthernet(b []byte, e *Ethernet) (int, error) {
	if len(b) < EthernetHeaderLen {
		return 0, fmt.Errorf("core: ethernet header truncated: %d bytes", len(b))
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(b[12:14]))
	return EthernetHeaderLen, nil
}
