package core

import "encoding/binary"

// IP Record Route option (§4 compares TPPs against it: "IP Record
// Route, an IP option that enables routers to insert the interface IP
// address on the packet").  The option is type 7, one length byte and a
// pointer byte, then 4-byte address slots.  Our switches record their
// switch id in the slots (they have no interface IPs).
const (
	optRecordRoute  = 7
	optEndOfOptions = 0
	rrHeaderLen     = 3
)

// MaxRecordRouteSlots is how many 4-byte records fit in the 40-byte IP
// option space: the architectural limit the paper's generality argument
// leans on (a TPP sizes its packet memory freely; Record Route cannot).
const MaxRecordRouteSlots = (MaxIPv4Options - rrHeaderLen - 1) / 4 // 9

// NewRecordRouteOption builds an empty Record Route option with the
// given number of address slots (clamped to MaxRecordRouteSlots),
// padded to 4-byte alignment with End-of-Options.
func NewRecordRouteOption(slots int) []byte {
	if slots < 1 {
		slots = 1
	}
	if slots > MaxRecordRouteSlots {
		slots = MaxRecordRouteSlots
	}
	optLen := rrHeaderLen + 4*slots
	padded := (optLen + 1 + 3) &^ 3 // +1 End-of-Options, then align
	b := make([]byte, padded)
	b[0] = optRecordRoute
	b[1] = byte(optLen)
	b[2] = 4 // pointer: 1-based offset of the first free slot
	b[optLen] = optEndOfOptions
	return b
}

// RecordRouteAppend writes addr into the next free slot of the Record
// Route option inside opts, advancing the pointer.  It returns false
// when opts holds no Record Route option or the slots are full — the
// silent-truncation failure mode TPPs avoid by faulting visibly.
func RecordRouteAppend(opts []byte, addr uint32) bool {
	if len(opts) < rrHeaderLen || opts[0] != optRecordRoute {
		return false
	}
	optLen := int(opts[1])
	ptr := int(opts[2])
	if optLen > len(opts) || ptr+3 > optLen {
		return false
	}
	binary.BigEndian.PutUint32(opts[ptr-1:], addr)
	opts[2] = byte(ptr + 4)
	return true
}

// RecordRouteAddrs extracts the recorded addresses.
func RecordRouteAddrs(opts []byte) []uint32 {
	if len(opts) < rrHeaderLen || opts[0] != optRecordRoute {
		return nil
	}
	optLen := int(opts[1])
	ptr := int(opts[2])
	if optLen > len(opts) || ptr < 4 {
		return nil
	}
	n := (ptr - 4) / 4
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, binary.BigEndian.Uint32(opts[rrHeaderLen+4*i:]))
	}
	return out
}
