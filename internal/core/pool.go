package core

import "sync"

// Packet pooling for the replication hot path.  Flooding and mirroring
// must deep-copy a packet per egress; allocating those copies (and
// their TPP instruction/memory buffers) fresh made replication the
// dominant allocation site in the dataplane.  ClonePooled draws the
// copy from a sync.Pool and Recycle returns it at the points where the
// fabric destroys a packet (queue tail drop, TTL expiry, blackhole,
// reboot flush, link loss); end-hosts take ownership of delivered
// packets with Adopt, after which the packet behaves exactly like a
// freshly allocated one and is never returned to the pool.
//
// Safety rules, enforced by the poollife analyzer (tools/analyzers)
// statically and by the pooldebug build tag dynamically:
//   - Only the fabric recycles, and only at a death point: a recycled
//     packet must have no other referents, and nothing may touch a
//     packet after recycling it.
//   - Recycle on a non-pooled packet is a no-op, so callers never need
//     to know a packet's provenance to drop it.
//   - A pooled packet stored into anything that outlives the current
//     event (a field, map, slice, channel, captured closure) must be
//     adopted first, or it may be recycled under the referent.
//   - A shallow copy of a pooled packet (e.g. stripping its TPP)
//     aliases the original's buffers; the original must then be
//     abandoned to the garbage collector, never recycled.

// pooledBlock co-allocates a pooled packet with its optional layer
// headers, the same single-block layout udpPacketBlock uses for
// sender-side construction.  The block — not the packet — is what the
// pool stores: the layer structs and their buffers stay attached to
// the slot even while an incarnation of the packet carries fewer
// layers, so a slot never re-allocates a header it once had.  (The
// previous per-layer lazy allocation showed up as three amortized
// escape sites inside ClonePooled; see tools/allocgate.)
type pooledBlock struct {
	pkt Packet
	tpp TPP
	ip  IPv4
	udp UDP

	dbg blockDebug // pooldebug state; zero-sized in release builds
}

var packetPool = sync.Pool{New: func() any { return new(pooledBlock) }}

// ClonePooled deep-copies the packet like Clone, but draws the copy
// and its buffers from the packet pool.  The copy must eventually be
// passed to Recycle (fabric drop) or Adopt (delivery to an end-host).
//
//alloc:free
func (p *Packet) ClonePooled() *Packet {
	p.checkLive("ClonePooled")
	b := packetPool.Get().(*pooledBlock)
	b.checkCanary()
	c := &b.pkt
	// Keep the slot's buffers so their capacity is reused by the copy
	// below, whichever layers this incarnation carries.
	ins, mem, opts, payload := b.tpp.Ins, b.tpp.Mem, b.ip.Options, c.Payload
	*c = *p
	c.pooled = true
	c.block = b
	c.Payload = append(payload[:0], p.Payload...)
	if p.TPP != nil {
		t := &b.tpp
		*t = *p.TPP
		t.Ins = append(ins[:0], p.TPP.Ins...)
		t.Mem = append(mem[:0], p.TPP.Mem...)
		c.TPP = t
	}
	if p.IP != nil {
		ip := &b.ip
		*ip = *p.IP
		ip.Options = append(opts[:0], p.IP.Options...)
		c.IP = ip
	}
	if p.UDP != nil {
		u := &b.udp
		*u = *p.UDP
		c.UDP = u
	}
	c.markIssued()
	return c
}

// Pooled reports whether the packet is owned by the packet pool (a
// ClonePooled copy that has been neither recycled nor adopted).
func (p *Packet) Pooled() bool { return p.pooled }

// Adopt transfers ownership of a pooled packet to the caller: the
// packet will never return to the pool, so the caller may retain it
// and its buffers indefinitely.  End-hosts adopt every delivered
// packet.  Adopting a non-pooled packet is a no-op.
func (p *Packet) Adopt() {
	p.checkLive("Adopt")
	p.pooled = false
}

// Recycle returns a pooled packet to the pool.  The caller must hold
// the only reference; the packet and its TPP/IP/UDP/Payload buffers
// are reused by a future ClonePooled.  Recycling a non-pooled packet
// is a no-op, so drop paths can call it unconditionally.
//
//alloc:free
func (p *Packet) Recycle() {
	p.checkRecycle()
	if !p.pooled {
		return
	}
	p.pooled = false
	// A shallow struct copy inherits the pooled flag but is not the
	// block's resident packet; recycling it would hand the pool buffers
	// the copy still aliases.  Release builds abandon the block to the
	// garbage collector instead (pooldebug panics in checkRecycle).
	if p.block == nil || p != &p.block.pkt {
		return
	}
	p.poisonAndRetire()
	packetPool.Put(p.block)
}
