package core

import "sync"

// Packet pooling for the replication hot path.  Flooding and mirroring
// must deep-copy a packet per egress; allocating those copies (and
// their TPP instruction/memory buffers) fresh made replication the
// dominant allocation site in the dataplane.  ClonePooled draws the
// copy from a sync.Pool and Recycle returns it at the points where the
// fabric destroys a packet (queue tail drop, TTL expiry, blackhole,
// reboot flush, link loss); end-hosts take ownership of delivered
// packets with Adopt, after which the packet behaves exactly like a
// freshly allocated one and is never returned to the pool.
//
// Safety rules, enforced by convention and the queue-conservation
// tests:
//   - Only the fabric recycles, and only at a death point: a recycled
//     packet must have no other referents.
//   - Recycle on a non-pooled packet is a no-op, so callers never need
//     to know a packet's provenance to drop it.
//   - A shallow copy of a pooled packet (e.g. stripping its TPP)
//     aliases the original's buffers; the original must then be
//     abandoned to the garbage collector, never recycled.

var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// ClonePooled deep-copies the packet like Clone, but draws the copy
// and its buffers from the packet pool.  The copy must eventually be
// passed to Recycle (fabric drop) or Adopt (delivery to an end-host).
func (p *Packet) ClonePooled() *Packet {
	c := packetPool.Get().(*Packet)
	// Keep the recycled packet's sub-structures so their buffer
	// capacity is reused by the copy below.
	tpp, ip, udp, payload := c.TPP, c.IP, c.UDP, c.Payload
	*c = *p
	c.pooled = true
	c.Payload = append(payload[:0], p.Payload...)
	if p.TPP != nil {
		if tpp == nil {
			tpp = &TPP{}
		}
		ins, mem := tpp.Ins, tpp.Mem
		*tpp = *p.TPP
		tpp.Ins = append(ins[:0], p.TPP.Ins...)
		tpp.Mem = append(mem[:0], p.TPP.Mem...)
		c.TPP = tpp
	}
	if p.IP != nil {
		var opts []byte
		if ip == nil {
			ip = &IPv4{}
		} else {
			opts = ip.Options
		}
		*ip = *p.IP
		ip.Options = append(opts[:0], p.IP.Options...)
		c.IP = ip
	}
	if p.UDP != nil {
		if udp == nil {
			udp = &UDP{}
		}
		*udp = *p.UDP
		c.UDP = udp
	}
	return c
}

// Pooled reports whether the packet is owned by the packet pool (a
// ClonePooled copy that has been neither recycled nor adopted).
func (p *Packet) Pooled() bool { return p.pooled }

// Adopt transfers ownership of a pooled packet to the caller: the
// packet will never return to the pool, so the caller may retain it
// and its buffers indefinitely.  End-hosts adopt every delivered
// packet.  Adopting a non-pooled packet is a no-op.
func (p *Packet) Adopt() { p.pooled = false }

// Recycle returns a pooled packet to the pool.  The caller must hold
// the only reference; the packet and its TPP/IP/UDP/Payload buffers
// are reused by a future ClonePooled.  Recycling a non-pooled packet
// is a no-op, so drop paths can call it unconditionally.
func (p *Packet) Recycle() {
	if !p.pooled {
		return
	}
	p.pooled = false
	packetPool.Put(p)
}
