package core

import (
	"encoding/binary"
	"fmt"
)

// IPv4HeaderLen is the length of the (option-less) IPv4 header we model.
const IPv4HeaderLen = 20

// IP protocol numbers used by the simulated stack.
const (
	ProtoUDP uint8 = 17
	ProtoTCP uint8 = 6
)

// IPv4 is a minimal IPv4 header: enough for routing (L3 LPM lookups),
// flow classification (TCAM matches), congestion experiments, and the
// fixed-function comparison features (ECN in TOS, Record Route in
// Options).  The checksum is computed on serialization and verified on
// parse.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16 // filled in by Packet.Serialize when zero
	ID       uint16
	TTL      uint8
	Proto    uint8
	Src      uint32
	Dst      uint32
	// Options holds IP options (e.g. Record Route); its length must
	// be a multiple of 4 and at most MaxIPv4Options bytes.
	Options []byte
}

// MaxIPv4Options is the architectural IP option space limit (IHL is a
// 4-bit word count: 60-byte header minus the 20 fixed bytes).
const MaxIPv4Options = 40

// HeaderLen returns the header length including options.
func (h *IPv4) HeaderLen() int { return IPv4HeaderLen + len(h.Options) }

// ECN codepoints in the low two TOS bits.
const (
	ECNCapable uint8 = 0x01 // ECT(1): sender supports ECN
	ECNCE      uint8 = 0x03 // congestion experienced
)

// SpinBit is the latency spin bit, carried in TOS bit 2 — above the two
// ECN codepoints and below the three queue-classification bits, so it
// composes with both.  Endpoints maintain it QUIC-style (one alternation
// per round trip) and any on-path observer can infer the flow's RTT from
// the bit's edge-to-edge interval with zero end-host cooperation.
const (
	SpinBit uint8 = 0x04
)

// IPv4Addr packs four octets into the uint32 address representation.
func IPv4Addr(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// IPv4String formats a uint32 address in dotted-quad notation.
func IPv4String(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// AppendTo serializes the header (and any options) onto b.  Option
// bytes longer than MaxIPv4Options or unaligned to 4 bytes panic:
// callers construct options through the provided builders, which keep
// them well-formed.
func (h *IPv4) AppendTo(b []byte) []byte {
	if len(h.Options)%4 != 0 || len(h.Options) > MaxIPv4Options {
		panic(fmt.Sprintf("core: malformed IPv4 options length %d", len(h.Options)))
	}
	off := len(b)
	ihl := byte(5 + len(h.Options)/4)
	b = append(b, 0x40|ihl, h.TOS)
	b = binary.BigEndian.AppendUint16(b, h.TotalLen)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = append(b, 0, 0) // flags+fragment offset: unfragmented
	b = append(b, h.TTL, h.Proto, 0, 0)
	b = binary.BigEndian.AppendUint32(b, h.Src)
	b = binary.BigEndian.AppendUint32(b, h.Dst)
	b = append(b, h.Options...)
	sum := ipChecksum(b[off : off+h.HeaderLen()])
	binary.BigEndian.PutUint16(b[off+10:], sum)
	return b
}

// ParseIPv4 decodes an IPv4 header from the front of b, verifying the
// version, header length and checksum.
func ParseIPv4(b []byte, h *IPv4) (int, error) {
	if len(b) < IPv4HeaderLen {
		return 0, fmt.Errorf("core: IPv4 header truncated: %d bytes", len(b))
	}
	if b[0]>>4 != 4 {
		return 0, fmt.Errorf("core: not IPv4: version byte %#x", b[0])
	}
	hlen := int(b[0]&0x0F) * 4
	if hlen < IPv4HeaderLen || hlen > IPv4HeaderLen+MaxIPv4Options {
		return 0, fmt.Errorf("core: bad IPv4 IHL %d", hlen)
	}
	if len(b) < hlen {
		return 0, fmt.Errorf("core: IPv4 options truncated: %d < %d", len(b), hlen)
	}
	if ipChecksum(b[:hlen]) != 0 {
		return 0, fmt.Errorf("core: IPv4 header checksum mismatch")
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Proto = b[9]
	h.Src = binary.BigEndian.Uint32(b[12:16])
	h.Dst = binary.BigEndian.Uint32(b[16:20])
	h.Options = append(h.Options[:0], b[IPv4HeaderLen:hlen]...)
	return hlen, nil
}

// ipChecksum is the standard ones-complement Internet checksum.  When
// computed over a header whose checksum field holds the correct value,
// the result is zero.
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
