package core

import (
	"fmt"
)

// Opcode identifies a TPP instruction (Table 1 of the paper).
type Opcode uint8

// The TPP instruction set.  LOAD/PUSH copy values from switch memory to
// packet memory; STORE/POP copy values from packet memory to switch
// memory; CSTORE is an atomic conditional store; CEXEC conditionally
// executes the subsequent instructions.  NOP and ADD are the "simple
// arithmetic" extensions §3.3 allows for.
const (
	OpNOP    Opcode = 0 // no operation
	OpLOAD   Opcode = 1 // pkt[B] = sw[A]
	OpSTORE  Opcode = 2 // sw[A] = pkt[B]
	OpPUSH   Opcode = 3 // pkt[SP] = sw[A]; SP += 4  (stack mode)
	OpPOP    Opcode = 4 // SP -= 4; sw[A] = pkt[SP]  (stack mode)
	OpCSTORE Opcode = 5 // old = sw[A]; if old == pkt[B] { sw[A] = pkt[B+1] }; pkt[B+2] = old
	OpCEXEC  Opcode = 6 // if sw[A] & pkt[B] != pkt[B+1] { halt }
	OpADD    Opcode = 7 // pkt[B] += sw[A]  (arithmetic extension)
	OpSUB    Opcode = 8 // pkt[B] -= sw[A]  (arithmetic extension)
	OpMAX    Opcode = 9 // pkt[B] = max(pkt[B], sw[A])  (aggregation extension)

	opMax = OpMAX
)

var opcodeNames = [...]string{
	OpNOP:    "NOP",
	OpLOAD:   "LOAD",
	OpSTORE:  "STORE",
	OpPUSH:   "PUSH",
	OpPOP:    "POP",
	OpCSTORE: "CSTORE",
	OpCEXEC:  "CEXEC",
	OpADD:    "ADD",
	OpSUB:    "SUB",
	OpMAX:    "MAX",
}

// Valid reports whether the opcode is part of the instruction set.
func (o Opcode) Valid() bool { return o <= opMax }

// String returns the assembly mnemonic of the opcode.
func (o Opcode) String() string {
	if o.Valid() {
		return opcodeNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// InstructionLen is the fixed encoded size of one instruction in bytes.
// §3.3: "we were able to encode an instruction and its operands in a
// 4-byte integer".
const InstructionLen = 4

// OperandBits is the width of each operand field; operands are
// word-granular virtual addresses, so 12 bits address a 16 KiB byte
// space.
const OperandBits = 12

// MaxOperand is the largest encodable operand value.
const MaxOperand = 1<<OperandBits - 1

// Instruction is one decoded TPP instruction.
//
// A is always a switch virtual address (a word index into the unified
// memory map of §3.2.1).  B is a packet-memory operand: a word index
// into the TPP's packet memory, interpreted according to the TPP's
// addressing mode (absolute in stack mode, hop-relative in hop mode).
// PUSH and POP take no B operand; their packet operand is the implicit
// stack pointer.
type Instruction struct {
	Op Opcode
	A  uint16
	B  uint16
}

// Word encodes the instruction as the 4-byte integer layout
// op(8) | A(12) | B(12).
func (i Instruction) Word() uint32 {
	return uint32(i.Op)<<24 | uint32(i.A&MaxOperand)<<12 | uint32(i.B&MaxOperand)
}

// DecodeInstruction decodes a 4-byte instruction word.
func DecodeInstruction(w uint32) Instruction {
	return Instruction{
		Op: Opcode(w >> 24),
		A:  uint16(w >> 12 & MaxOperand),
		B:  uint16(w & MaxOperand),
	}
}

// Validate checks that the instruction is encodable and uses a known
// opcode.
func (i Instruction) Validate() error {
	if !i.Op.Valid() {
		return fmt.Errorf("core: invalid opcode %d", uint8(i.Op))
	}
	if i.A > MaxOperand {
		return fmt.Errorf("core: operand A %#x exceeds %d bits", i.A, OperandBits)
	}
	if i.B > MaxOperand {
		return fmt.Errorf("core: operand B %#x exceeds %d bits", i.B, OperandBits)
	}
	return nil
}

// UsesB reports whether the opcode consumes the B operand.
func (o Opcode) UsesB() bool {
	switch o {
	case OpLOAD, OpSTORE, OpCSTORE, OpCEXEC, OpADD, OpSUB, OpMAX:
		return true
	}
	return false
}

// Writes reports whether the opcode can write switch memory.
func (o Opcode) Writes() bool {
	switch o {
	case OpSTORE, OpPOP, OpCSTORE:
		return true
	}
	return false
}

// String formats the instruction in raw (symbol-free) assembly syntax.
func (i Instruction) String() string {
	switch i.Op {
	case OpNOP:
		return "NOP"
	case OpPUSH, OpPOP:
		return fmt.Sprintf("%s [%#x]", i.Op, i.A)
	default:
		return fmt.Sprintf("%s [%#x], [Packet:%d]", i.Op, i.A, i.B)
	}
}
