package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTPPWireLenFormula(t *testing.T) {
	// §3.3: "If we limit to 5 instructions per packet, the instruction
	// space overhead is 20 bytes/packet."
	tpp := NewTPP(AddrStack, randomInstructions(rand.New(rand.NewSource(1)), 5), 10)
	insBytes := tpp.WireLen() - TPPHeaderLen - len(tpp.Mem)
	if insBytes != 20 {
		t.Fatalf("5-instruction overhead = %d bytes, want 20", insBytes)
	}
	if got, want := tpp.WireLen(), TPPHeaderLen+20+40; got != want {
		t.Fatalf("WireLen = %d, want %d", got, want)
	}
}

func TestTPPSerializeParseRoundTrip(t *testing.T) {
	tpp := NewTPP(AddrHop, []Instruction{
		{Op: OpLOAD, A: 0x001, B: 0},
		{Op: OpLOAD, A: 0x302, B: 1},
	}, 12)
	tpp.HopLen = 8
	tpp.Ptr = 2
	tpp.Flags = FlagError
	tpp.Tenant = 9
	tpp.SetWord(3, 0xDEADBEEF)

	wire := tpp.AppendTo(nil)
	if len(wire) != tpp.WireLen() {
		t.Fatalf("serialized length %d != WireLen %d", len(wire), tpp.WireLen())
	}
	var out TPP
	n, err := ParseTPP(wire, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d bytes", n, len(wire))
	}
	if out.Mode != AddrHop || out.Ptr != 2 || out.HopLen != 8 || out.Flags != FlagError {
		t.Fatalf("header mismatch: %+v", out)
	}
	if out.Tenant != 9 {
		t.Fatalf("tenant id lost on the wire: %d", out.Tenant)
	}
	if len(out.Ins) != 2 || out.Ins[1] != tpp.Ins[1] {
		t.Fatalf("instructions mismatch: %+v", out.Ins)
	}
	if out.Word(3) != 0xDEADBEEF {
		t.Fatalf("packet memory mismatch: %#x", out.Word(3))
	}
}

// Property: AppendTo followed by ParseTPP reproduces the TPP exactly, and
// the serialized length always matches WireLen (the Figure 4 / §3.3
// length formula).
func TestTPPRoundTripQuick(t *testing.T) {
	f := func(seed int64, nIns, memWords uint8, mode bool, ptr uint16, tenant uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := AddrStack
		if mode {
			m = AddrHop
		}
		tpp := NewTPP(m, randomInstructions(r, int(nIns%16)), int(memWords%32))
		tpp.Tenant = tenant
		if m == AddrHop {
			tpp.HopLen = uint16(r.Intn(8)) * 4
			tpp.Ptr = ptr % 64
		} else {
			tpp.Ptr = (ptr % uint16(len(tpp.Mem)+4)) &^ 3
		}
		r.Read(tpp.Mem)
		wire := tpp.AppendTo(nil)
		if len(wire) != tpp.WireLen() {
			return false
		}
		var out TPP
		n, err := ParseTPP(wire, &out)
		if err != nil || n != len(wire) {
			return false
		}
		if out.Mode != tpp.Mode || out.Ptr != tpp.Ptr || out.HopLen != tpp.HopLen {
			return false
		}
		if out.Tenant != tpp.Tenant {
			return false
		}
		if len(out.Ins) != len(tpp.Ins) {
			return false
		}
		for i := range out.Ins {
			if out.Ins[i] != tpp.Ins[i] {
				return false
			}
		}
		return string(out.Mem) == string(tpp.Mem)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseTPPTruncated(t *testing.T) {
	tpp := NewTPP(AddrStack, randomInstructions(rand.New(rand.NewSource(2)), 3), 8)
	wire := tpp.AppendTo(nil)
	for cut := 0; cut < len(wire); cut++ {
		var out TPP
		if _, err := ParseTPP(wire[:cut], &out); err == nil {
			t.Fatalf("truncation to %d bytes not detected", cut)
		}
	}
}

func TestTPPValidate(t *testing.T) {
	good := NewTPP(AddrStack, nil, 4)
	if err := good.Validate(); err != nil {
		t.Errorf("valid TPP rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*TPP)
	}{
		{"bad version", func(p *TPP) { p.Version = 9 }},
		{"bad mode", func(p *TPP) { p.Mode = 7 }},
		{"unaligned SP", func(p *TPP) { p.Ptr = 3 }},
		{"bad instruction", func(p *TPP) { p.Ins = []Instruction{{Op: 99}} }},
	}
	for _, tc := range cases {
		p := NewTPP(AddrStack, nil, 4)
		tc.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	hop := NewTPP(AddrHop, nil, 4)
	hop.HopLen = 6
	if err := hop.Validate(); err == nil {
		t.Error("unaligned HopLen: expected validation error")
	}
}

func TestTPPEffectiveWord(t *testing.T) {
	stack := NewTPP(AddrStack, nil, 16)
	if got := stack.EffectiveWord(5); got != 5 {
		t.Errorf("stack mode effective word = %d, want 5", got)
	}
	hop := NewTPP(AddrHop, nil, 16)
	hop.HopLen = 16 // 4 words per hop
	hop.Ptr = 2
	// "LOAD [Switch:SwitchID], [Packet:hop[1]] will copy the switch ID
	// into PacketMemory[base*size+offset]".
	if got := hop.EffectiveWord(1); got != 9 {
		t.Errorf("hop mode effective word = %d, want 9", got)
	}
}

func TestTPPHopCounting(t *testing.T) {
	hop := NewTPP(AddrHop, nil, 16)
	hop.Ptr = 3
	if got := hop.Hop(4); got != 3 {
		t.Errorf("hop-mode Hop() = %d, want 3", got)
	}
	stack := NewTPP(AddrStack, nil, 16)
	stack.Ptr = 24 // six words pushed, two 3-word frames
	if got := stack.Hop(3); got != 2 {
		t.Errorf("stack-mode Hop() = %d, want 2", got)
	}
	if got := stack.Hop(0); got != 0 {
		t.Errorf("stack-mode Hop(0) = %d, want 0", got)
	}
}

func TestTPPCloneIndependence(t *testing.T) {
	orig := NewTPP(AddrStack, []Instruction{{Op: OpPUSH, A: 1}}, 4)
	orig.SetWord(0, 42)
	c := orig.Clone()
	c.SetWord(0, 99)
	c.Ins[0].A = 7
	c.Ptr = 8
	if orig.Word(0) != 42 || orig.Ins[0].A != 1 || orig.Ptr != 0 {
		t.Fatal("Clone shares state with the original")
	}
}

func TestTPPWordAccessors(t *testing.T) {
	p := NewTPP(AddrStack, nil, 3)
	p.SetWord(2, 0x01020304)
	if p.Word(2) != 0x01020304 {
		t.Fatalf("Word(2) = %#x", p.Word(2))
	}
	if p.Mem[8] != 1 || p.Mem[11] != 4 {
		t.Fatal("words must be big-endian")
	}
	if !p.InRange(2) || p.InRange(3) || p.InRange(-1) {
		t.Fatal("InRange bounds wrong")
	}
}
