package core

import (
	"encoding/binary"
	"fmt"
)

// AddrMode selects how instructions address packet memory (§3.2.2).
type AddrMode uint8

const (
	// AddrStack manages packet memory with a stack pointer: PUSH
	// appends words and advances SP, so the memory records one
	// snapshot per hop back to back (Figure 1).
	AddrStack AddrMode = 1
	// AddrHop uses base:offset addressing: the effective word address
	// of operand B is Ptr*HopLen/4 + B, where Ptr is the hop number
	// maintained in the TPP header and HopLen is the per-hop data
	// structure size in bytes.
	AddrHop AddrMode = 2
)

// String names the addressing mode.
func (m AddrMode) String() string {
	switch m {
	case AddrStack:
		return "stack"
	case AddrHop:
		return "hop"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// TPP header flags.
const (
	// FlagError is set by a TCPU when execution faulted (packet memory
	// exhausted, bad address, or a store to protected state).  The
	// packet still forwards; end-hosts inspect the flag.
	FlagError uint8 = 1 << 0
	// FlagStripped marks a TPP whose instructions were removed at an
	// untrusted edge port (§4); kept for observability in traces.
	FlagStripped uint8 = 1 << 1
	// FlagThrottled is set by a switch whose TCPU admission gate ran
	// out of tokens: the packet was forwarded without executing its
	// program, degrading to plain forwarding as the line-rate argument
	// requires.  End-hosts use the bit to distinguish an overloaded
	// TCPU (echo returns, flag set, hop record missing) from a
	// blackhole (no echo at all).
	FlagThrottled uint8 = 1 << 2
	// FlagAccessFault is set by a switch whose tenant guard denied at
	// least one of the program's memory accesses: a denied LOAD returned
	// the poison value, a denied STORE was dropped, and execution
	// continued — fail-forward, the gate protects state but never stalls
	// the dataplane.  End-hosts see the bit on the echo and know their
	// program touched memory outside its grant.
	FlagAccessFault uint8 = 1 << 3
)

// TPPVersion is the wire format version implemented by this package.
const TPPVersion = 1

// TPPHeaderLen is the fixed TPP header size in bytes.  The paper's
// Figure 4 allots "up to 20 bytes" for the five header fields; this
// encoding packs them in 12, keeping 4-byte alignment.
const TPPHeaderLen = 12

// MaxTPPInstructions bounds the program length.  §1 suggests
// "restricting TPPs to (say) five instructions per-packet"; we keep the
// wire format general (one byte of instruction count) and let the ASIC
// enforce its own per-device limit.
const MaxTPPInstructions = 255

// TPP is a decoded tiny packet program: a short instruction sequence
// plus the packet memory it owns.
type TPP struct {
	Version uint8
	Flags   uint8
	Mode    AddrMode
	// Ptr is the paper's header field 4, "Hop number / stack pointer":
	// the stack pointer in bytes in stack mode, the hop counter in hop
	// mode.  Each TCPU advances it as it executes the program.
	Ptr uint16
	// HopLen is the per-hop data structure length in bytes, used only
	// in hop addressing mode (header field 5).
	HopLen uint16
	// Ins is the instruction section, executed sequentially at every
	// TCPU-enabled switch the packet traverses.
	Ins []Instruction
	// Mem is the packet memory scratch space, preallocated by the
	// end-host; its length never changes inside the network.  Length
	// is always a multiple of 4.
	Mem []byte
	// Tenant is the isolation principal the program runs as.  It is
	// stamped and sealed by the trusted edge (the endhost NIC overwrites
	// whatever a guest supplied), so guarded switches can attribute every
	// memory access and admission token to a tenant.  Zero is the
	// operator tenant, which keeps untenanted legacy traffic meaningful.
	Tenant uint8

	// Compiled caches the device-independent compiled form of the
	// program (a *tcpu.Program), attached by the trusted edge so every
	// TCPU on the path can skip its own cache lookup when its device
	// configuration matches.  It never goes on the wire (AppendTo skips
	// it, ParseTPP leaves it nil) and is shared by Clone: compiled
	// programs are immutable and safe to execute concurrently.
	Compiled any
}

// tppBlock co-allocates a TPP with its packet memory; per-packet
// instrumentation (e.g. the §2.1 telemetry probe on every data packet)
// builds a fresh TPP per send, and one allocation instead of two is
// measurable at line rate.  128 bytes covers every experiment's memory
// section (the largest, ndb's 5-hop trace, uses 80).
type tppBlock struct {
	t   TPP
	mem [128]byte
}

// NewTPP builds a TPP with memWords words of zeroed packet memory.
func NewTPP(mode AddrMode, ins []Instruction, memWords int) *TPP {
	n := memWords * 4
	if n <= len(tppBlock{}.mem) {
		b := &tppBlock{t: TPP{Version: TPPVersion, Mode: mode, Ins: ins}}
		b.t.Mem = b.mem[:n:n]
		return &b.t
	}
	return &TPP{
		Version: TPPVersion,
		Mode:    mode,
		Ins:     ins,
		Mem:     make([]byte, n),
	}
}

// MemWords returns the packet memory size in 32-bit words.
func (t *TPP) MemWords() int { return len(t.Mem) / 4 }

// WireLen returns the serialized size of the TPP section in bytes.
func (t *TPP) WireLen() int {
	return TPPHeaderLen + InstructionLen*len(t.Ins) + len(t.Mem)
}

// Word returns packet memory word i (big endian).  It panics if i is out
// of range; callers bound-check through InRange.
func (t *TPP) Word(i int) uint32 {
	return binary.BigEndian.Uint32(t.Mem[i*4:])
}

// SetWord writes packet memory word i.
func (t *TPP) SetWord(i int, v uint32) {
	binary.BigEndian.PutUint32(t.Mem[i*4:], v)
}

// InRange reports whether word index i is inside packet memory.
func (t *TPP) InRange(i int) bool { return i >= 0 && (i+1)*4 <= len(t.Mem) }

// EffectiveWord translates an instruction's B operand into a word index
// according to the addressing mode ("base:offset refers to the word at
// location base * size + offset").
func (t *TPP) EffectiveWord(b uint16) int {
	if t.Mode == AddrHop {
		return int(t.Ptr)*int(t.HopLen/4) + int(b)
	}
	return int(b)
}

// Hop returns the hop counter (hop mode) or the number of complete
// stack frames of size frameWords pushed so far (stack mode).
func (t *TPP) Hop(frameWords int) int {
	if t.Mode == AddrHop {
		return int(t.Ptr)
	}
	if frameWords <= 0 {
		return 0
	}
	return int(t.Ptr) / 4 / frameWords
}

// Clone deep-copies the TPP so switches can execute on a private copy
// when a packet is replicated (flooding).
func (t *TPP) Clone() *TPP {
	c := *t
	c.Ins = append([]Instruction(nil), t.Ins...)
	c.Mem = append([]byte(nil), t.Mem...)
	return &c
}

// Validate checks structural invariants of the TPP.  It is split into
// three ordered stages so a compiled program (internal/tcpu) can prove
// the static stages once and re-run only the dynamic one per packet
// while faulting in exactly the same order as the interpreter.
func (t *TPP) Validate() error {
	if err := t.ValidateHead(); err != nil {
		return err
	}
	if err := t.ValidateDynamic(); err != nil {
		return err
	}
	return t.ValidateIns()
}

// ValidateHead checks the invariants that are fixed for a given
// instruction section and addressing mode: version, mode, and the
// wire-format instruction-count bound.
func (t *TPP) ValidateHead() error {
	if t.Version != TPPVersion {
		return fmt.Errorf("core: unsupported TPP version %d", t.Version)
	}
	if t.Mode != AddrStack && t.Mode != AddrHop {
		return fmt.Errorf("core: invalid addressing mode %d", t.Mode)
	}
	if len(t.Ins) > MaxTPPInstructions {
		return fmt.Errorf("core: %d instructions exceed maximum %d", len(t.Ins), MaxTPPInstructions)
	}
	return nil
}

// ValidateDynamic checks the invariants that depend on header state a
// hop can change (or that differ between two packets carrying the same
// program): memory length, per-hop record size, and stack-pointer
// alignment.
func (t *TPP) ValidateDynamic() error {
	if len(t.Mem)%4 != 0 {
		return fmt.Errorf("core: packet memory length %d not 4-byte aligned", len(t.Mem))
	}
	if t.Mode == AddrHop && t.HopLen%4 != 0 {
		return fmt.Errorf("core: per-hop length %d not 4-byte aligned", t.HopLen)
	}
	if t.Mode == AddrStack && t.Ptr%4 != 0 {
		return fmt.Errorf("core: stack pointer %d not 4-byte aligned", t.Ptr)
	}
	return nil
}

// ValidateIns checks every instruction encoding.
func (t *TPP) ValidateIns() error {
	for k, in := range t.Ins {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("core: instruction %d: %w", k, err)
		}
	}
	return nil
}

// AppendTo serializes the TPP section (header, instructions, packet
// memory) onto b.
func (t *TPP) AppendTo(b []byte) []byte {
	b = append(b, t.Version, t.Flags, byte(t.Mode), byte(len(t.Ins)))
	b = binary.BigEndian.AppendUint16(b, uint16(t.MemWords()))
	b = binary.BigEndian.AppendUint16(b, t.Ptr)
	b = binary.BigEndian.AppendUint16(b, t.HopLen)
	b = append(b, t.Tenant, 0) // tenant id + reserved, keeps 4-byte alignment
	for _, in := range t.Ins {
		b = binary.BigEndian.AppendUint32(b, in.Word())
	}
	return append(b, t.Mem...)
}

// ParseTPP decodes a TPP section from the front of b, returning the
// number of bytes consumed.  The packet memory is copied so that the
// decoded TPP owns its scratch space.
func ParseTPP(b []byte, t *TPP) (int, error) {
	if len(b) < TPPHeaderLen {
		return 0, fmt.Errorf("core: TPP header truncated: %d bytes", len(b))
	}
	t.Version = b[0]
	t.Flags = b[1]
	t.Mode = AddrMode(b[2])
	nIns := int(b[3])
	memWords := int(binary.BigEndian.Uint16(b[4:6]))
	t.Ptr = binary.BigEndian.Uint16(b[6:8])
	t.HopLen = binary.BigEndian.Uint16(b[8:10])
	t.Tenant = b[10]
	t.Compiled = nil // a reused TPP must not keep a stale compilation
	n := TPPHeaderLen
	need := n + nIns*InstructionLen + memWords*4
	if len(b) < need {
		return 0, fmt.Errorf("core: TPP body truncated: need %d bytes, have %d", need, len(b))
	}
	t.Ins = t.Ins[:0]
	for i := 0; i < nIns; i++ {
		t.Ins = append(t.Ins, DecodeInstruction(binary.BigEndian.Uint32(b[n:])))
		n += InstructionLen
	}
	t.Mem = append(t.Mem[:0], b[n:n+memWords*4]...)
	n += memWords * 4
	if err := t.Validate(); err != nil {
		return 0, err
	}
	return n, nil
}
