package core

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the UDP header size in bytes.
const UDPHeaderLen = 8

// UDP is a UDP header.  The checksum is left zero (legal for UDP over
// IPv4); the simulated links do not corrupt payloads.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16 // header + payload; filled in by Packet.Serialize when zero
}

// AppendTo serializes the header onto b.
func (u *UDP) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, u.Length)
	return append(b, 0, 0)
}

// ParseUDP decodes a UDP header from the front of b.
func ParseUDP(b []byte, u *UDP) (int, error) {
	if len(b) < UDPHeaderLen {
		return 0, fmt.Errorf("core: UDP header truncated: %d bytes", len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	u.Length = binary.BigEndian.Uint16(b[4:6])
	return UDPHeaderLen, nil
}
