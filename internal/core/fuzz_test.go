package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: decoding arbitrary bytes must never panic and must either
// fail cleanly or produce a packet that re-serializes without panicking.
// Switches parse attacker-controlled frames, so this is a security
// property, not just hygiene.
func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %d bytes: %v", len(data), r)
			}
		}()
		pkt, err := Decode(data)
		if err != nil {
			return true
		}
		_ = pkt.WireLen()
		_ = pkt.Serialize()
		_ = pkt.Clone()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Robustness: a valid frame with any single byte flipped must never
// panic the decoder.
func TestDecodeBitflippedFramesNeverPanic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	base := samplePacket().Serialize()
	for trial := 0; trial < 5000; trial++ {
		mutated := append([]byte(nil), base...)
		i := r.Intn(len(mutated))
		mutated[i] ^= byte(1 << r.Intn(8))
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic flipping byte %d: %v", i, rec)
				}
			}()
			if pkt, err := Decode(mutated); err == nil {
				_ = pkt.Serialize()
			}
		}()
	}
}

// Robustness: ParseTPP on truncations and corruptions of a valid TPP
// must never panic nor accept structurally invalid output.
func TestParseTPPCorruptionNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	tpp := NewTPP(AddrStack, randomInstructions(r, 5), 10)
	wire := tpp.AppendTo(nil)
	for trial := 0; trial < 5000; trial++ {
		mutated := append([]byte(nil), wire...)
		switch r.Intn(3) {
		case 0:
			mutated = mutated[:r.Intn(len(mutated)+1)]
		case 1:
			mutated[r.Intn(len(mutated))] ^= byte(1 + r.Intn(255))
		case 2:
			extra := make([]byte, r.Intn(16))
			r.Read(extra)
			mutated = append(mutated, extra...)
		}
		var out TPP
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ParseTPP panicked: %v", rec)
				}
			}()
			if _, err := ParseTPP(mutated, &out); err == nil {
				if err := out.Validate(); err != nil {
					t.Fatalf("ParseTPP accepted invalid TPP: %v", err)
				}
			}
		}()
	}
}
