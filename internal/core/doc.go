// Package core implements the wire format of Tiny Packet Programs (TPPs)
// as described in "Tiny Packet Programs for low-latency network control
// and monitoring" (HotNets 2013), Figure 4.
//
// A TPP is an Ethernet frame with a dedicated EtherType whose payload
// begins with a 12-byte TPP header, followed by a sequence of fixed-size
// 4-byte instructions, a block of packet memory owned by the program, and
// finally the encapsulated original payload (for example an IPv4/UDP
// datagram).
//
// The package follows the layered decode/serialize conventions of
// gopacket: every header type has an AppendTo method that serializes the
// header onto a byte slice and a Parse function that decodes it without
// copying, and Packet composes the layers.  Decoding is allocation-light
// so it can run per packet inside the simulated switch dataplane.
//
// Values manipulated by TPP instructions are 32-bit big-endian words and
// all section lengths are 4-byte aligned, matching the paper's "all
// memory lengths are 4 byte aligned for efficient encoding".
package core
