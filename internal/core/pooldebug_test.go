//go:build pooldebug

package core

import (
	"strings"
	"testing"
)

// mustPanic runs fn and asserts it panics with a message containing
// every substring in want.
func mustPanic(t *testing.T, fn func(), want ...string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one mentioning %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		for _, w := range want {
			if !strings.Contains(msg, w) {
				t.Fatalf("panic %q does not mention %q", msg, w)
			}
		}
	}()
	fn()
}

// A reference issued before a Recycle must trip every instrumented
// accessor, and the panic must name the recycling call site.
func TestPooldebugUseAfterRecycle(t *testing.T) {
	for _, tc := range []struct {
		op  string
		use func(p *Packet)
	}{
		{"WireLen", func(p *Packet) { p.WireLen() }},
		{"Serialize", func(p *Packet) { p.Serialize() }},
		{"Clone", func(p *Packet) { p.Clone() }},
		{"ClonePooled", func(p *Packet) { p.ClonePooled() }},
		{"Adopt", func(p *Packet) { p.Adopt() }},
	} {
		c := poolFixture().ClonePooled()
		c.Recycle()
		mustPanic(t, func() { tc.use(c) }, tc.op, "recycled at", "pooldebug_test.go")
	}
}

// Recycling twice panics (instead of release's silent no-op): the
// second call necessarily runs through a stale reference.
func TestPooldebugDoubleRecycle(t *testing.T) {
	c := poolFixture().ClonePooled()
	c.Recycle()
	mustPanic(t, c.Recycle, "already recycled at", "pooldebug_test.go")
}

// Recycling a shallow copy of a live pooled packet is the aliasing
// violation pool.go's rules forbid; the sanitizer escalates release's
// defensive abandon to a panic.
func TestPooldebugShallowCopyRecycle(t *testing.T) {
	c := poolFixture().ClonePooled()
	sc := *c
	mustPanic(t, sc.Recycle, "shallow copy")
	c.Adopt() // keep the resident packet legal for later slots
}

// A write through a stale alias while the slot sits in the pool must
// be caught by the canary check when the slot is next handed out.
func TestPooldebugCanaryClobber(t *testing.T) {
	c := poolFixture().ClonePooled()
	stale := c.Payload // alias the slot's payload buffer
	c.Recycle()
	stale[0] = 'X' // the violation: writing after the death point
	src := poolFixture()
	mustPanic(t, func() {
		// Drain until the clobbered slot resurfaces (the pool is
		// per-P; single-threaded tests get the same slot back first).
		for i := 0; i < 64; i++ {
			src.ClonePooled().Adopt()
		}
	}, "clobbered after Recycle", "pooldebug_test.go")
}

// The legal lifecycle — clone, forward, recycle, reuse; adopt and
// retain — must run clean under the sanitizer.
func TestPooldebugCleanLifecycle(t *testing.T) {
	src := poolFixture()
	for i := 0; i < 100; i++ {
		c := src.ClonePooled()
		_ = c.WireLen()
		if i%2 == 0 {
			c.Recycle()
		} else {
			c.Adopt()
			_ = c.Serialize()
		}
	}
}

// Poison covers buffer capacity, not just length: a stale alias
// re-sliced beyond the live length is still caught.
func TestPooldebugPoisonCoversCapacity(t *testing.T) {
	c := poolFixture().ClonePooled()
	buf := c.TPP.Mem
	c.Recycle()
	if cap(buf) == 0 {
		t.Skip("fixture has no packet memory capacity")
	}
	full := buf[:cap(buf)]
	for i, b := range full {
		if b != poisonByte {
			t.Fatalf("Mem[%d] = %#x after Recycle, want poison %#x", i, b, poisonByte)
		}
	}
}
