package aimd

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/netsim"
	"repro/internal/topo"
)

func TestSingleFlowFindsCapacity(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, QueueCapBytes: 30_000})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, netsim.Millisecond))
	n.LinkHost(h2, sw, topo.Mbps(10, netsim.Millisecond))
	n.PrimeL2(10 * netsim.Millisecond)

	params := DefaultParams()
	rcv := NewReceiver(sim, h2, params)
	snd := NewSender(sim, h1, h2.MAC, h2.IP, params, 20_000)
	snd.Start()
	sim.RunUntil(sim.Now() + 30*netsim.Second)

	// Goodput must approach the 10 Mb/s (1.25 MB/s) bottleneck; AIMD
	// sawtooths, so accept 60-100%.
	goodput := float64(rcv.Bytes) / 30
	if goodput < 750_000 || goodput > 1_300_000 {
		t.Fatalf("goodput = %.0f B/s, want near 1.25e6", goodput)
	}
	if snd.Backoffs == 0 {
		t.Fatal("AIMD never backed off: no loss induced")
	}
	if snd.Increments == 0 {
		t.Fatal("AIMD never increased")
	}
}

func TestLossDetectionTriggersDecrease(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, QueueCapBytes: 5_000})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 0))
	n.LinkHost(h2, sw, topo.Mbps(1, 0)) // tiny queue, slow drain: drops
	n.PrimeL2(10 * netsim.Millisecond)

	params := DefaultParams()
	NewReceiver(sim, h2, params)
	snd := NewSender(sim, h1, h2.MAC, h2.IP, params, 1_000_000) // way over capacity
	before := snd.Rate()
	snd.Start()
	sim.RunUntil(sim.Now() + 2*netsim.Second)
	if snd.Backoffs == 0 {
		t.Fatal("no backoff despite heavy loss")
	}
	if snd.Rate() >= before {
		t.Fatalf("rate did not decrease: %.0f -> %.0f", before, snd.Rate())
	}
}

func TestStopHaltsSender(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 0))
	n.LinkHost(h2, sw, topo.Mbps(100, 0))
	n.PrimeL2(10 * netsim.Millisecond)

	snd := NewSender(sim, h1, h2.MAC, h2.IP, DefaultParams(), 100_000)
	snd.Start()
	sim.RunUntil(sim.Now() + netsim.Second)
	snd.Stop()
	sent := snd.Sent
	sim.RunUntil(sim.Now() + netsim.Second)
	if snd.Sent != sent {
		t.Fatal("sender kept transmitting after Stop")
	}
}

func TestComparisonAIMDvsRCPStar(t *testing.T) {
	cfg := DefaultCompareConfig()
	aimdRes := RunComparison(SchemeAIMD, cfg)
	rcpRes := RunComparison(SchemeRCPStar, cfg)

	// Both schemes must use the link reasonably in steady state.
	if aimdRes.Utilization < 0.5 {
		t.Fatalf("AIMD utilization = %.2f", aimdRes.Utilization)
	}
	if rcpRes.Utilization < 0.7 {
		t.Fatalf("RCP* utilization = %.2f", rcpRes.Utilization)
	}
	// The paper's claim, quantified: RCP* keeps queues far smaller
	// than loss-driven AIMD...
	if rcpRes.MeanQueueBytes >= aimdRes.MeanQueueBytes {
		t.Fatalf("queues: RCP* %.0f >= AIMD %.0f",
			rcpRes.MeanQueueBytes, aimdRes.MeanQueueBytes)
	}
	// ...without inducing loss to find the rate.
	if rcpRes.DropPkts > aimdRes.DropPkts {
		t.Fatalf("drops: RCP* %d > AIMD %d", rcpRes.DropPkts, aimdRes.DropPkts)
	}
	// And is at least as fair across the three flows.
	if rcpRes.JainIndex < 0.9 {
		t.Fatalf("RCP* Jain index = %.3f", rcpRes.JainIndex)
	}
	if rcpRes.JainIndex+0.05 < aimdRes.JainIndex {
		t.Fatalf("fairness: RCP* %.3f much worse than AIMD %.3f",
			rcpRes.JainIndex, aimdRes.JainIndex)
	}
}

func TestComparisonDeterminism(t *testing.T) {
	cfg := DefaultCompareConfig()
	cfg.Duration = 8 * netsim.Second
	cfg.FlowStarts = []netsim.Time{0, netsim.Second}
	a := RunComparison(SchemeAIMD, cfg)
	b := RunComparison(SchemeAIMD, cfg)
	if a.DropPkts != b.DropPkts || a.MeanQueueBytes != b.MeanQueueBytes {
		t.Fatal("same seed produced different results")
	}
}
