// Package aimd implements a TCP-style additive-increase /
// multiplicative-decrease rate controller as the legacy comparator for
// the congestion-control experiment: the paper motivates RCP precisely
// against this behaviour ("TCP and its variants still remain the
// dominant congestion control algorithms") — AIMD discovers the fair
// share by filling queues and inducing loss, where RCP/RCP* read the
// network's state directly.
//
// The sender paces sequence-numbered UDP datagrams; the receiver
// returns periodic feedback (highest sequence seen, datagrams received
// in the window); the sender halves its rate on detected loss and adds
// one segment per feedback interval otherwise.
package aimd

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
)

// UDP ports of the AIMD experiment.
const (
	DataPort     = 8100
	FeedbackPort = 8101
)

// SegmentSize is the payload bytes per datagram (1000-byte frames).
const SegmentSize = 958

// Params tunes the control loop.
type Params struct {
	// FeedbackEvery is the receiver's feedback period (an RTT-scale
	// clock, like TCP's ACK feedback).
	FeedbackEvery netsim.Time
	// Decrease is the multiplicative back-off factor on loss.
	Decrease float64
	// MinRate floors the sending rate, bytes/sec.
	MinRate float64
}

// DefaultParams mirrors TCP Reno-style behaviour at the Figure 2
// timescales.
func DefaultParams() Params {
	return Params{
		FeedbackEvery: 50 * netsim.Millisecond,
		Decrease:      0.5,
		MinRate:       SegmentSize, // one segment/sec
	}
}

// Sender is one AIMD flow.
type Sender struct {
	sim    *netsim.Sim
	host   *endhost.Host
	dstMAC core.MAC
	dstIP  uint32
	params Params

	rate    float64
	running bool
	seq     uint32

	// budget, when positive, bounds the payload bytes; the sender
	// stops itself and calls onDone after the last segment.
	budget    uint64
	sentBytes uint64
	onDone    func()

	// Telemetry.
	Sent       uint64
	Backoffs   uint64
	Increments uint64
}

// NewSender builds a sender; feedback from the receiver arrives on
// FeedbackPort and retunes the rate.
func NewSender(sim *netsim.Sim, host *endhost.Host, dstMAC core.MAC, dstIP uint32, params Params, initialRate float64) *Sender {
	s := &Sender{sim: sim, host: host, dstMAC: dstMAC, dstIP: dstIP,
		params: params, rate: initialRate}
	host.Handle(FeedbackPort, s.onFeedback)
	return s
}

// Rate returns the current sending rate, bytes/sec.
func (s *Sender) Rate() float64 { return s.rate }

// SetBudget makes this a finite flow of the given payload size; fn (may
// be nil) runs when the last segment has been handed to the NIC.
func (s *Sender) SetBudget(bytes uint64, fn func()) {
	s.budget = bytes
	s.onDone = fn
}

// Start begins transmission.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	s.sim.After(0, s.pump)
}

// Stop halts transmission.
func (s *Sender) Stop() { s.running = false }

func (s *Sender) pump() {
	if !s.running {
		return
	}
	if s.budget > 0 && s.sentBytes >= s.budget {
		s.running = false
		if s.onDone != nil {
			s.onDone()
		}
		return
	}
	s.seq++
	pkt := s.host.NewPacket(s.dstMAC, s.dstIP, DataPort, DataPort, 0)
	pkt.Payload = binary.BigEndian.AppendUint32(nil, s.seq)
	pkt.PadLen = SegmentSize - len(pkt.Payload)
	s.host.Send(pkt)
	s.Sent++
	s.sentBytes += SegmentSize
	gap := netsim.Time(float64(SegmentSize+42) / s.rate * float64(netsim.Second))
	if gap < netsim.Microsecond {
		gap = netsim.Microsecond
	}
	s.sim.After(gap, s.pump)
}

// onFeedback applies AIMD: halve on loss, add one segment per feedback
// interval otherwise.
func (s *Sender) onFeedback(pkt *core.Packet) {
	if len(pkt.Payload) < 8 {
		return
	}
	lost := binary.BigEndian.Uint32(pkt.Payload[4:8])
	if lost > 0 {
		s.rate *= s.params.Decrease
		s.Backoffs++
	} else {
		// Additive increase: one segment per feedback interval, the
		// rate-based analogue of TCP's one-MSS-per-RTT window growth.
		s.rate += SegmentSize / s.params.FeedbackEvery.Seconds()
		s.Increments++
	}
	if s.rate < s.params.MinRate {
		s.rate = s.params.MinRate
	}
}

// Receiver tracks sequence numbers and reports loss back to the sender.
type Receiver struct {
	host *endhost.Host
	sim  *netsim.Sim

	srcMAC core.MAC
	srcIP  uint32
	have   bool

	maxSeq   uint32
	lastMax  uint32
	received uint32

	// Bytes counts delivered payload, for goodput measurement.
	Bytes uint64
}

// NewReceiver installs the receiver side on host.
func NewReceiver(sim *netsim.Sim, host *endhost.Host, params Params) *Receiver {
	r := &Receiver{host: host, sim: sim}
	host.Handle(DataPort, r.onData)
	sim.Every(sim.Now()+params.FeedbackEvery, params.FeedbackEvery, r.feedback)
	return r
}

// OnData feeds one data packet into the loss tracker; exported so
// experiment harnesses that wrap the data-port handler (to measure
// goodput) can keep the feedback loop intact.
func (r *Receiver) OnData(pkt *core.Packet) { r.onData(pkt) }

func (r *Receiver) onData(pkt *core.Packet) {
	if len(pkt.Payload) < 4 || pkt.IP == nil {
		return
	}
	seq := binary.BigEndian.Uint32(pkt.Payload)
	if seq > r.maxSeq {
		r.maxSeq = seq
	}
	r.received++
	r.Bytes += uint64(pkt.PayloadLen())
	r.srcMAC, r.srcIP = pkt.Eth.Src, pkt.IP.Src
	r.have = true
}

func (r *Receiver) feedback() {
	if !r.have {
		return
	}
	expected := r.maxSeq - r.lastMax
	var lost uint32
	if expected > r.received {
		lost = expected - r.received
	}
	r.lastMax = r.maxSeq
	r.received = 0

	fb := r.host.NewPacket(r.srcMAC, r.srcIP, FeedbackPort, FeedbackPort, 0)
	fb.Payload = binary.BigEndian.AppendUint32(nil, r.maxSeq)
	fb.Payload = binary.BigEndian.AppendUint32(fb.Payload, lost)
	r.host.Send(fb)
}
