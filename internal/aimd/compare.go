package aimd

import (
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
	"repro/internal/rcp"
	"repro/internal/topo"
)

// Scheme names a congestion-control implementation under comparison.
type Scheme string

// The compared schemes.
const (
	SchemeAIMD    Scheme = "aimd"
	SchemeRCPStar Scheme = "rcpstar"
)

// CompareConfig parameterizes the AIMD-vs-RCP* comparison: the Figure 2
// dumbbell, identical for both schemes.
type CompareConfig struct {
	Duration       netsim.Time
	FlowStarts     []netsim.Time
	BottleneckMbps float64
	EdgeMbps       float64
	Seed           int64
}

// DefaultCompareConfig mirrors the Figure 2 setup.
func DefaultCompareConfig() CompareConfig {
	return CompareConfig{
		Duration:       30 * netsim.Second,
		FlowStarts:     []netsim.Time{0, 10 * netsim.Second, 20 * netsim.Second},
		BottleneckMbps: 10,
		EdgeMbps:       100,
		Seed:           1,
	}
}

// CompareResult summarizes one scheme's run.
type CompareResult struct {
	Scheme Scheme
	// FlowGoodput is each flow's goodput over the final five seconds,
	// bytes/sec.
	FlowGoodput []float64
	// JainIndex is Jain's fairness index over FlowGoodput.
	JainIndex float64
	// MeanQueueBytes is the time-averaged bottleneck occupancy.
	MeanQueueBytes float64
	// DropPkts counts bottleneck drops over the whole run.
	DropPkts uint64
	// Utilization is delivered payload over capacity in the final
	// five seconds.
	Utilization float64
}

// RunComparison runs one scheme on the shared scenario.
func RunComparison(scheme Scheme, cfg CompareConfig) CompareResult {
	sim := netsim.New(cfg.Seed)
	n := topo.NewNetwork(sim)
	capacityBytes := cfg.BottleneckMbps * 1e6 / 8
	queueCap := int(capacityBytes * 0.1) // one 100ms BDP
	swCfg := asic.Config{Ports: 8, QueueCapBytes: queueCap}
	a := n.AddSwitch(swCfg)
	b := n.AddSwitch(swCfg)
	aPort, _ := n.LinkSwitches(a, b, topo.Mbps(cfg.BottleneckMbps, 10*netsim.Millisecond))
	edge := topo.Mbps(cfg.EdgeMbps, netsim.Millisecond)

	flows := len(cfg.FlowStarts)
	senders := make([]*endhost.Host, flows)
	receivers := make([]*endhost.Host, flows)
	for i := 0; i < flows; i++ {
		senders[i] = n.AddHost()
		n.LinkHost(senders[i], a, edge)
	}
	for i := 0; i < flows; i++ {
		receivers[i] = n.AddHost()
		n.LinkHost(receivers[i], b, edge)
	}
	n.PrimeL2(50 * netsim.Millisecond)

	recvBytes := make([]uint64, flows)
	switch scheme {
	case SchemeAIMD:
		params := DefaultParams()
		for i := 0; i < flows; i++ {
			i := i
			rcv := NewReceiver(sim, receivers[i], params)
			receivers[i].Handle(DataPort, func(p *core.Packet) {
				recvBytes[i] += uint64(p.PayloadLen())
				rcv.onData(p)
			})
			snd := NewSender(sim, senders[i], receivers[i].MAC, receivers[i].IP,
				params, float64(SegmentSize)/params.FeedbackEvery.Seconds())
			sim.At(sim.Now()+cfg.FlowStarts[i], snd.Start)
		}
	case SchemeRCPStar:
		rcp.InitRateRegisters(a, b)
		for i := 0; i < flows; i++ {
			i := i
			receivers[i].Handle(rcp.StarDataPort, func(p *core.Packet) {
				recvBytes[i] += uint64(p.PayloadLen())
			})
			ctl := rcp.NewStarController(sim, senders[i],
				endhost.NewProber(senders[i]),
				receivers[i].MAC, receivers[i].IP, rcp.DefaultParams())
			sim.At(sim.Now()+cfg.FlowStarts[i], ctl.Start)
		}
	default:
		panic("aimd: unknown scheme " + string(scheme))
	}

	// Sample the bottleneck queue through the run.
	var qSum float64
	var qCount int
	bn := a.Port(aPort)
	sim.Every(sim.Now()+10*netsim.Millisecond, 10*netsim.Millisecond, func() {
		qSum += float64(bn.QueueBytes())
		qCount++
	})

	start := sim.Now()
	final := cfg.Duration - 5*netsim.Second
	finalStart := make([]uint64, flows)
	sim.At(start+final, func() { copy(finalStart, recvBytes) })
	sim.RunUntil(start + cfg.Duration)

	res := CompareResult{Scheme: scheme}
	var sum, sumsq, total float64
	for i := 0; i < flows; i++ {
		g := float64(recvBytes[i]-finalStart[i]) / 5
		res.FlowGoodput = append(res.FlowGoodput, g)
		sum += g
		sumsq += g * g
		total += g
	}
	if sumsq > 0 {
		res.JainIndex = sum * sum / (float64(flows) * sumsq)
	}
	if qCount > 0 {
		res.MeanQueueBytes = qSum / float64(qCount)
	}
	res.DropPkts = bn.Queue(0).DropPkts
	res.Utilization = total / capacityBytes
	return res
}
