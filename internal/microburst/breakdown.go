package microburst

import (
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// BreakdownProgram samples, at every hop, the egress queue occupancy
// and the link capacity, from which the end-host computes the queueing
// latency the packet experienced there — the "detailed breakdown of
// queueing latencies on all network hops" of §2.1.
func BreakdownProgram(maxHops int) *core.TPP {
	return core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
		{Op: core.OpPUSH, A: uint16(mem.PortBase + mem.PortCapacity)},
	}, 2*maxHops)
}

// HopLatencies converts an executed breakdown TPP into per-hop queueing
// latencies in microseconds (queue bytes ahead of the packet divided by
// the drain rate).
func HopLatencies(t *core.TPP) []float64 {
	hops := int(t.Ptr) / 4 / 2
	out := make([]float64, 0, hops)
	for i := 0; i < hops; i++ {
		q := float64(t.Word(2 * i))
		c := float64(t.Word(2*i + 1))
		if c <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, q/c*1e6)
	}
	return out
}

// BreakdownConfig parameterizes the latency-breakdown experiment: a
// 3-switch path whose middle switch also carries bursty cross traffic,
// so one hop dominates the end-to-end queueing latency.
type BreakdownConfig struct {
	Packets     int
	CrossBursts int
	CrossBytes  int
	Seed        int64
}

// DefaultBreakdownConfig is the canonical run.
func DefaultBreakdownConfig() BreakdownConfig {
	return BreakdownConfig{Packets: 400, CrossBursts: 20, CrossBytes: 30_000, Seed: 1}
}

// HopStats summarizes one hop's queueing-latency distribution.
type HopStats struct {
	Hop    int
	MeanUs float64
	P99Us  float64
	MaxUs  float64
}

// BreakdownResult is the per-hop latency breakdown.
type BreakdownResult struct {
	Config BreakdownConfig
	Hops   []HopStats
	// DominantHop is the hop index (0-based) with the largest mean
	// queueing latency; the experiment arranges for it to be hop 1
	// (the cross-traffic switch).
	DominantHop int
	Samples     int
}

// RunBreakdown executes the experiment.
func RunBreakdown(cfg BreakdownConfig) BreakdownResult {
	sim := netsim.New(cfg.Seed)
	n := topo.NewNetwork(sim)
	edge := topo.Mbps(100, 10*netsim.Microsecond)
	fabric := topo.Mbps(20, 10*netsim.Microsecond)

	sws := make([]*asic.Switch, 3)
	for i := range sws {
		sws[i] = n.AddSwitch(asic.Config{Ports: 4, QueueCapBytes: 400_000})
	}
	n.LinkSwitches(sws[0], sws[1], fabric)
	n.LinkSwitches(sws[1], sws[2], fabric)
	src := n.AddHost()
	dst := n.AddHost()
	cross := n.AddHost()
	n.LinkHost(src, sws[0], edge)
	n.LinkHost(dst, sws[2], edge)
	n.LinkHost(cross, sws[1], edge) // bursts into the S1->S2 hop
	n.PrimeL2(10 * netsim.Millisecond)

	hists := make([]*stats.Histogram, 3)
	for i := range hists {
		hists[i] = &stats.Histogram{}
	}
	samples := 0
	dst.HandleDefault(func(pkt *core.Packet) {
		if pkt.TPP == nil {
			return
		}
		for hop, lat := range HopLatencies(pkt.TPP) {
			if hop < len(hists) {
				hists[hop].Add(lat)
			}
		}
		samples++
	})

	// Cross bursts toward dst: they share only the S1 egress with the
	// probe stream.
	start := sim.Now()
	crossPkts := (cfg.CrossBytes + 957) / 958
	for b := 0; b < cfg.CrossBursts; b++ {
		at := start + netsim.Time(b)*50*netsim.Millisecond
		sim.At(at, func() {
			for i := 0; i < crossPkts; i++ {
				cross.Send(cross.NewPacket(dst.MAC, dst.IP, 7000, 7001, 958))
			}
		})
	}
	// Instrumented probe stream, one packet every 2ms.
	sent := 0
	tick := sim.Every(start, 2*netsim.Millisecond, func() {
		if sent >= cfg.Packets {
			return
		}
		sent++
		pkt := src.NewPacket(dst.MAC, dst.IP, 7002, 7003, 200)
		pkt.TPP = BreakdownProgram(3)
		pkt.Eth.Type = core.EtherTypeTPP
		src.Send(pkt)
	})
	sim.RunUntil(start + netsim.Time(cfg.Packets)*2*netsim.Millisecond + netsim.Second)
	tick.Stop()

	res := BreakdownResult{Config: cfg, Samples: samples}
	best := -1.0
	for i, h := range hists {
		hs := HopStats{Hop: i, MeanUs: h.Mean(), P99Us: h.Quantile(0.99), MaxUs: h.Quantile(1)}
		res.Hops = append(res.Hops, hs)
		if hs.MeanUs > best {
			best = hs.MeanUs
			res.DominantHop = i
		}
	}
	return res
}
