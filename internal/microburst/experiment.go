package microburst

import (
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Config parameterizes the micro-burst experiment: an incast workload
// (the canonical datacenter source of micro-bursts) on a star topology,
// observed simultaneously by per-packet TPP telemetry and by a coarse
// poller.
type Config struct {
	Senders     int         // incast fan-in
	BurstBytes  int         // bytes each sender contributes per burst
	Period      netsim.Time // burst repetition period
	Bursts      int         // number of synchronized bursts
	EdgeMbps    float64     // link speed
	Threshold   uint32      // burst threshold, bytes of queue
	PollEvery   netsim.Time // baseline polling interval
	JitterMax   netsim.Time // per-sender start jitter within a burst
	PacketBytes int         // payload bytes per data packet
	// SampleEvery instruments every k-th data packet with the
	// telemetry TPP (1 = per-packet, the §2.1 design point; larger
	// values model cheaper, sparser sampling).  Zero means 1.
	SampleEvery int
	Seed        int64

	// Metrics and Trace thread the telemetry subsystem through the
	// switch and register the detector's queue-depth histogram under
	// microburst/queue_depth_bytes; both may be nil.
	Metrics *obs.Registry
	Trace   *obs.Tracer
}

// DefaultConfig is the canonical run: an 8-to-1 incast of 15 KB bursts
// every 100ms on 100 Mb/s links, against a 1-second poller.
func DefaultConfig() Config {
	return Config{
		Senders:     8,
		BurstBytes:  15_000,
		Period:      100 * netsim.Millisecond,
		Bursts:      50,
		EdgeMbps:    100,
		Threshold:   10_000,
		PollEvery:   netsim.Second,
		JitterMax:   200 * netsim.Microsecond,
		PacketBytes: 958,
		Seed:        1,
	}
}

// Result summarizes one run.
type Result struct {
	Config           Config
	BurstsGenerated  int
	Episodes         []Episode // bursts the TPP telemetry detected
	TelemetrySamples int
	TelemetryPeak    uint32
	PollerDetections int
	PollerPolls      int
	PollerPeak       uint32
	MeanEpisodeUs    float64 // mean detected burst duration, microseconds

	// QueueDepth is the telemetry-observed queue-occupancy distribution
	// (the detector's histogram) — percentiles, not just the peak.
	QueueDepth *obs.Histogram
}

// DetectionRateTPP returns the fraction of generated bursts the TPP
// telemetry detected.
func (r Result) DetectionRateTPP() float64 {
	if r.BurstsGenerated == 0 {
		return 0
	}
	return float64(len(r.Episodes)) / float64(r.BurstsGenerated)
}

// DetectionRatePoller returns the fraction the baseline poller caught.
func (r Result) DetectionRatePoller() float64 {
	if r.BurstsGenerated == 0 {
		return 0
	}
	return float64(r.PollerDetections) / float64(r.BurstsGenerated)
}

// Run executes the experiment.
func Run(cfg Config) Result {
	sim := netsim.New(cfg.Seed)
	edge := topo.Mbps(cfg.EdgeMbps, 10*netsim.Microsecond)
	n, hosts, sw := topo.Star(sim, cfg.Senders+1, edge,
		asic.Config{QueueCapBytes: 500_000, Metrics: cfg.Metrics, Trace: cfg.Trace})
	receiver := hosts[cfg.Senders]
	senders := hosts[:cfg.Senders]
	n.PrimeL2(10 * netsim.Millisecond)

	rcvPort := n.AttachmentOf(receiver).Port

	detector := NewDetector(cfg.Threshold, 10*netsim.Millisecond)
	if cfg.Metrics != nil {
		// Register the distribution so it appears in metric snapshots
		// alongside the switch's own queue histograms.
		detector.Depth = cfg.Metrics.Histogram("microburst/queue_depth_bytes")
	}
	receiver.HandleDefault(func(pkt *core.Packet) {
		if pkt.TPP == nil {
			return
		}
		for _, q := range HopQueues(pkt.TPP) {
			detector.Observe(sim.Now(), q)
		}
	})

	var poller Poller
	poller.Attach(sim, sw, rcvPort, cfg.Threshold, cfg.PollEvery)

	// Synchronized incast bursts with small per-sender jitter.
	every := cfg.SampleEvery
	if every <= 0 {
		every = 1
	}
	pkts := (cfg.BurstBytes + cfg.PacketBytes - 1) / cfg.PacketBytes
	start := sim.Now()
	sent := 0
	for b := 0; b < cfg.Bursts; b++ {
		at := start + netsim.Time(b)*cfg.Period
		for _, s := range senders {
			s := s
			jitter := netsim.Time(sim.Rand().Int63n(int64(cfg.JitterMax) + 1))
			sim.At(at+jitter, func() {
				for i := 0; i < pkts; i++ {
					pkt := s.NewPacket(receiver.MAC, receiver.IP, 4000, 4001, cfg.PacketBytes)
					if sent%every == 0 {
						Instrument(pkt, 4)
					}
					sent++
					s.Send(pkt)
				}
			})
		}
	}
	sim.RunUntil(start + netsim.Time(cfg.Bursts)*cfg.Period + netsim.Second)

	episodes := detector.Episodes()
	var meanUs float64
	for _, e := range episodes {
		meanUs += float64(e.Duration()) / float64(netsim.Microsecond)
	}
	if len(episodes) > 0 {
		meanUs /= float64(len(episodes))
	}
	return Result{
		Config:           cfg,
		BurstsGenerated:  cfg.Bursts,
		Episodes:         episodes,
		TelemetrySamples: detector.Observed,
		TelemetryPeak:    detector.Peak,
		PollerDetections: poller.Detections,
		PollerPolls:      poller.Polls,
		PollerPeak:       poller.Peak,
		MeanEpisodeUs:    meanUs,
		QueueDepth:       detector.Depth,
	}
}

// DensityPoint is one point of the sampling-density sweep.
type DensityPoint struct {
	SampleEvery   int
	DetectionRate float64
	Samples       int
}

// SweepDensity runs the incast experiment at several telemetry
// densities, quantifying §2.1's "per-RTT, or even per-packet
// visibility": detection degrades as sampling thins out toward the
// polling regime.
func SweepDensity(base Config, everies []int) []DensityPoint {
	out := make([]DensityPoint, 0, len(everies))
	for _, e := range everies {
		cfg := base
		cfg.SampleEvery = e
		r := Run(cfg)
		out = append(out, DensityPoint{
			SampleEvery:   e,
			DetectionRate: r.DetectionRateTPP(),
			Samples:       r.TelemetrySamples,
		})
	}
	return out
}
