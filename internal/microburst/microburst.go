// Package microburst implements the §2.1 network task: detecting
// short-lived congestion events.  "Queue occupancy fluctuations due to
// small-timescale congestion (i.e., micro-bursts) are hard to detect as
// queues change at timescales of a few RTTs ... Today's monitoring
// mechanisms operate only on timescales that are 10s of seconds at
// best."
//
// The TPP approach annotates every data packet with PUSH
// [Queue:QueueSize]; the receiving end-host streams the per-packet
// snapshots into a Detector that extracts burst episodes.  The Poller
// is the baseline: an SNMP-style collector that reads the same queue
// register on a coarse timer and misses almost everything.
package microburst

import (
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// telemetryIns is the probe's instruction text, shared read-only by
// every instrumented packet: instruction sections are immutable in
// flight (only packet memory mutates), so per-packet instrumentation
// need not copy it.
var telemetryIns = []core.Instruction{
	{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
}

// TelemetryProgram returns the §2.1 probe: one queue-size snapshot per
// hop ("PUSH [Queue:QueueSize] copies the queue register onto packet
// memory").
func TelemetryProgram(maxHops int) *core.TPP {
	return core.NewTPP(core.AddrStack, telemetryIns, maxHops)
}

// Instrument attaches a fresh telemetry TPP to a data packet, turning
// it into a TPP frame that encapsulates the original payload.
func Instrument(pkt *core.Packet, maxHops int) {
	pkt.TPP = TelemetryProgram(maxHops)
	pkt.Eth.Type = core.EtherTypeTPP
}

// HopQueues extracts the recorded per-hop queue sizes from a received
// telemetry packet ("the end-host knows exactly how to interpret values
// in the packet to obtain a detailed breakdown of queueing latencies on
// all network hops").
func HopQueues(t *core.TPP) []uint32 {
	hops := int(t.Ptr) / 4
	out := make([]uint32, 0, hops)
	for i := 0; i < hops; i++ {
		out = append(out, t.Word(i))
	}
	return out
}

// Episode is one detected micro-burst: a maximal run of samples at or
// above the detector threshold.
type Episode struct {
	Start   netsim.Time
	End     netsim.Time
	Peak    uint32
	Samples int
}

// Duration returns the episode length.
func (e Episode) Duration() netsim.Time { return e.End - e.Start }

// Detector turns a stream of (time, queue-size) samples into burst
// episodes.  Samples below the threshold, or gaps longer than maxGap,
// close the current episode.
type Detector struct {
	threshold uint32
	maxGap    netsim.Time

	episodes []Episode
	cur      *Episode

	// Observed counts all samples; Peak tracks the largest queue ever
	// seen through telemetry.
	Observed int
	Peak     uint32

	// Depth is the full queue-depth distribution (log2 buckets), a far
	// richer picture than the single Peak value: percentiles and the
	// shape of the occupancy distribution come from here.
	Depth *obs.Histogram
}

// NewDetector builds a detector flagging queue occupancy at or above
// thresholdBytes, closing episodes after maxGap without a qualifying
// sample.
func NewDetector(thresholdBytes uint32, maxGap netsim.Time) *Detector {
	return &Detector{threshold: thresholdBytes, maxGap: maxGap, Depth: obs.NewHistogram()}
}

// Observe feeds one telemetry sample.
func (d *Detector) Observe(at netsim.Time, queueBytes uint32) {
	d.Observed++
	d.Depth.Observe(uint64(queueBytes))
	if queueBytes > d.Peak {
		d.Peak = queueBytes
	}
	if d.cur != nil && at-d.cur.End > d.maxGap {
		d.flush()
	}
	if queueBytes < d.threshold {
		return
	}
	if d.cur == nil {
		d.cur = &Episode{Start: at, End: at, Peak: queueBytes, Samples: 1}
		return
	}
	d.cur.End = at
	d.cur.Samples++
	if queueBytes > d.cur.Peak {
		d.cur.Peak = queueBytes
	}
}

func (d *Detector) flush() {
	if d.cur != nil {
		d.episodes = append(d.episodes, *d.cur)
		d.cur = nil
	}
}

// Episodes closes any open episode and returns all detected bursts.
func (d *Detector) Episodes() []Episode {
	d.flush()
	return d.episodes
}

// Poller is the baseline monitor: it reads the queue register of one
// egress port on a fixed interval, the way SNMP/sFlow counters are
// scraped.  Detections counts polls that happened to land inside a
// burst.
type Poller struct {
	Detections int
	Polls      int
	Peak       uint32
}

// Attach starts polling (sw, port) every interval against the given
// threshold.
func (p *Poller) Attach(sim *netsim.Sim, sw *asic.Switch, port int, thresholdBytes uint32, interval netsim.Time) {
	sim.Every(sim.Now()+interval, interval, func() {
		q := uint32(sw.Port(port).QueueBytes())
		p.Polls++
		if q > p.Peak {
			p.Peak = q
		}
		if q >= thresholdBytes {
			p.Detections++
		}
	})
}
