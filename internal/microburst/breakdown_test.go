package microburst

import (
	"testing"

	"repro/internal/core"
)

func TestHopLatenciesComputation(t *testing.T) {
	tpp := BreakdownProgram(3)
	// Hop 0: 12500 bytes queued at 1.25 MB/s -> 10000 us.
	tpp.SetWord(0, 12_500)
	tpp.SetWord(1, 1_250_000)
	// Hop 1: empty queue.
	tpp.SetWord(2, 0)
	tpp.SetWord(3, 1_250_000)
	// Hop 2: zero capacity register (unwired port): guarded.
	tpp.SetWord(4, 999)
	tpp.SetWord(5, 0)
	tpp.Ptr = 24

	lats := HopLatencies(tpp)
	if len(lats) != 3 {
		t.Fatalf("hops = %d", len(lats))
	}
	if lats[0] < 9_999 || lats[0] > 10_001 {
		t.Fatalf("hop 0 latency = %f us", lats[0])
	}
	if lats[1] != 0 || lats[2] != 0 {
		t.Fatalf("latencies = %v", lats)
	}
}

func TestBreakdownLocalizesCongestedHop(t *testing.T) {
	res := RunBreakdown(DefaultBreakdownConfig())
	if res.Samples < 300 {
		t.Fatalf("samples = %d", res.Samples)
	}
	if len(res.Hops) != 3 {
		t.Fatalf("hops = %d", len(res.Hops))
	}
	// The cross traffic joins at switch 1 (hop index 1): that hop must
	// dominate the breakdown.
	if res.DominantHop != 1 {
		t.Fatalf("dominant hop = %d, want 1 (per-hop means: %v, %v, %v)",
			res.DominantHop, res.Hops[0].MeanUs, res.Hops[1].MeanUs, res.Hops[2].MeanUs)
	}
	if res.Hops[1].MeanUs < 2*res.Hops[0].MeanUs {
		t.Fatalf("congested hop not clearly dominant: %v vs %v",
			res.Hops[1].MeanUs, res.Hops[0].MeanUs)
	}
	if res.Hops[1].P99Us < res.Hops[1].MeanUs {
		t.Fatal("p99 below mean")
	}
}

func TestBreakdownDeterminism(t *testing.T) {
	cfg := DefaultBreakdownConfig()
	cfg.Packets = 100
	a := RunBreakdown(cfg)
	b := RunBreakdown(cfg)
	if a.Samples != b.Samples || a.Hops[1].MeanUs != b.Hops[1].MeanUs {
		t.Fatal("not deterministic")
	}
}

func TestBreakdownProgramShape(t *testing.T) {
	p := BreakdownProgram(5)
	if len(p.Ins) != 2 || p.MemWords() != 10 {
		t.Fatalf("program: %d ins, %d words", len(p.Ins), p.MemWords())
	}
	if p.Ins[0].Op != core.OpPUSH || p.Ins[1].Op != core.OpPUSH {
		t.Fatal("not a PUSH program")
	}
}
