package microburst

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
)

func TestDetectorEpisodeExtraction(t *testing.T) {
	d := NewDetector(1000, 10*netsim.Millisecond)
	ms := func(m int) netsim.Time { return netsim.Time(m) * netsim.Millisecond }

	// Burst 1: three samples above threshold.
	d.Observe(ms(0), 1500)
	d.Observe(ms(1), 2500)
	d.Observe(ms(2), 1200)
	// Below threshold: not part of any burst.
	d.Observe(ms(3), 100)
	// Burst 2 after a long quiet period.
	d.Observe(ms(50), 3000)
	d.Observe(ms(51), 1000)

	eps := d.Episodes()
	if len(eps) != 2 {
		t.Fatalf("episodes = %d: %+v", len(eps), eps)
	}
	if eps[0].Peak != 2500 || eps[0].Samples != 3 || eps[0].Duration() != ms(2) {
		t.Fatalf("episode 1: %+v", eps[0])
	}
	if eps[1].Peak != 3000 || eps[1].Samples != 2 {
		t.Fatalf("episode 2: %+v", eps[1])
	}
	if d.Peak != 3000 || d.Observed != 6 {
		t.Fatalf("detector stats: peak=%d observed=%d", d.Peak, d.Observed)
	}
}

func TestDetectorGapSplitsEpisodes(t *testing.T) {
	d := NewDetector(1000, 5*netsim.Millisecond)
	d.Observe(0, 2000)
	d.Observe(20*netsim.Millisecond, 2000) // > maxGap: separate burst
	if eps := d.Episodes(); len(eps) != 2 {
		t.Fatalf("episodes = %d", len(eps))
	}
}

func TestDetectorBelowThresholdNoEpisodes(t *testing.T) {
	d := NewDetector(1000, netsim.Millisecond)
	for i := 0; i < 100; i++ {
		d.Observe(netsim.Time(i)*netsim.Millisecond, 500)
	}
	if len(d.Episodes()) != 0 {
		t.Fatal("idle traffic produced episodes")
	}
}

func TestHopQueues(t *testing.T) {
	tpp := TelemetryProgram(4)
	tpp.SetWord(0, 10)
	tpp.SetWord(1, 20)
	tpp.Ptr = 8 // two hops recorded
	qs := HopQueues(tpp)
	if len(qs) != 2 || qs[0] != 10 || qs[1] != 20 {
		t.Fatalf("HopQueues = %v", qs)
	}
}

func TestInstrument(t *testing.T) {
	pkt := &core.Packet{Eth: core.Ethernet{Type: core.EtherTypeIPv4}}
	Instrument(pkt, 5)
	if pkt.TPP == nil || pkt.Eth.Type != core.EtherTypeTPP {
		t.Fatal("Instrument did not attach a TPP")
	}
	if pkt.TPP.MemWords() != 5 {
		t.Fatalf("memory = %d words", pkt.TPP.MemWords())
	}
}

func TestIncastExperimentShape(t *testing.T) {
	// The headline §2.1 claim: per-packet TPP telemetry catches the
	// micro-bursts; 1-second polling misses nearly all of them.
	cfg := DefaultConfig()
	cfg.Bursts = 30
	res := Run(cfg)

	if res.TelemetrySamples == 0 {
		t.Fatal("no telemetry arrived")
	}
	if rate := res.DetectionRateTPP(); rate < 0.9 {
		t.Fatalf("TPP detection rate = %.2f, want >= 0.9 (episodes=%d/%d)",
			rate, len(res.Episodes), res.BurstsGenerated)
	}
	if rate := res.DetectionRatePoller(); rate > 0.3 {
		t.Fatalf("poller detection rate = %.2f, want << 1", rate)
	}
	if res.TelemetryPeak < cfg.Threshold {
		t.Fatalf("telemetry peak = %d below threshold", res.TelemetryPeak)
	}
	if res.TelemetryPeak < res.PollerPeak {
		t.Fatalf("telemetry peak %d < poller peak %d", res.TelemetryPeak, res.PollerPeak)
	}
	// Bursts are micro: 15KB x 8 drains in ~10ms at 100 Mb/s, so mean
	// episode duration must be well under the 100ms period.
	if res.MeanEpisodeUs <= 0 || res.MeanEpisodeUs > 50_000 {
		t.Fatalf("mean episode duration = %.0fus", res.MeanEpisodeUs)
	}
}

func TestIncastDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bursts = 5
	a := Run(cfg)
	b := Run(cfg)
	if a.TelemetrySamples != b.TelemetrySamples || len(a.Episodes) != len(b.Episodes) ||
		a.TelemetryPeak != b.TelemetryPeak {
		t.Fatal("same seed produced different results")
	}
}

func TestSamplingDensitySweep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Bursts = 20
	points := SweepDensity(cfg, []int{1, 4, 64, 1024})
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// Per-packet telemetry catches everything; sparse sampling decays.
	if points[0].DetectionRate < 0.9 {
		t.Fatalf("per-packet detection = %.2f", points[0].DetectionRate)
	}
	if points[3].DetectionRate >= points[0].DetectionRate {
		t.Fatalf("1/1024 sampling (%.2f) not worse than per-packet (%.2f)",
			points[3].DetectionRate, points[0].DetectionRate)
	}
	// Sample counts shrink with the sampling period.
	if points[1].Samples >= points[0].Samples || points[3].Samples >= points[1].Samples {
		t.Fatalf("sample counts not decreasing: %d, %d, %d",
			points[0].Samples, points[1].Samples, points[3].Samples)
	}
}
