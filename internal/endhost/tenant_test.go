package endhost

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
)

// The NIC is the guard's trusted edge: Send must stamp its configured
// tenant id on every outgoing TPP, overwriting whatever the guest
// wrote — a guest cannot claim another tenant's identity, least of all
// the operator's.
func TestNICSealsTenant(t *testing.T) {
	sim := netsim.New(1)
	a, b := pair(sim, 8_000_000)
	a.NIC.SetTenant(4)
	if a.NIC.Tenant() != 4 {
		t.Fatalf("Tenant() = %d", a.NIC.Tenant())
	}

	forged := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
	}, 2)
	forged.Tenant = 0 // the guest claims to be the operator
	pkt := &core.Packet{
		Eth: core.Ethernet{Dst: b.MAC, Src: a.MAC, Type: core.EtherTypeTPP},
		TPP: forged,
		IP:  &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: a.IP, Dst: b.IP},
		UDP: &core.UDP{SrcPort: 1, DstPort: 9},
	}
	if !a.Send(pkt) {
		t.Fatal("send failed")
	}
	if forged.Tenant != 4 {
		t.Fatalf("sealed tenant = %d, want 4", forged.Tenant)
	}

	// Non-TPP packets are untouched and an unconfigured NIC stamps the
	// operator id.
	if !b.Send(b.NewPacket(a.MAC, a.IP, 1, 2, 100)) {
		t.Fatal("plain send failed")
	}
	echo := core.NewTPP(core.AddrStack, nil, 1)
	echo.Tenant = 200
	if !b.Send(&core.Packet{
		Eth: core.Ethernet{Dst: a.MAC, Src: b.MAC, Type: core.EtherTypeTPP},
		TPP: echo,
		IP:  &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: b.IP, Dst: a.IP},
		UDP: &core.UDP{SrcPort: 1, DstPort: 9},
	}) {
		t.Fatal("send failed")
	}
	if echo.Tenant != 0 {
		t.Fatalf("unconfigured NIC sealed tenant %d, want operator", echo.Tenant)
	}
	sim.Run()
}
