package endhost

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
)

// probeProg is a no-op TPP with one word of packet memory.
func probeProg() *core.TPP { return core.NewTPP(core.AddrStack, nil, 1) }

// lossyPair wires two hosts back to back and returns a's egress
// channel so tests can inject faults on the probe's forward path.
func lossyPair(sim *netsim.Sim, rate int64) (*Host, *Host, *netsim.Channel) {
	a := NewHost(sim, core.MACFromUint64(1), core.IPv4Addr(10, 0, 0, 1))
	b := NewHost(sim, core.MACFromUint64(2), core.IPv4Addr(10, 0, 0, 2))
	up := netsim.NewChannel(sim, rate, netsim.Microsecond, b, 0)
	a.NIC.Attach(up)
	b.NIC.Attach(netsim.NewChannel(sim, rate, netsim.Microsecond, a, 0))
	return a, b, up
}

// TestProbeTimeoutReaps: a probe whose echo is blackholed must be
// reaped at its deadline — the pending map stays bounded and the
// failure callback fires exactly once.
func TestProbeTimeoutReaps(t *testing.T) {
	sim := netsim.New(1)
	a, b, up := lossyPair(sim, 8_000_000)
	up.SetLoss(1, 5) // total blackout on the forward path
	p := NewProber(a)

	var failed, echoed int
	_, ok := p.ProbeCfg(b.MAC, b.IP, probeProg(),
		ProbeConfig{Timeout: 10 * netsim.Millisecond},
		func(*core.TPP) { echoed++ }, func() { failed++ })
	if !ok {
		t.Fatal("probe not registered")
	}
	if p.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d", p.Outstanding())
	}
	sim.RunUntil(time100ms)
	if failed != 1 || echoed != 0 {
		t.Fatalf("failed=%d echoed=%d, want 1/0", failed, echoed)
	}
	if p.Outstanding() != 0 {
		t.Fatal("timed-out probe not reaped from pending")
	}
	if p.TimedOut != 1 {
		t.Fatalf("TimedOut = %d", p.TimedOut)
	}
}

const time100ms = 100 * netsim.Millisecond

// TestProbeRetrySucceedsAfterOutage: the link blackholes the first
// attempt, then recovers; the retransmission gets through and the
// success callback runs with a fully executed program.
func TestProbeRetrySucceedsAfterOutage(t *testing.T) {
	sim := netsim.New(1)
	a, b, up := lossyPair(sim, 8_000_000)
	up.SetUp(false)
	sim.At(15*netsim.Millisecond, func() { up.SetUp(true) })
	p := NewProber(a)

	var echoed, failed int
	p.ProbeCfg(b.MAC, b.IP, probeProg(),
		ProbeConfig{Timeout: 10 * netsim.Millisecond, Retries: 3, Backoff: 2},
		func(*core.TPP) { echoed++ }, func() { failed++ })
	sim.RunUntil(time100ms)

	if echoed != 1 || failed != 0 {
		t.Fatalf("echoed=%d failed=%d, want 1/0", echoed, failed)
	}
	if p.Retransmits == 0 {
		t.Fatal("recovery did not use a retransmission")
	}
	if p.Outstanding() != 0 {
		t.Fatal("answered probe left pending")
	}
}

// TestProbeRetryBackoffExhausts: with the link down for good, attempts
// space out by the backoff factor and the probe eventually fails after
// exactly Retries retransmissions.
func TestProbeRetryBackoffExhausts(t *testing.T) {
	sim := netsim.New(1)
	a, b, up := lossyPair(sim, 8_000_000)
	up.SetUp(false)
	p := NewProber(a)

	var failedAt netsim.Time
	p.ProbeCfg(b.MAC, b.IP, probeProg(),
		ProbeConfig{Timeout: 10 * netsim.Millisecond, Retries: 2, Backoff: 2},
		func(*core.TPP) { t.Fatal("echo on a dead link") },
		func() { failedAt = sim.Now() })
	sim.RunUntil(netsim.Second)

	// Deadlines: 10ms, then +20ms, then +40ms -> reap at 70ms.
	if failedAt != 70*netsim.Millisecond {
		t.Fatalf("reaped at %v, want 70ms (10+20+40 backoff)", failedAt)
	}
	if p.Retransmits != 2 || p.TimedOut != 1 {
		t.Fatalf("Retransmits=%d TimedOut=%d, want 2/1", p.Retransmits, p.TimedOut)
	}
}

// TestProbeRetryResendsFreshProgram: retransmissions must carry a
// pristine clone, not the partially executed TPP mutated in flight, so
// the eventual echo records exactly one walk.
func TestProbeRetryResendsFreshProgram(t *testing.T) {
	sim := netsim.New(1)
	a, b, up := lossyPair(sim, 8_000_000)
	up.SetUp(false)
	sim.At(15*netsim.Millisecond, func() { up.SetUp(true) })
	p := NewProber(a)

	var echo *core.TPP
	p.ProbeCfg(b.MAC, b.IP, probeProg(),
		ProbeConfig{Timeout: 10 * netsim.Millisecond, Retries: 2, Backoff: 2},
		func(e *core.TPP) { echo = e }, nil)
	sim.RunUntil(time100ms)
	if echo == nil {
		t.Fatal("no echo")
	}
	if echo.Ptr != 0 {
		t.Fatalf("retransmitted program arrived pre-executed: SP=%d", echo.Ptr)
	}
}

// TestProbeGroupPartialOnSendFailure: when the NIC drops some of a
// group's sends, the group must still complete, delivering nil for the
// dropped members instead of leaking its callback forever.
func TestProbeGroupPartialOnSendFailure(t *testing.T) {
	sim := netsim.New(1)
	a, b, _ := lossyPair(sim, 8_000_000)
	a.NIC.max = 2 // first send transmits, second queues, rest tail-drop
	p := NewProber(a)

	tpps := []*core.TPP{probeProg(), probeProg(), probeProg(), probeProg()}
	var got []*core.TPP
	if !p.ProbeGroup(b.MAC, b.IP, tpps, func(g []*core.TPP) { got = g }) {
		t.Fatal("group with deliverable members reported total failure")
	}
	sim.RunUntil(time100ms)

	if got == nil {
		t.Fatal("group callback never fired (leaked)")
	}
	if len(got) != 4 {
		t.Fatalf("results len = %d", len(got))
	}
	okCount := 0
	for _, e := range got {
		if e != nil {
			okCount++
		}
	}
	if okCount != 3 {
		t.Fatalf("resolved echoes = %d, want 3 (one tail-dropped)", okCount)
	}
	if p.Outstanding() != 0 {
		t.Fatalf("stale cookies survive: Outstanding = %d", p.Outstanding())
	}
}

// TestProbeGroupPartialOnEchoLoss: with deadlines configured, a group
// member whose echo is lost resolves as nil and the group completes.
func TestProbeGroupPartialOnEchoLoss(t *testing.T) {
	// 100 kb/s: each ~60-byte probe occupies the wire for ~5 ms, so
	// the three members are spaced out by serialization.
	sim := netsim.New(2)
	a, b, up := lossyPair(sim, 100_000)
	p := NewProber(a)
	p.SetDefaults(ProbeConfig{Timeout: 30 * netsim.Millisecond})

	// Kill the forward path after the first member is on the wire:
	// member 0 echoes, the rest vanish.
	sim.At(5*netsim.Millisecond, func() { up.SetUp(false) })

	tpps := []*core.TPP{probeProg(), probeProg(), probeProg()}
	var got []*core.TPP
	p.ProbeGroup(b.MAC, b.IP, tpps, func(g []*core.TPP) { got = g })
	sim.RunUntil(time100ms)

	if got == nil {
		t.Fatal("group never completed despite deadlines")
	}
	if got[0] == nil {
		t.Fatal("surviving member lost its echo")
	}
	if got[1] != nil || got[2] != nil {
		t.Fatal("blackholed members delivered a result")
	}
	if p.Outstanding() != 0 {
		t.Fatal("group left pending cookies behind")
	}
}

// TestProbeGroupAllSendsFail: a group none of whose members could be
// sent returns false and never calls fn.
func TestProbeGroupAllSendsFail(t *testing.T) {
	sim := netsim.New(1)
	a, b, _ := lossyPair(sim, 8_000_000)
	a.NIC.max = 1
	// Fill the NIC so every group send tail-drops.
	for i := 0; i < 3; i++ {
		a.Send(a.NewPacket(b.MAC, b.IP, 1, 2, 1400))
	}
	p := NewProber(a)
	called := false
	if p.ProbeGroup(b.MAC, b.IP, []*core.TPP{probeProg(), probeProg()},
		func([]*core.TPP) { called = true }) {
		t.Fatal("undeliverable group reported success")
	}
	sim.RunUntil(time100ms)
	if called {
		t.Fatal("fn ran for a group that sent nothing")
	}
	if p.Outstanding() != 0 {
		t.Fatal("failed group registered cookies")
	}
}

// TestProbeCancel: a cancelled cookie runs neither callback, and its
// armed deadline is a no-op.
func TestProbeCancel(t *testing.T) {
	sim := netsim.New(1)
	a, b, up := lossyPair(sim, 8_000_000)
	up.SetUp(false)
	p := NewProber(a)

	cookie, ok := p.ProbeCfg(b.MAC, b.IP, probeProg(),
		ProbeConfig{Timeout: 10 * netsim.Millisecond, Retries: 1},
		func(*core.TPP) { t.Fatal("echo after cancel") },
		func() { t.Fatal("failure callback after cancel") })
	if !ok {
		t.Fatal("probe not registered")
	}
	if !p.Cancel(cookie) {
		t.Fatal("Cancel missed a pending cookie")
	}
	if p.Cancel(cookie) {
		t.Fatal("double Cancel reported success")
	}
	sim.RunUntil(time100ms)
}

// TestLegacyProbeUnchanged: the zero config keeps the original
// contract — no deadline, entry pending until echo or Forget.
func TestLegacyProbeUnchanged(t *testing.T) {
	sim := netsim.New(1)
	a, b, up := lossyPair(sim, 8_000_000)
	up.SetLoss(1, 9)
	p := NewProber(a)

	if !p.Probe(b.MAC, b.IP, probeProg(), func(*core.TPP) { t.Fatal("echo through blackout") }) {
		t.Fatal("send failed")
	}
	sim.RunUntil(netsim.Second)
	if p.Outstanding() != 1 {
		t.Fatalf("legacy probe reaped without a deadline: Outstanding = %d", p.Outstanding())
	}
	p.Forget()
	if p.Outstanding() != 0 {
		t.Fatal("Forget left entries")
	}
}
