package endhost

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
)

// pair wires two hosts back to back (no switch): enough to exercise
// NIC queueing, demultiplexing, echoes and the prober.
func pair(sim *netsim.Sim, rate int64) (*Host, *Host) {
	a := NewHost(sim, core.MACFromUint64(1), core.IPv4Addr(10, 0, 0, 1))
	b := NewHost(sim, core.MACFromUint64(2), core.IPv4Addr(10, 0, 0, 2))
	a.NIC.Attach(netsim.NewChannel(sim, rate, netsim.Microsecond, b, 0))
	b.NIC.Attach(netsim.NewChannel(sim, rate, netsim.Microsecond, a, 0))
	return a, b
}

func TestNICQueueAndDrops(t *testing.T) {
	sim := netsim.New(1)
	a, b := pair(sim, 8_000_000)
	a.NIC.max = 4

	for i := 0; i < 10; i++ {
		a.Send(a.NewPacket(b.MAC, b.IP, 1, 2, 1000))
	}
	// One packet transmits immediately; 4 queue; 5 drop.
	if a.NIC.Drops != 5 {
		t.Fatalf("drops = %d", a.NIC.Drops)
	}
	sim.Run()
	if b.Received != 5 {
		t.Fatalf("delivered = %d", b.Received)
	}
	if a.NIC.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
	if a.NIC.Sent != 5 {
		t.Fatalf("sent = %d", a.NIC.Sent)
	}
}

func TestHostDemux(t *testing.T) {
	sim := netsim.New(1)
	a, b := pair(sim, 8_000_000)

	var got7, gotDefault int
	b.Handle(7, func(p *core.Packet) { got7++ })
	b.HandleDefault(func(p *core.Packet) { gotDefault++ })

	a.Send(a.NewPacket(b.MAC, b.IP, 1, 7, 10))
	a.Send(a.NewPacket(b.MAC, b.IP, 1, 8, 10))
	sim.Run()
	if got7 != 1 || gotDefault != 1 {
		t.Fatalf("demux: port7=%d default=%d", got7, gotDefault)
	}
	if b.Received != 2 {
		t.Fatalf("Received = %d", b.Received)
	}
}

func TestEchoCarriesExecutedState(t *testing.T) {
	sim := netsim.New(1)
	a, b := pair(sim, 8_000_000)

	// Hand-craft an "executed" TPP (no switch between the hosts, so
	// we pre-fill the state the network would have written).
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase)},
	}, 2)
	tpp.SetWord(0, 4242)
	tpp.Ptr = 4

	prober := NewProber(a)
	var echoed *core.TPP
	ok := prober.Probe(b.MAC, b.IP, tpp, func(e *core.TPP) { echoed = e })
	if !ok {
		t.Fatal("probe send failed")
	}
	sim.Run()

	if echoed == nil {
		t.Fatal("no echo")
	}
	if echoed.Word(0) != 4242 || echoed.Ptr != 4 {
		t.Fatalf("echo lost executed state: %+v", echoed)
	}
	if b.EchoesSent != 1 {
		t.Fatalf("EchoesSent = %d", b.EchoesSent)
	}
	if prober.Matched != 1 || prober.Outstanding() != 0 {
		t.Fatalf("prober state: matched=%d outstanding=%d", prober.Matched, prober.Outstanding())
	}
	// Probes do not count as received data.
	if b.Received != 0 {
		t.Fatalf("probe counted as data: %d", b.Received)
	}
}

func TestProbeGroupCompletion(t *testing.T) {
	sim := netsim.New(1)
	a, b := pair(sim, 8_000_000)
	prober := NewProber(a)

	tpps := []*core.TPP{
		core.NewTPP(core.AddrStack, nil, 1),
		core.NewTPP(core.AddrStack, nil, 2),
		core.NewTPP(core.AddrStack, nil, 3),
	}
	var got []*core.TPP
	prober.ProbeGroup(b.MAC, b.IP, tpps, func(g []*core.TPP) { got = g })
	sim.Run()
	if got == nil {
		t.Fatal("group never completed")
	}
	for i, e := range got {
		if e.MemWords() != i+1 {
			t.Fatalf("group order broken: slot %d has %d words", i, e.MemWords())
		}
	}
}

func TestProberForget(t *testing.T) {
	sim := netsim.New(1)
	a, b := pair(sim, 8_000_000)
	prober := NewProber(a)
	called := false
	prober.Probe(b.MAC, b.IP, core.NewTPP(core.AddrStack, nil, 1), func(*core.TPP) { called = true })
	prober.Forget()
	sim.Run()
	if called {
		t.Fatal("forgotten probe callback ran")
	}
	if prober.Outstanding() != 0 {
		t.Fatal("Forget left pending probes")
	}
}

func TestMalformedEchoCounted(t *testing.T) {
	sim := netsim.New(1)
	a, b := pair(sim, 8_000_000)
	prober := NewProber(a)
	// A bogus packet straight to the echo-reply port.
	pkt := b.NewPacket(a.MAC, a.IP, ProbeEchoPort, EchoReplyPort, 0)
	pkt.Payload = []byte{1, 2, 3}
	b.Send(pkt)
	sim.Run()
	if prober.Malformed != 1 {
		t.Fatalf("Malformed = %d", prober.Malformed)
	}
}

func TestCollectProgram(t *testing.T) {
	stats := []mem.Addr{mem.SwitchBase, mem.PortBase, mem.QueueBase}
	tpp, err := CollectProgram(stats, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpp.Ins) != 3 || tpp.MemWords() != 15 {
		t.Fatalf("program: %d ins, %d words", len(tpp.Ins), tpp.MemWords())
	}
	for i, a := range stats {
		if tpp.Ins[i].Op != core.OpPUSH || tpp.Ins[i].A != uint16(a) {
			t.Fatalf("ins %d = %+v", i, tpp.Ins[i])
		}
	}
	if _, err := CollectProgram(make([]mem.Addr, 6), 5, 5); err == nil {
		t.Fatal("over-limit program accepted")
	}
}

func TestSplitCollect(t *testing.T) {
	stats := make([]mem.Addr, 12)
	tpps, err := SplitCollect(stats, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpps) != 3 {
		t.Fatalf("split into %d", len(tpps))
	}
	if len(tpps[0].Ins) != 5 || len(tpps[2].Ins) != 2 {
		t.Fatalf("split sizes: %d, %d, %d",
			len(tpps[0].Ins), len(tpps[1].Ins), len(tpps[2].Ins))
	}
	if _, err := SplitCollect(stats, 3, 0); err == nil {
		t.Fatal("zero limit accepted")
	}
}

func TestBroadcastPrimesPath(t *testing.T) {
	sim := netsim.New(1)
	a, b := pair(sim, 8_000_000)
	if !a.Broadcast() {
		t.Fatal("broadcast send failed")
	}
	sim.Run()
	if b.Received != 1 {
		t.Fatalf("broadcast delivered %d", b.Received)
	}
}
