package endhost

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

func TestGatedChunkProgramShape(t *testing.T) {
	addrs := []mem.Addr{mem.SRAMBase, mem.SRAMBase + 1, mem.SRAMBase + 2}
	tpp, err := GatedChunkProgram(9, addrs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tpp.Ins); got != 5 {
		t.Fatalf("instruction count = %d", got)
	}
	if tpp.Ins[0].Op != core.OpCEXEC {
		t.Fatalf("first op = %v", tpp.Ins[0].Op)
	}
	if tpp.MemWords() != 6 {
		t.Fatalf("MemWords = %d", tpp.MemWords())
	}
	if tpp.Word(1) != 9 {
		t.Fatalf("gate switch id word = %d", tpp.Word(1))
	}
	for w := 2; w < 6; w++ {
		if tpp.Word(w) != Unexecuted {
			t.Fatalf("result word %d not sentinel: %#x", w, tpp.Word(w))
		}
	}
	// Over-full and empty chunks are rejected.
	if _, err := GatedChunkProgram(9, make([]mem.Addr, 4), 5); err == nil {
		t.Fatal("4 addrs fit a 5-instruction chunk?")
	}
	if _, err := GatedChunkProgram(9, nil, 5); err == nil {
		t.Fatal("empty chunk accepted")
	}
	if GatedChunkWords(5) != 3 {
		t.Fatalf("GatedChunkWords(5) = %d", GatedChunkWords(5))
	}
}

func TestDecodeGatedChunkAllOrNothing(t *testing.T) {
	tpp, err := GatedChunkProgram(3, []mem.Addr{mem.SRAMBase, mem.SRAMBase + 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Never executed: every slot still sentinel.
	if _, _, ok := DecodeGatedChunk(tpp, 2); ok {
		t.Fatal("decoded a chunk that never executed")
	}
	// Executed: epoch and both values filled.
	tpp.SetWord(2, 4)
	tpp.SetWord(3, 100)
	tpp.SetWord(4, 200)
	epoch, vals, ok := DecodeGatedChunk(tpp, 2)
	if !ok || epoch != 4 || vals[0] != 100 || vals[1] != 200 {
		t.Fatalf("decode: ok=%v epoch=%d vals=%v", ok, epoch, vals)
	}
	// A partially-filled echo (value slot still sentinel) is dropped
	// whole rather than folded half-garbage.
	tpp.SetWord(4, Unexecuted)
	if _, _, ok := DecodeGatedChunk(tpp, 2); ok {
		t.Fatal("decoded a chunk with a sentinel value slot")
	}
	// Nil and short echoes are rejected.
	if _, _, ok := DecodeGatedChunk(nil, 2); ok {
		t.Fatal("decoded nil echo")
	}
	if _, _, ok := DecodeGatedChunk(tpp, 10); ok {
		t.Fatal("decoded echo shorter than requested")
	}
}
