package endhost

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
)

// Unexecuted is the sentinel result slots are pre-filled with before a
// gated probe departs.  A TPP can come back echoed without having
// executed at the gated switch — throttled by an admission gate,
// stripped en route, or halted by its CEXEC at every hop — and its
// result words then still hold whatever the sender wrote.  Zero would
// be ambiguous (a counter can legitimately be zero), so the sentinel
// makes "the program never ran there" distinguishable from every
// plausible executed outcome.  (A word that actually reaches
// 0xFFFFFFFF aliases the sentinel; 32-bit tallies are re-based long
// before that.)
const Unexecuted = ^uint32(0)

// gatedOverhead is the instruction cost of the gate: the CEXEC switch
// match plus the atomic [Switch:Epoch] read.
const gatedOverhead = 2

// GatedChunkWords returns how many region words one gated chunk probe
// can read under the device instruction limit.
func GatedChunkWords(insLimit int) int { return insLimit - gatedOverhead }

// GatedChunkProgram builds one sweep probe: gated by CEXEC to execute
// only at the switch with the given id, it reads the switch's boot
// epoch and up to insLimit-2 region words in a single TCPU execution —
// atomically, so a crash-restart can never interleave between the
// epoch and the values it vouches for.  Packet memory layout:
//
//	word 0: 0xFFFFFFFF           (CEXEC mask)
//	word 1: switchID             (CEXEC value)
//	word 2: [Switch:Epoch]       (result; Unexecuted until it runs)
//	word 3+i: addrs[i]           (results; Unexecuted until it runs)
func GatedChunkProgram(switchID uint32, addrs []mem.Addr, insLimit int) (*core.TPP, error) {
	if len(addrs) == 0 || len(addrs) > GatedChunkWords(insLimit) {
		return nil, fmt.Errorf("endhost: %d addresses do not fit a %d-instruction gated chunk", len(addrs), insLimit)
	}
	ins := make([]core.Instruction, 0, gatedOverhead+len(addrs))
	ins = append(ins,
		core.Instruction{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
		core.Instruction{Op: core.OpLOAD, A: uint16(mem.SwitchBase + mem.SwitchEpoch), B: 2},
	)
	for i, a := range addrs {
		ins = append(ins, core.Instruction{Op: core.OpLOAD, A: uint16(a), B: uint16(3 + i)})
	}
	tpp := core.NewTPP(core.AddrStack, ins, 3+len(addrs))
	tpp.SetWord(0, 0xFFFFFFFF)
	tpp.SetWord(1, switchID)
	for w := 2; w < 3+len(addrs); w++ {
		tpp.SetWord(w, Unexecuted)
	}
	return tpp, nil
}

// DecodeGatedChunk extracts a gated chunk probe's results from its
// echo.  ok is false when the program never executed at the gated
// switch (the epoch slot still holds the sentinel) or any value slot
// does — the caller should drop the whole chunk and let the next sweep
// re-read it, rather than fold garbage.
func DecodeGatedChunk(e *core.TPP, n int) (epoch uint32, vals []uint32, ok bool) {
	if e == nil || e.MemWords() < 3+n {
		return 0, nil, false
	}
	epoch = e.Word(2)
	if epoch == Unexecuted {
		return 0, nil, false
	}
	vals = make([]uint32, n)
	for i := range vals {
		vals[i] = e.Word(3 + i)
		if vals[i] == Unexecuted {
			return 0, nil, false
		}
	}
	return epoch, vals, true
}
