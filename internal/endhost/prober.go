package endhost

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
)

// Prober sends TPP probe packets and collects their echoes.  One
// Prober per host handles any number of destinations and outstanding
// probes; echoes are matched by a cookie carried in the probe payload.
type Prober struct {
	host    *Host
	next    uint32
	pending map[uint32]func(*core.TPP)

	// Sent and Matched count probes and successfully matched echoes.
	Sent    uint64
	Matched uint64
	// Malformed counts echo packets that failed to parse.
	Malformed uint64
}

// NewProber builds a prober and claims the host's echo-reply port.
func NewProber(h *Host) *Prober {
	p := &Prober{host: h, pending: make(map[uint32]func(*core.TPP))}
	h.Handle(EchoReplyPort, p.onEcho)
	return p
}

// Outstanding returns the number of probes awaiting echoes.
func (p *Prober) Outstanding() int { return len(p.pending) }

// Probe sends tpp toward the destination host; fn runs when the echo
// returns, with the executed program (its packet memory filled in by
// the switches on the forward path).  Probes are subject to congestion
// and can be lost; lost probes simply never call fn, and Forget can
// reap them.
func (p *Prober) Probe(dstMAC core.MAC, dstIP uint32, tpp *core.TPP, fn func(*core.TPP)) bool {
	p.next++
	cookie := p.next
	payload := binary.BigEndian.AppendUint32(nil, cookie)
	pkt := &core.Packet{
		Eth: core.Ethernet{Dst: dstMAC, Src: p.host.MAC, Type: core.EtherTypeTPP},
		TPP: tpp,
		IP: &core.IPv4{TTL: 64, Proto: core.ProtoUDP,
			Src: p.host.IP, Dst: dstIP},
		UDP:     &core.UDP{SrcPort: EchoReplyPort, DstPort: ProbeEchoPort},
		Payload: payload,
		Meta:    core.Metadata{UID: p.host.uid()},
	}
	if !p.host.Send(pkt) {
		return false
	}
	p.Sent++
	p.pending[cookie] = fn
	return true
}

// ProbeGroup sends several TPPs as one logical multi-packet program
// ("end-hosts can use multiple packets if a single packet is
// insufficient for a network task", §2) and calls fn once every echo
// has returned, in sending order.
func (p *Prober) ProbeGroup(dstMAC core.MAC, dstIP uint32, tpps []*core.TPP, fn func([]*core.TPP)) bool {
	results := make([]*core.TPP, len(tpps))
	remaining := len(tpps)
	ok := true
	for i, tpp := range tpps {
		i := i
		sent := p.Probe(dstMAC, dstIP, tpp, func(echoed *core.TPP) {
			results[i] = echoed
			remaining--
			if remaining == 0 {
				fn(results)
			}
		})
		ok = ok && sent
	}
	return ok
}

// Forget drops the pending callback for every outstanding probe; used
// by periodic controllers that supersede unanswered probes.
func (p *Prober) Forget() { clear(p.pending) }

// onEcho parses an echo packet: serialized executed TPP followed by the
// 4-byte cookie.
func (p *Prober) onEcho(pkt *core.Packet) {
	var tpp core.TPP
	n, err := core.ParseTPP(pkt.Payload, &tpp)
	if err != nil || len(pkt.Payload) < n+4 {
		p.Malformed++
		return
	}
	cookie := binary.BigEndian.Uint32(pkt.Payload[n:])
	fn, ok := p.pending[cookie]
	if !ok {
		return // superseded or duplicate
	}
	delete(p.pending, cookie)
	p.Matched++
	fn(&tpp)
}

// CollectProgram builds the canonical collect-phase probe: one PUSH per
// statistic per hop, with packet memory sized for maxHops hops.  It
// fails if the statistic list exceeds the device instruction limit —
// use SplitCollect to spread the list across multiple TPPs.
func CollectProgram(stats []mem.Addr, maxHops, insLimit int) (*core.TPP, error) {
	if len(stats) > insLimit {
		return nil, fmt.Errorf("endhost: %d statistics exceed the %d-instruction limit", len(stats), insLimit)
	}
	ins := make([]core.Instruction, len(stats))
	for i, a := range stats {
		ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(a)}
	}
	return core.NewTPP(core.AddrStack, ins, len(stats)*maxHops), nil
}

// SplitCollect splits a statistic list into as many collect TPPs as the
// instruction limit requires: the multi-packet TPP mechanism.
func SplitCollect(stats []mem.Addr, maxHops, insLimit int) ([]*core.TPP, error) {
	if insLimit <= 0 {
		return nil, fmt.Errorf("endhost: instruction limit must be positive")
	}
	var out []*core.TPP
	for len(stats) > 0 {
		n := min(insLimit, len(stats))
		tpp, err := CollectProgram(stats[:n], maxHops, insLimit)
		if err != nil {
			return nil, err
		}
		out = append(out, tpp)
		stats = stats[n:]
	}
	return out, nil
}
