package endhost

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
)

// ProbeConfig bounds one probe's lifetime.  The zero value reproduces
// the legacy fire-and-wait behavior: no deadline, no retries, the
// pending entry lives until the echo arrives or the prober forgets it.
type ProbeConfig struct {
	// Timeout is how long to wait for the echo before the attempt is
	// declared lost.  Zero means wait forever (and disables retries,
	// since there is no timer to drive them).
	Timeout netsim.Time
	// Retries is how many times a timed-out (or send-dropped) probe
	// is retransmitted before it is reaped and its failure callback
	// runs.
	Retries int
	// Backoff scales the timeout after every retransmission; values
	// below 1 are treated as 1 (constant timeout).  The conventional
	// choice is 2 (exponential backoff).
	Backoff float64
}

func (c ProbeConfig) nextTimeout(cur netsim.Time) netsim.Time {
	b := c.Backoff
	if b < 1 {
		b = 1
	}
	return netsim.Time(float64(cur) * b)
}

// pendingProbe is one outstanding probe's bookkeeping.
type pendingProbe struct {
	fn     func(*core.TPP)
	onFail func()
	cfg    ProbeConfig

	// pristine is an unexecuted copy of the program, kept for
	// retransmission: the network executes (and mutates) the TPP the
	// packet carries, so resends need a fresh clone.
	pristine *core.TPP
	dstMAC   core.MAC
	dstIP    uint32

	attempt int
	timeout netsim.Time
}

// Prober sends TPP probe packets and collects their echoes.  One
// Prober per host handles any number of destinations and outstanding
// probes; echoes are matched by a cookie carried in the probe payload.
// Probes are subject to congestion and loss: give them a deadline
// (ProbeConfig) and the prober reaps or retransmits them, keeping the
// pending set bounded even on a faulty network.
type Prober struct {
	host     *Host
	next     uint32
	pending  map[uint32]*pendingProbe
	defaults ProbeConfig
	epochs   *EpochTracker

	// Sent and Matched count probe transmissions (including
	// retransmissions) and successfully matched echoes.
	Sent    uint64
	Matched uint64
	// Malformed counts echo packets that failed to parse.
	Malformed uint64
	// Retransmits counts timed-out attempts that were resent.
	Retransmits uint64
	// TimedOut counts probes reaped after exhausting their retries.
	TimedOut uint64
}

// NewProber builds a prober and claims the host's echo-reply port.
func NewProber(h *Host) *Prober {
	p := &Prober{host: h, pending: make(map[uint32]*pendingProbe)}
	h.Handle(EchoReplyPort, p.onEcho)
	return p
}

// SetDefaults installs the ProbeConfig that Probe and ProbeGroup use.
func (p *Prober) SetDefaults(cfg ProbeConfig) { p.defaults = cfg }

// SetEpochTracker attaches a tracker that scans every parseable echo —
// matched or not — for per-hop boot epochs, so any collect probe that
// happens to read [Switch:Epoch] doubles as a crash detector.  Pass nil
// to detach.
func (p *Prober) SetEpochTracker(t *EpochTracker) { p.epochs = t }

// Outstanding returns the number of probes awaiting echoes.
func (p *Prober) Outstanding() int { return len(p.pending) }

// After runs fn once d has elapsed on the host's clock.  Probe clients
// use it to pace their own application-level retries — e.g. backing
// off after an echo shows the program was throttled by an admission
// gate — without reaching into the simulator directly.
func (p *Prober) After(d netsim.Time, fn func()) { p.host.Sim.After(d, fn) }

// Probe sends tpp toward the destination host; fn runs when the echo
// returns, with the executed program (its packet memory filled in by
// the switches on the forward path).  The prober's default ProbeConfig
// governs deadline and retries; with the zero default, lost probes
// simply never call fn and Forget can reap them.
func (p *Prober) Probe(dstMAC core.MAC, dstIP uint32, tpp *core.TPP, fn func(*core.TPP)) bool {
	_, ok := p.ProbeCfg(dstMAC, dstIP, tpp, p.defaults, fn, nil)
	return ok
}

// ProbeCfg sends tpp with an explicit per-probe config.  Exactly one
// of fn (echo arrived) and onFail (deadline and retries exhausted)
// eventually runs for a registered probe; onFail requires a nonzero
// Timeout to ever fire.  It returns the probe's cookie and whether the
// probe was registered: ok == false means nothing was sent and neither
// callback will run.
func (p *Prober) ProbeCfg(dstMAC core.MAC, dstIP uint32, tpp *core.TPP,
	cfg ProbeConfig, fn func(*core.TPP), onFail func()) (cookie uint32, ok bool) {
	p.next++
	cookie = p.next
	pp := &pendingProbe{
		fn: fn, onFail: onFail, cfg: cfg,
		dstMAC: dstMAC, dstIP: dstIP,
		timeout: cfg.Timeout,
	}
	retriable := cfg.Timeout > 0 && cfg.Retries > 0
	if retriable {
		pp.pristine = tpp.Clone()
	}
	sent := p.send(cookie, dstMAC, dstIP, tpp)
	if !sent && !retriable {
		// Nothing in flight and no timer to drive a retry: fail fast
		// so callers can unwind instead of leaking a cookie.
		return cookie, false
	}
	p.pending[cookie] = pp
	if cfg.Timeout > 0 {
		p.scheduleExpiry(cookie, pp)
	}
	return cookie, true
}

// send builds and transmits one probe attempt.
func (p *Prober) send(cookie uint32, dstMAC core.MAC, dstIP uint32, tpp *core.TPP) bool {
	payload := binary.BigEndian.AppendUint32(nil, cookie)
	pkt := &core.Packet{
		Eth: core.Ethernet{Dst: dstMAC, Src: p.host.MAC, Type: core.EtherTypeTPP},
		TPP: tpp,
		IP: &core.IPv4{TTL: 64, Proto: core.ProtoUDP,
			Src: p.host.IP, Dst: dstIP},
		UDP:     &core.UDP{SrcPort: EchoReplyPort, DstPort: ProbeEchoPort},
		Payload: payload,
		Meta:    core.Metadata{UID: p.host.uid()},
	}
	if !p.host.Send(pkt) {
		return false
	}
	p.Sent++
	return true
}

// scheduleExpiry arms the deadline for the probe's current attempt.
// The timer is a no-op if the probe was answered, cancelled or already
// retransmitted by the time it fires.
func (p *Prober) scheduleExpiry(cookie uint32, pp *pendingProbe) {
	attempt := pp.attempt
	p.host.Sim.After(pp.timeout, func() {
		cur, ok := p.pending[cookie]
		if !ok || cur != pp || pp.attempt != attempt {
			return // echoed, cancelled, or a newer attempt owns the timer
		}
		if pp.attempt >= pp.cfg.Retries {
			delete(p.pending, cookie)
			p.TimedOut++
			if pp.onFail != nil {
				pp.onFail()
			}
			return
		}
		pp.attempt++
		pp.timeout = pp.cfg.nextTimeout(pp.timeout)
		p.Retransmits++
		// A dropped retransmission is handled like a lost one: the
		// next deadline fires the next attempt (or the reaper).
		p.send(cookie, pp.dstMAC, pp.dstIP, pp.pristine.Clone())
		p.scheduleExpiry(cookie, pp)
	})
}

// Cancel drops one outstanding probe by cookie; neither of its
// callbacks will run.  It reports whether the cookie was pending.
func (p *Prober) Cancel(cookie uint32) bool {
	_, ok := p.pending[cookie]
	delete(p.pending, cookie)
	return ok
}

// ProbeGroup sends several TPPs as one logical multi-packet program
// ("end-hosts can use multiple packets if a single packet is
// insufficient for a network task", §2) and calls fn once every member
// resolves, in sending order.  Members whose send was dropped, or that
// exhausted their deadline and retries, resolve as nil, so the group
// completes with partial results instead of leaking its callbacks.
// With the zero (legacy) ProbeConfig a lost echo never resolves; give
// the prober a Timeout to guarantee completion.  It returns false when
// no member could be registered at all (fn will then never run).
func (p *Prober) ProbeGroup(dstMAC core.MAC, dstIP uint32, tpps []*core.TPP, fn func([]*core.TPP)) bool {
	results := make([]*core.TPP, len(tpps))
	remaining := 0
	registered := make([]int, 0, len(tpps))
	resolve := func(i int, echoed *core.TPP) {
		results[i] = echoed
		remaining--
		if remaining == 0 {
			fn(results)
		}
	}
	for i, tpp := range tpps {
		i := i
		_, ok := p.ProbeCfg(dstMAC, dstIP, tpp, p.defaults,
			func(echoed *core.TPP) { resolve(i, echoed) },
			func() { resolve(i, nil) })
		if ok {
			registered = append(registered, i)
		}
	}
	// Callbacks cannot have fired yet — sends only schedule simulator
	// events — so counting after the loop is race-free by construction.
	remaining = len(registered)
	return remaining > 0
}

// Forget drops the pending callback for every outstanding probe; used
// by periodic controllers that supersede unanswered probes.  Armed
// deadlines become no-ops.
func (p *Prober) Forget() { clear(p.pending) }

// onEcho parses an echo packet: serialized executed TPP followed by the
// 4-byte cookie.
func (p *Prober) onEcho(pkt *core.Packet) {
	var tpp core.TPP
	n, err := core.ParseTPP(pkt.Payload, &tpp)
	if err != nil || len(pkt.Payload) < n+4 {
		p.Malformed++
		return
	}
	cookie := binary.BigEndian.Uint32(pkt.Payload[n:])
	if p.epochs != nil {
		// Even a superseded echo carries fresh epochs; scan before the
		// cookie check so no observation is wasted.
		p.epochs.ObserveEcho(&tpp)
	}
	pp, ok := p.pending[cookie]
	if !ok {
		return // superseded or duplicate
	}
	delete(p.pending, cookie)
	p.Matched++
	pp.fn(&tpp)
}

// CollectProgram builds the canonical collect-phase probe: one PUSH per
// statistic per hop, with packet memory sized for maxHops hops.  It
// fails if the statistic list exceeds the device instruction limit —
// use SplitCollect to spread the list across multiple TPPs.
func CollectProgram(stats []mem.Addr, maxHops, insLimit int) (*core.TPP, error) {
	if len(stats) > insLimit {
		return nil, fmt.Errorf("endhost: %d statistics exceed the %d-instruction limit", len(stats), insLimit)
	}
	ins := make([]core.Instruction, len(stats))
	for i, a := range stats {
		ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(a)}
	}
	return core.NewTPP(core.AddrStack, ins, len(stats)*maxHops), nil
}

// SplitCollect splits a statistic list into as many collect TPPs as the
// instruction limit requires: the multi-packet TPP mechanism.
func SplitCollect(stats []mem.Addr, maxHops, insLimit int) ([]*core.TPP, error) {
	if insLimit <= 0 {
		return nil, fmt.Errorf("endhost: instruction limit must be positive")
	}
	var out []*core.TPP
	for len(stats) > 0 {
		n := min(insLimit, len(stats))
		tpp, err := CollectProgram(stats[:n], maxHops, insLimit)
		if err != nil {
			return nil, err
		}
		out = append(out, tpp)
		stats = stats[n:]
	}
	return out, nil
}
