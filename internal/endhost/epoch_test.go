package endhost

import (
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
)

// epochCollect builds the canonical two-stat collect program and fakes
// its execution over the given hops, the way a path of switches would
// fill it in.
func epochCollect(t *testing.T, maxHops int, hops []HopEpoch) *core.TPP {
	t.Helper()
	tpp, err := CollectProgram(
		[]mem.Addr{mem.SwitchBase + mem.SwitchID, mem.SwitchBase + mem.SwitchEpoch},
		maxHops, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hops {
		tpp.SetWord(i*2, h.SwitchID)
		tpp.SetWord(i*2+1, h.Epoch)
	}
	tpp.Ptr = uint16(len(hops) * 2 * 4)
	return tpp
}

func TestHopEpochsDecode(t *testing.T) {
	want := []HopEpoch{{SwitchID: 3, Epoch: 0}, {SwitchID: 9, Epoch: 2}}
	got := HopEpochs(epochCollect(t, 4, want))
	if len(got) != len(want) {
		t.Fatalf("decoded %d hops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hop %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Programs of the wrong shape must decode to nothing rather than
	// misread packet memory.
	noEpoch, err := CollectProgram([]mem.Addr{mem.SwitchBase + mem.SwitchID}, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hops := HopEpochs(noEpoch); hops != nil {
		t.Fatalf("collect without the epoch word decoded %d hops", len(hops))
	}
	withStore := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.SwitchBase + mem.SwitchEpoch)},
		{Op: core.OpSTORE, A: uint16(mem.SRAMBase), B: 0},
	}, 4)
	if hops := HopEpochs(withStore); hops != nil {
		t.Fatalf("non-pure-PUSH program decoded %d hops", len(hops))
	}
	if hops := HopEpochs(nil); hops != nil {
		t.Fatal("nil TPP decoded hops")
	}
}

func TestEpochTrackerObserve(t *testing.T) {
	type change struct{ id, old, new uint32 }
	var fired []change
	tr := NewEpochTracker(func(id, old, new uint32) {
		fired = append(fired, change{id, old, new})
	})

	// First sighting is a baseline, not a change.
	if tr.Observe(7, 0) {
		t.Fatal("first observation reported as a change")
	}
	if tr.Observe(7, 0) {
		t.Fatal("steady epoch reported as a change")
	}
	if !tr.Observe(7, 1) {
		t.Fatal("epoch bump not detected")
	}
	// A second switch has its own baseline.
	if tr.Observe(8, 5) {
		t.Fatal("new switch's first epoch reported as a change")
	}
	if !tr.Observe(8, 6) {
		t.Fatal("second switch's bump not detected")
	}

	if tr.Changes != 2 || tr.Observed != 5 {
		t.Fatalf("Changes=%d Observed=%d, want 2 and 5", tr.Changes, tr.Observed)
	}
	want := []change{{7, 0, 1}, {8, 5, 6}}
	if len(fired) != len(want) {
		t.Fatalf("callback fired %d times, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("callback %d = %+v, want %+v", i, fired[i], want[i])
		}
	}
	if e, ok := tr.Last(7); !ok || e != 1 {
		t.Fatalf("Last(7) = %d,%v, want 1,true", e, ok)
	}
}

// TestProberScansEchoes feeds crafted echoes straight into the prober's
// echo handler and checks the attached tracker sees every hop — even on
// echoes whose cookie was already superseded.
func TestProberScansEchoes(t *testing.T) {
	sim := netsim.New(1)
	a, b, _ := lossyPair(sim, 8_000_000)
	_ = b
	p := NewProber(a)
	tr := NewEpochTracker(nil)
	p.SetEpochTracker(tr)

	echoPkt := func(cookie uint32, hops []HopEpoch) *core.Packet {
		payload := epochCollect(t, 4, hops).AppendTo(nil)
		payload = binary.BigEndian.AppendUint32(payload, cookie)
		return &core.Packet{Payload: payload}
	}

	// A matched probe's echo is scanned.
	var echoed *core.TPP
	cookie, ok := p.ProbeCfg(core.MACFromUint64(2), core.IPv4Addr(10, 0, 0, 2),
		probeProg(), ProbeConfig{}, func(e *core.TPP) { echoed = e }, nil)
	if !ok {
		t.Fatal("probe not registered")
	}
	p.onEcho(echoPkt(cookie, []HopEpoch{{SwitchID: 1, Epoch: 0}}))
	if echoed == nil {
		t.Fatal("echo callback did not run")
	}
	// An unmatched (superseded) echo still feeds the tracker.
	p.onEcho(echoPkt(0xdead, []HopEpoch{{SwitchID: 1, Epoch: 3}}))

	if tr.Observed != 2 || tr.Changes != 1 {
		t.Fatalf("Observed=%d Changes=%d, want 2 and 1", tr.Observed, tr.Changes)
	}
	if e, _ := tr.Last(1); e != 3 {
		t.Fatalf("Last(1) = %d, want 3", e)
	}
}
