package endhost

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/verify"
)

// The NIC's injection-time verifier (§3.5 end-host sanity check) must
// refuse TPPs that carry error diagnostics, count the rejection, and
// leave well-formed programs alone.
func TestNICVerifierGate(t *testing.T) {
	sim := netsim.New(1)
	a, b := pair(sim, 8_000_000)
	reg := obs.NewRegistry()
	rejected := reg.Counter("host/a/tpp_rejected")
	a.NIC.SetVerifier(&verify.Config{}, rejected)

	tppPacket := func(tpp *core.TPP) *core.Packet {
		return &core.Packet{
			Eth: core.Ethernet{Dst: b.MAC, Src: a.MAC, Type: core.EtherTypeTPP},
			TPP: tpp,
			IP:  &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: a.IP, Dst: b.IP},
			UDP: &core.UDP{SrcPort: 1, DstPort: 9},
		}
	}

	// A STORE into the read-only statistics range must be rejected at
	// injection: Send returns false and nothing reaches the wire.
	bad := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
		{Op: core.OpPOP, A: uint16(mem.SwitchBase)},
	}, 2)
	if a.Send(tppPacket(bad)) {
		t.Fatal("NIC accepted a TPP that writes switch statistics")
	}
	if a.NIC.Rejected != 1 {
		t.Fatalf("Rejected = %d", a.NIC.Rejected)
	}
	if rejected.Value() != 1 {
		t.Fatalf("rejection metric = %d", rejected.Value())
	}
	if a.NIC.LastVerify.OK() {
		t.Fatal("LastVerify reports OK for a rejected program")
	}
	sim.Run()
	if b.Received != 0 {
		t.Fatal("rejected TPP reached the peer")
	}

	// A clean probe sails through.
	good := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
	}, 2)
	if !a.Send(tppPacket(good)) {
		t.Fatal("NIC rejected a verifiable TPP")
	}
	if !a.NIC.LastVerify.OK() {
		t.Fatalf("LastVerify not OK: %v", a.NIC.LastVerify)
	}
	sim.Run()
	if b.Received != 1 {
		t.Fatalf("peer received %d packets", b.Received)
	}

	// Non-TPP traffic and a disabled verifier are unaffected.
	if !a.Send(a.NewPacket(b.MAC, b.IP, 1, 2, 100)) {
		t.Fatal("plain packet rejected")
	}
	a.NIC.SetVerifier(nil, nil)
	if !a.Send(tppPacket(bad)) {
		t.Fatal("disabled verifier still rejects")
	}
	if a.NIC.Rejected != 1 {
		t.Fatalf("Rejected moved to %d with verifier off", a.NIC.Rejected)
	}
}
