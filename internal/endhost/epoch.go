package endhost

import (
	"repro/internal/core"
	"repro/internal/mem"
)

// HopEpoch is one hop's (switch id, boot epoch) pair decoded from a
// collect-probe echo whose program pushes both [Switch:SwitchID] and
// [Switch:Epoch].
type HopEpoch struct {
	SwitchID uint32
	Epoch    uint32
}

// HopEpochs decodes the per-hop (switch id, epoch) pairs from an
// executed stack-mode collect echo.  It inspects the program itself to
// find where in each per-hop frame the two statistics land, so it works
// with any pure-PUSH collect program that includes both addresses (in
// any order, alongside any other statistics).  It returns nil when the
// program is not of that shape — hop-mode TPPs, programs with stores,
// or collects that never read the epoch word.
func HopEpochs(e *core.TPP) []HopEpoch {
	if e == nil || e.Mode != core.AddrStack || len(e.Ins) == 0 {
		return nil
	}
	idIdx, epochIdx := -1, -1
	for i, in := range e.Ins {
		if in.Op != core.OpPUSH {
			return nil
		}
		switch mem.Addr(in.A) {
		case mem.SwitchBase + mem.SwitchID:
			idIdx = i
		case mem.SwitchBase + mem.SwitchEpoch:
			epochIdx = i
		}
	}
	if idIdx < 0 || epochIdx < 0 {
		return nil
	}
	frame := len(e.Ins)
	hops := int(e.Ptr) / 4 / frame
	out := make([]HopEpoch, 0, hops)
	for h := 0; h < hops; h++ {
		out = append(out, HopEpoch{
			SwitchID: e.Word(h*frame + idIdx),
			Epoch:    e.Word(h*frame + epochIdx),
		})
	}
	return out
}

// EpochTracker watches the boot generation counters of the switches a
// host's probes traverse and fires a reconciliation callback when one
// changes — the end-host's only signal that a switch crash-restarted
// and silently wiped the soft state (rate registers, SRAM counters,
// breadcrumbs) this host had installed there.
//
// Attach it to a Prober with SetEpochTracker for automatic scanning of
// every echo, or feed observations directly with Observe from handlers
// that decode their own program layout.
type EpochTracker struct {
	last map[uint32]uint32

	// OnChange, when non-nil, runs for every detected epoch bump with
	// the switch id and the old and new epoch values.  The first
	// observation of a switch establishes its baseline and does not
	// fire the callback.
	OnChange func(switchID, oldEpoch, newEpoch uint32)

	// Changes counts detected epoch bumps; Observed counts all
	// observations fed in.
	Changes  uint64
	Observed uint64
}

// NewEpochTracker builds a tracker; onChange may be nil.
func NewEpochTracker(onChange func(switchID, oldEpoch, newEpoch uint32)) *EpochTracker {
	return &EpochTracker{last: make(map[uint32]uint32), OnChange: onChange}
}

// Observe records that switchID currently reports epoch.  It returns
// true (and fires OnChange) when this differs from the last observation
// of the same switch; the first observation is never a change.
func (t *EpochTracker) Observe(switchID, epoch uint32) bool {
	t.Observed++
	old, seen := t.last[switchID]
	t.last[switchID] = epoch
	if !seen || old == epoch {
		return false
	}
	t.Changes++
	if t.OnChange != nil {
		t.OnChange(switchID, old, epoch)
	}
	return true
}

// Last returns the most recently observed epoch of switchID.
func (t *EpochTracker) Last(switchID uint32) (uint32, bool) {
	e, ok := t.last[switchID]
	return e, ok
}

// ObserveEcho scans one executed echo for (switch id, epoch) pairs and
// feeds them to Observe; probes whose programs don't carry the epoch
// word are ignored.  It returns how many epoch bumps the echo revealed.
func (t *EpochTracker) ObserveEcho(e *core.TPP) int {
	bumps := 0
	for _, he := range HopEpochs(e) {
		if t.Observe(he.SwitchID, he.Epoch) {
			bumps++
		}
	}
	return bumps
}
