package endhost

import (
	"repro/internal/core"
	"repro/internal/netsim"
)

// ProbeEchoPort is the UDP port TPP probes target; hosts answer probes
// arriving here with an echo of the executed program ("the receiver
// simply echos a fully executed TPP back to the sender", §2.2).
const ProbeEchoPort = 7070

// EchoReplyPort is the UDP port probe echoes come back on.
const EchoReplyPort = 7071

// Handler consumes a received packet.
type Handler func(pkt *core.Packet)

// Host is a simulated end-host.
type Host struct {
	Sim *netsim.Sim
	MAC core.MAC
	IP  uint32
	NIC *NIC

	handlers map[uint16]Handler
	fallback Handler

	// uidBase makes packet UIDs unique network-wide, not just per
	// host, so lifecycle traces from different sources never collide:
	// the low 24 MAC bits occupy the top of the UID and a per-host
	// sequence number the bottom 40 bits.
	uidBase uint64
	nextUID uint64

	// Received counts delivered packets (after echo handling).
	Received uint64
	// EchoesSent counts probe echoes generated.
	EchoesSent uint64
}

// NewHost builds a host; wire its NIC with Host.NIC.Attach.
func NewHost(sim *netsim.Sim, mac core.MAC, ip uint32) *Host {
	return &Host{
		Sim:      sim,
		MAC:      mac,
		IP:       ip,
		NIC:      NewNIC(0),
		handlers: make(map[uint16]Handler),
		uidBase:  (mac.Uint64() & 0xFFFFFF) << 40,
	}
}

// Handle registers a handler for a UDP destination port.
func (h *Host) Handle(port uint16, fn Handler) { h.handlers[port] = fn }

// HandleDefault registers the handler for everything else.
func (h *Host) HandleDefault(fn Handler) { h.fallback = fn }

// Receive implements netsim.Receiver.
//
//alloc:free
func (h *Host) Receive(pkt *core.Packet, port int) {
	_ = port
	// Delivery transfers ownership out of the fabric: a flooded copy
	// drawn from the packet pool is now the host's to keep, so it must
	// never return to the pool.
	pkt.Adopt()
	// Echo executed TPP probes transparently, before demultiplexing:
	// this is the paper's receiver behavior for the collect phase.
	if pkt.TPP != nil && pkt.UDP != nil && pkt.UDP.DstPort == ProbeEchoPort {
		h.echoProbe(pkt)
		return
	}
	h.Received++
	if pkt.UDP != nil {
		if fn, ok := h.handlers[pkt.UDP.DstPort]; ok {
			fn(pkt)
			return
		}
	}
	if h.fallback != nil {
		h.fallback(pkt)
	}
}

// echoProbe returns the executed TPP to the prober.  The echo carries
// the TPP serialized inside an ordinary UDP payload so the network does
// not execute it a second time on the reverse path.
func (h *Host) echoProbe(pkt *core.Packet) {
	if pkt.IP == nil {
		return
	}
	payload := pkt.TPP.AppendTo(nil)
	payload = append(payload, pkt.Payload...) // preserve the probe cookie
	echo := &core.Packet{
		Eth: core.Ethernet{Dst: pkt.Eth.Src, Src: h.MAC, Type: core.EtherTypeIPv4},
		IP: &core.IPv4{TTL: 64, Proto: core.ProtoUDP,
			Src: h.IP, Dst: pkt.IP.Src},
		UDP:     &core.UDP{SrcPort: ProbeEchoPort, DstPort: EchoReplyPort},
		Payload: payload,
		Meta:    core.Metadata{UID: h.uid()},
	}
	h.EchoesSent++
	h.NIC.Send(echo)
}

func (h *Host) uid() uint64 {
	h.nextUID++
	return h.uidBase | h.nextUID
}

// NextUID allocates a network-unique packet UID from this host's space,
// for callers that build packets by hand (controllers, injectors) so
// their packets remain distinguishable in lifecycle traces.
func (h *Host) NextUID() uint64 { return h.uid() }

// NewPacket builds a unicast data packet from this host.
func (h *Host) NewPacket(dstMAC core.MAC, dstIP uint32, srcPort, dstPort uint16, payloadLen int) *core.Packet {
	pkt := core.NewUDPPacket(
		core.Ethernet{Dst: dstMAC, Src: h.MAC, Type: core.EtherTypeIPv4},
		core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: h.IP, Dst: dstIP},
		core.UDP{SrcPort: srcPort, DstPort: dstPort},
	)
	pkt.PadLen = payloadLen
	pkt.Meta = core.Metadata{UID: h.uid()}
	return pkt
}

// Send queues a packet on the NIC.
func (h *Host) Send(pkt *core.Packet) bool { return h.NIC.Send(pkt) }

// Broadcast sends a zero-payload broadcast frame, the cheap way to
// prime L2 learning tables with this host's location.
func (h *Host) Broadcast() bool {
	return h.Send(&core.Packet{
		Eth: core.Ethernet{Dst: core.BroadcastMAC, Src: h.MAC, Type: core.EtherTypeIPv4},
		IP: &core.IPv4{TTL: 64, Proto: core.ProtoUDP,
			Src: h.IP, Dst: core.IPv4Addr(255, 255, 255, 255)},
		UDP:  &core.UDP{SrcPort: 1, DstPort: 1},
		Meta: core.Metadata{UID: h.uid()},
	})
}
