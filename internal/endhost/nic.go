// Package endhost implements the host side of the TPP architecture:
// "smartness at the edge".  Hosts carry a NIC with a drop-tail transmit
// queue, demultiplex received packets to protocol handlers, echo
// executed TPPs back to their senders, and run Prober/Collector agents
// that the example network tasks (RCP*, micro-burst detection, ndb)
// are built from.
package endhost

import (
	"repro/internal/core"
	"repro/internal/netsim"
)

// DefaultNICQueue is the transmit queue capacity in packets.
const DefaultNICQueue = 256

// NIC is a host network interface: a FIFO transmit queue in front of
// one egress channel.
type NIC struct {
	ch    *netsim.Channel
	queue []*core.Packet
	max   int

	// Drops counts transmit-queue tail drops.
	Drops uint64
	// Sent counts packets handed to the channel.
	Sent uint64
}

// NewNIC builds a NIC with a transmit queue of max packets (0 selects
// DefaultNICQueue).
func NewNIC(max int) *NIC {
	if max <= 0 {
		max = DefaultNICQueue
	}
	return &NIC{max: max}
}

// Attach wires the NIC to its egress channel.
func (n *NIC) Attach(ch *netsim.Channel) {
	n.ch = ch
	ch.SetOnIdle(n.kick)
}

// SetCapacity resizes the transmit queue limit; experiments that
// pre-queue large batches raise it.
func (n *NIC) SetCapacity(max int) {
	if max > 0 {
		n.max = max
	}
}

// QueueLen returns the number of packets waiting to transmit.
func (n *NIC) QueueLen() int { return len(n.queue) }

// Send queues the packet for transmission, returning false on a tail
// drop.
func (n *NIC) Send(pkt *core.Packet) bool {
	if len(n.queue) >= n.max {
		n.Drops++
		return false
	}
	n.queue = append(n.queue, pkt)
	n.kick()
	return true
}

func (n *NIC) kick() {
	if n.ch == nil || n.ch.Busy() || len(n.queue) == 0 {
		return
	}
	pkt := n.queue[0]
	n.queue[0] = nil
	n.queue = n.queue[1:]
	n.Sent++
	n.ch.Send(pkt)
}
