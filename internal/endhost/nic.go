// Package endhost implements the host side of the TPP architecture:
// "smartness at the edge".  Hosts carry a NIC with a drop-tail transmit
// queue, demultiplex received packets to protocol handlers, echo
// executed TPPs back to their senders, and run Prober/Collector agents
// that the example network tasks (RCP*, micro-burst detection, ndb)
// are built from.
package endhost

import (
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/tcpu"
	"repro/internal/verify"
)

// DefaultNICQueue is the transmit queue capacity in packets.
const DefaultNICQueue = 256

// NIC is a host network interface: a FIFO transmit queue in front of
// one egress channel.  The NIC is also the trusted edge of the TPP
// architecture: it seals tenant identities, statically verifies
// programs at injection (§3.5), and — since verification proves a
// program safe exactly once — compiles it exactly once too, caching
// both by the program's wire bytes so repeated flows pay neither cost
// again.
type NIC struct {
	ch *netsim.Channel
	// queue[qhead:] are the waiting packets; kick advances qhead so
	// the backing array is reused instead of re-sliced away.
	queue []*core.Packet
	qhead int
	max   int

	verifier  *verify.Config
	mRejected *obs.Counter
	tenant    uint8

	// progCache compiles injected programs once, keyed by wire bytes
	// (built lazily on the first TPP send so the config can account
	// for the verifier's device limits).  vcache memoizes verification
	// results by the full static shape of the TPP; both reset when the
	// verifier or tenant changes.
	progCache *tcpu.Cache
	vcache    map[verifyKey]verify.Result

	// Drops counts transmit-queue tail drops.
	Drops uint64
	// Sent counts packets handed to the channel.
	Sent uint64
	// Rejected counts TPP packets the static verifier refused to
	// inject.
	Rejected uint64
	// LastVerify is the verification result of the most recent
	// TPP-bearing Send, for diagnostics and tests.
	LastVerify verify.Result
}

// NewNIC builds a NIC with a transmit queue of max packets (0 selects
// DefaultNICQueue).
func NewNIC(max int) *NIC {
	if max <= 0 {
		max = DefaultNICQueue
	}
	return &NIC{max: max}
}

// Attach wires the NIC to its egress channel.
func (n *NIC) Attach(ch *netsim.Channel) {
	n.ch = ch
	ch.SetOnIdle(n.kick)
}

// SetCapacity resizes the transmit queue limit; experiments that
// pre-queue large batches raise it.
func (n *NIC) SetCapacity(max int) {
	if max > 0 {
		n.max = max
	}
}

// QueueLen returns the number of packets waiting to transmit.
func (n *NIC) QueueLen() int { return len(n.queue) - n.qhead }

// SetVerifier installs the end-host sanity check of §3.5: every
// TPP-bearing packet is statically verified at injection time and
// rejected (Send returns false) when the program carries
// error-severity diagnostics, so provably faulting or over-budget
// programs never enter the fabric.  rejected, when non-nil, is
// incremented per rejection (wire it to an obs.Registry counter).
// A nil cfg disables verification (the default).
func (n *NIC) SetVerifier(cfg *verify.Config, rejected *obs.Counter) {
	n.verifier = cfg
	n.mRejected = rejected
	// Cached verdicts and compilations were produced under the old
	// config; drop them.
	n.progCache = nil
	n.vcache = nil
}

// SetTenant binds the NIC to an isolation principal.  The NIC is the
// trusted edge of the tenant guard — the hypervisor vswitch of the
// extended paper — so Send stamps every outgoing TPP with this id,
// overwriting whatever the guest wrote: identities are sealed at the
// edge, never claimed by guests.  An unconfigured NIC is an
// infrastructure (operator, id 0) NIC.
func (n *NIC) SetTenant(id uint8) {
	n.tenant = id
	n.vcache = nil // verdicts may depend on the sealed identity
}

// Tenant returns the sealed tenant id.
func (n *NIC) Tenant() uint8 { return n.tenant }

// Send queues the packet for transmission, returning false on a tail
// drop or a verifier rejection.
func (n *NIC) Send(pkt *core.Packet) bool {
	if pkt.TPP != nil {
		// Seal the tenant identity before anything else — including
		// verification, which must judge the program as the tenant it
		// will actually run as.
		pkt.TPP.Tenant = n.tenant
		if n.verifier != nil {
			n.LastVerify = n.verifyCached(pkt.TPP)
			if !n.LastVerify.OK() {
				n.Rejected++
				n.mRejected.Inc()
				return false
			}
		}
		// Compile once at the edge and attach the shared immutable
		// program, so every TCPU on the path whose device config
		// matches executes it directly.
		if n.progCache == nil {
			cfg := tcpu.Config{}
			if n.verifier != nil {
				cfg.MaxInstructions = n.verifier.MaxInstructions
			}
			n.progCache = tcpu.NewCache(cfg, 0)
		}
		if prog := n.progCache.Get(pkt.TPP); prog != nil {
			pkt.TPP.Compiled = prog
		}
	}
	if n.QueueLen() >= n.max {
		n.Drops++
		return false
	}
	n.queue = append(n.queue, pkt)
	n.kick()
	return true
}

// verifyKey is the full static shape verification judges: every TPP
// field Verify reads except packet-memory contents (which it never
// inspects).  The verifier config and sealed tenant are fixed per NIC
// and reset the cache when they change.
type verifyKey struct {
	n        uint8
	mode     core.AddrMode
	version  uint8
	tenant   uint8
	ptr      uint16
	hopLen   uint16
	memWords uint16
	ins      [tcpu.MaxCachedInstructions]uint32
}

// maxVerifyCache bounds the memoized verdict map; NICs see a handful
// of distinct programs, so overflow means an adversarial workload and
// a full reset is the simplest safe answer.
const maxVerifyCache = 1024

func (n *NIC) verifyCached(t *core.TPP) verify.Result {
	if len(t.Ins) > tcpu.MaxCachedInstructions {
		return verify.Verify(t, *n.verifier)
	}
	k := verifyKey{
		n: uint8(len(t.Ins)), mode: t.Mode, version: t.Version,
		tenant: t.Tenant, ptr: t.Ptr, hopLen: t.HopLen,
		memWords: uint16(t.MemWords()),
	}
	for i, in := range t.Ins {
		k.ins[i] = in.Word()
	}
	if res, ok := n.vcache[k]; ok {
		return res
	}
	res := verify.Verify(t, *n.verifier)
	if n.vcache == nil || len(n.vcache) >= maxVerifyCache {
		n.vcache = make(map[verifyKey]verify.Result, 64)
	}
	n.vcache[k] = res
	return res
}

func (n *NIC) kick() {
	if n.ch == nil || n.ch.Busy() || n.qhead == len(n.queue) {
		return
	}
	pkt := n.queue[n.qhead]
	n.queue[n.qhead] = nil
	n.qhead++
	if n.qhead == len(n.queue) {
		n.queue = n.queue[:0]
		n.qhead = 0
	}
	n.Sent++
	n.ch.Send(pkt)
}
