// Package endhost implements the host side of the TPP architecture:
// "smartness at the edge".  Hosts carry a NIC with a drop-tail transmit
// queue, demultiplex received packets to protocol handlers, echo
// executed TPPs back to their senders, and run Prober/Collector agents
// that the example network tasks (RCP*, micro-burst detection, ndb)
// are built from.
package endhost

import (
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/verify"
)

// DefaultNICQueue is the transmit queue capacity in packets.
const DefaultNICQueue = 256

// NIC is a host network interface: a FIFO transmit queue in front of
// one egress channel.
type NIC struct {
	ch    *netsim.Channel
	queue []*core.Packet
	max   int

	verifier  *verify.Config
	mRejected *obs.Counter
	tenant    uint8

	// Drops counts transmit-queue tail drops.
	Drops uint64
	// Sent counts packets handed to the channel.
	Sent uint64
	// Rejected counts TPP packets the static verifier refused to
	// inject.
	Rejected uint64
	// LastVerify is the verification result of the most recent
	// TPP-bearing Send, for diagnostics and tests.
	LastVerify verify.Result
}

// NewNIC builds a NIC with a transmit queue of max packets (0 selects
// DefaultNICQueue).
func NewNIC(max int) *NIC {
	if max <= 0 {
		max = DefaultNICQueue
	}
	return &NIC{max: max}
}

// Attach wires the NIC to its egress channel.
func (n *NIC) Attach(ch *netsim.Channel) {
	n.ch = ch
	ch.SetOnIdle(n.kick)
}

// SetCapacity resizes the transmit queue limit; experiments that
// pre-queue large batches raise it.
func (n *NIC) SetCapacity(max int) {
	if max > 0 {
		n.max = max
	}
}

// QueueLen returns the number of packets waiting to transmit.
func (n *NIC) QueueLen() int { return len(n.queue) }

// SetVerifier installs the end-host sanity check of §3.5: every
// TPP-bearing packet is statically verified at injection time and
// rejected (Send returns false) when the program carries
// error-severity diagnostics, so provably faulting or over-budget
// programs never enter the fabric.  rejected, when non-nil, is
// incremented per rejection (wire it to an obs.Registry counter).
// A nil cfg disables verification (the default).
func (n *NIC) SetVerifier(cfg *verify.Config, rejected *obs.Counter) {
	n.verifier = cfg
	n.mRejected = rejected
}

// SetTenant binds the NIC to an isolation principal.  The NIC is the
// trusted edge of the tenant guard — the hypervisor vswitch of the
// extended paper — so Send stamps every outgoing TPP with this id,
// overwriting whatever the guest wrote: identities are sealed at the
// edge, never claimed by guests.  An unconfigured NIC is an
// infrastructure (operator, id 0) NIC.
func (n *NIC) SetTenant(id uint8) { n.tenant = id }

// Tenant returns the sealed tenant id.
func (n *NIC) Tenant() uint8 { return n.tenant }

// Send queues the packet for transmission, returning false on a tail
// drop or a verifier rejection.
func (n *NIC) Send(pkt *core.Packet) bool {
	if pkt.TPP != nil {
		// Seal the tenant identity before anything else — including
		// verification, which must judge the program as the tenant it
		// will actually run as.
		pkt.TPP.Tenant = n.tenant
	}
	if n.verifier != nil && pkt.TPP != nil {
		n.LastVerify = verify.Verify(pkt.TPP, *n.verifier)
		if !n.LastVerify.OK() {
			n.Rejected++
			n.mRejected.Inc()
			return false
		}
	}
	if len(n.queue) >= n.max {
		n.Drops++
		return false
	}
	n.queue = append(n.queue, pkt)
	n.kick()
	return true
}

func (n *NIC) kick() {
	if n.ch == nil || n.ch.Busy() || len(n.queue) == 0 {
		return
	}
	pkt := n.queue[0]
	n.queue[0] = nil
	n.queue = n.queue[1:]
	n.Sent++
	n.ch.Send(pkt)
}
