package fct

import (
	"testing"

	"repro/internal/aimd"
	"repro/internal/netsim"
)

func TestShortFlowFinishesFasterUnderRCPStar(t *testing.T) {
	star := Run(DefaultConfig(aimd.SchemeRCPStar))
	tcp := Run(DefaultConfig(aimd.SchemeAIMD))

	if !star.Completed {
		t.Fatal("RCP* flow never completed")
	}
	if !tcp.Completed {
		t.Fatal("AIMD flow never completed")
	}
	// The paper's core claim: the RCP-controlled flow converges to its
	// fair share immediately and finishes quickly; AIMD ramps up from
	// one segment per interval.
	if star.FCT >= tcp.FCT {
		t.Fatalf("RCP* FCT %v not faster than AIMD %v", star.FCT, tcp.FCT)
	}
	if float64(tcp.FCT) < 2*float64(star.FCT) {
		t.Fatalf("advantage too small: RCP* %v vs AIMD %v", star.FCT, tcp.FCT)
	}
	// RCP* finishes within a few control intervals of the fair-share
	// bound (capacity discovery + first collect cost ~2T, plus
	// transmission).
	if star.Slowdown() > 5 {
		t.Fatalf("RCP* slowdown = %.1f (FCT %v, fair ideal %v)",
			star.Slowdown(), star.FCT, star.FairIdeal)
	}
}

func TestFCTBoundsAreSane(t *testing.T) {
	r := Run(DefaultConfig(aimd.SchemeRCPStar))
	// 50 KB at 1.25 MB/s is 40 ms; fair share (3 flows) is 120 ms.
	if r.Ideal != 40*netsim.Millisecond {
		t.Fatalf("Ideal = %v", r.Ideal)
	}
	if r.FairIdeal != 120*netsim.Millisecond {
		t.Fatalf("FairIdeal = %v", r.FairIdeal)
	}
	// The flow cannot beat its fair-share bound by much (it may
	// slightly, while the background flows are still converging).
	if r.FCT < r.Ideal {
		t.Fatalf("FCT %v below the capacity bound %v", r.FCT, r.Ideal)
	}
}

func TestSweepSizesMonotone(t *testing.T) {
	sizes := []uint64{20_000, 100_000, 500_000}
	res := SweepSizes(aimd.SchemeRCPStar, sizes)
	if len(res) != 3 {
		t.Fatalf("results: %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if !res[i].Completed {
			t.Fatalf("size %d never completed", sizes[i])
		}
		if res[i].FCT <= res[i-1].FCT {
			t.Fatalf("FCT not increasing with size: %v then %v",
				res[i-1].FCT, res[i].FCT)
		}
	}
}

func TestAIMDPenaltyShrinksForLongFlows(t *testing.T) {
	// The ramp-up penalty is a fixed cost: relative slowdown must be
	// worse for short flows than for long ones.
	short := Run(withSize(aimd.SchemeAIMD, 20_000))
	long := Run(withSize(aimd.SchemeAIMD, 1_000_000))
	if !short.Completed || !long.Completed {
		t.Fatal("flows did not complete")
	}
	if short.Slowdown() <= long.Slowdown() {
		t.Fatalf("short-flow slowdown %.1f not worse than long-flow %.1f",
			short.Slowdown(), long.Slowdown())
	}
}

func withSize(s aimd.Scheme, bytes uint64) Config {
	cfg := DefaultConfig(s)
	cfg.FlowBytes = bytes
	return cfg
}
