// Package fct measures flow completion times — the metric RCP was
// designed for: "RCP is a congestion control algorithm that rapidly
// allocates link capacity to help flows finish quickly."
//
// A finite flow of a given size joins a 10 Mb/s bottleneck already
// carrying two long-running background flows, under either RCP* or the
// TCP-style AIMD comparator.  RCP* hands the newcomer its fair share in
// one control interval (the register already holds it); AIMD must ramp
// up additively from one segment per interval, so short flows take far
// longer than their serialization time.
package fct

import (
	"fmt"

	"repro/internal/aimd"
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
	"repro/internal/rcp"
	"repro/internal/topo"
)

// Config parameterizes one FCT measurement.
type Config struct {
	Scheme         aimd.Scheme // SchemeRCPStar or SchemeAIMD
	FlowBytes      uint64      // size of the measured flow
	Background     int         // long-running flows already on the link
	BottleneckMbps float64
	EdgeMbps       float64
	Seed           int64
}

// DefaultConfig measures a 50 KB flow against two background flows.
func DefaultConfig(scheme aimd.Scheme) Config {
	return Config{
		Scheme:         scheme,
		FlowBytes:      50_000,
		Background:     2,
		BottleneckMbps: 10,
		EdgeMbps:       100,
		Seed:           1,
	}
}

// Result is one measurement.
type Result struct {
	Config Config
	// FCT is the completion time: from the flow's start to the last
	// payload byte arriving at the receiver.
	FCT netsim.Time
	// Ideal is the lower bound: flow bytes at the whole bottleneck
	// capacity.
	Ideal netsim.Time
	// FairIdeal is the bound at the flow's fair share (1/(bg+1) of
	// capacity).
	FairIdeal netsim.Time
	// Completed reports whether the flow finished within the run.
	Completed bool
}

// Slowdown is FCT normalized by the fair-share ideal.
func (r Result) Slowdown() float64 {
	if r.FairIdeal == 0 {
		return 0
	}
	return float64(r.FCT) / float64(r.FairIdeal)
}

// Run executes one measurement.
func Run(cfg Config) Result {
	sim := netsim.New(cfg.Seed)
	n := topo.NewNetwork(sim)
	capacityBytes := cfg.BottleneckMbps * 1e6 / 8
	queueCap := int(capacityBytes * 0.1)
	swCfg := asic.Config{Ports: 8, QueueCapBytes: queueCap}
	a := n.AddSwitch(swCfg)
	b := n.AddSwitch(swCfg)
	n.LinkSwitches(a, b, topo.Mbps(cfg.BottleneckMbps, 10*netsim.Millisecond))
	edge := topo.Mbps(cfg.EdgeMbps, netsim.Millisecond)

	pairs := cfg.Background + 1
	senders := make([]*endhost.Host, pairs)
	receivers := make([]*endhost.Host, pairs)
	for i := range senders {
		senders[i] = n.AddHost()
		n.LinkHost(senders[i], a, edge)
	}
	for i := range receivers {
		receivers[i] = n.AddHost()
		n.LinkHost(receivers[i], b, edge)
	}
	n.PrimeL2(50 * netsim.Millisecond)

	res := Result{Config: cfg}
	res.Ideal = netsim.Time(float64(cfg.FlowBytes) / capacityBytes * float64(netsim.Second))
	res.FairIdeal = res.Ideal * netsim.Time(pairs)

	// The measured flow is pair 0; background pairs run unbounded.
	// The sender transmits until the receiver has the full payload
	// (neither toy transport retransmits, so the sender keeps pushing
	// through losses; the extra packets stand in for retransmissions)
	// and the receiver-side completion stops it.
	var flowStart netsim.Time
	var rcvd uint64
	measureStart := 2 * netsim.Second // let background flows settle
	finishAt := netsim.Time(-1)
	var stopSender func()

	onPayload := func(p *core.Packet) {
		rcvd += uint64(p.PayloadLen())
		if finishAt < 0 && rcvd >= cfg.FlowBytes {
			finishAt = sim.Now()
			if stopSender != nil {
				stopSender()
			}
		}
	}

	switch cfg.Scheme {
	case aimd.SchemeRCPStar:
		rcp.InitRateRegisters(a, b)
		params := rcp.DefaultParams()
		for i := 1; i < pairs; i++ {
			i := i
			ctl := rcp.NewStarController(sim, senders[i],
				endhost.NewProber(senders[i]),
				receivers[i].MAC, receivers[i].IP, params)
			sim.At(sim.Now(), ctl.Start)
		}
		receivers[0].Handle(rcp.StarDataPort, onPayload)
		ctl := rcp.NewStarController(sim, senders[0],
			endhost.NewProber(senders[0]),
			receivers[0].MAC, receivers[0].IP, params)
		stopSender = ctl.Stop
		sim.At(sim.Now()+measureStart, func() {
			flowStart = sim.Now()
			ctl.Start()
		})

	case aimd.SchemeAIMD:
		params := aimd.DefaultParams()
		initial := float64(aimd.SegmentSize) / params.FeedbackEvery.Seconds()
		for i := 1; i < pairs; i++ {
			aimd.NewReceiver(sim, receivers[i], params)
			snd := aimd.NewSender(sim, senders[i], receivers[i].MAC,
				receivers[i].IP, params, initial)
			sim.At(sim.Now(), snd.Start)
		}
		rcv := aimd.NewReceiver(sim, receivers[0], params)
		_ = rcv
		receivers[0].Handle(aimd.DataPort, func(p *core.Packet) {
			onPayload(p)
			rcvData(rcv, p)
		})
		snd := aimd.NewSender(sim, senders[0], receivers[0].MAC,
			receivers[0].IP, params, initial)
		stopSender = snd.Stop
		sim.At(sim.Now()+measureStart, func() {
			flowStart = sim.Now()
			snd.Start()
		})

	default:
		panic(fmt.Sprintf("fct: unknown scheme %q", cfg.Scheme))
	}

	sim.RunUntil(sim.Now() + measureStart + 120*netsim.Second)
	if finishAt >= 0 {
		res.Completed = true
		res.FCT = finishAt - flowStart
	}
	return res
}

// rcvData forwards a payload packet into the AIMD receiver's loss
// tracker (our wrapper displaced its handler).
func rcvData(r *aimd.Receiver, p *core.Packet) { r.OnData(p) }

// SweepSizes measures FCT across flow sizes for one scheme.
func SweepSizes(scheme aimd.Scheme, sizes []uint64) []Result {
	out := make([]Result, 0, len(sizes))
	for _, s := range sizes {
		cfg := DefaultConfig(scheme)
		cfg.FlowBytes = s
		out = append(out, Run(cfg))
	}
	return out
}
