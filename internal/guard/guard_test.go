package guard

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/netsim"
)

func TestPermString(t *testing.T) {
	cases := []struct {
		p    Perm
		want string
	}{{0, "--"}, {PermRead, "r-"}, {PermWrite, "-w"}, {PermRW, "rw"}}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Perm(%d).String() = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestDefaultACL(t *testing.T) {
	a := DefaultACL()
	reads := []mem.Namespace{mem.NSSwitch, mem.NSPort, mem.NSQueue, mem.NSPacket, mem.NSSRAM, mem.NSPortAbs}
	for _, ns := range reads {
		if !a.Allows(ns, false) {
			t.Errorf("DefaultACL denies read of %v", ns)
		}
	}
	if !a.Allows(mem.NSSRAM, true) {
		t.Error("DefaultACL denies the tenant's own SRAM writes")
	}
	for _, ns := range []mem.Namespace{mem.NSSwitch, mem.NSPort, mem.NSQueue, mem.NSPacket, mem.NSPortAbs} {
		if a.Allows(ns, true) {
			t.Errorf("DefaultACL allows write to shared namespace %v", ns)
		}
	}
	if a.Allows(mem.NSInvalid, false) || a.Allows(mem.NSInvalid, true) {
		t.Error("ACL grants access to the invalid namespace")
	}
}

func TestControlACLAddsPortWrites(t *testing.T) {
	a := ControlACL()
	if !a.Allows(mem.NSPort, true) || !a.Allows(mem.NSPortAbs, true) {
		t.Error("ControlACL must allow port scratch writes for control loops")
	}
	if a.Allows(mem.NSSwitch, true) {
		t.Error("ControlACL must not allow switch config writes")
	}
}

func TestGrantRelocation(t *testing.T) {
	g := Grant{
		ACL:       DefaultACL(),
		Partition: mem.Region{Base: mem.SRAMBase + 0x100, Words: 16},
	}
	// Tenant word 0 lands at the partition base.
	phys, ok := g.Relocate(mem.SRAMBase)
	if !ok || phys != mem.SRAMBase+0x100 {
		t.Fatalf("Relocate(word 0) = %#x, %v; want %#x", phys, ok, mem.SRAMBase+0x100)
	}
	// The last in-bounds word lands at the partition's last word.
	phys, ok = g.Relocate(mem.SRAMBase + 15)
	if !ok || phys != mem.SRAMBase+0x10F {
		t.Fatalf("Relocate(word 15) = %#x, %v; want %#x", phys, ok, mem.SRAMBase+0x10F)
	}
	// One past the bound is out of partition.
	if _, ok := g.Relocate(mem.SRAMBase + 16); ok {
		t.Error("Relocate accepted an address past the partition bound")
	}
	// A forged physical-looking address far above the grant is denied,
	// not aliased into someone else's partition.
	if _, ok := g.CheckStore(mem.SRAMBase + 0x700); ok {
		t.Error("CheckStore accepted a forged out-of-partition address")
	}
	// Non-SRAM addresses pass through unrelocated when the ACL allows.
	phys, ok = g.CheckLoad(mem.QueueBase)
	if !ok || phys != mem.QueueBase {
		t.Fatalf("CheckLoad(queue stat) = %#x, %v; want identity", phys, ok)
	}
	// ...and are denied when it does not.
	if _, ok := g.CheckStore(mem.PortBase + mem.PortScratchBase); ok {
		t.Error("DefaultACL grant allowed a port scratch store")
	}
}

func TestOperatorGrantIsIdentity(t *testing.T) {
	g := OperatorGrant()
	for _, a := range []mem.Addr{mem.SRAMBase, mem.SRAMBase + 1, mem.SRAMBase + mem.SRAMWords - 1} {
		phys, ok := g.CheckStore(a)
		if !ok || phys != a {
			t.Fatalf("operator CheckStore(%#x) = %#x, %v; want identity", a, phys, ok)
		}
	}
	if _, ok := g.CheckStore(mem.SwitchBase); !ok {
		t.Error("operator denied a switch namespace store")
	}
}

func TestPartitionerGrantRevoke(t *testing.T) {
	p := NewPartitioner()
	r1, err := p.Grant(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Base != mem.SRAMBase || r1.Words != 64 {
		t.Fatalf("first grant = %+v, want base of bank", r1)
	}
	r2, err := p.Grant(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Base != r1.End() {
		t.Fatalf("second grant at %#x, want packed at %#x", r2.Base, r1.End())
	}
	if _, err := p.Grant(2, 8); err == nil {
		t.Error("double grant succeeded")
	}
	if _, err := p.Grant(Operator, 8); err == nil {
		t.Error("operator grant succeeded")
	}
	if _, err := p.Grant(3, mem.SRAMWords); err == nil {
		t.Error("oversized grant succeeded with the bank partly taken")
	}
	got, err := p.Revoke(1)
	if err != nil || got != r1 {
		t.Fatalf("Revoke(1) = %+v, %v; want %+v", got, err, r1)
	}
	// The freed gap is reused first-fit.
	r3, err := p.Grant(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatalf("freed gap not reused: got %+v want %+v", r3, r1)
	}
	if ids := p.Tenants(); len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("Tenants() = %v, want [2 3]", ids)
	}
}

func TestTableLookupAndDefaults(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Lookup(7); ok {
		t.Error("unregistered tenant resolved to a grant")
	}
	g, ok := tb.Lookup(Operator)
	if !ok || g.Partition.Words != mem.SRAMWords {
		t.Fatalf("operator lookup = %+v, %v", g, ok)
	}
	got, err := tb.Register(7, DefaultACL(), 64, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight != 1 || got.Burst != DefaultBurst {
		t.Fatalf("defaults not resolved: %+v", got)
	}
	if _, err := tb.Register(Operator, OperatorACL(), 8, 1, 1); err == nil {
		t.Error("registering the operator succeeded")
	}
	reg, err := tb.Deregister(7)
	if err != nil || reg != got.Partition {
		t.Fatalf("Deregister = %+v, %v", reg, err)
	}
	if _, ok := tb.Lookup(7); ok {
		t.Error("deregistered tenant still resolves")
	}
}

func TestTableAdmitWeightedShare(t *testing.T) {
	tb := NewTable()
	// Tenant 1 holds 3x tenant 2's weight; burst 4 leaves headroom for
	// its 3-token refill below, burst 2 caps tenant 2.
	if _, err := tb.Register(1, DefaultACL(), 8, 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Register(2, DefaultACL(), 8, 1, 2); err != nil {
		t.Fatal(err)
	}
	const rate = 4000.0 // aggregate TPP/s: tenant 1 refills at 3000/s, tenant 2 at 1000/s
	now := netsim.Time(0)

	// Drain both bursts.
	for i := 0; i < 4; i++ {
		if !tb.Admit(1, now, rate) {
			t.Fatal("full bucket refused a token")
		}
	}
	for i := 0; i < 2; i++ {
		if !tb.Admit(2, now, rate) {
			t.Fatal("full bucket refused a token")
		}
	}
	if tb.Admit(1, now, rate) || tb.Admit(2, now, rate) {
		t.Fatal("empty bucket admitted")
	}
	if tb.Throttled(1) != 1 || tb.Throttled(2) != 1 {
		t.Fatalf("throttle counts = %d, %d; want 1, 1", tb.Throttled(1), tb.Throttled(2))
	}

	// After 1ms tenant 1 has earned 3 tokens, tenant 2 only 1.
	now += netsim.Millisecond
	for i := 0; i < 3; i++ {
		if !tb.Admit(1, now, rate) {
			t.Fatalf("tenant 1 refused on token %d of its 3-token refill", i)
		}
	}
	if tb.Admit(1, now, rate) {
		t.Error("tenant 1 admitted past its weighted share")
	}
	if !tb.Admit(2, now, rate) {
		t.Error("tenant 2 refused its single refilled token")
	}
	if tb.Admit(2, now, rate) {
		t.Error("tenant 2 admitted past its weighted share")
	}

	// Operator bypasses; unknown tenants have no bucket; rate 0 opens
	// the gate.
	if !tb.Admit(Operator, now, rate) {
		t.Error("operator throttled")
	}
	if tb.Admit(99, now, rate) {
		t.Error("unknown tenant admitted")
	}
	if !tb.Admit(99, now, 0) {
		t.Error("disabled gate throttled")
	}

	// Reboot refills both buckets.
	tb.ResetBuckets(now)
	if !tb.Admit(1, now, rate) || !tb.Admit(2, now, rate) {
		t.Error("ResetBuckets did not refill")
	}
}

func TestTableDeniedAccounting(t *testing.T) {
	tb := NewTable()
	if _, err := tb.Register(5, DefaultACL(), 8, 1, 1); err != nil {
		t.Fatal(err)
	}
	tb.NoteDenied(5)
	tb.NoteDenied(5)
	tb.NoteDenied(99) // unknown: dropped, not a crash
	if got := tb.Denied(5); got != 2 {
		t.Fatalf("Denied(5) = %d, want 2", got)
	}
	if got := tb.Denied(99); got != 0 {
		t.Fatalf("Denied(99) = %d, want 0", got)
	}
}
