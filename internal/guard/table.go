package guard

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/netsim"
)

// DefaultBurst is a tenant's token bucket depth when registered without
// an explicit burst, mirroring the global gate's default.
const DefaultBurst = 8

// tenantState is one tenant's runtime record: its grant (config) plus
// the soft state the grant governs — admission bucket and denial
// accounting.
type tenantState struct {
	grant Grant

	// Admission token bucket (soft state, refilled on reboot).
	tokens   float64
	refillAt netsim.Time

	// Cumulative accounting, one increment per event so the switch
	// counter, the metric and the span stream reconcile exactly.
	denied    uint64 // guarded accesses denied (poisoned loads + dropped stores)
	throttled uint64 // TPPs declined by this tenant's bucket
}

// Table is the switch-resident tenant registry: every grant in force on
// one switch, plus the per-tenant admission buckets that split the
// switch's aggregate TPP budget by weighted share.  The operator tenant
// is built in — always present, never registered, exempt from
// admission — so an unguarded switch and a guarded switch carrying only
// operator traffic behave identically.
//
// Table is not safe for concurrent use; the simulated dataplane is
// single-threaded per switch and the control plane serializes tenancy
// changes.
type Table struct {
	part      *Partitioner
	tenants   map[TenantID]*tenantState
	weightSum float64
}

// NewTable builds an empty tenant table over a fresh SRAM partitioner.
func NewTable() *Table {
	return &Table{
		part:    NewPartitioner(),
		tenants: make(map[TenantID]*tenantState),
	}
}

// SetReserved forwards a reserved-region callback to the table's
// partitioner so tenant partitions route around operator task regions;
// see Partitioner.SetReserved.
func (t *Table) SetReserved(fn func() []mem.Region) { t.part.SetReserved(fn) }

// Partitions returns every live tenant partition, sorted by base
// address, for the allocator side of the mutual-avoidance contract.
func (t *Table) Partitions() []mem.Region { return t.part.Regions() }

// Register admits tenant id with the given policy: acl governs its
// namespace access, words sizes its SRAM partition, weight its share of
// the switch's aggregate TPP admission rate, and burst its bucket
// depth.  Zero weight resolves to 1 and zero burst to DefaultBurst.
// The new bucket starts full.  Registering the operator or an already
// registered tenant fails without changing state.
func (t *Table) Register(id TenantID, acl ACL, words int, weight float64, burst int) (Grant, error) {
	if id == Operator {
		return Grant{}, fmt.Errorf("guard: the operator tenant is built in")
	}
	if _, ok := t.tenants[id]; ok {
		return Grant{}, fmt.Errorf("guard: tenant %d already registered", id)
	}
	if weight <= 0 {
		weight = 1
	}
	if burst <= 0 {
		burst = DefaultBurst
	}
	reg, err := t.part.Grant(id, words)
	if err != nil {
		return Grant{}, err
	}
	g := Grant{ACL: acl, Partition: reg, Weight: weight, Burst: burst}
	t.tenants[id] = &tenantState{grant: g, tokens: float64(burst)}
	t.weightSum += weight
	return g, nil
}

// Deregister removes tenant id, returning its partition so the caller
// can zero the words before they are re-granted.
func (t *Table) Deregister(id TenantID) (mem.Region, error) {
	st, ok := t.tenants[id]
	if !ok {
		return mem.Region{}, fmt.Errorf("guard: tenant %d not registered", id)
	}
	reg, err := t.part.Revoke(id)
	if err != nil {
		return mem.Region{}, err
	}
	t.weightSum -= st.grant.Weight
	delete(t.tenants, id)
	return reg, nil
}

// Lookup returns tenant id's grant.  The operator always resolves to
// its built-in whole-bank grant; an unregistered tenant resolves to
// nothing, and the guard denies it everything.
func (t *Table) Lookup(id TenantID) (Grant, bool) {
	if id == Operator {
		return OperatorGrant(), true
	}
	st, ok := t.tenants[id]
	if !ok {
		return Grant{}, false
	}
	return st.grant, true
}

// Admit charges tenant id's bucket one TPP execution at simulated time
// now, where rate is the switch's aggregate admission rate (TPPRate).
// The tenant's refill share is rate * Weight / ΣWeights, so a flooding
// tenant drains only its own bucket.  The operator is exempt, a
// non-positive rate disables the gate, and an unregistered tenant has
// no bucket to charge — its TPPs are throttled, not executed.
func (t *Table) Admit(id TenantID, now netsim.Time, rate float64) bool {
	if id == Operator || rate <= 0 {
		return true
	}
	st, ok := t.tenants[id]
	if !ok {
		return false
	}
	if now > st.refillAt {
		share := rate * st.grant.Weight / t.weightSum
		st.tokens += (now - st.refillAt).Seconds() * share
		if max := float64(st.grant.Burst); st.tokens > max {
			st.tokens = max
		}
	}
	st.refillAt = now
	if st.tokens < 1 {
		st.throttled++
		return false
	}
	st.tokens--
	return true
}

// NoteDenied records one denied guarded access for tenant id (the
// memory-stage counterpart of the tpps_denied metric and the
// StageAccessDeny span).  Unregistered tenants are counted too — their
// every access is a denial.
func (t *Table) NoteDenied(id TenantID) {
	if st, ok := t.tenants[id]; ok {
		st.denied++
	}
}

// Denied returns tenant id's cumulative denied-access count.
func (t *Table) Denied(id TenantID) uint64 {
	if st, ok := t.tenants[id]; ok {
		return st.denied
	}
	return 0
}

// Throttled returns how many of tenant id's TPPs its bucket declined.
func (t *Table) Throttled(id TenantID) uint64 {
	if st, ok := t.tenants[id]; ok {
		return st.throttled
	}
	return 0
}

// Tenants returns the registered tenant ids, sorted (the operator is
// built in and not listed).
func (t *Table) Tenants() []TenantID { return t.part.Tenants() }

// Partition returns tenant id's physical SRAM region.
func (t *Table) Partition(id TenantID) (mem.Region, bool) { return t.part.Lookup(id) }

// ResetBuckets refills every tenant's bucket and rebases its refill
// clock — the buckets are switch soft state, so a crash-restart boots
// them full just like the global gate.  Grants and cumulative denial
// accounting survive: they are config and host-visible history.
func (t *Table) ResetBuckets(now netsim.Time) {
	for _, id := range t.part.Tenants() {
		st := t.tenants[id]
		st.tokens = float64(st.grant.Burst)
		st.refillAt = now
	}
}
