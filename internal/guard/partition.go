package guard

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Partitioner carves the scratch SRAM bank into non-overlapping
// per-tenant regions using deterministic first-fit over the gaps
// between existing grants.  It is the tenant-facing sibling of the
// task-facing mem.Allocator: one partition per tenant, grants and
// revokes in any order, and two invariants that partition_prop_test.go
// property-tests across random grant/revoke sequences:
//
//  1. no two live partitions ever overlap, and every partition lies
//     entirely inside [SRAMBase, SRAMBase+SRAMWords);
//  2. relocation through the resulting Grant is a bijection from the
//     tenant's 0..Words-1 window onto its physical region.
//
// The operator tenant is not carved here: its identity-mapped
// whole-bank partition is an infrastructure overlay (OperatorGrant),
// deliberately allowed to alias every tenant's memory.
//
// Partitioner is not safe for concurrent use; the control plane
// serializes tenancy changes.
type Partitioner struct {
	regions  map[TenantID]mem.Region
	reserved func() []mem.Region
}

// NewPartitioner builds an empty partitioner over the SRAM bank.
func NewPartitioner() *Partitioner {
	return &Partitioner{regions: make(map[TenantID]mem.Region)}
}

// Grant reserves words of SRAM for tenant id.  Granting the operator,
// a zero or negative size, a second region for a live tenant, or more
// words than any gap holds all fail without changing state.
func (p *Partitioner) Grant(id TenantID, words int) (mem.Region, error) {
	if id == Operator {
		return mem.Region{}, fmt.Errorf("guard: the operator tenant owns the whole bank")
	}
	if words <= 0 {
		return mem.Region{}, fmt.Errorf("guard: tenant %d requested %d words", id, words)
	}
	if words > mem.SRAMWords {
		return mem.Region{}, fmt.Errorf("guard: tenant %d requested %d words, bank holds %d", id, words, mem.SRAMWords)
	}
	if _, ok := p.regions[id]; ok {
		return mem.Region{}, fmt.Errorf("guard: tenant %d already holds a partition", id)
	}
	taken := make([]mem.Region, 0, len(p.regions))
	for _, r := range p.regions { //lint:allow maporder (sorted below)
		taken = append(taken, r)
	}
	if p.reserved != nil {
		taken = append(taken, p.reserved()...)
	}
	sort.Slice(taken, func(i, j int) bool { return taken[i].Base < taken[j].Base })
	cursor := mem.SRAMBase
	for _, r := range taken {
		if int(r.Base-cursor) >= words {
			break
		}
		if r.End() > cursor {
			cursor = r.End()
		}
	}
	if int(mem.SRAMBase)+mem.SRAMWords-int(cursor) < words {
		return mem.Region{}, fmt.Errorf("guard: SRAM exhausted: tenant %d wants %d words", id, words)
	}
	reg := mem.Region{Base: cursor, Words: words}
	p.regions[id] = reg
	return reg, nil
}

// SetReserved registers a callback listing SRAM regions the partitioner
// must never carve into — operator task regions held by the switch's
// mem.Allocator.  Without it a tenant partition can land exactly over a
// live operator region (both sides first-fit from SRAMBase blind to each
// other): the grant's zeroing wipes operator state, and the tenant's
// relocated window aliases words like reflex liveness evidence.  The
// callback is consulted on every Grant; nil (the default) reserves
// nothing, which keeps the standalone partitioner property tests exact.
func (p *Partitioner) SetReserved(fn func() []mem.Region) { p.reserved = fn }

// Regions returns every live tenant partition, sorted by base address —
// the partitioner-side half of the mutual-avoidance contract with the
// operator allocator.
func (p *Partitioner) Regions() []mem.Region {
	out := make([]mem.Region, 0, len(p.regions))
	for _, r := range p.regions { //lint:allow maporder (sorted before return)
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Revoke releases tenant id's partition, returning the region so the
// caller can zero its words (asic.Switch.RevokeTenant does).
func (p *Partitioner) Revoke(id TenantID) (mem.Region, error) {
	r, ok := p.regions[id]
	if !ok {
		return mem.Region{}, fmt.Errorf("guard: tenant %d holds no partition", id)
	}
	delete(p.regions, id)
	return r, nil
}

// Lookup returns tenant id's partition.
func (p *Partitioner) Lookup(id TenantID) (mem.Region, bool) {
	r, ok := p.regions[id]
	return r, ok
}

// Tenants returns the ids of all tenants holding partitions, sorted.
func (p *Partitioner) Tenants() []TenantID {
	ids := make([]TenantID, 0, len(p.regions))
	for id := range p.regions { //lint:allow maporder (sorted before return)
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
