// Package guard is the multi-tenant isolation subsystem for TPP
// switches: the answer to §4's open problem that "TPPs give end-hosts
// raw read/write access to switch state" (the extended version of the
// paper — "Millions of Little Minions", SIGCOMM 2014 — answers it with
// per-tenant memory protection, TPP rate limiting and edge
// enforcement; this package reproduces that design on the simulated
// substrate).
//
// # Threat model
//
// A tenant is a mutually distrusting principal (a cloud customer, a
// network task owner) whose end-hosts inject TPPs through a trusted
// edge: the endhost.NIC stamps every outgoing TPP with its tenant id
// and seals it — a guest cannot forge another tenant's identity,
// because the NIC (the hypervisor vswitch of the SIGCOMM paper)
// overwrites whatever the guest wrote.  Untrusted switch ports strip
// TPPs entirely, so the only TPPs inside the fabric carry edge-sealed
// tenant ids.  Within that boundary a tenant may still be buggy or
// hostile: it can aim STOREs at any of the 4096 word addresses,
// including SRAM another tenant's control loop depends on, and it can
// flood TPPs far above its fair share of TCPU capacity.
//
// # Mechanisms
//
//   - Per-tenant SRAM partitions (Partitioner): the 2048-word scratch
//     SRAM bank is carved into non-overlapping base+bounds regions.
//     Tenant programs address SRAM tenant-relative — their word 0 is
//     SRAMBase — and the guard relocates each access into the tenant's
//     physical partition, so a forged absolute address lands in the
//     forger's own memory or nowhere.  Partitions are zeroed on tenant
//     teardown and (with the rest of SRAM) on switch crash-restart.
//
//   - Per-namespace ACLs (ACL): read and write permission bits per
//     memory namespace.  The defaults make queue/link/switch statistics
//     readable by all and the per-port task scratch words writable only
//     by tenants explicitly granted the permission; the operator tenant
//     holds every permission.  The ACL only ever narrows the base
//     protection map (mem.Writable / mem.Readable) — it cannot make a
//     statistics register writable.
//
//   - Fail-forward enforcement (Table, wired into the ASIC's TCPU
//     memory stage): a denied LOAD returns the Poison value and a
//     denied STORE is silently dropped; execution continues and the
//     packet keeps forwarding with core.FlagAccessFault set, a
//     tpps_denied metric and a StageAccessDeny span.  The gate protects
//     state; it never stalls the dataplane.
//
//   - Per-tenant admission quotas (Table.Admit): the switch's aggregate
//     TPP execution budget is split into per-tenant token buckets with
//     weighted-share refill, so one flooding tenant exhausts only its
//     own quota and every other tenant's TPPs keep executing.
//
// internal/verify checks programs against a tenant's Grant statically
// (acl-denied / partition-oob diagnostics), so a program the verifier
// accepts for tenant T never trips a dynamic denial: both sides decide
// through the same Grant methods.
package guard
