package guard

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/mem"
)

// TestPartitionInvariants drives the partitioner through long random
// grant/revoke sequences and checks, after every step, the two
// invariants the guard's safety argument rests on: live partitions
// never overlap and never escape the SRAM bank, and relocation through
// each resulting grant is a bijection from the tenant's relative window
// onto exactly its physical region.
func TestPartitionInvariants(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		p := NewPartitioner()
		live := make(map[TenantID]mem.Region)
		for step := 0; step < 2000; step++ {
			id := TenantID(1 + rng.Intn(31))
			if _, ok := live[id]; ok && rng.Intn(2) == 0 {
				reg, err := p.Revoke(id)
				if err != nil {
					t.Fatalf("seed %d step %d: revoke live tenant %d: %v", seed, step, id, err)
				}
				if reg != live[id] {
					t.Fatalf("seed %d step %d: revoke returned %+v, granted %+v", seed, step, reg, live[id])
				}
				delete(live, id)
			} else if !ok {
				// Sizes span degenerate, typical and bank-filling asks.
				words := []int{-1, 0, 1, 2, 7, 64, 400, mem.SRAMWords, mem.SRAMWords + 1}[rng.Intn(9)]
				reg, err := p.Grant(id, words)
				if err == nil {
					live[id] = reg
				}
			}
			checkPartitions(t, seed, step, p, live)
		}
	}
}

// checkPartitions asserts the post-step invariants.
func checkPartitions(t *testing.T, seed int64, step int, p *Partitioner, live map[TenantID]mem.Region) {
	t.Helper()
	ids := p.Tenants()
	if len(ids) != len(live) {
		t.Fatalf("seed %d step %d: partitioner holds %d tenants, model %d", seed, step, len(ids), len(live))
	}
	regs := make([]mem.Region, 0, len(ids))
	for _, id := range ids {
		reg, ok := p.Lookup(id)
		if !ok || reg != live[id] {
			t.Fatalf("seed %d step %d: tenant %d region drifted: %+v vs %+v", seed, step, id, reg, live[id])
		}
		// Inside the bank, non-degenerate.
		if reg.Words <= 0 || reg.Base < mem.SRAMBase ||
			int(reg.Base)+reg.Words > int(mem.SRAMBase)+mem.SRAMWords {
			t.Fatalf("seed %d step %d: tenant %d region escapes SRAM: %+v", seed, step, id, reg)
		}
		regs = append(regs, reg)
		checkBijection(t, seed, step, id, reg)
	}
	// Pairwise disjoint: sorted by base, each must end before the next
	// begins.
	sort.Slice(regs, func(i, j int) bool { return regs[i].Base < regs[j].Base })
	for i := 1; i < len(regs); i++ {
		if regs[i-1].End() > regs[i].Base {
			t.Fatalf("seed %d step %d: partitions overlap: %+v and %+v", seed, step, regs[i-1], regs[i])
		}
	}
}

// checkBijection walks the whole SRAM namespace through a grant over
// reg: in-window addresses must map injectively onto exactly the
// granted words, out-of-window addresses must be refused.
func checkBijection(t *testing.T, seed int64, step int, id TenantID, reg mem.Region) {
	t.Helper()
	g := Grant{ACL: DefaultACL(), Partition: reg}
	hit := make(map[mem.Addr]bool, reg.Words)
	for k := 0; k < mem.SRAMWords; k++ {
		rel := mem.SRAMBase + mem.Addr(k)
		phys, ok := g.Relocate(rel)
		if k < reg.Words {
			if !ok {
				t.Fatalf("seed %d step %d: tenant %d word %d refused inside its window", seed, step, id, k)
			}
			if !reg.Contains(phys) {
				t.Fatalf("seed %d step %d: tenant %d word %d relocated to %#x outside %+v", seed, step, id, k, phys, reg)
			}
			if hit[phys] {
				t.Fatalf("seed %d step %d: tenant %d relocation not injective at %#x", seed, step, id, phys)
			}
			hit[phys] = true
		} else if ok {
			t.Fatalf("seed %d step %d: tenant %d word %d relocated past its bound", seed, step, id, k)
		}
	}
	// Injective + |domain| == |range| == Words ⇒ onto: surjectivity for
	// free, but assert it anyway.
	if len(hit) != reg.Words {
		t.Fatalf("seed %d step %d: tenant %d covered %d of %d words", seed, step, id, len(hit), reg.Words)
	}
}
