package guard

import (
	"fmt"

	"repro/internal/mem"
)

// TenantID identifies one isolation principal.  It travels in the TPP
// header's reserved byte, stamped and sealed by the trusted edge
// (endhost.NIC), so switches can attribute every access to a tenant.
type TenantID uint8

// Operator is the distinguished infrastructure tenant: the control
// plane's own TPPs (allocator agents, debuggers) run under it with
// every permission and an identity SRAM mapping.  It is the zero value,
// so untenanted legacy traffic is operator traffic — the trusted edge
// is what keeps guests from claiming it.
const Operator TenantID = 0

// Poison is the value a denied LOAD returns.  It is deliberately loud:
// a tenant reading memory outside its grant sees this constant, never
// another tenant's data.
const Poison uint32 = 0xdead10cc

// Perm is a read/write permission bit pair.
type Perm uint8

// Permission bits.
const (
	PermRead  Perm = 1 << 0
	PermWrite Perm = 1 << 1
	PermRW         = PermRead | PermWrite
)

// CanRead reports the read bit.
func (p Perm) CanRead() bool { return p&PermRead != 0 }

// CanWrite reports the write bit.
func (p Perm) CanWrite() bool { return p&PermWrite != 0 }

// String renders the pair as "r-", "-w", "rw" or "--".
func (p Perm) String() string {
	s := [2]byte{'-', '-'}
	if p.CanRead() {
		s[0] = 'r'
	}
	if p.CanWrite() {
		s[1] = 'w'
	}
	return string(s[:])
}

// ACL is a per-namespace permission table.  The SRAM entry applies
// inside the tenant's partition only — outside it every access is
// denied regardless of the ACL.  Permissions only narrow the base
// protection map: granting PermWrite on the Switch namespace does not
// make statistics registers writable, it merely stops the guard from
// being the reason a store fails.
type ACL struct {
	Switch  Perm // [Switch:*] statistics and config words
	Port    Perm // [Link:*] including the task scratch words
	Queue   Perm // [Queue:*] statistics
	Packet  Perm // [PacketMetadata:*] registers
	SRAM    Perm // the tenant's own partition
	PortAbs Perm // the absolute per-port statistics window
}

// perm returns the entry governing namespace ns.  Unknown or invalid
// namespaces carry no permissions.
func (a ACL) perm(ns mem.Namespace) Perm {
	switch ns {
	case mem.NSSwitch:
		return a.Switch
	case mem.NSPort:
		return a.Port
	case mem.NSQueue:
		return a.Queue
	case mem.NSPacket:
		return a.Packet
	case mem.NSSRAM:
		return a.SRAM
	case mem.NSPortAbs:
		return a.PortAbs
	}
	return 0
}

// Allows reports whether the ACL grants the access class (write=false
// is a load) on namespace ns.
func (a ACL) Allows(ns mem.Namespace, write bool) bool {
	if write {
		return a.perm(ns).CanWrite()
	}
	return a.perm(ns).CanRead()
}

// DefaultACL is the standard tenant policy: every statistics namespace
// readable (queue depths, link utilization and switch counters are the
// telemetry the paper's network tasks live on), the tenant's own SRAM
// partition read-write, and no write access to shared state — in
// particular not to the per-port task scratch words, which carry
// cross-tenant control state like the RCP rate register.
func DefaultACL() ACL {
	return ACL{
		Switch:  PermRead,
		Port:    PermRead,
		Queue:   PermRead,
		Packet:  PermRead,
		SRAM:    PermRW,
		PortAbs: PermRead,
	}
}

// ControlACL is DefaultACL plus write access to the per-port task
// scratch words (the Link and PortAbs namespaces): the policy for
// tenants running in-network control loops such as RCP*, whose update
// phase stores into [Link:RCP-RateRegister].
func ControlACL() ACL {
	a := DefaultACL()
	a.Port = PermRW
	a.PortAbs = PermRW
	return a
}

// OperatorACL holds every permission; combined with the operator's
// whole-bank partition it reproduces the unguarded memory map exactly.
func OperatorACL() ACL {
	return ACL{Switch: PermRW, Port: PermRW, Queue: PermRW,
		Packet: PermRW, SRAM: PermRW, PortAbs: PermRW}
}

// Grant is one tenant's complete entitlement on one switch: its ACL,
// its SRAM partition, and its share of the TCPU admission budget.  The
// static verifier and the dynamic guard both decide through Grant
// methods, which is what makes "verified against the grant" imply
// "never denied at runtime".
type Grant struct {
	ACL ACL
	// Partition is the tenant's physical SRAM region.  Tenant programs
	// never see physical addresses: they address words 0..Words-1 of
	// the partition as mem.SRAMBase+0..Words-1 and the guard relocates.
	Partition mem.Region
	// Weight is the tenant's share of the switch's aggregate TPP
	// admission rate; refill is TPPRate * Weight / ΣWeights.
	Weight float64
	// Burst is the tenant's token bucket depth.
	Burst int
}

// Words returns the partition size in words.
func (g *Grant) Words() int { return g.Partition.Words }

// InPartition reports whether tenant-relative SRAM address a (an
// NSSRAM address whose offset is interpreted relative to the grant)
// falls inside the partition's bounds.
func (g *Grant) InPartition(a mem.Addr) bool {
	k := mem.SRAMIndex(a)
	return k >= 0 && k < g.Partition.Words
}

// Relocate applies base+bounds relocation to tenant-relative SRAM
// address a, returning the physical address.  ok is false when a is
// outside the partition (or not an SRAM address at all).  Relocation
// is a bijection from the tenant's 0..Words-1 window onto the physical
// partition — property-tested in partition_prop_test.go.
func (g *Grant) Relocate(a mem.Addr) (mem.Addr, bool) {
	k := mem.SRAMIndex(a)
	if k < 0 || k >= g.Partition.Words {
		return a, false
	}
	return g.Partition.Base + mem.Addr(k), true
}

// CheckLoad decides a LOAD of address a under this grant: phys is the
// (possibly relocated) address to read, ok is false when the guard
// denies the access.  Non-SRAM addresses are never relocated.
func (g *Grant) CheckLoad(a mem.Addr) (phys mem.Addr, ok bool) {
	return g.check(a, false)
}

// CheckStore decides a STORE to address a under this grant.
func (g *Grant) CheckStore(a mem.Addr) (phys mem.Addr, ok bool) {
	return g.check(a, true)
}

func (g *Grant) check(a mem.Addr, write bool) (mem.Addr, bool) {
	ns := mem.NamespaceOf(a)
	if !g.ACL.Allows(ns, write) {
		return a, false
	}
	if ns == mem.NSSRAM {
		return g.Relocate(a)
	}
	return a, true
}

// OperatorGrant returns the built-in entitlement of the infrastructure
// tenant: every permission, the whole SRAM bank as an identity-mapped
// partition, and admission exempt from the per-tenant buckets (weight
// zero is special-cased by Table.Admit).
func OperatorGrant() Grant {
	return Grant{
		ACL:       OperatorACL(),
		Partition: mem.Region{Base: mem.SRAMBase, Words: mem.SRAMWords},
	}
}

// String summarizes the grant for diagnostics.
func (g *Grant) String() string {
	return fmt.Sprintf("guard: partition [%#x,+%d) weight %g burst %d",
		uint16(g.Partition.Base), g.Partition.Words, g.Weight, g.Burst)
}
