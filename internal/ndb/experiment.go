package ndb

import (
	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/tcam"
	"repro/internal/topo"
)

// Config parameterizes the forwarding-plane-debugger experiment on a
// 2x2 leaf-spine fabric.
type Config struct {
	Packets  int // instrumented data packets to trace
	EdgeMbps float64
	Seed     int64

	// Metrics and Trace, when non-nil, thread the telemetry subsystem
	// through every switch in the fabric (see internal/obs); the span
	// log then provides an out-of-band journey to cross-check the
	// in-band TPP traces (JourneyFromSpans).
	Metrics *obs.Registry
	Trace   *obs.Tracer
}

// DefaultConfig is the canonical run.
func DefaultConfig() Config {
	return Config{Packets: 200, EdgeMbps: 100, Seed: 1}
}

// Result summarizes one run.
type Result struct {
	Config Config

	// Phase 1: conforming network.
	CleanTraces     int
	CleanViolations int

	// Phase 2: after the injected misconfiguration (the controller's
	// shadow state goes stale).
	BadTraces      int
	BadViolations  []Violation
	ViolationKinds map[ViolationKind]int

	// Overhead comparison, TPP in-band bytes vs baseline packet
	// copies, over the same traffic.
	TPPInBandBytes    uint64
	BaselineCopies    uint64
	BaselineCopyBytes uint64
	JourneysAgree     bool

	// LastUID and LastTrace identify the final in-band trace collected,
	// so out-of-band span logs (Config.Trace) can be cross-validated
	// against it with JourneyFromSpans.
	LastUID   uint64
	LastTrace []HopRecord
}

// Run executes the experiment: trace a conforming fabric, inject a
// stale-rule misconfiguration, and show the TPP traces catching it.
func Run(cfg Config) Result {
	sim := netsim.New(cfg.Seed)
	edge := topo.Mbps(cfg.EdgeMbps, 10*netsim.Microsecond)
	fabric := topo.Mbps(cfg.EdgeMbps, 10*netsim.Microsecond)
	n, hosts, leaves, spines := topo.LeafSpine(sim, 2, 2, 1, edge, fabric,
		asic.Config{Metrics: cfg.Metrics, Trace: cfg.Trace})
	src, dst := hosts[0][0], hosts[1][0]

	// Port bookkeeping from construction order: each leaf connects to
	// spine0 then spine1 on ports 0 and 1; hosts follow.
	leaf0ToSpine0 := 0
	leaf0ToSpine1 := 1
	spine0ToLeaf1 := 1 // spine ports: leaf0 wired first (port 0), then leaf1
	spine1ToLeaf1 := 1
	dstPort := n.AttachmentOf(dst).Port

	ctl := NewController()
	ctl.InstallPath(dst.IP, 10, []PathHop{
		{Switch: leaves[0], OutPort: leaf0ToSpine0},
		{Switch: spines[0], OutPort: spine0ToLeaf1},
		{Switch: leaves[1], OutPort: dstPort},
	})
	// The alternate spine also knows the way (valid state, just not
	// the intended path for this destination).
	altID := spines[1].TCAM().Insert(10, mustRule(dst.IP), maskRule(dst.IP),
		tcam.Action{OutPort: spine1ToLeaf1})
	_ = altID
	// Reverse path so nothing floods.
	srcPort := n.AttachmentOf(src).Port
	ctl.InstallPath(src.IP, 10, []PathHop{
		{Switch: leaves[1], OutPort: 0 /* to spine0 */},
		{Switch: spines[0], OutPort: 0 /* to leaf0 */},
		{Switch: leaves[0], OutPort: srcPort},
	})

	copyCollector := NewCopyCollector()
	for _, sw := range append(append([]*asic.Switch{}, leaves...), spines...) {
		copyCollector.AttachTo(sw)
	}

	res := Result{Config: cfg, ViolationKinds: make(map[ViolationKind]int)}
	var lastTrace []HopRecord
	var lastUID uint64
	verify := func(pkt *core.Packet) {
		if pkt.TPP == nil {
			return
		}
		trace := ParseTrace(pkt.TPP)
		lastTrace = trace
		lastUID = pkt.Meta.UID
		res.TPPInBandBytes += uint64(pkt.TPP.WireLen())
		violations := ctl.VerifyTrace(dst.IP, trace)
		if len(violations) == 0 {
			res.CleanTraces++
			return
		}
		res.BadTraces++
		res.BadViolations = append(res.BadViolations, violations...)
		for _, v := range violations {
			res.ViolationKinds[v.Kind]++
		}
	}
	dst.HandleDefault(verify)

	send := func(count int) {
		for i := 0; i < count; i++ {
			pkt := src.NewPacket(dst.MAC, dst.IP, 6000, 6001, 200)
			Instrument(pkt, 5)
			src.Send(pkt)
		}
		sim.RunUntil(sim.Now() + 500*netsim.Millisecond)
	}

	// Phase 1: conforming fabric.
	send(cfg.Packets / 2)
	res.CleanViolations = len(res.BadViolations)

	// The TPP journey and the baseline copy journey must agree.
	copyTrace := copyCollector.Journey(lastUID)
	res.JourneysAgree = tracesEqual(lastTrace, copyTrace)

	// Phase 2: inject the misconfiguration §2.3 worries about — the
	// hardware rule changes underneath the controller (rerouted via
	// the other spine, bumping the entry version), so the controller's
	// shadow state is stale.
	intended := ctl.Expected(dst.IP)
	leaves[0].TCAM().Update(intended[0].EntryID, tcam.Action{OutPort: leaf0ToSpine1})
	send(cfg.Packets / 2)

	res.BaselineCopies = copyCollector.Copies
	res.BaselineCopyBytes = copyCollector.CopyBytes
	res.LastUID = lastUID
	res.LastTrace = lastTrace
	return res
}

func mustRule(ip uint32) tcam.Key { v, _ := tcam.DstIPRule(ip); return v }
func maskRule(ip uint32) tcam.Key { _, m := tcam.DstIPRule(ip); return m }

func tracesEqual(a, b []HopRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
