package ndb

import (
	"testing"

	"repro/internal/obs"
)

// TestJourneyFromSpans checks the pure reconstruction: parser spans open
// hops, TCAM spans fill in the matched rule, link events are ignored.
func TestJourneyFromSpans(t *testing.T) {
	events := []obs.SpanEvent{
		{Stage: obs.StageLinkTx, Node: 7, UID: 1},
		{Stage: obs.StageParser, Node: 1, A: 3, UID: 1},
		{Stage: obs.StageLookupTCAM, Node: 1, A: 10, B: 2, UID: 1},
		{Stage: obs.StageEnqueue, Node: 1, UID: 1},
		{Stage: obs.StageLinkRx, Node: 8, UID: 1},
		{Stage: obs.StageParser, Node: 2, A: 0, UID: 1},
		// Hop 2 never reaches its lookup (e.g. dropped): stays zero.
	}
	j := JourneyFromSpans(events)
	if len(j) != 2 {
		t.Fatalf("hops = %d, want 2: %+v", len(j), j)
	}
	want0 := HopRecord{SwitchID: 1, InPort: 3, EntryID: 10, EntryVersion: 2}
	if j[0] != want0 {
		t.Fatalf("hop 0 = %+v, want %+v", j[0], want0)
	}
	if j[1] != (HopRecord{SwitchID: 2}) {
		t.Fatalf("hop 1 = %+v", j[1])
	}
}

// TestSpanJourneyMatchesTPPTrace runs the leaf-spine experiment with the
// lifecycle tracer attached and checks that the out-of-band span log
// reconstructs exactly the journey the in-band TPP recorded — the two
// telemetry mechanisms cross-validate.
func TestSpanJourneyMatchesTPPTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Metrics = obs.NewRegistry()
	cfg.Trace = obs.NewTracer(1 << 18)
	res := Run(cfg)

	if res.LastUID == 0 || len(res.LastTrace) == 0 {
		t.Fatal("experiment produced no in-band trace")
	}
	spans := cfg.Trace.Journey(res.LastUID)
	if len(spans) == 0 {
		t.Fatal("tracer recorded no spans for the last traced packet")
	}
	got := JourneyFromSpans(spans)
	if len(got) != len(res.LastTrace) {
		t.Fatalf("span journey has %d hops, TPP trace has %d:\nspans: %+v\ntpp:   %+v",
			len(got), len(res.LastTrace), got, res.LastTrace)
	}
	for i := range got {
		if got[i] != res.LastTrace[i] {
			t.Fatalf("hop %d: span %+v != tpp %+v", i, got[i], res.LastTrace[i])
		}
	}

	// The registry saw the fabric's activity: every switch counted
	// packets and the TCPU cycle histogram filled in.
	snap := cfg.Metrics.Snapshot(0)
	var tcpuObs uint64
	for _, m := range snap.Metrics {
		if m.Kind == obs.KindHistogram && len(m.Name) > 11 &&
			m.Name[len(m.Name)-11:] == "tcpu_cycles" {
			tcpuObs += m.Count
		}
	}
	if tcpuObs == 0 {
		t.Fatal("no TCPU cycle observations recorded")
	}
}
