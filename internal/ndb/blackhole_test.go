package ndb

import (
	"testing"

	"repro/internal/obs"
)

// TestBlackholeLocalizesFailedLink is the acceptance test: the
// experiment must deterministically identify the injected failed link
// — and only it — from TPP hop traces.
func TestBlackholeLocalizesFailedLink(t *testing.T) {
	cfg := DefaultBlackholeConfig()
	cfg.Trace = obs.NewTracer(1 << 14)
	res := RunBlackhole(cfg)

	walks := cfg.Spines * (cfg.Leaves - 1) * cfg.Spines
	if res.BaselinePaths != walks {
		t.Fatalf("baseline round answered %d/%d walks", res.BaselinePaths, walks)
	}
	if !res.Localized {
		t.Fatalf("not localized: suspects = %v (candidates %v, proven up %v)",
			res.Suspects, res.Candidates, res.ProvenUp)
	}
	want := LinkID{Leaf: cfg.FailLeaf, Spine: cfg.FailSpine}
	if res.Suspects[0] != want {
		t.Fatalf("localized %v, injected fault was %v", res.Suspects[0], want)
	}
	if res.RecoveredPaths != walks {
		t.Fatalf("recovery round answered %d/%d walks", res.RecoveredPaths, walks)
	}
	if res.Retransmits == 0 {
		t.Fatal("fault round never exercised probe retries")
	}
	if res.TimedOut == 0 {
		t.Fatal("no probe was reaped during the outage")
	}
	if res.FaultSpans != 2 {
		t.Fatalf("fault spans in stream = %d, want 2 (inject + recover)", res.FaultSpans)
	}
}

// TestBlackholeDeterministicAcrossRuns: same config, same verdict and
// same probe accounting — the whole hunt replays by seed.
func TestBlackholeDeterministicAcrossRuns(t *testing.T) {
	a := RunBlackhole(DefaultBlackholeConfig())
	b := RunBlackhole(DefaultBlackholeConfig())
	if a.ProbesSent != b.ProbesSent || a.TimedOut != b.TimedOut ||
		a.Retransmits != b.Retransmits {
		t.Fatalf("probe accounting diverged: %+v vs %+v", a, b)
	}
	if len(a.Suspects) != len(b.Suspects) || a.Suspects[0] != b.Suspects[0] {
		t.Fatalf("verdicts diverged: %v vs %v", a.Suspects, b.Suspects)
	}
}

// TestBlackholeOtherLink: moving the injected fault moves the verdict
// with it — the localization tracks the fault, not a fixed answer.
func TestBlackholeOtherLink(t *testing.T) {
	cfg := DefaultBlackholeConfig()
	cfg.FailLeaf, cfg.FailSpine = 2, 1
	res := RunBlackhole(cfg)
	if !res.Localized {
		t.Fatalf("not localized: suspects = %v", res.Suspects)
	}
	if want := (LinkID{Leaf: 2, Spine: 1}); res.Suspects[0] != want {
		t.Fatalf("localized %v, want %v", res.Suspects[0], want)
	}
}

// TestBlackholeSourceLegFallsBackToCandidates: when the failed link is
// on the source's own leg (leaf0-spine0), every probe via spine 0 dies,
// so nothing can prove the shared first hop up — the suspect set then
// degrades to the full candidate set of the failed paths, and the
// verdict is correctly "not localized to one link".
func TestBlackholeSourceLegFallsBackToCandidates(t *testing.T) {
	cfg := DefaultBlackholeConfig()
	cfg.FailLeaf, cfg.FailSpine = 0, 0
	res := RunBlackhole(cfg)
	if res.Localized {
		t.Fatalf("source-leg fault cannot be pinned to one link, got %v", res.Suspects)
	}
	if len(res.Suspects) == 0 {
		t.Fatal("no suspects at all despite dead paths")
	}
	// The true link must at least be among the suspects.
	found := false
	for _, l := range res.Suspects {
		if l == (LinkID{Leaf: 0, Spine: 0}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("true fault missing from suspects %v", res.Suspects)
	}
}
