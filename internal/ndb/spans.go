package ndb

import "repro/internal/obs"

// JourneyFromSpans reconstructs a packet's per-hop journey from its
// lifecycle span events (as returned by obs.Tracer.Journey): the switch
// id and input port come from the parser span, the matched rule and its
// version from the TCAM lookup span.  It yields the same HopRecord
// sequence the in-band TPP trace carries, so the two collection
// mechanisms (§2.3 TPPs vs. out-of-band telemetry) can cross-validate
// each other.
//
// Link-level events (serialization, loss, delivery) are skipped; a hop
// that never reached its lookup stage (stripped, dropped at the parser)
// still appears, with a zero entry id and version.
func JourneyFromSpans(events []obs.SpanEvent) []HopRecord {
	var out []HopRecord
	cur := -1
	for _, ev := range events {
		switch ev.Stage {
		case obs.StageParser:
			out = append(out, HopRecord{
				SwitchID: ev.Node,
				InPort:   uint32(ev.A),
			})
			cur = len(out) - 1
		case obs.StageLookupTCAM:
			if cur >= 0 && out[cur].SwitchID == ev.Node {
				out[cur].EntryID = uint32(ev.A)
				out[cur].EntryVersion = uint32(ev.B)
			}
		}
	}
	return out
}
