// Package ndb implements the §2.3 network task: a forwarding-plane
// debugger for a software-defined network.  A trusted entity inserts a
// TPP on packets that records, at every hop, the switch id, the matched
// flow-table entry and its version, and the input port.  The collector
// reassembles these traces into packet journeys and verifies them
// against the controller's intended forwarding policy, catching wrong
// paths, stale hardware rules, loops and black holes "without requiring
// the network to create additional packet copies".
//
// The packet-copy baseline of the original ndb [8] is also implemented
// (CopyCollector) so the in-band overhead comparison can be measured.
package ndb

import (
	"fmt"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/mem"
)

// traceWords is the per-hop record size of the trace program.
const traceWords = 4

// TraceProgram returns the §2.3 program (extended with the entry
// version, which Table 2 lists as the "flow table version number"
// statistic ndb needs):
//
//	PUSH [Switch:ID]
//	PUSH [PacketMetadata:MatchedEntryID]
//	PUSH [PacketMetadata:InputPort]
//	PUSH [PacketMetadata:MatchedEntryVersion]
func TraceProgram(maxHops int) *core.TPP {
	return core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.SwitchBase + mem.SwitchID)},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketMatchedID)},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketInputPort)},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketMatchedVer)},
	}, traceWords*maxHops)
}

// Instrument attaches a fresh trace TPP to a packet ("a trusted entity
// insert[s] the TPP shown below on all its packets").
func Instrument(pkt *core.Packet, maxHops int) {
	pkt.TPP = TraceProgram(maxHops)
	pkt.Eth.Type = core.EtherTypeTPP
}

// HopRecord is one hop of a packet's journey.
type HopRecord struct {
	SwitchID     uint32
	EntryID      uint32
	InPort       uint32
	EntryVersion uint32
}

// ParseTrace extracts the journey from a received trace TPP.
func ParseTrace(t *core.TPP) []HopRecord {
	hops := int(t.Ptr) / 4 / traceWords
	out := make([]HopRecord, 0, hops)
	for i := 0; i < hops; i++ {
		b := i * traceWords
		out = append(out, HopRecord{
			SwitchID:     t.Word(b),
			EntryID:      t.Word(b + 1),
			InPort:       t.Word(b + 2),
			EntryVersion: t.Word(b + 3),
		})
	}
	return out
}

// Expectation is the controller's intent for one hop.
type Expectation struct {
	SwitchID     uint32
	EntryID      uint32
	EntryVersion uint32
}

// ViolationKind classifies a forwarding-policy violation.
type ViolationKind string

// The violation classes the verifier reports.
const (
	WrongSwitch  ViolationKind = "wrong-switch"   // path diverged
	WrongEntry   ViolationKind = "wrong-entry"    // unexpected rule matched
	StaleEntry   ViolationKind = "stale-entry"    // rule version != intent
	PathTooShort ViolationKind = "path-too-short" // black hole / early exit
	PathTooLong  ViolationKind = "path-too-long"  // extra hops
	LoopDetected ViolationKind = "loop"           // a switch repeats
)

// Violation is one verification finding.
type Violation struct {
	Kind ViolationKind
	Hop  int
	Got  HopRecord
	Want Expectation
}

// String formats the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s at hop %d: got switch=%d entry=%d v%d, want switch=%d entry=%d v%d",
		v.Kind, v.Hop, v.Got.SwitchID, v.Got.EntryID, v.Got.EntryVersion,
		v.Want.SwitchID, v.Want.EntryID, v.Want.EntryVersion)
}

// Verify compares a recorded journey against the intended path and
// returns every violation found (empty means the dataplane conforms).
func Verify(trace []HopRecord, want []Expectation) []Violation {
	var out []Violation

	seen := make(map[uint32]int)
	for i, h := range trace {
		if at, dup := seen[h.SwitchID]; dup {
			out = append(out, Violation{Kind: LoopDetected, Hop: i, Got: h,
				Want: Expectation{SwitchID: trace[at].SwitchID}})
		}
		seen[h.SwitchID] = i
	}

	n := min(len(trace), len(want))
	for i := 0; i < n; i++ {
		got, exp := trace[i], want[i]
		switch {
		case got.SwitchID != exp.SwitchID:
			out = append(out, Violation{Kind: WrongSwitch, Hop: i, Got: got, Want: exp})
		case got.EntryID != exp.EntryID:
			out = append(out, Violation{Kind: WrongEntry, Hop: i, Got: got, Want: exp})
		case got.EntryVersion != exp.EntryVersion:
			out = append(out, Violation{Kind: StaleEntry, Hop: i, Got: got, Want: exp})
		}
	}
	if len(trace) < len(want) {
		out = append(out, Violation{Kind: PathTooShort, Hop: len(trace),
			Want: want[len(trace)]})
	}
	if len(trace) > len(want) {
		out = append(out, Violation{Kind: PathTooLong, Hop: len(want),
			Got: trace[len(want)]})
	}
	return out
}

// CopyCollector is the baseline ndb mechanism: every switch generates a
// truncated copy of each forwarded packet, "tagged with the version
// number ... and additional metadata", reassembled by servers.  The
// collector counts the copy overhead the TPP approach avoids.
type CopyCollector struct {
	// CopyBytesEach is the truncated copy size (64-byte header slice,
	// the original ndb's choice).
	CopyBytesEach int

	Copies    uint64
	CopyBytes uint64
	journeys  map[uint64][]HopRecord
}

// NewCopyCollector builds the baseline collector.
func NewCopyCollector() *CopyCollector {
	return &CopyCollector{CopyBytesEach: 64, journeys: make(map[uint64][]HopRecord)}
}

// AttachTo taps every forwarded packet at sw.  Delivery of copies to
// the collector servers is modeled as lossless and instantaneous; the
// overhead accounting (one truncated copy per packet per hop) is what
// the comparison needs.
func (c *CopyCollector) AttachTo(sw *asic.Switch) {
	sw.SetMirror(func(pkt *core.Packet, in, out int) {
		c.Copies++
		c.CopyBytes += uint64(c.CopyBytesEach)
		c.journeys[pkt.Meta.UID] = append(c.journeys[pkt.Meta.UID], HopRecord{
			SwitchID:     sw.ID(),
			EntryID:      pkt.Meta.MatchedEntry,
			InPort:       uint32(in),
			EntryVersion: pkt.Meta.MatchedVer,
		})
	})
}

// Journey returns the reassembled trace for a packet UID.
func (c *CopyCollector) Journey(uid uint64) []HopRecord { return c.journeys[uid] }
