package ndb

import (
	"fmt"
	"sort"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/tcam"
	"repro/internal/topo"
)

// BlackholeConfig parameterizes the blackhole-localization experiment:
// an ndb-style hunt for a silently failed fabric link using nothing but
// TPP hop traces collected by an end host.  A leaf-spine fabric routes
// deterministically (traffic to host j of any leaf rides spine j); one
// leaf-spine link goes down mid-run, eating packets without any
// notification, and the prober localizes it by set subtraction: links
// on the paths of probes that died, minus links proven alive by probes
// that returned.
type BlackholeConfig struct {
	Leaves int // number of leaf switches (>= 3 to disambiguate fully)
	Spines int // number of spine switches; also hosts per leaf

	EdgeMbps float64
	Seed     int64

	// FailLeaf/FailSpine name the fabric link that silently dies at
	// FailAt and recovers at RecoverAt.
	FailLeaf, FailSpine int
	FailAt, RecoverAt   netsim.Time

	// Probe resilience: deadline, bounded retries, backoff.
	Probe endhost.ProbeConfig

	// Trace, when non-nil, receives fault and packet spans.
	Trace *obs.Tracer
}

// DefaultBlackholeConfig is the canonical run: 3 leaves x 2 spines,
// link leaf1-spine0 down from 50ms to 150ms.
func DefaultBlackholeConfig() BlackholeConfig {
	return BlackholeConfig{
		Leaves: 3, Spines: 2,
		EdgeMbps: 100, Seed: 1,
		FailLeaf: 1, FailSpine: 0,
		FailAt: 50 * netsim.Millisecond, RecoverAt: 150 * netsim.Millisecond,
		Probe: endhost.ProbeConfig{
			Timeout: 5 * netsim.Millisecond, Retries: 2, Backoff: 2,
		},
	}
}

// LinkID names one leaf-spine fabric link.
type LinkID struct {
	Leaf, Spine int
}

func (l LinkID) String() string { return fmt.Sprintf("leaf%d-spine%d", l.Leaf, l.Spine) }

// BlackholeResult summarizes one localization run.
type BlackholeResult struct {
	Config BlackholeConfig

	// Healthy baseline round: every path answers.
	BaselinePaths int

	// Fault round: the evidence and the verdict.
	Candidates []LinkID // links on paths whose probes died
	ProvenUp   []LinkID // links traversed by probes that returned
	Suspects   []LinkID // Candidates minus ProvenUp
	Localized  bool     // exactly one suspect: the failed link

	// Recovery round: paths answering after the link came back.
	RecoveredPaths int

	// Probe-machinery telemetry across all rounds.
	ProbesSent  uint64
	Echoed      uint64
	TimedOut    uint64
	Retransmits uint64

	// Fault events visible in the span stream (when Config.Trace set).
	FaultSpans int
}

// hopTraceProgram is the probe: PUSH [Switch:SwitchID] at every hop,
// with room for a leaf-spine-leaf walk plus slack.
func hopTraceProgram() *core.TPP {
	tpp, err := endhost.CollectProgram(
		[]mem.Addr{mem.SwitchBase + mem.SwitchID}, 4, 5)
	if err != nil {
		panic(err)
	}
	return tpp
}

// RunBlackhole executes the experiment.
func RunBlackhole(cfg BlackholeConfig) BlackholeResult {
	if cfg.Leaves < 2 || cfg.Spines < 1 {
		panic("ndb: blackhole fabric needs >= 2 leaves and >= 1 spine")
	}
	sim := netsim.New(cfg.Seed)
	edge := topo.Mbps(cfg.EdgeMbps, 10*netsim.Microsecond)
	fabric := topo.Mbps(cfg.EdgeMbps, 10*netsim.Microsecond)
	// One host per spine on every leaf: host j is reached via spine j,
	// so probing every host exercises every fabric link.
	n, hosts, leaves, spines := topo.LeafSpine(sim, cfg.Leaves, cfg.Spines,
		cfg.Spines, edge, fabric, asic.Config{Trace: cfg.Trace})

	// Deterministic dst-routing.  Construction order: leaf i's ports
	// 0..S-1 reach spines 0..S-1; spine s's ports 0..L-1 reach leaves
	// 0..L-1; hosts follow on the leaf's remaining ports.
	for li := range hosts {
		for hj, h := range hosts[li] {
			v, m := tcam.DstIPRule(h.IP)
			// Own leaf delivers; other leaves climb to spine hj.
			leaves[li].TCAM().Insert(100, v, m,
				tcam.Action{OutPort: n.AttachmentOf(h).Port})
			for other := range leaves {
				if other != li {
					leaves[other].TCAM().Insert(10, v, m,
						tcam.Action{OutPort: hj})
				}
			}
			// Every spine knows the way down to the host's leaf.
			for _, sp := range spines {
				sp.TCAM().Insert(10, v, m, tcam.Action{OutPort: li})
			}
		}
	}

	// Switch identity -> fabric coordinates, for decoding hop traces.
	type node struct {
		leaf bool
		idx  int
	}
	ids := make(map[uint32]node)
	for i, sw := range leaves {
		ids[sw.ID()] = node{leaf: true, idx: i}
	}
	for i, sw := range spines {
		ids[sw.ID()] = node{leaf: false, idx: i}
	}
	// linksOf decodes the fabric links a returned hop trace proves up.
	linksOf := func(e *core.TPP) []LinkID {
		words := int(e.Ptr) / 4
		var out []LinkID
		for i := 0; i+1 < words; i++ {
			a, okA := ids[e.Word(i)]
			b, okB := ids[e.Word(i+1)]
			if !okA || !okB || a.leaf == b.leaf {
				continue
			}
			if a.leaf {
				out = append(out, LinkID{Leaf: a.idx, Spine: b.idx})
			} else {
				out = append(out, LinkID{Leaf: b.idx, Spine: a.idx})
			}
		}
		return out
	}

	// The injected failure: one fabric link silently eats frames.
	inj := faults.NewInjector(sim, cfg.Trace)
	fail := LinkID{Leaf: cfg.FailLeaf, Spine: cfg.FailSpine}
	inj.RegisterLink(fail.String(),
		leaves[fail.Leaf].Port(fail.Spine).Channel(),
		spines[fail.Spine].Port(fail.Leaf).Channel())
	if err := inj.Schedule(faults.Plan{Seed: cfg.Seed, Events: faults.Flap(
		fail.String(), cfg.FailAt, cfg.RecoverAt-cfg.FailAt)}); err != nil {
		panic(err)
	}

	// One prober per source-leaf host.  Vantage diversity is what makes
	// the hunt conclusive: the echo to host (0, sj) rides spine sj on
	// the way back, so only a sweep from every source host observes
	// every fabric link on a leg it can reason about.
	probers := make([]*endhost.Prober, cfg.Spines)
	for sj := range probers {
		probers[sj] = endhost.NewProber(hosts[0][sj])
		probers[sj].SetDefaults(cfg.Probe)
	}

	// A probe from host (0, sj) to host (li, hj) rides spine hj out and
	// spine sj back (replies are routed by the source host's IP).
	forwardLinks := func(li, hj int) []LinkID {
		return []LinkID{{Leaf: 0, Spine: hj}, {Leaf: li, Spine: hj}}
	}
	reverseLinks := func(li, sj int) []LinkID {
		return []LinkID{{Leaf: li, Spine: sj}, {Leaf: 0, Spine: sj}}
	}

	// round sweeps every (source host, far host) pair and waits out the
	// worst-case retry schedule; it reports which walks answered.
	type outcome struct {
		sj, li, hj int
		echo       *core.TPP
	}
	round := func() []outcome {
		var outs []outcome
		for sj := 0; sj < cfg.Spines; sj++ {
			for li := 1; li < cfg.Leaves; li++ {
				for hj := 0; hj < cfg.Spines; hj++ {
					sj, li, hj := sj, li, hj
					dst := hosts[li][hj]
					probers[sj].ProbeCfg(dst.MAC, dst.IP, hopTraceProgram(), cfg.Probe,
						func(e *core.TPP) { outs = append(outs, outcome{sj, li, hj, e}) },
						func() { outs = append(outs, outcome{sj, li, hj, nil}) })
				}
			}
		}
		// Retry budget: timeout * (1 + backoff + backoff^2 + ...),
		// bounded well below the inter-round spacing.
		sim.RunUntil(sim.Now() + 45*netsim.Millisecond)
		return outs
	}

	res := BlackholeResult{Config: cfg}

	// Round 1 (healthy): establish that every path answers.
	for _, o := range round() {
		if o.echo != nil {
			res.BaselinePaths++
		}
	}

	// Round 2 (fault active): collect evidence and localize.  A dead
	// walk indicts every link on its round trip; a surviving walk
	// clears the links its hop trace recorded (forward, from the TPP)
	// and the links its echo must have ridden home (reverse, from the
	// routing).
	sim.RunUntil(cfg.FailAt + 5*netsim.Millisecond)
	candidates := map[LinkID]bool{}
	proven := map[LinkID]bool{}
	for _, o := range round() {
		if o.echo == nil {
			for _, l := range forwardLinks(o.li, o.hj) {
				candidates[l] = true
			}
			for _, l := range reverseLinks(o.li, o.sj) {
				candidates[l] = true
			}
			continue
		}
		for _, l := range linksOf(o.echo) {
			proven[l] = true
		}
		for _, l := range reverseLinks(o.li, o.sj) {
			proven[l] = true
		}
	}
	res.Candidates = sortedLinks(candidates)
	res.ProvenUp = sortedLinks(proven)
	for _, l := range res.Candidates {
		if !proven[l] {
			res.Suspects = append(res.Suspects, l)
		}
	}
	res.Localized = len(res.Suspects) == 1

	// Round 3 (recovered): the same paths answer again.
	sim.RunUntil(cfg.RecoverAt + 5*netsim.Millisecond)
	for _, o := range round() {
		if o.echo != nil {
			res.RecoveredPaths++
		}
	}

	for _, p := range probers {
		res.ProbesSent += p.Sent
		res.Echoed += p.Matched
		res.TimedOut += p.TimedOut
		res.Retransmits += p.Retransmits
	}
	if cfg.Trace != nil {
		for _, ev := range cfg.Trace.Events() {
			if ev.Stage == obs.StageFaultInject || ev.Stage == obs.StageFaultRecover {
				res.FaultSpans++
			}
		}
	}
	return res
}

func sortedLinks(set map[LinkID]bool) []LinkID {
	out := make([]LinkID, 0, len(set))
	for l := range set { //lint:allow maporder (sorted before return)
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Leaf != out[j].Leaf {
			return out[i].Leaf < out[j].Leaf
		}
		return out[i].Spine < out[j].Spine
	})
	return out
}
