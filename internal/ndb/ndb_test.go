package ndb

import (
	"testing"

	"repro/internal/core"
)

func rec(sw, entry, ver uint32) HopRecord {
	return HopRecord{SwitchID: sw, EntryID: entry, EntryVersion: ver}
}

func exp(sw, entry, ver uint32) Expectation {
	return Expectation{SwitchID: sw, EntryID: entry, EntryVersion: ver}
}

func TestVerifyConforming(t *testing.T) {
	trace := []HopRecord{rec(1, 10, 1), rec(2, 20, 1), rec(3, 30, 1)}
	want := []Expectation{exp(1, 10, 1), exp(2, 20, 1), exp(3, 30, 1)}
	if v := Verify(trace, want); len(v) != 0 {
		t.Fatalf("conforming trace flagged: %v", v)
	}
}

func TestVerifyWrongSwitch(t *testing.T) {
	trace := []HopRecord{rec(1, 10, 1), rec(9, 20, 1), rec(3, 30, 1)}
	want := []Expectation{exp(1, 10, 1), exp(2, 20, 1), exp(3, 30, 1)}
	v := Verify(trace, want)
	if len(v) != 1 || v[0].Kind != WrongSwitch || v[0].Hop != 1 {
		t.Fatalf("violations: %v", v)
	}
}

func TestVerifyWrongEntryAndStale(t *testing.T) {
	trace := []HopRecord{rec(1, 11, 1), rec(2, 20, 5)}
	want := []Expectation{exp(1, 10, 1), exp(2, 20, 1)}
	v := Verify(trace, want)
	if len(v) != 2 {
		t.Fatalf("violations: %v", v)
	}
	if v[0].Kind != WrongEntry || v[1].Kind != StaleEntry {
		t.Fatalf("kinds: %v %v", v[0].Kind, v[1].Kind)
	}
}

func TestVerifyPathLength(t *testing.T) {
	want := []Expectation{exp(1, 10, 1), exp(2, 20, 1)}
	v := Verify([]HopRecord{rec(1, 10, 1)}, want)
	if len(v) != 1 || v[0].Kind != PathTooShort {
		t.Fatalf("short path: %v", v)
	}
	v = Verify([]HopRecord{rec(1, 10, 1), rec(2, 20, 1), rec(3, 1, 1)}, want)
	if len(v) != 1 || v[0].Kind != PathTooLong {
		t.Fatalf("long path: %v", v)
	}
}

func TestVerifyLoop(t *testing.T) {
	trace := []HopRecord{rec(1, 10, 1), rec(2, 20, 1), rec(1, 10, 1)}
	want := []Expectation{exp(1, 10, 1), exp(2, 20, 1), exp(3, 30, 1)}
	v := Verify(trace, want)
	found := false
	for _, x := range v {
		if x.Kind == LoopDetected {
			found = true
		}
	}
	if !found {
		t.Fatalf("loop not detected: %v", v)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: WrongSwitch, Hop: 1, Got: rec(9, 1, 1), Want: exp(2, 1, 1)}
	s := v.String()
	if s == "" || len(s) < 20 {
		t.Fatalf("String() = %q", s)
	}
}

func TestTraceProgramRoundTrip(t *testing.T) {
	tpp := TraceProgram(3)
	if len(tpp.Ins) != 4 || tpp.MemWords() != 12 {
		t.Fatalf("program shape: %d ins, %d words", len(tpp.Ins), tpp.MemWords())
	}
	// Simulate two hops of execution results.
	vals := []uint32{1, 10, 0, 1, 2, 20, 3, 1}
	for i, v := range vals {
		tpp.SetWord(i, v)
	}
	tpp.Ptr = uint16(len(vals) * 4)
	trace := ParseTrace(tpp)
	if len(trace) != 2 {
		t.Fatalf("trace hops: %d", len(trace))
	}
	if trace[0] != (HopRecord{SwitchID: 1, EntryID: 10, InPort: 0, EntryVersion: 1}) {
		t.Fatalf("hop 0: %+v", trace[0])
	}
	if trace[1] != (HopRecord{SwitchID: 2, EntryID: 20, InPort: 3, EntryVersion: 1}) {
		t.Fatalf("hop 1: %+v", trace[1])
	}
}

func TestInstrument(t *testing.T) {
	pkt := &core.Packet{Eth: core.Ethernet{Type: core.EtherTypeIPv4}}
	Instrument(pkt, 5)
	if pkt.TPP == nil || pkt.Eth.Type != core.EtherTypeTPP {
		t.Fatal("not instrumented")
	}
}

func TestExperimentDetectsInjectedMisconfiguration(t *testing.T) {
	res := Run(DefaultConfig())

	// Phase 1: the conforming fabric produces clean traces only.
	if res.CleanViolations != 0 {
		t.Fatalf("clean phase produced %d violations: %v",
			res.CleanViolations, res.BadViolations)
	}
	if res.CleanTraces == 0 {
		t.Fatal("no clean traces collected")
	}

	// Phase 2: every post-injection packet is flagged, with both the
	// stale entry at the rerouted leaf and the wrong switch at the
	// spine.
	if res.BadTraces == 0 {
		t.Fatal("misconfiguration not detected")
	}
	if res.ViolationKinds[StaleEntry] == 0 {
		t.Fatalf("no stale-entry violations: %v", res.ViolationKinds)
	}
	if res.ViolationKinds[WrongSwitch] == 0 {
		t.Fatalf("no wrong-switch violations: %v", res.ViolationKinds)
	}

	// The TPP journey matches the packet-copy baseline's journey.
	if !res.JourneysAgree {
		t.Fatal("TPP and baseline journeys disagree")
	}

	// Overhead shape: the baseline generates one extra packet per hop
	// per packet; TPPs generate zero extra packets.
	if res.BaselineCopies == 0 {
		t.Fatal("baseline produced no copies")
	}
	wantMin := uint64(res.CleanTraces+res.BadTraces) * 3 // 3 hops
	if res.BaselineCopies < wantMin {
		t.Fatalf("baseline copies = %d, want >= %d", res.BaselineCopies, wantMin)
	}
	if res.TPPInBandBytes == 0 {
		t.Fatal("TPP overhead not accounted")
	}
}

func TestExperimentDeterminism(t *testing.T) {
	a := Run(DefaultConfig())
	b := Run(DefaultConfig())
	if a.CleanTraces != b.CleanTraces || a.BadTraces != b.BadTraces ||
		a.BaselineCopies != b.BaselineCopies {
		t.Fatal("same seed produced different results")
	}
}
