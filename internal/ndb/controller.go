package ndb

import (
	"repro/internal/asic"
	"repro/internal/tcam"
)

// PathHop names one intended forwarding step: at Switch, send matching
// packets out OutPort.
type PathHop struct {
	Switch  *asic.Switch
	OutPort int
}

// Controller is the SDN controller's view of the network: it installs
// flow rules and keeps the shadow copy of its intent that the verifier
// checks traces against.  A mismatch between this shadow state and what
// the dataplane actually matched is exactly the control/dataplane
// divergence §2.3 motivates: "there can be a mismatch between the
// control plane's view of routing state and the actual forwarding state
// in hardware".
type Controller struct {
	intents map[uint32][]Expectation // keyed by destination IP
}

// NewController builds an empty controller.
func NewController() *Controller {
	return &Controller{intents: make(map[uint32][]Expectation)}
}

// InstallPath programs a destination-IP route along the given hops,
// one TCAM rule per switch, and records the intent.  It returns the
// installed entry ids in path order.
func (c *Controller) InstallPath(dstIP uint32, priority int, path []PathHop) []uint32 {
	ids := make([]uint32, 0, len(path))
	var want []Expectation
	for _, hop := range path {
		v, m := tcam.DstIPRule(dstIP)
		id := hop.Switch.TCAM().Insert(priority, v, m, tcam.Action{OutPort: hop.OutPort})
		e, _ := hop.Switch.TCAM().Get(id)
		ids = append(ids, id)
		want = append(want, Expectation{
			SwitchID:     hop.Switch.ID(),
			EntryID:      id,
			EntryVersion: e.Version,
		})
	}
	c.intents[dstIP] = want
	return ids
}

// Expected returns the intended journey for packets to dstIP.
func (c *Controller) Expected(dstIP uint32) []Expectation { return c.intents[dstIP] }

// VerifyTrace checks one recorded journey against the controller's
// intent for dstIP.
func (c *Controller) VerifyTrace(dstIP uint32, trace []HopRecord) []Violation {
	return Verify(trace, c.intents[dstIP])
}
