// Package yamlite parses the small YAML subset the fabric's spec and
// scenario files use, with no dependency outside the standard library:
// block maps, block lists (including "- key: value" lists of maps),
// quoted and plain scalars, inline flow lists of scalars, and "#"
// comments.  Anchors, multi-document streams, multi-line scalars and
// flow maps are deliberately out of scope.
//
// Documents parse into a Node tree that preserves key order, so
// everything downstream of a parse is deterministic by construction.
package yamlite

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is a node's shape.
type Kind uint8

// The three node shapes.
const (
	Scalar Kind = iota
	Map
	List
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Map:
		return "map"
	case List:
		return "list"
	}
	return "unknown"
}

// Node is one parsed value.
type Node struct {
	// Line is the 1-based source line the node started on, for error
	// messages.
	Line int

	kind  Kind
	value string
	keys  []string
	vals  []*Node
	items []*Node
}

// Kind returns the node's shape.
func (n *Node) Kind() Kind {
	if n == nil {
		return Scalar
	}
	return n.kind
}

// Str returns a scalar's text (unquoted); "" for a nil node, so
// lookups of optional keys chain safely.
func (n *Node) Str() string {
	if n == nil {
		return ""
	}
	return n.value
}

// Keys returns a map's keys in document order.
func (n *Node) Keys() []string {
	if n == nil {
		return nil
	}
	return n.keys
}

// Get returns a map's value for key, nil when absent (or when n is not
// a map), so lookups chain safely.
func (n *Node) Get(key string) *Node {
	if n == nil || n.kind != Map {
		return nil
	}
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

// Items returns a list's elements in document order.
func (n *Node) Items() []*Node {
	if n == nil {
		return nil
	}
	return n.items
}

// Int parses a scalar as an integer.
func (n *Node) Int() (int64, error) {
	if n == nil || n.kind != Scalar {
		return 0, fmt.Errorf("yamlite: not a scalar")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(n.value), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("yamlite: line %d: %q is not an integer", n.Line, n.value)
	}
	return v, nil
}

// Float parses a scalar as a float.
func (n *Node) Float() (float64, error) {
	if n == nil || n.kind != Scalar {
		return 0, fmt.Errorf("yamlite: not a scalar")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(n.value), 64)
	if err != nil {
		return 0, fmt.Errorf("yamlite: line %d: %q is not a number", n.Line, n.value)
	}
	return v, nil
}

// Bool parses a scalar as true/false.
func (n *Node) Bool() (bool, error) {
	if n == nil || n.kind != Scalar {
		return false, fmt.Errorf("yamlite: not a scalar")
	}
	switch strings.TrimSpace(n.value) {
	case "true", "yes", "on":
		return true, nil
	case "false", "no", "off":
		return false, nil
	}
	return false, fmt.Errorf("yamlite: line %d: %q is not a bool", n.Line, n.value)
}

// line is one logical source line after comment stripping.
type line struct {
	num    int    // 1-based source line
	indent int    // leading spaces
	text   string // content, no indent, no trailing space
}

// Parse parses one document.  The root is whatever the top level is —
// usually a map.
func Parse(src string) (*Node, error) {
	var lines []line
	for i, raw := range strings.Split(src, "\n") {
		if strings.ContainsRune(raw, '\t') {
			return nil, fmt.Errorf("yamlite: line %d: tabs are not allowed in indentation", i+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		lines = append(lines, line{
			num:    i + 1,
			indent: len(text) - len(strings.TrimLeft(text, " ")),
			text:   trimmed,
		})
	}
	if len(lines) == 0 {
		return &Node{kind: Map}, nil
	}
	p := &parser{lines: lines}
	n, err := p.block(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yamlite: line %d: unexpected indentation", l.num)
	}
	return n, nil
}

// stripComment removes a trailing "#" comment, respecting quotes.
func stripComment(s string) string {
	inQ := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQ != 0:
			if c == inQ {
				inQ = 0
			}
		case c == '"' || c == '\'':
			inQ = c
		case c == '#':
			// A comment starts at line start or after whitespace.
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

// block parses the run of lines at exactly indent (children deeper).
func (p *parser) block(indent int) (*Node, error) {
	l := p.lines[p.pos]
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.list(indent)
	}
	return p.mapping(indent)
}

func (p *parser) list(indent int) (*Node, error) {
	n := &Node{kind: List, Line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("yamlite: line %d: unexpected indentation", l.num)
			}
			break
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return nil, fmt.Errorf("yamlite: line %d: expected list item", l.num)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// "-" alone: the item is the nested block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("yamlite: line %d: empty list item", l.num)
			}
			item, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
			continue
		}
		if isMapStart(rest) {
			// "- key: value": the item is a map whose first entry sits
			// on the dash line.  Reindent the remainder as a virtual
			// line two columns in and parse a normal map block.
			p.lines[p.pos] = line{num: l.num, indent: indent + 2, text: rest}
			item, err := p.mapping(indent + 2)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
			continue
		}
		sc, err := scalarNode(rest, l.num)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, sc)
		p.pos++
	}
	return n, nil
}

func (p *parser) mapping(indent int) (*Node, error) {
	n := &Node{kind: Map, Line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("yamlite: line %d: unexpected indentation", l.num)
			}
			break
		}
		key, rest, ok := splitKey(l.text)
		if !ok {
			return nil, fmt.Errorf("yamlite: line %d: expected \"key: value\"", l.num)
		}
		for _, k := range n.keys {
			if k == key {
				return nil, fmt.Errorf("yamlite: line %d: duplicate key %q", l.num, key)
			}
		}
		if rest != "" {
			sc, err := scalarNode(rest, l.num)
			if err != nil {
				return nil, err
			}
			n.keys = append(n.keys, key)
			n.vals = append(n.vals, sc)
			p.pos++
			continue
		}
		// "key:" — the value is the nested block, or an empty scalar
		// when nothing is indented below.
		p.pos++
		if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
			n.keys = append(n.keys, key)
			n.vals = append(n.vals, &Node{kind: Scalar, Line: l.num})
			continue
		}
		child, err := p.block(p.lines[p.pos].indent)
		if err != nil {
			return nil, err
		}
		n.keys = append(n.keys, key)
		n.vals = append(n.vals, child)
	}
	return n, nil
}

// isMapStart reports whether text begins a "key: ..." map entry.
func isMapStart(text string) bool {
	_, _, ok := splitKey(text)
	return ok
}

// splitKey splits "key: value" / "key:" into (key, value).  The key
// must be plain (no quotes, no spaces before the colon).
func splitKey(text string) (key, rest string, ok bool) {
	i := strings.IndexByte(text, ':')
	if i <= 0 {
		return "", "", false
	}
	key = text[:i]
	if strings.ContainsAny(key, " \"'[]") {
		return "", "", false
	}
	rest = strings.TrimSpace(text[i+1:])
	return key, rest, true
}

// scalarNode parses an in-line value: a quoted or plain scalar, or a
// flow list "[a, b, c]" of scalars.
func scalarNode(text string, num int) (*Node, error) {
	if strings.HasPrefix(text, "[") {
		if !strings.HasSuffix(text, "]") {
			return nil, fmt.Errorf("yamlite: line %d: unterminated flow list", num)
		}
		n := &Node{kind: List, Line: num}
		inner := strings.TrimSpace(text[1 : len(text)-1])
		if inner == "" {
			return n, nil
		}
		for _, part := range splitFlow(inner) {
			item, err := scalarNode(strings.TrimSpace(part), num)
			if err != nil {
				return nil, err
			}
			if item.kind != Scalar {
				return nil, fmt.Errorf("yamlite: line %d: nested flow lists are not supported", num)
			}
			n.items = append(n.items, item)
		}
		return n, nil
	}
	if len(text) >= 2 && (text[0] == '"' || text[0] == '\'') {
		q := text[0]
		if text[len(text)-1] != q {
			return nil, fmt.Errorf("yamlite: line %d: unterminated quoted scalar", num)
		}
		return &Node{kind: Scalar, value: text[1 : len(text)-1], Line: num}, nil
	}
	return &Node{kind: Scalar, value: text, Line: num}, nil
}

// splitFlow splits a flow list body on commas outside quotes.
func splitFlow(s string) []string {
	var parts []string
	start, inQ := 0, byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQ != 0:
			if c == inQ {
				inQ = 0
			}
		case c == '"' || c == '\'':
			inQ = c
		case c == ',':
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}
