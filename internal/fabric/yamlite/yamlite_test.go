package yamlite

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Node {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestScalarsAndMaps(t *testing.T) {
	n := parse(t, `
name: converge  # trailing comment
count: 42
ratio: 2.5
deep:
  enabled: true
  label: "quoted: value"
  empty:
`)
	if got := n.Get("name").Str(); got != "converge" {
		t.Fatalf("name = %q", got)
	}
	if v, err := n.Get("count").Int(); err != nil || v != 42 {
		t.Fatalf("count = %d, %v", v, err)
	}
	if v, err := n.Get("ratio").Float(); err != nil || v != 2.5 {
		t.Fatalf("ratio = %g, %v", v, err)
	}
	if v, err := n.Get("deep").Get("enabled").Bool(); err != nil || !v {
		t.Fatalf("enabled = %v, %v", v, err)
	}
	if got := n.Get("deep").Get("label").Str(); got != "quoted: value" {
		t.Fatalf("label = %q", got)
	}
	if got := n.Get("deep").Get("empty"); got == nil || got.Str() != "" {
		t.Fatalf("empty = %+v", got)
	}
	if n.Get("missing") != nil {
		t.Fatal("missing key resolved")
	}
	if got := n.Keys(); len(got) != 4 || got[0] != "name" || got[3] != "deep" {
		t.Fatalf("key order = %v", got)
	}
}

func TestLists(t *testing.T) {
	n := parse(t, `
plain:
  - one
  - two
flow: [1, 2, 3]
maps:
  - name: a
    words: 8
    seed: [10, 20]
  - name: b
    words: 4
nested:
  -
    - x
    - y
`)
	plain := n.Get("plain").Items()
	if len(plain) != 2 || plain[0].Str() != "one" || plain[1].Str() != "two" {
		t.Fatalf("plain = %+v", plain)
	}
	flow := n.Get("flow").Items()
	if len(flow) != 3 {
		t.Fatalf("flow = %+v", flow)
	}
	if v, _ := flow[2].Int(); v != 3 {
		t.Fatalf("flow[2] = %v", flow[2])
	}
	maps := n.Get("maps").Items()
	if len(maps) != 2 {
		t.Fatalf("maps = %+v", maps)
	}
	if got := maps[0].Get("name").Str(); got != "a" {
		t.Fatalf("maps[0].name = %q", got)
	}
	if v, _ := maps[0].Get("words").Int(); v != 8 {
		t.Fatal("maps[0].words")
	}
	if seed := maps[0].Get("seed").Items(); len(seed) != 2 {
		t.Fatalf("seed = %+v", seed)
	}
	if got := maps[1].Get("name").Str(); got != "b" {
		t.Fatalf("maps[1].name = %q", got)
	}
	inner := n.Get("nested").Items()
	if len(inner) != 1 || inner[0].Kind() != List || len(inner[0].Items()) != 2 {
		t.Fatalf("nested = %+v", inner)
	}
}

func TestErrors(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"a:\n\tb: 1", "tabs"},
		{"a: 1\na: 2", "duplicate key"},
		{"a: [1, 2", "unterminated flow list"},
		{"a: \"oops", "unterminated quoted"},
		{"- x\n  - y", "unexpected indentation"},
		{"a:\n  - x\n  b: 1", "expected list item"},
		{"just text", "key: value"},
	} {
		_, err := Parse(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestEmptyDocument(t *testing.T) {
	n := parse(t, "\n# only a comment\n")
	if n.Kind() != Map || len(n.Keys()) != 0 {
		t.Fatalf("empty doc = %+v", n)
	}
}
