package fabric_test

import (
	"reflect"
	"testing"

	"repro/internal/fabric"
)

// TestChangeSetDeterminism is the diff's regression contract: the same
// spec against the same live state serializes to a byte-identical
// ChangeSet — across repeated dry-runs in one fabric, and across
// fabrics built under different simulation seeds (the diff is a pure
// function of spec and read-back state, so the RNG must not leak in).
func TestChangeSetDeterminism(t *testing.T) {
	spec := testSpec()

	var refListing string
	var refCS fabric.ChangeSet
	for _, seed := range []int64{1, 7, 42} {
		h := newHarness(seed)
		cs, errs, err := h.ctl.Diff(spec)
		if err != nil || len(errs) > 0 {
			t.Fatalf("seed %d: Diff err=%v errs=%v", seed, err, errs)
		}
		// Repeated dry-runs of the same fabric are byte-identical and
		// write nothing.
		for run := 0; run < 3; run++ {
			again, _, _ := h.ctl.Diff(spec)
			if !reflect.DeepEqual(cs, again) {
				t.Fatalf("seed %d run %d: ChangeSet drifted:\n%s\nvs\n%s", seed, run, cs, again)
			}
			if got := again.String(); got != cs.String() {
				t.Fatalf("seed %d run %d: listing drifted:\n%s\nvs\n%s", seed, run, cs, got)
			}
		}
		if refListing == "" {
			refListing, refCS = cs.String(), cs
			continue
		}
		// Across seeds the fabric state is identical, so the diff is too.
		if got := cs.String(); got != refListing {
			t.Fatalf("seed %d listing differs:\n%s\nvs\n%s", seed, got, refListing)
		}
		if !reflect.DeepEqual(cs, refCS) {
			t.Fatalf("seed %d ChangeSet differs from seed 1", seed)
		}
	}
}

// TestChangeSetDeterminismAfterApply extends the contract past the
// first dry-run: after converging and then drifting the live state the
// same way under every seed, the repair diff is still byte-identical.
func TestChangeSetDeterminismAfterApply(t *testing.T) {
	spec := testSpec()
	drift := func(h *harness) {
		if err := h.leaf.RevokeTenant(2); err != nil {
			t.Fatal(err)
		}
		if err := h.leaf.Allocator().Free("fabric/tally"); err != nil {
			t.Fatal(err)
		}
	}

	var ref string
	for _, seed := range []int64{1, 7, 42} {
		h := newHarness(seed)
		mustConverge(t, h, spec)
		drift(h)
		cs, errs, err := h.ctl.Diff(spec)
		if err != nil || len(errs) > 0 {
			t.Fatalf("seed %d: Diff err=%v errs=%v", seed, err, errs)
		}
		if cs.Ops() != 2 {
			t.Fatalf("seed %d: repair ops = %d, want 2\n%s", seed, cs.Ops(), cs)
		}
		if ref == "" {
			ref = cs.String()
		} else if got := cs.String(); got != ref {
			t.Fatalf("seed %d repair listing differs:\n%s\nvs\n%s", seed, got, ref)
		}
	}
}
