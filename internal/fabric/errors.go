package fabric

import "fmt"

// ErrKind classifies a per-device failure.
type ErrKind uint8

const (
	// ErrUnknownDevice: the spec names a device the controller has no
	// registration for.  A config bug; retrying cannot fix it.
	ErrUnknownDevice ErrKind = iota
	// ErrSpecInvalid: the spec asks the device for something it cannot
	// hold (tenants on a guard-less switch, a band-relative priority
	// out of range).  Not retryable.
	ErrSpecInvalid
	// ErrDeviceDark: read-back answered nothing — the switch is inside
	// a reboot's boot-delay window.  Retryable: the boot finishes.
	ErrDeviceDark
	// ErrEpochRaced: the device's [Switch:Epoch] moved between diff and
	// apply — a crash-restart wiped the state the diff was computed
	// against, so no write landed.  Retryable: the next round re-diffs
	// against the post-boot state.
	ErrEpochRaced
	// ErrWriteFailed: an op failed mid-apply; the device was rolled
	// back to its pre-apply snapshot.
	ErrWriteFailed
	// ErrVerifyFailed: every op applied but the re-read disagreed with
	// what was written; the device was rolled back.
	ErrVerifyFailed
)

var errKindNames = [...]string{
	ErrUnknownDevice: "unknown-device",
	ErrSpecInvalid:   "spec-invalid",
	ErrDeviceDark:    "device-dark",
	ErrEpochRaced:    "epoch-raced",
	ErrWriteFailed:   "write-failed",
	ErrVerifyFailed:  "verify-failed",
}

// String names the kind.
func (k ErrKind) String() string {
	if int(k) < len(errKindNames) {
		return errKindNames[k]
	}
	return "unknown"
}

// Retryable reports whether another converge round can plausibly clear
// the failure.
func (k ErrKind) Retryable() bool {
	switch k {
	case ErrDeviceDark, ErrEpochRaced, ErrWriteFailed, ErrVerifyFailed:
		return true
	}
	return false
}

// DeviceError is one device's typed apply/verify failure.
type DeviceError struct {
	Device string
	Kind   ErrKind
	Detail string
	// RolledBack reports that the device was restored to its pre-apply
	// snapshot (set for write/verify failures whose rollback succeeded).
	RolledBack bool
}

// Error implements error.
func (e *DeviceError) Error() string {
	s := fmt.Sprintf("fabric: device %s: %s", e.Device, e.Kind)
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	if e.RolledBack {
		s += " (rolled back)"
	}
	return s
}
