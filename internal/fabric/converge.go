package fabric

import "repro/internal/netsim"

// ConvergeConfig bounds the converge loop the way endhost.ProbeConfig
// bounds a probe: a fixed attempt budget with exponential backoff
// between rounds.
type ConvergeConfig struct {
	// Budget is the maximum diff/apply attempts (default 5).
	Budget int
	// Backoff is the delay before the second attempt (default 10ms);
	// each further attempt multiplies it by BackoffFactor (default 2,
	// values below 1 are clamped to 1 — never shrinking, exactly the
	// prober's discipline).
	Backoff       netsim.Time
	BackoffFactor float64
	// ApplyDelay inserts simulated time between reading the diff and
	// applying it, widening the window in which a fault can race the
	// apply.  Zero (the default) diffs and applies back-to-back.
	ApplyDelay netsim.Time
}

func (c ConvergeConfig) resolve() ConvergeConfig {
	if c.Budget <= 0 {
		c.Budget = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * netsim.Millisecond
	}
	if c.BackoffFactor < 1 {
		if c.BackoffFactor <= 0 {
			c.BackoffFactor = 2
		} else {
			c.BackoffFactor = 1
		}
	}
	return c
}

// Round records one converge attempt.
type Round struct {
	// At is the simulated time the attempt's apply finished.
	At netsim.Time
	// Ops is how many mutations the attempt's diff wanted.
	Ops int
	// Applied is how many landed and verified.
	Applied int
	// Errors are the attempt's per-device failures.
	Errors []DeviceError
}

// ConvergeResult is the outcome of a converge run.
type ConvergeResult struct {
	// Converged reports that a final Verify read every device back at
	// spec, field-for-field.
	Converged bool
	// Attempts is how many diff/apply rounds ran.
	Attempts int
	// OpsApplied is the total mutations that landed across all rounds.
	OpsApplied int
	// Rounds records each attempt.
	Rounds []Round
	// Pending holds the devices still short of spec when the run ended
	// — partial convergence is reported, never silently dropped.
	Pending []DeviceError
	// Detours holds the informational detour ops from the last diff:
	// reflex-installed rewrites the converge recognized and left in
	// place.  A run can be Converged with standing Detours; the
	// operator ratifies them into spec or waits for the reflex revert.
	Detours []Op
	// BudgetExhausted distinguishes "gave up" from "nothing retryable
	// was left".
	BudgetExhausted bool
}

// Converge drives the fabric to spec: diff, apply, verify, and — when
// devices fail retryably (dark, epoch-raced, rolled back) — retry on
// the simulation clock with exponential backoff until the budget runs
// out.  done is called exactly once with the result; it fires
// synchronously (before Converge returns) when the first attempt
// converges with no ApplyDelay, and from a scheduled event otherwise,
// so callers drive the simulation with sim.RunUntil either way.
func (c *Controller) Converge(spec Spec, cfg ConvergeConfig, done func(ConvergeResult)) {
	cfg = cfg.resolve()
	res := &ConvergeResult{}
	c.convergeAttempt(spec, cfg, cfg.Backoff, res, done)
}

func (c *Controller) convergeAttempt(spec Spec, cfg ConvergeConfig, backoff netsim.Time, res *ConvergeResult, done func(ConvergeResult)) {
	cs, diffErrs, err := c.Diff(spec)
	if err != nil {
		res.Pending = append(res.Pending, DeviceError{Kind: ErrSpecInvalid, Detail: err.Error()})
		done(*res)
		return
	}

	apply := func() {
		res.Attempts++
		rep := c.Apply(cs)
		round := Round{
			At:      c.sim.Now(),
			Ops:     cs.Mutations(),
			Applied: rep.OpsApplied(),
			Errors:  append(diffErrs, rep.Errors()...),
		}
		res.Detours = cs.Detours()
		res.OpsApplied += round.Applied
		res.Rounds = append(res.Rounds, round)

		if len(round.Errors) == 0 {
			// Clean apply: declare convergence only if a full re-read
			// agrees the live state equals the spec.
			if pending := c.Verify(spec); len(pending) > 0 {
				round.Errors = pending
				res.Rounds[len(res.Rounds)-1] = round
			} else {
				res.Converged = true
				res.Pending = nil
				done(*res)
				return
			}
		}

		res.Pending = round.Errors
		retryable := false
		for _, e := range round.Errors {
			if e.Kind.Retryable() {
				retryable = true
				break
			}
		}
		if !retryable || res.Attempts >= cfg.Budget {
			res.BudgetExhausted = retryable
			done(*res)
			return
		}
		next := netsim.Time(float64(backoff) * cfg.BackoffFactor)
		c.sim.After(backoff, func() { c.convergeAttempt(spec, cfg, next, res, done) })
	}

	if cfg.ApplyDelay > 0 {
		c.sim.After(cfg.ApplyDelay, apply)
	} else {
		apply()
	}
}
