package fabric_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/netsim"
)

// driveConverge starts a converge and drives the simulation until the
// done callback fires or the deadline passes.
func driveConverge(t *testing.T, h *harness, spec fabric.Spec, cfg fabric.ConvergeConfig, deadline netsim.Time) fabric.ConvergeResult {
	t.Helper()
	var res fabric.ConvergeResult
	done := false
	h.ctl.Converge(spec, cfg, func(r fabric.ConvergeResult) { res, done = r, true })
	for !done && h.sim.Now() < deadline {
		h.sim.RunUntil(h.sim.Now() + netsim.Millisecond)
	}
	if !done {
		t.Fatalf("converge did not finish by %v (pending %d events)", deadline, h.sim.Pending())
	}
	return res
}

func TestConvergeFirstAttempt(t *testing.T) {
	h := newHarness(1)
	res := driveConverge(t, h, testSpec(), fabric.ConvergeConfig{}, netsim.Second)
	if !res.Converged || res.Attempts != 1 || res.BudgetExhausted {
		t.Fatalf("clean fabric: %+v", res)
	}
	if res.OpsApplied != 10 || len(res.Pending) != 0 {
		t.Fatalf("clean fabric: %+v", res)
	}
	// Converging an already converged fabric applies nothing.
	res = driveConverge(t, h, testSpec(), fabric.ConvergeConfig{}, 2*netsim.Second)
	if !res.Converged || res.OpsApplied != 0 {
		t.Fatalf("fixpoint reconverge: %+v", res)
	}
}

// TestConvergeRebootRace is the acceptance scenario: a SwitchReboot
// fault lands inside the diff→apply window, the controller detects the
// epoch bump (no stale write touches the wiped switch), backs off, and
// rolls forward — the final verified live state equals the spec.
func TestConvergeRebootRace(t *testing.T) {
	h := newHarness(1)
	inj := faults.NewInjector(h.sim, nil)
	inj.RegisterSwitch("leaf0", h.leaf)
	if err := inj.Schedule(faults.Plan{Seed: 1, Events: []faults.Event{
		{At: 2 * netsim.Millisecond, Kind: faults.SwitchReboot, Target: "leaf0", BootDelay: netsim.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}

	spec := testSpec()
	cfg := fabric.ConvergeConfig{
		// The 5ms diff→apply delay guarantees the 2ms reboot lands
		// mid-flight on the first attempt.
		ApplyDelay: 5 * netsim.Millisecond,
		Backoff:    4 * netsim.Millisecond,
		Budget:     6,
	}
	res := driveConverge(t, h, spec, cfg, netsim.Second)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Attempts < 2 {
		t.Fatalf("reboot race should cost at least one retry: %+v", res)
	}
	raced := false
	for _, r := range res.Rounds {
		for _, e := range r.Errors {
			if e.Device == "leaf0" && (e.Kind == fabric.ErrEpochRaced || e.Kind == fabric.ErrDeviceDark) {
				raced = true
			}
		}
	}
	if !raced {
		t.Fatalf("no round observed the epoch race: %+v", res.Rounds)
	}

	// Field-for-field: the live state equals the spec.
	if errs := h.ctl.Verify(spec); len(errs) > 0 {
		t.Fatalf("post-converge verify: %v", errs)
	}
	st, derr := h.ctl.ReadState("leaf0")
	if derr != nil {
		t.Fatal(derr)
	}
	if len(st.Tenants) != 2 || len(st.Services) != 2 || len(st.Routes) != 3 || len(st.Prefixes) != 2 {
		t.Fatalf("post-converge leaf0 state: %+v", st)
	}
	if st.Epoch != 1 {
		t.Fatalf("leaf0 epoch = %d, want 1 (one reboot)", st.Epoch)
	}
	// The seed words landed on the post-boot switch.
	if got := h.leaf.SRAM(mem.SRAMIndex(st.Services[0].Region.Base)); got != 1250000 {
		t.Fatalf("seed word 0 = %d after re-apply", got)
	}
}

// TestConvergeBudgetExhausted is the graceful-degradation acceptance
// case: a spec that can never fit keeps failing retryably; the loop
// burns its budget and reports partial convergence as typed per-device
// errors — no panic, no silent success.
func TestConvergeBudgetExhausted(t *testing.T) {
	h := newHarness(1)
	spec := fabric.Spec{Devices: []fabric.DeviceSpec{
		{Device: "spine0", Routes: []fabric.Route{{DstIP: 1, Priority: 1, OutPort: 1}}},
		{Device: "leaf0", Services: []fabric.Service{
			{Name: "a", Words: mem.SRAMWords}, // the whole bank...
			{Name: "b", Words: 1},             // ...plus one word
		}},
	}}
	cfg := fabric.ConvergeConfig{Budget: 3, Backoff: netsim.Millisecond}
	res := driveConverge(t, h, spec, cfg, netsim.Second)

	if res.Converged {
		t.Fatalf("impossible spec converged: %+v", res)
	}
	if !res.BudgetExhausted || res.Attempts != 3 {
		t.Fatalf("want 3 exhausted attempts: %+v", res)
	}
	if len(res.Pending) != 1 {
		t.Fatalf("want one pending device error, got %v", res.Pending)
	}
	pe := res.Pending[0]
	if pe.Device != "leaf0" || pe.Kind != fabric.ErrWriteFailed || !pe.RolledBack {
		t.Fatalf("pending error: %+v", pe)
	}

	// Partial convergence: the feasible device converged and stayed.
	st, derr := h.ctl.ReadState("spine0")
	if derr != nil || len(st.Routes) != 1 {
		t.Fatalf("spine0 should have converged: %v %+v", derr, st)
	}
	// The infeasible device rolled back to empty every round.
	lst, _ := h.ctl.ReadState("leaf0")
	if len(lst.Services) != 0 {
		t.Fatalf("leaf0 should have rolled back: %+v", lst.Services)
	}
}

// TestConvergeBackoffClock pins the retry cadence to the prober's
// exponential discipline: attempts at t0, +b, +2b, +4b...
func TestConvergeBackoffClock(t *testing.T) {
	h := newHarness(1)
	spec := fabric.Spec{Devices: []fabric.DeviceSpec{
		{Device: "leaf0", Services: []fabric.Service{
			{Name: "a", Words: mem.SRAMWords},
			{Name: "b", Words: 1},
		}},
	}}
	cfg := fabric.ConvergeConfig{Budget: 4, Backoff: 2 * netsim.Millisecond, BackoffFactor: 2}
	res := driveConverge(t, h, spec, cfg, netsim.Second)
	if len(res.Rounds) != 4 {
		t.Fatalf("want 4 rounds, got %d", len(res.Rounds))
	}
	want := []netsim.Time{0, 2 * netsim.Millisecond, 6 * netsim.Millisecond, 14 * netsim.Millisecond}
	for i, r := range res.Rounds {
		if r.At != want[i] {
			t.Fatalf("round %d at %v, want %v", i, r.At, want[i])
		}
	}
}
