package fabric

import (
	"fmt"
	"sort"

	"repro/internal/guard"
	"repro/internal/mem"
)

// TenantState is one live guard grant, read back field-for-field.
type TenantState struct {
	ID     guard.TenantID
	ACL    guard.ACL
	Words  int
	Weight float64
	Burst  int
}

// ServiceState is one live controller-owned SRAM allocation (the
// allocator task name with the "fabric/" prefix stripped).
type ServiceState struct {
	Name   string
	Region mem.Region
}

// RouteState is one live TCAM entry inside the controller's priority
// band, decoded back to spec terms plus the hardware identity the
// ChangeSet needs to update or remove it.
type RouteState struct {
	Route
	EntryID uint32
	Version uint32
}

// DeviceState is everything the controller manages on one device, read
// back live.  The diff compares a normalized DeviceSpec against it.
type DeviceState struct {
	Device       string
	Epoch        uint32
	GuardEnabled bool
	Tenants      []TenantState
	Services     []ServiceState
	Routes       []RouteState
	Prefixes     []Prefix
}

// ReadState reads device name's live state back through the dataplane's
// own machinery — the epoch word via Switch.ReadWord (the path a
// collect TPP's LOAD resolves through), the TCAM, L3 table, guard table
// and SRAM allocator — never from a cached copy.  A device inside a
// reboot's boot-delay window answers no read-back and surfaces as
// ErrDeviceDark.
func (c *Controller) ReadState(name string) (DeviceState, *DeviceError) {
	sw, ok := c.devices[name]
	if !ok {
		return DeviceState{}, &DeviceError{Device: name, Kind: ErrUnknownDevice}
	}
	epoch, ok := sw.ReadWord(mem.SwitchBase + mem.SwitchEpoch)
	if !ok {
		return DeviceState{}, &DeviceError{Device: name, Kind: ErrDeviceDark,
			Detail: "no read-back (mid-boot)"}
	}
	st := DeviceState{Device: name, Epoch: epoch}

	if g := sw.Guard(); g != nil {
		st.GuardEnabled = true
		for _, id := range g.Tenants() { // sorted
			grant, ok := g.Lookup(id)
			if !ok {
				continue
			}
			st.Tenants = append(st.Tenants, TenantState{
				ID:     id,
				ACL:    grant.ACL,
				Words:  grant.Partition.Words,
				Weight: grant.Weight,
				Burst:  grant.Burst,
			})
		}
	}

	al := sw.Allocator()
	for _, task := range al.Tasks() { // sorted
		if len(task) <= len(taskPrefix) || task[:len(taskPrefix)] != taskPrefix {
			continue
		}
		reg, ok := al.Lookup(task)
		if !ok {
			continue
		}
		st.Services = append(st.Services, ServiceState{
			Name:   task[len(taskPrefix):],
			Region: reg,
		})
	}

	// Entries() is sorted (priority desc, id asc); re-sort the band's
	// slice into spec order so state and normalized spec align.
	for _, e := range sw.TCAM().Entries() {
		if e.Priority < BandBase || e.Priority >= BandBase+BandSize {
			continue
		}
		st.Routes = append(st.Routes, RouteState{
			Route: Route{
				DstIP:    e.Value[0],
				Priority: e.Priority - BandBase,
				OutPort:  e.Action.OutPort,
				Drop:     e.Action.Drop,
			},
			EntryID: e.ID,
			Version: e.Version,
		})
	}
	sortRouteStates(st.Routes)

	for _, pr := range sw.L3().Routes() {
		st.Prefixes = append(st.Prefixes, Prefix{
			Addr:    pr.Prefix,
			Len:     pr.Len,
			OutPort: pr.Route.OutPort,
		})
	}
	sortPrefixes(st.Prefixes)

	return st, nil
}

// specFromState rebuilds the DeviceSpec that would reproduce st as-is;
// rollback diffs it against the post-failure live state to restore the
// pre-apply snapshot.  ACLs are carried explicitly so grants matching
// no preset round-trip exactly.
func specFromState(st DeviceState) DeviceSpec {
	d := DeviceSpec{Device: st.Device}
	for _, t := range st.Tenants {
		acl := t.ACL
		d.Tenants = append(d.Tenants, Tenant{
			ID:     t.ID,
			Policy: policyOf(t.ACL),
			ACL:    &acl,
			Words:  t.Words,
			Weight: t.Weight,
			Burst:  t.Burst,
		})
	}
	for _, s := range st.Services {
		d.Services = append(d.Services, Service{Name: s.Name, Words: s.Region.Words})
	}
	for _, r := range st.Routes {
		d.Routes = append(d.Routes, r.Route)
	}
	d.Prefixes = append(d.Prefixes, st.Prefixes...)
	return d
}

// verifyDetail renders a field-level mismatch for a verify failure.
func verifyDetail(what string, want, got any) string {
	return fmt.Sprintf("%s: wrote %v, read back %v", what, want, got)
}

func sortRouteStates(rs []RouteState) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].DstIP != rs[j].DstIP {
			return rs[i].DstIP < rs[j].DstIP
		}
		if rs[i].Priority != rs[j].Priority {
			return rs[i].Priority < rs[j].Priority
		}
		return rs[i].EntryID < rs[j].EntryID
	})
}

func sortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Len != ps[j].Len {
			return ps[i].Len < ps[j].Len
		}
		return ps[i].Addr < ps[j].Addr
	})
}
