package fabric_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/tcam"
)

// harness is a two-switch fabric: leaf0 guarded, spine0 plain.
type harness struct {
	sim   *netsim.Sim
	ctl   *fabric.Controller
	leaf  *asic.Switch
	spine *asic.Switch
}

func newHarness(seed int64) *harness {
	sim := netsim.New(seed)
	leaf := asic.New(sim, asic.Config{ID: 1, Ports: 4, Guard: true, TPPRate: 1000})
	spine := asic.New(sim, asic.Config{ID: 2, Ports: 4})
	ctl := fabric.New(sim)
	ctl.Register("leaf0", leaf)
	ctl.Register("spine0", spine)
	return &harness{sim: sim, ctl: ctl, leaf: leaf, spine: spine}
}

// testSpec exercises every op family: tenants, seeded services, band
// routes and L3 prefixes on the guarded leaf, routes on the spine.
func testSpec() fabric.Spec {
	return fabric.Spec{Devices: []fabric.DeviceSpec{
		{
			Device: "leaf0",
			Tenants: []fabric.Tenant{
				{ID: 1, Policy: fabric.PolicyControl, Words: 64, Weight: 10, Burst: 16},
				{ID: 2, Policy: fabric.PolicyDefault, Words: 32},
			},
			Services: []fabric.Service{
				{Name: "rcp", Words: 8, Seed: []uint32{1250000, 0, 0xdead}},
				{Name: "tally", Words: 4},
			},
			Routes: []fabric.Route{
				{DstIP: core.IPv4Addr(10, 0, 0, 1), Priority: 100, OutPort: 1},
				{DstIP: core.IPv4Addr(10, 0, 0, 2), Priority: 100, OutPort: 2},
				{DstIP: core.IPv4Addr(10, 0, 9, 9), Priority: 50, Drop: true},
			},
			Prefixes: []fabric.Prefix{
				{Addr: core.IPv4Addr(10, 0, 0, 0), Len: 24, OutPort: 3},
				{Addr: 0, Len: 0, OutPort: 0},
			},
		},
		{
			Device: "spine0",
			Routes: []fabric.Route{
				{DstIP: core.IPv4Addr(10, 0, 0, 1), Priority: 10, OutPort: 0},
			},
		},
	}}
}

// mustConverge applies spec via plain Diff+Apply and fails the test on
// any error.
func mustConverge(t *testing.T, h *harness, spec fabric.Spec) {
	t.Helper()
	cs, errs, err := h.ctl.Diff(spec)
	if err != nil || len(errs) > 0 {
		t.Fatalf("Diff: err=%v device errs=%v", err, errs)
	}
	rep := h.ctl.Apply(cs)
	if !rep.OK() {
		t.Fatalf("Apply errors: %v", rep.Errors())
	}
	if errs := h.ctl.Verify(spec); len(errs) > 0 {
		t.Fatalf("Verify: %v", errs)
	}
}

func TestLifecycle(t *testing.T) {
	h := newHarness(1)
	spec := testSpec()

	cs, errs, err := h.ctl.Diff(spec)
	if err != nil || len(errs) > 0 {
		t.Fatalf("Diff: err=%v device errs=%v", err, errs)
	}
	if cs.Empty() {
		t.Fatal("fresh fabric diffed empty")
	}
	// 2 grants + 2 allocs + 3 routes + 2 prefixes on leaf0, 1 route on
	// spine0.
	if got := cs.Ops(); got != 10 {
		t.Fatalf("Ops() = %d, want 10\n%s", got, cs)
	}
	listing := cs.String()
	for _, want := range []string{
		"device leaf0 (base epoch 0)",
		"+ tenant 1 policy=control words=64 weight=10 burst=16",
		"+ tenant 2 policy=default words=32 weight=1 burst=8",
		"+ service rcp words=8 seed=3",
		"+ route dst=10.0.9.9 prio=50 -> drop",
		"+ prefix 10.0.0.0/24 -> port 3",
		"device spine0 (base epoch 0)",
	} {
		if !strings.Contains(listing, want) {
			t.Fatalf("dry-run listing missing %q:\n%s", want, listing)
		}
	}

	// Dry run writes nothing.
	if got := h.leaf.TCAM().Size(); got != 0 {
		t.Fatalf("Diff installed %d TCAM entries", got)
	}

	rep := h.ctl.Apply(cs)
	if !rep.OK() {
		t.Fatalf("Apply errors: %v", rep.Errors())
	}
	if got := rep.OpsApplied(); got != 10 {
		t.Fatalf("OpsApplied = %d, want 10", got)
	}
	if errs := h.ctl.Verify(spec); len(errs) > 0 {
		t.Fatalf("Verify after apply: %v", errs)
	}

	// Field-for-field: read back and compare against the normalized spec.
	st, derr := h.ctl.ReadState("leaf0")
	if derr != nil {
		t.Fatal(derr)
	}
	if len(st.Tenants) != 2 || st.Tenants[0].ID != 1 || st.Tenants[0].Words != 64 ||
		st.Tenants[0].ACL != guard.ControlACL() || st.Tenants[1].Burst != guard.DefaultBurst {
		t.Fatalf("tenant read-back mismatch: %+v", st.Tenants)
	}
	if len(st.Services) != 2 || st.Services[0].Name != "rcp" || st.Services[0].Region.Words != 8 {
		t.Fatalf("service read-back mismatch: %+v", st.Services)
	}
	if got := h.leaf.SRAM(mem.SRAMIndex(st.Services[0].Region.Base)); got != 1250000 {
		t.Fatalf("seed word 0 = %d, want 1250000", got)
	}
	if len(st.Routes) != 3 || len(st.Prefixes) != 2 {
		t.Fatalf("route/prefix read-back mismatch: %d routes, %d prefixes", len(st.Routes), len(st.Prefixes))
	}

	// The fixpoint: a second diff is empty, and its listing says so.
	cs2, _, _ := h.ctl.Diff(spec)
	if !cs2.Empty() {
		t.Fatalf("post-apply diff not empty:\n%s", cs2)
	}
	if !strings.Contains(cs2.String(), "changeset: empty") {
		t.Fatalf("empty listing = %q", cs2.String())
	}
}

func TestDiffRepairsDrift(t *testing.T) {
	h := newHarness(1)
	spec := testSpec()
	mustConverge(t, h, spec)

	// Drift the live state behind the controller's back: kill a grant,
	// free a service, retarget a route, drop a prefix, and install a
	// stray route inside the controller's band.
	if err := h.leaf.RevokeTenant(2); err != nil {
		t.Fatal(err)
	}
	if err := h.leaf.Allocator().Free("fabric/tally"); err != nil {
		t.Fatal(err)
	}
	var victim uint32
	for _, e := range h.leaf.TCAM().Entries() {
		if e.Value[0] == core.IPv4Addr(10, 0, 0, 1) {
			victim = e.ID
		}
	}
	if err := h.leaf.TCAM().Update(victim, asicAction(9)); err != nil {
		t.Fatal(err)
	}
	h.leaf.L3().Remove(core.IPv4Addr(10, 0, 0, 0), 24)
	strayV, strayM := dstRule(core.IPv4Addr(99, 9, 9, 9))
	h.leaf.TCAM().Insert(fabric.BandBase+7, strayV, strayM, asicAction(1))

	cs, errs, err := h.ctl.Diff(spec)
	if err != nil || len(errs) > 0 {
		t.Fatalf("Diff: err=%v device errs=%v", err, errs)
	}
	// remove stray + grant + alloc + update route + add prefix = 5.
	if got := cs.Ops(); got != 5 {
		t.Fatalf("repair diff Ops() = %d, want 5\n%s", got, cs)
	}
	rep := h.ctl.Apply(cs)
	if !rep.OK() {
		t.Fatalf("Apply errors: %v", rep.Errors())
	}
	if errs := h.ctl.Verify(spec); len(errs) > 0 {
		t.Fatalf("Verify after repair: %v", errs)
	}
}

func TestUnmanagedTablesUntouched(t *testing.T) {
	h := newHarness(1)
	// Legacy state outside the controller's ownership: a low-priority
	// route, a foreign allocator task, a prefix, a tenant.
	lv, lm := dstRule(core.IPv4Addr(10, 0, 0, 1))
	legacyRoute := h.spine.TCAM().Insert(100, lv, lm, asicAction(2))
	if _, err := h.spine.Allocator().Alloc("legacy-task", 16); err != nil {
		t.Fatal(err)
	}
	if _, err := h.leaf.GrantTenant(5, guard.DefaultACL(), 16, 0, 0); err != nil {
		t.Fatal(err)
	}

	// Spec with no tenants and no prefixes for leaf0: those tables are
	// unmanaged, so tenant 5 must survive.
	spec := fabric.Spec{Devices: []fabric.DeviceSpec{
		{Device: "leaf0", Services: []fabric.Service{{Name: "svc", Words: 8}}},
		{Device: "spine0", Routes: []fabric.Route{{DstIP: core.IPv4Addr(10, 0, 0, 2), Priority: 1, OutPort: 3}}},
	}}
	mustConverge(t, h, spec)

	if _, ok := h.leaf.Guard().Lookup(5); !ok {
		t.Fatal("unmanaged tenant 5 was revoked")
	}
	if _, ok := h.spine.TCAM().Get(legacyRoute); !ok {
		t.Fatal("legacy low-priority route was removed")
	}
	if _, ok := h.spine.Allocator().Lookup("legacy-task"); !ok {
		t.Fatal("foreign allocator task was freed")
	}
}

func TestApplyRollsBackOnWriteFailure(t *testing.T) {
	h := newHarness(1)
	base := testSpec()
	mustConverge(t, h, base)
	before, _ := h.ctl.ReadState("leaf0")

	// Scribble into a service region so rollback has real contents to
	// restore.
	rcpBase := mem.SRAMIndex(before.Services[0].Region.Base)
	h.leaf.SetSRAM(rcpBase+1, 0xbeef)

	// A spec whose second service cannot fit: the first alloc lands,
	// the second fails, and the whole device must roll back.
	bad := base
	bad.Devices = append([]fabric.DeviceSpec(nil), base.Devices...)
	leaf := bad.Devices[0]
	leaf.Services = append([]fabric.Service{
		{Name: "aaa-huge", Words: mem.SRAMWords - 8 - 4 - 32}, // fits beside rcp+tally...
		{Name: "zzz-one", Words: 64},                          // ...but leaves only 32 for this
	}, leaf.Services...)
	bad.Devices[0] = leaf

	cs, errs, err := h.ctl.Diff(bad)
	if err != nil || len(errs) > 0 {
		t.Fatalf("Diff: err=%v device errs=%v", err, errs)
	}
	rep := h.ctl.Apply(cs)
	if rep.OK() {
		t.Fatal("over-committed apply reported success")
	}
	derrs := rep.Errors()
	if len(derrs) != 1 || derrs[0].Kind != fabric.ErrWriteFailed || !derrs[0].RolledBack {
		t.Fatalf("want one rolled-back write-failed error, got %v", derrs)
	}
	if derrs[0].Device != "leaf0" {
		t.Fatalf("error names device %q", derrs[0].Device)
	}

	// The device is back at the pre-apply snapshot, contents included.
	after, _ := h.ctl.ReadState("leaf0")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("rollback mismatch:\nbefore %+v\nafter  %+v", before, after)
	}
	if got := h.leaf.SRAM(rcpBase + 1); got != 0xbeef {
		t.Fatalf("service contents not restored: word1 = %#x", got)
	}
	if errs := h.ctl.Verify(base); len(errs) > 0 {
		t.Fatalf("base spec no longer verifies after rollback: %v", errs)
	}
}

func TestApplyEpochStamp(t *testing.T) {
	h := newHarness(1)
	spec := testSpec()
	cs, _, err := h.ctl.Diff(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The switch crash-restarts between diff and apply.
	h.leaf.Reboot(netsim.Millisecond)

	// Mid-boot the device is dark; the rest of the ChangeSet still
	// applies (per-device all-or-nothing, not per-fabric).
	rep := h.ctl.Apply(cs)
	errs := rep.Errors()
	if len(errs) != 1 || errs[0].Device != "leaf0" || errs[0].Kind != fabric.ErrDeviceDark {
		t.Fatalf("mid-boot apply: want leaf0 dark only, got %v", errs)
	}
	st, derr := h.ctl.ReadState("spine0")
	if derr != nil || len(st.Routes) != 1 {
		t.Fatalf("spine0 after partial apply: %v, %+v", derr, st.Routes)
	}

	// Post-boot the epoch moved: the stale leaf0 change must not land.
	h.sim.RunUntil(h.sim.Now() + 2*netsim.Millisecond)
	var leafCS fabric.ChangeSet
	for _, dc := range cs.Devices {
		if dc.Device == "leaf0" {
			leafCS.Devices = append(leafCS.Devices, dc)
		}
	}
	rep = h.ctl.Apply(leafCS)
	errs = rep.Errors()
	if len(errs) != 1 || errs[0].Kind != fabric.ErrEpochRaced {
		t.Fatalf("stale apply: want epoch-raced, got %v", errs)
	}
	if !errs[0].Kind.Retryable() {
		t.Fatal("epoch-raced must be retryable")
	}
	if got := h.leaf.TCAM().Size(); got != 0 {
		t.Fatalf("stale apply landed %d TCAM entries", got)
	}
}

func TestDiffErrors(t *testing.T) {
	h := newHarness(1)

	// Unknown device.
	_, errs, err := h.ctl.Diff(fabric.Spec{Devices: []fabric.DeviceSpec{{Device: "nope"}}})
	if err != nil || len(errs) != 1 || errs[0].Kind != fabric.ErrUnknownDevice {
		t.Fatalf("unknown device: err=%v errs=%v", err, errs)
	}
	if errs[0].Kind.Retryable() {
		t.Fatal("unknown-device must not be retryable")
	}

	// Tenants on a guard-less switch.
	_, errs, err = h.ctl.Diff(fabric.Spec{Devices: []fabric.DeviceSpec{
		{Device: "spine0", Tenants: []fabric.Tenant{{ID: 1, Words: 8}}},
	}})
	if err != nil || len(errs) != 1 || errs[0].Kind != fabric.ErrSpecInvalid {
		t.Fatalf("guardless tenants: err=%v errs=%v", err, errs)
	}

	// Invalid specs fail Normalize, not per-device.
	for _, bad := range []fabric.Spec{
		{Devices: []fabric.DeviceSpec{{Device: "leaf0"}, {Device: "leaf0"}}},
		{Devices: []fabric.DeviceSpec{{Device: "leaf0", Tenants: []fabric.Tenant{{ID: 0, Words: 8}}}}},
		{Devices: []fabric.DeviceSpec{{Device: "leaf0", Routes: []fabric.Route{{Priority: fabric.BandSize}}}}},
		{Devices: []fabric.DeviceSpec{{Device: "leaf0", Services: []fabric.Service{{Name: "s", Words: 0}}}}},
	} {
		if _, _, err := h.ctl.Diff(bad); err == nil {
			t.Fatalf("spec %+v passed Normalize", bad)
		}
	}
}

// asicAction builds a forward-to-port TCAM action.
func asicAction(port int) tcam.Action { return tcam.Action{OutPort: port} }

// dstRule builds an exact-destination TCAM match.
func dstRule(ip uint32) (tcam.Key, tcam.Key) { return tcam.DstIPRule(ip) }
