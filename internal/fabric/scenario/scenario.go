// Package scenario runs declarative YAML fabric scenarios: provision a
// spec through the fabric controller, schedule fault plans, start
// workloads, soak simulated time, assert invariants, and churn the spec
// under load — with phase dependency ordering and a repeat mode for
// stress runs.
//
// A scenario file:
//
//	name: converge-under-churn
//	spec:
//	  devices: ...          # fabric.ParseSpec format (optional)
//	phases:
//	  - name: provision
//	    kind: provision     # converge the spec
//	    budget: 5
//	    backoff: 10ms
//	    bound: 1s
//	  - name: storm
//	    kind: faults        # schedule a fault plan
//	    needs: [provision]
//	    events:
//	      - at: 3s
//	        kind: switch-reboot
//	        target: spine0
//	        bootdelay: 1ms
//	  - name: work
//	    kind: workloads     # start named workload hooks
//	    needs: [provision]
//	    hooks: [rcp, accounting]
//	  - name: soak
//	    kind: run           # advance simulated time
//	    needs: [work]
//	    until: 7s
//	  - name: check
//	    kind: asserts       # run named assert hooks; failures collect
//	    needs: [soak]
//	    hooks: [delivery]
//	  - name: reshuffle
//	    kind: churn         # mutate the spec via hooks, then reconverge
//	    needs: [check]
//	    hooks: [shift-routes]
//	    repeat: 2
//
// Hooks are Go functions the harness registers on the Env by name; the
// YAML orders them.  "$name" tokens anywhere in the document are
// substituted from Env.Vars before parsing, so one scenario file can be
// parameterized across seeds and targets.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/fabric/yamlite"
	"repro/internal/faults"
	"repro/internal/netsim"
)

// Hook is a named harness callback: workloads start things, asserts
// check things, churns mutate Env.Spec.
type Hook func(*Env) error

// Env is the world a scenario runs in.  The harness builds topology and
// registers hooks; the scenario drives them.
type Env struct {
	Sim        *netsim.Sim
	Controller *fabric.Controller
	Injector   *faults.Injector
	// Spec is the desired fabric state; a scenario's spec: section
	// replaces it, and churn hooks mutate it between converges.
	Spec fabric.Spec
	// Seed parameterizes fault plans ({Seed: Seed} in every scheduled
	// plan) so a scenario replays identically per seed.
	Seed int64
	// Vars is substituted for "$name" tokens at parse time.
	Vars map[string]string

	Workloads map[string]Hook
	Asserts   map[string]Hook
	Churns    map[string]Hook
}

// Phase kinds.
const (
	KindProvision = "provision"
	KindFaults    = "faults"
	KindWorkloads = "workloads"
	KindRun       = "run"
	KindAsserts   = "asserts"
	KindChurn     = "churn"
)

// Phase is one parsed scenario step.
type Phase struct {
	Name   string
	Kind   string
	Needs  []string
	Repeat int

	// provision / churn
	Budget     int
	Backoff    netsim.Time
	ApplyDelay netsim.Time
	Bound      netsim.Time

	Events []faults.Event // faults
	Hooks  []string       // workloads / asserts / churn
	Until  netsim.Time    // run
}

// Scenario is a parsed scenario document with phases already in
// dependency order.
type Scenario struct {
	Name   string
	Spec   *fabric.Spec
	Phases []Phase
}

// Parse parses a scenario document, substituting "$name" tokens from
// vars first, validating phase kinds and resolving the dependency
// order (Kahn's algorithm, preferring declaration order, so the
// schedule is deterministic).
func Parse(src string, vars map[string]string) (Scenario, error) {
	src = substitute(src, vars)
	root, err := yamlite.Parse(src)
	if err != nil {
		return Scenario{}, err
	}
	if err := knownKeys(root, "name", "spec", "phases"); err != nil {
		return Scenario{}, err
	}
	sc := Scenario{Name: root.Get("name").Str()}
	if sn := root.Get("spec"); sn != nil {
		spec, err := fabric.DecodeSpec(sn)
		if err != nil {
			return Scenario{}, err
		}
		sc.Spec = &spec
	}
	seen := make(map[string]bool)
	for i, pn := range root.Get("phases").Items() {
		p, err := decodePhase(pn)
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario: phase %d: %w", i, err)
		}
		if seen[p.Name] {
			return Scenario{}, fmt.Errorf("scenario: duplicate phase %q", p.Name)
		}
		seen[p.Name] = true
		sc.Phases = append(sc.Phases, p)
	}
	ordered, err := topoOrder(sc.Phases)
	if err != nil {
		return Scenario{}, err
	}
	sc.Phases = ordered
	return sc, nil
}

// substitute replaces "$name" tokens, longest names first so "$seed2"
// never half-matches "$seed".
func substitute(src string, vars map[string]string) string {
	if len(vars) == 0 {
		return src
	}
	names := make([]string, 0, len(vars))
	for name := range vars { //lint:allow maporder (sorted below)
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if len(names[i]) != len(names[j]) {
			return len(names[i]) > len(names[j])
		}
		return names[i] < names[j]
	})
	pairs := make([]string, 0, 2*len(names))
	for _, name := range names {
		pairs = append(pairs, "$"+name, vars[name])
	}
	return strings.NewReplacer(pairs...).Replace(src)
}

func decodePhase(n *yamlite.Node) (Phase, error) {
	if err := knownKeys(n, "name", "kind", "needs", "repeat",
		"budget", "backoff", "applydelay", "bound", "events", "hooks", "until"); err != nil {
		return Phase{}, err
	}
	p := Phase{Name: n.Get("name").Str(), Kind: n.Get("kind").Str()}
	if p.Name == "" {
		return Phase{}, fmt.Errorf("missing name")
	}
	for _, need := range n.Get("needs").Items() {
		p.Needs = append(p.Needs, need.Str())
	}
	var err error
	if r := n.Get("repeat"); r != nil {
		v, err := r.Int()
		if err != nil || v < 1 {
			return Phase{}, fmt.Errorf("bad repeat: %v", err)
		}
		p.Repeat = int(v)
	}
	switch p.Kind {
	case KindProvision, KindChurn:
		if b := n.Get("budget"); b != nil {
			v, err := b.Int()
			if err != nil {
				return Phase{}, err
			}
			p.Budget = int(v)
		}
		if p.Backoff, err = durationKey(n, "backoff"); err != nil {
			return Phase{}, err
		}
		if p.ApplyDelay, err = durationKey(n, "applydelay"); err != nil {
			return Phase{}, err
		}
		if p.Bound, err = durationKey(n, "bound"); err != nil {
			return Phase{}, err
		}
		if p.Kind == KindChurn {
			for _, h := range n.Get("hooks").Items() {
				p.Hooks = append(p.Hooks, h.Str())
			}
			if len(p.Hooks) == 0 {
				return Phase{}, fmt.Errorf("churn phase %q has no hooks", p.Name)
			}
		}
	case KindFaults:
		for i, en := range n.Get("events").Items() {
			ev, err := decodeEvent(en)
			if err != nil {
				return Phase{}, fmt.Errorf("event %d: %w", i, err)
			}
			p.Events = append(p.Events, ev)
		}
		if len(p.Events) == 0 {
			return Phase{}, fmt.Errorf("faults phase %q has no events", p.Name)
		}
	case KindWorkloads, KindAsserts:
		for _, h := range n.Get("hooks").Items() {
			p.Hooks = append(p.Hooks, h.Str())
		}
		if len(p.Hooks) == 0 {
			return Phase{}, fmt.Errorf("%s phase %q has no hooks", p.Kind, p.Name)
		}
	case KindRun:
		if p.Until, err = durationKey(n, "until"); err != nil {
			return Phase{}, err
		}
		if p.Until == 0 {
			return Phase{}, fmt.Errorf("run phase %q needs until", p.Name)
		}
	default:
		return Phase{}, fmt.Errorf("unknown kind %q", p.Kind)
	}
	return p, nil
}

// kindByName maps the faults package's event names back to kinds.
func kindByName(name string) (faults.Kind, error) {
	for k := faults.Kind(0); ; k++ {
		s := k.String()
		if s == "unknown" {
			return 0, fmt.Errorf("unknown fault kind %q", name)
		}
		if s == name {
			return k, nil
		}
	}
}

func decodeEvent(n *yamlite.Node) (faults.Event, error) {
	if err := knownKeys(n, "at", "kind", "target", "p",
		"pgoodbad", "pbadgood", "lossgood", "lossbad",
		"dstip", "bootdelay", "pps", "dstmac", "dir"); err != nil {
		return faults.Event{}, err
	}
	var ev faults.Event
	var err error
	if ev.At, err = durationKey(n, "at"); err != nil {
		return faults.Event{}, err
	}
	if ev.Kind, err = kindByName(n.Get("kind").Str()); err != nil {
		return faults.Event{}, err
	}
	ev.Target = n.Get("target").Str()
	if ev.Target == "" {
		return faults.Event{}, fmt.Errorf("missing target")
	}
	for _, f := range []struct {
		key string
		dst *float64
	}{
		{"p", &ev.P}, {"pgoodbad", &ev.PGoodBad}, {"pbadgood", &ev.PBadGood},
		{"lossgood", &ev.LossGood}, {"lossbad", &ev.LossBad}, {"pps", &ev.PPS},
	} {
		if v := n.Get(f.key); v != nil {
			if *f.dst, err = v.Float(); err != nil {
				return faults.Event{}, err
			}
		}
	}
	if v := n.Get("dstip"); v != nil {
		if ev.DstIP, err = fabric.ParseIP(v.Str()); err != nil {
			return faults.Event{}, err
		}
	}
	if ev.BootDelay, err = durationKey(n, "bootdelay"); err != nil {
		return faults.Event{}, err
	}
	if v := n.Get("dstmac"); v != nil {
		if ev.DstMAC, err = parseMAC(v.Str()); err != nil {
			return faults.Event{}, err
		}
	}
	if v := n.Get("dir"); v != nil {
		f, err := v.Float()
		if err != nil {
			return faults.Event{}, err
		}
		ev.Dir = int(f)
	}
	return ev, nil
}

// parseMAC parses the colon-hex form core.MAC.String renders.
func parseMAC(s string) (core.MAC, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	var mac core.MAC
	if len(parts) != len(mac) {
		return mac, fmt.Errorf("scenario: %q is not a MAC address", s)
	}
	for i, p := range parts {
		var b uint8
		if _, err := fmt.Sscanf(p, "%02x", &b); err != nil || len(p) != 2 {
			return mac, fmt.Errorf("scenario: %q is not a MAC address", s)
		}
		mac[i] = b
	}
	return mac, nil
}

func durationKey(n *yamlite.Node, key string) (netsim.Time, error) {
	v := n.Get(key)
	if v == nil {
		return 0, nil
	}
	return fabric.ParseDuration(v.Str())
}

func knownKeys(n *yamlite.Node, allowed ...string) error {
	if n == nil {
		return fmt.Errorf("scenario: expected a map")
	}
outer:
	for _, k := range n.Keys() {
		for _, a := range allowed {
			if k == a {
				continue outer
			}
		}
		return fmt.Errorf("scenario: unknown key %q (allowed: %s)", k, strings.Join(allowed, ", "))
	}
	return nil
}

// topoOrder resolves phase dependencies: each phase runs after every
// phase it needs, and among ready phases declaration order wins, so the
// schedule is stable across runs.
func topoOrder(phases []Phase) ([]Phase, error) {
	index := make(map[string]int, len(phases))
	for i, p := range phases {
		index[p.Name] = i
	}
	for _, p := range phases {
		for _, need := range p.Needs {
			if _, ok := index[need]; !ok {
				return nil, fmt.Errorf("scenario: phase %q needs unknown phase %q", p.Name, need)
			}
		}
	}
	done := make([]bool, len(phases))
	out := make([]Phase, 0, len(phases))
	for len(out) < len(phases) {
		picked := -1
		for i, p := range phases {
			if done[i] {
				continue
			}
			ready := true
			for _, need := range p.Needs {
				if !done[index[need]] {
					ready = false
					break
				}
			}
			if ready {
				picked = i
				break
			}
		}
		if picked < 0 {
			var stuck []string
			for i, p := range phases {
				if !done[i] {
					stuck = append(stuck, p.Name)
				}
			}
			return nil, fmt.Errorf("scenario: dependency cycle among %s", strings.Join(stuck, ", "))
		}
		done[picked] = true
		out = append(out, phases[picked])
	}
	return out, nil
}
