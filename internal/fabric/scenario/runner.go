package scenario

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/netsim"
)

// DefaultBound caps how long a converge phase may drive the simulation
// before the runner gives up waiting.
const DefaultBound = netsim.Second

// PhaseResult is one phase's outcome.
type PhaseResult struct {
	Name string
	Kind string
	// Start and End are the simulated times the phase ran across.
	Start, End netsim.Time
	// Iterations is how many times the phase body ran (repeat mode).
	Iterations int
	// Converges holds one result per converge the phase ran
	// (provision/churn kinds).
	Converges []fabric.ConvergeResult
	// Failures are assert-hook failures; they collect, they never
	// abort the scenario.
	Failures []string
	// Err is a hard error (unknown hook, unschedulable fault plan,
	// converge that never finished); it aborts the remaining phases.
	Err string
}

// Result is a full scenario run.  It is plain values throughout so
// soak tests can reflect.DeepEqual two runs.
type Result struct {
	Name   string
	Phases []PhaseResult
	// Aborted names the phase whose hard error stopped the run, empty
	// when every phase ran.
	Aborted string
}

// Failures collects every assert failure across phases.
func (r Result) Failures() []string {
	var out []string
	for _, p := range r.Phases {
		out = append(out, p.Failures...)
	}
	return out
}

// Converged reports whether every converge in the run reached spec.
func (r Result) Converged() bool {
	for _, p := range r.Phases {
		for _, c := range p.Converges {
			if !c.Converged {
				return false
			}
		}
	}
	return true
}

// OK reports a fully clean run: no hard errors, no assert failures,
// every converge converged.
func (r Result) OK() bool {
	if r.Aborted != "" {
		return false
	}
	for _, p := range r.Phases {
		if p.Err != "" || len(p.Failures) > 0 {
			return false
		}
	}
	return r.Converged()
}

// Run executes the scenario's phases in dependency order against env.
// A phase's hard error aborts the remaining phases (the partial result
// still reports everything that ran); assert failures and unconverged
// converges are recorded and the run continues — graceful degradation,
// never a silent drop.
func Run(env *Env, sc Scenario) Result {
	if sc.Spec != nil {
		env.Spec = *sc.Spec
	}
	res := Result{Name: sc.Name}
	for _, p := range sc.Phases {
		pr := runPhase(env, p)
		res.Phases = append(res.Phases, pr)
		if pr.Err != "" {
			res.Aborted = p.Name
			break
		}
	}
	return res
}

func runPhase(env *Env, p Phase) PhaseResult {
	pr := PhaseResult{Name: p.Name, Kind: p.Kind, Start: env.Sim.Now()}
	iters := p.Repeat
	if iters < 1 {
		iters = 1
	}
	for i := 0; i < iters && pr.Err == ""; i++ {
		pr.Iterations++
		runPhaseOnce(env, p, &pr)
	}
	pr.End = env.Sim.Now()
	return pr
}

func runPhaseOnce(env *Env, p Phase, pr *PhaseResult) {
	switch p.Kind {
	case KindProvision:
		pr.converge(env, p)
	case KindChurn:
		for _, name := range p.Hooks {
			hook, ok := env.Churns[name]
			if !ok {
				pr.Err = fmt.Sprintf("unknown churn hook %q", name)
				return
			}
			if err := hook(env); err != nil {
				pr.Err = fmt.Sprintf("churn hook %q: %v", name, err)
				return
			}
		}
		pr.converge(env, p)
	case KindFaults:
		if err := env.Injector.Schedule(faults.Plan{Seed: env.Seed, Events: p.Events}); err != nil {
			pr.Err = err.Error()
		}
	case KindWorkloads:
		for _, name := range p.Hooks {
			hook, ok := env.Workloads[name]
			if !ok {
				pr.Err = fmt.Sprintf("unknown workload hook %q", name)
				return
			}
			if err := hook(env); err != nil {
				pr.Err = fmt.Sprintf("workload hook %q: %v", name, err)
				return
			}
		}
	case KindRun:
		if p.Until > env.Sim.Now() {
			env.Sim.RunUntil(p.Until)
		}
	case KindAsserts:
		for _, name := range p.Hooks {
			hook, ok := env.Asserts[name]
			if !ok {
				pr.Err = fmt.Sprintf("unknown assert hook %q", name)
				return
			}
			if err := hook(env); err != nil {
				pr.Failures = append(pr.Failures, fmt.Sprintf("%s/%s: %v", p.Name, name, err))
			}
		}
	}
}

// converge runs one converge of env.Spec under the phase's budget and
// drives the simulation until it finishes or the bound passes.
func (pr *PhaseResult) converge(env *Env, p Phase) {
	cfg := fabric.ConvergeConfig{
		Budget:     p.Budget,
		Backoff:    p.Backoff,
		ApplyDelay: p.ApplyDelay,
	}
	bound := p.Bound
	if bound <= 0 {
		bound = DefaultBound
	}
	deadline := env.Sim.Now() + bound
	var res fabric.ConvergeResult
	done := false
	env.Controller.Converge(env.Spec, cfg, func(r fabric.ConvergeResult) { res, done = r, true })
	for !done && env.Sim.Now() < deadline {
		env.Sim.RunUntil(env.Sim.Now() + netsim.Millisecond)
	}
	if !done {
		pr.Err = fmt.Sprintf("converge did not finish within %v", bound)
		return
	}
	pr.Converges = append(pr.Converges, res)
}
