package scenario_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/asic"
	"repro/internal/fabric"
	"repro/internal/fabric/scenario"
	"repro/internal/faults"
	"repro/internal/netsim"
)

const scenarioSrc = `
name: converge-under-reboot
spec:
  devices:
    - device: leaf0
      tenants:
        - id: 1
          policy: control
          words: 64
          weight: 10
          burst: 16
      services:
        - name: rcp
          words: 8
          seed: [1250000]
      routes:
        - dst: 10.0.0.1
          prio: 100
          port: 1
    - device: spine0
      routes:
        - dst: 10.0.0.1
          prio: 10
          port: 0
phases:
  # Declared out of dependency order on purpose: needs resolves it.
  - name: check
    kind: asserts
    needs: [heal]
    hooks: [verified]
  - name: provision
    kind: provision
    budget: 6
    backoff: 5ms
    bound: 500ms
  - name: storm
    kind: faults
    needs: [provision]
    events:
      - at: 10ms
        kind: switch-reboot
        target: $victim
        bootdelay: 1ms
  - name: work
    kind: workloads
    needs: [provision]
    hooks: [mark]
  - name: soak
    kind: run
    needs: [work, storm]
    until: 50ms
  # The reboot wiped leaf0's soft state; heal reconverges before the
  # invariant check.
  - name: heal
    kind: provision
    needs: [soak]
    budget: 6
    backoff: 5ms
    bound: 500ms
  - name: reshuffle
    kind: churn
    needs: [check]
    hooks: [shift]
    repeat: 3
    budget: 6
    backoff: 5ms
    bound: 500ms
`

type world struct {
	env   *scenario.Env
	leaf  *asic.Switch
	spine *asic.Switch
	marks int
}

func newWorld(seed int64) *world {
	sim := netsim.New(seed)
	w := &world{}
	w.leaf = asic.New(sim, asic.Config{ID: 1, Ports: 4, Guard: true, TPPRate: 1000})
	w.spine = asic.New(sim, asic.Config{ID: 2, Ports: 4})
	ctl := fabric.New(sim)
	ctl.Register("leaf0", w.leaf)
	ctl.Register("spine0", w.spine)
	inj := faults.NewInjector(sim, nil)
	inj.RegisterSwitch("leaf0", w.leaf)
	inj.RegisterSwitch("spine0", w.spine)
	w.env = &scenario.Env{
		Sim:        sim,
		Controller: ctl,
		Injector:   inj,
		Seed:       seed,
		Vars:       map[string]string{"victim": "leaf0"},
		Workloads: map[string]scenario.Hook{
			"mark": func(*scenario.Env) error { w.marks++; return nil },
		},
		Asserts: map[string]scenario.Hook{
			"verified": func(e *scenario.Env) error {
				if errs := e.Controller.Verify(e.Spec); len(errs) > 0 {
					return fmt.Errorf("%d devices off spec: %v", len(errs), errs)
				}
				return nil
			},
		},
		Churns: map[string]scenario.Hook{
			"shift": func(e *scenario.Env) error {
				// Retarget the leaf route each iteration: real churn,
				// reconverged every time.
				for di, d := range e.Spec.Devices {
					if d.Device != "leaf0" {
						continue
					}
					for ri := range d.Routes {
						e.Spec.Devices[di].Routes[ri].OutPort++
					}
				}
				return nil
			},
		},
	}
	return w
}

func run(t *testing.T, seed int64) (scenario.Result, *world) {
	t.Helper()
	w := newWorld(seed)
	sc, err := scenario.Parse(scenarioSrc, w.env.Vars)
	if err != nil {
		t.Fatal(err)
	}
	return scenario.Run(w.env, sc), w
}

func TestScenarioRun(t *testing.T) {
	res, w := run(t, 1)
	if !res.OK() {
		t.Fatalf("scenario not OK: aborted=%q failures=%v\n%+v", res.Aborted, res.Failures(), res.Phases)
	}

	// Dependency order, not declaration order.
	var order []string
	for _, p := range res.Phases {
		order = append(order, p.Name)
	}
	want := []string{"provision", "storm", "work", "soak", "heal", "check", "reshuffle"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("phase order = %v, want %v", order, want)
	}

	if w.marks != 1 {
		t.Fatalf("workload hook ran %d times", w.marks)
	}

	// The reboot at 10ms wiped leaf0's services; the churn converges
	// at 50ms+ re-provisioned them on the bumped epoch.
	if ep := w.leaf.Epoch(); ep != 1 {
		t.Fatalf("leaf0 epoch = %d, want 1", ep)
	}

	// repeat: 3 ran the churn body three times, each converged.
	last := res.Phases[len(res.Phases)-1]
	if last.Iterations != 3 || len(last.Converges) != 3 {
		t.Fatalf("churn: %d iterations, %d converges", last.Iterations, len(last.Converges))
	}
	for i, c := range last.Converges {
		if !c.Converged {
			t.Fatalf("churn converge %d: %+v", i, c)
		}
	}
	// Three port increments landed: the live route points 3 ports on.
	if errs := w.env.Controller.Verify(w.env.Spec); len(errs) > 0 {
		t.Fatalf("final verify: %v", errs)
	}
	st, derr := w.env.Controller.ReadState("leaf0")
	if derr != nil || len(st.Routes) != 1 || st.Routes[0].OutPort != 4 {
		t.Fatalf("leaf0 final routes: %v %+v", derr, st.Routes)
	}
}

// TestScenarioDeterminism: the same scenario under the same seed
// produces a DeepEqual result; pinned seeds each replay identically
// run over run.
func TestScenarioDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a, _ := run(t, seed)
		b, _ := run(t, seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: results differ:\n%+v\nvs\n%+v", seed, a, b)
		}
	}
}

func TestScenarioAbortsOnUnknownHook(t *testing.T) {
	w := newWorld(1)
	sc, err := scenario.Parse(`
name: bad
phases:
  - name: work
    kind: workloads
    hooks: [nope]
  - name: later
    kind: run
    needs: [work]
    until: 10ms
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := scenario.Run(w.env, sc)
	if res.OK() || res.Aborted != "work" {
		t.Fatalf("want abort at work: %+v", res)
	}
	if len(res.Phases) != 1 || !strings.Contains(res.Phases[0].Err, "unknown workload hook") {
		t.Fatalf("phases = %+v", res.Phases)
	}
}

func TestScenarioAssertFailuresCollect(t *testing.T) {
	w := newWorld(1)
	w.env.Asserts["fail1"] = func(*scenario.Env) error { return fmt.Errorf("first") }
	w.env.Asserts["fail2"] = func(*scenario.Env) error { return fmt.Errorf("second") }
	sc, err := scenario.Parse(`
name: collect
phases:
  - name: check
    kind: asserts
    hooks: [fail1, fail2]
  - name: after
    kind: run
    needs: [check]
    until: 1ms
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := scenario.Run(w.env, sc)
	if res.Aborted != "" {
		t.Fatalf("assert failures must not abort: %+v", res)
	}
	if got := res.Failures(); len(got) != 2 {
		t.Fatalf("failures = %v", got)
	}
	if res.OK() {
		t.Fatal("failing asserts reported OK")
	}
	if len(res.Phases) != 2 {
		t.Fatal("scenario did not continue past failing asserts")
	}
}

func TestScenarioParseErrors(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"phases:\n  - name: a\n    kind: bogus", "unknown kind"},
		{"phases:\n  - name: a\n    kind: run\n    until: 1ms\n  - name: a\n    kind: run\n    until: 2ms", "duplicate phase"},
		{"phases:\n  - name: a\n    kind: run\n    until: 1ms\n    needs: [ghost]", "unknown phase"},
		{"phases:\n  - name: a\n    kind: run\n    until: 1ms\n    needs: [b]\n  - name: b\n    kind: run\n    until: 1ms\n    needs: [a]", "cycle"},
		{"phases:\n  - name: a\n    kind: faults", "no events"},
		{"phases:\n  - name: a\n    kind: faults\n    events:\n      - at: 1ms\n        kind: switch-bounce\n        target: x", "unknown fault kind"},
		{"phases:\n  - name: a\n    kind: workloads", "no hooks"},
		{"phases:\n  - name: a\n    kind: run", "needs until"},
	} {
		if _, err := scenario.Parse(tc.src, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) err = %v, want %q", tc.src, err, tc.want)
		}
	}
}
