package fabric

import (
	"fmt"
	"sort"

	"repro/internal/asic"
	"repro/internal/guard"
	"repro/internal/l3"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/tcam"
)

// Controller drives registered switches from declarative Specs through
// the diff → ChangeSet → apply → verify lifecycle.
type Controller struct {
	sim     *netsim.Sim
	devices map[string]*asic.Switch
	names   []string
	detours map[string]DetourSource
}

// New builds a controller on the simulation clock (used by Converge's
// retry backoff).
func New(sim *netsim.Sim) *Controller {
	return &Controller{sim: sim, devices: make(map[string]*asic.Switch)}
}

// Register names a switch for spec addressing.  Re-registering a name
// replaces the mapping.
func (c *Controller) Register(name string, sw *asic.Switch) {
	if _, ok := c.devices[name]; !ok {
		c.names = append(c.names, name)
		sort.Strings(c.names)
	}
	c.devices[name] = sw
}

// Devices returns the registered device names, sorted.
func (c *Controller) Devices() []string {
	return append([]string(nil), c.names...)
}

// Device returns the registered switch, for scenario hooks that need
// the hardware handle.
func (c *Controller) Device(name string) (*asic.Switch, bool) {
	sw, ok := c.devices[name]
	return sw, ok
}

// Diff reads every device the spec names back live and computes the
// ordered ChangeSet that would move it to spec.  Per-device read
// failures (dark or unknown devices, spec/device mismatches) come back
// as typed DeviceErrors alongside the changes for the devices that
// could be read; the error return is reserved for an invalid spec.
// Diff writes nothing: it IS the dry run.
func (c *Controller) Diff(spec Spec) (ChangeSet, []DeviceError, error) {
	ns, err := spec.Normalize()
	if err != nil {
		return ChangeSet{}, nil, err
	}
	var cs ChangeSet
	var errs []DeviceError
	for _, d := range ns.Devices {
		st, derr := c.ReadState(d.Device)
		if derr != nil {
			errs = append(errs, *derr)
			continue
		}
		ops, derr := diffDevice(d, st, c.detoursFor(d.Device))
		if derr != nil {
			errs = append(errs, *derr)
			continue
		}
		if len(ops) > 0 {
			cs.Devices = append(cs.Devices, DeviceChange{
				Device:    d.Device,
				BaseEpoch: st.Epoch,
				Ops:       ops,
			})
		}
	}
	return cs, errs, nil
}

// diffDevice computes one device's ops: removals first, then grants and
// allocations, then routing (the OpKind order), with informational
// detour ops last.  Both inputs are in canonical sort order, so the
// output is deterministic.
func diffDevice(d DeviceSpec, st DeviceState, dets []Detour) ([]Op, *DeviceError) {
	var revokes, frees, rmRoutes, rmPfx, grants, allocs, addRoutes, updRoutes, addPfx, detours []Op

	// Tenants: the table has no ownership band to carve, so a spec
	// claims it only by listing at least one tenant — and then it owns
	// the whole table.
	if len(d.Tenants) > 0 {
		if !st.GuardEnabled {
			return nil, &DeviceError{Device: d.Device, Kind: ErrSpecInvalid,
				Detail: fmt.Sprintf("spec lists %d tenants but the device has no guard", len(d.Tenants))}
		}
		want := make(map[guard.TenantID]Tenant, len(d.Tenants))
		for _, t := range d.Tenants {
			want[t.ID] = t
		}
		have := make(map[guard.TenantID]TenantState, len(st.Tenants))
		for _, t := range st.Tenants {
			have[t.ID] = t
		}
		for _, t := range st.Tenants { // sorted
			w, ok := want[t.ID]
			if !ok {
				revokes = append(revokes, Op{Kind: OpRevokeTenant, Tenant: Tenant{ID: t.ID}})
				continue
			}
			acl, _ := w.acl() // validated by Normalize
			if acl != t.ACL || w.Words != t.Words || w.Weight != t.Weight || w.Burst != t.Burst {
				// A grant is immutable in the guard; any drift means
				// revoke + re-grant (which zeroes the partition, as the
				// hardware teardown path always does).
				revokes = append(revokes, Op{Kind: OpRevokeTenant, Tenant: Tenant{ID: t.ID}})
			}
		}
		for _, t := range d.Tenants { // sorted
			acl, _ := t.acl()
			if h, ok := have[t.ID]; ok &&
				acl == h.ACL && t.Words == h.Words && t.Weight == h.Weight && t.Burst == h.Burst {
				continue
			}
			grants = append(grants, Op{Kind: OpGrantTenant, Tenant: t, ACL: acl})
		}
	}

	// Services: the "fabric/" task prefix is the ownership mark, so
	// every prefixed allocation is managed whether or not the spec
	// lists services.
	wantSvc := make(map[string]Service, len(d.Services))
	for _, s := range d.Services {
		wantSvc[s.Name] = s
	}
	haveSvc := make(map[string]ServiceState, len(st.Services))
	for _, s := range st.Services {
		haveSvc[s.Name] = s
	}
	for _, s := range st.Services { // sorted
		w, ok := wantSvc[s.Name]
		if !ok || w.Words != s.Region.Words {
			frees = append(frees, Op{Kind: OpFreeService, Service: Service{Name: s.Name, Words: s.Region.Words}})
		}
	}
	for _, s := range d.Services { // sorted
		if h, ok := haveSvc[s.Name]; ok && s.Words == h.Region.Words {
			// Seed words are an apply-time initial value, not steady
			// state: once live, workloads own the region's contents.
			continue
		}
		allocs = append(allocs, Op{Kind: OpAllocService, Service: s})
	}

	// Routes: the controller's TCAM priority band is the ownership
	// mark; everything inside it is managed.
	wantRoute := make(map[routeKey]Route, len(d.Routes))
	for _, r := range d.Routes {
		wantRoute[routeKey{r.DstIP, r.Priority}] = r
	}
	haveRoute := make(map[routeKey]RouteState, len(st.Routes))
	seenRoute := make(map[routeKey]bool, len(st.Routes))
	for _, r := range st.Routes { // sorted, lowest EntryID first per key
		k := routeKey{r.DstIP, r.Priority}
		if seenRoute[k] {
			// A duplicate key in the band (e.g. a stale ChangeSet
			// applied twice): keep the oldest entry, remove the rest.
			rmRoutes = append(rmRoutes, Op{Kind: OpRemoveRoute, Route: r.Route, EntryID: r.EntryID})
			continue
		}
		seenRoute[k] = true
		haveRoute[k] = r
		w, ok := wantRoute[k]
		if !ok {
			rmRoutes = append(rmRoutes, Op{Kind: OpRemoveRoute, Route: r.Route, EntryID: r.EntryID})
		} else if w.OutPort != r.OutPort || w.Drop != r.Drop {
			if det, ok := matchDetour(dets, w, r); ok {
				// The drift is a reflex detour the arm still stands
				// behind: report it, don't fight it.
				detours = append(detours, Op{Kind: OpDetour, Route: w,
					EntryID: r.EntryID, BackupPort: det.BackupPort})
			} else {
				updRoutes = append(updRoutes, Op{Kind: OpUpdateRoute, Route: w, EntryID: r.EntryID})
			}
		}
	}
	for _, r := range d.Routes { // sorted
		if _, ok := haveRoute[routeKey{r.DstIP, r.Priority}]; !ok {
			addRoutes = append(addRoutes, Op{Kind: OpAddRoute, Route: r})
		}
	}

	// Prefixes: like tenants, claimed only by specs listing at least
	// one entry.
	if len(d.Prefixes) > 0 {
		wantPfx := make(map[Prefix]Prefix, len(d.Prefixes))
		for _, p := range d.Prefixes {
			wantPfx[Prefix{Addr: p.Addr, Len: p.Len}] = p
		}
		havePfx := make(map[Prefix]Prefix, len(st.Prefixes))
		for _, p := range st.Prefixes {
			havePfx[Prefix{Addr: p.Addr, Len: p.Len}] = p
		}
		for _, p := range st.Prefixes { // sorted
			if _, ok := wantPfx[Prefix{Addr: p.Addr, Len: p.Len}]; !ok {
				rmPfx = append(rmPfx, Op{Kind: OpRemovePrefix, Prefix: p})
			}
		}
		for _, p := range d.Prefixes { // sorted
			if h, ok := havePfx[Prefix{Addr: p.Addr, Len: p.Len}]; ok && h.OutPort == p.OutPort {
				continue
			}
			// l3.Insert is an upsert, so a changed next hop is a plain add.
			addPfx = append(addPfx, Op{Kind: OpAddPrefix, Prefix: p})
		}
	}

	var ops []Op
	for _, group := range [][]Op{revokes, frees, rmRoutes, rmPfx, grants, allocs, addRoutes, updRoutes, addPfx, detours} {
		ops = append(ops, group...)
	}
	return ops, nil
}

// matchDetour reports whether the drift between spec route w and live
// route r is exactly an active reflex detour: the live entry is the one
// the arm rewrote, still at the version the arm left it, with the live
// action on the backup port and the spec wanting the detour's primary.
// Anything less is ordinary drift the controller repairs.
func matchDetour(dets []Detour, w Route, r RouteState) (Detour, bool) {
	for _, det := range dets {
		if det.EntryID == r.EntryID && det.Version == r.Version &&
			det.DstIP == w.DstIP && det.Priority == w.Priority &&
			!w.Drop && !r.Drop &&
			w.OutPort == det.PrimaryPort && r.OutPort == det.BackupPort {
			return det, true
		}
	}
	return Detour{}, false
}

// DeviceReport is one device's apply outcome.
type DeviceReport struct {
	Device  string
	Applied int
	Err     *DeviceError
}

// ApplyReport is the per-device outcome of applying a ChangeSet.
type ApplyReport struct {
	Devices []DeviceReport
}

// OpsApplied counts the mutations that landed and verified.
func (r ApplyReport) OpsApplied() int {
	n := 0
	for _, d := range r.Devices {
		if d.Err == nil {
			n += d.Applied
		}
	}
	return n
}

// Errors collects the per-device failures.
func (r ApplyReport) Errors() []DeviceError {
	var errs []DeviceError
	for _, d := range r.Devices {
		if d.Err != nil {
			errs = append(errs, *d.Err)
		}
	}
	return errs
}

// OK reports whether every device applied cleanly.
func (r ApplyReport) OK() bool { return len(r.Errors()) == 0 }

// Apply executes a ChangeSet, one device at a time, each device
// all-or-nothing: epoch-checked before any write, snapshotted, applied,
// epoch-rechecked, then every op verified by read-back.  A failure
// rolls the device back to its pre-apply snapshot and surfaces as a
// typed DeviceError; other devices still apply.
func (c *Controller) Apply(cs ChangeSet) ApplyReport {
	var rep ApplyReport
	for _, dc := range cs.Devices {
		rep.Devices = append(rep.Devices, c.applyDevice(dc))
	}
	return rep
}

func (c *Controller) applyDevice(dc DeviceChange) DeviceReport {
	rep := DeviceReport{Device: dc.Device}
	sw, ok := c.devices[dc.Device]
	if !ok {
		rep.Err = &DeviceError{Device: dc.Device, Kind: ErrUnknownDevice}
		return rep
	}

	// Epoch stamp: the writes below are valid only against the state
	// the diff read.  A bumped epoch means a crash-restart wiped that
	// state — don't touch the device; the next converge round re-diffs.
	epoch, up := sw.ReadWord(mem.SwitchBase + mem.SwitchEpoch)
	if !up {
		rep.Err = &DeviceError{Device: dc.Device, Kind: ErrDeviceDark,
			Detail: "no read-back (mid-boot)"}
		return rep
	}
	if epoch != dc.BaseEpoch {
		rep.Err = &DeviceError{Device: dc.Device, Kind: ErrEpochRaced,
			Detail: fmt.Sprintf("base epoch %d, live %d", dc.BaseEpoch, epoch)}
		return rep
	}

	// Pre-apply snapshot: config state plus the managed SRAM contents,
	// so rollback restores service regions byte-for-byte.
	snap, derr := c.ReadState(dc.Device)
	if derr != nil {
		rep.Err = derr
		return rep
	}
	snapWords := make(map[string][]uint32, len(snap.Services))
	for _, s := range snap.Services {
		words := make([]uint32, s.Region.Words)
		base := mem.SRAMIndex(s.Region.Base)
		for i := range words {
			words[i] = sw.SRAM(base + i)
		}
		snapWords[s.Name] = words
	}

	fail := func(kind ErrKind, detail string) DeviceReport {
		rolled := c.rollback(dc.Device, snap, snapWords) == nil
		rep.Err = &DeviceError{Device: dc.Device, Kind: kind, Detail: detail, RolledBack: rolled}
		return rep
	}

	for i, op := range dc.Ops {
		if op.Kind == OpDetour {
			continue // informational: the reflex write already landed
		}
		if err := applyOp(sw, op); err != nil {
			return fail(ErrWriteFailed, fmt.Sprintf("op %d (%s): %v", i, op, err))
		}
		rep.Applied++
	}

	// The writes are in; make sure the device we wrote is still the
	// device we diffed.  A reboot mid-apply wiped some of the writes —
	// don't trust any of them.
	epoch, up = sw.ReadWord(mem.SwitchBase + mem.SwitchEpoch)
	if !up {
		rep.Err = &DeviceError{Device: dc.Device, Kind: ErrDeviceDark,
			Detail: "went dark mid-apply"}
		return rep
	}
	if epoch != dc.BaseEpoch {
		rep.Err = &DeviceError{Device: dc.Device, Kind: ErrEpochRaced,
			Detail: fmt.Sprintf("rebooted mid-apply: base epoch %d, live %d", dc.BaseEpoch, epoch)}
		return rep
	}

	for i, op := range dc.Ops {
		if op.Kind == OpDetour {
			continue
		}
		if detail := verifyOp(sw, op); detail != "" {
			return fail(ErrVerifyFailed, fmt.Sprintf("op %d (%s): %s", i, op, detail))
		}
	}
	return rep
}

// applyOp lands one mutation on the hardware tables.
func applyOp(sw *asic.Switch, op Op) error {
	switch op.Kind {
	case OpRevokeTenant:
		return sw.RevokeTenant(op.Tenant.ID)
	case OpFreeService:
		return sw.Allocator().Free(taskPrefix + op.Service.Name)
	case OpRemoveRoute:
		return sw.TCAM().Remove(op.EntryID)
	case OpRemovePrefix:
		if !sw.L3().Remove(op.Prefix.Addr, op.Prefix.Len) {
			return fmt.Errorf("prefix %s/%d not present", ipString(op.Prefix.Addr), op.Prefix.Len)
		}
		return nil
	case OpGrantTenant:
		_, err := sw.GrantTenant(op.Tenant.ID, op.ACL, op.Tenant.Words, op.Tenant.Weight, op.Tenant.Burst)
		return err
	case OpAllocService:
		reg, err := sw.Allocator().Alloc(taskPrefix+op.Service.Name, op.Service.Words)
		if err != nil {
			return err
		}
		base := mem.SRAMIndex(reg.Base)
		for i, w := range op.Service.Seed {
			sw.SetSRAM(base+i, w)
		}
		return nil
	case OpAddRoute:
		v, m := tcam.DstIPRule(op.Route.DstIP)
		sw.TCAM().Insert(BandBase+op.Route.Priority, v, m, op.Route.action())
		return nil
	case OpUpdateRoute:
		return sw.TCAM().Update(op.EntryID, op.Route.action())
	case OpAddPrefix:
		return sw.L3().Insert(op.Prefix.Addr, op.Prefix.Len, l3.Route{OutPort: op.Prefix.OutPort})
	}
	return fmt.Errorf("unknown op kind %d", op.Kind)
}

// verifyOp re-reads one op's effect and compares field-by-field;
// returns "" when the read-back matches what was written.
func verifyOp(sw *asic.Switch, op Op) string {
	switch op.Kind {
	case OpRevokeTenant:
		if _, ok := sw.Guard().Lookup(op.Tenant.ID); ok {
			return fmt.Sprintf("tenant %d still granted", op.Tenant.ID)
		}
	case OpGrantTenant:
		g, ok := sw.Guard().Lookup(op.Tenant.ID)
		if !ok {
			return fmt.Sprintf("tenant %d not granted", op.Tenant.ID)
		}
		switch {
		case g.ACL != op.ACL:
			return verifyDetail(fmt.Sprintf("tenant %d acl", op.Tenant.ID), op.ACL, g.ACL)
		case g.Partition.Words != op.Tenant.Words:
			return verifyDetail(fmt.Sprintf("tenant %d words", op.Tenant.ID), op.Tenant.Words, g.Partition.Words)
		case g.Weight != op.Tenant.Weight:
			return verifyDetail(fmt.Sprintf("tenant %d weight", op.Tenant.ID), op.Tenant.Weight, g.Weight)
		case g.Burst != op.Tenant.Burst:
			return verifyDetail(fmt.Sprintf("tenant %d burst", op.Tenant.ID), op.Tenant.Burst, g.Burst)
		}
	case OpFreeService:
		if _, ok := sw.Allocator().Lookup(taskPrefix + op.Service.Name); ok {
			return fmt.Sprintf("service %s still allocated", op.Service.Name)
		}
	case OpAllocService:
		reg, ok := sw.Allocator().Lookup(taskPrefix + op.Service.Name)
		if !ok {
			return fmt.Sprintf("service %s not allocated", op.Service.Name)
		}
		if reg.Words != op.Service.Words {
			return verifyDetail(fmt.Sprintf("service %s words", op.Service.Name), op.Service.Words, reg.Words)
		}
		// Seed words read back through the dataplane path a collect
		// TPP's LOAD would take.
		for i, want := range op.Service.Seed {
			got, up := sw.ReadWord(reg.Base + mem.Addr(i))
			if !up || got != want {
				return verifyDetail(fmt.Sprintf("service %s word %d", op.Service.Name, i), want, got)
			}
		}
	case OpAddRoute:
		if detail := verifyRoute(sw, op.Route); detail != "" {
			return detail
		}
	case OpUpdateRoute:
		e, ok := sw.TCAM().Get(op.EntryID)
		if !ok {
			return fmt.Sprintf("entry %d vanished", op.EntryID)
		}
		if e.Action != op.Route.action() {
			return verifyDetail(fmt.Sprintf("route %s prio %d action", ipString(op.Route.DstIP), op.Route.Priority),
				op.Route.action(), e.Action)
		}
	case OpRemoveRoute:
		if _, ok := sw.TCAM().Get(op.EntryID); ok {
			return fmt.Sprintf("entry %d still present", op.EntryID)
		}
	case OpAddPrefix:
		for _, pr := range sw.L3().Routes() {
			if pr.Prefix == op.Prefix.Addr && pr.Len == op.Prefix.Len {
				if pr.Route.OutPort != op.Prefix.OutPort {
					return verifyDetail(fmt.Sprintf("prefix %s/%d port", ipString(op.Prefix.Addr), op.Prefix.Len),
						op.Prefix.OutPort, pr.Route.OutPort)
				}
				return ""
			}
		}
		return fmt.Sprintf("prefix %s/%d not present", ipString(op.Prefix.Addr), op.Prefix.Len)
	case OpRemovePrefix:
		for _, pr := range sw.L3().Routes() {
			if pr.Prefix == op.Prefix.Addr && pr.Len == op.Prefix.Len {
				return fmt.Sprintf("prefix %s/%d still present", ipString(op.Prefix.Addr), op.Prefix.Len)
			}
		}
	}
	return ""
}

// verifyRoute finds the live band entry for r and checks its action.
func verifyRoute(sw *asic.Switch, r Route) string {
	want := BandBase + r.Priority
	for _, e := range sw.TCAM().Entries() {
		if e.Priority == want && e.Value[tcam.KeyDstIP] == r.DstIP && e.Mask[tcam.KeyDstIP] == tcam.ExactMask {
			if e.Action != r.action() {
				return verifyDetail(fmt.Sprintf("route %s prio %d action", ipString(r.DstIP), r.Priority),
					r.action(), e.Action)
			}
			return ""
		}
	}
	return fmt.Sprintf("route %s prio %d not present", ipString(r.DstIP), r.Priority)
}

// rollback restores device dev to its pre-apply snapshot: re-diff the
// snapshot-as-spec against whatever the half-applied state is now,
// apply the delta, then write the snapshotted service contents back.
func (c *Controller) rollback(dev string, snap DeviceState, snapWords map[string][]uint32) error {
	d, err := normalizeDevice(specFromState(snap))
	if err != nil {
		return err
	}
	st, derr := c.ReadState(dev)
	if derr != nil {
		return derr
	}
	// Rollback restores the exact pre-apply snapshot, detours and all:
	// the snapshot's RouteStates already carry whatever actions the
	// reflex had installed, so no detour source is consulted here.
	ops, derr2 := diffDevice(d, st, nil)
	if derr2 != nil {
		return derr2
	}
	sw := c.devices[dev]
	for _, op := range ops {
		if err := applyOp(sw, op); err != nil {
			return fmt.Errorf("rollback op %s: %w", op, err)
		}
	}
	for _, s := range snap.Services {
		reg, ok := sw.Allocator().Lookup(taskPrefix + s.Name)
		if !ok {
			return fmt.Errorf("rollback: service %s missing", s.Name)
		}
		base := mem.SRAMIndex(reg.Base)
		for i, w := range snapWords[s.Name] {
			sw.SetSRAM(base+i, w)
		}
	}
	return nil
}

// Verify re-reads every device the spec names and reports the ones
// whose live state still differs from spec, field-for-field, as typed
// errors.  nil means converged.
func (c *Controller) Verify(spec Spec) []DeviceError {
	cs, errs, err := c.Diff(spec)
	if err != nil {
		return []DeviceError{{Kind: ErrSpecInvalid, Detail: err.Error()}}
	}
	for _, dc := range cs.Devices {
		// Informational detour ops are not drift: a device whose only
		// divergence from spec is a standing reflex detour verifies
		// clean (the operator ratifies or the reflex reverts).
		muts, first := 0, Op{}
		for _, op := range dc.Ops {
			if op.Kind == OpDetour {
				continue
			}
			if muts == 0 {
				first = op
			}
			muts++
		}
		if muts == 0 {
			continue
		}
		detail := fmt.Sprintf("%d ops short of spec (first: %s)", muts, first)
		errs = append(errs, DeviceError{Device: dc.Device, Kind: ErrVerifyFailed, Detail: detail})
	}
	return errs
}
