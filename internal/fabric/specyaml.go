package fabric

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fabric/yamlite"
	"repro/internal/guard"
	"repro/internal/netsim"
)

// ParseSpec parses a YAML spec document:
//
//	devices:
//	  - device: leaf0
//	    tenants:
//	      - id: 1
//	        policy: control   # or default
//	        words: 64
//	        weight: 10
//	        burst: 16
//	    services:
//	      - name: rcp
//	        words: 8
//	        seed: [1250000, 0]
//	    routes:
//	      - dst: 10.0.0.1
//	        prio: 100
//	        port: 1          # or drop: true
//	    prefixes:
//	      - prefix: 10.0.0.0/24
//	        port: 3
//
// Unknown keys are rejected — a typo in a spec must fail loudly, not
// silently under-configure the fabric.
func ParseSpec(src string) (Spec, error) {
	root, err := yamlite.Parse(src)
	if err != nil {
		return Spec{}, err
	}
	return DecodeSpec(root)
}

// DecodeSpec decodes a parsed spec document (the value of a top-level
// document, or of a scenario's "spec:" key).
func DecodeSpec(root *yamlite.Node) (Spec, error) {
	if root == nil {
		return Spec{}, fmt.Errorf("fabric: no spec")
	}
	if err := knownKeys(root, "devices"); err != nil {
		return Spec{}, err
	}
	var spec Spec
	devs, err := listOf(root, "devices")
	if err != nil {
		return Spec{}, err
	}
	for _, dn := range devs {
		d, err := decodeDevice(dn)
		if err != nil {
			return Spec{}, err
		}
		spec.Devices = append(spec.Devices, d)
	}
	return spec, nil
}

// listOf fetches n[key] as a list of items.  A present-but-not-a-list
// value is an error, not zero items: `devices:` written as a map would
// otherwise decode as an empty spec and silently under-configure the
// fabric.
func listOf(n *yamlite.Node, key string) ([]*yamlite.Node, error) {
	v := n.Get(key)
	if v == nil {
		return nil, nil
	}
	if v.Kind() != yamlite.List {
		return nil, fmt.Errorf("fabric: %s must be a list, got a %v (line %d)", key, v.Kind(), v.Line)
	}
	return v.Items(), nil
}

func decodeDevice(n *yamlite.Node) (DeviceSpec, error) {
	if err := knownKeys(n, "device", "tenants", "services", "routes", "prefixes"); err != nil {
		return DeviceSpec{}, err
	}
	d := DeviceSpec{Device: n.Get("device").Str()}
	wrap := func(err error) error { return fmt.Errorf("device %s: %w", d.Device, err) }
	tns, err := listOf(n, "tenants")
	if err != nil {
		return DeviceSpec{}, wrap(err)
	}
	for _, tn := range tns {
		t, err := decodeTenant(tn)
		if err != nil {
			return DeviceSpec{}, wrap(err)
		}
		d.Tenants = append(d.Tenants, t)
	}
	sns, err := listOf(n, "services")
	if err != nil {
		return DeviceSpec{}, wrap(err)
	}
	for _, sn := range sns {
		s, err := decodeService(sn)
		if err != nil {
			return DeviceSpec{}, wrap(err)
		}
		d.Services = append(d.Services, s)
	}
	rns, err := listOf(n, "routes")
	if err != nil {
		return DeviceSpec{}, wrap(err)
	}
	for _, rn := range rns {
		r, err := decodeRoute(rn)
		if err != nil {
			return DeviceSpec{}, wrap(err)
		}
		d.Routes = append(d.Routes, r)
	}
	pns, err := listOf(n, "prefixes")
	if err != nil {
		return DeviceSpec{}, wrap(err)
	}
	for _, pn := range pns {
		p, err := decodePrefix(pn)
		if err != nil {
			return DeviceSpec{}, wrap(err)
		}
		d.Prefixes = append(d.Prefixes, p)
	}
	return d, nil
}

func decodeTenant(n *yamlite.Node) (Tenant, error) {
	if err := knownKeys(n, "id", "policy", "words", "weight", "burst"); err != nil {
		return Tenant{}, err
	}
	id, err := intKey(n, "id", true)
	if err != nil {
		return Tenant{}, err
	}
	words, err := intKey(n, "words", true)
	if err != nil {
		return Tenant{}, err
	}
	t := Tenant{ID: guard.TenantID(id), Words: int(words), Policy: Policy(n.Get("policy").Str())}
	if w := n.Get("weight"); w != nil {
		if t.Weight, err = w.Float(); err != nil {
			return Tenant{}, err
		}
	}
	if b := n.Get("burst"); b != nil {
		burst, err := b.Int()
		if err != nil {
			return Tenant{}, err
		}
		t.Burst = int(burst)
	}
	return t, nil
}

func decodeService(n *yamlite.Node) (Service, error) {
	if err := knownKeys(n, "name", "words", "seed"); err != nil {
		return Service{}, err
	}
	words, err := intKey(n, "words", true)
	if err != nil {
		return Service{}, err
	}
	s := Service{Name: n.Get("name").Str(), Words: int(words)}
	seed, err := listOf(n, "seed")
	if err != nil {
		return Service{}, fmt.Errorf("service %s: %w", s.Name, err)
	}
	for _, w := range seed {
		v, err := w.Int()
		if err != nil {
			return Service{}, fmt.Errorf("service %s: %w", s.Name, err)
		}
		s.Seed = append(s.Seed, uint32(v))
	}
	return s, nil
}

func decodeRoute(n *yamlite.Node) (Route, error) {
	if err := knownKeys(n, "dst", "prio", "port", "drop"); err != nil {
		return Route{}, err
	}
	dst, err := ParseIP(n.Get("dst").Str())
	if err != nil {
		return Route{}, err
	}
	prio, err := intKey(n, "prio", true)
	if err != nil {
		return Route{}, err
	}
	r := Route{DstIP: dst, Priority: int(prio)}
	if d := n.Get("drop"); d != nil {
		if r.Drop, err = d.Bool(); err != nil {
			return Route{}, err
		}
	}
	if p := n.Get("port"); p != nil {
		if r.Drop {
			return Route{}, fmt.Errorf("route %s: both port and drop", n.Get("dst").Str())
		}
		port, err := p.Int()
		if err != nil {
			return Route{}, err
		}
		r.OutPort = int(port)
	} else if !r.Drop {
		return Route{}, fmt.Errorf("route %s: needs port or drop", n.Get("dst").Str())
	}
	return r, nil
}

func decodePrefix(n *yamlite.Node) (Prefix, error) {
	if err := knownKeys(n, "prefix", "port"); err != nil {
		return Prefix{}, err
	}
	addr, plen, err := ParsePrefix(n.Get("prefix").Str())
	if err != nil {
		return Prefix{}, err
	}
	port, err := intKey(n, "port", true)
	if err != nil {
		return Prefix{}, err
	}
	return Prefix{Addr: addr, Len: plen, OutPort: int(port)}, nil
}

// knownKeys rejects map keys outside the allowed set.
func knownKeys(n *yamlite.Node, allowed ...string) error {
	if n == nil {
		return fmt.Errorf("fabric: expected a map")
	}
outer:
	for _, k := range n.Keys() {
		for _, a := range allowed {
			if k == a {
				continue outer
			}
		}
		return fmt.Errorf("fabric: unknown key %q (allowed: %s)", k, strings.Join(allowed, ", "))
	}
	return nil
}

func intKey(n *yamlite.Node, key string, required bool) (int64, error) {
	v := n.Get(key)
	if v == nil {
		if required {
			return 0, fmt.Errorf("fabric: missing key %q", key)
		}
		return 0, nil
	}
	return v.Int()
}

// ParseIP parses a dotted quad into the uint32 the tables use.
func ParseIP(s string) (uint32, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("fabric: %q is not a dotted quad", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("fabric: %q is not a dotted quad", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (addr uint32, plen int, err error) {
	base, lenStr, ok := strings.Cut(strings.TrimSpace(s), "/")
	if !ok {
		return 0, 0, fmt.Errorf("fabric: %q is not an a.b.c.d/len prefix", s)
	}
	if addr, err = ParseIP(base); err != nil {
		return 0, 0, err
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 || n > 32 {
		return 0, 0, fmt.Errorf("fabric: bad prefix length in %q", s)
	}
	return addr, n, nil
}

// ParseDuration parses "250ns", "10us", "50ms", "1.5s" into simulated
// time (longest-suffix match, so "ms" is not read as "s").
func ParseDuration(s string) (netsim.Time, error) {
	s = strings.TrimSpace(s)
	for _, u := range []struct {
		suffix string
		unit   netsim.Time
	}{
		{"ns", netsim.Nanosecond},
		{"us", netsim.Microsecond},
		{"ms", netsim.Millisecond},
		{"s", netsim.Second},
	} {
		if !strings.HasSuffix(s, u.suffix) {
			continue
		}
		num := strings.TrimSuffix(s, u.suffix)
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return 0, fmt.Errorf("fabric: bad duration %q", s)
		}
		return netsim.Time(v * float64(u.unit)), nil
	}
	return 0, fmt.Errorf("fabric: duration %q needs a ns/us/ms/s suffix", s)
}
