package fabric_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/netsim"
)

const specSrc = `
devices:
  - device: leaf0
    tenants:
      - id: 1
        policy: control
        words: 64
        weight: 10
        burst: 16
    services:
      - name: rcp
        words: 8
        seed: [1250000, 0]
    routes:
      - dst: 10.0.0.1
        prio: 100
        port: 1
      - dst: 10.0.9.9
        prio: 50
        drop: true
    prefixes:
      - prefix: 10.0.0.0/24
        port: 3
  - device: spine0
    routes:
      - dst: 10.0.0.1
        prio: 10
        port: 0
`

func TestParseSpec(t *testing.T) {
	spec, err := fabric.ParseSpec(specSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Devices) != 2 {
		t.Fatalf("devices = %d", len(spec.Devices))
	}
	leaf := spec.Devices[0]
	if leaf.Device != "leaf0" || len(leaf.Tenants) != 1 || len(leaf.Services) != 1 ||
		len(leaf.Routes) != 2 || len(leaf.Prefixes) != 1 {
		t.Fatalf("leaf = %+v", leaf)
	}
	tn := leaf.Tenants[0]
	if tn.ID != 1 || tn.Policy != fabric.PolicyControl || tn.Words != 64 || tn.Weight != 10 || tn.Burst != 16 {
		t.Fatalf("tenant = %+v", tn)
	}
	svc := leaf.Services[0]
	if svc.Name != "rcp" || svc.Words != 8 || len(svc.Seed) != 2 || svc.Seed[0] != 1250000 {
		t.Fatalf("service = %+v", svc)
	}
	if leaf.Routes[0].DstIP != core.IPv4Addr(10, 0, 0, 1) || leaf.Routes[0].OutPort != 1 {
		t.Fatalf("route 0 = %+v", leaf.Routes[0])
	}
	if !leaf.Routes[1].Drop {
		t.Fatalf("route 1 = %+v", leaf.Routes[1])
	}
	p := leaf.Prefixes[0]
	if p.Addr != core.IPv4Addr(10, 0, 0, 0) || p.Len != 24 || p.OutPort != 3 {
		t.Fatalf("prefix = %+v", p)
	}
	// The parsed spec drives a real fabric end to end.
	h := newHarness(1)
	mustConverge(t, h, spec)
}

func TestParseSpecErrors(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"devices:\n  - device: x\n    bogus: 1", "unknown key"},
		{"devices:\n  - device: x\n    routes:\n      - dst: 10.0.0.1\n        prio: 1", "needs port or drop"},
		{"devices:\n  - device: x\n    routes:\n      - dst: 300.0.0.1\n        prio: 1\n        port: 0", "dotted quad"},
		{"devices:\n  - device: x\n    prefixes:\n      - prefix: 10.0.0.0/40\n        port: 0", "prefix length"},
		{"devices:\n  - device: x\n    tenants:\n      - id: 1", "missing key"},
		// A list-valued key written as a map must fail loudly, not
		// decode as zero items.
		{"devices:\n  leaf0:\n    routes: []", "devices must be a list"},
		{"devices:\n  - device: x\n    routes:\n      r0:\n        dst: 10.0.0.1", "routes must be a list"},
	} {
		if _, err := fabric.ParseSpec(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%q) err = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want netsim.Time
	}{
		{"250ns", 250},
		{"10us", 10 * netsim.Microsecond},
		{"50ms", 50 * netsim.Millisecond},
		{"1.5s", netsim.Time(1.5 * float64(netsim.Second))},
	} {
		got, err := fabric.ParseDuration(tc.src)
		if err != nil || got != tc.want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", tc.src, got, err, tc.want)
		}
	}
	if _, err := fabric.ParseDuration("7"); err == nil {
		t.Error("bare number parsed as duration")
	}
}
