package fabric

import "repro/internal/netsim"

// Detour is one reflex-installed rewrite currently in force on a
// device: a controller-band route whose live action the dataplane's
// reflex arm CAS-steered from its primary next-hop onto a
// pre-authorized backup.  Priority is band-relative, like Route.
type Detour struct {
	EntryID     uint32
	Version     uint32 // live entry version after the reflex write
	DstIP       uint32
	Priority    int
	PrimaryPort int
	BackupPort  int
	Since       netsim.Time // when the reflex fired
}

// DetourSource reports the reflex rewrites currently in force on one
// device (reflex.Arm implements it).  The controller consults it during
// Diff so a reflex detour is recognized as a Detour op instead of
// ordinary drift: the dataplane got there first, and the controller
// must reconcile — ratify or restore — rather than blindly fight it.
type DetourSource interface {
	ActiveDetours() []Detour
}

// RegisterDetours attaches a device's reflex arm to the controller's
// diff.  Re-registering a name replaces the source; nil detaches it.
func (c *Controller) RegisterDetours(name string, src DetourSource) {
	if c.detours == nil {
		c.detours = make(map[string]DetourSource)
	}
	if src == nil {
		delete(c.detours, name)
		return
	}
	c.detours[name] = src
}

// detoursFor returns the device's active detours (nil when no source is
// registered).  Order is the source's own (authorization order), which
// is deterministic.
func (c *Controller) detoursFor(name string) []Detour {
	src, ok := c.detours[name]
	if !ok {
		return nil
	}
	return src.ActiveDetours()
}

// Ratify folds every active detour into a copy of the spec: a spec
// route whose (DstIP, Priority, OutPort) matches a detour's primary is
// rewritten to the backup port, making the dataplane's emergency
// decision the declared steady state.  It returns the new spec and how
// many routes were rewritten; converging the ratified spec then reads
// the detoured fabric back as exactly at spec.
func (c *Controller) Ratify(spec Spec) (Spec, int) {
	out := Spec{Devices: make([]DeviceSpec, len(spec.Devices))}
	ratified := 0
	for i, d := range spec.Devices {
		nd := d
		nd.Routes = append([]Route(nil), d.Routes...)
		for _, det := range c.detoursFor(d.Device) {
			for ri, r := range nd.Routes {
				if r.DstIP == det.DstIP && r.Priority == det.Priority &&
					!r.Drop && r.OutPort == det.PrimaryPort {
					nd.Routes[ri].OutPort = det.BackupPort
					ratified++
				}
			}
		}
		out.Devices[i] = nd
	}
	return out, ratified
}
