// Package fabric is the control plane the paper's "task management"
// story calls for at scale: a controller that drives many switches from
// one declarative spec instead of test code poking TCAM entries, tenant
// grants and SRAM partitions by hand.
//
// The lifecycle is diff → ChangeSet → apply → verify:
//
//   - A Spec declares, per device, the tenants (guard grants), services
//     (named SRAM allocations with optional seed words), controller
//     routes (exact-destination TCAM rules inside the controller's
//     priority band) and L3 prefixes that should exist.
//   - Diff reads each device's live state back through the same
//     machinery a collect TPP resolves through (Switch.ReadWord for the
//     epoch word, tcam.Entries, l3.Routes, the guard table and the SRAM
//     allocator) — never from a cached copy — and emits an ordered
//     ChangeSet of per-device mutations.  An empty ChangeSet is the
//     converged fixpoint.
//   - Apply executes each device's ops all-or-nothing: the device state
//     is snapshotted first, writes are epoch-stamped (a device whose
//     [Switch:Epoch] moved since the diff is not touched — the race
//     surfaces as a typed ErrEpochRaced instead of writes landing on a
//     wiped switch), any failed write rolls the device back to the
//     snapshot, and every op's effect is re-read and verified
//     field-by-field before the device counts as applied.
//   - Converge loops diff/apply with a bounded attempt budget and
//     exponential backoff (the endhost.Prober deadline discipline), so
//     an apply that races a faults.SwitchReboot rolls forward: the next
//     round re-diffs against the post-boot state and re-applies what
//     the wipe lost.  An exhausted budget degrades gracefully — the
//     unconverged devices are reported as typed per-device errors,
//     never silently dropped.
//
// Ownership is carved so the controller composes with everything else
// that writes switch state: controller routes live in their own TCAM
// priority band (fault-injected blackholes sit above it, legacy
// test-installed routes below), services are allocator tasks under the
// "fabric/" name prefix, and the tenant table and L3 table are claimed
// only by specs that list at least one tenant or prefix for the device.
//
// The fabric/scenario subpackage layers a YAML scenario runner
// (provision → converge → assert → churn) on top, and cmd/fabricctl is
// the operator CLI: dry-run by default, -execute to apply.
package fabric
