package fabric

import (
	"fmt"
	"sort"

	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/tcam"
)

// The controller-owned TCAM priority band.  Spec route priorities are
// band-relative: a Route with Priority p is installed at BandBase+p, so
// fault-injected blackholes (priority 1<<20) always outrank controller
// routes and legacy test-installed routes (double-digit priorities)
// always rank below.  Read-back filters on the band, which is what lets
// the controller own its routes without any local bookkeeping.
const (
	BandBase = 1 << 16
	BandSize = 1 << 16
)

// taskPrefix marks allocator tasks the controller owns.  Services are
// allocated under it so fabric never frees a region some other
// control-plane agent carved.
const taskPrefix = "fabric/"

// Policy names a tenant ACL preset.
type Policy string

// The ACL presets a spec can name.  PolicyCustom marks a tenant whose
// ACL came from read-back and matches no preset; specs cannot request
// it directly without an explicit ACL.
const (
	PolicyDefault Policy = "default"
	PolicyControl Policy = "control"
	PolicyCustom  Policy = "custom"
)

// ACL resolves the preset.
func (p Policy) resolve() (guard.ACL, error) {
	switch p {
	case PolicyDefault, "":
		return guard.DefaultACL(), nil
	case PolicyControl:
		return guard.ControlACL(), nil
	}
	return guard.ACL{}, fmt.Errorf("fabric: unknown tenant policy %q", p)
}

// policyOf names the preset an ACL corresponds to, for serialization of
// state that came from read-back.
func policyOf(a guard.ACL) Policy {
	switch a {
	case guard.DefaultACL():
		return PolicyDefault
	case guard.ControlACL():
		return PolicyControl
	}
	return PolicyCustom
}

// Tenant declares one guard grant: the tenant's ACL policy, its SRAM
// partition size and its admission share.
type Tenant struct {
	ID     guard.TenantID
	Policy Policy
	// ACL overrides Policy with an explicit table; nil resolves the
	// named preset.  Rollback uses it to restore grants whose ACL
	// matches no preset.
	ACL    *guard.ACL
	Words  int
	Weight float64
	Burst  int
}

func (t Tenant) acl() (guard.ACL, error) {
	if t.ACL != nil {
		return *t.ACL, nil
	}
	return t.Policy.resolve()
}

// Service declares one named SRAM allocation (an allocator task under
// the controller's name prefix) with optional seed words written into
// the fresh region.  Seed words are verified at apply time only: once a
// service is live, workloads own the region's contents.
type Service struct {
	Name  string
	Words int
	Seed  []uint32
}

// Route declares one exact-destination TCAM rule inside the
// controller's priority band.  Priority is band-relative (0 ≤ p <
// BandSize); higher wins, as in the TCAM itself.
type Route struct {
	DstIP    uint32
	Priority int
	OutPort  int
	Drop     bool
}

// Prefix declares one L3 LPM entry.
type Prefix struct {
	Addr    uint32
	Len     int
	OutPort int
}

// DeviceSpec is the desired state of one registered device.  Empty
// Tenants (or Prefixes) leaves the device's tenant table (or L3 table)
// unmanaged: those tables have no priority band to carve ownership
// with, so a spec claims them only by listing at least one entry.
type DeviceSpec struct {
	Device   string
	Tenants  []Tenant
	Services []Service
	Routes   []Route
	Prefixes []Prefix
}

// Spec is the desired state of the fabric: one DeviceSpec per managed
// device.  Devices the controller knows but the spec omits are left
// untouched.
type Spec struct {
	Devices []DeviceSpec
}

// Normalize validates the spec and returns a canonical deep copy:
// devices sorted by name, tenants by id, services by name, routes by
// (destination, priority), prefixes by (length, address), and zero
// tenant weight/burst resolved to the guard defaults so a diff against
// read-back state (which reports resolved values) is exact.  Diff and
// Verify normalize internally; callers only need Normalize to
// canonicalize a spec they serialize themselves.
func (s Spec) Normalize() (Spec, error) {
	out := Spec{Devices: make([]DeviceSpec, len(s.Devices))}
	seen := make(map[string]bool, len(s.Devices))
	for i, d := range s.Devices {
		if d.Device == "" {
			return Spec{}, fmt.Errorf("fabric: device %d has no name", i)
		}
		if seen[d.Device] {
			return Spec{}, fmt.Errorf("fabric: duplicate device %q", d.Device)
		}
		seen[d.Device] = true
		nd, err := normalizeDevice(d)
		if err != nil {
			return Spec{}, err
		}
		out.Devices[i] = nd
	}
	sort.Slice(out.Devices, func(i, j int) bool {
		return out.Devices[i].Device < out.Devices[j].Device
	})
	return out, nil
}

func normalizeDevice(d DeviceSpec) (DeviceSpec, error) {
	nd := DeviceSpec{
		Device:   d.Device,
		Tenants:  append([]Tenant(nil), d.Tenants...),
		Services: make([]Service, len(d.Services)),
		Routes:   append([]Route(nil), d.Routes...),
		Prefixes: append([]Prefix(nil), d.Prefixes...),
	}

	tenantIDs := make(map[guard.TenantID]bool, len(nd.Tenants))
	for i := range nd.Tenants {
		t := &nd.Tenants[i]
		if t.ID == guard.Operator {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: the operator tenant is built in, not declared", d.Device)
		}
		if tenantIDs[t.ID] {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: duplicate tenant %d", d.Device, t.ID)
		}
		tenantIDs[t.ID] = true
		if _, err := t.acl(); err != nil {
			return DeviceSpec{}, fmt.Errorf("%v (device %s, tenant %d)", err, d.Device, t.ID)
		}
		if t.Words <= 0 {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: tenant %d wants %d words", d.Device, t.ID, t.Words)
		}
		// Resolve the guard's registration defaults so spec and
		// read-back compare field-for-field.
		if t.Weight <= 0 {
			t.Weight = 1
		}
		if t.Burst <= 0 {
			t.Burst = guard.DefaultBurst
		}
	}
	sort.Slice(nd.Tenants, func(i, j int) bool { return nd.Tenants[i].ID < nd.Tenants[j].ID })

	svcNames := make(map[string]bool, len(d.Services))
	for i, svc := range d.Services {
		if svc.Name == "" {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: service %d has no name", d.Device, i)
		}
		if svcNames[svc.Name] {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: duplicate service %q", d.Device, svc.Name)
		}
		svcNames[svc.Name] = true
		if svc.Words <= 0 || svc.Words > mem.SRAMWords {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: service %q wants %d words", d.Device, svc.Name, svc.Words)
		}
		if len(svc.Seed) > svc.Words {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: service %q seeds %d words into %d", d.Device, svc.Name, len(svc.Seed), svc.Words)
		}
		nd.Services[i] = Service{Name: svc.Name, Words: svc.Words,
			Seed: append([]uint32(nil), svc.Seed...)}
	}
	sort.Slice(nd.Services, func(i, j int) bool { return nd.Services[i].Name < nd.Services[j].Name })

	routeKeys := make(map[routeKey]bool, len(nd.Routes))
	for _, r := range nd.Routes {
		if r.Priority < 0 || r.Priority >= BandSize {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: route %s priority %d outside the band [0,%d)",
				d.Device, ipString(r.DstIP), r.Priority, BandSize)
		}
		k := routeKey{r.DstIP, r.Priority}
		if routeKeys[k] {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: duplicate route %s prio %d", d.Device, ipString(r.DstIP), r.Priority)
		}
		routeKeys[k] = true
	}
	sort.Slice(nd.Routes, func(i, j int) bool {
		if nd.Routes[i].DstIP != nd.Routes[j].DstIP {
			return nd.Routes[i].DstIP < nd.Routes[j].DstIP
		}
		return nd.Routes[i].Priority < nd.Routes[j].Priority
	})

	pfxKeys := make(map[Prefix]bool, len(nd.Prefixes))
	for i := range nd.Prefixes {
		p := &nd.Prefixes[i]
		if p.Len < 0 || p.Len > 32 {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: prefix length %d out of range", d.Device, p.Len)
		}
		p.Addr = maskPrefix(p.Addr, p.Len)
		k := Prefix{Addr: p.Addr, Len: p.Len}
		if pfxKeys[k] {
			return DeviceSpec{}, fmt.Errorf("fabric: %s: duplicate prefix %s/%d", d.Device, ipString(p.Addr), p.Len)
		}
		pfxKeys[k] = true
	}
	sort.Slice(nd.Prefixes, func(i, j int) bool {
		if nd.Prefixes[i].Len != nd.Prefixes[j].Len {
			return nd.Prefixes[i].Len < nd.Prefixes[j].Len
		}
		return nd.Prefixes[i].Addr < nd.Prefixes[j].Addr
	})
	return nd, nil
}

// routeKey identifies a controller route: one exact destination at one
// band-relative priority.
type routeKey struct {
	DstIP    uint32
	Priority int
}

// maskPrefix zeroes the bits below the prefix length, canonicalizing
// what the trie would ignore anyway.
func maskPrefix(addr uint32, plen int) uint32 {
	if plen <= 0 {
		return 0
	}
	return addr &^ (^uint32(0) >> plen)
}

// ipString renders a dotted quad.
func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// action converts a spec route to the TCAM action it installs.
func (r Route) action() tcam.Action {
	if r.Drop {
		return tcam.Action{Drop: true}
	}
	return tcam.Action{OutPort: r.OutPort}
}
