package fabric

import (
	"fmt"
	"strings"

	"repro/internal/guard"
)

// OpKind orders the mutations inside one device's change: removals
// first (frees SRAM words and TCAM slots before the adds that may need
// them), then grants and allocations, then routing.  The numeric order
// IS the apply order.
type OpKind uint8

const (
	OpRevokeTenant OpKind = iota
	OpFreeService
	OpRemoveRoute
	OpRemovePrefix
	OpGrantTenant
	OpAllocService
	OpAddRoute
	OpUpdateRoute
	OpAddPrefix
	// OpDetour is informational, not a mutation: a band route differs
	// from spec because a dataplane reflex arm steered it onto its
	// pre-authorized backup next-hop.  Apply skips it (the controller
	// must not fight an emergency rewrite for a link it has not yet
	// verified healthy); Verify tolerates it.  The operator resolves it
	// by ratifying the detour into spec or converging after the reflex
	// reverts.
	OpDetour
)

var opKindNames = [...]string{
	OpRevokeTenant: "revoke-tenant",
	OpFreeService:  "free-service",
	OpRemoveRoute:  "remove-route",
	OpRemovePrefix: "remove-prefix",
	OpGrantTenant:  "grant-tenant",
	OpAllocService: "alloc-service",
	OpAddRoute:     "add-route",
	OpUpdateRoute:  "update-route",
	OpAddPrefix:    "add-prefix",
	OpDetour:       "detour",
}

// String names the op kind.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return "unknown"
}

// Op is one per-switch mutation.  Which payload field is meaningful
// depends on Kind: Tenant/ACL for tenant ops, Service for service ops,
// Route (+EntryID for update/remove) for TCAM ops, Prefix for L3 ops.
type Op struct {
	Kind    OpKind
	Tenant  Tenant
	ACL     guard.ACL
	Service Service
	Route   Route
	Prefix  Prefix
	// EntryID is the live TCAM entry an update or removal targets,
	// captured from read-back so the write hits exactly the entry the
	// diff saw (the versioned-TCAM write discipline).
	EntryID uint32
	// BackupPort is the reflex-installed next-hop of a detour op; the
	// Route field carries the spec's (primary) routing.
	BackupPort int
}

// String renders one op in the dry-run's diff notation.
func (o Op) String() string {
	switch o.Kind {
	case OpRevokeTenant:
		return fmt.Sprintf("- tenant %d", o.Tenant.ID)
	case OpFreeService:
		return fmt.Sprintf("- service %s", o.Service.Name)
	case OpRemoveRoute:
		return fmt.Sprintf("- route dst=%s prio=%d (entry %d)", ipString(o.Route.DstIP), o.Route.Priority, o.EntryID)
	case OpRemovePrefix:
		return fmt.Sprintf("- prefix %s/%d", ipString(o.Prefix.Addr), o.Prefix.Len)
	case OpGrantTenant:
		return fmt.Sprintf("+ tenant %d policy=%s words=%d weight=%g burst=%d",
			o.Tenant.ID, policyOf(o.ACL), o.Tenant.Words, o.Tenant.Weight, o.Tenant.Burst)
	case OpAllocService:
		return fmt.Sprintf("+ service %s words=%d seed=%d", o.Service.Name, o.Service.Words, len(o.Service.Seed))
	case OpAddRoute:
		return fmt.Sprintf("+ route dst=%s prio=%d -> %s", ipString(o.Route.DstIP), o.Route.Priority, o.Route.targetString())
	case OpUpdateRoute:
		return fmt.Sprintf("~ route dst=%s prio=%d -> %s (entry %d)",
			ipString(o.Route.DstIP), o.Route.Priority, o.Route.targetString(), o.EntryID)
	case OpAddPrefix:
		return fmt.Sprintf("+ prefix %s/%d -> port %d", ipString(o.Prefix.Addr), o.Prefix.Len, o.Prefix.OutPort)
	case OpDetour:
		return fmt.Sprintf("= detour dst=%s prio=%d port %d ~> %d (entry %d, reflex)",
			ipString(o.Route.DstIP), o.Route.Priority, o.Route.OutPort, o.BackupPort, o.EntryID)
	}
	return "?"
}

func (r Route) targetString() string {
	if r.Drop {
		return "drop"
	}
	return fmt.Sprintf("port %d", r.OutPort)
}

// DeviceChange is one device's ordered mutations plus the epoch the
// diff read them against.  Apply stamps every write with BaseEpoch: a
// device whose live epoch moved since the diff is not touched.
type DeviceChange struct {
	Device    string
	BaseEpoch uint32
	Ops       []Op
}

// ChangeSet is the full diff output: per-device mutations in device
// name order.  Devices already at spec carry no DeviceChange.
type ChangeSet struct {
	Devices []DeviceChange
}

// Empty reports the converged fixpoint: nothing to apply.
func (cs ChangeSet) Empty() bool {
	for _, d := range cs.Devices {
		if len(d.Ops) > 0 {
			return false
		}
	}
	return true
}

// Ops counts the ops across all devices, informational detours
// included.
func (cs ChangeSet) Ops() int {
	n := 0
	for _, d := range cs.Devices {
		n += len(d.Ops)
	}
	return n
}

// Mutations counts the ops Apply would actually write — everything
// except informational detour ops.
func (cs ChangeSet) Mutations() int {
	n := 0
	for _, d := range cs.Devices {
		for _, op := range d.Ops {
			if op.Kind != OpDetour {
				n++
			}
		}
	}
	return n
}

// Detours collects the informational detour ops across all devices, in
// device then op order.
func (cs ChangeSet) Detours() []Op {
	var out []Op
	for _, d := range cs.Devices {
		for _, op := range d.Ops {
			if op.Kind == OpDetour {
				out = append(out, op)
			}
		}
	}
	return out
}

// String renders the canonical dry-run listing.  The rendering is a
// pure function of the ChangeSet value, so byte-identical output is the
// determinism contract the regression suite pins.
func (cs ChangeSet) String() string {
	if cs.Empty() {
		return "changeset: empty (live state matches spec)\n"
	}
	var b strings.Builder
	for _, d := range cs.Devices {
		if len(d.Ops) == 0 {
			continue
		}
		fmt.Fprintf(&b, "device %s (base epoch %d)\n", d.Device, d.BaseEpoch)
		for _, op := range d.Ops {
			fmt.Fprintf(&b, "  %s\n", op)
		}
	}
	return b.String()
}
