// Package tcam implements the flexible ternary match table of the
// switch pipeline (§3.1) used by the SDN flow tables of the ndb
// experiment (§2.3).
//
// Every entry carries a unique id and a version number: "ndb works
// by ... stamping each flow entry with a unique version number", which
// TPPs read back through PacketMetadata:MatchedEntryID and
// :MatchedEntryVersion.  The table as a whole has a version that bumps
// on every mutation and is exposed as Switch:FlowTableVersion.
package tcam

import (
	"fmt"
	"sort"
)

// KeyWords is the width of the match vector.
const KeyWords = 4

// Match-vector word indexes.
const (
	KeyDstIP  = 0
	KeySrcIP  = 1
	KeyProto  = 2
	KeyInPort = 3
)

// Key is the parsed packet fields presented to the TCAM.
type Key [KeyWords]uint32

// Action is what happens to a matching packet.
type Action struct {
	// Drop discards the packet when set.
	Drop bool
	// OutPort is the egress port when Drop is false.
	OutPort int
}

// Entry is one ternary rule: the packet matches when
// key & Mask == Value & Mask for every word.  Higher Priority wins;
// ties break toward the lower ID, deterministically.
type Entry struct {
	ID       uint32
	Version  uint32
	Priority int
	Value    Key
	Mask     Key
	Action   Action
}

// Matches reports whether the entry covers key.
func (e *Entry) Matches(key Key) bool {
	for i := 0; i < KeyWords; i++ {
		if key[i]&e.Mask[i] != e.Value[i]&e.Mask[i] {
			return false
		}
	}
	return true
}

// Table is a ternary match table.
type Table struct {
	entries map[uint32]*Entry
	// ordered caches entries sorted by (priority desc, id asc); nil
	// when invalidated by a mutation.
	ordered []*Entry
	version uint32
	nextID  uint32
}

// New builds an empty TCAM.
func New() *Table {
	return &Table{entries: make(map[uint32]*Entry), nextID: 1}
}

// Version returns the table version, bumped on every mutation.
func (t *Table) Version() uint32 { return t.version }

// Size returns the number of installed entries.
func (t *Table) Size() int { return len(t.entries) }

// Insert installs a new rule and returns its assigned id.  The entry's
// version starts at 1.
func (t *Table) Insert(priority int, value, mask Key, action Action) uint32 {
	id := t.nextID
	t.nextID++
	t.version++
	t.entries[id] = &Entry{
		ID: id, Version: 1, Priority: priority,
		Value: value, Mask: mask, Action: action,
	}
	t.ordered = nil
	return id
}

// Update replaces the action of rule id, bumping both the entry version
// and the table version — the mechanism ndb uses to detect stale
// hardware state.
func (t *Table) Update(id uint32, action Action) error {
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("tcam: no entry %d", id)
	}
	e.Action = action
	e.Version++
	t.version++
	return nil
}

// ErrVersionRaced is returned by UpdateIfVersion when the entry's live
// version no longer matches the writer's expectation: another writer
// mutated the entry since this writer read it, and the write was
// refused rather than silently clobbering the newer state.
var ErrVersionRaced = fmt.Errorf("tcam: entry version raced")

// UpdateIfVersion is the compare-and-swap form of Update: the action is
// installed only if the entry's live version still equals expect — the
// version the writer captured when it read the entry.  On success both
// the entry version and the table version bump, exactly like Update;
// on a version mismatch nothing changes and the error wraps
// ErrVersionRaced so callers can distinguish a lost-update race from a
// vanished entry.
//
// Versions are uint32 counters and wrap at 2^32; correctness of the
// compare does not depend on ordering, only equality, so a wrapped
// counter still detects every race except an exact 2^32-mutation ABA —
// far beyond any plausible interleaving between one read-back and one
// write.
func (t *Table) UpdateIfVersion(id, expect uint32, action Action) error {
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("tcam: no entry %d", id)
	}
	if e.Version != expect {
		return fmt.Errorf("%w: entry %d at version %d, writer expected %d",
			ErrVersionRaced, id, e.Version, expect)
	}
	e.Action = action
	e.Version++
	t.version++
	return nil
}

// Remove deletes rule id.
func (t *Table) Remove(id uint32) error {
	if _, ok := t.entries[id]; !ok {
		return fmt.Errorf("tcam: no entry %d", id)
	}
	delete(t.entries, id)
	t.version++
	t.ordered = nil
	return nil
}

// Get returns a copy of rule id.
func (t *Table) Get(id uint32) (Entry, bool) {
	e, ok := t.entries[id]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Entries returns copies of all rules in match order.
func (t *Table) Entries() []Entry {
	t.sortEntries()
	out := make([]Entry, len(t.ordered))
	for i, e := range t.ordered {
		out[i] = *e
	}
	return out
}

// Match finds the highest-priority rule covering key.
func (t *Table) Match(key Key) (Entry, bool) {
	t.sortEntries()
	for _, e := range t.ordered {
		if e.Matches(key) {
			return *e, true
		}
	}
	return Entry{}, false
}

// MatchCount returns how many installed rules cover key — the number
// of forwarding alternatives the dataplane knows for the packet, which
// Table 2 exposes as PacketMetadata:AlternateRoutes.
func (t *Table) MatchCount(key Key) int {
	t.sortEntries()
	n := 0
	for _, e := range t.ordered {
		if e.Matches(key) {
			n++
		}
	}
	return n
}

func (t *Table) sortEntries() {
	if t.ordered != nil {
		return
	}
	t.ordered = make([]*Entry, 0, len(t.entries))
	for _, e := range t.entries { //lint:allow maporder (sorted below)
		t.ordered = append(t.ordered, e)
	}
	sort.Slice(t.ordered, func(i, j int) bool {
		if t.ordered[i].Priority != t.ordered[j].Priority {
			return t.ordered[i].Priority > t.ordered[j].Priority
		}
		return t.ordered[i].ID < t.ordered[j].ID
	})
}

// ExactMask is the mask selecting one word entirely.
const ExactMask = ^uint32(0)

// DstIPRule builds a (value, mask) pair matching an exact destination
// address — the common rule shape in the ndb experiment.
func DstIPRule(dst uint32) (Key, Key) {
	var v, m Key
	v[KeyDstIP] = dst
	m[KeyDstIP] = ExactMask
	return v, m
}
