package tcam

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestInsertMatch(t *testing.T) {
	tbl := New()
	v, m := DstIPRule(core.IPv4Addr(10, 0, 0, 2))
	id := tbl.Insert(10, v, m, Action{OutPort: 3})

	var key Key
	key[KeyDstIP] = core.IPv4Addr(10, 0, 0, 2)
	e, ok := tbl.Match(key)
	if !ok || e.ID != id || e.Action.OutPort != 3 {
		t.Fatalf("Match = %+v, %v", e, ok)
	}
	key[KeyDstIP]++
	if _, ok := tbl.Match(key); ok {
		t.Fatal("exact rule overmatched")
	}
}

func TestPriorityOrdering(t *testing.T) {
	tbl := New()
	var any Key
	lo := tbl.Insert(1, any, any, Action{OutPort: 1}) // wildcard, low prio
	v, m := DstIPRule(core.IPv4Addr(10, 0, 0, 2))
	hi := tbl.Insert(10, v, m, Action{OutPort: 2})

	var key Key
	key[KeyDstIP] = core.IPv4Addr(10, 0, 0, 2)
	if e, _ := tbl.Match(key); e.ID != hi {
		t.Fatalf("high-priority rule lost: matched %d", e.ID)
	}
	key[KeyDstIP] = core.IPv4Addr(99, 0, 0, 1)
	if e, _ := tbl.Match(key); e.ID != lo {
		t.Fatalf("wildcard fallback broken: matched %d", e.ID)
	}
}

func TestTieBreakByID(t *testing.T) {
	tbl := New()
	var any Key
	first := tbl.Insert(5, any, any, Action{OutPort: 1})
	tbl.Insert(5, any, any, Action{OutPort: 2})
	if e, _ := tbl.Match(Key{}); e.ID != first {
		t.Fatalf("tie must break toward lower id, matched %d", e.ID)
	}
}

func TestVersioning(t *testing.T) {
	tbl := New()
	if tbl.Version() != 0 {
		t.Fatal("fresh table version not 0")
	}
	var any Key
	id := tbl.Insert(1, any, any, Action{OutPort: 1})
	if tbl.Version() != 1 {
		t.Fatalf("version after insert = %d", tbl.Version())
	}
	e, _ := tbl.Get(id)
	if e.Version != 1 {
		t.Fatalf("entry version = %d", e.Version)
	}
	if err := tbl.Update(id, Action{OutPort: 5}); err != nil {
		t.Fatal(err)
	}
	e, _ = tbl.Get(id)
	if e.Version != 2 || e.Action.OutPort != 5 {
		t.Fatalf("after update: %+v", e)
	}
	if tbl.Version() != 2 {
		t.Fatalf("table version after update = %d", tbl.Version())
	}
	if err := tbl.Remove(id); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() != 3 || tbl.Size() != 0 {
		t.Fatalf("after remove: v=%d size=%d", tbl.Version(), tbl.Size())
	}
}

func TestUpdateRemoveUnknown(t *testing.T) {
	tbl := New()
	if err := tbl.Update(99, Action{}); err == nil {
		t.Fatal("Update of unknown id succeeded")
	}
	if err := tbl.Remove(99); err == nil {
		t.Fatal("Remove of unknown id succeeded")
	}
	if _, ok := tbl.Get(99); ok {
		t.Fatal("Get of unknown id succeeded")
	}
}

func TestMaskedMatch(t *testing.T) {
	tbl := New()
	// Match any destination in 10.0.0.0/8 arriving on port 2.
	var v, m Key
	v[KeyDstIP] = core.IPv4Addr(10, 0, 0, 0)
	m[KeyDstIP] = 0xFF000000
	v[KeyInPort] = 2
	m[KeyInPort] = ExactMask
	tbl.Insert(1, v, m, Action{OutPort: 7})

	key := Key{KeyDstIP: core.IPv4Addr(10, 200, 3, 4), KeyInPort: 2}
	if _, ok := tbl.Match(key); !ok {
		t.Fatal("masked match missed")
	}
	key[KeyInPort] = 3
	if _, ok := tbl.Match(key); ok {
		t.Fatal("in-port mismatch matched")
	}
}

func TestDropAction(t *testing.T) {
	tbl := New()
	v, m := DstIPRule(core.IPv4Addr(10, 0, 0, 66))
	tbl.Insert(100, v, m, Action{Drop: true})
	e, ok := tbl.Match(Key{KeyDstIP: core.IPv4Addr(10, 0, 0, 66)})
	if !ok || !e.Action.Drop {
		t.Fatal("drop rule not matched")
	}
}

func TestEntriesOrdered(t *testing.T) {
	tbl := New()
	var any Key
	tbl.Insert(1, any, any, Action{})
	tbl.Insert(9, any, any, Action{})
	tbl.Insert(5, any, any, Action{})
	es := tbl.Entries()
	if len(es) != 3 || es[0].Priority != 9 || es[1].Priority != 5 || es[2].Priority != 1 {
		t.Fatalf("Entries order: %+v", es)
	}
}

// naiveMatch is the reference implementation for the property test.
func naiveMatch(entries []Entry, key Key) (Entry, bool) {
	best := -1
	var out Entry
	for _, e := range entries {
		if !e.Matches(key) {
			continue
		}
		if e.Priority > best || (e.Priority == best && e.ID < out.ID) {
			best = e.Priority
			out = e
		}
	}
	return out, best >= 0
}

// Property: Match agrees with the naive full-scan reference across
// random rule sets, including after updates and removals.
func TestMatchAgainstNaiveReference(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		tbl := New()
		for i := 0; i < 60; i++ {
			var v, m Key
			for w := 0; w < KeyWords; w++ {
				// Small value domain so rules overlap often.
				v[w] = uint32(r.Intn(4))
				m[w] = [3]uint32{0, 0x3, ExactMask}[r.Intn(3)]
			}
			tbl.Insert(r.Intn(8), v, m, Action{OutPort: r.Intn(16)})
		}
		// Mutate some entries.
		for _, e := range tbl.Entries() {
			switch r.Intn(4) {
			case 0:
				if err := tbl.Remove(e.ID); err != nil {
					t.Fatal(err)
				}
			case 1:
				if err := tbl.Update(e.ID, Action{OutPort: r.Intn(16)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		ref := tbl.Entries()
		for i := 0; i < 500; i++ {
			var key Key
			for w := 0; w < KeyWords; w++ {
				key[w] = uint32(r.Intn(4))
			}
			got, gok := tbl.Match(key)
			want, wok := naiveMatch(ref, key)
			if gok != wok || (gok && got.ID != want.ID) {
				t.Fatalf("Match(%v) = %+v,%v; naive %+v,%v", key, got, gok, want, wok)
			}
		}
	}
}

func TestMatchCount(t *testing.T) {
	tbl := New()
	var any Key
	tbl.Insert(1, any, any, Action{OutPort: 1}) // wildcard covers all
	v, m := DstIPRule(core.IPv4Addr(10, 0, 0, 2))
	tbl.Insert(10, v, m, Action{OutPort: 2})

	key := Key{KeyDstIP: core.IPv4Addr(10, 0, 0, 2)}
	if got := tbl.MatchCount(key); got != 2 {
		t.Fatalf("MatchCount = %d, want 2", got)
	}
	key[KeyDstIP]++
	if got := tbl.MatchCount(key); got != 1 {
		t.Fatalf("MatchCount = %d, want 1 (wildcard only)", got)
	}
	if got := New().MatchCount(key); got != 0 {
		t.Fatalf("empty table MatchCount = %d", got)
	}
}
