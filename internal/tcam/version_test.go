package tcam

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// Every mutation path must bump the table version, and the mutating
// paths that touch an entry must bump the entry version too — the
// invariant the versioned-write discipline (ndb's stale-state
// detection, the reflex CAS) is built on.
func TestVersionBumpsOnEveryMutationPath(t *testing.T) {
	tbl := New()
	if tbl.Version() != 0 {
		t.Fatalf("fresh table version = %d, want 0", tbl.Version())
	}

	v, m := DstIPRule(core.IPv4Addr(10, 0, 0, 1))
	id := tbl.Insert(10, v, m, Action{OutPort: 1})
	if tbl.Version() != 1 {
		t.Fatalf("after Insert: table version = %d, want 1", tbl.Version())
	}
	e, _ := tbl.Get(id)
	if e.Version != 1 {
		t.Fatalf("fresh entry version = %d, want 1", e.Version)
	}

	if err := tbl.Update(id, Action{OutPort: 2}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if tbl.Version() != 2 {
		t.Fatalf("after Update: table version = %d, want 2", tbl.Version())
	}
	if e, _ = tbl.Get(id); e.Version != 2 {
		t.Fatalf("after Update: entry version = %d, want 2", e.Version)
	}

	if err := tbl.UpdateIfVersion(id, 2, Action{OutPort: 3}); err != nil {
		t.Fatalf("UpdateIfVersion: %v", err)
	}
	if tbl.Version() != 3 {
		t.Fatalf("after CAS: table version = %d, want 3", tbl.Version())
	}
	if e, _ = tbl.Get(id); e.Version != 3 {
		t.Fatalf("after CAS: entry version = %d, want 3", e.Version)
	}

	if err := tbl.Remove(id); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if tbl.Version() != 4 {
		t.Fatalf("after Remove: table version = %d, want 4", tbl.Version())
	}

	// A refused CAS is not a mutation: neither version moves.
	id2 := tbl.Insert(10, v, m, Action{OutPort: 1})
	before := tbl.Version()
	if err := tbl.UpdateIfVersion(id2, 99, Action{OutPort: 7}); err == nil {
		t.Fatal("stale CAS succeeded")
	}
	if tbl.Version() != before {
		t.Fatalf("refused CAS moved table version %d -> %d", before, tbl.Version())
	}
	if e, _ = tbl.Get(id2); e.Version != 1 {
		t.Fatalf("refused CAS moved entry version to %d", e.Version)
	}
	if e.Action.OutPort != 1 {
		t.Fatalf("refused CAS changed the action to port %d", e.Action.OutPort)
	}
}

// Two writers race on one entry: both read version 1, writer A commits
// first, writer B's CAS must be refused — the lost update is detected,
// not silently absorbed.  The ordering is deterministic (plain
// sequential calls), exercising exactly the interleaving the dataplane
// reflex and the fabric controller can produce between one read-back
// and one write.
func TestCASLostUpdateRace(t *testing.T) {
	tbl := New()
	v, m := DstIPRule(core.IPv4Addr(10, 0, 0, 2))
	id := tbl.Insert(10, v, m, Action{OutPort: 1})

	a, _ := tbl.Get(id) // writer A read-back
	b, _ := tbl.Get(id) // writer B read-back (same version)

	if err := tbl.UpdateIfVersion(id, a.Version, Action{OutPort: 2}); err != nil {
		t.Fatalf("writer A CAS: %v", err)
	}
	err := tbl.UpdateIfVersion(id, b.Version, Action{OutPort: 3})
	if err == nil {
		t.Fatal("writer B's stale CAS succeeded: lost update")
	}
	if !errors.Is(err, ErrVersionRaced) {
		t.Fatalf("writer B error = %v, want ErrVersionRaced", err)
	}
	e, _ := tbl.Get(id)
	if e.Action.OutPort != 2 {
		t.Fatalf("entry action port = %d, want writer A's 2", e.Action.OutPort)
	}
	if e.Version != a.Version+1 {
		t.Fatalf("entry version = %d, want %d", e.Version, a.Version+1)
	}

	// Writer B re-reads and retries: the CAS discipline converges.
	b, _ = tbl.Get(id)
	if err := tbl.UpdateIfVersion(id, b.Version, Action{OutPort: 3}); err != nil {
		t.Fatalf("writer B retry after re-read: %v", err)
	}
	if e, _ = tbl.Get(id); e.Action.OutPort != 3 {
		t.Fatalf("entry action port = %d after retry, want 3", e.Action.OutPort)
	}
}

// Version counters are uint32 and wrap: the CAS must keep working
// across the wrap (equality compare, not ordering), and a stale
// expectation from before the wrap must still be refused.
func TestVersionWraparound(t *testing.T) {
	tbl := New()
	v, m := DstIPRule(core.IPv4Addr(10, 0, 0, 3))
	id := tbl.Insert(10, v, m, Action{OutPort: 1})

	// Drive the entry to the wrap point directly (4B Updates would take
	// minutes); in-package access stands in for a long-lived entry.
	tbl.entries[id].Version = ^uint32(0)

	if err := tbl.UpdateIfVersion(id, ^uint32(0), Action{OutPort: 2}); err != nil {
		t.Fatalf("CAS at max version: %v", err)
	}
	e, _ := tbl.Get(id)
	if e.Version != 0 {
		t.Fatalf("entry version after wrap = %d, want 0", e.Version)
	}
	if e.Action.OutPort != 2 {
		t.Fatalf("entry action port = %d, want 2", e.Action.OutPort)
	}

	// A writer still holding the pre-wrap version must be refused.
	if err := tbl.UpdateIfVersion(id, ^uint32(0), Action{OutPort: 9}); !errors.Is(err, ErrVersionRaced) {
		t.Fatalf("stale pre-wrap CAS error = %v, want ErrVersionRaced", err)
	}

	// And the post-wrap version CASes normally.
	if err := tbl.UpdateIfVersion(id, 0, Action{OutPort: 3}); err != nil {
		t.Fatalf("CAS at wrapped version 0: %v", err)
	}
	if e, _ = tbl.Get(id); e.Version != 1 || e.Action.OutPort != 3 {
		t.Fatalf("post-wrap entry = v%d port %d, want v1 port 3", e.Version, e.Action.OutPort)
	}

	// The table version wraps independently and keeps counting.
	tbl.version = ^uint32(0)
	_ = tbl.Update(id, Action{OutPort: 4})
	if tbl.Version() != 0 {
		t.Fatalf("table version after wrap = %d, want 0", tbl.Version())
	}
}

// CAS on a vanished entry is a distinct failure from a version race.
func TestCASMissingEntry(t *testing.T) {
	tbl := New()
	err := tbl.UpdateIfVersion(42, 1, Action{OutPort: 1})
	if err == nil {
		t.Fatal("CAS on missing entry succeeded")
	}
	if errors.Is(err, ErrVersionRaced) {
		t.Fatal("missing entry misreported as a version race")
	}
}
