// Package l2 implements the Ethernet MAC learning table of the switch
// pipeline ("a combination of layer 2 MAC table, layer 3 longest-prefix
// match table and a flexible TCAM table", §3.1).
//
// The table learns source addresses as packets arrive and ages entries
// out after a configurable lifetime, like a commodity switching ASIC.
package l2

import (
	"repro/internal/core"
)

// DefaultAge is the entry lifetime when none is configured (the common
// commodity-switch default of 300 seconds).
const DefaultAge = int64(300e9)

type entry struct {
	port      int
	learnedAt int64
}

// Table is a MAC learning table.  Times are int64 nanoseconds so the
// package stays independent of the simulator.
type Table struct {
	age     int64
	entries map[core.MAC]entry
}

// New builds a table with entry lifetime age (nanoseconds); age <= 0
// selects DefaultAge.
func New(age int64) *Table {
	if age <= 0 {
		age = DefaultAge
	}
	return &Table{age: age, entries: make(map[core.MAC]entry)}
}

// Learn records that mac was seen on port at time now.  Relearning
// refreshes the timestamp and moves the entry if the station moved.
// Broadcast source addresses are never learned.
func (t *Table) Learn(mac core.MAC, port int, now int64) {
	if mac.IsBroadcast() {
		return
	}
	t.entries[mac] = entry{port: port, learnedAt: now}
}

// Lookup returns the port mac was last seen on, if the entry is still
// fresh at time now.  Stale entries are removed on access.
func (t *Table) Lookup(mac core.MAC, now int64) (port int, ok bool) {
	e, ok := t.entries[mac]
	if !ok {
		return 0, false
	}
	if now-e.learnedAt > t.age {
		delete(t.entries, mac)
		return 0, false
	}
	return e.port, true
}

// Size returns the number of entries currently held (including entries
// that would age out on their next lookup).
func (t *Table) Size() int { return len(t.entries) }

// Flush removes every entry, as a control-plane clear would.
func (t *Table) Flush() { clear(t.entries) }

// Expire removes all entries stale at time now; switches run this
// periodically from their housekeeping timer.
func (t *Table) Expire(now int64) {
	for mac, e := range t.entries { //lint:allow maporder (pure deletion, order-free)
		if now-e.learnedAt > t.age {
			delete(t.entries, mac)
		}
	}
}
