package l2

import (
	"testing"

	"repro/internal/core"
)

func mac(n uint64) core.MAC { return core.MACFromUint64(n) }

func TestLearnAndLookup(t *testing.T) {
	tbl := New(0)
	tbl.Learn(mac(1), 3, 100)
	port, ok := tbl.Lookup(mac(1), 200)
	if !ok || port != 3 {
		t.Fatalf("Lookup = %d, %v", port, ok)
	}
	if _, ok := tbl.Lookup(mac(2), 200); ok {
		t.Fatal("unknown MAC found")
	}
	if tbl.Size() != 1 {
		t.Fatalf("Size = %d", tbl.Size())
	}
}

func TestStationMove(t *testing.T) {
	tbl := New(0)
	tbl.Learn(mac(1), 3, 100)
	tbl.Learn(mac(1), 5, 200)
	if port, _ := tbl.Lookup(mac(1), 300); port != 5 {
		t.Fatalf("moved station on port %d", port)
	}
	if tbl.Size() != 1 {
		t.Fatal("relearning must not grow the table")
	}
}

func TestAging(t *testing.T) {
	tbl := New(1000)
	tbl.Learn(mac(1), 3, 0)
	if _, ok := tbl.Lookup(mac(1), 1000); !ok {
		t.Fatal("entry aged out too early")
	}
	if _, ok := tbl.Lookup(mac(1), 1001); ok {
		t.Fatal("stale entry returned")
	}
	if tbl.Size() != 0 {
		t.Fatal("stale entry not removed on access")
	}
}

func TestRelearnRefreshesAge(t *testing.T) {
	tbl := New(1000)
	tbl.Learn(mac(1), 3, 0)
	tbl.Learn(mac(1), 3, 900)
	if _, ok := tbl.Lookup(mac(1), 1500); !ok {
		t.Fatal("refreshed entry aged out")
	}
}

func TestBroadcastNeverLearned(t *testing.T) {
	tbl := New(0)
	tbl.Learn(core.BroadcastMAC, 1, 0)
	if tbl.Size() != 0 {
		t.Fatal("broadcast address learned")
	}
}

func TestExpire(t *testing.T) {
	tbl := New(1000)
	tbl.Learn(mac(1), 1, 0)
	tbl.Learn(mac(2), 2, 1500)
	tbl.Learn(mac(3), 3, 2000)
	tbl.Expire(2000)
	if tbl.Size() != 2 {
		t.Fatalf("Size after Expire = %d", tbl.Size())
	}
	if _, ok := tbl.Lookup(mac(1), 2000); ok {
		t.Fatal("expired entry survives")
	}
	if _, ok := tbl.Lookup(mac(2), 2000); !ok {
		t.Fatal("fresh entry expired")
	}
}

func TestFlush(t *testing.T) {
	tbl := New(0)
	for i := uint64(1); i <= 10; i++ {
		tbl.Learn(mac(i), int(i), 0)
	}
	tbl.Flush()
	if tbl.Size() != 0 {
		t.Fatal("Flush left entries")
	}
}

func TestDefaultAge(t *testing.T) {
	tbl := New(-1)
	tbl.Learn(mac(1), 1, 0)
	if _, ok := tbl.Lookup(mac(1), DefaultAge); !ok {
		t.Fatal("default age too short")
	}
	if _, ok := tbl.Lookup(mac(1), DefaultAge+1); ok {
		t.Fatal("default age not applied")
	}
}
