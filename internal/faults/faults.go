// Package faults is the deterministic fault-injection subsystem: a
// declarative, timed fault plan applied to a simulated network.  The
// paper stresses that "TPPs are therefore subject to congestion" and
// motivates ndb with failure localization; this package supplies the
// failure axis — link down/up flaps, Bernoulli and Gilbert–Elliott
// (bursty) frame loss, TCAM blackhole rules, per-switch TCPU kill
// switches, and hostile-tenant TPP floods — so every end-host
// mechanism (probe retry, RCP* degradation, blackhole localization,
// tenant isolation) can be exercised against a misbehaving network
// and replayed exactly by seed.
//
// Targets are registered by name on an Injector; a Plan is a list of
// timed Events against those names.  Every applied event is visible in
// the internal/obs span stream (StageFaultInject / StageFaultRecover),
// so experiment traces interleave faults with packet lifecycles.
//
// Composition order is guaranteed: Schedule arms events on the
// simulator in plan-list order, and the simulator breaks same-time
// ties first-in-first-out, so events sharing a tick apply in the order
// their plan lists them — and across Schedule calls, in call order.
// Two plans that target the same switch in the same tick therefore
// compose deterministically (and replay identically by seed).
package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/tcam"
)

// Kind enumerates the injectable faults.
type Kind uint8

// The fault vocabulary.  LinkUp, ClearLoss, ClearBlackhole and TCPUOn
// are the recovery counterparts; everything else injects.
const (
	// LinkDown severs every registered channel of the target link:
	// frames in flight and frames sent while down are dropped.
	LinkDown Kind = iota
	// LinkUp restores the target link.
	LinkUp
	// LinkLoss installs independent (Bernoulli) frame loss with
	// probability P on the target link.  P == 1 is a blackout.
	LinkLoss
	// LinkBurstyLoss installs the Gilbert–Elliott two-state bursty
	// loss model (PGoodBad, PBadGood, LossGood, LossBad) on the
	// target link.
	LinkBurstyLoss
	// ClearLoss removes any loss model from the target link.
	ClearLoss
	// Blackhole installs a maximum-priority TCAM drop rule for DstIP
	// on the target switch: the silent packet eater ndb hunts.
	Blackhole
	// ClearBlackhole removes the drop rule Blackhole installed for
	// DstIP on the target switch.
	ClearBlackhole
	// TCPUOff disables TPP execution on the target switch (packets
	// still forward; hop traces skip the switch).
	TCPUOff
	// TCPUOn re-enables TPP execution on the target switch.
	TCPUOn
	// SwitchReboot crash-restarts the target switch: queued and
	// in-pipeline packets drop, scratch SRAM / allocator / learned L2
	// entries / task scratch are wiped, the boot generation counter at
	// [Switch:Epoch] increments, and after BootDelay the switch
	// resumes forwarding with TCAM/L3 reloaded from config.  Recovery
	// is autonomous (no paired clear event).
	SwitchReboot
	// RogueTenant turns the target host (RegisterHost) into a hostile
	// tenant: a seeded generator floods forged write-TPPs — STOREs
	// aimed at random absolute SRAM words and other tenants' port
	// scratch registers — at PPS packets per second toward
	// DstMAC/DstIP.  The host's NIC still seals the tenant id, so the
	// forgeries land as whoever the NIC says they are; guarded
	// switches deny the writes and throttle the flood per-tenant.
	RogueTenant
	// ClearRogue stops the generator RogueTenant started on the
	// target host.
	ClearRogue
	// LinkGrayDown is the unidirectional (gray) failure: only channel
	// Dir of the registered link goes dark while the reverse direction
	// keeps delivering.  Gray failures are the nastier real-world kind
	// — a dead laser with a live receive path — and the reason
	// liveness detection must prove the *forward* direction works
	// rather than inferring health from arriving traffic.
	LinkGrayDown
	// LinkGrayUp restores channel Dir of the target link.
	LinkGrayUp
)

// DefaultBootDelay is how long a rebooted switch stays dark when the
// event does not specify a BootDelay.
const DefaultBootDelay = netsim.Millisecond

var kindNames = [...]string{
	LinkDown:       "link-down",
	LinkUp:         "link-up",
	LinkLoss:       "link-loss",
	LinkBurstyLoss: "link-bursty-loss",
	ClearLoss:      "clear-loss",
	Blackhole:      "blackhole",
	ClearBlackhole: "clear-blackhole",
	TCPUOff:        "tcpu-off",
	TCPUOn:         "tcpu-on",
	SwitchReboot:   "switch-reboot",
	RogueTenant:    "rogue-tenant",
	ClearRogue:     "clear-rogue",
	LinkGrayDown:   "link-gray-down",
	LinkGrayUp:     "link-gray-up",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// recovers reports whether the kind clears a fault rather than
// injecting one (selects the span stage).
func (k Kind) recovers() bool {
	switch k {
	case LinkUp, ClearLoss, ClearBlackhole, TCPUOn, ClearRogue, LinkGrayUp:
		return true
	}
	return false
}

// Event is one timed fault against a registered target.
type Event struct {
	// At is the absolute simulation time the event applies.
	At netsim.Time
	// Kind selects the fault.
	Kind Kind
	// Target names a link (RegisterLink) for link kinds, or a switch
	// (RegisterSwitch) for Blackhole/TCPU kinds.
	Target string

	// P is the loss probability for LinkLoss.
	P float64
	// PGoodBad, PBadGood, LossGood and LossBad parameterize
	// LinkBurstyLoss (see netsim.GilbertElliott).
	PGoodBad, PBadGood, LossGood, LossBad float64
	// DstIP is the destination the Blackhole rule swallows, and the
	// destination RogueTenant forgeries are addressed to.
	DstIP uint32
	// BootDelay is how long a SwitchReboot keeps the switch dark
	// before it resumes forwarding; zero selects DefaultBootDelay.
	BootDelay netsim.Time

	// PPS is the RogueTenant flood rate in packets per second.
	PPS float64
	// DstMAC is the destination RogueTenant forgeries are framed to.
	DstMAC core.MAC

	// Dir selects which registered channel of the link a gray failure
	// darkens: index into the RegisterLink argument order, so for
	// RegisterLink(name, aToB, bToA), Dir 0 kills the a→b direction.
	Dir int
}

// Plan is a declarative fault schedule.  The same plan with the same
// seed replays the identical fault pattern: loss-model randomness is
// seeded from Seed and the event's index, never from wall clock or the
// simulation's shared rng.
type Plan struct {
	Seed   int64
	Events []Event
}

// Flap is the common down-then-up pair: target goes down at `at` and
// recovers after `downFor`.
func Flap(target string, at, downFor netsim.Time) []Event {
	return []Event{
		{At: at, Kind: LinkDown, Target: target},
		{At: at + downFor, Kind: LinkUp, Target: target},
	}
}

// blackholePriority outranks every route a controller installs, so an
// injected blackhole always wins the TCAM match.
const blackholePriority = 1 << 20

// Applied records one event the injector has executed, for tests and
// reports.
type Applied struct {
	At    netsim.Time
	Event Event
}

// Injector binds target names to simulator objects and schedules
// plans.  One injector serves one simulation.
type Injector struct {
	sim    *netsim.Sim
	tracer *obs.Tracer

	links    map[string][]*netsim.Channel
	switches map[string]*asic.Switch
	hosts    map[string]*endhost.Host

	// ruleIDs remembers the TCAM entry a Blackhole event installed,
	// keyed by target+destination, so ClearBlackhole can remove it.
	ruleIDs map[string]uint32
	// rogues holds the running hostile generator per host target, so
	// ClearRogue can stop it.
	rogues map[string]*netsim.Ticker

	// Injected and Recovered count applied events by direction.
	Injected  uint64
	Recovered uint64
	// RogueSent counts forged TPPs the rogue generators handed to
	// their NICs (whether or not the NIC accepted them).
	RogueSent uint64
	// Log lists every applied event in application order.
	Log []Applied
}

// NewInjector builds an injector.  The tracer may be nil; when set,
// every applied event is recorded as a fault span.
func NewInjector(sim *netsim.Sim, tracer *obs.Tracer) *Injector {
	return &Injector{
		sim: sim, tracer: tracer,
		links:    make(map[string][]*netsim.Channel),
		switches: make(map[string]*asic.Switch),
		hosts:    make(map[string]*endhost.Host),
		ruleIDs:  make(map[string]uint32),
		rogues:   make(map[string]*netsim.Ticker),
	}
}

// RegisterLink names a link.  Pass both directions' channels so
// LinkDown severs the link, not just one direction; passing a single
// channel models a unidirectional fault.
func (in *Injector) RegisterLink(name string, chs ...*netsim.Channel) {
	if len(chs) == 0 {
		panic("faults: RegisterLink with no channels")
	}
	in.links[name] = append(in.links[name], chs...)
}

// RegisterSwitch names a switch for Blackhole and TCPU events.
func (in *Injector) RegisterSwitch(name string, sw *asic.Switch) {
	in.switches[name] = sw
}

// RegisterHost names a host for RogueTenant events.  Which tenant the
// rogue's forgeries execute as is decided by the host's NIC (the
// trusted edge), not by the fault plan.
func (in *Injector) RegisterHost(name string, h *endhost.Host) {
	in.hosts[name] = h
}

// Schedule validates the plan and arms every event on the simulator.
// Validation is up-front: an unknown target or an out-of-range
// probability fails here, not mid-run.
func (in *Injector) Schedule(p Plan) error {
	for i, ev := range p.Events {
		if err := in.validate(ev); err != nil {
			return fmt.Errorf("faults: event %d (%s @ %v): %w", i, ev.Kind, ev.At, err)
		}
	}
	for i, ev := range p.Events {
		ev := ev
		// Derive each loss model's seed from the plan seed and the
		// event's position: replayable, and independent streams per
		// event.
		seed := p.Seed*1_000_003 + int64(i)
		in.sim.At(ev.At, func() { in.apply(ev, seed) })
	}
	return nil
}

func (in *Injector) validate(ev Event) error {
	switch ev.Kind {
	case LinkDown, LinkUp, LinkLoss, LinkBurstyLoss, ClearLoss:
		if _, ok := in.links[ev.Target]; !ok {
			return fmt.Errorf("unknown link %q", ev.Target)
		}
	case LinkGrayDown, LinkGrayUp:
		chs, ok := in.links[ev.Target]
		if !ok {
			return fmt.Errorf("unknown link %q", ev.Target)
		}
		if ev.Dir < 0 || ev.Dir >= len(chs) {
			return fmt.Errorf("direction %d out of range: link %q has %d channels",
				ev.Dir, ev.Target, len(chs))
		}
	case Blackhole, ClearBlackhole, TCPUOff, TCPUOn, SwitchReboot:
		if _, ok := in.switches[ev.Target]; !ok {
			return fmt.Errorf("unknown switch %q", ev.Target)
		}
		if ev.BootDelay < 0 {
			return fmt.Errorf("negative boot delay %v", ev.BootDelay)
		}
	case RogueTenant, ClearRogue:
		if _, ok := in.hosts[ev.Target]; !ok {
			return fmt.Errorf("unknown host %q", ev.Target)
		}
		if ev.Kind == RogueTenant && ev.PPS <= 0 {
			return fmt.Errorf("rogue PPS = %v, want > 0", ev.PPS)
		}
	default:
		return fmt.Errorf("unknown fault kind %d", ev.Kind)
	}
	// A slice, not a map: which out-of-range probability gets named in
	// the error must not depend on map iteration order.
	probs := []struct {
		name string
		p    float64
	}{{"P", ev.P}}
	if ev.Kind == LinkBurstyLoss {
		probs = []struct {
			name string
			p    float64
		}{
			{"PGoodBad", ev.PGoodBad}, {"PBadGood", ev.PBadGood},
			{"LossGood", ev.LossGood}, {"LossBad", ev.LossBad},
		}
	}
	for _, pr := range probs {
		if pr.p < 0 || pr.p > 1 {
			return fmt.Errorf("%s = %v out of [0,1]", pr.name, pr.p)
		}
	}
	return nil
}

// apply executes one event now.
func (in *Injector) apply(ev Event, seed int64) {
	switch ev.Kind {
	case LinkDown:
		for _, ch := range in.links[ev.Target] {
			ch.SetUp(false)
		}
	case LinkUp:
		for _, ch := range in.links[ev.Target] {
			ch.SetUp(true)
		}
	case LinkGrayDown:
		in.links[ev.Target][ev.Dir].SetUp(false)
	case LinkGrayUp:
		in.links[ev.Target][ev.Dir].SetUp(true)
	case LinkLoss:
		for j, ch := range in.links[ev.Target] {
			ch.SetLossModel(netsim.NewBernoulli(ev.P, seed+int64(j)))
		}
	case LinkBurstyLoss:
		for j, ch := range in.links[ev.Target] {
			ch.SetLossModel(netsim.NewGilbertElliott(
				ev.PGoodBad, ev.PBadGood, ev.LossGood, ev.LossBad, seed+int64(j)))
		}
	case ClearLoss:
		for _, ch := range in.links[ev.Target] {
			ch.SetLossModel(nil)
		}
	case Blackhole:
		sw := in.switches[ev.Target]
		v, m := tcam.DstIPRule(ev.DstIP)
		id := sw.TCAM().Insert(blackholePriority, v, m, tcam.Action{Drop: true})
		in.ruleIDs[blackholeKey(ev.Target, ev.DstIP)] = id
	case ClearBlackhole:
		sw := in.switches[ev.Target]
		key := blackholeKey(ev.Target, ev.DstIP)
		if id, ok := in.ruleIDs[key]; ok {
			// The rule can only be absent if the control plane removed
			// it underneath us; ignore that, the hole is gone either way.
			_ = sw.TCAM().Remove(id)
			delete(in.ruleIDs, key)
		}
	case TCPUOff:
		in.switches[ev.Target].SetTCPUEnabled(false)
	case TCPUOn:
		in.switches[ev.Target].SetTCPUEnabled(true)
	case SwitchReboot:
		delay := ev.BootDelay
		if delay <= 0 {
			delay = DefaultBootDelay
		}
		in.switches[ev.Target].Reboot(delay)
	case RogueTenant:
		in.startRogue(ev, seed)
	case ClearRogue:
		if tk, ok := in.rogues[ev.Target]; ok {
			tk.Stop()
			delete(in.rogues, ev.Target)
		}
	}

	if ev.Kind.recovers() {
		in.Recovered++
	} else {
		in.Injected++
	}
	in.Log = append(in.Log, Applied{At: in.sim.Now(), Event: ev})
	in.recordSpan(ev)
}

func blackholeKey(target string, ip uint32) string {
	return fmt.Sprintf("%s/%08x", target, ip)
}

// roguePort is the UDP port rogue forgeries travel on — deliberately
// not the probe echo port, so victims don't amplify the flood.
const roguePort = 6666

// startRogue arms the hostile generator: a ticker forging one
// write-TPP per period from the event's seeded rng.  A second
// RogueTenant event on the same target replaces the running generator
// rather than stacking a second one.
func (in *Injector) startRogue(ev Event, seed int64) {
	if tk, ok := in.rogues[ev.Target]; ok {
		tk.Stop()
	}
	h := in.hosts[ev.Target]
	rng := rand.New(rand.NewSource(seed))
	period := netsim.Time(float64(netsim.Second) / ev.PPS)
	if period <= 0 {
		period = 1
	}
	in.rogues[ev.Target] = in.sim.Every(in.sim.Now()+period, period, func() {
		in.RogueSent++
		h.Send(forgedTPP(h, rng, ev))
	})
}

// forgedTPP builds one hostile write: a STORE of a random value aimed
// at a random absolute SRAM word (almost always someone else's
// partition) or, one time in four, at the port scratch registers that
// hold other tenants' control state.  The address stream comes from
// the event's seeded rng, so a plan replays the identical forgery
// sequence.
func forgedTPP(h *endhost.Host, rng *rand.Rand, ev Event) *core.Packet {
	addr := mem.SRAMBase + mem.Addr(rng.Intn(mem.SRAMWords))
	if rng.Intn(4) == 0 {
		addr = mem.PortBase + mem.PortScratchBase + mem.Addr(rng.Intn(mem.PortScratchWords))
	}
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(addr), B: 0},
	}, 1)
	tpp.SetWord(0, rng.Uint32())
	return &core.Packet{
		Eth:  core.Ethernet{Dst: ev.DstMAC, Src: h.MAC, Type: core.EtherTypeTPP},
		TPP:  tpp,
		IP:   &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: h.IP, Dst: ev.DstIP},
		UDP:  &core.UDP{SrcPort: roguePort, DstPort: roguePort},
		Meta: core.Metadata{UID: h.NextUID()},
	}
}

// recordSpan emits the fault event into the packet-lifecycle span
// stream (UID 0: no packet).  Node carries the target's identity: the
// switch id for switch faults, the first channel's trace id for link
// faults.
func (in *Injector) recordSpan(ev Event) {
	if in.tracer == nil {
		return
	}
	var node uint32
	if sw, ok := in.switches[ev.Target]; ok {
		node = sw.ID()
	} else if h, ok := in.hosts[ev.Target]; ok {
		node = uint32(h.MAC.Uint64() & 0xFFFFFF)
	} else if chs := in.links[ev.Target]; len(chs) > 0 {
		// Gray events name the exact direction that changed state; the
		// symmetric link events name the link by its first channel.
		if ev.Kind == LinkGrayDown || ev.Kind == LinkGrayUp {
			node = chs[ev.Dir].TraceID()
		} else {
			node = chs[0].TraceID()
		}
	}
	stage := obs.StageFaultInject
	if ev.Kind.recovers() {
		stage = obs.StageFaultRecover
	}
	b := uint64(ev.DstIP)
	if ev.Kind == LinkGrayDown || ev.Kind == LinkGrayUp {
		b = uint64(ev.Dir)
	}
	in.tracer.Record(obs.SpanEvent{
		At: int64(in.sim.Now()), UID: 0, Node: node,
		Stage: stage, A: uint64(ev.Kind), B: b,
	})
}
