package faults_test

import (
	"reflect"
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/faults"
	"repro/internal/guard"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
)

// rogueRig is a guarded 2-switch line with the source host sealed as
// tenant 7 and registered on the injector as "h0".  The plan is built
// by the caller after construction so events can target dst.
type rogueRig struct {
	sim      *netsim.Sim
	src, dst *endhost.Host
	sws      []*asic.Switch
	inj      *faults.Injector
	tracer   *obs.Tracer
}

func newRogueRig(t *testing.T) *rogueRig {
	t.Helper()
	sim := netsim.New(1)
	link := topo.Mbps(100, 10*netsim.Microsecond)
	tracer := obs.NewTracer(1 << 16)
	n, src, dst, sws := topo.Line(sim, 2, link, link, asic.Config{Trace: tracer, Guard: true})
	n.PrimeL2(5 * netsim.Millisecond)
	for _, sw := range sws {
		if _, err := sw.GrantTenant(7, guard.DefaultACL(), 64, 1, 0); err != nil {
			t.Fatalf("GrantTenant: %v", err)
		}
	}
	src.NIC.SetTenant(7)

	inj := faults.NewInjector(sim, tracer)
	inj.RegisterHost("h0", src)
	return &rogueRig{sim: sim, src: src, dst: dst, sws: sws, inj: inj, tracer: tracer}
}

func (r *rogueRig) schedule(t *testing.T, plan faults.Plan) {
	t.Helper()
	if err := r.inj.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
}

func TestRogueTenantFloodsAndClears(t *testing.T) {
	r := newRogueRig(t)
	r.schedule(t, faults.Plan{Seed: 11, Events: []faults.Event{
		{At: 10 * netsim.Millisecond, Kind: faults.RogueTenant, Target: "h0",
			PPS: 2000, DstMAC: r.dst.MAC, DstIP: r.dst.IP},
		{At: 30 * netsim.Millisecond, Kind: faults.ClearRogue, Target: "h0"},
	}})
	r.sim.RunUntil(35 * netsim.Millisecond)
	mid := r.inj.RogueSent
	if mid == 0 {
		t.Fatal("rogue generator sent nothing")
	}
	r.sim.RunUntil(60 * netsim.Millisecond)
	if r.inj.RogueSent != mid {
		t.Fatalf("generator kept sending after ClearRogue: %d -> %d", mid, r.inj.RogueSent)
	}
	if r.inj.Injected != 1 || r.inj.Recovered != 1 {
		t.Fatalf("counters: injected=%d recovered=%d", r.inj.Injected, r.inj.Recovered)
	}
}

func TestRogueTenantForgeriesAreDeniedNotDropped(t *testing.T) {
	r := newRogueRig(t)
	r.schedule(t, faults.Plan{Seed: 3, Events: []faults.Event{
		{At: 10 * netsim.Millisecond, Kind: faults.RogueTenant, Target: "h0",
			PPS: 1000, DstMAC: r.dst.MAC, DstIP: r.dst.IP},
	}})
	r.sim.RunUntil(50 * netsim.Millisecond)

	if r.inj.RogueSent == 0 {
		t.Fatal("no forgeries sent")
	}
	// Fail-forward: denied writes don't drop the packet — the
	// forgeries keep forwarding and arrive at the destination.
	if r.dst.Received == 0 {
		t.Fatal("forgeries were dropped instead of failing forward")
	}
	// The guard denied the out-of-partition and port-scratch writes.
	if r.sws[0].TPPsDenied() == 0 {
		t.Fatal("guarded switch denied nothing")
	}
	if got := r.sws[0].Guard().Denied(7); got != r.sws[0].TPPsDenied() {
		t.Fatalf("tenant 7 denials %d != switch total %d (only tenant active)",
			got, r.sws[0].TPPsDenied())
	}
}

func TestRogueTenantReplaysBySeed(t *testing.T) {
	run := func(seed int64) []uint64 {
		r := newRogueRig(t)
		r.schedule(t, faults.Plan{Seed: seed, Events: []faults.Event{
			{At: 10 * netsim.Millisecond, Kind: faults.RogueTenant, Target: "h0",
				PPS: 1500, DstMAC: r.dst.MAC, DstIP: r.dst.IP},
		}})
		r.sim.RunUntil(40 * netsim.Millisecond)
		var addrs []uint64
		for _, ev := range r.tracer.Events() {
			if ev.Stage == obs.StageAccessDeny {
				addrs = append(addrs, ev.A)
			}
		}
		if len(addrs) == 0 {
			t.Fatalf("seed %d: no denial spans", seed)
		}
		return addrs
	}
	a1, a2, b := run(21), run(21), run(22)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed produced different forgery sequences")
	}
	if reflect.DeepEqual(a1, b) {
		t.Fatal("different seeds produced the identical forgery sequence")
	}
}

func TestRogueValidation(t *testing.T) {
	sim := netsim.New(1)
	inj := faults.NewInjector(sim, nil)
	h := endhost.NewHost(sim, core.MACFromUint64(1), 0x0a000001)
	inj.RegisterHost("h", h)

	bad := []faults.Plan{
		{Events: []faults.Event{{Kind: faults.RogueTenant, Target: "nope", PPS: 100}}},
		{Events: []faults.Event{{Kind: faults.RogueTenant, Target: "h"}}}, // PPS 0
		{Events: []faults.Event{{Kind: faults.ClearRogue, Target: "nope"}}},
	}
	for i, p := range bad {
		if err := inj.Schedule(p); err == nil {
			t.Errorf("plan %d scheduled despite invalid event", i)
		}
	}
	if sim.Pending() != 0 {
		t.Fatal("invalid plans left events armed")
	}
}
