package faults_test

import (
	"math"
	"testing"

	"repro/internal/netsim"
)

// TestGilbertElliottDwellTimes drives the bursty loss model for many
// frames under a fixed seed and checks the empirical statistics against
// the configured chain: dwell times in each state are geometric, so the
// mean good dwell must approach 1/PGoodBad and the mean bad dwell
// 1/PBadGood; per-state loss rates must approach LossGood and LossBad.
// Deterministic by seed — the tolerances have slack for finite-sample
// noise, not for flaky randomness.
func TestGilbertElliottDwellTimes(t *testing.T) {
	const (
		pGoodBad = 0.05 // mean good dwell 20 frames
		pBadGood = 0.25 // mean bad dwell 4 frames
		lossGood = 0.01
		lossBad  = 0.6
		frames   = 500_000
	)
	g := netsim.NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad, 1234)

	var (
		dwell                 = 0
		goodDwells, badDwells []int
		lostGood, nGood       int
		lostBad, nBad         int
	)
	prevBad := g.Bad()
	for i := 0; i < frames; i++ {
		lost := g.Lost()
		// Lost() first advances the chain, then samples the *current*
		// state's loss probability: attribute the sample to the state
		// after the step.
		if g.Bad() {
			nBad++
			if lost {
				lostBad++
			}
		} else {
			nGood++
			if lost {
				lostGood++
			}
		}
		if g.Bad() == prevBad {
			dwell++
			continue
		}
		if prevBad {
			badDwells = append(badDwells, dwell)
		} else {
			goodDwells = append(goodDwells, dwell)
		}
		prevBad = g.Bad()
		dwell = 1
	}

	mean := func(xs []int) float64 {
		s := 0
		for _, x := range xs {
			s += x
		}
		return float64(s) / float64(len(xs))
	}
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}

	if len(goodDwells) < 1000 || len(badDwells) < 1000 {
		t.Fatalf("too few dwell episodes (good=%d bad=%d) for statistics",
			len(goodDwells), len(badDwells))
	}
	if got := mean(goodDwells); !within(got, 1/pGoodBad, 0.05) {
		t.Errorf("mean good dwell = %.2f frames, want %.2f +-5%%", got, 1/pGoodBad)
	}
	if got := mean(badDwells); !within(got, 1/pBadGood, 0.05) {
		t.Errorf("mean bad dwell = %.2f frames, want %.2f +-5%%", got, 1/pBadGood)
	}
	if got := float64(lostGood) / float64(nGood); !within(got, lossGood, 0.15) {
		t.Errorf("good-state loss rate = %.4f, want %.4f +-15%%", got, lossGood)
	}
	if got := float64(lostBad) / float64(nBad); !within(got, lossBad, 0.05) {
		t.Errorf("bad-state loss rate = %.4f, want %.4f +-5%%", got, lossBad)
	}

	// The long-run fraction of time spent bad is the chain's stationary
	// distribution: pGoodBad / (pGoodBad + pBadGood).
	wantBad := pGoodBad / (pGoodBad + pBadGood)
	if got := float64(nBad) / float64(frames); !within(got, wantBad, 0.05) {
		t.Errorf("stationary bad fraction = %.4f, want %.4f +-5%%", got, wantBad)
	}

	// Same seed, same trajectory: the model must be replayable.
	g2 := netsim.NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad, 1234)
	g3 := netsim.NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad, 1234)
	for i := 0; i < 10_000; i++ {
		if g2.Lost() != g3.Lost() {
			t.Fatalf("same-seed models diverged at frame %d", i)
		}
	}
}
