package faults_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
)

// holeCount counts installed blackhole rules (the injector inserts them
// at priority 1<<20, above any controller band).
func holeCount(sw *asic.Switch) int {
	n := 0
	for _, e := range sw.TCAM().Entries() {
		if e.Priority == 1<<20 {
			n++
		}
	}
	return n
}

// TestSameTickCompositionOrder pins the ordering guarantee the package
// doc states: events sharing a tick apply in plan-list order, and
// across Schedule calls in call order (the simulator breaks same-time
// ties FIFO).  Two plans targeting the same switch in the same tick
// therefore compose deterministically.
func TestSameTickCompositionOrder(t *testing.T) {
	const at = netsim.Millisecond
	dst := core.IPv4Addr(10, 0, 0, 9)
	mk := func() (*netsim.Sim, *asic.Switch, *faults.Injector) {
		sim := netsim.New(1)
		sw := asic.New(sim, asic.Config{ID: 1, Ports: 2})
		in := faults.NewInjector(sim, nil)
		in.RegisterSwitch("s", sw)
		return sim, sw, in
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}

	// One plan, inject then clear in the same tick: nets out to no hole.
	sim, sw, in := mk()
	must(in.Schedule(faults.Plan{Seed: 1, Events: []faults.Event{
		{At: at, Kind: faults.Blackhole, Target: "s", DstIP: dst},
		{At: at, Kind: faults.ClearBlackhole, Target: "s", DstIP: dst},
	}}))
	sim.RunUntil(2 * at)
	if n := holeCount(sw); n != 0 {
		t.Fatalf("inject-then-clear in one tick left %d hole rules, want 0", n)
	}

	// Two plans on the same switch in the same tick, scheduled
	// clear-first: the clear is a no-op (nothing installed yet), the
	// later-scheduled inject lands and stays.  If call order were not
	// preserved this would net out to zero holes.
	sim, sw, in = mk()
	must(in.Schedule(faults.Plan{Seed: 1, Events: []faults.Event{
		{At: at, Kind: faults.ClearBlackhole, Target: "s", DstIP: dst},
	}}))
	must(in.Schedule(faults.Plan{Seed: 2, Events: []faults.Event{
		{At: at, Kind: faults.Blackhole, Target: "s", DstIP: dst},
	}}))
	sim.RunUntil(2 * at)
	if n := holeCount(sw); n != 1 {
		t.Fatalf("clear-then-inject across plans left %d hole rules, want 1", n)
	}

	// A crash-restart composed with a blackhole in the same tick: the
	// reboot applies first (plan order), the hole is installed during
	// the boot window, and both effects are visible afterwards — TCAM
	// state survives a reboot.
	sim, sw, in = mk()
	must(in.Schedule(faults.Plan{Seed: 1, Events: []faults.Event{
		{At: at, Kind: faults.SwitchReboot, Target: "s", BootDelay: netsim.Millisecond},
		{At: at, Kind: faults.Blackhole, Target: "s", DstIP: dst},
	}}))
	sim.RunUntil(3 * at)
	if ep := sw.Epoch(); ep != 1 {
		t.Fatalf("epoch = %d, want 1", ep)
	}
	if n := holeCount(sw); n != 1 {
		t.Fatalf("reboot+blackhole same tick left %d hole rules, want 1", n)
	}
	if sw.Booting() {
		t.Fatal("switch still dark after the boot window")
	}
}
