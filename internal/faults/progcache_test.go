package faults_test

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/microburst"
	"repro/internal/netsim"
)

// pumpTPP is pump with every packet carrying the microburst telemetry
// program, so each traversal of a switch exercises its compiled-program
// cache.
func (r *rig) pumpTPP(from, to netsim.Time) (delivered uint64) {
	before := r.dst.Received
	for at := from; at < to; at += netsim.Millisecond {
		r.sim.At(at, func() {
			pkt := r.src.NewPacket(r.dst.MAC, r.dst.IP, 5000, 5001, 200)
			microburst.Instrument(pkt, 4)
			r.src.Send(pkt)
		})
	}
	r.sim.RunUntil(to + 10*netsim.Millisecond)
	return r.dst.Received - before
}

// TestProgCacheSurvivesPlanOnlyUntilReboot: the compiled-program cache
// is soft state, so a plan-driven crash-restart must flush it — the
// first telemetry packet after recovery recompiles instead of reusing a
// compilation from the previous boot epoch.
func TestProgCacheSurvivesPlanOnlyUntilReboot(t *testing.T) {
	const (
		rebootAt  = 40 * netsim.Millisecond
		bootDelay = 10 * netsim.Millisecond
	)
	r := newRig(t, faults.Plan{Seed: 1, Events: []faults.Event{
		{At: rebootAt, Kind: faults.SwitchReboot, Target: "s0", BootDelay: bootDelay},
	}})

	if got := r.pumpTPP(10*netsim.Millisecond, 30*netsim.Millisecond); got != 20 {
		t.Fatalf("pre-reboot delivered %d/20", got)
	}
	if _, misses := r.sws[0].ProgCacheStats(); misses != 1 {
		t.Fatalf("pre-reboot misses = %d, want 1 (one compilation, then steady hits)", misses)
	}
	hits, _ := r.sws[0].ProgCacheStats()
	if hits == 0 {
		t.Fatal("no cache hits before reboot; rig is not exercising the ingress cache")
	}

	// Past the dark window; the L2 wipe makes early frames flood but
	// they still reach dst.
	if got := r.pumpTPP(60*netsim.Millisecond, 80*netsim.Millisecond); got != 20 {
		t.Fatalf("post-boot delivered %d/20", got)
	}
	if _, misses := r.sws[0].ProgCacheStats(); misses != 2 {
		t.Fatalf("post-reboot misses = %d, want 2 (reboot must flush the cache)", misses)
	}
	// s1 never rebooted: its single compilation survives the whole run.
	if _, misses := r.sws[1].ProgCacheStats(); misses != 1 {
		t.Fatalf("s1 misses = %d, want 1 (unrebooted switch keeps its cache)", misses)
	}
}
