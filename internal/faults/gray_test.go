package faults_test

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// A gray failure darkens exactly one direction: forward traffic
// vanishes while the reverse path keeps delivering, and recovery
// restores the dead direction without ever having touched the live one.
func TestGrayFailureIsUnidirectional(t *testing.T) {
	r := newRig(t, faults.Plan{Seed: 1, Events: []faults.Event{
		// Dir 0 is the first registered channel: S0 port 0's egress,
		// i.e. the S0→S1 direction of the backbone.
		{At: 40 * netsim.Millisecond, Kind: faults.LinkGrayDown, Target: "backbone", Dir: 0},
		{At: 80 * netsim.Millisecond, Kind: faults.LinkGrayUp, Target: "backbone", Dir: 0},
	}})

	if got := r.pump(10*netsim.Millisecond, 30*netsim.Millisecond); got != 20 {
		t.Fatalf("pre-fault delivered %d/20", got)
	}

	// During the gray window: src→dst crosses the dead S0→S1 direction
	// and must vanish; dst→src rides the untouched reverse channel.
	beforeFwd, beforeRev := r.dst.Received, r.src.Received
	for at := 45 * netsim.Millisecond; at < 65*netsim.Millisecond; at += netsim.Millisecond {
		r.sim.At(at, func() {
			r.src.Send(r.src.NewPacket(r.dst.MAC, r.dst.IP, 5000, 5001, 200))
			r.dst.Send(r.dst.NewPacket(r.src.MAC, r.src.IP, 5001, 5000, 200))
		})
	}
	r.sim.RunUntil(75 * netsim.Millisecond)
	if got := r.dst.Received - beforeFwd; got != 0 {
		t.Fatalf("gray-down direction delivered %d packets", got)
	}
	if got := r.src.Received - beforeRev; got != 20 {
		t.Fatalf("reverse direction delivered %d/20 during the gray failure", got)
	}

	// Only the darkened channel counted down-drops.
	fwd := r.sws[0].Port(0).Channel()
	rev := r.sws[1].Port(0).Channel()
	if fwd.PacketsDownDrops == 0 {
		t.Fatal("dead direction recorded no down-drops")
	}
	if rev.PacketsDownDrops != 0 {
		t.Fatalf("live direction recorded %d down-drops", rev.PacketsDownDrops)
	}

	if got := r.pump(85*netsim.Millisecond, 105*netsim.Millisecond); got != 20 {
		t.Fatalf("post-recovery delivered %d/20", got)
	}
	if r.inj.Injected != 1 || r.inj.Recovered != 1 {
		t.Fatalf("counters: injected=%d recovered=%d", r.inj.Injected, r.inj.Recovered)
	}
}

// Gray events are visible in the span stream: inject and recover spans
// carry the darkened channel's trace id as Node and the direction index
// in B, so a trace reader can tell *which way* the link died.
func TestGraySpansNameTheDirection(t *testing.T) {
	r := newRig(t, faults.Plan{Seed: 1, Events: []faults.Event{
		{At: 10 * netsim.Millisecond, Kind: faults.LinkGrayDown, Target: "backbone", Dir: 1},
		{At: 20 * netsim.Millisecond, Kind: faults.LinkGrayUp, Target: "backbone", Dir: 1},
	}})
	r.sim.RunUntil(30 * netsim.Millisecond)

	wantNode := r.sws[1].Port(0).Channel().TraceID() // Dir 1: the S1→S0 channel
	var inject, recover int
	for _, ev := range r.tracer.Events() {
		switch {
		case ev.Stage == obs.StageFaultInject && faults.Kind(ev.A) == faults.LinkGrayDown:
			inject++
			if ev.Node != wantNode || ev.B != 1 {
				t.Fatalf("inject span node=%d B=%d, want node=%d B=1", ev.Node, ev.B, wantNode)
			}
		case ev.Stage == obs.StageFaultRecover && faults.Kind(ev.A) == faults.LinkGrayUp:
			recover++
			if ev.Node != wantNode || ev.B != 1 {
				t.Fatalf("recover span node=%d B=%d, want node=%d B=1", ev.Node, ev.B, wantNode)
			}
		}
	}
	if inject != 1 || recover != 1 {
		t.Fatalf("gray spans: inject=%d recover=%d, want 1/1", inject, recover)
	}
}

// An out-of-range direction fails Schedule's up-front validation.
func TestGrayValidation(t *testing.T) {
	r := newRig(t, faults.Plan{})
	err := r.inj.Schedule(faults.Plan{Events: []faults.Event{
		{At: netsim.Millisecond, Kind: faults.LinkGrayDown, Target: "backbone", Dir: 2},
	}})
	if err == nil {
		t.Fatal("out-of-range Dir passed validation")
	}
	err = r.inj.Schedule(faults.Plan{Events: []faults.Event{
		{At: netsim.Millisecond, Kind: faults.LinkGrayDown, Target: "nolink"},
	}})
	if err == nil {
		t.Fatal("unknown link passed validation")
	}
}
