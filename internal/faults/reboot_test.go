package faults_test

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// TestSwitchRebootThroughPlan schedules a crash-restart via the
// declarative plan and checks the full arc: traffic flows before, the
// switch is dark (and dropping) during the boot delay, the boot epoch
// increments, forwarding resumes afterwards, and the reboot + switch-up
// spans land in the trace stream.
func TestSwitchRebootThroughPlan(t *testing.T) {
	const (
		rebootAt  = 40 * netsim.Millisecond
		bootDelay = 10 * netsim.Millisecond
	)
	r := newRig(t, faults.Plan{Seed: 1, Events: []faults.Event{
		{At: rebootAt, Kind: faults.SwitchReboot, Target: "s0", BootDelay: bootDelay},
	}})

	if got := r.pump(10*netsim.Millisecond, 30*netsim.Millisecond); got != 20 {
		t.Fatalf("pre-reboot delivered %d/20", got)
	}
	// During the dark window every frame is eaten.
	if got := r.pump(42*netsim.Millisecond, 48*netsim.Millisecond); got != 0 {
		t.Fatalf("dark switch delivered %d packets", got)
	}
	if r.sws[0].Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", r.sws[0].Epoch())
	}
	if r.sws[0].RebootDrops() == 0 {
		t.Fatal("no drops counted during the dark window")
	}
	// The L2 wipe means the first post-boot frames flood and still
	// deliver; steady traffic resumes at full rate.
	if got := r.pump(60*netsim.Millisecond, 80*netsim.Millisecond); got != 20 {
		t.Fatalf("post-boot delivered %d/20", got)
	}
	if r.inj.Injected != 1 || r.inj.Recovered != 0 {
		t.Fatalf("counters: injected=%d recovered=%d", r.inj.Injected, r.inj.Recovered)
	}

	var sawReboot, sawUp bool
	for _, ev := range r.tracer.Events() {
		switch ev.Stage {
		case obs.StageSwitchReboot:
			sawReboot = true
			if ev.A != 1 || ev.B != uint64(bootDelay) {
				t.Fatalf("reboot span A=%d B=%d, want epoch 1 and delay %d", ev.A, ev.B, bootDelay)
			}
		case obs.StageSwitchUp:
			sawUp = true
			if ev.At != int64(rebootAt+bootDelay) {
				t.Fatalf("switch-up span at %d, want %d", ev.At, int64(rebootAt+bootDelay))
			}
		}
	}
	if !sawReboot || !sawUp {
		t.Fatalf("spans missing: reboot=%v up=%v", sawReboot, sawUp)
	}
}

// TestSwitchRebootValidation: a negative boot delay is rejected
// up-front, and an unknown switch target still fails like the other
// switch kinds.
func TestSwitchRebootValidation(t *testing.T) {
	r := newRig(t, faults.Plan{})
	if err := r.inj.Schedule(faults.Plan{Events: []faults.Event{
		{Kind: faults.SwitchReboot, Target: "s0", BootDelay: -netsim.Millisecond},
	}}); err == nil {
		t.Fatal("negative BootDelay accepted")
	}
	if err := r.inj.Schedule(faults.Plan{Events: []faults.Event{
		{Kind: faults.SwitchReboot, Target: "nope"},
	}}); err == nil {
		t.Fatal("unknown switch target accepted")
	}
}
