package faults_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
)

// rig is a 2-switch line (H0 - S0 - S1 - H1) with the backbone link
// and both switches registered on an injector.
type rig struct {
	sim      *netsim.Sim
	net      *topo.Network
	src, dst *endhost.Host
	sws      []*asic.Switch
	inj      *faults.Injector
	tracer   *obs.Tracer
}

func newRig(t *testing.T, plan faults.Plan) *rig {
	t.Helper()
	sim := netsim.New(1)
	edge := topo.Mbps(100, 10*netsim.Microsecond)
	backbone := topo.Mbps(100, 10*netsim.Microsecond)
	// The switches share the tracer so switch-emitted spans (reboot,
	// boot-complete) land in the same stream as the injector's.
	tracer := obs.NewTracer(1 << 16)
	n, src, dst, sws := topo.Line(sim, 2, edge, backbone, asic.Config{Trace: tracer})
	n.PrimeL2(5 * netsim.Millisecond)

	inj := faults.NewInjector(sim, tracer)
	// The backbone is S0 port 0 <-> S1 port 0 (switch-switch links are
	// wired before host links in topo.Line).
	inj.RegisterLink("backbone", sws[0].Port(0).Channel(), sws[1].Port(0).Channel())
	inj.RegisterSwitch("s0", sws[0])
	inj.RegisterSwitch("s1", sws[1])
	if err := inj.Schedule(plan); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	return &rig{sim: sim, net: n, src: src, dst: dst, sws: sws, inj: inj, tracer: tracer}
}

// pump sends one 200-byte packet src->dst every millisecond for the
// given span and returns how many arrived.
func (r *rig) pump(from, to netsim.Time) (delivered uint64) {
	before := r.dst.Received
	for at := from; at < to; at += netsim.Millisecond {
		r.sim.At(at, func() {
			r.src.Send(r.src.NewPacket(r.dst.MAC, r.dst.IP, 5000, 5001, 200))
		})
	}
	r.sim.RunUntil(to + 10*netsim.Millisecond)
	return r.dst.Received - before
}

func TestLinkFlapStopsAndRestoresTraffic(t *testing.T) {
	r := newRig(t, faults.Plan{Seed: 1, Events: faults.Flap(
		"backbone", 40*netsim.Millisecond, 30*netsim.Millisecond)})

	// pump runs the sim 10ms past each window, so windows are spaced to
	// stay ahead of the clock: [10,35) ends at 45, [46,65) ends at 75.
	if got := r.pump(10*netsim.Millisecond, 35*netsim.Millisecond); got != 25 {
		t.Fatalf("pre-fault delivered %d/25", got)
	}
	if got := r.pump(46*netsim.Millisecond, 65*netsim.Millisecond); got != 0 {
		t.Fatalf("down link delivered %d packets", got)
	}
	if got := r.pump(75*netsim.Millisecond, 100*netsim.Millisecond); got != 25 {
		t.Fatalf("post-recovery delivered %d/25", got)
	}
	if r.inj.Injected != 1 || r.inj.Recovered != 1 {
		t.Fatalf("counters: injected=%d recovered=%d", r.inj.Injected, r.inj.Recovered)
	}
}

func TestBlackholeSwallowsOnlyTargetedTraffic(t *testing.T) {
	var dstIP uint32
	// Build once to learn the dst IP, then rebuild with the plan.
	{
		sim := netsim.New(1)
		_, _, d, _ := topo.Line(sim, 2, topo.Mbps(100, netsim.Microsecond),
			topo.Mbps(100, netsim.Microsecond), asic.Config{})
		dstIP = d.IP
	}
	r := newRig(t, faults.Plan{Seed: 1, Events: []faults.Event{
		{At: 40 * netsim.Millisecond, Kind: faults.Blackhole, Target: "s0", DstIP: dstIP},
		{At: 80 * netsim.Millisecond, Kind: faults.ClearBlackhole, Target: "s0", DstIP: dstIP},
	}})

	if got := r.pump(10*netsim.Millisecond, 30*netsim.Millisecond); got != 20 {
		t.Fatalf("pre-fault delivered %d/20", got)
	}
	// While the hole is in: forward traffic vanishes, reverse traffic
	// (dst -> src) is untouched.  Schedule both before running.
	beforeFwd, beforeRev := r.dst.Received, r.src.Received
	for at := 45 * netsim.Millisecond; at < 65*netsim.Millisecond; at += netsim.Millisecond {
		r.sim.At(at, func() {
			r.src.Send(r.src.NewPacket(r.dst.MAC, r.dst.IP, 5000, 5001, 200))
			r.dst.Send(r.dst.NewPacket(r.src.MAC, r.src.IP, 5001, 5000, 200))
		})
	}
	r.sim.RunUntil(75 * netsim.Millisecond)
	if got := r.dst.Received - beforeFwd; got != 0 {
		t.Fatalf("blackholed dst received %d packets", got)
	}
	if got := r.src.Received - beforeRev; got != 20 {
		t.Fatalf("reverse path delivered %d/20 during the hole", got)
	}
	if got := r.pump(85*netsim.Millisecond, 105*netsim.Millisecond); got != 20 {
		t.Fatalf("post-clear delivered %d/20", got)
	}
	if r.sws[0].TCAM().Size() != 0 {
		t.Fatal("ClearBlackhole left the drop rule installed")
	}
}

func TestTCPUToggleThroughPlan(t *testing.T) {
	r := newRig(t, faults.Plan{Seed: 1, Events: []faults.Event{
		{At: 20 * netsim.Millisecond, Kind: faults.TCPUOff, Target: "s1"},
		{At: 60 * netsim.Millisecond, Kind: faults.TCPUOn, Target: "s1"},
	}})
	prober := endhost.NewProber(r.src)
	probe := func(at netsim.Time) *core.TPP {
		var echoed *core.TPP
		r.sim.At(at, func() {
			// One PUSH of the switch id per hop, two hops of memory.
			tpp := core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpPUSH, A: uint16(mem.SwitchBase + mem.SwitchID)},
			}, 2)
			prober.Probe(r.dst.MAC, r.dst.IP, tpp, func(e *core.TPP) { echoed = e })
		})
		r.sim.RunUntil(at + 15*netsim.Millisecond)
		if echoed == nil {
			t.Fatalf("probe at %v never echoed", at)
		}
		return echoed
	}
	if e := probe(10 * netsim.Millisecond); e.Ptr != 8 {
		t.Fatalf("healthy trace SP = %d, want 8", e.Ptr)
	}
	if e := probe(30 * netsim.Millisecond); e.Ptr != 4 {
		t.Fatalf("TCPU-off trace SP = %d, want 4 (one hop skipped)", e.Ptr)
	}
	if e := probe(70 * netsim.Millisecond); e.Ptr != 8 {
		t.Fatalf("recovered trace SP = %d, want 8", e.Ptr)
	}
}

// TestLossEventsReplayBySeed: the same plan and seed produce the
// identical delivery pattern; a different seed produces a different
// one (with overwhelming probability at these sample sizes).
func TestLossEventsReplayBySeed(t *testing.T) {
	run := func(seed int64) uint64 {
		r := newRig(t, faults.Plan{Seed: seed, Events: []faults.Event{
			{At: 10 * netsim.Millisecond, Kind: faults.LinkBurstyLoss, Target: "backbone",
				PGoodBad: 0.05, PBadGood: 0.2, LossGood: 0.01, LossBad: 0.9},
		}})
		return r.pump(10*netsim.Millisecond, 400*netsim.Millisecond)
	}
	a1, a2, b := run(7), run(7), run(8)
	if a1 != a2 {
		t.Fatalf("same seed diverged: %d vs %d", a1, a2)
	}
	if a1 == b {
		t.Fatalf("different seeds identical: %d", a1)
	}
	if a1 == 0 || a1 == 390 {
		t.Fatalf("bursty loss had no effect: delivered %d/390", a1)
	}
}

func TestClearLossRestoresLossless(t *testing.T) {
	r := newRig(t, faults.Plan{Seed: 3, Events: []faults.Event{
		{At: 10 * netsim.Millisecond, Kind: faults.LinkLoss, Target: "backbone", P: 1},
		{At: 50 * netsim.Millisecond, Kind: faults.ClearLoss, Target: "backbone"},
	}})
	if got := r.pump(15*netsim.Millisecond, 45*netsim.Millisecond); got != 0 {
		t.Fatalf("blackout delivered %d", got)
	}
	if got := r.pump(56*netsim.Millisecond, 86*netsim.Millisecond); got != 30 {
		t.Fatalf("after ClearLoss delivered %d/30", got)
	}
}

func TestFaultSpansInStream(t *testing.T) {
	r := newRig(t, faults.Plan{Seed: 1, Events: faults.Flap(
		"backbone", 10*netsim.Millisecond, 10*netsim.Millisecond)})
	r.sim.RunUntil(50 * netsim.Millisecond)

	var injects, recovers int
	for _, ev := range r.tracer.Events() {
		switch ev.Stage {
		case obs.StageFaultInject:
			injects++
			if faults.Kind(ev.A) != faults.LinkDown {
				t.Errorf("inject span kind = %v", faults.Kind(ev.A))
			}
		case obs.StageFaultRecover:
			recovers++
		}
	}
	if injects != 1 || recovers != 1 {
		t.Fatalf("fault spans: inject=%d recover=%d, want 1/1", injects, recovers)
	}
	if len(r.inj.Log) != 2 {
		t.Fatalf("applied log has %d entries", len(r.inj.Log))
	}
}

func TestScheduleValidation(t *testing.T) {
	sim := netsim.New(1)
	inj := faults.NewInjector(sim, nil)
	ch := netsim.NewChannel(sim, 1000, 0, rxSink{}, 0)
	inj.RegisterLink("l", ch)

	bad := []faults.Plan{
		{Events: []faults.Event{{Kind: faults.LinkDown, Target: "nope"}}},
		{Events: []faults.Event{{Kind: faults.Blackhole, Target: "l"}}}, // link, not switch
		{Events: []faults.Event{{Kind: faults.LinkLoss, Target: "l", P: 1.5}}},
		{Events: []faults.Event{{Kind: faults.LinkBurstyLoss, Target: "l", PGoodBad: -0.1}}},
		{Events: []faults.Event{{Kind: faults.Kind(250), Target: "l"}}},
	}
	for i, p := range bad {
		if err := inj.Schedule(p); err == nil {
			t.Errorf("plan %d scheduled despite invalid event", i)
		}
	}
	if sim.Pending() != 0 {
		t.Fatal("invalid plans left events armed")
	}
}

type rxSink struct{}

func (rxSink) Receive(*core.Packet, int) {}
