// Package l3 implements the IPv4 longest-prefix-match table of the
// switch pipeline (§3.1) as a binary trie.  It is deliberately simple —
// the experiments route a handful of prefixes — but correct for the
// full 0..32 prefix-length range, and property-tested against a naive
// reference in l3_test.go.
package l3

import "fmt"

// Route is the action attached to a prefix.
type Route struct {
	// OutPort is the egress port packets matching the prefix take.
	OutPort int
}

type node struct {
	children [2]*node
	route    *Route
}

// Table is an IPv4 longest-prefix-match forwarding table.
type Table struct {
	root node
	size int
}

// New builds an empty LPM table.
func New() *Table { return &Table{} }

// Size returns the number of installed prefixes.
func (t *Table) Size() int { return t.size }

// Insert installs (or replaces) the route for prefix/plen.  The bits of
// prefix below the prefix length are ignored.
func (t *Table) Insert(prefix uint32, plen int, r Route) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("l3: prefix length %d out of range", plen)
	}
	n := &t.root
	for i := 0; i < plen; i++ {
		b := prefix >> (31 - i) & 1
		if n.children[b] == nil {
			n.children[b] = &node{}
		}
		n = n.children[b]
	}
	if n.route == nil {
		t.size++
	}
	rt := r
	n.route = &rt
	return nil
}

// Remove deletes the route for exactly prefix/plen.  It reports whether
// a route was present.  Interior trie nodes are left in place; the
// table is small and rebuilt rarely.
func (t *Table) Remove(prefix uint32, plen int) bool {
	if plen < 0 || plen > 32 {
		return false
	}
	n := &t.root
	for i := 0; i < plen; i++ {
		b := prefix >> (31 - i) & 1
		if n.children[b] == nil {
			return false
		}
		n = n.children[b]
	}
	if n.route == nil {
		return false
	}
	n.route = nil
	t.size--
	return true
}

// PrefixRoute is one installed prefix paired with its route, as
// enumerated by Routes.
type PrefixRoute struct {
	Prefix uint32
	Len    int
	Route  Route
}

// Routes enumerates every installed prefix in deterministic trie order
// (a prefix before its refinements, the zero branch before the one
// branch).  This is the control plane's read-back path: a fabric
// controller diffs desired prefixes against what the trie actually
// holds instead of assuming its own past writes stuck.
func (t *Table) Routes() []PrefixRoute {
	out := make([]PrefixRoute, 0, t.size)
	var walk func(n *node, prefix uint32, depth int)
	walk = func(n *node, prefix uint32, depth int) {
		if n.route != nil {
			out = append(out, PrefixRoute{Prefix: prefix, Len: depth, Route: *n.route})
		}
		if depth == 32 {
			return
		}
		if c := n.children[0]; c != nil {
			walk(c, prefix, depth+1)
		}
		if c := n.children[1]; c != nil {
			walk(c, prefix|1<<(31-depth), depth+1)
		}
	}
	walk(&t.root, 0, 0)
	return out
}

// Lookup returns the route of the longest prefix covering ip.
func (t *Table) Lookup(ip uint32) (Route, bool) {
	n := &t.root
	var best *Route
	if n.route != nil {
		best = n.route
	}
	for i := 0; i < 32 && n != nil; i++ {
		b := ip >> (31 - i) & 1
		n = n.children[b]
		if n != nil && n.route != nil {
			best = n.route
		}
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}
