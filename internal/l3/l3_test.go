package l3

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestBasicLookup(t *testing.T) {
	tbl := New()
	must(t, tbl.Insert(core.IPv4Addr(10, 0, 0, 0), 8, Route{OutPort: 1}))
	must(t, tbl.Insert(core.IPv4Addr(10, 1, 0, 0), 16, Route{OutPort: 2}))
	must(t, tbl.Insert(core.IPv4Addr(10, 1, 2, 0), 24, Route{OutPort: 3}))

	cases := []struct {
		ip   uint32
		port int
		ok   bool
	}{
		{core.IPv4Addr(10, 9, 9, 9), 1, true},
		{core.IPv4Addr(10, 1, 9, 9), 2, true},
		{core.IPv4Addr(10, 1, 2, 9), 3, true},
		{core.IPv4Addr(11, 0, 0, 1), 0, false},
	}
	for _, c := range cases {
		r, ok := tbl.Lookup(c.ip)
		if ok != c.ok || (ok && r.OutPort != c.port) {
			t.Errorf("Lookup(%s) = %+v, %v; want port %d ok=%v",
				core.IPv4String(c.ip), r, ok, c.port, c.ok)
		}
	}
	if tbl.Size() != 3 {
		t.Fatalf("Size = %d", tbl.Size())
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultRoute(t *testing.T) {
	tbl := New()
	must(t, tbl.Insert(0, 0, Route{OutPort: 9}))
	r, ok := tbl.Lookup(core.IPv4Addr(1, 2, 3, 4))
	if !ok || r.OutPort != 9 {
		t.Fatalf("default route: %+v %v", r, ok)
	}
}

func TestHostRoute(t *testing.T) {
	tbl := New()
	ip := core.IPv4Addr(10, 0, 0, 7)
	must(t, tbl.Insert(ip, 32, Route{OutPort: 4}))
	if r, ok := tbl.Lookup(ip); !ok || r.OutPort != 4 {
		t.Fatal("host route missed")
	}
	if _, ok := tbl.Lookup(ip + 1); ok {
		t.Fatal("host route overmatched")
	}
}

func TestReplaceRoute(t *testing.T) {
	tbl := New()
	must(t, tbl.Insert(core.IPv4Addr(10, 0, 0, 0), 8, Route{OutPort: 1}))
	must(t, tbl.Insert(core.IPv4Addr(10, 0, 0, 0), 8, Route{OutPort: 2}))
	if tbl.Size() != 1 {
		t.Fatalf("replace grew table to %d", tbl.Size())
	}
	if r, _ := tbl.Lookup(core.IPv4Addr(10, 1, 1, 1)); r.OutPort != 2 {
		t.Fatal("replacement not visible")
	}
}

func TestRemove(t *testing.T) {
	tbl := New()
	must(t, tbl.Insert(core.IPv4Addr(10, 0, 0, 0), 8, Route{OutPort: 1}))
	must(t, tbl.Insert(core.IPv4Addr(10, 1, 0, 0), 16, Route{OutPort: 2}))
	if !tbl.Remove(core.IPv4Addr(10, 1, 0, 0), 16) {
		t.Fatal("Remove failed")
	}
	if tbl.Remove(core.IPv4Addr(10, 1, 0, 0), 16) {
		t.Fatal("double Remove succeeded")
	}
	if r, _ := tbl.Lookup(core.IPv4Addr(10, 1, 1, 1)); r.OutPort != 1 {
		t.Fatal("fallback to shorter prefix broken")
	}
	if tbl.Size() != 1 {
		t.Fatalf("Size = %d", tbl.Size())
	}
	if tbl.Remove(0, 40) {
		t.Fatal("bad plen Remove succeeded")
	}
}

func TestInsertBadPrefixLen(t *testing.T) {
	tbl := New()
	if err := tbl.Insert(0, 33, Route{}); err == nil {
		t.Fatal("plen 33 accepted")
	}
	if err := tbl.Insert(0, -1, Route{}); err == nil {
		t.Fatal("plen -1 accepted")
	}
}

// naive is the reference LPM implementation for the property test.
type naiveEntry struct {
	prefix uint32
	plen   int
	route  Route
}

func naiveLookup(entries []naiveEntry, ip uint32) (Route, bool) {
	best := -1
	var r Route
	for _, e := range entries {
		var mask uint32
		if e.plen > 0 {
			mask = ^uint32(0) << (32 - e.plen)
		}
		if ip&mask == e.prefix&mask && e.plen > best {
			best = e.plen
			r = e.route
		}
	}
	return r, best >= 0
}

// Property: the trie agrees with the naive reference on random route
// sets and random lookups, including after removals.
func TestTrieMatchesNaiveReference(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		tbl := New()
		var entries []naiveEntry
		seen := map[uint64]int{} // prefix/plen -> entries index
		for i := 0; i < 100; i++ {
			plen := r.Intn(33)
			var mask uint32
			if plen > 0 {
				mask = ^uint32(0) << (32 - plen)
			}
			prefix := r.Uint32() & mask
			route := Route{OutPort: r.Intn(64)}
			must(t, tbl.Insert(prefix, plen, route))
			k := uint64(prefix)<<8 | uint64(plen)
			if j, ok := seen[k]; ok {
				entries[j].route = route
			} else {
				seen[k] = len(entries)
				entries = append(entries, naiveEntry{prefix, plen, route})
			}
		}
		// Remove a third of them.
		for i := 0; i < len(entries)/3; i++ {
			e := entries[len(entries)-1-i]
			if !tbl.Remove(e.prefix, e.plen) {
				t.Fatal("Remove of installed prefix failed")
			}
		}
		entries = entries[:len(entries)-len(entries)/3]
		if tbl.Size() != len(entries) {
			t.Fatalf("Size = %d, want %d", tbl.Size(), len(entries))
		}
		for i := 0; i < 1000; i++ {
			ip := r.Uint32()
			if r.Intn(2) == 0 && len(entries) > 0 {
				// Bias half the probes to land inside a prefix.
				e := entries[r.Intn(len(entries))]
				var mask uint32
				if e.plen > 0 {
					mask = ^uint32(0) << (32 - e.plen)
				}
				ip = e.prefix&mask | ip&^mask
			}
			got, gok := tbl.Lookup(ip)
			want, wok := naiveLookup(entries, ip)
			if gok != wok || got != want {
				t.Fatalf("Lookup(%s) = %+v,%v; naive %+v,%v",
					core.IPv4String(ip), got, gok, want, wok)
			}
		}
	}
}
