package l3

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestRoutesEnumeration checks the read-back walk: every installed
// prefix comes back exactly once, in deterministic trie order,
// regardless of insertion order, and removals disappear from the walk.
func TestRoutesEnumeration(t *testing.T) {
	insertions := []PrefixRoute{
		{core.IPv4Addr(10, 1, 2, 0), 24, Route{OutPort: 3}},
		{0, 0, Route{OutPort: 9}},
		{core.IPv4Addr(10, 1, 0, 0), 16, Route{OutPort: 2}},
		{core.IPv4Addr(192, 168, 0, 0), 16, Route{OutPort: 5}},
		{core.IPv4Addr(10, 0, 0, 0), 8, Route{OutPort: 1}},
	}
	// Trie order: the default route first, then 10/8 before its
	// refinements, zero branch (10.1/16 at bit 15=1? order decided by
	// bits) — computed by the walk itself; assert against the expected
	// literal so a walk-order change is a conscious one.
	want := []PrefixRoute{
		{0, 0, Route{OutPort: 9}},
		{core.IPv4Addr(10, 0, 0, 0), 8, Route{OutPort: 1}},
		{core.IPv4Addr(10, 1, 0, 0), 16, Route{OutPort: 2}},
		{core.IPv4Addr(10, 1, 2, 0), 24, Route{OutPort: 3}},
		{core.IPv4Addr(192, 168, 0, 0), 16, Route{OutPort: 5}},
	}

	for perm := 0; perm < 3; perm++ {
		tbl := New()
		for i := range insertions {
			p := insertions[(i+perm)%len(insertions)]
			must(t, tbl.Insert(p.Prefix, p.Len, p.Route))
		}
		got := tbl.Routes()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("perm %d: Routes() = %+v, want %+v", perm, got, want)
		}
	}

	tbl := New()
	for _, p := range insertions {
		must(t, tbl.Insert(p.Prefix, p.Len, p.Route))
	}
	if !tbl.Remove(core.IPv4Addr(10, 1, 0, 0), 16) {
		t.Fatal("Remove reported no route")
	}
	for _, p := range tbl.Routes() {
		if p.Prefix == core.IPv4Addr(10, 1, 0, 0) && p.Len == 16 {
			t.Fatalf("removed prefix still enumerated: %+v", p)
		}
	}
	if n := len(tbl.Routes()); n != len(insertions)-1 {
		t.Fatalf("Routes() after remove = %d entries, want %d", n, len(insertions)-1)
	}
}
