// Package wireless models the paper's "other possibilities" extension:
// "TPPs are not just limited to wired networks; they can also be used
// in wireless networks where access points can annotate end-host
// packets with channel SNR which changes very quickly."
//
// An AP attaches to one switch port and drives its SNR register with an
// Ornstein–Uhlenbeck process (mean-reverting random walk), the standard
// model for a fading channel's slow envelope.  End-hosts read the
// register per packet through PUSH [Link:SNR] and can compare that
// against coarse polling, exactly as in the micro-burst experiment.
package wireless

import (
	"math"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
)

// APConfig parameterizes the simulated channel.
type APConfig struct {
	// MeanSNRdB is the long-run mean SNR in dB.
	MeanSNRdB float64
	// Reversion is the OU mean-reversion rate (1/s).
	Reversion float64
	// Volatility is the OU noise magnitude (dB/sqrt(s)).
	Volatility float64
	// UpdateEvery is how often the channel state advances.
	UpdateEvery netsim.Time
}

// DefaultAPConfig returns a fast-fading channel around 25 dB.
func DefaultAPConfig() APConfig {
	return APConfig{
		MeanSNRdB:   25,
		Reversion:   50,
		Volatility:  40,
		UpdateEvery: netsim.Millisecond,
	}
}

// AP is an access point: a switch port whose SNR register tracks the
// simulated channel.
type AP struct {
	sim  *netsim.Sim
	port *asic.Port
	cfg  APConfig
	snr  float64

	// Updates counts channel-state advances.
	Updates uint64
}

// NewAP attaches an access-point channel model to (sw, port) and starts
// updating it.
func NewAP(sim *netsim.Sim, sw *asic.Switch, port int, cfg APConfig) *AP {
	ap := &AP{sim: sim, port: sw.Port(port), cfg: cfg, snr: cfg.MeanSNRdB}
	ap.publish()
	sim.Every(sim.Now()+cfg.UpdateEvery, cfg.UpdateEvery, ap.step)
	return ap
}

// SNRdB returns the current channel SNR in dB.
func (ap *AP) SNRdB() float64 { return ap.snr }

func (ap *AP) step() {
	dt := ap.cfg.UpdateEvery.Seconds()
	noise := ap.sim.Rand().NormFloat64() * ap.cfg.Volatility * math.Sqrt(dt)
	ap.snr += ap.cfg.Reversion*(ap.cfg.MeanSNRdB-ap.snr)*dt + noise
	if ap.snr < 0 {
		ap.snr = 0
	}
	ap.Updates++
	ap.publish()
}

// publish writes the register in centi-dB, the unit [Link:SNR] exposes.
func (ap *AP) publish() {
	ap.port.SetSNR(uint32(math.Round(ap.snr * 100)))
}

// SNRProgram returns the one-instruction probe reading the SNR of each
// traversed link.
func SNRProgram(maxHops int) *core.TPP {
	return core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.PortBase + mem.PortSNR)},
	}, maxHops)
}

// SNRFromCentiDB converts a register value back to dB.
func SNRFromCentiDB(v uint32) float64 { return float64(v) / 100 }
