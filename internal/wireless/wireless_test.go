package wireless

import (
	"math"
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
	"repro/internal/topo"
)

func TestOUProcessStatistics(t *testing.T) {
	sim := netsim.New(7)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 2})
	h := n.AddHost()
	port := n.LinkHost(h, sw, topo.Mbps(100, 0))

	cfg := DefaultAPConfig()
	ap := NewAP(sim, sw, port, cfg)

	var sum, sumsq float64
	samples := 0
	sim.Every(sim.Now()+netsim.Millisecond, netsim.Millisecond, func() {
		sum += ap.SNRdB()
		sumsq += ap.SNRdB() * ap.SNRdB()
		samples++
	})
	sim.RunUntil(20 * netsim.Second)

	mean := sum / float64(samples)
	std := math.Sqrt(sumsq/float64(samples) - mean*mean)
	if math.Abs(mean-cfg.MeanSNRdB) > 3 {
		t.Fatalf("mean SNR = %.1f dB, want ~%.0f", mean, cfg.MeanSNRdB)
	}
	// The channel must actually fluctuate (that is the point).
	if std < 1 {
		t.Fatalf("SNR std = %.2f dB: channel not fading", std)
	}
	if ap.Updates == 0 {
		t.Fatal("channel never advanced")
	}
}

func TestSNRRegisterVisibleToTPP(t *testing.T) {
	sim := netsim.New(7)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 0))
	p2 := n.LinkHost(h2, sw, topo.Mbps(100, 0))
	n.PrimeL2(netsim.Millisecond)

	ap := NewAP(sim, sw, p2, DefaultAPConfig())
	sim.RunUntil(sim.Now() + 100*netsim.Millisecond)

	prober := endhost.NewProber(h1)
	var echoed *core.TPP
	var snrAtProbe float64
	prober.Probe(h2.MAC, h2.IP, SNRProgram(2), func(e *core.TPP) { echoed = e })
	snrAtProbe = ap.SNRdB()
	sim.RunUntil(sim.Now() + 10*netsim.Millisecond)

	if echoed == nil {
		t.Fatal("no echo")
	}
	got := SNRFromCentiDB(echoed.Word(0))
	// The probe reads the register within a few channel updates of
	// our snapshot.
	if math.Abs(got-snrAtProbe) > 10 {
		t.Fatalf("probe read %.1f dB, channel was %.1f dB", got, snrAtProbe)
	}
	if got == 0 {
		t.Fatal("SNR register empty")
	}
}

func TestPerPacketSamplingTracksFastChannel(t *testing.T) {
	// The §2 claim: low-latency access to rapidly changing state.
	// Per-packet samples reconstruct the channel far better than
	// 100ms polling.
	sim := netsim.New(7)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 0))
	p2 := n.LinkHost(h2, sw, topo.Mbps(100, 0))
	n.PrimeL2(netsim.Millisecond)
	ap := NewAP(sim, sw, p2, DefaultAPConfig())

	var perPacketErr, polledErr, count float64
	polled := ap.SNRdB()
	sim.Every(sim.Now()+100*netsim.Millisecond, 100*netsim.Millisecond, func() {
		polled = ap.SNRdB()
	})
	h2.HandleDefault(func(pkt *core.Packet) {
		if pkt.TPP == nil {
			return
		}
		truth := ap.SNRdB()
		sample := SNRFromCentiDB(pkt.TPP.Word(0))
		perPacketErr += math.Abs(sample - truth)
		polledErr += math.Abs(polled - truth)
		count++
	})
	// One annotated packet per millisecond for 10 seconds.
	sim.Every(sim.Now()+netsim.Millisecond, netsim.Millisecond, func() {
		pkt := h1.NewPacket(h2.MAC, h2.IP, 1, 2, 100)
		pkt.TPP = SNRProgram(2)
		pkt.Eth.Type = core.EtherTypeTPP
		h1.Send(pkt)
	})
	sim.RunUntil(sim.Now() + 10*netsim.Second)

	if count == 0 {
		t.Fatal("no annotated packets arrived")
	}
	perPacketErr /= count
	polledErr /= count
	if perPacketErr >= polledErr {
		t.Fatalf("per-packet error %.2f dB not better than polling %.2f dB",
			perPacketErr, polledErr)
	}
	// And not just marginally: the fast path should be several times
	// more accurate on a fast-fading channel.
	if polledErr < 2*perPacketErr {
		t.Fatalf("improvement too small: per-packet %.2f dB vs polled %.2f dB",
			perPacketErr, polledErr)
	}
}
