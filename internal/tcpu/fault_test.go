package tcpu

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// faultyView fails every access after `okOps` successful ones, to walk
// each opcode's error path.
type faultyView struct {
	okOps int
	calls int
}

var errInjected = errors.New("injected memory fault")

func (v *faultyView) access() error {
	v.calls++
	if v.calls > v.okOps {
		return errInjected
	}
	return nil
}

func (v *faultyView) Load(a mem.Addr) (uint32, error) {
	if err := v.access(); err != nil {
		return 0, err
	}
	return 1, nil
}

func (v *faultyView) Store(a mem.Addr, val uint32) error { return v.access() }

func TestEveryOpcodeSurfacesMemoryFaults(t *testing.T) {
	sram := uint16(mem.SRAMBase)
	cases := []struct {
		name string
		tpp  func() *core.TPP
		ok   int // accesses that succeed before the fault
	}{
		{"LOAD", func() *core.TPP {
			return core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpLOAD, A: sram, B: 0}}, 1)
		}, 0},
		{"STORE", func() *core.TPP {
			return core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpSTORE, A: sram, B: 0}}, 1)
		}, 0},
		{"PUSH", func() *core.TPP {
			return core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpPUSH, A: sram}}, 1)
		}, 0},
		{"POP", func() *core.TPP {
			p := core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpPOP, A: sram}}, 1)
			p.Ptr = 4
			return p
		}, 0},
		{"CSTORE-load", func() *core.TPP {
			return core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpCSTORE, A: sram, B: 0}}, 3)
		}, 0},
		{"CSTORE-store", func() *core.TPP {
			p := core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpCSTORE, A: sram, B: 0}}, 3)
			p.SetWord(0, 1) // cond matches the view's load value 1
			return p
		}, 1},
		{"CEXEC", func() *core.TPP {
			return core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpCEXEC, A: sram, B: 0}}, 2)
		}, 0},
		{"ADD", func() *core.TPP {
			return core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpADD, A: sram, B: 0}}, 1)
		}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tpp := c.tpp()
			res := Exec(tpp, &faultyView{okOps: c.ok})
			if res.Fault == nil {
				t.Fatal("fault not surfaced")
			}
			if !errors.Is(res.Fault, errInjected) {
				t.Fatalf("unexpected fault: %v", res.Fault)
			}
			if tpp.Flags&core.FlagError == 0 {
				t.Fatal("FlagError not set")
			}
		})
	}
}

func TestCSTOREOutOfRangeOperands(t *testing.T) {
	view := newFakeView()
	// B+2 (the result slot) falls outside packet memory.
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCSTORE, A: uint16(sramAddr), B: 0},
	}, 2)
	if res := Exec(tpp, view); res.Fault == nil {
		t.Fatal("out-of-range CSTORE result slot accepted")
	}
	// cond slot itself out of range.
	tpp2 := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCSTORE, A: uint16(sramAddr), B: 5},
	}, 2)
	if res := Exec(tpp2, view); res.Fault == nil {
		t.Fatal("out-of-range CSTORE cond slot accepted")
	}
}

func TestCEXECOutOfRangeOperands(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(switchIDAddr), B: 1},
	}, 2) // value slot B+1 = 2 out of range
	if res := Exec(tpp, view); res.Fault == nil {
		t.Fatal("out-of-range CEXEC operand accepted")
	}
}

func TestLoadStoreOutOfRangeOperands(t *testing.T) {
	view := newFakeView()
	for _, op := range []core.Opcode{core.OpLOAD, core.OpSTORE, core.OpADD} {
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: op, A: uint16(sramAddr), B: 9},
		}, 2)
		if res := Exec(tpp, view); res.Fault == nil {
			t.Fatalf("%v with out-of-range packet word accepted", op)
		}
	}
}

func TestInvalidTPPFaultsBeforeExecution(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, nil, 1)
	tpp.Mode = 9 // structurally invalid
	res := Exec(tpp, view)
	if res.Fault == nil || res.Executed != 0 {
		t.Fatalf("invalid TPP executed: %+v", res)
	}
}

func TestHopModeOutOfRangeEffectiveAddress(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrHop, []core.Instruction{
		{Op: core.OpLOAD, A: uint16(switchIDAddr), B: 0},
	}, 4)
	tpp.HopLen = 8 // two words per hop
	// Two hops fit in the 4-word memory; the third hop's effective
	// word (4) is out of range.
	for hop := 0; hop < 2; hop++ {
		if res := Exec(tpp, view); res.Fault != nil {
			t.Fatalf("hop %d faulted early: %v", hop, res.Fault)
		}
	}
	res := Exec(tpp, view)
	if res.Fault == nil {
		t.Fatal("overflowing hop write accepted")
	}
	// Hop counter still advanced (the packet moved on).
	if tpp.Ptr != 3 {
		t.Fatalf("hop counter = %d", tpp.Ptr)
	}
}

// Regression: a wire-supplied stack pointer past the end of packet
// memory must make POP fault, not panic — switches execute
// attacker-controlled programs and cannot crash.
func TestPOPWithStackPointerPastMemoryFaults(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPOP, A: uint16(sramAddr)},
	}, 2)
	tpp.Ptr = 48 // aligned, beyond the 8 bytes of packet memory
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("POP panicked: %v", r)
		}
	}()
	res := Exec(tpp, view)
	if res.Fault == nil {
		t.Fatal("POP past packet memory accepted")
	}
	if tpp.Flags&core.FlagError == 0 {
		t.Fatal("fault did not set FlagError")
	}
}
