package tcpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// TestExecSpans checks the per-instruction span timeline: retire
// cycles follow the 1-instruction-per-cycle model with a 4-cycle
// latency, CSTORE stalls cost one extra cycle, and the terminating
// instruction is marked.
func TestExecSpans(t *testing.T) {
	view := newFakeView()
	sram := uint16(mem.SRAMBase + 1)
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: sram},         // retires at cycle 4
		{Op: core.OpCSTORE, A: sram, B: 1}, // success: stall, retires at 6
		{Op: core.OpCEXEC, A: sram, B: 4},  // predicate fails: halt at 7
		{Op: core.OpPUSH, A: sram},         // never executes
	}, 8)
	// CSTORE cond/src at words 1,2 (old value written to word 3):
	// SRAM starts at 0, so cond=0 succeeds and stores 9.
	tpp.SetWord(1, 0)
	tpp.SetWord(2, 9)
	// CEXEC mask/value at words 4,5: SRAM now holds 9, 9&0xFF != 1.
	tpp.SetWord(4, 0xFF)
	tpp.SetWord(5, 1)
	// The PUSH writes word 0 (Ptr starts at 0), clear of the operands.

	cfg := Config{MaxInstructions: 8, RecordSpans: true}
	r := cfg.Exec(tpp, view)
	if r.Fault != nil {
		t.Fatal(r.Fault)
	}
	if !r.Halted {
		t.Fatal("CEXEC should have halted execution")
	}
	if len(r.Spans) != 3 {
		t.Fatalf("spans = %d, want 3 (4th instruction never executes): %+v", len(r.Spans), r.Spans)
	}
	s0, s1, s2 := r.Spans[0], r.Spans[1], r.Spans[2]
	if s0.Op != core.OpPUSH || s0.RetireCycle != PipelineLatency || s0.Loads != 1 {
		t.Fatalf("span 0: %+v", s0)
	}
	if s1.Op != core.OpCSTORE || !s1.Stall || s1.RetireCycle != PipelineLatency+2 {
		t.Fatalf("span 1 (stall adds a cycle): %+v", s1)
	}
	if s2.Op != core.OpCEXEC || !s2.Halted || s2.RetireCycle != PipelineLatency+3 {
		t.Fatalf("span 2: %+v", s2)
	}
	if r.Cycles != s2.RetireCycle {
		t.Fatalf("Result.Cycles %d != last retire cycle %d", r.Cycles, s2.RetireCycle)
	}
	if s2.OverBudget() {
		t.Fatal("a 3-instruction program is well within the 300-cycle budget")
	}
}

// TestExecSpansDisabled checks that the default configuration records
// nothing and that Exec stays allocation-free without spans.
func TestExecSpansDisabled(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.SRAMBase)},
	}, 2)
	cfg := Config{MaxInstructions: 8}
	r := cfg.Exec(tpp, view)
	if r.Spans != nil {
		t.Fatalf("spans recorded without RecordSpans: %+v", r.Spans)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tpp.Ptr = 0
		cfg.Exec(tpp, view)
	})
	if allocs != 0 {
		t.Fatalf("span-free Exec allocates: %v allocs/op", allocs)
	}
}

// TestExecSpanFault checks the faulting instruction is marked in its
// span.
func TestExecSpanFault(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPOP, A: uint16(mem.SRAMBase)}, // empty stack: fault
	}, 2)
	cfg := Config{MaxInstructions: 8, RecordSpans: true}
	r := cfg.Exec(tpp, view)
	if r.Fault == nil {
		t.Fatal("POP on empty stack must fault")
	}
	if len(r.Spans) != 1 || !r.Spans[0].Fault {
		t.Fatalf("fault span: %+v", r.Spans)
	}
}
