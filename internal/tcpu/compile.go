package tcpu

import (
	"repro/internal/core"
	"repro/internal/mem"
)

// This file implements the §3.3 line-rate compilation argument in
// software (following the approach argued by Packet Transactions for
// P4 pipelines): a verified TPP is translated exactly once into a flat
// step table with opcode dispatch, addressing-mode branches and static
// validation resolved ahead of time, and the TCPU thereafter executes
// the compiled form directly.  The compiled path is byte-for-byte
// behaviorally identical to Config.Exec — same Result, same memory
// effects, same spans, same fault values in the same order — which the
// FuzzCompile differential target proves against every experiment
// program.

// stepKind is the pre-decoded dispatch index of one compiled
// instruction.  Exec dispatches on it with a switch of direct calls
// rather than through function pointers: an indirect call would defeat
// escape analysis of the Result pointer threaded through the steps and
// heap-allocate every execution.
type stepKind uint8

const (
	kNOP stepKind = iota
	kLOAD
	kSTORE
	kPUSH
	kPOP
	kCSTORE
	kCEXEC
	kADD
	kSUB
	kMAX
	// kBadMode faults PUSH/POP compiled under a non-stack addressing
	// mode; the mode check is resolved at compile time but the fault
	// must still fire at the instruction's position, after any earlier
	// instructions have run.
	kBadMode
	// kBadOp faults an unknown opcode at runtime.  It cannot be a
	// compile-time fault: a preceding CEXEC may halt execution before
	// the bad instruction, in which case the interpreter never faults.
	kBadOp
)

// cstep is one compiled instruction: a dispatch kind plus pre-decoded
// operands.
type cstep struct {
	kind stepKind
	a    mem.Addr // switch-memory operand
	b    int      // packet-memory word operand, relative to hopBase
	op   core.Opcode
}

// Program is the compiled form of one TPP program shape under one
// device Config.  It is immutable after Compile and safe to share
// across packets, hops and (future) parallel shards; Exec mutates only
// the packet and the Result.
type Program struct {
	cfg   Config
	steps []cstep
	// n, mode and version pin the static shape the program was
	// compiled from, so executors can cheaply reject a mismatched TPP.
	n       int
	mode    core.AddrMode
	version uint8
	// preFault is the static fault every execution of this shape hits
	// before the first instruction (program too long for the device, or
	// a head validation failure).  insFault is the static
	// per-instruction encoding fault; the interpreter checks it after
	// the dynamic header checks, so Exec preserves that order.
	preFault error
	insFault error
}

// Compile translates the program carried by t (its instruction
// section, addressing mode and version — the dynamic header fields and
// packet memory are ignored) into its compiled form under device
// config c.  Compile is total: programs that can never execute are
// compiled to a form that faults exactly as the interpreter would, and
// unknown opcodes become runtime-faulting steps because a preceding
// CEXEC may legitimately halt execution before reaching them.
func Compile(c Config, t *core.TPP) *Program {
	p := &Program{
		cfg:     c,
		n:       len(t.Ins),
		mode:    t.Mode,
		version: t.Version,
	}
	// Static prologue faults, in the interpreter's exact order: the
	// device length limit first, then the head validation.
	if p.n > c.maxIns() {
		p.preFault = c.faultTooLong(p.n)
		return p
	}
	if err := t.ValidateHead(); err != nil {
		p.preFault = err
		return p
	}
	if err := t.ValidateIns(); err != nil {
		p.insFault = err
		// The faulting execution never reaches the instruction loop,
		// so no steps are needed.
		return p
	}
	p.steps = make([]cstep, p.n)
	for i, in := range t.Ins {
		p.steps[i] = compileIns(in, t.Mode)
	}
	return p
}

func compileIns(in core.Instruction, mode core.AddrMode) cstep {
	s := cstep{a: mem.Addr(in.A), b: int(in.B), op: in.Op}
	switch in.Op {
	case core.OpNOP:
		s.kind = kNOP
	case core.OpLOAD:
		s.kind = kLOAD
	case core.OpSTORE:
		s.kind = kSTORE
	case core.OpPUSH:
		if mode != core.AddrStack {
			s.kind = kBadMode
		} else {
			s.kind = kPUSH
		}
	case core.OpPOP:
		if mode != core.AddrStack {
			s.kind = kBadMode
		} else {
			s.kind = kPOP
		}
	case core.OpCSTORE:
		s.kind = kCSTORE
	case core.OpCEXEC:
		s.kind = kCEXEC
	case core.OpADD:
		s.kind = kADD
	case core.OpSUB:
		s.kind = kSUB
	case core.OpMAX:
		s.kind = kMAX
	default:
		s.kind = kBadOp
	}
	return s
}

// Matches reports whether the program was compiled under a device
// configuration equivalent to c, i.e. whether executing it on a device
// configured with c is behaviorally identical to interpreting.
func (p *Program) Matches(c Config) bool {
	return p.cfg.maxIns() == c.maxIns() && p.cfg.RecordSpans == c.RecordSpans
}

// MatchesTPP reports whether t carries the static shape this program
// was compiled from.  It is a cheap guard against executing a stale
// attachment; equality of the instruction words themselves is the
// cache's responsibility.
func (p *Program) MatchesTPP(t *core.TPP) bool {
	return p.n == len(t.Ins) && p.mode == t.Mode && p.version == t.Version
}

// Exec runs the compiled program against view, with semantics
// identical to Config.Exec on the TPP it was compiled from.
//
//alloc:free
func (p *Program) Exec(t *core.TPP, view mem.View) (r Result) {
	defer func() {
		r.Cycles = cyclesFor(&r)
		if t.Mode == core.AddrHop {
			t.Ptr++
		}
		if r.Fault != nil {
			t.Flags |= core.FlagError
		}
	}()

	if p.preFault != nil {
		r.Fault = p.preFault
		return r
	}
	if err := t.ValidateDynamic(); err != nil {
		r.Fault = err
		return r
	}
	if p.insFault != nil {
		r.Fault = p.insFault
		return r
	}

	// Resolve the per-hop packet-memory base once; the interpreter
	// recomputes it per operand, but Ptr and HopLen are stable for the
	// duration of one execution (Ptr only advances in the defer).
	hopBase := 0
	if t.Mode == core.AddrHop {
		hopBase = int(t.Ptr) * int(t.HopLen/4)
	}

	for i := range p.steps {
		s := &p.steps[i]
		r.Executed++
		loads, stores, stalls := r.Loads, r.Stores, r.cstoreStalls
		var ok bool
		switch s.kind {
		case kNOP:
			ok = true
		case kLOAD:
			ok = stepLOAD(p, s, t, view, &r, hopBase)
		case kSTORE:
			ok = stepSTORE(p, s, t, view, &r, hopBase)
		case kPUSH:
			ok = stepPUSH(p, s, t, view, &r)
		case kPOP:
			ok = stepPOP(p, s, t, view, &r)
		case kCSTORE:
			ok = stepCSTORE(p, s, t, view, &r, hopBase)
		case kCEXEC:
			ok = stepCEXEC(p, s, t, view, &r, hopBase)
		case kADD, kSUB, kMAX:
			ok = stepArith(p, s, t, view, &r, hopBase, s.op)
		case kBadMode:
			//alloc:allow fault detail boxes the opcode; faulting programs leave the hot path
			r.Fault = p.cfg.faultMode(s.op)
		case kBadOp:
			//alloc:allow fault detail boxes the opcode; faulting programs leave the hot path
			r.Fault = p.cfg.faultOpcode(s.op)
		}
		if p.cfg.RecordSpans {
			if r.Spans == nil {
				//alloc:allow per-instruction spans allocate only under tracing (RecordSpans)
				r.Spans = make([]InsSpan, 0, p.n)
			}
			r.Spans = append(r.Spans, InsSpan{
				Index:       r.Executed - 1,
				Op:          s.op,
				RetireCycle: PipelineLatency + r.Executed - 1 + r.cstoreStalls,
				Loads:       r.Loads - loads,
				Stores:      r.Stores - stores,
				Stall:       r.cstoreStalls > stalls,
				Fault:       r.Fault != nil,
				Halted:      r.Halted,
			})
		}
		if !ok {
			return r
		}
	}
	return r
}

//alloc:free
func stepLOAD(p *Program, s *cstep, t *core.TPP, view mem.View, r *Result, hopBase int) bool {
	v, err := view.Load(s.a)
	if err != nil {
		r.Fault = err
		return false
	}
	r.Loads++
	return p.cfg.putWord(t, r, hopBase+s.b, v)
}

//alloc:free
func stepSTORE(p *Program, s *cstep, t *core.TPP, view mem.View, r *Result, hopBase int) bool {
	v, ok := p.cfg.getWord(t, r, hopBase+s.b)
	if !ok {
		return false
	}
	if err := view.Store(s.a, v); err != nil {
		r.Fault = err
		return false
	}
	r.Stores++
	return true
}

//alloc:free
func stepPUSH(p *Program, s *cstep, t *core.TPP, view mem.View, r *Result) bool {
	v, err := view.Load(s.a)
	if err != nil {
		r.Fault = err
		return false
	}
	r.Loads++
	if int(t.Ptr)+4 > len(t.Mem) {
		//alloc:allow fault detail boxes the operands; faulting programs leave the hot path
		r.Fault = p.cfg.faultStackOverflow(t.Ptr, len(t.Mem))
		return false
	}
	t.SetWord(int(t.Ptr)/4, v)
	t.Ptr += 4
	return true
}

//alloc:free
func stepPOP(p *Program, s *cstep, t *core.TPP, view mem.View, r *Result) bool {
	if t.Ptr < 4 {
		//alloc:allow fault detail boxes the operands; faulting programs leave the hot path
		r.Fault = p.cfg.faultStackUnderflow(t.Ptr)
		return false
	}
	if int(t.Ptr) > len(t.Mem) {
		//alloc:allow fault detail boxes the operands; faulting programs leave the hot path
		r.Fault = p.cfg.faultStackOOB(t.Ptr, len(t.Mem))
		return false
	}
	t.Ptr -= 4
	v := t.Word(int(t.Ptr) / 4)
	if err := view.Store(s.a, v); err != nil {
		r.Fault = err
		return false
	}
	r.Stores++
	return true
}

//alloc:free
func stepCSTORE(p *Program, s *cstep, t *core.TPP, view mem.View, r *Result, hopBase int) bool {
	base := hopBase + s.b
	cond, ok := p.cfg.getWord(t, r, base)
	if !ok {
		return false
	}
	src, ok := p.cfg.getWord(t, r, base+1)
	if !ok {
		return false
	}
	old, err := p.cfg.condStore(view, s.a, cond, src, r)
	if err != nil {
		r.Fault = err
		return false
	}
	return p.cfg.putWord(t, r, base+2, old)
}

//alloc:free
func stepCEXEC(p *Program, s *cstep, t *core.TPP, view mem.View, r *Result, hopBase int) bool {
	base := hopBase + s.b
	mask, ok := p.cfg.getWord(t, r, base)
	if !ok {
		return false
	}
	val, ok := p.cfg.getWord(t, r, base+1)
	if !ok {
		return false
	}
	v, err := view.Load(s.a)
	if err != nil {
		r.Fault = err
		return false
	}
	r.Loads++
	if v&mask != val {
		r.Halted = true
		return false
	}
	return true
}

//alloc:free
func stepArith(p *Program, s *cstep, t *core.TPP, view mem.View, r *Result, hopBase int, op core.Opcode) bool {
	v, err := view.Load(s.a)
	if err != nil {
		r.Fault = err
		return false
	}
	r.Loads++
	w := hopBase + s.b
	cur, ok := p.cfg.getWord(t, r, w)
	if !ok {
		return false
	}
	switch op {
	case core.OpADD:
		cur += v
	case core.OpSUB:
		cur -= v
	case core.OpMAX:
		if v > cur {
			cur = v
		}
	}
	return p.cfg.putWord(t, r, w, cur)
}
