package tcpu

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// fakeView is a map-backed memory view: statistics namespaces behave as
// read-only, SRAM and port scratch as writable, mirroring the real
// protection map.
type fakeView struct {
	words map[mem.Addr]uint32
}

func newFakeView() *fakeView { return &fakeView{words: make(map[mem.Addr]uint32)} }

func (v *fakeView) Load(a mem.Addr) (uint32, error) {
	if mem.NamespaceOf(a) == mem.NSInvalid {
		return 0, mem.ErrUnmapped(a, false)
	}
	return v.words[a], nil
}

func (v *fakeView) Store(a mem.Addr, val uint32) error {
	if mem.NamespaceOf(a) == mem.NSInvalid {
		return mem.ErrUnmapped(a, true)
	}
	if !mem.Writable(a) {
		return mem.ErrReadOnly(a)
	}
	v.words[a] = val
	return nil
}

// lockedView adds an atomic CondStore, as the ASIC's memory bus does.
type lockedView struct {
	mu sync.Mutex
	fakeView
}

func (v *lockedView) CondStore(a mem.Addr, cond, val uint32) (uint32, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	old, err := v.Load(a)
	if err != nil {
		return 0, err
	}
	if old == cond {
		if err := v.Store(a, val); err != nil {
			return 0, err
		}
	}
	return old, nil
}

func (v *lockedView) Store(a mem.Addr, val uint32) error {
	// Plain stores also go through the bus lock in the real ASIC; the
	// fake only needs CondStore to be atomic for the tests.
	return v.fakeView.Store(a, val)
}

var (
	queueSizeAddr = mem.PortBase + mem.PortQueueSize
	switchIDAddr  = mem.SwitchBase + mem.SwitchID
	sramAddr      = mem.SRAMBase + 4
	rateRegAddr   = mem.PortBase + mem.PortScratchBase
)

func TestPushAdvancesSP(t *testing.T) {
	// The Figure 1 walk: PUSH [Queue:QueueSize] on three hops, SP
	// advancing 0x0 -> 0x4 -> 0x8 -> 0xc.
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(queueSizeAddr)},
	}, 3)
	for hop, q := range []uint32{0x00, 0xa0, 0x0e} {
		view.words[queueSizeAddr] = q
		res := Exec(tpp, view)
		if res.Fault != nil || res.Halted {
			t.Fatalf("hop %d: %+v", hop, res)
		}
		if want := uint16(4 * (hop + 1)); tpp.Ptr != want {
			t.Fatalf("hop %d: SP = %#x, want %#x", hop, tpp.Ptr, want)
		}
	}
	for i, want := range []uint32{0x00, 0xa0, 0x0e} {
		if got := tpp.Word(i); got != want {
			t.Errorf("mem[%d] = %#x, want %#x", i, got, want)
		}
	}
}

func TestPushOverflowFaults(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(queueSizeAddr)},
	}, 1)
	if res := Exec(tpp, view); res.Fault != nil {
		t.Fatalf("first push failed: %v", res.Fault)
	}
	res := Exec(tpp, view)
	if res.Fault == nil {
		t.Fatal("overflowing push did not fault")
	}
	if tpp.Flags&core.FlagError == 0 {
		t.Fatal("FlagError not set on fault")
	}
}

func TestPopMovesValueToSwitch(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPOP, A: uint16(sramAddr)},
	}, 2)
	tpp.SetWord(0, 1234)
	tpp.Ptr = 4
	res := Exec(tpp, view)
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if tpp.Ptr != 0 {
		t.Errorf("SP after POP = %d", tpp.Ptr)
	}
	if view.words[sramAddr] != 1234 {
		t.Errorf("switch word = %d", view.words[sramAddr])
	}
}

func TestPopEmptyStackFaults(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPOP, A: uint16(sramAddr)},
	}, 2)
	if res := Exec(tpp, view); res.Fault == nil {
		t.Fatal("POP on empty stack did not fault")
	}
}

func TestPushPopRequireStackMode(t *testing.T) {
	view := newFakeView()
	for _, op := range []core.Opcode{core.OpPUSH, core.OpPOP} {
		tpp := core.NewTPP(core.AddrHop, []core.Instruction{{Op: op, A: uint16(sramAddr)}}, 4)
		tpp.HopLen = 4
		if res := Exec(tpp, view); res.Fault == nil {
			t.Errorf("%v in hop mode did not fault", op)
		}
	}
}

func TestLoadHopAddressing(t *testing.T) {
	// "LOAD [Switch:SwitchID], [Packet:hop[1]] will copy the switch ID
	// into PacketMemory[1] on the first hop, PacketMemory[17] on the
	// second hop" (with 16-byte hops; we use word indexes).
	view := newFakeView()
	tpp := core.NewTPP(core.AddrHop, []core.Instruction{
		{Op: core.OpLOAD, A: uint16(switchIDAddr), B: 1},
	}, 8)
	tpp.HopLen = 16 // 4 words per hop
	view.words[switchIDAddr] = 0xA
	res := Exec(tpp, view)
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if tpp.Ptr != 1 {
		t.Fatalf("hop counter = %d, want 1", tpp.Ptr)
	}
	view.words[switchIDAddr] = 0xB
	if res := Exec(tpp, view); res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if got := tpp.Word(1); got != 0xA {
		t.Errorf("hop 0 slot = %#x, want 0xA", got)
	}
	if got := tpp.Word(5); got != 0xB {
		t.Errorf("hop 1 slot = %#x, want 0xB", got)
	}
}

func TestStoreWritesSwitchMemory(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(rateRegAddr), B: 0},
	}, 1)
	tpp.SetWord(0, 125_000)
	res := Exec(tpp, view)
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if view.words[rateRegAddr] != 125_000 {
		t.Fatalf("rate register = %d", view.words[rateRegAddr])
	}
	if res.Stores != 1 {
		t.Fatalf("Stores = %d", res.Stores)
	}
}

func TestStoreToReadOnlyFaults(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(queueSizeAddr), B: 0},
	}, 1)
	res := Exec(tpp, view)
	if res.Fault == nil {
		t.Fatal("store to a statistics word must fault")
	}
	if !strings.Contains(res.Fault.Error(), "read-only") {
		t.Fatalf("unexpected fault: %v", res.Fault)
	}
}

func TestCEXECGate(t *testing.T) {
	// §2.2 phase 3: CEXEC [Switch:SwitchID], 0xFFFFFFFF, $Bottleneck
	// followed by a STORE executes only on the bottleneck switch.
	view := newFakeView()
	view.words[switchIDAddr] = 7
	mk := func(target uint32) *core.TPP {
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpCEXEC, A: uint16(switchIDAddr), B: 0},
			{Op: core.OpSTORE, A: uint16(rateRegAddr), B: 2},
		}, 3)
		tpp.SetWord(0, 0xFFFFFFFF) // mask
		tpp.SetWord(1, target)     // value
		tpp.SetWord(2, 999)        // rate to install
		return tpp
	}

	res := Exec(mk(7), view)
	if res.Halted || res.Fault != nil || view.words[rateRegAddr] != 999 {
		t.Fatalf("matching CEXEC: %+v, reg=%d", res, view.words[rateRegAddr])
	}

	view.words[rateRegAddr] = 0
	res = Exec(mk(8), view)
	if !res.Halted {
		t.Fatal("non-matching CEXEC did not halt")
	}
	if res.Executed != 1 {
		t.Fatalf("Executed = %d, want 1 (STORE skipped)", res.Executed)
	}
	if view.words[rateRegAddr] != 0 {
		t.Fatal("STORE after failed CEXEC executed")
	}
	if res.Fault != nil {
		t.Fatal("failed CEXEC is not a fault")
	}
}

func TestCEXECMasking(t *testing.T) {
	view := newFakeView()
	view.words[switchIDAddr] = 0x12345678
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(switchIDAddr), B: 0},
		{Op: core.OpPUSH, A: uint16(switchIDAddr)},
	}, 3)
	tpp.SetWord(0, 0x0000FF00) // mask: third byte
	tpp.SetWord(1, 0x00005600)
	res := Exec(tpp, view)
	if res.Halted {
		t.Fatal("masked compare should match")
	}
	if tpp.Ptr == 0 {
		t.Fatal("PUSH after matching CEXEC did not run")
	}
}

func TestCSTORESemantics(t *testing.T) {
	view := newFakeView()
	view.words[sramAddr] = 10
	mk := func(cond, src uint32) *core.TPP {
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpCSTORE, A: uint16(sramAddr), B: 0},
		}, 3)
		tpp.SetWord(0, cond)
		tpp.SetWord(1, src)
		return tpp
	}

	// Matching condition: store happens, old value written back.
	tpp := mk(10, 42)
	res := Exec(tpp, view)
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if view.words[sramAddr] != 42 {
		t.Fatalf("CSTORE did not store: %d", view.words[sramAddr])
	}
	if tpp.Word(2) != 10 {
		t.Fatalf("old value not written back: %d", tpp.Word(2))
	}
	if res.Stores != 1 {
		t.Fatalf("Stores = %d", res.Stores)
	}

	// Non-matching condition: no store, old value still reported.
	tpp = mk(10, 7)
	res = Exec(tpp, view)
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if view.words[sramAddr] != 42 {
		t.Fatalf("CSTORE stored despite mismatch: %d", view.words[sramAddr])
	}
	if tpp.Word(2) != 42 {
		t.Fatalf("old value not written back: %d", tpp.Word(2))
	}
	if res.Stores != 0 {
		t.Fatalf("Stores = %d", res.Stores)
	}
}

func TestADDAccumulates(t *testing.T) {
	view := newFakeView()
	view.words[queueSizeAddr] = 100
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpADD, A: uint16(queueSizeAddr), B: 0},
	}, 1)
	tpp.SetWord(0, 11)
	if res := Exec(tpp, view); res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if got := tpp.Word(0); got != 111 {
		t.Fatalf("ADD result = %d", got)
	}
}

func TestProgramLengthLimit(t *testing.T) {
	view := newFakeView()
	ins := make([]core.Instruction, 6)
	for i := range ins {
		ins[i] = core.Instruction{Op: core.OpNOP}
	}
	tpp := core.NewTPP(core.AddrStack, ins, 1)
	if res := Exec(tpp, view); res.Fault == nil {
		t.Fatal("6 instructions must exceed the default 5-instruction limit")
	}
	if res := (Config{MaxInstructions: 16}).Exec(tpp, view); res.Fault != nil {
		t.Fatalf("larger device limit should accept: %v", res.Fault)
	}
}

func TestUnmappedAddressFaults(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: 0xFFF}, // inside PortAbs window: mapped
	}, 1)
	if res := Exec(tpp, view); res.Fault != nil {
		t.Fatalf("PortAbs read should work on fake view: %v", res.Fault)
	}
}

func TestHopCounterAdvancesEvenWhenHalted(t *testing.T) {
	view := newFakeView()
	view.words[switchIDAddr] = 1
	tpp := core.NewTPP(core.AddrHop, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(switchIDAddr), B: 0},
	}, 4)
	tpp.HopLen = 8
	tpp.SetWord(0, 0xFFFFFFFF)
	tpp.SetWord(1, 99) // never matches
	res := Exec(tpp, view)
	if !res.Halted {
		t.Fatal("expected halt")
	}
	if tpp.Ptr != 1 {
		t.Fatalf("hop counter = %d, want 1", tpp.Ptr)
	}
}

func TestCyclesModel(t *testing.T) {
	// Figure 5: k instructions retire in k+3 cycles (4-cycle latency,
	// 1 instruction/cycle throughput).
	view := newFakeView()
	for k := 1; k <= 5; k++ {
		ins := make([]core.Instruction, k)
		for i := range ins {
			ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(queueSizeAddr)}
		}
		tpp := core.NewTPP(core.AddrStack, ins, k)
		res := Exec(tpp, view)
		if res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if want := PipelineLatency + k - 1; res.Cycles != want {
			t.Errorf("k=%d: Cycles = %d, want %d", k, res.Cycles, want)
		}
		if !res.WithinBudget() {
			t.Errorf("k=%d: exceeds the 300-cycle budget", k)
		}
	}
	// Empty program: zero cycles.
	empty := core.NewTPP(core.AddrStack, nil, 0)
	if res := Exec(empty, view); res.Cycles != 0 {
		t.Errorf("empty program cycles = %d", res.Cycles)
	}
	// A successful CSTORE stalls one extra cycle.
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCSTORE, A: uint16(sramAddr), B: 0},
	}, 3)
	res := Exec(tpp, view)
	if res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if want := PipelineLatency + 1; res.Cycles != want {
		t.Errorf("CSTORE cycles = %d, want %d", res.Cycles, want)
	}
	if CyclesForProgram(5, 1) != 9 || CyclesForProgram(0, 0) != 0 {
		t.Error("CyclesForProgram formula wrong")
	}
}

func TestConcurrentCSTOREExactlyOneWinner(t *testing.T) {
	// §2.2: "we support a conditional store instruction to provide a
	// stronger (linearizable) notion of consistency".  N writers race
	// to CSTORE their id into a slot initialized to 0; exactly one
	// must win each round.
	view := &lockedView{fakeView: *newFakeView()}
	const writers = 16
	const rounds = 50
	for round := 0; round < rounds; round++ {
		view.words[sramAddr] = 0
		var wg sync.WaitGroup
		wins := make(chan uint32, writers)
		for w := 1; w <= writers; w++ {
			wg.Add(1)
			go func(id uint32) {
				defer wg.Done()
				tpp := core.NewTPP(core.AddrStack, []core.Instruction{
					{Op: core.OpCSTORE, A: uint16(sramAddr), B: 0},
				}, 3)
				tpp.SetWord(0, 0)  // cond: unclaimed
				tpp.SetWord(1, id) // src: my id
				res := Exec(tpp, view)
				if res.Fault != nil {
					t.Errorf("writer %d: %v", id, res.Fault)
					return
				}
				if tpp.Word(2) == 0 { // observed old value: I won
					wins <- id
				}
			}(uint32(w))
		}
		wg.Wait()
		close(wins)
		var winners []uint32
		for id := range wins {
			winners = append(winners, id)
		}
		if len(winners) != 1 {
			t.Fatalf("round %d: %d winners (%v), want exactly 1", round, len(winners), winners)
		}
		if view.words[sramAddr] != winners[0] {
			t.Fatalf("round %d: slot holds %d, winner was %d", round, view.words[sramAddr], winners[0])
		}
	}
}

func TestExecResultCounts(t *testing.T) {
	view := newFakeView()
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(switchIDAddr)},
		{Op: core.OpPUSH, A: uint16(queueSizeAddr)},
		{Op: core.OpPOP, A: uint16(sramAddr)},
	}, 4)
	res := Exec(tpp, view)
	if res.Executed != 3 || res.Loads != 2 || res.Stores != 1 {
		t.Fatalf("counts = %+v", res)
	}
}

func TestCheckLineRate(t *testing.T) {
	// The paper's own example: 64 ports x 10GbE at 64-byte packets is
	// "about a billion packets/second".
	c := CheckLineRate(64, 10, 64, 5, 1.0)
	if c.PacketsPerSecond < 0.9e9 || c.PacketsPerSecond > 1.1e9 {
		t.Fatalf("pps = %.3g, the paper says ~1e9", c.PacketsPerSecond)
	}
	// Five instructions per packet at 1 GHz needs several parallel
	// TCPU pipelines — which the per-port-group pipeline replication
	// of real ASICs provides.
	if c.TCPUsNeeded < 5 || c.TCPUsNeeded > 6 {
		t.Fatalf("TCPUs needed = %d", c.TCPUsNeeded)
	}
	// Sustained throughput is what line rate needs: with 1
	// instruction retiring per cycle, each pipeline must only have at
	// least insPerPkt cycles between packet arrivals (the 4-cycle
	// latency overlaps across back-to-back packets — that is the
	// point of pipelining).
	if c.PerPacketBudgetCycles < 5 {
		t.Fatalf("per-packet budget %.1f cycles below 5 instructions", c.PerPacketBudgetCycles)
	}
	// A single-port 1GbE switch needs just one TCPU.
	if one := CheckLineRate(1, 1, 64, 5, 1.0); one.TCPUsNeeded != 1 {
		t.Fatalf("small switch needs %d TCPUs", one.TCPUsNeeded)
	}
}
