package tcpu

import (
	"errors"
	"fmt"
)

// Execution fault sentinels.  A switch executes attacker-controlled
// programs at line rate, so the fault path is a hot path too: with
// span recording off the TCPU returns these preallocated values
// directly and a faulting packet costs zero allocations.  With
// Config.RecordSpans on (tracing), faults are wrapped with formatted
// detail; errors.Is matches the sentinel either way.
var (
	// ErrProgramTooLong: the program exceeds the device instruction
	// limit (Config.MaxInstructions).
	ErrProgramTooLong = errors.New("tcpu: program length exceeds device limit")
	// ErrModeMismatch: PUSH or POP outside stack addressing mode.
	ErrModeMismatch = errors.New("tcpu: PUSH/POP requires stack addressing mode")
	// ErrStackOverflow: PUSH with no packet memory left.
	ErrStackOverflow = errors.New("tcpu: packet memory exhausted")
	// ErrStackUnderflow: POP on an empty stack.
	ErrStackUnderflow = errors.New("tcpu: POP on empty stack")
	// ErrStackOOB: POP with a wire-supplied stack pointer past packet
	// memory.
	ErrStackOOB = errors.New("tcpu: stack pointer past packet memory")
	// ErrPacketMemOOB: a packet-memory operand resolves outside the
	// program's packet memory.
	ErrPacketMemOOB = errors.New("tcpu: packet memory word out of range")
	// ErrUnknownOpcode: the opcode is outside the instruction set.
	ErrUnknownOpcode = errors.New("tcpu: unknown opcode")
)

// detail reports whether faults should carry formatted context: only
// when per-instruction spans (tracing) are on, so the span-off fault
// path never formats or allocates.
func (c Config) detail() bool { return c.RecordSpans }

func (c Config) faultTooLong(n int) error {
	if !c.detail() {
		return ErrProgramTooLong
	}
	return fmt.Errorf("%w: %d instructions, limit %d", ErrProgramTooLong, n, c.maxIns())
}

func (c Config) faultMode(op fmt.Stringer) error {
	if !c.detail() {
		return ErrModeMismatch
	}
	return fmt.Errorf("%w: %v outside stack mode", ErrModeMismatch, op)
}

func (c Config) faultStackOverflow(sp uint16, memBytes int) error {
	if !c.detail() {
		return ErrStackOverflow
	}
	return fmt.Errorf("%w: SP=%d, mem=%d bytes", ErrStackOverflow, sp, memBytes)
}

func (c Config) faultStackUnderflow(sp uint16) error {
	if !c.detail() {
		return ErrStackUnderflow
	}
	return fmt.Errorf("%w: SP=%d", ErrStackUnderflow, sp)
}

func (c Config) faultStackOOB(sp uint16, memBytes int) error {
	if !c.detail() {
		return ErrStackOOB
	}
	return fmt.Errorf("%w: SP=%d, mem=%d bytes", ErrStackOOB, sp, memBytes)
}

func (c Config) faultPacketMem(i, words int) error {
	if !c.detail() {
		return ErrPacketMemOOB
	}
	return fmt.Errorf("%w: word %d of %d", ErrPacketMemOOB, i, words)
}

func (c Config) faultOpcode(op fmt.Stringer) error {
	if !c.detail() {
		return ErrUnknownOpcode
	}
	return fmt.Errorf("%w: %v", ErrUnknownOpcode, op)
}
