package tcpu

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

// experimentPrograms returns one TPP per distinct program the
// experiments inject, reconstructed from their construction sites, plus
// the header state (pre-filled memory, stack pointer, hop-mode fields)
// each sender sets.  They are both the differential-test corpus and the
// FuzzCompile seeds, so the compiled path is proven identical to the
// interpreter on exactly the programs the paper's tasks run.
func experimentPrograms() map[string]*core.TPP {
	sramStat := uint16(mem.SRAMBase + 3)
	swID := uint16(mem.SwitchBase + mem.SwitchID)
	swEpoch := uint16(mem.SwitchBase + mem.SwitchEpoch)
	progs := map[string]*core.TPP{}

	// microburst.TelemetryProgram: the §2.1 per-hop queue snapshot.
	progs["microburst-telemetry"] = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
	}, 4)

	// microburst.BreakdownProgram: queue bytes plus drain capacity.
	progs["microburst-breakdown"] = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
		{Op: core.OpPUSH, A: uint16(mem.PortBase + mem.PortCapacity)},
	}, 8)

	// ndb.TraceProgram: the §2.3 four-word per-hop trace.
	progs["ndb-trace"] = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: swID},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketMatchedID)},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketInputPort)},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketMatchedVer)},
	}, 20)

	// wireless.SNRProgram: per-hop port SNR.
	progs["wireless-snr"] = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.PortBase + mem.PortSNR)},
	}, 3)

	// rcp.StarController.sendUpdate: gated rate write.
	rcpUpdate := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: swID, B: 0},
		{Op: core.OpSTORE, A: sramStat, B: 2},
	}, 3)
	rcpUpdate.SetWord(0, 0xFFFFFFFF)
	rcpUpdate.SetWord(1, 7)
	rcpUpdate.SetWord(2, 123456)
	rcpUpdate.Ptr = 12
	progs["rcp-star-update"] = rcpUpdate

	// accounting.Counter.readRetry: gated value+epoch read.
	acctRead := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: swID, B: 0},
		{Op: core.OpLOAD, A: sramStat, B: 2},
		{Op: core.OpLOAD, A: swEpoch, B: 3},
	}, 4)
	acctRead.SetWord(0, 0xFFFFFFFF)
	acctRead.SetWord(1, 7)
	progs["accounting-read"] = acctRead

	// accounting linearizable add: gated CSTORE.
	acctAdd := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: swID, B: 0},
		{Op: core.OpCSTORE, A: sramStat, B: 2},
	}, 5)
	acctAdd.SetWord(0, 0xFFFFFFFF)
	acctAdd.SetWord(1, 7)
	acctAdd.SetWord(2, 10)
	acctAdd.SetWord(3, 14)
	progs["accounting-cstore"] = acctAdd

	// accounting racy add: gated blind STORE.
	acctRacy := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: swID, B: 0},
		{Op: core.OpSTORE, A: sramStat, B: 2},
	}, 3)
	acctRacy.SetWord(0, 0xFFFFFFFF)
	acctRacy.SetWord(1, 7)
	acctRacy.SetWord(2, 99)
	progs["accounting-racy"] = acctRacy

	// inband scenario RTT measure: single LOAD.
	progs["inband-measure"] = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpLOAD, A: swID, B: 0},
	}, 1)

	// inband.Writer: gated CSTORE plus epoch read.
	inbandW := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: swID, B: 0},
		{Op: core.OpCSTORE, A: sramStat, B: 2},
		{Op: core.OpLOAD, A: swEpoch, B: 5},
	}, 6)
	inbandW.SetWord(0, 0xFFFFFFFF)
	inbandW.SetWord(1, 7)
	inbandW.SetWord(2, 4)
	inbandW.SetWord(3, 5)
	progs["inband-writer"] = inbandW

	// endhost.GatedChunkProgram: gate plus a LOAD sweep.
	gated := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: swID, B: 0},
		{Op: core.OpLOAD, A: sramStat, B: 3},
		{Op: core.OpLOAD, A: sramStat + 1, B: 4},
	}, 5)
	gated.SetWord(0, 0xFFFFFFFF)
	gated.SetWord(1, 7)
	progs["endhost-gated-chunk"] = gated

	// endhost.CollectProgram: a PUSH per statistic.
	progs["endhost-collect"] = core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
		{Op: core.OpPUSH, A: uint16(mem.PortBase + mem.PortCapacity)},
	}, 6)

	// faults rogue tenant: a blind forged STORE.
	rogue := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: sramStat, B: 0},
	}, 1)
	rogue.SetWord(0, 0xDEADBEEF)
	progs["faults-rogue-write"] = rogue

	// Hop-addressed variant of the ndb trace (the DESIGN.md §5
	// addressing-mode ablation).
	hop := core.NewTPP(core.AddrHop, []core.Instruction{
		{Op: core.OpLOAD, A: swID, B: 0},
		{Op: core.OpLOAD, A: uint16(mem.QueueBase + mem.QueueBytes), B: 1},
	}, 8)
	hop.HopLen = 8
	progs["hop-mode-trace"] = hop

	return progs
}

// diffViews returns two identically pre-seeded views, one for the
// interpreter and one for the compiled program.
func diffViews() (*fakeView, *fakeView) {
	seed := func() *fakeView {
		v := newFakeView()
		v.words[mem.Addr(mem.SwitchBase+mem.SwitchID)] = 7
		v.words[mem.Addr(mem.QueueBase+mem.QueueBytes)] = 1500
		v.words[mem.Addr(mem.SRAMBase+3)] = 10
		return v
	}
	return seed(), seed()
}

// diffExec runs t through the interpreter and the compiled path under
// cfg and fails the test unless every observable — the Result, the
// mutated TPP, and the view's memory — is identical.
func diffExec(t *testing.T, tpp *core.TPP, cfg Config) {
	t.Helper()
	ti, tc := tpp.Clone(), tpp.Clone()
	vi, vc := diffViews()

	ri := cfg.Exec(ti, vi)
	rc := Compile(cfg, tc).Exec(tc, vc)

	if (ri.Fault == nil) != (rc.Fault == nil) {
		t.Fatalf("fault mismatch: interpreter %v, compiled %v", ri.Fault, rc.Fault)
	}
	if ri.Fault != nil && ri.Fault.Error() != rc.Fault.Error() {
		t.Fatalf("fault text mismatch:\n  interpreter: %v\n  compiled:    %v", ri.Fault, rc.Fault)
	}
	ri.Fault, rc.Fault = nil, nil
	if fmt.Sprintf("%+v", ri) != fmt.Sprintf("%+v", rc) {
		t.Fatalf("result mismatch:\n  interpreter: %+v\n  compiled:    %+v", ri, rc)
	}
	if ti.Ptr != tc.Ptr || ti.Flags != tc.Flags || ti.HopLen != tc.HopLen {
		t.Fatalf("TPP header mismatch: interpreter ptr=%d flags=%x, compiled ptr=%d flags=%x",
			ti.Ptr, ti.Flags, tc.Ptr, tc.Flags)
	}
	if !bytes.Equal(ti.Mem, tc.Mem) {
		t.Fatalf("packet memory mismatch:\n  interpreter: %x\n  compiled:    %x", ti.Mem, tc.Mem)
	}
	if len(vi.words) != len(vc.words) {
		t.Fatalf("view word counts differ: %d vs %d", len(vi.words), len(vc.words))
	}
	for a, w := range vi.words {
		if vc.words[a] != w {
			t.Fatalf("view word %v: interpreter %d, compiled %d", a, w, vc.words[a])
		}
	}
}

// TestCompiledMatchesInterpreter proves the compiled path behaviorally
// identical to the interpreter on every experiment program, across
// device limits (including ones the programs exceed) and span
// recording.
func TestCompiledMatchesInterpreter(t *testing.T) {
	for name, prog := range experimentPrograms() {
		for _, maxIns := range []int{0, 2, 16} {
			for _, spans := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/max%d/spans=%v", name, maxIns, spans), func(t *testing.T) {
					diffExec(t, prog, Config{MaxInstructions: maxIns, RecordSpans: spans})
				})
			}
		}
	}
}

// TestCompiledMatchesInterpreterOnFaults covers shapes the verifier
// would reject but a switch must still fault identically on: bad
// version, bad mode, misaligned header fields, stack misuse, unknown
// opcodes, and unknown opcodes shadowed by a halting CEXEC.
func TestCompiledMatchesInterpreterOnFaults(t *testing.T) {
	sram := uint16(mem.SRAMBase)
	mk := func(mut func(*core.TPP)) *core.TPP {
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
		}, 2)
		mut(tpp)
		return tpp
	}
	cases := map[string]*core.TPP{
		"bad-version":    mk(func(t *core.TPP) { t.Version = 9 }),
		"bad-mode":       mk(func(t *core.TPP) { t.Mode = 3 }),
		"misaligned-ptr": mk(func(t *core.TPP) { t.Ptr = 3 }),
		"push-overflow":  mk(func(t *core.TPP) { t.Ptr = 8 }),
		"pop-underflow": core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpPOP, A: sram}}, 2),
		"push-in-hop-mode": func() *core.TPP {
			t := core.NewTPP(core.AddrHop, []core.Instruction{
				{Op: core.OpPUSH, A: sram}}, 2)
			t.HopLen = 4
			return t
		}(),
		"unknown-opcode": core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: 200, A: sram}}, 1),
		"unknown-opcode-after-halting-cexec": func() *core.TPP {
			t := core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
				{Op: 200, A: sram},
			}, 2)
			t.SetWord(0, 0xFFFFFFFF)
			t.SetWord(1, 12345) // never matches SwitchID 7: CEXEC halts first
			return t
		}(),
		"packet-mem-oob": core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpLOAD, A: uint16(mem.SwitchBase + mem.SwitchID), B: 9}}, 2),
		"too-long": core.NewTPP(core.AddrStack, make([]core.Instruction, 7), 1),
	}
	for name, prog := range cases {
		for _, spans := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/spans=%v", name, spans), func(t *testing.T) {
				diffExec(t, prog, Config{MaxInstructions: 5, RecordSpans: spans})
			})
		}
	}
}

// FuzzCompile is the differential fuzz target the compilation pass is
// gated on: any parseable TPP must execute identically through the
// interpreter and the compiled path, under a fuzzed device limit and
// with spans on and off.  Seeds are the wire bytes of every experiment
// program.
func FuzzCompile(f *testing.F) {
	for _, prog := range experimentPrograms() {
		f.Add(prog.AppendTo(nil), uint8(5))
	}
	// A corrupt header and an unknown-opcode body, so the fault paths
	// start covered.
	bad := core.NewTPP(core.AddrStack, []core.Instruction{{Op: 99, A: 1, B: 1}}, 1)
	f.Add(bad.AppendTo(nil), uint8(1))

	f.Fuzz(func(t *testing.T, wire []byte, maxIns uint8) {
		var tpp core.TPP
		if _, err := core.ParseTPP(wire, &tpp); err != nil {
			return // not a TPP; parsing is fuzzed elsewhere
		}
		for _, spans := range []bool{false, true} {
			cfg := Config{MaxInstructions: int(maxIns % 32), RecordSpans: spans}
			ti, tc := tpp.Clone(), tpp.Clone()
			vi, vc := diffViews()
			ri := cfg.Exec(ti, vi)
			rc := Compile(cfg, tc).Exec(tc, vc)

			if (ri.Fault == nil) != (rc.Fault == nil) {
				t.Fatalf("fault mismatch: interpreter %v, compiled %v", ri.Fault, rc.Fault)
			}
			if ri.Fault != nil && ri.Fault.Error() != rc.Fault.Error() {
				t.Fatalf("fault text mismatch: %v vs %v", ri.Fault, rc.Fault)
			}
			ri.Fault, rc.Fault = nil, nil
			if fmt.Sprintf("%+v", ri) != fmt.Sprintf("%+v", rc) {
				t.Fatalf("result mismatch:\n  interpreter: %+v\n  compiled:    %+v", ri, rc)
			}
			if ti.Ptr != tc.Ptr || ti.Flags != tc.Flags || !bytes.Equal(ti.Mem, tc.Mem) {
				t.Fatal("TPP state diverged between interpreter and compiled path")
			}
			for a, w := range vi.words {
				if vc.words[a] != w {
					t.Fatalf("view word %v diverged: %d vs %d", a, w, vc.words[a])
				}
			}
		}
	})
}

// TestCompiledExecZeroAlloc pins the tentpole's allocation contract:
// with spans off, executing a compiled program allocates nothing.
func TestCompiledExecZeroAlloc(t *testing.T) {
	cfg := Config{MaxInstructions: 16}
	tpp := experimentPrograms()["microburst-telemetry"]
	prog := Compile(cfg, tpp)
	view, _ := diffViews()
	if avg := testing.AllocsPerRun(200, func() {
		tpp.Ptr = 0
		if r := prog.Exec(tpp, view); r.Fault != nil {
			t.Fatal(r.Fault)
		}
	}); avg != 0 {
		t.Fatalf("compiled Exec allocated %.1f times per run, want 0", avg)
	}
}

// TestCacheHitZeroAlloc pins the cache contract: once a program shape
// is compiled, looking it up again allocates nothing.
func TestCacheHitZeroAlloc(t *testing.T) {
	c := NewCache(Config{MaxInstructions: 16}, 0)
	tpp := experimentPrograms()["ndb-trace"]
	if c.Get(tpp) == nil {
		t.Fatal("Get returned nil for a cacheable program")
	}
	if avg := testing.AllocsPerRun(200, func() {
		if c.Get(tpp) == nil {
			t.Fatal("cached Get returned nil")
		}
	}); avg != 0 {
		t.Fatalf("cache hit allocated %.1f times per run, want 0", avg)
	}
	if hits, _ := c.Stats(); hits == 0 {
		t.Fatal("no hits recorded")
	}
}

// TestCacheInvalidate checks that Invalidate forces recompilation (a
// fresh miss) while the hit/miss counters survive, so device-state
// transitions can be observed end to end.
func TestCacheInvalidate(t *testing.T) {
	c := NewCache(Config{MaxInstructions: 16}, 0)
	tpp := experimentPrograms()["microburst-telemetry"]
	p1 := c.Get(tpp)
	c.Get(tpp)
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d/%d, want 1 hit, 1 miss", h, m)
	}
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Invalidate, want 0", c.Len())
	}
	p2 := c.Get(tpp)
	if h, m := c.Stats(); h != 1 || m != 2 {
		t.Fatalf("stats = %d/%d after invalidate, want 1 hit, 2 misses", h, m)
	}
	if p1 == p2 {
		t.Fatal("Invalidate did not force a fresh compilation")
	}
}

// TestCacheLRUEviction checks the capacity bound and LRU order.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(Config{MaxInstructions: 16}, 2)
	mk := func(a uint16) *core.TPP {
		return core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpPUSH, A: a}}, 1)
	}
	c.Get(mk(1))
	c.Get(mk(2))
	c.Get(mk(1)) // 1 is now most recent
	c.Get(mk(3)) // evicts 2
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	_, misses := c.Stats()
	c.Get(mk(1))
	if _, m := c.Stats(); m != misses {
		t.Fatal("program 1 was evicted, want it retained as most-recently-used")
	}
	c.Get(mk(2))
	if _, m := c.Stats(); m != misses+1 {
		t.Fatal("program 2 should have been the LRU eviction victim")
	}
}

// TestCacheKeyedOnDeviceConfig: the same wire program compiled under
// different device limits must behave per-device — a cache is bound to
// one config and bakes it into the compilation.
func TestCacheKeyedOnDeviceConfig(t *testing.T) {
	tpp := experimentPrograms()["ndb-trace"] // 4 instructions
	tight := NewCache(Config{MaxInstructions: 2}, 0)
	roomy := NewCache(Config{MaxInstructions: 16}, 0)
	view, _ := diffViews()

	if r := tight.Get(tpp).Exec(tpp.Clone(), view); !errors.Is(r.Fault, ErrProgramTooLong) {
		t.Fatalf("tight device fault = %v, want ErrProgramTooLong", r.Fault)
	}
	if r := roomy.Get(tpp).Exec(tpp.Clone(), view); r.Fault != nil {
		t.Fatalf("roomy device fault = %v, want nil", r.Fault)
	}
}

// TestCacheRefusesLongPrograms: programs beyond the keying bound fall
// back to the interpreter (nil) instead of being miskeyed.
func TestCacheRefusesLongPrograms(t *testing.T) {
	c := NewCache(Config{MaxInstructions: 64}, 0)
	long := core.NewTPP(core.AddrStack, make([]core.Instruction, MaxCachedInstructions+1), 1)
	if c.Get(long) != nil {
		t.Fatal("Get compiled a program longer than MaxCachedInstructions")
	}
}

// TestFaultSentinels is the regression test for the fault-path
// allocation fix: every fault class is a typed, errors.Is-able
// sentinel; the bare sentinel is returned when spans are off (no
// per-fault formatting on the hot path) and the formatted detail only
// appears when span recording is on.  Both execution paths must agree.
func TestFaultSentinels(t *testing.T) {
	sram := uint16(mem.SRAMBase)
	cases := []struct {
		name     string
		sentinel error
		tpp      func() *core.TPP
	}{
		{"too-long", ErrProgramTooLong, func() *core.TPP {
			return core.NewTPP(core.AddrStack, make([]core.Instruction, 7), 1)
		}},
		{"mode-mismatch", ErrModeMismatch, func() *core.TPP {
			tpp := core.NewTPP(core.AddrHop, []core.Instruction{
				{Op: core.OpPUSH, A: sram}}, 2)
			tpp.HopLen = 4
			return tpp
		}},
		{"stack-overflow", ErrStackOverflow, func() *core.TPP {
			tpp := core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)}}, 1)
			tpp.Ptr = 4
			return tpp
		}},
		{"stack-underflow", ErrStackUnderflow, func() *core.TPP {
			return core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpPOP, A: sram}}, 1)
		}},
		{"packet-mem-oob", ErrPacketMemOOB, func() *core.TPP {
			return core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpLOAD, A: uint16(mem.SwitchBase + mem.SwitchID), B: 9}}, 1)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, compiled := range []bool{false, true} {
				// Spans off: the bare sentinel, nothing formatted.
				cfg := Config{MaxInstructions: 5}
				exec := func(tpp *core.TPP) Result {
					if compiled {
						return Compile(cfg, tpp).Exec(tpp, newFakeView())
					}
					return cfg.Exec(tpp, newFakeView())
				}
				r := exec(c.tpp())
				if r.Fault != c.sentinel {
					t.Fatalf("compiled=%v spans=off: fault = %v (%T), want the bare sentinel %v",
						compiled, r.Fault, r.Fault, c.sentinel)
				}

				// Spans on: still errors.Is-able, now with detail.
				cfg.RecordSpans = true
				exec = func(tpp *core.TPP) Result {
					if compiled {
						return Compile(cfg, tpp).Exec(tpp, newFakeView())
					}
					return cfg.Exec(tpp, newFakeView())
				}
				r = exec(c.tpp())
				if !errors.Is(r.Fault, c.sentinel) {
					t.Fatalf("compiled=%v spans=on: fault %v is not errors.Is(%v)", compiled, r.Fault, c.sentinel)
				}
				if r.Fault.Error() == c.sentinel.Error() {
					t.Fatalf("compiled=%v spans=on: fault %q carries no detail", compiled, r.Fault)
				}
				if !strings.Contains(r.Fault.Error(), c.sentinel.Error()) {
					t.Fatalf("detail %q does not wrap sentinel text %q", r.Fault, c.sentinel)
				}
			}
		})
	}
}

// TestUnknownOpcodeSentinel covers the defense-in-depth runtime
// opcode fault directly: opcodes outside the instruction set are
// rejected statically by core.ValidateIns, so the interpreter's and
// compiler's own unknown-opcode arms can only fire if the two sets
// ever diverge — they must still follow the sentinel contract.
func TestUnknownOpcodeSentinel(t *testing.T) {
	if got := (Config{}).faultOpcode(core.Opcode(200)); got != ErrUnknownOpcode {
		t.Fatalf("spans=off: %v, want the bare sentinel", got)
	}
	got := (Config{RecordSpans: true}).faultOpcode(core.Opcode(200))
	if !errors.Is(got, ErrUnknownOpcode) || got.Error() == ErrUnknownOpcode.Error() {
		t.Fatalf("spans=on: %v, want wrapped detail around ErrUnknownOpcode", got)
	}
}

// TestFaultPathZeroAlloc pins the bugfix itself: a faulting packet on
// the hot path (spans off) must not allocate — the old code built a
// fmt.Errorf per faulting packet, a DoS vector under a fault storm.
func TestFaultPathZeroAlloc(t *testing.T) {
	cfg := Config{MaxInstructions: 5}
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPOP, A: uint16(mem.SRAMBase)}}, 1)
	view := newFakeView()
	prog := Compile(cfg, tpp)
	if avg := testing.AllocsPerRun(200, func() {
		tpp.Flags = 0
		if r := prog.Exec(tpp, view); r.Fault != ErrStackUnderflow {
			t.Fatalf("fault = %v", r.Fault)
		}
	}); avg != 0 {
		t.Fatalf("compiled fault path allocated %.1f times per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		tpp.Flags = 0
		if r := cfg.Exec(tpp, view); r.Fault != ErrStackUnderflow {
			t.Fatalf("fault = %v", r.Fault)
		}
	}); avg != 0 {
		t.Fatalf("interpreter fault path allocated %.1f times per run, want 0", avg)
	}
}
