// Package tcpu implements the tiny CPU of §3 of the TPP paper: the
// in-dataplane RISC processor that sequentially executes a packet's
// tiny program against the switch's unified memory map.
//
// The TCPU "is a Reduced Instruction Set Computer (RISC) processor that
// executes instructions in a five stage pipeline"; Exec models the
// architectural effects (every load, store and header update) exactly,
// and Cycles models the pipeline timing (1 instruction per clock with a
// 4-cycle latency) so the §3.3 line-rate feasibility argument can be
// checked quantitatively.
package tcpu

import (
	"repro/internal/core"
	"repro/internal/mem"
)

// DefaultMaxInstructions is the per-device program length limit.  §1
// suggests "restricting TPPs to (say) five instructions per-packet";
// the limit is an ASIC configuration knob, so we default to the paper's
// suggestion.
const DefaultMaxInstructions = 5

// Config selects per-ASIC execution limits.
type Config struct {
	// MaxInstructions caps the program length this TCPU accepts; a
	// longer program faults (end-hosts are expected to split work
	// across multiple TPPs).  Zero means DefaultMaxInstructions.
	MaxInstructions int
	// RecordSpans makes Exec fill Result.Spans with one entry per
	// executed instruction (retire cycle, memory accesses, stalls),
	// so executions can be audited against the §3.3 line-rate budget.
	// Off by default: span recording allocates.
	RecordSpans bool
}

func (c Config) maxIns() int {
	if c.MaxInstructions <= 0 {
		return DefaultMaxInstructions
	}
	return c.MaxInstructions
}

// ConditionalStorer is implemented by memory views that can perform the
// CSTORE compare-and-store atomically, giving the "stronger
// (linearizable) notion of consistency for memory updates" of §2.2.
// When a view does not implement it, Exec falls back to a non-atomic
// load/store pair, which is sufficient under a single-threaded
// dataplane.
type ConditionalStorer interface {
	CondStore(a mem.Addr, cond, v uint32) (old uint32, err error)
}

// Result reports what a TCPU did with one TPP.
type Result struct {
	// Executed counts instructions that entered the execute stage
	// (including a failing CEXEC, excluding instructions it skipped).
	Executed int
	// Loads and Stores count switch-memory accesses performed.
	Loads  int
	Stores int
	// Halted is set when a CEXEC predicate failed: "all instructions
	// that follow a failed CEXEC check will not be executed".
	Halted bool
	// Fault holds the first memory/validation fault, if any;  the
	// TCPU sets core.FlagError on the packet and stops, but the
	// packet still forwards.
	Fault error
	// Cycles is the pipeline occupancy per the Figure 5 timing model.
	Cycles int
	// Spans holds per-instruction execution spans when
	// Config.RecordSpans is set (nil otherwise).
	Spans []InsSpan

	// cstoreStalls counts successful conditional stores, each of
	// which occupies both memory stages (one extra stall cycle).
	cstoreStalls int
}

// Exec runs the TPP against view with the default configuration.
func Exec(t *core.TPP, view mem.View) Result {
	return Config{}.Exec(t, view)
}

// Exec runs every instruction of the TPP sequentially, updating packet
// memory, switch memory (through view) and the TPP header (stack
// pointer or hop counter).  It never panics on malformed programs; any
// violation faults the packet instead, because a switch cannot refuse
// to forward line-rate traffic.
func (c Config) Exec(t *core.TPP, view mem.View) (r Result) {
	defer func() {
		r.Cycles = cyclesFor(&r)
		if t.Mode == core.AddrHop {
			// The hop counter advances at every TCPU so the next
			// switch writes the next per-hop record, even if this
			// execution halted or faulted.
			t.Ptr++
		}
		if r.Fault != nil {
			t.Flags |= core.FlagError
		}
	}()

	if len(t.Ins) > c.maxIns() {
		r.Fault = c.faultTooLong(len(t.Ins))
		return r
	}
	if err := t.Validate(); err != nil {
		r.Fault = err
		return r
	}

	for _, in := range t.Ins {
		r.Executed++
		loads, stores, stalls := r.Loads, r.Stores, r.cstoreStalls
		ok := c.step(t, in, view, &r)
		if c.RecordSpans {
			if r.Spans == nil {
				r.Spans = make([]InsSpan, 0, len(t.Ins))
			}
			r.Spans = append(r.Spans, InsSpan{
				Index:       r.Executed - 1,
				Op:          in.Op,
				RetireCycle: PipelineLatency + r.Executed - 1 + r.cstoreStalls,
				Loads:       r.Loads - loads,
				Stores:      r.Stores - stores,
				Stall:       r.cstoreStalls > stalls,
				Fault:       r.Fault != nil,
				Halted:      r.Halted,
			})
		}
		if !ok {
			return r
		}
	}
	return r
}

// step executes one instruction against the view, mutating r's access
// counters and fault state.  It returns false when execution must stop:
// a fault, or a failed CEXEC predicate.
func (c Config) step(t *core.TPP, in core.Instruction, view mem.View, r *Result) bool {
	switch in.Op {
	case core.OpNOP:

	case core.OpLOAD:
		v, err := view.Load(mem.Addr(in.A))
		if err != nil {
			r.Fault = err
			return false
		}
		r.Loads++
		if !c.putWord(t, r, t.EffectiveWord(in.B), v) {
			return false
		}

	case core.OpSTORE:
		v, ok := c.getWord(t, r, t.EffectiveWord(in.B))
		if !ok {
			return false
		}
		if err := view.Store(mem.Addr(in.A), v); err != nil {
			r.Fault = err
			return false
		}
		r.Stores++

	case core.OpPUSH:
		if t.Mode != core.AddrStack {
			r.Fault = c.faultMode(in.Op)
			return false
		}
		v, err := view.Load(mem.Addr(in.A))
		if err != nil {
			r.Fault = err
			return false
		}
		r.Loads++
		if int(t.Ptr)+4 > len(t.Mem) {
			r.Fault = c.faultStackOverflow(t.Ptr, len(t.Mem))
			return false
		}
		t.SetWord(int(t.Ptr)/4, v)
		t.Ptr += 4

	case core.OpPOP:
		if t.Mode != core.AddrStack {
			r.Fault = c.faultMode(in.Op)
			return false
		}
		if t.Ptr < 4 {
			r.Fault = c.faultStackUnderflow(t.Ptr)
			return false
		}
		if int(t.Ptr) > len(t.Mem) {
			// A wire-supplied stack pointer can point past packet
			// memory; faulting (not panicking) keeps the dataplane
			// robust against crafted frames.
			r.Fault = c.faultStackOOB(t.Ptr, len(t.Mem))
			return false
		}
		t.Ptr -= 4
		v := t.Word(int(t.Ptr) / 4)
		if err := view.Store(mem.Addr(in.A), v); err != nil {
			r.Fault = err
			return false
		}
		r.Stores++

	case core.OpCSTORE:
		// CSTORE dst,cond,src: cond and src live in packet
		// memory at B and B+1; the old value of dst is written
		// back at B+2 so the end-host observes success/failure.
		base := t.EffectiveWord(in.B)
		cond, ok := c.getWord(t, r, base)
		if !ok {
			return false
		}
		src, ok := c.getWord(t, r, base+1)
		if !ok {
			return false
		}
		old, err := c.condStore(view, mem.Addr(in.A), cond, src, r)
		if err != nil {
			r.Fault = err
			return false
		}
		if !c.putWord(t, r, base+2, old) {
			return false
		}

	case core.OpCEXEC:
		// CEXEC reg,mask,value: execute the rest only if
		// (reg & mask) == value; mask and value live in packet
		// memory at B and B+1.
		base := t.EffectiveWord(in.B)
		mask, ok := c.getWord(t, r, base)
		if !ok {
			return false
		}
		val, ok := c.getWord(t, r, base+1)
		if !ok {
			return false
		}
		v, err := view.Load(mem.Addr(in.A))
		if err != nil {
			r.Fault = err
			return false
		}
		r.Loads++
		if v&mask != val {
			r.Halted = true
			return false
		}

	case core.OpADD, core.OpSUB, core.OpMAX:
		v, err := view.Load(mem.Addr(in.A))
		if err != nil {
			r.Fault = err
			return false
		}
		r.Loads++
		w := t.EffectiveWord(in.B)
		cur, ok := c.getWord(t, r, w)
		if !ok {
			return false
		}
		switch in.Op {
		case core.OpADD:
			cur += v
		case core.OpSUB:
			cur -= v
		case core.OpMAX:
			if v > cur {
				cur = v
			}
		}
		if !c.putWord(t, r, w, cur) {
			return false
		}

	default:
		r.Fault = c.faultOpcode(in.Op)
		return false
	}
	return true
}

// condStore performs the compare-and-store, atomically when the view
// supports it.
func (c Config) condStore(view mem.View, a mem.Addr, cond, src uint32, r *Result) (uint32, error) {
	if cs, ok := view.(ConditionalStorer); ok {
		old, err := cs.CondStore(a, cond, src)
		if err == nil {
			r.Loads++
			if old == cond {
				r.Stores++
				r.cstoreStalls++
			}
		}
		return old, err
	}
	old, err := view.Load(a)
	if err != nil {
		return 0, err
	}
	r.Loads++
	if old == cond {
		if err := view.Store(a, src); err != nil {
			return 0, err
		}
		r.Stores++
		r.cstoreStalls++
	}
	return old, nil
}

// getWord reads packet-memory word i with bounds checking; on a
// violation it faults the result and returns ok=false.
func (c Config) getWord(t *core.TPP, r *Result, i int) (uint32, bool) {
	if !t.InRange(i) {
		r.Fault = c.faultPacketMem(i, t.MemWords())
		return 0, false
	}
	return t.Word(i), true
}

// putWord writes packet-memory word i with bounds checking.
func (c Config) putWord(t *core.TPP, r *Result, i int, v uint32) bool {
	if !t.InRange(i) {
		r.Fault = c.faultPacketMem(i, t.MemWords())
		return false
	}
	t.SetWord(i, v)
	return true
}
