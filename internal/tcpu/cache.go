package tcpu

import "repro/internal/core"

// MaxCachedInstructions bounds the program length a Cache will compile
// and key on; longer programs (beyond anything a per-packet device
// limit admits) fall back to the interpreter.  16 covers every device
// configuration the experiments use with room to spare.
const MaxCachedInstructions = 16

// DefaultCacheCapacity is the number of distinct program shapes a
// Cache retains; datacenter workloads run a handful of programs across
// millions of flows, so a small LRU captures effectively all traffic.
const DefaultCacheCapacity = 64

// cacheKey identifies a compilation: the instruction wire words plus
// every Config input the compiler bakes into the Program.  Keying on
// the baked config means a device whose limits change (or two devices
// sharing a cache) can never execute a compilation produced under
// different rules.
type cacheKey struct {
	n       uint8
	mode    core.AddrMode
	version uint8
	maxIns  int
	spans   bool
	ins     [MaxCachedInstructions]uint32
}

type centry struct {
	key        cacheKey
	prog       *Program
	prev, next *centry // LRU list, head = most recent
}

// Cache is an LRU of compiled programs keyed by instruction wire bytes
// and device configuration.  It is used at the NIC (compile once per
// injected program) and at switch ingress (repeated flows never
// re-decode).  Like the rest of the simulator dataplane it is
// single-threaded; lookups on the hit path do not allocate.
type Cache struct {
	cfg        Config
	capacity   int
	m          map[cacheKey]*centry
	head, tail *centry
	hits       uint64
	misses     uint64
	// One-entry front cache: flows repeat the same program back to
	// back, and a struct compare is cheaper than a map hash per packet.
	lastKey  cacheKey
	lastProg *Program
}

// NewCache builds a compiled-program cache for a device with config c.
// capacity <= 0 selects DefaultCacheCapacity.
func NewCache(c Config, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{cfg: c, capacity: capacity, m: make(map[cacheKey]*centry, capacity)}
}

// Config returns the device configuration the cache compiles under.
func (c *Cache) Config() Config { return c.cfg }

// Get returns the compiled form of t's program, compiling on first
// sight.  It returns nil when the program is too long to key
// (len(Ins) > MaxCachedInstructions); callers fall back to the
// interpreter, which faults such programs against the device limit
// anyway.
func (c *Cache) Get(t *core.TPP) *Program {
	if len(t.Ins) > MaxCachedInstructions {
		return nil
	}
	var k cacheKey
	k.n = uint8(len(t.Ins))
	k.mode = t.Mode
	k.version = t.Version
	k.maxIns = c.cfg.maxIns()
	k.spans = c.cfg.RecordSpans
	for i, in := range t.Ins {
		k.ins[i] = in.Word()
	}
	if c.lastProg != nil && k == c.lastKey {
		c.hits++
		return c.lastProg
	}
	if e := c.m[k]; e != nil {
		c.hits++
		c.moveToFront(e)
		c.lastKey, c.lastProg = k, e.prog
		return e.prog
	}
	c.misses++
	e := &centry{key: k, prog: Compile(c.cfg, t)}
	c.m[k] = e
	c.pushFront(e)
	if len(c.m) > c.capacity {
		c.evict()
	}
	c.lastKey, c.lastProg = k, e.prog
	return e.prog
}

// Invalidate drops every cached compilation.  Callers flush on any
// device-state transition that could make a cached program stale —
// switch reboot (a restarted ASIC renegotiates its configuration) and
// tenant grant or revoke (guard state changed under the program).
func (c *Cache) Invalidate() {
	clear(c.m)
	c.head, c.tail = nil, nil
	c.lastProg = nil
}

// Stats returns the hit/miss counters since construction (invalidation
// does not reset them, so tests can observe re-compilations).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Len returns the number of cached compilations.
func (c *Cache) Len() int { return len(c.m) }

func (c *Cache) pushFront(e *centry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) moveToFront(e *centry) {
	if c.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	c.pushFront(e)
}

func (c *Cache) evict() {
	e := c.tail
	if e == nil {
		return
	}
	if e.prev != nil {
		e.prev.next = nil
	}
	c.tail = e.prev
	if c.head == e {
		c.head = nil
	}
	delete(c.m, e.key)
}
