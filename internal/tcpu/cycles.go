package tcpu

import "repro/internal/core"

// Pipeline timing model of Figure 5: "a five stage pipeline: (a)
// instruction fetch, (b) instruction decode, (c) execute, (d) memory
// read and (e) memory write.  The header parser completes stage (a) by
// the time the packet reaches the TCPU ... this RISC processor runs at
// a throughput of 1 instruction per clock cycle, with a latency of 4
// cycles."
const (
	// PipelineLatency is the cycles from decode to write-back for one
	// instruction (the fetch stage is absorbed by the header parser).
	PipelineLatency = 4
	// BudgetCycles is the per-packet execution budget derived from
	// §3.3: "Low-latency ASICs today can switch minimum sized packets
	// with a cut-through latency of 300ns, which is 300 clock cycles
	// for a 1GHz ASIC."
	BudgetCycles = 300
)

// cyclesFor computes the pipeline occupancy of an execution: the first
// instruction retires after PipelineLatency cycles and each subsequent
// instruction retires one cycle later (1 instruction/cycle throughput).
// CSTORE occupies both the memory-read and memory-write stages in
// separate cycles, a structural hazard costing one extra stall cycle.
func cyclesFor(r *Result) int {
	if r.Executed == 0 {
		return 0
	}
	cycles := PipelineLatency + r.Executed - 1
	// Each CSTORE both reads and writes switch memory; the extra
	// memory stage occupancy is visible as Loads+Stores exceeding
	// Executed for that instruction.  We approximate the stall count
	// as the number of successful conditional stores, which is the
	// only opcode that uses MR and MW in one instruction.
	cycles += r.cstoreStalls
	return cycles
}

// CyclesForProgram returns the modeled execution time in cycles of a
// k-instruction TPP with s successful conditional stores.  Exposed for
// the Figure 5 experiment harness.
func CyclesForProgram(k, s int) int {
	if k <= 0 {
		return 0
	}
	return PipelineLatency + k - 1 + s
}

// WithinBudget reports whether an execution fits the §3.3 cut-through
// cycle budget.
func (r Result) WithinBudget() bool { return r.Cycles <= BudgetCycles }

// InsSpan is one instruction's execution span, recorded when
// Config.RecordSpans is set: where in the Figure 5 pipeline timeline
// the instruction retired and what memory traffic it generated, so a
// program's fit against the §3.3 line-rate budget can be audited
// instruction by instruction.
type InsSpan struct {
	// Index is the instruction's position in the program.
	Index int
	// Op is the executed opcode.
	Op core.Opcode
	// RetireCycle is the pipeline cycle at which the instruction
	// retired: the first instruction retires at PipelineLatency, each
	// subsequent one a cycle later, plus one cycle per CSTORE stall.
	RetireCycle int
	// Loads and Stores count switch-memory accesses this instruction
	// performed.
	Loads, Stores int
	// Stall marks a successful CSTORE, which occupies both memory
	// stages and costs one extra cycle.
	Stall bool
	// Fault marks the instruction that faulted (execution stopped).
	Fault bool
	// Halted marks a failed CEXEC predicate (execution stopped, not
	// an error).
	Halted bool
}

// OverBudget reports whether this instruction retired past the §3.3
// cut-through cycle budget.
func (s InsSpan) OverBudget() bool { return s.RetireCycle > BudgetCycles }

// LineRateCheck quantifies the §1/§3.3 feasibility argument: "A 64-port
// 10GbE switch has to process about a billion 64-byte-packets/second to
// operate at line-rate", and a TCPU retires one instruction per cycle.
type LineRateCheck struct {
	// PacketsPerSecond is the worst-case aggregate packet rate.
	PacketsPerSecond float64
	// InstructionsPerSecond is the demanded TCPU instruction rate if
	// every packet carries a k-instruction TPP.
	InstructionsPerSecond float64
	// CyclesPerSecond is one TCPU's capacity at the given clock.
	CyclesPerSecond float64
	// TCPUsNeeded is the number of parallel TCPU pipelines required
	// (ASICs already replicate their pipelines per port group).
	TCPUsNeeded int
	// PerPacketBudgetCycles is the cycle budget between minimum-size
	// packet arrivals on one pipeline.
	PerPacketBudgetCycles float64
}

// CheckLineRate computes the feasibility numbers for a switch with the
// given port count and per-port rate, minimum packet size (plus 20
// bytes of preamble/IFG/CRC framing overhead, as on real Ethernet),
// TPP length and TCPU clock.
func CheckLineRate(ports int, gbpsPerPort float64, minPktBytes, insPerPkt int, ghz float64) LineRateCheck {
	wire := float64(minPktBytes + 20)
	pps := float64(ports) * gbpsPerPort * 1e9 / 8 / wire
	var c LineRateCheck
	c.PacketsPerSecond = pps
	c.InstructionsPerSecond = pps * float64(insPerPkt)
	c.CyclesPerSecond = ghz * 1e9
	need := c.InstructionsPerSecond / c.CyclesPerSecond
	c.TCPUsNeeded = int(need)
	if need > float64(c.TCPUsNeeded) {
		c.TCPUsNeeded++
	}
	if c.TCPUsNeeded < 1 {
		c.TCPUsNeeded = 1
	}
	perPipe := pps / float64(c.TCPUsNeeded)
	c.PerPacketBudgetCycles = c.CyclesPerSecond / perPipe
	return c
}
