package rcp

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/endhost"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// TestStarControllerSurvivesSwitchReboot crash-restarts the bottleneck
// switch under a converged RCP* flow: the reboot wipes the rate
// register the controller seeded, the next collect probe's epoch word
// reveals the crash, and the controller re-seeds and re-converges to
// the fair share within a bounded number of control intervals — all
// without any out-of-band signal.
func TestStarControllerSurvivesSwitchReboot(t *testing.T) {
	sim := netsim.New(1)
	params := DefaultParams()
	n, senders, receivers, a, b := topo.Dumbbell(sim, 1,
		topo.Mbps(100, netsim.Millisecond), topo.Mbps(10, 10*netsim.Millisecond),
		asic.Config{Ports: 8, QueueCapBytes: 125_000})
	n.PrimeL2(50 * netsim.Millisecond)
	InitRateRegisters(a, b)

	const rebootAt = 3 * netsim.Second
	inj := faults.NewInjector(sim, nil)
	inj.RegisterSwitch("a", a)
	if err := inj.Schedule(faults.Plan{Seed: 1, Events: []faults.Event{
		{At: rebootAt, Kind: faults.SwitchReboot, Target: "a",
			BootDelay: 5 * netsim.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}

	prober := endhost.NewProber(senders[0])
	ctl := NewStarController(sim, senders[0], prober,
		receivers[0].MAC, receivers[0].IP, params)
	ctl.Start()
	defer ctl.Stop()

	// Converged before the crash: the bottleneck register carries the
	// (near-)capacity fair share.
	sim.RunUntil(rebootAt)
	const capacity = 1.25e6 // 10 Mb/s in bytes/sec
	if ctl.LastRate < 0.65*capacity {
		t.Fatalf("pre-reboot rate %.0f B/s, want near capacity (%.0f)", ctl.LastRate, capacity)
	}
	bnPort := a.Port(0)

	// The crash wipes the register the controller installed.
	sim.RunUntil(rebootAt + netsim.Millisecond)
	if a.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", a.Epoch())
	}
	if got := bnPort.Scratch(0); got != 0 {
		t.Fatalf("rate register survived the reboot: %d", got)
	}

	// Detection and re-seeding are bounded: within a handful of control
	// intervals after boot, the epoch bump is observed, the register is
	// re-seeded, and the loop re-converges.
	deadline := rebootAt + 20*params.T
	sim.RunUntil(deadline)
	if ctl.EpochBumps == 0 {
		t.Fatal("controller never noticed the epoch bump")
	}
	if ctl.Reinits == 0 {
		t.Fatal("controller never re-seeded the wiped rate register")
	}
	if got := bnPort.Scratch(0); got == 0 {
		t.Fatal("rate register still zero after re-seeding window")
	}

	sim.RunUntil(deadline + 2*netsim.Second)
	if ctl.LastRate < 0.65*capacity {
		t.Fatalf("post-reboot rate %.0f B/s did not re-converge (capacity %.0f)",
			ctl.LastRate, capacity)
	}
	if ctl.haveCaps == false {
		t.Fatal("controller fell back to discovery and never finished")
	}
}
