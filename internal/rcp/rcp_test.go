package rcp

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
)

func TestUpdateEquilibrium(t *testing.T) {
	// At y == C and empty queue the rate is a fixed point.
	p := DefaultParams()
	c := 1_250_000.0
	r := p.Update(c/2, c, 0, c)
	if math.Abs(r-c/2) > 1 {
		t.Fatalf("fixed point drifted: %f", r)
	}
}

func TestUpdateDirection(t *testing.T) {
	p := DefaultParams()
	c := 1_250_000.0
	// Overload (y > C) must reduce R.
	if r := p.Update(c, 2*c, 0, c); r >= c {
		t.Fatalf("overload did not reduce R: %f", r)
	}
	// Underload (y < C, empty queue) must increase R.
	if r := p.Update(c/2, c/4, 0, c); r <= c/2 {
		t.Fatalf("underload did not increase R: %f", r)
	}
	// Standing queue must reduce R even at y == C.
	if r := p.Update(c/2, c, 50_000, c); r >= c/2 {
		t.Fatalf("standing queue did not reduce R: %f", r)
	}
}

func TestUpdateClamping(t *testing.T) {
	p := DefaultParams()
	c := 1_250_000.0
	if r := p.Update(c, 100*c, 1e9, c); r < MinRateFraction*c-1 {
		t.Fatalf("rate below floor: %f", r)
	}
	if r := p.Update(c, 0, 0, c); r > c {
		t.Fatalf("rate above capacity: %f", r)
	}
	if r := p.Update(c, c, 0, 0); r != 0 {
		t.Fatalf("zero capacity must yield 0, got %f", r)
	}
}

func TestUpdateConvergesToFairShare(t *testing.T) {
	// Iterating the closed loop with N flows tracking R must settle
	// at R = C/N.
	p := DefaultParams()
	c := 1_250_000.0
	for _, flows := range []int{1, 2, 3, 5} {
		r := c
		q := 0.0
		for i := 0; i < 400; i++ {
			y := float64(flows) * r
			// Crude queue integration: excess load accumulates.
			q += (y - c) * p.T.Seconds()
			if q < 0 {
				q = 0
			}
			r = p.Update(r, y, q, c)
		}
		want := c / float64(flows)
		if math.Abs(r-want)/want > 0.1 {
			t.Errorf("flows=%d: converged to %.0f, want %.0f", flows, r, want)
		}
	}
}

func TestPacedFlowRate(t *testing.T) {
	sim := netsim.New(1)
	a := endhost.NewHost(sim, core.MACFromUint64(1), core.IPv4Addr(10, 0, 0, 1))
	b := endhost.NewHost(sim, core.MACFromUint64(2), core.IPv4Addr(10, 0, 0, 2))
	a.NIC.Attach(netsim.NewChannel(sim, 100_000_000, 0, b, 0))
	b.NIC.Attach(netsim.NewChannel(sim, 100_000_000, 0, a, 0))

	var rcvd uint64
	b.Handle(StarDataPort, func(p *core.Packet) { rcvd += uint64(p.PayloadLen()) })

	f := NewPacedFlow(sim, a, b.MAC, b.IP, StarDataPort, false)
	f.SetRate(125_000) // 1 Mb/s
	f.Start()
	sim.RunUntil(10 * netsim.Second)
	f.Stop()

	got := float64(rcvd) / 10
	if got < 100_000 || got > 135_000 {
		t.Fatalf("paced at %.0f B/s, want ~125000", got)
	}

	// Stop() must actually stop.
	before := f.Sent
	sim.RunUntil(11 * netsim.Second)
	if f.Sent != before {
		t.Fatal("flow kept sending after Stop")
	}
}

func TestPacedFlowRestart(t *testing.T) {
	sim := netsim.New(1)
	a := endhost.NewHost(sim, core.MACFromUint64(1), core.IPv4Addr(10, 0, 0, 1))
	b := endhost.NewHost(sim, core.MACFromUint64(2), core.IPv4Addr(10, 0, 0, 2))
	a.NIC.Attach(netsim.NewChannel(sim, 100_000_000, 0, b, 0))
	b.NIC.Attach(netsim.NewChannel(sim, 100_000_000, 0, a, 0))
	f := NewPacedFlow(sim, a, b.MAC, b.IP, StarDataPort, false)
	f.SetRate(1_250_000)
	f.Start()
	sim.RunUntil(100 * netsim.Millisecond)
	f.Stop()
	sim.RunUntil(200 * netsim.Millisecond)
	f.Start()
	sim.RunUntil(300 * netsim.Millisecond)
	f.Stop()
	sim.RunUntil(400 * netsim.Millisecond)
	// ~1250 B/ms at 1000B packets => ~125 packets per active 100ms.
	if f.Sent < 200 || f.Sent > 300 {
		t.Fatalf("sent %d packets across two 100ms bursts", f.Sent)
	}
}

func TestStampedHeaderTakesMinimum(t *testing.T) {
	sim := netsim.New(1)
	base := NewBaseline(sim, DefaultParams())
	_ = base
	l := &BaselineLink{rate: 500}
	pkt := &core.Packet{
		UDP:     &core.UDP{DstPort: BaselineDataPort},
		Payload: []byte{0, 0, 3, 0xE8}, // 1000
	}
	l.stamp(pkt)
	if got := uint32(pkt.Payload[2])<<8 | uint32(pkt.Payload[3]); got != 500 {
		t.Fatalf("stamp = %d", got)
	}
	// A smaller header survives a larger R.
	l.rate = 2000
	l.stamp(pkt)
	if got := uint32(pkt.Payload[2])<<8 | uint32(pkt.Payload[3]); got != 500 {
		t.Fatalf("min not preserved: %d", got)
	}
	// Non-baseline packets are untouched.
	other := &core.Packet{UDP: &core.UDP{DstPort: 99}, Payload: []byte{9, 9, 9, 9}}
	l.stamp(other)
	if other.Payload[0] != 9 {
		t.Fatal("stamped a foreign packet")
	}
}

// fairShares returns the expected R/C plateaus of Figure 2.
func fairShares() [3]float64 { return [3]float64{1.0, 0.5, 1.0 / 3} }

func checkFig2Shape(t *testing.T, res Fig2Result, name string) {
	t.Helper()
	want := fairShares()
	windows := [3][2]float64{{5, 10}, {15, 20}, {25, 30}}
	for i, w := range windows {
		got := res.MeanROverC(w[0], w[1])
		if math.Abs(got-want[i])/want[i] > 0.25 {
			t.Errorf("%s: plateau %d: mean R/C = %.3f, want ~%.3f",
				name, i+1, got, want[i])
		}
	}
	// Convergence after each flow arrival is fast (well under the
	// 10s the paper's figure allots per epoch).
	for i, w := range windows {
		ct := res.ConvergenceTime(w[0]-5, w[1], want[i], 0.2*want[i])
		if ct > 5 {
			t.Errorf("%s: epoch %d did not settle within 5s (took %.1fs)",
				name, i+1, ct)
		}
	}
}

func TestFigure2BaselineConverges(t *testing.T) {
	res := RunFigure2(DefaultFig2Config(VariantBaseline))
	if len(res.Samples) < 290 {
		t.Fatalf("samples: %d", len(res.Samples))
	}
	checkFig2Shape(t, res, "baseline")
}

func TestFigure2StarConverges(t *testing.T) {
	res := RunFigure2(DefaultFig2Config(VariantStar))
	if len(res.Samples) < 290 {
		t.Fatalf("samples: %d", len(res.Samples))
	}
	checkFig2Shape(t, res, "rcpstar")
}

func TestFigure2StarTracksBaseline(t *testing.T) {
	// "the behavior of RCP and RCP* are qualitatively similar":
	// plateau means within 20% of each other.
	star := RunFigure2(DefaultFig2Config(VariantStar))
	base := RunFigure2(DefaultFig2Config(VariantBaseline))
	for _, w := range [3][2]float64{{5, 10}, {15, 20}, {25, 30}} {
		s := star.MeanROverC(w[0], w[1])
		b := base.MeanROverC(w[0], w[1])
		if b == 0 || math.Abs(s-b)/b > 0.2 {
			t.Errorf("window %v: star=%.3f baseline=%.3f", w, s, b)
		}
	}
}
