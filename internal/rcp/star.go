package rcp

import (
	"fmt"
	"math"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Statistic addresses of the collect-phase program.
var (
	addrSwitchID = mem.SwitchBase + mem.SwitchID
	addrQueue    = mem.PortBase + mem.PortQueueSize
	addrRXUtil   = mem.PortBase + mem.PortRXUtil
	addrRateReg  = mem.PortBase + mem.PortScratchBase // Link:RCP-RateRegister
	addrCapacity = mem.PortBase + mem.PortCapacity
	addrEpoch    = mem.SwitchBase + mem.SwitchEpoch
)

// collectStats is the paper's phase-1 program plus a fifth PUSH of the
// boot generation counter, which rides along at exactly the
// 5-instruction device limit:
//
//	PUSH [Switch:SwitchID]
//	PUSH [Link:QueueSize]
//	PUSH [Link:RX-Utilization]
//	PUSH [Link:RCP-RateRegister]
//	PUSH [Switch:Epoch]
//
// The epoch lets the controller tell a rebooted switch (soft state
// wiped; must re-seed) from one whose register merely reads zero.
var collectStats = []mem.Addr{addrSwitchID, addrQueue, addrRXUtil, addrRateReg, addrEpoch}

// collectWords is the per-hop record size of the collect probe.
const collectWords = 5

// MaxHops sizes probe packet memory; datacenter paths are "typically
// 5-7" hops (§2.1).
const MaxHops = 7

// degradeThreshold is how many consecutive probe deadlines the
// controller tolerates before it assumes the path itself changed (not
// just a lost frame) and falls back to capacity re-discovery.
const degradeThreshold = 4

// InitRateRegisters performs the control-plane initialization of §2.2
// footnote 3: "a control plane program initializes each link's fair
// share rate to its capacity."
func InitRateRegisters(switches ...*asic.Switch) {
	for _, sw := range switches {
		for i := 0; i < sw.Ports(); i++ {
			p := sw.Port(i)
			if p.Wired() {
				p.SetScratch(0, p.Channel().RateBytes())
			}
		}
	}
}

// StarController is one flow's rate controller in RCP*: an entirely
// end-host program that queries and modifies network state in the three
// phases of §2.2 (collect, compute, update).
type StarController struct {
	sim    *netsim.Sim
	host   *endhost.Host
	prober *endhost.Prober
	params Params

	dstMAC core.MAC
	dstIP  uint32

	// Flow is the paced data flow whose rate this controller tunes.
	Flow *PacedFlow

	caps     []float64 // per-hop link capacity, discovered once
	qAvg     []float64 // per-hop EWMA of sampled queue sizes
	haveCaps bool
	missed   int // consecutive probe deadlines missed

	// epochs tracks the boot generation counter each collect echo now
	// carries, so a crash-restart is detected the very next interval.
	epochs *endhost.EpochTracker

	ticker *netsim.Ticker

	// Telemetry for tests and experiments.
	Collects   uint64 // phase-1 echoes processed
	Updates    uint64 // phase-3 TPPs sent
	Timeouts   uint64 // probes that missed their deadline
	Reinits    uint64 // rate registers re-seeded after reading zero
	EpochBumps uint64 // switch reboots detected via the epoch word
	LastRate   float64

	// Registry handles (nil unless EnableMetrics was called).
	mCollects *obs.Counter
	mUpdates  *obs.Counter
	mRate     *obs.Gauge
}

// EnableMetrics registers this controller's control-loop metrics under
// rcp/<name>/: collect echoes processed, update TPPs sent, and the
// current fair-share rate in bytes/sec.  A nil registry is a no-op.
func (c *StarController) EnableMetrics(reg *obs.Registry, name string) {
	c.mCollects = reg.Counter(fmt.Sprintf("rcp/%s/collects", name))
	c.mUpdates = reg.Counter(fmt.Sprintf("rcp/%s/updates", name))
	c.mRate = reg.Gauge(fmt.Sprintf("rcp/%s/rate_bytes_per_sec", name))
}

// NewStarController builds the controller for one sender/receiver
// pair.  The caller starts the flow and the control loop with Start.
func NewStarController(sim *netsim.Sim, host *endhost.Host, prober *endhost.Prober,
	dstMAC core.MAC, dstIP uint32, params Params) *StarController {
	return &StarController{
		sim: sim, host: host, prober: prober, params: params,
		dstMAC: dstMAC, dstIP: dstIP,
		epochs: endhost.NewEpochTracker(nil),
		Flow:   NewPacedFlow(sim, host, dstMAC, dstIP, StarDataPort, false),
	}
}

// Start launches the periodic controller.  The data flow starts as soon
// as the first collect echo reveals the current fair-share rate, so a
// new flow "converges quickly to its fair share" instead of probing
// from zero.
func (c *StarController) Start() {
	c.ticker = c.sim.Every(c.sim.Now(), c.params.T, c.tick)
}

// Stop halts the control loop and the flow (e.g. when a finite flow
// completes).
func (c *StarController) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
	c.Flow.Stop()
	c.prober.Forget()
}

func (c *StarController) tick() {
	if !c.haveCaps {
		c.probeCapacities()
		return
	}
	c.probeCollect()
}

// probeCfg bounds every control probe's lifetime so the pending set
// stays bounded on a faulty network.  The deadline must exceed the
// worst-case echo RTT — propagation plus a full queue, i.e. the RTT
// scale D — or healthy probes get reaped just before their echoes;
// twice D leaves comfortable slack while still reaping within a few
// control periods.
func (c *StarController) probeCfg() endhost.ProbeConfig {
	timeout := 2 * c.params.D
	if m := 2 * c.params.T; m > timeout {
		timeout = m
	}
	return endhost.ProbeConfig{Timeout: timeout}
}

// onMiss degrades gracefully: the flow holds its last-known rate (no
// sample means no evidence the fair share moved), and after
// degradeThreshold consecutive misses the controller re-enters
// discovery so recovery starts from scratch if the path changed.
func (c *StarController) onMiss() {
	c.Timeouts++
	c.missed++
	if c.missed >= degradeThreshold && c.haveCaps {
		c.haveCaps = false
		c.caps = c.caps[:0]
	}
}

// probeCapacities runs the one-time discovery of per-hop capacities
// (link capacities are static, so they need not burden the steady-state
// probe, keeping it within the 5-instruction device limit).
func (c *StarController) probeCapacities() {
	tpp, err := endhost.CollectProgram([]mem.Addr{addrSwitchID, addrCapacity}, MaxHops, 5)
	if err != nil {
		panic(err)
	}
	c.prober.ProbeCfg(c.dstMAC, c.dstIP, tpp, c.probeCfg(), func(e *core.TPP) {
		if c.haveCaps {
			return
		}
		c.missed = 0
		hops := int(e.Ptr) / 4 / 2
		c.caps = c.caps[:0]
		for i := 0; i < hops; i++ {
			c.caps = append(c.caps, float64(e.Word(i*2+1)))
		}
		c.qAvg = make([]float64, hops)
		c.haveCaps = len(c.caps) > 0
	}, c.onMiss)
}

// probeCollect is phase 1; the echo handler runs phases 2 and 3.
func (c *StarController) probeCollect() {
	tpp, err := endhost.CollectProgram(collectStats, MaxHops, 5)
	if err != nil {
		panic(err)
	}
	c.prober.ProbeCfg(c.dstMAC, c.dstIP, tpp, c.probeCfg(), c.onCollect, c.onMiss)
}

// hopSample is one hop's record from a collect echo.
type hopSample struct {
	SwitchID uint32
	Queue    float64
	Util     float64
	RateReg  float64
	Epoch    uint32
}

func parseCollect(e *core.TPP) []hopSample {
	hops := int(e.Ptr) / 4 / collectWords
	out := make([]hopSample, 0, hops)
	for i := 0; i < hops; i++ {
		base := i * collectWords
		out = append(out, hopSample{
			SwitchID: e.Word(base),
			Queue:    float64(e.Word(base + 1)),
			Util:     float64(e.Word(base + 2)),
			RateReg:  float64(e.Word(base + 3)),
			Epoch:    e.Word(base + 4),
		})
	}
	return out
}

// onCollect implements phases 2 (compute) and 3 (update) of §2.2.
func (c *StarController) onCollect(e *core.TPP) {
	samples := parseCollect(e)
	if len(samples) == 0 || len(samples) > len(c.caps) {
		return
	}
	c.Collects++
	c.missed = 0
	c.mCollects.Inc()

	// Crash detection: a bumped boot epoch means the switch wiped every
	// register this controller seeded.  Reconcile the hop by restarting
	// its queue EWMA from the new (empty) queues; the zero-register
	// check below re-runs the footnote-3 initialization for the wiped
	// rate register itself.
	for i := range samples {
		if c.epochs.Observe(samples[i].SwitchID, samples[i].Epoch) {
			c.EpochBumps++
			c.qAvg[i] = 0
		}
	}

	// A zero rate register means the switch lost its RCP state (reboot,
	// reset): re-run the footnote-3 initialization for that hop by
	// seeding the register with the link capacity, and use the capacity
	// as this interval's reading so the flow doesn't stall at zero.
	for i := range samples {
		if samples[i].RateReg == 0 {
			samples[i].RateReg = c.caps[i]
			c.sendUpdate(samples[i].SwitchID, c.caps[i])
			c.Reinits++
		}
	}

	// Phase 2: compute R_link for every hop from the collected
	// samples; the flow's rate is the minimum fair share read from
	// the registers, and the bottleneck is the link with the smallest
	// computed R_link.
	minReg := math.Inf(1)
	minR := math.Inf(1)
	bottleneck := -1
	var bottleneckRate float64
	for i, s := range samples {
		c.qAvg[i] = 0.5*s.Queue + 0.5*c.qAvg[i]
		r := c.params.Update(s.RateReg, s.Util, c.qAvg[i], c.caps[i])
		if r < minR {
			minR = r
			bottleneck = i
			bottleneckRate = r
		}
		if s.RateReg < minReg {
			minReg = s.RateReg
		}
	}

	// Phase 3: install the new fair-share rate on the bottleneck
	// switch only, via CEXEC + STORE.  "The end-host need not know
	// the actual route to reach the bottleneck switch link": the TPP
	// follows the flow's path and executes only where the switch id
	// matches.
	c.sendUpdate(samples[bottleneck].SwitchID, bottleneckRate)

	// Adopt the fair share read from the registers.
	if !math.IsInf(minReg, 1) && minReg > 0 {
		c.LastRate = minReg
		c.mRate.Set(int64(minReg))
		c.Flow.SetRate(minReg)
		if !c.Flow.Running() {
			c.Flow.Start()
		}
	}
}

// sendUpdate emits the phase-3 TPP:
//
//	CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
//	STORE [Link:RCP-RateRegister], [PacketMemory:2]
func (c *StarController) sendUpdate(switchID uint32, rate float64) {
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(addrSwitchID), B: 0},
		{Op: core.OpSTORE, A: uint16(addrRateReg), B: 2},
	}, 3)
	tpp.SetWord(0, 0xFFFFFFFF) // mask
	tpp.SetWord(1, switchID)   // value
	tpp.SetWord(2, uint32(math.Min(rate, float64(^uint32(0)))))
	tpp.Ptr = 12 // packet memory is fully pre-initialized

	// Fire and forget: the update needs no echo, and a lost update is
	// retried next interval anyway.
	pkt := &core.Packet{
		Eth: core.Ethernet{Dst: c.dstMAC, Src: c.host.MAC, Type: core.EtherTypeTPP},
		TPP: tpp,
		IP: &core.IPv4{TTL: 64, Proto: core.ProtoUDP,
			Src: c.host.IP, Dst: c.dstIP},
		UDP:  &core.UDP{SrcPort: StarDataPort, DstPort: StarDataPort},
		Meta: core.Metadata{UID: c.host.NextUID()},
	}
	c.host.Send(pkt)
	c.Updates++
	c.mUpdates.Inc()
}
