package rcp

import "testing"

// TestFigure2StarSurvivesProbeLoss injects 5% frame loss on the
// bottleneck: probes and updates get dropped, but the controllers
// retry every interval ("a lost update is retried next interval"), so
// convergence still holds within a looser tolerance.
func TestFigure2StarSurvivesProbeLoss(t *testing.T) {
	cfg := DefaultFig2Config(VariantStar)
	cfg.LossRate = 0.05
	res := RunFigure2(cfg)

	want := fairShares()
	windows := [3][2]float64{{5, 10}, {15, 20}, {25, 30}}
	for i, w := range windows {
		got := res.MeanROverC(w[0], w[1])
		if rel := (got - want[i]) / want[i]; rel > 0.35 || rel < -0.35 {
			t.Errorf("lossy plateau %d: mean R/C = %.3f, want ~%.3f", i+1, got, want[i])
		}
	}
}

// TestFigure2StarHeavyLossDegradesGracefully pushes loss to 30%: the
// control loop must neither deadlock nor drive the registers to
// nonsense (rate stays within [floor, capacity]).
func TestFigure2StarHeavyLossDegradesGracefully(t *testing.T) {
	cfg := DefaultFig2Config(VariantStar)
	cfg.LossRate = 0.30
	cfg.Duration = 10_000_000_000 // 10s
	res := RunFigure2(cfg)
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range res.Samples {
		if s.ROverC < 0 || s.ROverC > 1.01 {
			t.Fatalf("R/C = %.3f at t=%.1f outside [0,1]", s.ROverC, s.T)
		}
	}
	// The single flow should still achieve meaningful goodput.
	last := res.Samples[len(res.Samples)-1]
	if last.Flows[0] <= 0 {
		t.Fatal("flow starved under loss")
	}
}
