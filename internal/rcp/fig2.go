package rcp

import (
	"fmt"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Variant selects which RCP implementation a Figure 2 run exercises.
type Variant string

// The two curves of Figure 2.
const (
	VariantStar     Variant = "rcpstar"  // TPP + end-host implementation
	VariantBaseline Variant = "baseline" // native in-switch RCP (ns-2 stand-in)
)

// Fig2Config parameterizes the Figure 2 experiment: "a 10Mb/s
// bottleneck link shared by three flows ... one flow each at t=0s,
// t=10s and t=20s".
type Fig2Config struct {
	Variant        Variant
	Duration       netsim.Time
	FlowStarts     []netsim.Time
	BottleneckMbps float64
	EdgeMbps       float64
	SampleEvery    netsim.Time
	Params         Params
	Seed           int64
	// LossRate injects random frame loss on the bottleneck link
	// (both data and probes), for robustness experiments; zero means
	// lossless.
	LossRate float64
	// Faults, when non-nil, is scheduled on an injector with the
	// bottleneck link registered as "bottleneck" (both directions) and
	// the two switches as "a" and "b".  Event times are relative to the
	// run (they are scheduled before PrimeL2 settles, at sim time 0).
	Faults *faults.Plan
	// Metrics, when non-nil, registers the switches' dataplane metrics
	// and each controller's control-loop metrics (rcp/flow<i>/...).
	Metrics *obs.Registry
}

// DefaultFig2Config returns the paper's setup.
func DefaultFig2Config(v Variant) Fig2Config {
	return Fig2Config{
		Variant:        v,
		Duration:       30 * netsim.Second,
		FlowStarts:     []netsim.Time{0, 10 * netsim.Second, 20 * netsim.Second},
		BottleneckMbps: 10,
		EdgeMbps:       100,
		SampleEvery:    100 * netsim.Millisecond,
		Params:         DefaultParams(),
		Seed:           1,
	}
}

// Fig2Sample is one point of the Figure 2 series.
type Fig2Sample struct {
	T      float64   // seconds
	ROverC float64   // fair-share rate R(t) normalized by capacity
	Flows  []float64 // per-flow goodput over the last sample window, bytes/sec
}

// Fig2Result is a full run.
type Fig2Result struct {
	Config  Fig2Config
	Samples []Fig2Sample
}

// RunFigure2 executes one Figure 2 run and returns the R(t)/C series.
func RunFigure2(cfg Fig2Config) Fig2Result {
	sim := netsim.New(cfg.Seed)
	n := topo.NewNetwork(sim)

	// Queues sized to one bandwidth-delay product of the bottleneck.
	queueCap := int(cfg.BottleneckMbps * 1e6 / 8 * cfg.Params.D.Seconds())
	swCfg := asic.Config{Ports: 8, QueueCapBytes: queueCap, Metrics: cfg.Metrics}
	a := n.AddSwitch(swCfg)
	b := n.AddSwitch(swCfg)
	bottleneck := topo.Mbps(cfg.BottleneckMbps, 10*netsim.Millisecond)
	edge := topo.Mbps(cfg.EdgeMbps, netsim.Millisecond)
	aPort, bPort := n.LinkSwitches(a, b, bottleneck)
	if cfg.LossRate > 0 {
		a.Port(aPort).Channel().SetLoss(cfg.LossRate, cfg.Seed+100)
	}
	if cfg.Faults != nil {
		inj := faults.NewInjector(sim, nil)
		inj.RegisterLink("bottleneck", a.Port(aPort).Channel(), b.Port(bPort).Channel())
		inj.RegisterSwitch("a", a)
		inj.RegisterSwitch("b", b)
		if err := inj.Schedule(*cfg.Faults); err != nil {
			panic(fmt.Sprintf("rcp: bad fault plan: %v", err))
		}
	}

	flows := len(cfg.FlowStarts)
	senders := make([]*endhost.Host, flows)
	receivers := make([]*endhost.Host, flows)
	for i := 0; i < flows; i++ {
		senders[i] = n.AddHost()
		n.LinkHost(senders[i], a, edge)
	}
	for i := 0; i < flows; i++ {
		receivers[i] = n.AddHost()
		n.LinkHost(receivers[i], b, edge)
	}
	n.PrimeL2(50 * netsim.Millisecond)

	capacityBytes := float64(cfg.BottleneckMbps * 1e6 / 8)
	recvBytes := make([]uint64, flows)

	var rateOf func() float64
	switch cfg.Variant {
	case VariantStar:
		InitRateRegisters(a, b)
		for i := 0; i < flows; i++ {
			i := i
			receivers[i].Handle(StarDataPort, func(p *core.Packet) {
				recvBytes[i] += uint64(p.PayloadLen())
			})
			ctl := NewStarController(sim, senders[i],
				endhost.NewProber(senders[i]),
				receivers[i].MAC, receivers[i].IP, cfg.Params)
			if cfg.Metrics != nil {
				ctl.EnableMetrics(cfg.Metrics, fmt.Sprintf("flow%d", i))
			}
			sim.At(sim.Now()+cfg.FlowStarts[i], ctl.Start)
		}
		bnPort := a.Port(aPort)
		rateOf = func() float64 { return float64(bnPort.Scratch(0)) }

	case VariantBaseline:
		base := NewBaseline(sim, cfg.Params)
		link := base.Manage(a, aPort)
		for i := 0; i < flows; i++ {
			i := i
			rcv := NewBaselineReceiver(sim, receivers[i], cfg.Params.T)
			_ = rcv
			receivers[i].Handle(BaselineDataPort, func(p *core.Packet) {
				recvBytes[i] += uint64(p.PayloadLen())
				rcv.onData(p)
			})
			snd := NewBaselineSender(sim, senders[i],
				receivers[i].MAC, receivers[i].IP, capacityBytes)
			sim.At(sim.Now()+cfg.FlowStarts[i], snd.Flow.Start)
		}
		rateOf = func() float64 { return link.Rate() }

	default:
		panic(fmt.Sprintf("rcp: unknown variant %q", cfg.Variant))
	}

	var result Fig2Result
	result.Config = cfg
	start := sim.Now()
	lastBytes := make([]uint64, flows)
	sim.Every(start+cfg.SampleEvery, cfg.SampleEvery, func() {
		s := Fig2Sample{
			T:      (sim.Now() - start).Seconds(),
			ROverC: rateOf() / capacityBytes,
		}
		for i := range recvBytes {
			s.Flows = append(s.Flows,
				float64(recvBytes[i]-lastBytes[i])/cfg.SampleEvery.Seconds())
			lastBytes[i] = recvBytes[i]
		}
		result.Samples = append(result.Samples, s)
	})
	sim.RunUntil(start + cfg.Duration)
	return result
}

// MeanROverC averages R(t)/C over the samples with from <= t < to:
// the convergence metric recorded in EXPERIMENTS.md.
func (r Fig2Result) MeanROverC(from, to float64) float64 {
	sum, n := 0.0, 0
	for _, s := range r.Samples {
		if s.T >= from && s.T < to {
			sum += s.ROverC
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ConvergenceTime returns how long after a flow-count change R/C took
// to stay within tol of target (scanning samples in [from, to)); it
// returns to-from when it never settles.
func (r Fig2Result) ConvergenceTime(from, to, target, tol float64) float64 {
	settledAt := to
	settled := false
	for _, s := range r.Samples {
		if s.T < from || s.T >= to {
			continue
		}
		if d := s.ROverC - target; d >= -tol && d <= tol {
			if !settled {
				settled = true
				settledAt = s.T
			}
		} else {
			settled = false
		}
	}
	if !settled {
		return to - from
	}
	return settledAt - from
}
