package rcp

import (
	"encoding/binary"
	"math"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
)

// Baseline is the native in-switch RCP implementation — the comparator
// curve of Figure 2 ("the original RCP algorithm available in ns2
// simulation").  Unlike RCP*, it requires the switch to run the control
// equation itself: exactly the specialized-ASIC functionality the paper
// argues TPPs make unnecessary.
//
// Each managed link maintains R(t), updated every T from the measured
// ingress byte rate and average queue, and stamps min(header, R) into
// the congestion header of every baseline data packet crossing it.
type Baseline struct {
	sim    *netsim.Sim
	params Params
	links  map[*asic.Switch]map[int]*BaselineLink
}

// NewBaseline builds the baseline controller.
func NewBaseline(sim *netsim.Sim, params Params) *Baseline {
	return &Baseline{sim: sim, params: params,
		links: make(map[*asic.Switch]map[int]*BaselineLink)}
}

// BaselineLink is the per-link RCP state of a native router.
type BaselineLink struct {
	sw   *asic.Switch
	port int

	params Params
	rate   float64 // R(t), bytes/sec

	lastEnqBytes uint64
	qSamples     float64
	qCount       int
}

// Rate returns R(t) in bytes/sec.
func (l *BaselineLink) Rate() float64 { return l.rate }

// Manage starts RCP on the egress link (sw, port) and installs the
// stamping hook.  All managed ports of one switch share one mirror.
func (b *Baseline) Manage(sw *asic.Switch, port int) *BaselineLink {
	capacity := float64(sw.Port(port).Channel().RateBytes())
	l := &BaselineLink{sw: sw, port: port, params: b.params, rate: capacity}
	if b.links[sw] == nil {
		b.links[sw] = make(map[int]*BaselineLink)
		links := b.links[sw]
		sw.SetMirror(func(pkt *core.Packet, in, out int) {
			if ml, ok := links[out]; ok {
				ml.stamp(pkt)
			}
		})
	}
	b.links[sw][port] = l

	// Sample the queue 8 times per control interval for q(t) ("q(t)
	// is the average queue size").
	b.sim.Every(b.sim.Now()+b.params.T/8, b.params.T/8, l.sampleQueue)
	b.sim.Every(b.sim.Now()+b.params.T, b.params.T, l.update)
	return l
}

func (l *BaselineLink) sampleQueue() {
	l.qSamples += float64(l.sw.Port(l.port).QueueBytes())
	l.qCount++
}

// update applies the control equation with y measured as the exact
// bytes enqueued toward this link during the last interval.
func (l *BaselineLink) update() {
	p := l.sw.Port(l.port)
	enq := p.EnqBytes()
	y := float64(enq-l.lastEnqBytes) / l.params.T.Seconds()
	l.lastEnqBytes = enq

	q := 0.0
	if l.qCount > 0 {
		q = l.qSamples / float64(l.qCount)
	}
	l.qSamples, l.qCount = 0, 0

	c := float64(p.Channel().RateBytes())
	l.rate = l.params.Update(l.rate, y, q, c)
}

// stamp writes min(header, R) into a baseline data packet's congestion
// header: "each router checks if its estimate of R(t) is smaller than
// the flow's fair-share (indicated on each packet's header); if so, it
// replaces the flow's fair share header value with R(t)".
func (l *BaselineLink) stamp(pkt *core.Packet) {
	if pkt.UDP == nil || pkt.UDP.DstPort != BaselineDataPort || len(pkt.Payload) < RateHeaderLen {
		return
	}
	cur := binary.BigEndian.Uint32(pkt.Payload)
	r := uint32(math.Min(l.rate, float64(^uint32(0))))
	if r < cur {
		binary.BigEndian.PutUint32(pkt.Payload, r)
	}
}

// BaselineReceiver aggregates the stamped rates of arriving data
// packets and periodically feeds the minimum back to the sender, the
// way RCP receivers echo the header in ACKs.
type BaselineReceiver struct {
	host    *endhost.Host
	sim     *netsim.Sim
	minSeen uint32
	srcMAC  core.MAC
	srcIP   uint32
	have    bool
}

// NewBaselineReceiver installs the receiver side on host, sending
// feedback every period.
func NewBaselineReceiver(sim *netsim.Sim, host *endhost.Host, period netsim.Time) *BaselineReceiver {
	r := &BaselineReceiver{host: host, sim: sim, minSeen: ^uint32(0)}
	host.Handle(BaselineDataPort, r.onData)
	sim.Every(sim.Now()+period, period, r.feedback)
	return r
}

func (r *BaselineReceiver) onData(pkt *core.Packet) {
	if len(pkt.Payload) < RateHeaderLen || pkt.IP == nil {
		return
	}
	rate := binary.BigEndian.Uint32(pkt.Payload)
	if rate < r.minSeen {
		r.minSeen = rate
	}
	r.srcMAC, r.srcIP = pkt.Eth.Src, pkt.IP.Src
	r.have = true
}

func (r *BaselineReceiver) feedback() {
	if !r.have {
		return
	}
	fb := r.host.NewPacket(r.srcMAC, r.srcIP, FeedbackPort, FeedbackPort, 0)
	fb.Payload = binary.BigEndian.AppendUint32(nil, r.minSeen)
	r.host.Send(fb)
	r.minSeen = ^uint32(0)
	r.have = false
}

// BaselineSender couples a paced flow to the feedback channel: each
// feedback packet retunes the pacing rate to the network's fair share.
type BaselineSender struct {
	Flow *PacedFlow
}

// NewBaselineSender builds the sender side of one baseline flow.
func NewBaselineSender(sim *netsim.Sim, host *endhost.Host, dstMAC core.MAC, dstIP uint32, initialRate float64) *BaselineSender {
	s := &BaselineSender{
		Flow: NewPacedFlow(sim, host, dstMAC, dstIP, BaselineDataPort, true),
	}
	s.Flow.SetRate(initialRate)
	host.Handle(FeedbackPort, func(pkt *core.Packet) {
		if len(pkt.Payload) >= RateHeaderLen {
			r := binary.BigEndian.Uint32(pkt.Payload)
			if r != ^uint32(0) {
				s.Flow.SetRate(float64(r))
			}
		}
	})
	return s
}
