package rcp

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/endhost"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// meanGoodput averages flow 0's goodput (bytes/sec) over samples with
// from <= t < to.
func meanGoodput(res Fig2Result, from, to float64) float64 {
	sum, n := 0.0, 0
	for _, s := range res.Samples {
		if s.T >= from && s.T < to {
			sum += s.Flows[0]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TestFigure2StarRecoversFromLinkFlap is the recovery acceptance test:
// a single RCP* flow converges, the bottleneck link goes down for 4s
// (dropping data, probes and updates alike), and after the link comes
// back the controller re-converges to the fair share without outside
// help — probes time out and are reaped during the outage, the flow
// holds its last rate, and the next successful collect resumes the
// loop.
func TestFigure2StarRecoversFromLinkFlap(t *testing.T) {
	cfg := DefaultFig2Config(VariantStar)
	cfg.Duration = 24 * netsim.Second
	cfg.FlowStarts = []netsim.Time{0}
	cfg.Faults = &faults.Plan{Seed: cfg.Seed, Events: faults.Flap(
		"bottleneck", 8*netsim.Second, 4*netsim.Second)}
	res := RunFigure2(cfg)

	capacity := cfg.BottleneckMbps * 1e6 / 8

	// Converged before the fault: one flow owns the whole link.
	if rc := res.MeanROverC(4, 8); rc < 0.65 || rc > 1.01 {
		t.Errorf("pre-fault mean R/C = %.3f, want ~1", rc)
	}
	pre := meanGoodput(res, 4, 8)
	if pre < 0.5*capacity {
		t.Fatalf("pre-fault goodput %.0f B/s, want > half of %.0f", pre, capacity)
	}

	// The outage bites: goodput collapses while the link is down.  (The
	// first half second drains in-flight queues, so measure after it.)
	if during := meanGoodput(res, 8.5, 12); during > 0.02*capacity {
		t.Errorf("goodput during outage = %.0f B/s, want ~0", during)
	}

	// And heals: after recovery the loop re-converges on its own.
	if rc := res.MeanROverC(18, 24); rc < 0.65 || rc > 1.01 {
		t.Errorf("post-recovery mean R/C = %.3f, want ~1", rc)
	}
	post := meanGoodput(res, 18, 24)
	if post < 0.5*capacity {
		t.Errorf("post-recovery goodput %.0f B/s, want > half of %.0f", post, capacity)
	}
	if post < 0.8*pre {
		t.Errorf("recovery incomplete: goodput %.0f B/s vs %.0f before the fault", post, pre)
	}
}

// TestStarControllerDegradesAndRecovers drives one controller directly
// through a long outage and checks the degradation contract: probe
// deadlines reap the pending set (bounded, no leak), consecutive
// misses push the controller back into capacity discovery, and after
// the link returns the loop finds the fair share again.
func TestStarControllerDegradesAndRecovers(t *testing.T) {
	sim := netsim.New(1)
	params := DefaultParams()
	n, senders, receivers, a, b := topo.Dumbbell(sim, 1,
		topo.Mbps(100, netsim.Millisecond), topo.Mbps(10, 10*netsim.Millisecond),
		asic.Config{Ports: 8, QueueCapBytes: 125_000})
	n.PrimeL2(50 * netsim.Millisecond)
	InitRateRegisters(a, b)

	inj := faults.NewInjector(sim, nil)
	inj.RegisterLink("bn", a.Port(0).Channel(), b.Port(0).Channel())
	if err := inj.Schedule(faults.Plan{Seed: 1, Events: faults.Flap(
		"bn", 3*netsim.Second, 5*netsim.Second)}); err != nil {
		t.Fatal(err)
	}

	prober := endhost.NewProber(senders[0])
	ctl := NewStarController(sim, senders[0], prober,
		receivers[0].MAC, receivers[0].IP, params)
	ctl.Start()
	defer ctl.Stop()

	// Mid-outage: every probe since t=3s has been eaten.
	sim.RunUntil(7 * netsim.Second)
	if ctl.Timeouts == 0 {
		t.Fatal("no probe deadlines fired during a 4s outage")
	}
	if ctl.haveCaps {
		t.Fatal("controller still trusts pre-outage capacities after sustained misses")
	}
	// Pending is bounded by the probes still inside their deadline
	// window (timeout / T of them), not by every probe ever sent.
	if max := int(2*params.D/params.T) + 2; prober.Outstanding() > max {
		t.Fatalf("pending grew to %d (> %d): probes leak during outage", prober.Outstanding(), max)
	}

	// After recovery: discovery reruns and the rate converges to the
	// full 10 Mb/s fair share again.
	sim.RunUntil(15 * netsim.Second)
	if !ctl.haveCaps {
		t.Fatal("controller never rediscovered capacities after recovery")
	}
	if ctl.LastRate < 0.65*1.25e6 {
		t.Fatalf("post-recovery rate %.0f B/s, want near capacity (1.25e6)", ctl.LastRate)
	}
	if prober.Outstanding() > 2 {
		t.Fatalf("steady state left %d probes pending", prober.Outstanding())
	}
}
