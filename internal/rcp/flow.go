package rcp

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
)

// UDP ports used by the congestion-control experiment.
const (
	// BaselineDataPort marks native-RCP data packets; switches stamp
	// the fair-share rate into their congestion header.
	BaselineDataPort = 8000
	// StarDataPort marks RCP* data packets (no in-network stamping).
	StarDataPort = 8001
	// FeedbackPort carries the receiver's rate feedback back to the
	// sender in the native-RCP baseline.
	FeedbackPort = 8002
)

// RateHeaderLen is the congestion header carried at the front of
// baseline data payloads: the fair-share rate in bytes/sec.
const RateHeaderLen = 4

// PacketSize is the data packet payload size used by the experiment
// (1000-byte frames on the wire once headers are added).
const PacketSize = 958

// PacedFlow is a long-lived, rate-paced UDP flow with infinite backlog:
// the flow model of the Figure 2 experiment.
type PacedFlow struct {
	sim    *netsim.Sim
	host   *endhost.Host
	dstMAC core.MAC
	dstIP  uint32
	port   uint16
	size   int // payload bytes per packet

	rate    float64 // bytes/sec
	running bool
	epoch   int // invalidates scheduled sends from earlier Start/Stop cycles

	// budget, when positive, bounds the payload bytes to send; the
	// flow stops itself and calls onDone after the last packet.
	budget uint64
	onDone func()

	// Sent counts transmitted packets; SentBytes counts payload bytes.
	Sent      uint64
	SentBytes uint64

	// stampRate, when true, prepends the congestion header the
	// baseline's switches stamp.
	stampRate bool
}

// NewPacedFlow builds a flow from host toward the destination.
func NewPacedFlow(sim *netsim.Sim, host *endhost.Host, dstMAC core.MAC, dstIP uint32, port uint16, stampRate bool) *PacedFlow {
	return &PacedFlow{
		sim: sim, host: host, dstMAC: dstMAC, dstIP: dstIP,
		port: port, size: PacketSize, stampRate: stampRate,
	}
}

// Rate returns the current pacing rate in bytes/sec.
func (f *PacedFlow) Rate() float64 { return f.rate }

// SetBudget makes this a finite flow of the given payload size; fn (may
// be nil) runs when the last byte has been handed to the NIC.  Finite
// flows model the "flows finish quickly" workloads RCP targets.
func (f *PacedFlow) SetBudget(bytes uint64, fn func()) {
	f.budget = bytes
	f.onDone = fn
}

// Done reports whether a budgeted flow has sent everything.
func (f *PacedFlow) Done() bool { return f.budget > 0 && f.SentBytes >= f.budget }

// SetRate changes the pacing rate; it takes effect from the next
// scheduled packet.
func (f *PacedFlow) SetRate(r float64) {
	if r < 1 {
		r = 1
	}
	f.rate = r
}

// Start begins transmission at the current rate.
func (f *PacedFlow) Start() {
	if f.running {
		return
	}
	f.running = true
	f.epoch++
	epoch := f.epoch
	f.sim.After(0, func() { f.pump(epoch) })
}

// Stop halts transmission.
func (f *PacedFlow) Stop() { f.running = false; f.epoch++ }

// Running reports whether the flow is transmitting.
func (f *PacedFlow) Running() bool { return f.running }

func (f *PacedFlow) pump(epoch int) {
	if !f.running || epoch != f.epoch || f.rate <= 0 {
		return
	}
	if f.Done() {
		f.running = false
		if f.onDone != nil {
			f.onDone()
		}
		return
	}
	pkt := f.host.NewPacket(f.dstMAC, f.dstIP, f.port, f.port, 0)
	if f.stampRate {
		// Congestion header: initialized to "no limit" so the first
		// switch's stamp always applies.
		pkt.Payload = binary.BigEndian.AppendUint32(nil, ^uint32(0))
		pkt.PadLen = f.size - RateHeaderLen
	} else {
		pkt.PadLen = f.size
	}
	f.host.Send(pkt)
	f.Sent++
	f.SentBytes += uint64(f.size)
	// Pace: the next packet departs one serialization interval later
	// at the current rate.
	gap := netsim.Time(float64(f.size+42) / f.rate * float64(netsim.Second))
	if gap < netsim.Microsecond {
		gap = netsim.Microsecond
	}
	f.sim.After(gap, func() { f.pump(epoch) })
}
