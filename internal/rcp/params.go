// Package rcp implements the §2.2 congestion-control experiment: the
// Rate Control Protocol, both as RCP* ("an end-host implementation of
// RCP" built from TPP probes) and as the native in-switch baseline
// standing in for the paper's ns-2 reference simulation.
//
// Both variants share the RCP control equation:
//
//	R(t+T) = R(t) * (1 - (T/d) * (α·(y(t)-C) + β·q(t)/d) / C)
//
// where y(t) is the average ingress link utilization, q(t) the average
// queue size, d the average round-trip time of flows on the link, C the
// link capacity, and α, β configurable gains (the paper uses α = 0.5,
// β = 1).
package rcp

import (
	"repro/internal/netsim"
)

// DefaultAlpha and DefaultBeta are the gains of Figure 2 ("we set
// α = 0.5, β = 1 for both").
const (
	DefaultAlpha = 0.5
	DefaultBeta  = 1.0
)

// MinRateFraction floors the fair-share rate at a small fraction of
// capacity so the control loop can always recover.
const MinRateFraction = 0.01

// Params holds the control-loop constants shared by a set of flows.
type Params struct {
	// Alpha and Beta are the control gains.
	Alpha, Beta float64
	// T is the control period ("computed periodically (every T
	// seconds)").
	T netsim.Time
	// D is the average round-trip time of flows traversing the link.
	D netsim.Time
}

// DefaultParams returns the Figure 2 configuration: α = 0.5, β = 1,
// T = 50ms against a 100ms flow RTT scale.
func DefaultParams() Params {
	return Params{Alpha: DefaultAlpha, Beta: DefaultBeta,
		T: 50 * netsim.Millisecond, D: 100 * netsim.Millisecond}
}

// Update applies the RCP control equation.  r, y and c are in
// bytes/second, q in bytes.  The result is clamped to
// [MinRateFraction*c, c].
func (p Params) Update(r, y, q, c float64) float64 {
	if c <= 0 {
		return 0
	}
	t := p.T.Seconds()
	d := p.D.Seconds()
	feedback := (t / d) * (p.Alpha*(y-c) + p.Beta*q/d) / c
	r = r * (1 - feedback)
	if min := MinRateFraction * c; r < min {
		r = min
	}
	if r > c {
		r = c
	}
	return r
}
