package asic_test

import (
	"fmt"
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/verify"
)

// TestSRAMBounds is the regression test for the out-of-range SRAM
// accessors: a buggy (or hostile) control program indexing outside the
// bank must read zero and write nothing, not panic the switch.
func TestSRAMBounds(t *testing.T) {
	sim := netsim.New(1)
	sw := asic.New(sim, asic.Config{})

	sw.SetSRAM(5, 42)
	if got := sw.SRAM(5); got != 42 {
		t.Fatalf("SRAM(5) = %d, want 42", got)
	}
	for _, i := range []int{-1, -1000, mem.SRAMWords, mem.SRAMWords + 1, 1 << 20} {
		if got := sw.SRAM(i); got != 0 {
			t.Errorf("SRAM(%d) = %d, want 0", i, got)
		}
		sw.SetSRAM(i, 0xdead) // must be a no-op, not a panic
	}
	if got := sw.SRAM(5); got != 42 {
		t.Fatalf("out-of-range SetSRAM corrupted the bank: SRAM(5) = %d", got)
	}
}

// TestRebootWipesSoftState crash-restarts a switch and checks the
// reboot contract: scratch SRAM, the allocator, learned L2 entries and
// port scratch are wiped; the boot epoch increments; configured state
// (TCAM/L3 routes, link wiring) survives; and the switch is dark for
// exactly the boot delay.
func TestRebootWipesSoftState(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(5 * netsim.Millisecond)

	// Plant soft state of every kind.
	sw.SetSRAM(0, 0xdeadbeef)
	if _, err := sw.Allocator().Alloc("tally", 8); err != nil {
		t.Fatal(err)
	}
	sw.Port(0).SetScratch(0, 777)
	view := sw.ViewForTesting(nil, 0)
	if l2, _ := view.Load(mem.SwitchBase + mem.SwitchL2Size); l2 == 0 {
		t.Fatal("PrimeL2 learned nothing; test is vacuous")
	}

	const bootDelay = 2 * netsim.Millisecond
	rebootAt := sim.Now()
	sw.Reboot(bootDelay)

	if got := sw.Epoch(); got != 1 {
		t.Fatalf("Epoch = %d, want 1", got)
	}
	if !sw.Booting() {
		t.Fatal("switch not booting right after Reboot")
	}
	if got := sw.SRAM(0); got != 0 {
		t.Fatalf("SRAM survived reboot: %#x", got)
	}
	if _, ok := sw.Allocator().Lookup("tally"); ok {
		t.Fatal("allocator region survived reboot")
	}
	if got := sw.Port(0).Scratch(0); got != 0 {
		t.Fatalf("port scratch survived reboot: %d", got)
	}
	if l2, _ := view.Load(mem.SwitchBase + mem.SwitchL2Size); l2 != 0 {
		t.Fatalf("L2 table survived reboot: %d entries", l2)
	}

	// Packets sent while the switch is dark vanish (and are counted).
	base := h2.Received
	h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1000, 2000, 100))
	sim.RunUntil(rebootAt + bootDelay/2)
	if h2.Received != base {
		t.Fatalf("packet delivered through a dark switch")
	}

	sim.RunUntil(rebootAt + bootDelay + netsim.Millisecond)
	if sw.Booting() {
		t.Fatal("switch still booting after the boot delay")
	}
	if sw.RebootDrops() == 0 {
		t.Fatal("dark-period packet not counted in RebootDrops")
	}

	// Forwarding resumes: L2 is relearned by flooding, like a cold boot.
	h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1000, 2000, 100))
	sim.RunUntil(sim.Now() + 10*netsim.Millisecond)
	if h2.Received == base {
		t.Fatal("forwarding did not resume after boot")
	}
}

// TestRebootEpochVisibleToTPP sends a plain PUSH [Switch:Epoch] collect
// probe before and after a crash-restart: the epoch word must be
// readable through the unified memory map by an ordinary TPP, and the
// program must pass static verification under default device limits.
func TestRebootEpochVisibleToTPP(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(5 * netsim.Millisecond)

	prog := func() *core.TPP {
		tpp, err := endhost.CollectProgram(
			[]mem.Addr{mem.SwitchBase + mem.SwitchEpoch}, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		return tpp
	}
	if res := verify.Verify(prog(), verify.Config{}); !res.OK() {
		t.Fatalf("verifier rejects the epoch collect program: %v", res)
	}

	prober := endhost.NewProber(h1)
	readEpoch := func() uint32 {
		var got uint32
		ok := false
		prober.Probe(h2.MAC, h2.IP, prog(), func(e *core.TPP) {
			got = e.Word(0)
			ok = true
		})
		sim.RunUntil(sim.Now() + 20*netsim.Millisecond)
		if !ok {
			t.Fatal("epoch probe echo never arrived")
		}
		return got
	}

	if e := readEpoch(); e != 0 {
		t.Fatalf("pre-reboot epoch = %d, want 0", e)
	}
	sw.Reboot(netsim.Millisecond)
	sim.RunUntil(sim.Now() + 2*netsim.Millisecond)
	n.PrimeL2(5 * netsim.Millisecond) // relearn L2 after the wipe
	if e := readEpoch(); e != 1 {
		t.Fatalf("post-reboot epoch = %d, want 1", e)
	}
}

// TestThrottleForwardsUnexecuted exhausts the TCPU admission gate and
// checks the line-rate degradation contract: throttled packets still
// forward (and echo back), carry FlagThrottled with no execution, and
// the tpps_throttled counter, metric and StageThrottle span stream all
// agree exactly.
func TestThrottleForwardsUnexecuted(t *testing.T) {
	sim := netsim.New(1)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 12)
	n := topo.NewNetwork(sim)
	// One token, effectively no refill: the first TPP executes, every
	// later one is throttled.
	sw := n.AddSwitch(asic.Config{Ports: 4, TPPRate: 1e-9, TPPBurst: 1,
		Metrics: reg, Trace: tr})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(5 * netsim.Millisecond)

	prober := endhost.NewProber(h1)
	const probes = 3
	var executed, throttled int
	for i := 0; i < probes; i++ {
		prober.Probe(h2.MAC, h2.IP, queueProbe(3), func(e *core.TPP) {
			if e.Flags&core.FlagThrottled != 0 {
				throttled++
				if e.Ptr != 0 {
					t.Errorf("throttled TPP was executed: SP = %d", e.Ptr)
				}
			} else {
				executed++
				if e.Ptr == 0 {
					t.Error("admitted TPP was not executed")
				}
			}
		})
	}
	sim.RunUntil(50 * netsim.Millisecond)

	if executed != 1 || throttled != probes-1 {
		t.Fatalf("executed=%d throttled=%d, want 1 and %d", executed, throttled, probes-1)
	}
	if got := sw.TPPsThrottled(); got != uint64(probes-1) {
		t.Fatalf("TPPsThrottled = %d, want %d", got, probes-1)
	}

	// Counter, metric and span stream must reconcile exactly.
	snap := reg.Snapshot(int64(sim.Now()))
	m, ok := snap.Get(fmt.Sprintf("switch/%d/tpps_throttled", sw.ID()))
	if !ok || uint64(m.Value) != sw.TPPsThrottled() {
		t.Fatalf("metric tpps_throttled = %v (ok=%v), want %d", m.Value, ok, sw.TPPsThrottled())
	}
	spans := 0
	for _, ev := range tr.Events() {
		if ev.Stage == obs.StageThrottle {
			spans++
		}
	}
	if uint64(spans) != sw.TPPsThrottled() {
		t.Fatalf("StageThrottle spans = %d, want %d", spans, sw.TPPsThrottled())
	}
}

// TestThrottleRefill verifies the bucket refills from simulated time:
// after waiting long enough at a finite rate, a fresh TPP executes
// again.
func TestThrottleRefill(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, TPPRate: 100, TPPBurst: 1}) // 1 token / 10ms
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(5 * netsim.Millisecond)

	prober := endhost.NewProber(h1)
	send := func() (flags uint8) {
		done := false
		prober.Probe(h2.MAC, h2.IP, queueProbe(3), func(e *core.TPP) {
			flags = e.Flags
			done = true
		})
		sim.RunUntil(sim.Now() + 5*netsim.Millisecond)
		if !done {
			t.Fatal("probe echo never arrived")
		}
		return flags
	}

	if f := send(); f&core.FlagThrottled != 0 {
		t.Fatal("first probe throttled with a full bucket")
	}
	if f := send(); f&core.FlagThrottled == 0 {
		t.Fatal("second probe admitted before the bucket refilled")
	}
	sim.RunUntil(sim.Now() + 20*netsim.Millisecond) // > 1 token refilled
	if f := send(); f&core.FlagThrottled != 0 {
		t.Fatal("probe throttled after the bucket refilled")
	}
	if got := sw.TPPsThrottled(); got != 1 {
		t.Fatalf("TPPsThrottled = %d, want 1", got)
	}
}
