package asic_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/tcam"
	"repro/internal/topo"
)

type condStorer interface {
	CondStore(mem.Addr, uint32, uint32) (uint32, error)
}

func TestAbsoluteWindowScratchStores(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h := n.AddHost()
	n.LinkHost(h, sw, edge)

	view := sw.ViewForTesting(nil, 0)
	// Store through the absolute window to port 1's scratch while the
	// packet context is port 0.
	abs := mem.PortAbs(1, mem.PortScratchBase+2)
	if err := view.Store(abs, 555); err != nil {
		t.Fatal(err)
	}
	if got := sw.Port(1).Scratch(2); got != 555 {
		t.Fatalf("port 1 scratch = %d", got)
	}
	if sw.Port(0).Scratch(2) != 0 {
		t.Fatal("context port written instead of absolute target")
	}
	// Read it back both ways.
	v1, _ := view.Load(abs)
	v2, _ := sw.ViewForTesting(nil, 1).Load(mem.PortBase + mem.PortScratchBase + 2)
	if v1 != 555 || v2 != 555 {
		t.Fatalf("reads: abs=%d rel=%d", v1, v2)
	}
	// A store to an absolute port beyond the port count faults.
	if err := view.Store(mem.PortAbs(9, mem.PortScratchBase), 1); err == nil {
		t.Fatal("store beyond port count accepted")
	}
}

func TestCondStoreErrorPaths(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h := n.AddHost()
	n.LinkHost(h, sw, edge)
	cs := sw.ViewForTesting(nil, 0).(condStorer)

	if _, err := cs.CondStore(mem.QueueBase, 0, 1); err == nil {
		t.Fatal("CondStore to read-only statistic accepted")
	}
	if _, err := cs.CondStore(mem.SwitchBase+0xF0, 0, 1); err == nil {
		t.Fatal("CondStore to unmapped word accepted")
	}
	// Mismatch leaves the word untouched but reports the old value.
	a := mem.SRAMBase + 7
	sw.SetSRAM(7, 42)
	old, err := cs.CondStore(a, 1, 99)
	if err != nil || old != 42 || sw.SRAM(7) != 42 {
		t.Fatalf("mismatched CondStore: old=%d sram=%d err=%v", old, sw.SRAM(7), err)
	}
}

func TestPortAccessors(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, QueuesPerPort: 2})
	h := n.AddHost()
	p := n.LinkHost(h, sw, edge)

	port := sw.Port(p)
	if port.ID() != p || !port.Trusted() || !port.Wired() {
		t.Fatal("port accessors wrong")
	}
	if port.Queues() != 2 || port.Queue(1) == nil {
		t.Fatal("queue accessors wrong")
	}
	if port.Channel().Rate() != edge.RateBps {
		t.Fatal("channel accessor wrong")
	}
	port.SetSNR(2500)
	if port.SNR() != 2500 {
		t.Fatal("SNR register wrong")
	}
	port.SetScratch(3, 9)
	if port.Scratch(3) != 9 {
		t.Fatal("scratch accessor wrong")
	}
	if port.RXUtil() != 0 || port.TXUtil() != 0 {
		t.Fatal("fresh meters nonzero")
	}
	if sw.Now() != sim.Now() {
		t.Fatal("clock accessor wrong")
	}
	if sw.Allocator() == nil {
		t.Fatal("allocator accessor wrong")
	}
}

func TestWirePanicsOnBadPort(t *testing.T) {
	sim := netsim.New(1)
	sw := asic.New(sim, asic.Config{Ports: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sw.Wire(5, netsim.NewChannel(sim, 1000, 0, sw, 0))
}

func TestUnwiredEgressIsBlackhole(t *testing.T) {
	// A TCAM rule pointing at an unwired port silently blackholes the
	// packet (and the switch counts it) instead of crashing.
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())

	// Route h2's traffic to port 3, which has no channel.
	v, m := dstRule(h2.IP)
	sw.TCAM().Insert(10, v, m, actionOut(3))
	before := h2.Received
	h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 10))
	sim.RunUntil(sim.Now() + 20*netsim.Millisecond)
	if h2.Received != before {
		t.Fatal("packet escaped the blackhole")
	}
}

// helpers shared with the TCAM tests in this package.
func dstRule(ip uint32) (tcam.Key, tcam.Key) { return tcam.DstIPRule(ip) }
func actionOut(p int) tcam.Action            { return tcam.Action{OutPort: p} }
