package asic

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/l2"
	"repro/internal/l3"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/tcam"
	"repro/internal/tcpu"
	"repro/internal/verify"
)

// Config parameterizes a switch.
type Config struct {
	// ID is the administratively assigned switch id ([Switch:SwitchID]).
	ID uint32
	// Ports is the port count.
	Ports int
	// QueuesPerPort selects the number of egress queues per port
	// (default 1; the scheduler serves them in strict priority).
	QueuesPerPort int
	// QueueCapBytes is each egress queue's capacity (default 150000,
	// one hundred 1500-byte frames).
	QueueCapBytes int
	// PipelineLatency is the fixed parse+lookup latency before a
	// packet reaches the queues (default 500ns, of which the §3.3
	// TCPU budget is a part).
	PipelineLatency netsim.Time
	// StatsInterval is the housekeeping period for utilization meters
	// (default 10ms).
	StatsInterval netsim.Time
	// UtilGain is the EWMA gain of the utilization meters (default
	// 0.5).
	UtilGain float64
	// TCPU configures the tiny CPU (instruction limit).
	TCPU tcpu.Config
	// Verify enables the paranoid parser: every TPP arriving on a
	// trusted port is statically verified before execution, and
	// programs with error-severity diagnostics are stripped instead
	// of run.  Nil (the default) trusts end-hosts to pre-verify, as
	// §3.5 assumes.  Zero-valued limits in the config are resolved
	// against this switch's TCPU instruction limit and port count.
	Verify *verify.Config
	// L2AgeNs is the MAC table entry lifetime in nanoseconds.
	L2AgeNs int64

	// TPPRate enables the TCPU admission gate: a token bucket refilled
	// at TPPRate executions per second with burst capacity TPPBurst.
	// When the bucket is empty an arriving TPP is *not* executed — the
	// packet forwards unmodified with core.FlagThrottled set, degrading
	// to plain forwarding exactly as the line-rate argument requires —
	// and the tpps_throttled counter and a StageThrottle span record
	// the event.  Zero (the default) disables the gate: every TPP
	// executes, as the paper's per-packet cycle budget assumes.
	TPPRate float64
	// TPPBurst is the token bucket depth; zero is resolved to
	// DefaultTPPBurst when TPPRate is set, like the verify limits.
	TPPBurst int

	// Guard enables the multi-tenant isolation subsystem: per-tenant
	// SRAM partitions with base+bounds relocation, per-namespace ACLs
	// enforced fail-forward in the TCPU memory stage, and — when
	// TPPRate is also set — per-tenant admission buckets splitting the
	// aggregate rate by weighted share (replacing the global bucket).
	// Tenants are admitted with Switch.GrantTenant; the operator tenant
	// (id 0) is built in with full access, so a guarded switch carrying
	// only untenanted traffic behaves exactly like an unguarded one.
	Guard bool

	// ECNThresholdBytes enables the fixed-function ECN comparator of
	// §4 ("a router stamps a bit in the IP header whenever the egress
	// queue occupancy exceeds a configurable threshold"): ECN-capable
	// packets are marked CE when the egress queue is at or above this
	// many bytes.  Zero disables marking.
	ECNThresholdBytes int
	// RecordRoute enables the fixed-function IP Record Route
	// comparator of §4: switches append their id to a packet's RR
	// option.  (Real routers record interface IPs; our switches have
	// none, so the id stands in.)
	RecordRoute bool

	// Metrics registers this switch's counters and histograms
	// (hierarchically keyed switch/<id>/...).  Nil disables metric
	// recording: the hot path then touches only nil handles, which
	// cost one branch and never allocate.
	Metrics *obs.Registry
	// Trace records packet-lifecycle span events at every pipeline
	// stage (parser, lookup, TCPU, memory manager, egress queue,
	// scheduler).  Nil disables tracing.  Enabling it also turns on
	// per-instruction TCPU spans (tcpu.Config.RecordSpans).
	Trace *obs.Tracer
}

func (c *Config) fill() {
	if c.Ports <= 0 {
		c.Ports = 4
	}
	if c.QueuesPerPort <= 0 {
		c.QueuesPerPort = 1
	}
	if c.QueueCapBytes <= 0 {
		c.QueueCapBytes = 150_000
	}
	if c.PipelineLatency <= 0 {
		c.PipelineLatency = 500 * netsim.Nanosecond
	}
	if c.StatsInterval <= 0 {
		c.StatsInterval = 10 * netsim.Millisecond
	}
	if c.UtilGain <= 0 || c.UtilGain > 1 {
		c.UtilGain = 0.5
	}
	if c.TPPRate > 0 && c.TPPBurst <= 0 {
		c.TPPBurst = DefaultTPPBurst
	}
}

// DefaultTPPBurst is the admission-gate bucket depth when TPPRate is
// configured without an explicit burst.
const DefaultTPPBurst = 8

// ForwardFunc observes every packet the switch forwards; the baseline
// ndb implementation (§2.3) attaches here to generate its truncated
// per-hop packet copies.
type ForwardFunc func(pkt *core.Packet, inPort, outPort int)

// ReflexHook is the dataplane failure-reaction agent (internal/reflex):
// it sees every packet after egress selection and may override the
// egress port — the sub-RTT fast-reroute path.  The hook runs at
// per-packet cadence on the forwarding hot path and must not allocate
// in steady state.
type ReflexHook interface {
	Transit(pkt *core.Packet, outPort int) int
}

// Switch is a TPP-capable switch.
type Switch struct {
	sim *netsim.Sim
	cfg Config

	ports []*Port
	l2    *l2.Table
	l3    *l3.Table
	tcam  *tcam.Table

	alloc *mem.Allocator
	sram  []uint32
	busMu sync.Mutex // serializes TPP stores, making CSTORE linearizable

	packets       uint64 // packets switched
	cstores       uint64 // CSTORE commits (compare matched, store applied)
	tppsExecuted  uint64
	tppsStripped  uint64
	tppsRejected  uint64 // stripped by the paranoid verifier
	tppsThrottled uint64 // forwarded without execution (gate exhausted)
	tppsDenied    uint64 // guarded accesses denied (poisoned loads + dropped stores)
	ttlDrops      uint64
	blackholes    uint64 // packets with no forwarding decision

	// Crash-restart state.  epoch is the boot generation counter
	// exposed at [Switch:Epoch]; it increments on every Reboot so
	// end-hosts can detect that soft state was wiped.  booting is set
	// for the boot-delay window, during which the switch eats every
	// arriving frame.
	epoch       uint32
	booting     bool
	reboots     uint64
	rebootDrops uint64 // packets eaten while down or wiped mid-pipeline

	// TCPU admission gate (token bucket; active when cfg.TPPRate > 0).
	tppTokens   float64
	tppRefillAt netsim.Time

	// Tenant guard (nil unless cfg.Guard): the table holds every grant
	// in force plus the per-tenant admission buckets; mTenantDenied
	// caches the per-tenant denial metric handles.
	guard         *guard.Table
	mTenantDenied map[guard.TenantID]*obs.Counter

	// spin holds the fixed-function spin-bit observers (§4-style
	// comparator; nil when none are installed).  The slice keeps watch
	// iteration deterministic.
	spin []*spinWatch

	mirror ForwardFunc
	reflex ReflexHook

	// tcpuOff disables TPP execution on this switch (fault injection:
	// a broken or administratively disabled TCPU).  Packets still
	// forward; their programs simply do not run here, so hop traces
	// skip this switch.
	tcpuOff bool

	// progCache holds this switch's compiled TPPs, keyed on wire bytes
	// plus the TCPU config the compilation was produced under, so
	// repeated flows never re-decode a program.  It is flushed on
	// Reboot and on every tenant grant change (see guard.go): the
	// compilation itself bakes no guard state in, but a flush is cheap
	// and makes staleness structurally impossible.
	progCache *tcpu.Cache

	// execView and execGuard are the per-execution memory-view scratch:
	// the dataplane is single-threaded (one event at a time), so the
	// TCPU can reuse one view per switch instead of allocating one per
	// packet.  They are rebound in execTPP and never escape it.
	execView  view
	execGuard guardedView

	// Telemetry: span tracer plus pre-resolved metric handles (all
	// nil when disabled — recording through them is then a no-op).
	tracer *obs.Tracer
	m      switchMetrics

	// LastTCPU holds the result of the most recent TPP execution,
	// for tests and the cycle-model experiments.
	LastTCPU tcpu.Result
}

// switchMetrics bundles the per-switch metric handles, resolved once
// at construction so the dataplane never does name lookups.
type switchMetrics struct {
	packets       *obs.Counter
	tpps          *obs.Counter
	tppFaults     *obs.Counter
	tppOverBudget *obs.Counter
	tppsStripped  *obs.Counter
	tppsRejected  *obs.Counter
	tppsThrottled *obs.Counter
	tppsDenied    *obs.Counter
	ttlDrops      *obs.Counter
	blackholes    *obs.Counter
	reboots       *obs.Counter
	rebootDrops   *obs.Counter
	cstores       *obs.Counter   // CSTORE commits
	spinEdges     *obs.Counter   // spin-bit transitions observed
	spinSamples   *obs.Counter   // spin intervals bucketed into SRAM
	tcpuCycles    *obs.Histogram // modeled cycles per TPP execution
	hopLatency    *obs.Histogram // ns from parser to scheduler dequeue
}

// New builds a switch and registers its housekeeping ticker with the
// simulator.
func New(sim *netsim.Sim, cfg Config) *Switch {
	cfg.fill()
	if cfg.Trace != nil {
		// Per-instruction TCPU spans ride along with lifecycle
		// tracing so -trace output can audit the §3.3 budget.
		cfg.TCPU.RecordSpans = true
	}
	if cfg.Verify != nil {
		// Resolve the verifier against this device's actual limits so
		// static acceptance matches what the TCPU will enforce.
		v := *cfg.Verify
		if v.MaxInstructions <= 0 {
			v.MaxInstructions = cfg.TCPU.MaxInstructions
		}
		if v.Ports <= 0 {
			v.Ports = cfg.Ports
		}
		cfg.Verify = &v
	}
	s := &Switch{
		sim:    sim,
		cfg:    cfg,
		l2:     l2.New(cfg.L2AgeNs),
		l3:     l3.New(),
		tcam:   tcam.New(),
		alloc:  mem.NewAllocator(),
		sram:   make([]uint32, mem.SRAMWords),
		tracer: cfg.Trace,
	}
	s.progCache = tcpu.NewCache(cfg.TCPU, 0)
	s.tppTokens = float64(cfg.TPPBurst) // the gate starts full
	if cfg.Guard {
		s.guard = guard.NewTable()
		s.mTenantDenied = make(map[guard.TenantID]*obs.Counter)
		// Mutual avoidance: operator task regions and tenant partitions
		// share the one SRAM bank, and both sides carve it first-fit
		// from SRAMBase.  Without cross-registration a tenant grant can
		// land exactly over a live operator region (zeroing it, then
		// aliasing it through the tenant's relocated window) and a
		// post-reboot re-allocation can land inside a surviving tenant
		// partition.  Each carver treats the other's live regions as
		// taken.
		s.guard.SetReserved(s.alloc.Regions)
		s.alloc.SetReserved(s.guard.Partitions)
	}
	reg := cfg.Metrics // nil registry hands out nil (no-op) handles
	s.m = switchMetrics{
		packets:       reg.Counter(fmt.Sprintf("switch/%d/packets", cfg.ID)),
		tpps:          reg.Counter(fmt.Sprintf("switch/%d/tpps_executed", cfg.ID)),
		tppFaults:     reg.Counter(fmt.Sprintf("switch/%d/tpp_faults", cfg.ID)),
		tppOverBudget: reg.Counter(fmt.Sprintf("switch/%d/tcpu_over_budget", cfg.ID)),
		tppsStripped:  reg.Counter(fmt.Sprintf("switch/%d/tpps_stripped", cfg.ID)),
		tppsRejected:  reg.Counter(fmt.Sprintf("switch/%d/tpps_rejected", cfg.ID)),
		tppsThrottled: reg.Counter(fmt.Sprintf("switch/%d/tpps_throttled", cfg.ID)),
		tppsDenied:    reg.Counter(fmt.Sprintf("switch/%d/tpps_denied", cfg.ID)),
		ttlDrops:      reg.Counter(fmt.Sprintf("switch/%d/ttl_drops", cfg.ID)),
		blackholes:    reg.Counter(fmt.Sprintf("switch/%d/blackholes", cfg.ID)),
		reboots:       reg.Counter(fmt.Sprintf("switch/%d/reboots", cfg.ID)),
		rebootDrops:   reg.Counter(fmt.Sprintf("switch/%d/reboot_drops", cfg.ID)),
		cstores:       reg.Counter(fmt.Sprintf("switch/%d/cstore_commits", cfg.ID)),
		spinEdges:     reg.Counter(fmt.Sprintf("switch/%d/spin_edges", cfg.ID)),
		spinSamples:   reg.Counter(fmt.Sprintf("switch/%d/spin_samples", cfg.ID)),
		tcpuCycles:    reg.Histogram(fmt.Sprintf("switch/%d/tcpu_cycles", cfg.ID)),
		hopLatency:    reg.Histogram(fmt.Sprintf("switch/%d/hop_latency_ns", cfg.ID)),
	}
	for i := 0; i < cfg.Ports; i++ {
		p := &Port{
			sw:      s,
			id:      i,
			trusted: true,
			rxUtil:  newMeter(cfg.UtilGain, cfg.StatsInterval.Seconds()),
			txUtil:  newMeter(cfg.UtilGain, cfg.StatsInterval.Seconds()),

			mQueueDepth: reg.Histogram(fmt.Sprintf("switch/%d/port/%d/queue_depth_bytes", cfg.ID, i)),
			mTxBytes:    reg.Counter(fmt.Sprintf("switch/%d/port/%d/tx_bytes", cfg.ID, i)),
			mDrops:      reg.Counter(fmt.Sprintf("switch/%d/port/%d/drops", cfg.ID, i)),
		}
		for q := 0; q < cfg.QueuesPerPort; q++ {
			p.queues = append(p.queues, NewQueue(cfg.QueueCapBytes))
		}
		s.ports = append(s.ports, p)
	}
	sim.Every(cfg.StatsInterval, cfg.StatsInterval, s.housekeeping)
	return s
}

// span records one lifecycle event for pkt at the current simulated
// time.  It compiles to nothing observable when tracing is disabled:
// the tracer is nil and Record returns immediately.
//
//alloc:free
func (s *Switch) span(pkt *core.Packet, stage obs.Stage, a, b uint64) {
	s.tracer.Record(obs.SpanEvent{
		At: int64(s.sim.Now()), UID: pkt.Meta.UID, Node: s.cfg.ID,
		Stage: stage, A: a, B: b,
	})
}

// ID returns the switch id.
func (s *Switch) ID() uint32 { return s.cfg.ID }

// Ports returns the port count.
func (s *Switch) Ports() int { return len(s.ports) }

// Port returns port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// L3 exposes the LPM table for control-plane configuration.
func (s *Switch) L3() *l3.Table { return s.l3 }

// TCAM exposes the flow table for control-plane configuration.
func (s *Switch) TCAM() *tcam.Table { return s.tcam }

// Allocator exposes the control-plane SRAM allocator.
func (s *Switch) Allocator() *mem.Allocator { return s.alloc }

// SRAM reads scratch word i directly (control-plane access).  An
// out-of-range index reads as zero rather than panicking: debug tooling
// drives this path with untrusted offsets, and a typo must not take the
// simulation down with it.
func (s *Switch) SRAM(i int) uint32 {
	if i < 0 || i >= len(s.sram) {
		return 0
	}
	return s.sram[i]
}

// SetSRAM writes scratch word i directly (control-plane access).
// Out-of-range indexes are a no-op, mirroring SRAM.
func (s *Switch) SetSRAM(i int, v uint32) {
	if i < 0 || i >= len(s.sram) {
		return
	}
	s.sram[i] = v
}

// SetMirror installs the forwarding observer.
func (s *Switch) SetMirror(fn ForwardFunc) { s.mirror = fn }

// SetReflex installs the dataplane failure-reaction hook (nil
// uninstalls it).  The hook runs on every forwarded packet after the
// egress decision and may override it.
func (s *Switch) SetReflex(h ReflexHook) { s.reflex = h }

// InjectLocal enqueues a switch-originated control frame (a reflex
// heartbeat, in practice) directly on egress port out.  The frame is
// firmware output, not transit traffic: it bypasses the lookup
// pipeline, the TCPU and the reflex hook — a heartbeat must probe the
// port it was aimed at even while that port's traffic is detoured.
// Returns false when the switch is mid-boot, the port is unwired, or
// the egress queue dropped the frame.
func (s *Switch) InjectLocal(pkt *core.Packet, out int) bool {
	if s.booting {
		s.dropRebooted(pkt, out)
		return false
	}
	if out < 0 || out >= len(s.ports) || !s.ports[out].Wired() {
		s.blackholes++
		s.m.blackholes.Inc()
		s.span(pkt, obs.StageBlackhole, uint64(out), uint64(out))
		pkt.Recycle()
		return false
	}
	pkt.Meta.OutPort = uint32(out)
	pkt.Meta.QueueID = 0
	pkt.Meta.EnqueuedAt = int64(s.sim.Now())
	return s.ports[out].enqueue(pkt, 0)
}

// SetTCPUEnabled toggles TPP execution on this switch — the fault
// injector's per-switch TCPU kill switch.  While disabled, TPP packets
// forward unmodified (no loads, stores or hop records).
func (s *Switch) SetTCPUEnabled(v bool) { s.tcpuOff = !v }

// TCPUEnabled reports whether this switch executes TPPs.
func (s *Switch) TCPUEnabled() bool { return !s.tcpuOff }

// PacketsSwitched returns the cumulative forwarded-packet count.
func (s *Switch) PacketsSwitched() uint64 { return s.packets }

// CStoreCommits returns how many conditional stores committed (compare
// matched and the store was applied) on this switch.  Like the other
// Go-side counters it survives Reboot — the SRAM words the commits
// landed in do not, which is exactly the discrepancy the in-band
// telemetry reconciliation measures.
func (s *Switch) CStoreCommits() uint64 { return s.cstores }

// TPPsExecuted returns how many TPPs the TCPU has run.
func (s *Switch) TPPsExecuted() uint64 { return s.tppsExecuted }

// TPPsStripped returns how many TPPs were removed at untrusted ports.
func (s *Switch) TPPsStripped() uint64 { return s.tppsStripped }

// TPPsRejected returns how many TPPs the paranoid verifier stripped.
func (s *Switch) TPPsRejected() uint64 { return s.tppsRejected }

// TPPsThrottled returns how many TPPs the admission gate declined to
// execute (their packets forwarded unmodified).
func (s *Switch) TPPsThrottled() uint64 { return s.tppsThrottled }

// Epoch returns the boot generation counter, the value exposed at
// [Switch:Epoch]: zero until the first crash-restart.
func (s *Switch) Epoch() uint32 { return s.epoch }

// Booting reports whether the switch is inside a reboot's boot-delay
// window (eating every arriving frame).
func (s *Switch) Booting() bool { return s.booting }

// Reboots returns how many crash-restarts this switch has suffered.
func (s *Switch) Reboots() uint64 { return s.reboots }

// RebootDrops returns how many packets reboots have eaten: frames
// arriving while the switch was down plus packets wiped mid-pipeline
// or out of the egress queues.
func (s *Switch) RebootDrops() uint64 { return s.rebootDrops }

// Reboot crash-restarts the switch: every queued and in-pipeline
// packet is dropped, scratch SRAM is zeroed, the SRAM allocator is
// reset, learned L2 entries and per-port task scratch are cleared, and
// for bootDelay the switch eats every arriving frame.  The TCAM and L3
// tables survive — they are config, reloaded from NVRAM by the boot —
// so forwarding resumes unaided once the boot delay elapses.  The boot
// generation counter at [Switch:Epoch] increments immediately, which is
// how end-hosts later discover the wipe.
func (s *Switch) Reboot(bootDelay netsim.Time) {
	s.epoch++
	s.booting = true
	s.reboots++
	s.m.reboots.Inc()

	// Wipe soft state.  Flushed queue packets count as reboot drops so
	// packet conservation stays provable across the crash.
	clear(s.sram)
	s.alloc.Reset()
	s.l2.Flush()
	for _, p := range s.ports {
		p.scratch = [mem.PortScratchWords]uint32{}
		p.snr = 0
		port := p.ID()
		for _, q := range p.queues {
			flushed := q.Flush(func(pkt *core.Packet) {
				s.span(pkt, obs.StageRebootDrop, uint64(port), uint64(pkt.WireLen()))
			})
			s.rebootDrops += uint64(flushed)
			s.m.rebootDrops.Add(uint64(flushed))
		}
	}
	// Spin-observer edge tracking is soft state too: the wipe loses
	// which bit was last seen, so the first post-boot packet re-anchors
	// instead of producing a bogus interval.
	for _, w := range s.spin {
		w.reset()
	}
	// The admission gate's buckets are soft state too: boot refills
	// them.  Tenant grants survive — they are config, like the TCAM —
	// and the freshly zeroed SRAM is exactly the blank partition a new
	// grant would get.
	s.tppTokens = float64(s.cfg.TPPBurst)
	s.tppRefillAt = s.sim.Now()
	if s.guard != nil {
		s.guard.ResetBuckets(s.sim.Now())
	}
	// Compiled programs are soft state: a restarted ASIC renegotiates
	// its configuration, so nothing compiled before the crash may run
	// after it.
	s.progCache.Invalidate()

	s.tracer.Record(obs.SpanEvent{
		At: int64(s.sim.Now()), UID: 0, Node: s.cfg.ID,
		Stage: obs.StageSwitchReboot, A: uint64(s.epoch), B: uint64(bootDelay),
	})

	epoch := s.epoch
	s.sim.After(bootDelay, func() {
		if s.epoch != epoch {
			return // a newer reboot owns the boot timer
		}
		s.booting = false
		s.tracer.Record(obs.SpanEvent{
			At: int64(s.sim.Now()), UID: 0, Node: s.cfg.ID,
			Stage: obs.StageSwitchUp, A: uint64(epoch),
		})
	})
}

// dropRebooted counts and records one packet eaten by a crash-restart.
//
//alloc:free
func (s *Switch) dropRebooted(pkt *core.Packet, port int) {
	s.rebootDrops++
	s.m.rebootDrops.Inc()
	s.span(pkt, obs.StageRebootDrop, uint64(port), uint64(pkt.WireLen()))
	pkt.Recycle()
}

func (s *Switch) housekeeping() {
	for _, p := range s.ports {
		p.tick()
	}
	s.l2.Expire(int64(s.sim.Now()))
}

// Receive implements netsim.Receiver: the packet's last bit arrived on
// port.  The fixed pipeline latency covers the parser and lookup
// stages; forwarding happens after it elapses.
//
//alloc:free
func (s *Switch) Receive(pkt *core.Packet, port int) {
	// A switch mid-boot is electrically absent: frames arriving during
	// the boot delay vanish without any further processing.
	if s.booting {
		s.dropRebooted(pkt, port)
		return
	}
	p := s.ports[port]
	p.rxBytes += uint64(pkt.WireLen())
	s.span(pkt, obs.StageParser, uint64(port), uint64(pkt.WireLen()))

	// §4 security: untrusted edge ports strip TPPs.
	if pkt.TPP != nil && !p.trusted {
		s.span(pkt, obs.StageStrip, uint64(port), 0)
		pkt = stripTPP(pkt)
		s.tppsStripped++
		s.m.tppsStripped.Inc()
		if pkt == nil {
			return // nothing remained to forward
		}
	}

	// Paranoid parser: statically reject programs that would fault or
	// overrun the cycle budget, stripping them before they reach the
	// TCPU.
	if pkt.TPP != nil && s.cfg.Verify != nil {
		if res := verify.Verify(pkt.TPP, *s.cfg.Verify); !res.OK() {
			s.span(pkt, obs.StageVerifyReject, uint64(port), uint64(len(res.Errors())))
			pkt = stripTPP(pkt)
			s.tppsRejected++
			s.m.tppsRejected.Inc()
			if pkt == nil {
				return
			}
		}
	}

	pkt.Meta = core.Metadata{
		UID:        pkt.Meta.UID,
		InPort:     uint32(port),
		EnqueuedAt: int64(s.sim.Now()),
	}
	// Capture the boot epoch: a crash while the packet sits in the
	// parse/lookup pipeline wipes it along with the rest of the
	// switch's volatile state.  The epoch and ingress port ride in the
	// event's arg word (see DeliverAt) so the pipeline stage schedules
	// without allocating.
	s.sim.AtPacket(s.sim.Now()+s.cfg.PipelineLatency, s, pkt,
		uint64(port)|uint64(s.epoch)<<32)
}

// DeliverAt implements netsim.PacketDelivery: the parse/lookup pipeline
// latency elapsed.  arg carries the ingress port in the low word and
// the boot epoch captured at arrival in the high word.
//
//alloc:free
func (s *Switch) DeliverAt(pkt *core.Packet, arg uint64) {
	port := int(uint32(arg))
	if s.booting || s.epoch != uint32(arg>>32) {
		s.dropRebooted(pkt, port)
		return
	}
	s.forward(pkt, port)
}

// stripTPP removes the TPP section, leaving the encapsulated payload as
// an ordinary frame; a bare TPP with no payload vanishes entirely.
// Stripping is a death point for the incoming packet: the survivor is a
// fresh pooled clone without the TPP, and the original is recycled (a
// no-op for host-owned packets, which the sender may still hold).  The
// earlier shallow-copy implementation heap-allocated per strip and
// abandoned the original's pool slot; cloning through the pool keeps
// the strip path allocation-free and leak-free.
//
//alloc:free
func stripTPP(pkt *core.Packet) *core.Packet {
	if pkt.IP == nil {
		pkt.Recycle()
		return nil
	}
	out := pkt.ClonePooled()
	out.TPP = nil
	out.Eth.Type = core.EtherTypeIPv4
	pkt.Recycle()
	return out
}

// forward runs the lookup pipeline and commits the packet to its
// egress queue(s).
//
//alloc:free
func (s *Switch) forward(pkt *core.Packet, inPort int) {
	s.packets++
	s.m.packets.Inc()

	// Lookup precedence mirrors §3.1's pipeline: the TCAM slices see
	// the packet first, then L3 LPM, then the L2 hash table.
	if out, meta, decided := s.lookupTCAM(pkt, inPort); decided {
		s.span(pkt, obs.StageLookupTCAM, uint64(meta.ID), uint64(meta.Version))
		if out < 0 {
			pkt.Recycle()
			return // dropped by rule (its journey ends at the lookup span)
		}
		pkt.Meta.MatchedEntry = meta.ID
		pkt.Meta.MatchedVer = meta.Version
		s.deliver(pkt, inPort, out)
		return
	}

	if pkt.IP != nil && s.l3.Size() > 0 {
		if rt, ok := s.l3.Lookup(pkt.IP.Dst); ok {
			if pkt.IP.TTL <= 1 {
				s.ttlDrops++
				s.m.ttlDrops.Inc()
				s.span(pkt, obs.StageTTLDrop, uint64(inPort), 0)
				pkt.Recycle()
				return
			}
			pkt.IP.TTL--
			s.span(pkt, obs.StageLookupL3, uint64(rt.OutPort), uint64(pkt.IP.TTL))
			s.deliver(pkt, inPort, rt.OutPort)
			return
		}
	}
	s.forwardL2(pkt, inPort)
}

//alloc:free
func (s *Switch) lookupTCAM(pkt *core.Packet, inPort int) (out int, e tcam.Entry, decided bool) {
	if s.tcam.Size() == 0 || pkt.IP == nil {
		return 0, tcam.Entry{}, false
	}
	key := tcam.Key{
		tcam.KeyDstIP:  pkt.IP.Dst,
		tcam.KeySrcIP:  pkt.IP.Src,
		tcam.KeyProto:  uint32(pkt.IP.Proto),
		tcam.KeyInPort: uint32(inPort),
	}
	e, ok := s.tcam.Match(key)
	if !ok {
		return 0, tcam.Entry{}, false
	}
	// Table 2: "alternate routes for a packet" — every installed rule
	// covering this packet is a forwarding alternative.
	pkt.Meta.AltRoutes = uint32(s.tcam.MatchCount(key))
	if e.Action.Drop {
		return -1, e, true
	}
	return e.Action.OutPort, e, true
}

//alloc:free
func (s *Switch) forwardL2(pkt *core.Packet, inPort int) {
	now := int64(s.sim.Now())
	s.l2.Learn(pkt.Eth.Src, inPort, now)
	if !pkt.Eth.Dst.IsBroadcast() {
		if out, ok := s.l2.Lookup(pkt.Eth.Dst, now); ok {
			s.span(pkt, obs.StageLookupL2, uint64(out), 0)
			s.deliver(pkt, inPort, out)
			return
		}
	}
	// Flood: every wired port except the ingress, each copy carrying
	// (and executing) its own TPP.  The last egress forwards the
	// original packet itself; only the other egresses need copies,
	// drawn from the packet pool instead of the heap.
	last := -1
	for _, p := range s.ports {
		if p.id != inPort && p.Wired() {
			last = p.id
		}
	}
	if last < 0 {
		s.blackholes++
		s.m.blackholes.Inc()
		s.span(pkt, obs.StageBlackhole, uint64(inPort), 0)
		pkt.Recycle()
		return
	}
	for _, p := range s.ports {
		if p.id == inPort || !p.Wired() {
			continue
		}
		s.span(pkt, obs.StageLookupL2, uint64(p.id), 1)
		if p.id == last {
			s.deliver(pkt, inPort, p.id)
		} else {
			s.deliver(pkt.ClonePooled(), inPort, p.id)
		}
	}
}

// deliver finalizes metadata, runs the TCPU, and enqueues the packet on
// its egress port.
//
//alloc:free
func (s *Switch) deliver(pkt *core.Packet, inPort, outPort int) {
	// The reflex hook may override the egress decision: when the chosen
	// port's next-hop is dead or persistently congested, the arm fires
	// its CAS-checked TCAM rewrite and re-steers this very packet onto
	// the backup — sub-RTT recovery includes the triggering packet.
	if s.reflex != nil {
		outPort = s.reflex.Transit(pkt, outPort)
	}
	if outPort < 0 || outPort >= len(s.ports) || !s.ports[outPort].Wired() {
		s.blackholes++
		s.m.blackholes.Inc()
		s.span(pkt, obs.StageBlackhole, uint64(inPort), uint64(outPort))
		pkt.Recycle()
		return
	}
	pkt.Meta.OutPort = uint32(outPort)
	pkt.Meta.QueueID = s.classify(pkt)

	if s.mirror != nil {
		s.mirror(pkt, inPort, outPort)
	}

	// Fixed-function dataplane features (§4 comparators).
	if pkt.IP != nil {
		for _, w := range s.spin {
			w.observe(s, pkt)
		}
		if s.cfg.ECNThresholdBytes > 0 && pkt.IP.TOS&core.ECNCapable != 0 &&
			s.ports[outPort].QueueBytes() >= s.cfg.ECNThresholdBytes {
			pkt.IP.TOS |= core.ECNCE
		}
		if s.cfg.RecordRoute && len(pkt.IP.Options) > 0 {
			core.RecordRouteAppend(pkt.IP.Options, s.cfg.ID)
		}
	}

	// "The tiny CPU (TCPU) that processes TPPs is placed just before
	// the packet is stored in memory."  Non-TPP packets are ignored
	// by the TCPU.
	if pkt.TPP != nil && pkt.Eth.Type == core.EtherTypeTPP && !s.tcpuOff {
		if !s.admitTPP(guard.TenantID(pkt.TPP.Tenant)) {
			// Overload protection: out of tokens, so the program does
			// not run here.  The packet forwards unmodified with the
			// hop-visible throttle bit, letting the end-host tell an
			// overloaded TCPU apart from a blackhole.
			pkt.TPP.Flags |= core.FlagThrottled
			s.tppsThrottled++
			s.m.tppsThrottled.Inc()
			s.span(pkt, obs.StageThrottle, uint64(outPort), uint64(inPort))
		} else {
			s.execTPP(pkt, outPort)
		}
	}

	// The memory manager admits the packet into shared buffer memory
	// just after the TCPU; A carries the target queue, B the occupancy
	// it sees before this packet is admitted.
	s.span(pkt, obs.StageMemMgr, uint64(pkt.Meta.QueueID), uint64(s.ports[outPort].QueueBytes()))
	s.ports[outPort].enqueue(pkt, int(pkt.Meta.QueueID))
}

// admitTPP charges the admission gate one token, refilling the bucket
// from the dataplane clock first.  An unconfigured gate admits
// everything.  With the tenant guard on, the aggregate rate is split
// into per-tenant buckets by weighted share, so a flooding tenant
// drains only its own quota; without it, every TPP shares one bucket.
//
//alloc:free
func (s *Switch) admitTPP(id guard.TenantID) bool {
	if s.cfg.TPPRate <= 0 {
		return true
	}
	if s.guard != nil {
		return s.guard.Admit(id, s.sim.Now(), s.cfg.TPPRate)
	}
	now := s.sim.Now()
	if now > s.tppRefillAt {
		s.tppTokens += (now - s.tppRefillAt).Seconds() * s.cfg.TPPRate
		if max := float64(s.cfg.TPPBurst); s.tppTokens > max {
			s.tppTokens = max
		}
	}
	s.tppRefillAt = now
	if s.tppTokens < 1 {
		return false
	}
	s.tppTokens--
	return true
}

// execTPP runs the packet's program on the TCPU and records the
// execution telemetry.  With the tenant guard on, the memory view is
// wrapped with the tenant's grant: denied accesses fail forward (poison
// loads, dropped stores) and surface as FlagAccessFault on the program.
//
// The memory views live in per-switch scratch (the dataplane processes
// one event at a time, so one view per switch suffices), and the
// program runs in compiled form: a program the trusted edge already
// compiled is executed directly when its baked config matches this
// device, and everything else goes through the ingress program cache.
//
//alloc:free
func (s *Switch) execTPP(pkt *core.Packet, outPort int) {
	s.execView = view{sw: s, pkt: pkt, port: s.ports[outPort]}
	var v interface {
		mem.View
		CondStore(mem.Addr, uint32, uint32) (uint32, error)
	} = &s.execView
	var gv *guardedView
	if s.guard != nil {
		g, _ := s.guard.Lookup(guard.TenantID(pkt.TPP.Tenant)) // unknown: zero grant, deny-all
		s.execGuard = guardedView{v: &s.execView, grant: g, tenant: guard.TenantID(pkt.TPP.Tenant)}
		gv = &s.execGuard
		v = gv
	}
	if prog := s.compiledFor(pkt.TPP); prog != nil {
		s.LastTCPU = prog.Exec(pkt.TPP, v)
	} else {
		s.LastTCPU = s.cfg.TCPU.Exec(pkt.TPP, v)
	}
	if gv != nil && gv.denies > 0 {
		pkt.TPP.Flags |= core.FlagAccessFault
	}
	s.tppsExecuted++
	s.m.tpps.Inc()
	s.m.tcpuCycles.Observe(uint64(s.LastTCPU.Cycles))
	if s.LastTCPU.Fault != nil {
		s.m.tppFaults.Inc()
	}
	if !s.LastTCPU.WithinBudget() {
		s.m.tppOverBudget.Inc()
	}
	s.span(pkt, obs.StageTCPU, uint64(s.LastTCPU.Cycles), uint64(s.LastTCPU.Executed))
}

// compiledFor resolves the compiled form of t's program: the program
// the trusted edge attached when its baked device config matches this
// switch, otherwise this switch's own ingress cache.  A nil return
// means the interpreter must run (program too long to cache).
//
//alloc:free
func (s *Switch) compiledFor(t *core.TPP) *tcpu.Program {
	if p, ok := t.Compiled.(*tcpu.Program); ok && p != nil &&
		p.Matches(s.cfg.TCPU) && p.MatchesTPP(t) {
		return p
	}
	return s.progCache.Get(t)
}

// ProgCacheStats exposes the ingress program cache's hit/miss counters
// for tests and capacity planning.
func (s *Switch) ProgCacheStats() (hits, misses uint64) { return s.progCache.Stats() }

// classify selects the egress queue: the top three TOS bits, clamped to
// the configured queue count (everything defaults to queue 0).
//
//alloc:free
func (s *Switch) classify(pkt *core.Packet) uint32 {
	if pkt.IP == nil || s.cfg.QueuesPerPort == 1 {
		return 0
	}
	q := int(pkt.IP.TOS >> 5)
	if q >= s.cfg.QueuesPerPort {
		q = s.cfg.QueuesPerPort - 1
	}
	return uint32(q)
}

// Wire connects port i to ch (the egress direction).  Panics on an
// invalid port: mis-wiring is a topology construction bug.
func (s *Switch) Wire(i int, ch *netsim.Channel) {
	if i < 0 || i >= len(s.ports) {
		panic(fmt.Sprintf("asic: wiring invalid port %d", i))
	}
	s.ports[i].Wire(ch)
}
