package asic_test

import (
	"strings"
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/l3"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/tcam"
	"repro/internal/topo"
)

var (
	edge     = topo.Mbps(80, 10*netsim.Microsecond)
	backbone = topo.Mbps(8, 10*netsim.Microsecond)
)

func queueProbe(hops int) *core.TPP {
	return core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
	}, hops)
}

func TestL2FloodThenUnicast(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2, h3 := n.AddHost(), n.AddHost(), n.AddHost()
	for _, h := range []*endhost.Host{h1, h2, h3} {
		n.LinkHost(h, sw, edge)
	}

	// First frame from h1 to h2: unknown destination, floods to both
	// h2 and h3.
	h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1000, 2000, 100))
	sim.RunUntil(10 * netsim.Millisecond)
	if h2.Received != 1 || h3.Received != 1 {
		t.Fatalf("flood: h2=%d h3=%d", h2.Received, h3.Received)
	}

	// h2 replies: h1's location is now learned, so only h1 sees it;
	// and h2's location is learned from the reply.
	h2.Send(h2.NewPacket(h1.MAC, h1.IP, 2000, 1000, 100))
	sim.RunUntil(20 * netsim.Millisecond)
	if h1.Received != 1 || h3.Received != 1 {
		t.Fatalf("reply leaked: h1=%d h3=%d", h1.Received, h3.Received)
	}

	// Now h1 to h2 goes unicast.
	h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1000, 2000, 100))
	sim.RunUntil(30 * netsim.Millisecond)
	if h2.Received != 2 || h3.Received != 1 {
		t.Fatalf("unicast: h2=%d h3=%d", h2.Received, h3.Received)
	}
}

func TestFigure1QueueWalk(t *testing.T) {
	// The Figure 1 scenario: a PUSH [Queue:QueueSize] TPP walks three
	// switches, recording one queue snapshot per hop; SP advances
	// 0 -> 4 -> 8 -> 12.
	sim := netsim.New(1)
	n, src, dst, _ := topo.Line(sim, 3, edge, backbone, asic.Config{})
	n.PrimeL2(5 * netsim.Millisecond)

	prober := endhost.NewProber(src)
	var echoed *core.TPP
	prober.Probe(dst.MAC, dst.IP, queueProbe(3), func(e *core.TPP) { echoed = e })
	sim.RunUntil(50 * netsim.Millisecond)

	if echoed == nil {
		t.Fatal("probe echo never arrived")
	}
	if echoed.Ptr != 12 {
		t.Fatalf("final SP = %d, want 12", echoed.Ptr)
	}
	if echoed.Flags&core.FlagError != 0 {
		t.Fatal("probe faulted")
	}
	// Idle network: all three snapshots are zero.
	for i := 0; i < 3; i++ {
		if q := echoed.Word(i); q != 0 {
			t.Errorf("hop %d queue = %d on an idle network", i, q)
		}
	}
}

func TestFigure1SeesCongestion(t *testing.T) {
	// Same walk behind a 20-packet burst: the first switch's egress
	// queue (the fast-to-slow transition) must show a backlog; the
	// rest of the path stays nearly empty.
	sim := netsim.New(1)
	n, src, dst, _ := topo.Line(sim, 3, edge, backbone, asic.Config{})
	n.PrimeL2(5 * netsim.Millisecond)

	before := dst.Received
	for i := 0; i < 20; i++ {
		src.Send(src.NewPacket(dst.MAC, dst.IP, 5000, 5001, 986)) // 1028B frames
	}
	prober := endhost.NewProber(src)
	var echoed *core.TPP
	prober.Probe(dst.MAC, dst.IP, queueProbe(3), func(e *core.TPP) { echoed = e })
	sim.RunUntil(200 * netsim.Millisecond)

	if echoed == nil {
		t.Fatal("probe echo never arrived")
	}
	hop0 := echoed.Word(0)
	if hop0 < 5_000 {
		t.Fatalf("bottleneck queue snapshot = %d bytes, expected a backlog", hop0)
	}
	if h2 := echoed.Word(2); h2 > 2_000 {
		t.Fatalf("last hop queue = %d, expected nearly empty", h2)
	}
	if dst.Received-before != 20 {
		t.Fatalf("burst delivery: %d", dst.Received-before)
	}
}

func TestSPAdvancesPerHopInFlood(t *testing.T) {
	// A TPP flooded to two hosts executes independently per copy.
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2, h3 := n.AddHost(), n.AddHost(), n.AddHost()
	for _, h := range []*endhost.Host{h1, h2, h3} {
		n.LinkHost(h, sw, edge)
	}
	var got []*core.TPP
	record := func(p *core.Packet) {
		if p.TPP != nil {
			got = append(got, p.TPP)
		}
	}
	h2.HandleDefault(record)
	h3.HandleDefault(record)

	tpp := queueProbe(2)
	h1.Send(&core.Packet{
		Eth: core.Ethernet{Dst: core.MACFromUint64(0xDEAD), Src: h1.MAC, Type: core.EtherTypeTPP},
		TPP: tpp,
		IP:  &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: h1.IP, Dst: core.IPv4Addr(10, 9, 9, 9)},
		UDP: &core.UDP{SrcPort: 1, DstPort: 9},
	})
	sim.RunUntil(10 * netsim.Millisecond)
	if len(got) != 2 {
		t.Fatalf("flooded TPP copies received: %d", len(got))
	}
	for _, e := range got {
		if e.Ptr != 4 {
			t.Fatalf("copy SP = %d, want 4", e.Ptr)
		}
	}
	if sw.TPPsExecuted() != 2 {
		t.Fatalf("TPPsExecuted = %d, want one per copy", sw.TPPsExecuted())
	}
	// The original TPP the host still holds must be untouched.
	if tpp.Ptr != 4 && tpp.Ptr != 0 {
		t.Fatalf("unexpected original SP %d", tpp.Ptr)
	}
}

func TestUntrustedPortStripsTPP(t *testing.T) {
	// §4: edge switches strip TPPs from untrusted ports; the
	// encapsulated payload still flows.
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	p1 := n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())
	sw.Port(p1).SetTrusted(false)

	var sawTPP, sawPlain int
	h2.HandleDefault(func(p *core.Packet) {
		if p.TPP != nil {
			sawTPP++
		} else {
			sawPlain++
		}
	})

	h1.Send(&core.Packet{
		Eth:     core.Ethernet{Dst: h2.MAC, Src: h1.MAC, Type: core.EtherTypeTPP},
		TPP:     queueProbe(2),
		IP:      &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: h1.IP, Dst: h2.IP},
		UDP:     &core.UDP{SrcPort: 1, DstPort: 9},
		Payload: []byte("data"),
	})
	sim.RunUntil(20 * netsim.Millisecond)

	if sawTPP != 0 {
		t.Fatal("TPP crossed an untrusted port")
	}
	if sawPlain != 1 {
		t.Fatalf("encapsulated payload lost: %d", sawPlain)
	}
	if sw.TPPsStripped() != 1 {
		t.Fatalf("TPPsStripped = %d", sw.TPPsStripped())
	}
	if sw.TPPsExecuted() != 0 {
		t.Fatal("stripped TPP still executed")
	}
}

func time1ms() netsim.Time { return netsim.Millisecond }

func TestBareTPPFromUntrustedPortVanishes(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	p1 := n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())
	sw.Port(p1).SetTrusted(false)

	h1.Send(&core.Packet{
		Eth: core.Ethernet{Dst: h2.MAC, Src: h1.MAC, Type: core.EtherTypeTPP},
		TPP: queueProbe(1),
	})
	before := h2.Received
	sim.RunUntil(20 * netsim.Millisecond)
	if h2.Received != before {
		t.Fatal("bare TPP leaked through untrusted port")
	}
}

func TestTCAMForwardingSetsMetadata(t *testing.T) {
	// §2.3: a TPP reads the matched flow entry's id and version.
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge) // port 0
	p2 := n.LinkHost(h2, sw, edge)

	v, m := tcam.DstIPRule(h2.IP)
	id := sw.TCAM().Insert(10, v, m, tcam.Action{OutPort: p2})

	prog := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.SwitchBase + mem.SwitchID)},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketMatchedID)},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketMatchedVer)},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketInputPort)},
	}, 4)

	prober := endhost.NewProber(h1)
	var echoed *core.TPP
	prober.Probe(h2.MAC, h2.IP, prog, func(e *core.TPP) { echoed = e })
	sim.RunUntil(20 * netsim.Millisecond)

	if echoed == nil {
		t.Fatal("no echo")
	}
	if echoed.Word(0) != sw.ID() {
		t.Errorf("switch id = %d", echoed.Word(0))
	}
	if echoed.Word(1) != id {
		t.Errorf("matched entry = %d, want %d", echoed.Word(1), id)
	}
	if echoed.Word(2) != 1 {
		t.Errorf("entry version = %d, want 1", echoed.Word(2))
	}
	if echoed.Word(3) != 0 {
		t.Errorf("input port = %d, want 0", echoed.Word(3))
	}
}

func TestTCAMDropRule(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())

	v, m := tcam.DstIPRule(h2.IP)
	sw.TCAM().Insert(100, v, m, tcam.Action{Drop: true})
	h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 10))
	before := h2.Received
	sim.RunUntil(20 * netsim.Millisecond)
	if h2.Received != before {
		t.Fatal("drop rule ignored")
	}
}

func TestL3RoutingAndTTL(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	p2 := n.LinkHost(h2, sw, edge)

	if err := sw.L3().Insert(h2.IP, 32, l3.Route{OutPort: p2}); err != nil {
		t.Fatal(err)
	}

	pkt := h1.NewPacket(core.MACFromUint64(0xBEEF), h2.IP, 1, 2, 10)
	var gotTTL uint8
	h2.HandleDefault(func(p *core.Packet) { gotTTL = p.IP.TTL })
	h1.Send(pkt)
	sim.RunUntil(10 * netsim.Millisecond)
	if gotTTL != 63 {
		t.Fatalf("TTL after one L3 hop = %d, want 63", gotTTL)
	}

	// TTL 1 dies at the router.
	dead := h1.NewPacket(core.MACFromUint64(0xBEEF), h2.IP, 1, 2, 10)
	dead.IP.TTL = 1
	before := h2.Received
	h1.Send(dead)
	sim.RunUntil(20 * netsim.Millisecond)
	if h2.Received != before {
		t.Fatal("TTL-expired packet forwarded")
	}
}

func TestViewCoversTable2(t *testing.T) {
	// Every statistic named in Table 2's namespaces must be readable
	// through the unified memory map.
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h := n.AddHost()
	n.LinkHost(h, sw, edge)
	sim.RunUntil(time1ms())

	view := sw.ViewForTesting(nil, 0)
	for _, name := range mem.SymbolNames() {
		a, _ := mem.LookupSymbol(name)
		if _, err := view.Load(a); err != nil {
			t.Errorf("Load(%s) failed: %v", name, err)
		}
	}
	// Absolute window mirrors the relative namespace.
	rel, _ := view.Load(mem.PortBase + mem.PortCapacity)
	abs, _ := view.Load(mem.PortAbs(0, mem.PortCapacity))
	if rel != abs || rel != uint32(edge.RateBps/8) {
		t.Errorf("capacity: rel=%d abs=%d want %d", rel, abs, edge.RateBps/8)
	}
	// SRAM round-trips.
	if err := view.Store(mem.SRAMBase+9, 1234); err != nil {
		t.Fatal(err)
	}
	if v, _ := view.Load(mem.SRAMBase + 9); v != 1234 {
		t.Fatal("SRAM store lost")
	}
	// Statistics are read-only.
	if err := view.Store(mem.SwitchBase+mem.SwitchID, 9); err == nil {
		t.Fatal("stored over the switch id")
	} else if !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Unmapped addresses fault.
	if _, err := view.Load(mem.SwitchBase + 0xF0); err == nil {
		t.Fatal("unmapped switch word readable")
	}
	// Port scratch words are writable and context-relative.
	if err := view.Store(mem.PortBase+mem.PortScratchBase, 777); err != nil {
		t.Fatal(err)
	}
	if sw.Port(0).Scratch(0) != 777 {
		t.Fatal("scratch store lost")
	}
	// Out-of-range absolute port faults.
	if _, err := view.Load(mem.PortAbs(10, 0)); err == nil {
		t.Fatal("absolute window read beyond port count")
	}
}

func TestClockAndHopLatency(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())

	prog := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.SwitchBase + mem.SwitchClockLo)},
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketHopLatency)},
	}, 2)
	prober := endhost.NewProber(h1)
	var echoed *core.TPP
	sentAt := sim.Now()
	prober.Probe(h2.MAC, h2.IP, prog, func(e *core.TPP) { echoed = e })
	sim.RunUntil(sentAt + 20*netsim.Millisecond)
	if echoed == nil {
		t.Fatal("no echo")
	}
	clock := netsim.Time(echoed.Word(0))
	if clock <= sentAt || clock > sim.Now() {
		t.Fatalf("dataplane clock %v outside (%v, %v]", clock, sentAt, sim.Now())
	}
	// Hop latency is at least the pipeline latency (500ns default).
	if lat := echoed.Word(1); lat < 500 {
		t.Fatalf("hop latency = %dns", lat)
	}
}

func TestQueueByteConservationEndToEnd(t *testing.T) {
	// Overload a port and check the port-level invariant:
	// enqueued = transmitted + resident (drops never enter).
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, QueueCapBytes: 5_000})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 0))
	p2 := n.LinkHost(h2, sw, topo.Mbps(1, 0))
	n.PrimeL2(time1ms())
	before := h2.Received

	for i := 0; i < 100; i++ {
		h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 986))
	}
	sim.RunUntil(sim.Now() + 50*netsim.Millisecond)

	port := sw.Port(p2)
	q := port.Queue(0)
	if q.DropPkts == 0 {
		t.Fatal("overload produced no drops")
	}
	if q.EnqBytes != q.DeqBytes+uint64(q.Bytes()) {
		t.Fatalf("conservation: enq=%d deq=%d resident=%d",
			q.EnqBytes, q.DeqBytes, q.Bytes())
	}
	// Drain completely (the housekeeping ticker keeps the event queue
	// alive forever, so bounded runs are required).
	sim.RunUntil(sim.Now() + 2*netsim.Second)
	if q.Bytes() != 0 || port.QueueBytes() != 0 {
		t.Fatal("queue did not drain")
	}
	if h2.Received-before != uint64(100)-q.DropPkts {
		t.Fatalf("delivered %d, dropped %d of 100", h2.Received-before, q.DropPkts)
	}
}

func TestUtilizationMeters(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	p2 := n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())

	// 1 Mb/s: one 1250-byte frame per 10ms statistics window, so the
	// EWMA sees a steady 125000 B/s.
	stop := sim.Every(sim.Now(), 10*netsim.Millisecond, func() {
		h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 1208))
	})
	_ = stop
	sim.RunUntil(sim.Now() + 2*netsim.Second)

	view := sw.ViewForTesting(nil, p2)
	rx, _ := view.Load(mem.PortBase + mem.PortRXUtil)
	tx, _ := view.Load(mem.PortBase + mem.PortTXUtil)
	if rx < 100_000 || rx > 150_000 {
		t.Fatalf("RX utilization = %d B/s, want ~125000", rx)
	}
	if tx < 100_000 || tx > 150_000 {
		t.Fatalf("TX utilization = %d B/s, want ~125000", tx)
	}
}

func TestStrictPriorityQueues(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, QueuesPerPort: 2})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 0))
	n.LinkHost(h2, sw, topo.Mbps(1, 0)) // slow egress: queueing
	n.PrimeL2(time1ms())

	var order []uint8
	h2.HandleDefault(func(p *core.Packet) { order = append(order, p.IP.TOS) })

	// Ten low-priority frames (TOS 0xE0 -> queue 1), then one
	// high-priority (TOS 0 -> queue 0).  The high-priority frame must
	// overtake the queued low-priority ones.
	for i := 0; i < 10; i++ {
		pkt := h1.NewPacket(h2.MAC, h2.IP, 1, 2, 500)
		pkt.IP.TOS = 0xE0
		h1.Send(pkt)
	}
	hi := h1.NewPacket(h2.MAC, h2.IP, 1, 2, 500)
	h1.Send(hi)
	sim.RunUntil(sim.Now() + netsim.Second)

	if len(order) != 11 {
		t.Fatalf("delivered %d", len(order))
	}
	pos := -1
	for i, tos := range order {
		if tos == 0 {
			pos = i
		}
	}
	if pos < 0 || pos > 3 {
		t.Fatalf("high-priority frame delivered at position %d: %v", pos, order)
	}
}

func TestMirrorHook(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())

	var mirrored int
	sw.SetMirror(func(pkt *core.Packet, in, out int) { mirrored++ })
	h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 10))
	sim.RunUntil(sim.Now() + 10*netsim.Millisecond)
	if mirrored != 1 {
		t.Fatalf("mirror saw %d packets", mirrored)
	}
	if sw.PacketsSwitched() < 3 { // 2 broadcasts + 1 data
		t.Fatalf("PacketsSwitched = %d", sw.PacketsSwitched())
	}
}

func TestCondStoreThroughView(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h := n.AddHost()
	n.LinkHost(h, sw, edge)

	v := sw.ViewForTesting(nil, 0).(interface {
		CondStore(mem.Addr, uint32, uint32) (uint32, error)
	})
	a := mem.SRAMBase + 3
	old, err := v.CondStore(a, 0, 42)
	if err != nil || old != 0 {
		t.Fatalf("first CondStore: old=%d err=%v", old, err)
	}
	old, err = v.CondStore(a, 0, 99)
	if err != nil || old != 42 {
		t.Fatalf("second CondStore: old=%d err=%v", old, err)
	}
	if sw.SRAM(3) != 42 {
		t.Fatalf("SRAM holds %d", sw.SRAM(3))
	}
	if _, err := v.CondStore(mem.SwitchBase, 0, 1); err == nil {
		t.Fatal("CondStore to read-only address succeeded")
	}
}

func TestProgramTooLongFaultsButForwards(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4}) // default 5-instruction limit
	_ = sw
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())

	ins := make([]core.Instruction, 6)
	for i := range ins {
		ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(mem.QueueBase)}
	}
	prog := core.NewTPP(core.AddrStack, ins, 6)
	prober := endhost.NewProber(h1)
	var echoed *core.TPP
	prober.Probe(h2.MAC, h2.IP, prog, func(e *core.TPP) { echoed = e })
	sim.RunUntil(sim.Now() + 20*netsim.Millisecond)
	if echoed == nil {
		t.Fatal("over-long TPP was not forwarded")
	}
	if echoed.Flags&core.FlagError == 0 {
		t.Fatal("over-long TPP did not fault")
	}
}

func TestMultiPacketTPPGroup(t *testing.T) {
	// Eight statistics exceed the 5-instruction limit; SplitCollect
	// spreads them across two probes and the group completes.
	sim := netsim.New(1)
	n, src, dst, _ := topo.Line(sim, 2, edge, backbone, asic.Config{})
	n.PrimeL2(time1ms())

	stats := []mem.Addr{
		mem.SwitchBase + mem.SwitchID,
		mem.PortBase + mem.PortQueueSize,
		mem.PortBase + mem.PortRXUtil,
		mem.PortBase + mem.PortTXUtil,
		mem.PortBase + mem.PortCapacity,
		mem.QueueBase + mem.QueueBytes,
		mem.PacketBase + mem.PacketInputPort,
		mem.PacketBase + mem.PacketOutputPort,
	}
	tpps, err := endhost.SplitCollect(stats, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpps) != 2 {
		t.Fatalf("split into %d TPPs", len(tpps))
	}
	prober := endhost.NewProber(src)
	var group []*core.TPP
	prober.ProbeGroup(dst.MAC, dst.IP, tpps, func(g []*core.TPP) { group = g })
	sim.RunUntil(sim.Now() + 30*netsim.Millisecond)
	if group == nil {
		t.Fatal("group incomplete")
	}
	// First TPP: 5 stats x 2 hops; switch id of hop 0 is switch 1.
	if got := group[0].Word(0); got != 1 {
		t.Fatalf("hop 0 switch id = %d", got)
	}
	if group[0].Ptr != 40 || group[1].Ptr != 24 {
		t.Fatalf("SPs = %d, %d", group[0].Ptr, group[1].Ptr)
	}
}

func TestAltRoutesMetadata(t *testing.T) {
	// Table 2: "alternate routes for a packet" — two rules covering
	// the same destination make AltRoutes read 2.
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	p2 := n.LinkHost(h2, sw, edge)

	v, m := tcam.DstIPRule(h2.IP)
	sw.TCAM().Insert(10, v, m, tcam.Action{OutPort: p2})
	sw.TCAM().Insert(5, v, m, tcam.Action{OutPort: p2}) // backup path

	prog := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.PacketBase + mem.PacketAltRoutes)},
	}, 1)
	prober := endhost.NewProber(h1)
	var echoed *core.TPP
	prober.Probe(h2.MAC, h2.IP, prog, func(e *core.TPP) { echoed = e })
	sim.RunUntil(sim.Now() + 20*netsim.Millisecond)
	if echoed == nil {
		t.Fatal("no echo")
	}
	if got := echoed.Word(0); got != 2 {
		t.Fatalf("AlternateRoutes = %d, want 2", got)
	}
}

func TestMAXAggregationAcrossPath(t *testing.T) {
	// INT-style in-packet aggregation: MAX [Queue:QueueSize],
	// [Packet:0] keeps the worst queue along the path in a single
	// word of packet memory, regardless of path length — the
	// aggregation alternative to one PUSH record per hop.
	sim := netsim.New(1)
	n, src, dst, _ := topo.Line(sim, 3, edge, backbone, asic.Config{})
	n.PrimeL2(5 * netsim.Millisecond)

	// Congest hop 1 with a burst; the other hops stay empty.
	for i := 0; i < 20; i++ {
		src.Send(src.NewPacket(dst.MAC, dst.IP, 5000, 5001, 986))
	}

	maxProg := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpMAX, A: uint16(mem.QueueBase + mem.QueueBytes), B: 0},
	}, 1)
	pushProg := queueProbe(3)

	prober := endhost.NewProber(src)
	var maxEcho, pushEcho *core.TPP
	prober.Probe(dst.MAC, dst.IP, maxProg, func(e *core.TPP) { maxEcho = e })
	prober.Probe(dst.MAC, dst.IP, pushProg, func(e *core.TPP) { pushEcho = e })
	sim.RunUntil(sim.Now() + 200*netsim.Millisecond)

	if maxEcho == nil || pushEcho == nil {
		t.Fatal("echo lost")
	}
	// The MAX program's single word equals the max of the PUSH
	// program's per-hop records (both probes sampled back to back, so
	// the snapshots agree up to the probes' own wire length).
	var want uint32
	for i := 0; i < 3; i++ {
		if q := pushEcho.Word(i); q > want {
			want = q
		}
	}
	got := maxEcho.Word(0)
	if got == 0 || want == 0 {
		t.Fatal("no congestion observed")
	}
	diff := int64(got) - int64(want)
	if diff < -2100 || diff > 2100 { // within two frames of each other
		t.Fatalf("MAX aggregate %d vs per-hop max %d", got, want)
	}
	// And the aggregated probe needs 1 word of memory vs 3.
	if maxEcho.MemWords() != 1 || pushEcho.MemWords() != 3 {
		t.Fatalf("memory: %d vs %d words", maxEcho.MemWords(), pushEcho.MemWords())
	}
}
