package asic

import "repro/internal/core"

// Queue is one drop-tail egress queue.  The ASIC memory manager
// "already keeps track of per-port, per-queue occupancies in its
// registers" (§2.1); those registers are the exported counters here.
type Queue struct {
	capBytes int

	// pkts[head:] are the queued packets.  Dequeue advances head
	// instead of re-slicing the base pointer away, so the backing
	// array's capacity is reused forever and a steady-state queue
	// never re-allocates.
	pkts  []*core.Packet
	head  int
	bytes int

	// Cumulative counters, exposed through the Queue namespace.
	EnqBytes  uint64
	DropBytes uint64
	EnqPkts   uint64
	DropPkts  uint64
	DeqBytes  uint64
	DeqPkts   uint64
	// FlushedBytes and FlushedPkts count packets discarded by Flush
	// (a switch crash-restart wiping its buffer memory).  They close
	// the conservation equation EnqPkts == DeqPkts + DropPkts(post-
	// admission: zero today) + FlushedPkts + Len(), which the chaos
	// soak test asserts: a reboot neither duplicates nor leaks packets.
	FlushedBytes uint64
	FlushedPkts  uint64
}

// NewQueue builds a queue holding at most capBytes of packet data.
func NewQueue(capBytes int) *Queue {
	return &Queue{capBytes: capBytes}
}

// CapBytes returns the configured capacity.
func (q *Queue) CapBytes() int { return q.capBytes }

// Bytes returns the instantaneous occupancy — the value §2.1's
// micro-burst probe reads: "they are recorded the instant the packet
// traversed the switch".
func (q *Queue) Bytes() int { return q.bytes }

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.pkts) - q.head }

// Enqueue appends the packet if it fits; otherwise the packet is
// dropped (drop-tail) and false is returned.
//
//alloc:free
func (q *Queue) Enqueue(p *core.Packet) bool {
	n := p.WireLen()
	if q.bytes+n > q.capBytes {
		q.DropBytes += uint64(n)
		q.DropPkts++
		return false
	}
	q.pkts = append(q.pkts, p)
	q.bytes += n
	q.EnqBytes += uint64(n)
	q.EnqPkts++
	return true
}

// Flush discards every queued packet — the crash-restart path: buffer
// memory is wiped, so queued packets vanish without drop accounting at
// the egress.  each (optional) visits every discarded packet, letting
// the switch record a span per loss so telemetry reconciles exactly
// with the counters.  It returns the number of packets discarded.
//
//alloc:free
func (q *Queue) Flush(each func(*core.Packet)) int {
	n := q.Len()
	for i := q.head; i < len(q.pkts); i++ {
		p := q.pkts[i]
		q.FlushedBytes += uint64(p.WireLen())
		if each != nil {
			each(p)
		}
		// Buffer memory is wiped: a crash is a fabric death point, so
		// pooled flood copies return to the pool here.
		p.Recycle()
		q.pkts[i] = nil
	}
	q.FlushedPkts += uint64(n)
	q.pkts = q.pkts[:0]
	q.head = 0
	q.bytes = 0
	return n
}

// Dequeue removes and returns the head packet, or nil when empty.
//
//alloc:free
func (q *Queue) Dequeue() *core.Packet {
	if q.head == len(q.pkts) {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head == len(q.pkts) {
		// Empty: rewind into the retained backing array.
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	n := p.WireLen()
	q.bytes -= n
	q.DeqBytes += uint64(n)
	q.DeqPkts++
	return p
}
