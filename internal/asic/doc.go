// Package asic models the switch dataplane of Figure 3 of the TPP
// paper: packets arrive at an ingress port, pass through the header
// parser and the L2/L3/TCAM lookup pipeline, are processed by the TCPU
// ("we insert the TCPU just after the L2/L3/TCAM tables"), and are
// committed to per-port egress queues drained by the output scheduler.
//
// Everything a TPP can observe is maintained here: per-port byte
// counters and EWMA utilizations, per-queue occupancies and drops,
// per-packet pipeline metadata, the scratch SRAM bank, and the
// dataplane clock.  The package exposes them to the TCPU through a
// per-packet mem.View whose context-relative namespaces resolve against
// the packet's selected egress port and queue.
//
// The model is deliberately event-accurate rather than cycle-accurate:
// link serialization, propagation, queue occupancy and drops are exact;
// the fixed pipeline latency stands in for the parse/lookup stages, and
// internal/tcpu separately accounts TCPU cycles for the §3.3
// feasibility claims.
package asic
