package asic

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/netsim"
)

// TestReadWord checks the control-plane read-back hook: it resolves
// through the same view a TPP's LOAD uses (epoch, table sizes, SRAM),
// refuses unmapped addresses, and answers nothing while the switch is
// mid-boot.
func TestReadWord(t *testing.T) {
	sim := netsim.New(1)
	sw := New(sim, Config{ID: 7, Ports: 4})

	if v, ok := sw.ReadWord(mem.SwitchBase + mem.SwitchID); !ok || v != 7 {
		t.Fatalf("ReadWord(SwitchID) = %d, %v; want 7, true", v, ok)
	}
	if v, ok := sw.ReadWord(mem.SwitchBase + mem.SwitchEpoch); !ok || v != sw.Epoch() {
		t.Fatalf("ReadWord(SwitchEpoch) = %d, %v; want %d, true", v, ok, sw.Epoch())
	}
	sw.SetSRAM(5, 0xabcd)
	if v, ok := sw.ReadWord(mem.SRAMBase + 5); !ok || v != 0xabcd {
		t.Fatalf("ReadWord(SRAM+5) = %#x, %v; want 0xabcd, true", v, ok)
	}
	// Word 11 onward of the switch namespace is unmapped.
	if _, ok := sw.ReadWord(mem.SwitchBase + 11); ok {
		t.Fatal("ReadWord answered an unmapped switch word")
	}

	// A rebooting switch is dark: no read-back until the boot delay
	// elapses, and the epoch word then reports the bump.
	sw.Reboot(time(1))
	if _, ok := sw.ReadWord(mem.SwitchBase + mem.SwitchEpoch); ok {
		t.Fatal("ReadWord answered during the boot-delay window")
	}
	sim.RunUntil(sim.Now() + time(2))
	if v, ok := sw.ReadWord(mem.SwitchBase + mem.SwitchEpoch); !ok || v != 1 {
		t.Fatalf("post-boot ReadWord(SwitchEpoch) = %d, %v; want 1, true", v, ok)
	}
}

func time(ms int64) netsim.Time { return netsim.Time(ms) * netsim.Millisecond }
