package asic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestQueueCounterInvariants property-tests the memory-manager
// bookkeeping over randomized enqueue/dequeue sequences: at every step
// the cumulative counters must reconcile exactly with the
// instantaneous occupancy,
//
//	EnqBytes - DeqBytes == Bytes()   (drops never enter the queue)
//	EnqPkts  - DeqPkts  == Len()
//
// and every offered byte is either enqueued or dropped.
func TestQueueCounterInvariants(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		capBytes := 500 + rnd.Intn(5000)
		q := NewQueue(capBytes)
		var offeredBytes, offeredPkts uint64

		check := func(step int) {
			t.Helper()
			if got := q.EnqBytes - q.DeqBytes; got != uint64(q.Bytes()) {
				t.Fatalf("trial %d step %d: EnqBytes-DeqBytes = %d, Bytes() = %d",
					trial, step, got, q.Bytes())
			}
			if got := q.EnqPkts - q.DeqPkts; got != uint64(q.Len()) {
				t.Fatalf("trial %d step %d: EnqPkts-DeqPkts = %d, Len() = %d",
					trial, step, got, q.Len())
			}
			if q.EnqBytes+q.DropBytes != offeredBytes {
				t.Fatalf("trial %d step %d: enq %d + drop %d != offered %d",
					trial, step, q.EnqBytes, q.DropBytes, offeredBytes)
			}
			if q.EnqPkts+q.DropPkts != offeredPkts {
				t.Fatalf("trial %d step %d: enq %d + drop %d != offered %d pkts",
					trial, step, q.EnqPkts, q.DropPkts, offeredPkts)
			}
			if q.Bytes() < 0 || q.Bytes() > capBytes {
				t.Fatalf("trial %d step %d: occupancy %d outside [0, %d]",
					trial, step, q.Bytes(), capBytes)
			}
		}

		for step := 0; step < 400; step++ {
			if rnd.Intn(3) < 2 { // bias toward enqueue so drops happen
				pkt := &core.Packet{
					Eth:    core.Ethernet{Type: core.EtherTypeIPv4},
					PadLen: rnd.Intn(1500),
				}
				offeredBytes += uint64(pkt.WireLen())
				offeredPkts++
				q.Enqueue(pkt)
			} else {
				q.Dequeue()
			}
			check(step)
		}
		// Drain completely: counters must converge to equality.
		for q.Dequeue() != nil {
		}
		check(-1)
		if q.Bytes() != 0 || q.Len() != 0 {
			t.Fatalf("trial %d: drained queue reports %dB/%dpkts", trial, q.Bytes(), q.Len())
		}
	}
}
