package asic_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/guard"
	"repro/internal/microburst"
	"repro/internal/netsim"
	"repro/internal/tcpu"
	"repro/internal/topo"
)

// cacheRig builds a one-switch network whose switch runs a *different*
// TCPU instruction limit than the hosts' NICs compile under, so the
// edge-attached compilation never matches and every TPP exercises the
// switch's own ingress program cache.
func cacheRig(t *testing.T, cfg asic.Config) (*netsim.Sim, *asic.Switch, *endhost.Host, *endhost.Host) {
	t.Helper()
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	cfg.Ports = 4
	cfg.TCPU = tcpu.Config{MaxInstructions: 16}
	sw := n.AddSwitch(cfg)
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(5 * netsim.Millisecond)
	return sim, sw, h1, h2
}

func sendTelemetry(sim *netsim.Sim, from, to *endhost.Host, count int) {
	for i := 0; i < count; i++ {
		pkt := from.NewPacket(to.MAC, to.IP, 1000, 2000, 64)
		microburst.Instrument(pkt, 4)
		from.Send(pkt)
	}
	sim.RunUntil(sim.Now() + 20*netsim.Millisecond)
}

// TestSwitchIngressCacheReuse: repeated flows carrying the same program
// shape compile exactly once at switch ingress; every later packet is a
// cache hit.
func TestSwitchIngressCacheReuse(t *testing.T) {
	sim, sw, h1, h2 := cacheRig(t, asic.Config{})
	base := h2.Received // PrimeL2 broadcasts count too
	sendTelemetry(sim, h1, h2, 10)

	if h2.Received-base != 10 {
		t.Fatalf("delivered %d/10", h2.Received-base)
	}
	hits, misses := sw.ProgCacheStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 compilation for a repeated flow", misses)
	}
	if hits != 9 {
		t.Fatalf("hits = %d, want 9", hits)
	}
}

// TestProgCacheInvalidatedOnReboot: a crash-restart flushes the
// compiled-program cache (it is soft state), so the first packet after
// recovery recompiles.  The reboot-driven variant through the fault
// plan lives in internal/faults.
func TestProgCacheInvalidatedOnReboot(t *testing.T) {
	sim, sw, h1, h2 := cacheRig(t, asic.Config{})
	sendTelemetry(sim, h1, h2, 3)
	if _, misses := sw.ProgCacheStats(); misses != 1 {
		t.Fatalf("pre-reboot misses = %d, want 1", misses)
	}

	sw.Reboot(netsim.Millisecond)
	sim.RunUntil(sim.Now() + 5*netsim.Millisecond)
	// The L2 table was wiped too; re-prime so the post-boot packets
	// unicast again.
	h1.Broadcast()
	h2.Broadcast()
	sim.RunUntil(sim.Now() + 5*netsim.Millisecond)

	sendTelemetry(sim, h1, h2, 3)
	if h2.Received < 4 {
		t.Fatalf("post-reboot traffic not flowing: received %d", h2.Received)
	}
	if _, misses := sw.ProgCacheStats(); misses != 2 {
		t.Fatalf("post-reboot misses = %d, want 2 (cache must be flushed by reboot)", misses)
	}
}

// TestProgCacheInvalidatedOnGuardChange: granting or revoking a tenant
// flushes the cache, so no compilation produced under one guard
// configuration survives into the next.
func TestProgCacheInvalidatedOnGuardChange(t *testing.T) {
	sim, sw, h1, h2 := cacheRig(t, asic.Config{Guard: true})
	if _, err := sw.GrantTenant(1, guard.DefaultACL(), 64, 1, 64); err != nil {
		t.Fatal(err)
	}
	h1.NIC.SetTenant(1)

	sendTelemetry(sim, h1, h2, 3)
	_, missesAfterTraffic := sw.ProgCacheStats()
	if missesAfterTraffic == 0 {
		t.Fatal("no compilations recorded; the rig is not exercising the ingress cache")
	}

	if err := sw.RevokeTenant(1); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.GrantTenant(1, guard.DefaultACL(), 64, 1, 64); err != nil {
		t.Fatal(err)
	}
	sendTelemetry(sim, h1, h2, 3)
	_, missesAfterRevoke := sw.ProgCacheStats()
	if missesAfterRevoke <= missesAfterTraffic {
		t.Fatalf("misses %d -> %d across revoke+regrant, want an increase (cache must be flushed)",
			missesAfterTraffic, missesAfterRevoke)
	}
}

// TestFloodCloneIndependence is the queue-conservation / aliasing audit
// for the pooled flood path: every flooded copy must be delivered
// exactly once, execute its own TPP, and share no mutable state with
// its siblings — a pooled clone that aliased another copy's packet
// memory would corrupt telemetry silently.
func TestFloodCloneIndependence(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, TCPU: tcpu.Config{MaxInstructions: 16}})
	h1, h2, h3 := n.AddHost(), n.AddHost(), n.AddHost()
	for _, h := range []*endhost.Host{h1, h2, h3} {
		n.LinkHost(h, sw, edge)
	}
	// No PrimeL2: keep destinations unknown so every frame floods.

	var got2, got3 []*core.Packet
	h2.HandleDefault(func(p *core.Packet) { got2 = append(got2, p) })
	h3.HandleDefault(func(p *core.Packet) { got3 = append(got3, p) })

	const sends = 50
	for i := 0; i < sends; i++ {
		pkt := h1.NewPacket(core.MAC{0xde, 0xad, 0, 0, 0, 1}, 0x0a000099, 1000, 2000, 64)
		microburst.Instrument(pkt, 4)
		if !h1.Send(pkt) {
			t.Fatalf("send %d refused", i)
		}
		sim.RunUntil(sim.Now() + netsim.Millisecond)
	}
	sim.RunUntil(sim.Now() + 50*netsim.Millisecond)

	// Conservation: every flood delivers exactly one copy per egress,
	// nothing lost, nothing duplicated.
	if len(got2) != sends || len(got3) != sends {
		t.Fatalf("delivered %d/%d copies, want %d each", len(got2), len(got3), sends)
	}
	if sw.TPPsExecuted() != 2*sends {
		t.Fatalf("TCPU ran %d times, want %d (one per flooded copy)", sw.TPPsExecuted(), 2*sends)
	}

	for i := range got2 {
		a, b := got2[i], got3[i]
		if a == b {
			t.Fatalf("flood %d delivered the same *Packet to both hosts", i)
		}
		if a.TPP == nil || b.TPP == nil || a.TPP == b.TPP {
			t.Fatalf("flood %d: TPPs alias (a=%p b=%p)", i, a.TPP, b.TPP)
		}
		if a.TPP.Ptr != 4 || b.TPP.Ptr != 4 {
			t.Fatalf("flood %d: copies did not each execute once (ptr %d, %d)", i, a.TPP.Ptr, b.TPP.Ptr)
		}
		// Mutate one copy's packet memory and instruction slice; the
		// sibling must be unaffected (no shared backing arrays).
		before := b.TPP.Word(0)
		a.TPP.SetWord(0, ^before)
		if b.TPP.Word(0) != before {
			t.Fatalf("flood %d: packet memory aliased between flooded copies", i)
		}
		insBefore := b.TPP.Ins[0]
		a.TPP.Ins[0] = core.Instruction{Op: core.OpNOP}
		if b.TPP.Ins[0] != insBefore {
			t.Fatalf("flood %d: instruction slice aliased between flooded copies", i)
		}
		// Delivered packets are adopted: they must never claim pool
		// ownership once in host hands.
		if a.Pooled() || b.Pooled() {
			t.Fatalf("flood %d: delivered packet still marked pooled", i)
		}
	}
}
