package asic_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/tcpu"
	"repro/internal/verify"
)

// FuzzGuard pins the isolation subsystem's central claims.  Any
// program that parses — verified or hostile garbage — executed as a
// guest tenant under a fuzz-chosen ACL and partition:
//
//  1. never mutates a word outside its grant: every out-of-partition
//     SRAM word still holds its pre-seeded pattern afterwards;
//  2. never observes one: two switches identical except for the
//     contents of out-of-partition SRAM (a differential pair, one the
//     other's unpartitioned shadow) produce bit-identical echoes; and
//  3. if the static verifier accepts it against the very same grant,
//     the dynamic guard denies nothing — "verified against the grant"
//     implies "never faults at runtime".
func FuzzGuard(f *testing.F) {
	sramRel := func(k int) uint16 { return uint16(mem.SRAMBase + mem.Addr(k)) }
	seeds := []*core.TPP{
		// In-partition round trip.
		core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpSTORE, A: sramRel(0), B: 0},
			{Op: core.OpLOAD, A: sramRel(0), B: 1},
		}, 2),
		// Far out-of-partition probe: must poison, not leak.
		core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpLOAD, A: sramRel(mem.SRAMWords - 1), B: 0},
			{Op: core.OpSTORE, A: sramRel(mem.SRAMWords - 1), B: 1},
		}, 2),
		// Atomic path through the guard.
		core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpCSTORE, A: sramRel(1), B: 0},
		}, 3),
		// Shared namespaces: statistics reads, a scratch-word write.
		core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpLOAD, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
			{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
			{Op: core.OpSTORE, A: uint16(mem.PortBase + mem.PortScratchBase), B: 1},
		}, 4),
	}
	for _, s := range seeds {
		f.Add(byte(0xff), byte(0xff), uint16(64), s.AppendTo(nil))
	}
	f.Add(byte(0), byte(0), uint16(1), seeds[0].AppendTo(nil))

	const ports, tid = 2, guard.TenantID(5)
	sim := netsim.New(1)
	// The differential pair: same ID, same ports, same clock — the only
	// divergence each round is the out-of-partition SRAM fill below.
	swA := asic.New(sim, asic.Config{ID: 1, Ports: ports, Guard: true})
	swB := asic.New(sim, asic.Config{ID: 1, Ports: ports, Guard: true})

	f.Fuzz(func(t *testing.T, aclLo, aclHi byte, rawWords uint16, data []byte) {
		var tpp core.TPP
		if _, err := core.ParseTPP(data, &tpp); err != nil {
			return
		}
		acl := guard.ACL{
			Switch:  guard.Perm(aclLo) & guard.PermRW,
			Port:    guard.Perm(aclLo>>2) & guard.PermRW,
			Queue:   guard.Perm(aclLo>>4) & guard.PermRW,
			Packet:  guard.Perm(aclLo>>6) & guard.PermRW,
			SRAM:    guard.Perm(aclHi) & guard.PermRW,
			PortAbs: guard.Perm(aclHi>>2) & guard.PermRW,
		}
		words := 1 + int(rawWords)%256

		// Re-grant the tenant on both switches; the registration
		// sequence is identical, so both carve the same partition.
		swA.RevokeTenant(tid)
		swB.RevokeTenant(tid)
		g, err := swA.GrantTenant(tid, acl, words, 0, 0)
		if err != nil {
			t.Fatalf("grant on A: %v", err)
		}
		if gB, err := swB.GrantTenant(tid, acl, words, 0, 0); err != nil || gB != g {
			t.Fatalf("grant on B diverged: %+v vs %+v (%v)", gB, g, err)
		}

		// Seed the two banks: identical (zero, from GrantTenant) inside
		// the partition, different patterns everywhere else.
		base := mem.SRAMIndex(g.Partition.Base)
		inPart := func(i int) bool { return i >= base && i < base+g.Partition.Words }
		for i := 0; i < mem.SRAMWords; i++ {
			if !inPart(i) {
				swA.SetSRAM(i, 0xA0000000|uint32(i))
				swB.SetSRAM(i, 0xB0000000|uint32(i))
			}
		}

		verdict := verify.Verify(&tpp, verify.Config{Ports: ports, Grant: &g})
		deniedBefore := swA.TPPsDenied()

		tppA, tppB := tpp.Clone(), tpp.Clone()
		resA := tcpu.Exec(tppA, swA.GuardedViewForTesting(nil, 0, tid))
		resB := tcpu.Exec(tppB, swB.GuardedViewForTesting(nil, 0, tid))

		// 1. Containment: nothing outside the partition moved, and the
		// partition itself evolved identically on both switches.
		for i := 0; i < mem.SRAMWords; i++ {
			switch {
			case !inPart(i) && swA.SRAM(i) != 0xA0000000|uint32(i):
				t.Fatalf("escaped the partition: SRAM[%d] = %#x\nprogram: %+v", i, swA.SRAM(i), tpp)
			case !inPart(i) && swB.SRAM(i) != 0xB0000000|uint32(i):
				t.Fatalf("escaped the partition on shadow: SRAM[%d] = %#x", i, swB.SRAM(i))
			case inPart(i) && swA.SRAM(i) != swB.SRAM(i):
				t.Fatalf("partition diverged at word %d: %#x vs %#x", i-base, swA.SRAM(i), swB.SRAM(i))
			}
		}

		// 2. Observation: the echo may not depend on out-of-grant state.
		if resA.Executed != resB.Executed || resA.Halted != resB.Halted ||
			(resA.Fault == nil) != (resB.Fault == nil) {
			t.Fatalf("execution diverged across shadow banks: %+v vs %+v", resA, resB)
		}
		if tppA.Ptr != tppB.Ptr || tppA.Flags != tppB.Flags {
			t.Fatalf("echo header diverged: ptr %d/%d flags %#x/%#x",
				tppA.Ptr, tppB.Ptr, tppA.Flags, tppB.Flags)
		}
		for i := 0; i < tppA.MemWords(); i++ {
			if tppA.Word(i) != tppB.Word(i) {
				t.Fatalf("observed out-of-grant state: echo word %d = %#x vs %#x\nprogram: %+v",
					i, tppA.Word(i), tppB.Word(i), tpp)
			}
		}

		// 3. Soundness: a program the verifier accepted against this
		// grant never trips the dynamic guard.
		if verdict.OK() {
			if d := swA.TPPsDenied() - deniedBefore; d != 0 {
				t.Fatalf("verified program denied %d times at runtime\ngrant: %v\nprogram: %+v", d, g.String(), tpp)
			}
			if resA.Fault != nil {
				t.Fatalf("verified program faulted: %v\nprogram: %+v", resA.Fault, tpp)
			}
		}
	})
}
