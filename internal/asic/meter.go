package asic

// meter estimates a byte rate with an exponentially weighted moving
// average over fixed windows, the way ASIC utilization registers are
// maintained.  The switch housekeeping ticker calls Tick once per
// statistics interval.
type meter struct {
	gain   float64 // EWMA gain applied to each new window sample
	window float64 // window length in seconds
	accum  uint64  // bytes observed in the current window
	rate   float64 // bytes per second
}

func newMeter(gain, windowSec float64) *meter {
	return &meter{gain: gain, window: windowSec}
}

// Add records n bytes in the current window.
func (m *meter) Add(n int) { m.accum += uint64(n) }

// Tick closes the current window and folds it into the average.
func (m *meter) Tick() {
	sample := float64(m.accum) / m.window
	m.accum = 0
	m.rate = m.gain*sample + (1-m.gain)*m.rate
}

// Rate returns the smoothed rate in bytes per second, saturating at the
// 32-bit register width used by the memory map.
func (m *meter) Rate() uint32 {
	if m.rate < 0 {
		return 0
	}
	if m.rate > float64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(m.rate)
}
