package asic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func dataPkt(payload int) *core.Packet {
	return &core.Packet{Eth: core.Ethernet{Type: core.EtherTypeIPv4}, PadLen: payload}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(10_000)
	a, b := dataPkt(100), dataPkt(200)
	if !q.Enqueue(a) || !q.Enqueue(b) {
		t.Fatal("enqueue failed")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Dequeue() != a || q.Dequeue() != b || q.Dequeue() != nil {
		t.Fatal("FIFO order broken")
	}
}

func TestQueueDropTail(t *testing.T) {
	q := NewQueue(300)
	if !q.Enqueue(dataPkt(100)) { // 114 bytes on the wire
		t.Fatal("first enqueue failed")
	}
	if !q.Enqueue(dataPkt(100)) {
		t.Fatal("second enqueue failed")
	}
	if q.Enqueue(dataPkt(100)) {
		t.Fatal("third enqueue should drop (228+114 > 300)")
	}
	if q.DropPkts != 1 || q.DropBytes != 114 {
		t.Fatalf("drop counters: %d pkts %d bytes", q.DropPkts, q.DropBytes)
	}
	if q.Bytes() != 228 {
		t.Fatalf("occupancy = %d", q.Bytes())
	}
}

// Property: byte conservation — everything enqueued is either still
// resident or was dequeued; drops never touch occupancy.
func TestQueueConservation(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	q := NewQueue(5_000)
	for i := 0; i < 10_000; i++ {
		if r.Intn(2) == 0 {
			q.Enqueue(dataPkt(r.Intn(1500)))
		} else {
			q.Dequeue()
		}
		if q.EnqBytes != q.DeqBytes+uint64(q.Bytes()) {
			t.Fatalf("conservation violated at step %d: enq=%d deq=%d resident=%d",
				i, q.EnqBytes, q.DeqBytes, q.Bytes())
		}
		if q.Bytes() > q.CapBytes() {
			t.Fatalf("occupancy %d exceeds capacity", q.Bytes())
		}
		if q.Bytes() < 0 {
			t.Fatalf("negative occupancy")
		}
	}
	if q.EnqPkts == 0 || q.DropPkts == 0 {
		t.Fatal("test did not exercise both paths")
	}
}

func TestMeterConvergence(t *testing.T) {
	m := newMeter(0.5, 0.01) // 10ms windows
	for i := 0; i < 100; i++ {
		m.Add(1250) // 1250 bytes per 10ms = 125000 B/s
		m.Tick()
	}
	if got := m.Rate(); got < 124_000 || got > 126_000 {
		t.Fatalf("rate = %d, want ~125000", got)
	}
	// Stop offering traffic: rate must decay toward zero.
	for i := 0; i < 100; i++ {
		m.Tick()
	}
	if got := m.Rate(); got > 100 {
		t.Fatalf("rate after idle = %d", got)
	}
}

func TestMeterSaturation(t *testing.T) {
	m := newMeter(1.0, 1e-9) // absurd window to force saturation
	m.Add(1 << 30)
	m.Tick()
	if m.Rate() != ^uint32(0) {
		t.Fatal("rate must saturate at the register width")
	}
}
