package asic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/obs"
)

// guardedView wraps the per-packet memory view with tenant enforcement:
// every address is decided through the tenant's Grant before it reaches
// the underlying view, SRAM addresses are relocated into the tenant's
// partition, and a denial fails forward — a denied LOAD returns the
// poison value and a denied STORE vanishes, both without an error, so
// the TCPU keeps executing and the packet keeps forwarding.  Each
// denial is accounted once across counter, metric and span, and the
// count surfaces after execution as core.FlagAccessFault.
type guardedView struct {
	v      *view
	grant  guard.Grant
	tenant guard.TenantID
	denies uint64
}

var _ interface {
	mem.View
	CondStore(mem.Addr, uint32, uint32) (uint32, error)
} = (*guardedView)(nil)

func (g *guardedView) deny(a mem.Addr, write bool) {
	g.denies++
	s := g.v.sw
	s.tppsDenied++
	s.m.tppsDenied.Inc()
	s.deniedCounter(g.tenant).Inc()
	s.guard.NoteDenied(g.tenant)
	w := uint64(0)
	if write {
		w = 1
	}
	s.span(g.v.pkt, obs.StageAccessDeny, uint64(a)<<1|w, uint64(g.tenant))
}

// Load implements mem.View with fail-forward denial.
func (g *guardedView) Load(a mem.Addr) (uint32, error) {
	phys, ok := g.grant.CheckLoad(a)
	if !ok {
		g.deny(a, false)
		return guard.Poison, nil
	}
	return g.v.Load(phys)
}

// Store implements mem.View; a denied store is silently dropped.
func (g *guardedView) Store(a mem.Addr, val uint32) error {
	phys, ok := g.grant.CheckStore(a)
	if !ok {
		g.deny(a, true)
		return nil
	}
	return g.v.Store(phys, val)
}

// CondStore forwards the atomic compare-and-store under the same store
// permission; a denial returns the poison value, which reads as a
// failed comparison to the program.
func (g *guardedView) CondStore(a mem.Addr, cond, val uint32) (uint32, error) {
	phys, ok := g.grant.CheckStore(a)
	if !ok {
		g.deny(a, true)
		return guard.Poison, nil
	}
	return g.v.CondStore(phys, cond, val)
}

// Guard exposes the tenant table for control-plane configuration and
// reconciliation checks; nil when the guard is disabled.
func (s *Switch) Guard() *guard.Table { return s.guard }

// TPPsDenied returns the cumulative guarded accesses denied across all
// tenants (poisoned loads plus dropped stores).
func (s *Switch) TPPsDenied() uint64 { return s.tppsDenied }

// GrantTenant admits a tenant on this switch: acl is its namespace
// policy, words its SRAM partition size, weight its share of the TPP
// admission rate, burst its bucket depth (zeroes resolve to guard
// defaults).  The freshly carved partition is zeroed so a new tenant
// never reads a predecessor's residue.
func (s *Switch) GrantTenant(id guard.TenantID, acl guard.ACL, words int, weight float64, burst int) (guard.Grant, error) {
	if s.guard == nil {
		return guard.Grant{}, fmt.Errorf("asic: switch %d has no tenant guard", s.cfg.ID)
	}
	g, err := s.guard.Register(id, acl, words, weight, burst)
	if err != nil {
		return guard.Grant{}, err
	}
	s.zeroRegion(g.Partition)
	// Guard state changed under the dataplane: flush the compiled
	// program cache so nothing produced before the grant can run after
	// it (defense in depth — compilations bake no grant state, but a
	// flush is cheap and makes staleness structurally impossible).
	s.progCache.Invalidate()
	return g, nil
}

// RevokeTenant tears a tenant down, zeroing its partition before the
// words can be re-granted — teardown never leaks one tenant's state
// into the next.
func (s *Switch) RevokeTenant(id guard.TenantID) error {
	if s.guard == nil {
		return fmt.Errorf("asic: switch %d has no tenant guard", s.cfg.ID)
	}
	reg, err := s.guard.Deregister(id)
	if err != nil {
		return err
	}
	s.zeroRegion(reg)
	s.progCache.Invalidate() // see GrantTenant
	return nil
}

func (s *Switch) zeroRegion(r mem.Region) {
	base := mem.SRAMIndex(r.Base)
	clear(s.sram[base : base+r.Words])
}

// deniedCounter returns the per-tenant tpps_denied metric handle,
// resolving it on the tenant's first denial and caching it so the
// steady-state dataplane never does name lookups.
func (s *Switch) deniedCounter(id guard.TenantID) *obs.Counter {
	if c, ok := s.mTenantDenied[id]; ok {
		return c
	}
	c := s.cfg.Metrics.Counter(fmt.Sprintf("switch/%d/tenant/%d/tpps_denied", s.cfg.ID, id))
	s.mTenantDenied[id] = c
	return c
}

// GuardedViewForTesting builds the tenant-enforced memory view the TCPU
// would execute tenant id's TPP against, for tests and the guard fuzz
// harness.  It falls back to the raw view when the guard is disabled.
func (s *Switch) GuardedViewForTesting(pkt *core.Packet, outPort int, id guard.TenantID) mem.View {
	if pkt == nil {
		pkt = &core.Packet{Meta: core.Metadata{OutPort: uint32(outPort), EnqueuedAt: int64(s.sim.Now())}}
	}
	v := &view{sw: s, pkt: pkt, port: s.ports[outPort]}
	if s.guard == nil {
		return v
	}
	g, _ := s.guard.Lookup(id) // unknown tenants get the zero grant: deny-all
	return &guardedView{v: v, grant: g, tenant: id}
}
