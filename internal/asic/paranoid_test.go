package asic_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/verify"
)

// A switch in paranoid mode statically verifies every arriving TPP and
// strips the ones that would fault, while still executing and
// forwarding well-formed programs.
func TestParanoidModeStripsFaultingTPP(t *testing.T) {
	sim := netsim.New(1)
	reg := obs.NewRegistry()
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{ID: 7, Ports: 4, Verify: &verify.Config{}, Metrics: reg})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())

	var sawTPP, sawPlain int
	h2.HandleDefault(func(p *core.Packet) {
		if p.TPP != nil {
			sawTPP++
		} else {
			sawPlain++
		}
	})

	send := func(tpp *core.TPP) {
		h1.Send(&core.Packet{
			Eth:     core.Ethernet{Dst: h2.MAC, Src: h1.MAC, Type: core.EtherTypeTPP},
			TPP:     tpp,
			IP:      &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: h1.IP, Dst: h2.IP},
			UDP:     &core.UDP{SrcPort: 1, DstPort: 9},
			Payload: []byte("data"),
		})
		sim.RunUntil(sim.Now() + 20*netsim.Millisecond)
	}

	// A PUSH from an unmapped address would fault the TCPU; paranoid
	// mode strips it, and the encapsulated payload still flows.
	send(core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(mem.SwitchBase + 200)},
	}, 2))
	if sawTPP != 0 || sawPlain != 1 {
		t.Fatalf("faulting TPP: sawTPP=%d sawPlain=%d", sawTPP, sawPlain)
	}
	if sw.TPPsRejected() != 1 {
		t.Fatalf("TPPsRejected = %d", sw.TPPsRejected())
	}
	if sw.TPPsExecuted() != 0 {
		t.Fatal("rejected TPP still executed")
	}
	if v := reg.Counter("switch/7/tpps_rejected").Value(); v != 1 {
		t.Fatalf("tpps_rejected metric = %d", v)
	}

	// A verifiable program passes through untouched and executes.
	send(queueProbe(2))
	if sawTPP != 1 {
		t.Fatalf("verified TPP did not forward: sawTPP=%d", sawTPP)
	}
	if sw.TPPsExecuted() != 1 {
		t.Fatalf("TPPsExecuted = %d", sw.TPPsExecuted())
	}
	if sw.TPPsRejected() != 1 {
		t.Fatalf("TPPsRejected moved to %d on a good program", sw.TPPsRejected())
	}
}

// Paranoid-mode verification resolves its limits from the switch
// config: a program longer than the device's instruction limit is
// rejected even though the verifier config left MaxInstructions zero.
func TestParanoidModeUsesDeviceLimits(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, Verify: &verify.Config{}})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())

	ins := make([]core.Instruction, 6) // over the default 5-ins limit
	for i := range ins {
		ins[i] = core.Instruction{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)}
	}
	h1.Send(&core.Packet{
		Eth: core.Ethernet{Dst: h2.MAC, Src: h1.MAC, Type: core.EtherTypeTPP},
		TPP: core.NewTPP(core.AddrStack, ins, 8),
		IP:  &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: h1.IP, Dst: h2.IP},
		UDP: &core.UDP{SrcPort: 1, DstPort: 9},
	})
	sim.RunUntil(20 * netsim.Millisecond)

	if sw.TPPsRejected() != 1 {
		t.Fatalf("TPPsRejected = %d", sw.TPPsRejected())
	}
	if sw.TPPsExecuted() != 0 {
		t.Fatal("over-length TPP executed")
	}
}
