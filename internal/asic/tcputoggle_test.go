package asic_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// TestTCPUDisableToggle exercises the per-switch TCPU fault toggle: a
// probe walking three switches records only the hops whose TCPU is
// enabled, the disabled switch still forwards the packet, and
// re-enabling restores full traces.
func TestTCPUDisableToggle(t *testing.T) {
	sim := netsim.New(1)
	n, src, dst, sws := topo.Line(sim, 3, edge, backbone, asic.Config{})
	n.PrimeL2(5 * netsim.Millisecond)

	prober := endhost.NewProber(src)
	walk := func() *core.TPP {
		var echoed *core.TPP
		prober.Probe(dst.MAC, dst.IP, queueProbe(3), func(e *core.TPP) { echoed = e })
		sim.RunUntil(sim.Now() + 50*netsim.Millisecond)
		if echoed == nil {
			t.Fatal("probe echo never arrived")
		}
		return echoed
	}

	if e := walk(); e.Ptr != 12 {
		t.Fatalf("healthy walk recorded %d bytes, want 12", e.Ptr)
	}

	mid := sws[1]
	if !mid.TCPUEnabled() {
		t.Fatal("TCPU should default to enabled")
	}
	mid.SetTCPUEnabled(false)
	execsBefore := mid.TPPsExecuted()
	if e := walk(); e.Ptr != 8 {
		t.Fatalf("walk past disabled TCPU recorded %d bytes, want 8 (2 hops)", e.Ptr)
	}
	if mid.TPPsExecuted() != execsBefore {
		t.Fatal("disabled TCPU still executed a TPP")
	}

	mid.SetTCPUEnabled(true)
	if e := walk(); e.Ptr != 12 {
		t.Fatalf("recovered walk recorded %d bytes, want 12", e.Ptr)
	}
}
