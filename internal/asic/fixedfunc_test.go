package asic_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topo"
)

func TestECNMarking(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, ECNThresholdBytes: 3000})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 0))
	n.LinkHost(h2, sw, topo.Mbps(1, 0)) // slow egress builds a queue
	n.PrimeL2(time1ms())

	var marked, unmarked int
	h2.HandleDefault(func(p *core.Packet) {
		if p.IP.TOS&core.ECNCE == core.ECNCE {
			marked++
		} else {
			unmarked++
		}
	})
	for i := 0; i < 20; i++ {
		pkt := h1.NewPacket(h2.MAC, h2.IP, 1, 2, 986)
		pkt.IP.TOS |= core.ECNCapable
		h1.Send(pkt)
	}
	sim.RunUntil(sim.Now() + netsim.Second)

	// Early packets see an empty queue (unmarked); later ones see the
	// backlog and get CE.
	if marked == 0 || unmarked == 0 {
		t.Fatalf("marking did not track the queue: marked=%d unmarked=%d", marked, unmarked)
	}
}

func TestECNIgnoresNonCapablePackets(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, ECNThresholdBytes: 1})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, topo.Mbps(100, 0))
	n.LinkHost(h2, sw, topo.Mbps(1, 0))
	n.PrimeL2(time1ms())

	var badMarks int
	h2.HandleDefault(func(p *core.Packet) {
		if p.IP.TOS&core.ECNCE == core.ECNCE {
			badMarks++
		}
	})
	for i := 0; i < 10; i++ {
		h1.Send(h1.NewPacket(h2.MAC, h2.IP, 1, 2, 986)) // not ECN-capable
	}
	sim.RunUntil(sim.Now() + netsim.Second)
	if badMarks != 0 {
		t.Fatalf("non-capable packets marked: %d", badMarks)
	}
}

func TestRecordRouteStampsSwitchIDs(t *testing.T) {
	sim := netsim.New(1)
	cfg := asic.Config{RecordRoute: true}
	n, src, dst, sws := topo.Line(sim, 3, topo.Mbps(100, 0), topo.Mbps(100, 0), cfg)
	n.PrimeL2(time1ms())

	var got []uint32
	dst.HandleDefault(func(p *core.Packet) {
		got = core.RecordRouteAddrs(p.IP.Options)
	})
	pkt := src.NewPacket(dst.MAC, dst.IP, 1, 2, 100)
	pkt.IP.Options = core.NewRecordRouteOption(core.MaxRecordRouteSlots)
	src.Send(pkt)
	sim.RunUntil(sim.Now() + 100*netsim.Millisecond)

	if len(got) != 3 {
		t.Fatalf("recorded %d hops: %v", len(got), got)
	}
	for i, sw := range sws {
		if got[i] != sw.ID() {
			t.Fatalf("hop %d recorded %d, want %d", i, got[i], sw.ID())
		}
	}
}

func TestRecordRouteCapacityLimit(t *testing.T) {
	// A 9-slot option cannot trace a 10-hop path — the generality gap
	// §4 contrasts with TPP packet memory.
	sim := netsim.New(1)
	cfg := asic.Config{RecordRoute: true}
	n, src, dst, _ := topo.Line(sim, 10, topo.Mbps(100, 0), topo.Mbps(100, 0), cfg)
	n.PrimeL2(5 * netsim.Millisecond)

	var got []uint32
	dst.HandleDefault(func(p *core.Packet) {
		got = core.RecordRouteAddrs(p.IP.Options)
	})
	pkt := src.NewPacket(dst.MAC, dst.IP, 1, 2, 100)
	pkt.IP.Options = core.NewRecordRouteOption(core.MaxRecordRouteSlots)
	src.Send(pkt)
	sim.RunUntil(sim.Now() + 100*netsim.Millisecond)

	if len(got) != core.MaxRecordRouteSlots {
		t.Fatalf("recorded %d hops, option caps at %d", len(got), core.MaxRecordRouteSlots)
	}
}
