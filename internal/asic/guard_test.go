package asic_test

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/guard"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Two tenants with identically tenant-relative programs must land in
// disjoint physical SRAM, a forged address outside the partition must
// read as poison and store to nowhere, and the operator must keep the
// unguarded identity view.
func TestGuardedViewIsolation(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, Guard: true})
	h := n.AddHost()
	n.LinkHost(h, sw, edge)

	g1, err := sw.GrantTenant(1, guard.DefaultACL(), 64, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sw.GrantTenant(2, guard.DefaultACL(), 64, 1, 8)
	if err != nil {
		t.Fatal(err)
	}

	v1 := sw.GuardedViewForTesting(nil, 0, 1)
	v2 := sw.GuardedViewForTesting(nil, 0, 2)

	// Both tenants write "their" word 0; physically they are different
	// words of the bank.
	if err := v1.Store(mem.SRAMBase, 0xA1); err != nil {
		t.Fatal(err)
	}
	if err := v2.Store(mem.SRAMBase, 0xB2); err != nil {
		t.Fatal(err)
	}
	if got := sw.SRAM(mem.SRAMIndex(g1.Partition.Base)); got != 0xA1 {
		t.Fatalf("tenant 1 word 0 = %#x at its partition base, want 0xA1", got)
	}
	if got := sw.SRAM(mem.SRAMIndex(g2.Partition.Base)); got != 0xB2 {
		t.Fatalf("tenant 2 word 0 = %#x at its partition base, want 0xB2", got)
	}
	if got, _ := v1.Load(mem.SRAMBase); got != 0xA1 {
		t.Fatalf("tenant 1 reads %#x, want its own 0xA1", got)
	}

	// A forged address past the 64-word window: load poisons, store
	// vanishes — and crucially neither touches tenant 2's partition,
	// which starts 64 words in.
	got, err := v1.Load(mem.SRAMBase + 64)
	if err != nil || got != guard.Poison {
		t.Fatalf("out-of-partition load = %#x, %v; want poison, nil", got, err)
	}
	if err := v1.Store(mem.SRAMBase+64, 0xEE1); err != nil {
		t.Fatalf("denied store returned error %v; fail-forward wants nil", err)
	}
	if got := sw.SRAM(mem.SRAMIndex(g2.Partition.Base)); got != 0xB2 {
		t.Fatalf("tenant 2's word clobbered to %#x", got)
	}

	// Shared state: stats readable, port scratch not writable under
	// DefaultACL — the store vanishes without an error.
	if _, err := v1.Load(mem.QueueBase + mem.QueueBytes); err != nil {
		t.Fatalf("stats load denied: %v", err)
	}
	if err := v1.Store(mem.PortBase+mem.PortScratchBase, 7); err != nil {
		t.Fatal(err)
	}
	if sw.Port(0).Scratch(0) != 0 {
		t.Fatal("DefaultACL tenant wrote port scratch")
	}

	// CondStore relocates and serializes like a plain store in the
	// tenant's window, and poisons when denied.
	cs := v1.(interface {
		CondStore(mem.Addr, uint32, uint32) (uint32, error)
	})
	if old, err := cs.CondStore(mem.SRAMBase+1, 0, 42); err != nil || old != 0 {
		t.Fatalf("CondStore in window: old=%d err=%v", old, err)
	}
	if got := sw.SRAM(mem.SRAMIndex(g1.Partition.Base) + 1); got != 42 {
		t.Fatalf("CondStore landed at %#x", got)
	}
	if old, err := cs.CondStore(mem.SRAMBase+64, 0, 1); err != nil || old != guard.Poison {
		t.Fatalf("denied CondStore: old=%#x err=%v; want poison, nil", old, err)
	}

	// The operator sees the bank unrelocated: tenant 1's word under its
	// physical address.
	vop := sw.GuardedViewForTesting(nil, 0, guard.Operator)
	if got, _ := vop.Load(g1.Partition.Base); got != 0xA1 {
		t.Fatalf("operator reads %#x at tenant 1's base", got)
	}

	// An unknown tenant (never granted) is denied everything.
	v9 := sw.GuardedViewForTesting(nil, 0, 9)
	if got, _ := v9.Load(mem.QueueBase); got != guard.Poison {
		t.Fatalf("unknown tenant read %#x, want poison", got)
	}
}

// A hostile program executed end to end must forward with
// FlagAccessFault, and every denial must reconcile exactly across the
// switch counter, the per-tenant metric, the guard table and the span
// stream.
func TestGuardEndToEndDenialReconciles(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	sw := n.AddSwitch(asic.Config{Ports: 4, Guard: true, Metrics: reg, Trace: tr})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())
	h1.NIC.SetTenant(3)

	if _, err := sw.GrantTenant(3, guard.DefaultACL(), 32, 1, 8); err != nil {
		t.Fatal(err)
	}

	// Two denials per execution: a store into forged SRAM far past the
	// 32-word window, and a load of the same word.
	forged := uint16(mem.SRAMBase + 0x700)
	prog := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: forged, B: 0},
		{Op: core.OpLOAD, A: forged, B: 1},
	}, 2)
	prog.SetWord(0, 0xBAD)

	var echoed *core.TPP
	h2.HandleDefault(func(p *core.Packet) {
		if p.TPP != nil {
			echoed = p.TPP
		}
	})
	h1.Send(&core.Packet{
		Eth: core.Ethernet{Dst: h2.MAC, Src: h1.MAC, Type: core.EtherTypeTPP},
		TPP: prog,
		IP:  &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: h1.IP, Dst: h2.IP},
		UDP: &core.UDP{SrcPort: 1, DstPort: 9},
	})
	sim.RunUntil(20 * netsim.Millisecond)

	if echoed == nil {
		t.Fatal("hostile TPP did not forward — the gate must never stall the dataplane")
	}
	if echoed.Flags&core.FlagAccessFault == 0 {
		t.Fatal("FlagAccessFault not set")
	}
	if echoed.Flags&core.FlagError != 0 {
		t.Fatal("fail-forward denial raised FlagError")
	}
	if got := echoed.Word(1); got != guard.Poison {
		t.Fatalf("denied load recorded %#x, want poison", got)
	}
	// Nothing physically changed.
	if got := sw.SRAM(0x700); got != 0 {
		t.Fatalf("forged store landed: %#x", got)
	}

	// counter == metric == table == span count == 2.
	if got := sw.TPPsDenied(); got != 2 {
		t.Fatalf("TPPsDenied = %d, want 2", got)
	}
	if got := reg.Counter("switch/1/tpps_denied").Value(); got != 2 {
		t.Fatalf("tpps_denied metric = %d", got)
	}
	if got := reg.Counter("switch/1/tenant/3/tpps_denied").Value(); got != 2 {
		t.Fatalf("per-tenant metric = %d", got)
	}
	if got := sw.Guard().Denied(3); got != 2 {
		t.Fatalf("table Denied(3) = %d", got)
	}
	var spans, writes int
	for _, ev := range tr.Events() {
		if ev.Stage == obs.StageAccessDeny {
			spans++
			if ev.B != 3 {
				t.Fatalf("span tenant = %d", ev.B)
			}
			if ev.A>>1 != uint64(forged) {
				t.Fatalf("span address = %#x", ev.A>>1)
			}
			if ev.A&1 == 1 {
				writes++
			}
		}
	}
	if spans != 2 || writes != 1 {
		t.Fatalf("access-deny spans = %d (writes %d), want 2 (1)", spans, writes)
	}
}

// With the guard on, the admission gate splits by tenant: a flooding
// tenant exhausts only its own bucket while another tenant's TPP still
// executes.
func TestGuardPerTenantAdmission(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, Guard: true, TPPRate: 10})
	rogue, victim, dst := n.AddHost(), n.AddHost(), n.AddHost()
	n.LinkHost(rogue, sw, edge)
	n.LinkHost(victim, sw, edge)
	n.LinkHost(dst, sw, edge)
	n.PrimeL2(time1ms())
	rogue.NIC.SetTenant(1)
	victim.NIC.SetTenant(2)
	if _, err := sw.GrantTenant(1, guard.DefaultACL(), 8, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.GrantTenant(2, guard.DefaultACL(), 8, 1, 2); err != nil {
		t.Fatal(err)
	}

	send := func(h *endhost.Host) {
		h.Send(&core.Packet{
			Eth: core.Ethernet{Dst: dst.MAC, Src: h.MAC, Type: core.EtherTypeTPP},
			TPP: core.NewTPP(core.AddrStack, []core.Instruction{
				{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
			}, 1),
			IP:  &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: h.IP, Dst: dst.IP},
			UDP: &core.UDP{SrcPort: 1, DstPort: 9},
		})
	}
	var flags []uint8
	var tenants []uint8
	dst.HandleDefault(func(p *core.Packet) {
		if p.TPP != nil {
			flags = append(flags, p.TPP.Flags)
			tenants = append(tenants, p.TPP.Tenant)
		}
	})

	// Six rapid rogue TPPs against a burst of 2 and 10/s refill, then
	// one victim TPP.
	for i := 0; i < 6; i++ {
		send(rogue)
	}
	send(victim)
	sim.RunUntil(50 * netsim.Millisecond)

	if len(flags) != 7 {
		t.Fatalf("delivered %d TPP packets, want 7 (throttled ones still forward)", len(flags))
	}
	var rogueThrottled, victimThrottled int
	for i, f := range flags {
		if f&core.FlagThrottled == 0 {
			continue
		}
		if tenants[i] == 1 {
			rogueThrottled++
		} else {
			victimThrottled++
		}
	}
	if rogueThrottled < 3 {
		t.Fatalf("rogue throttled %d of 6, want most of the flood", rogueThrottled)
	}
	if victimThrottled != 0 {
		t.Fatal("victim throttled by the rogue's flood")
	}
	if got := sw.Guard().Throttled(1); got != uint64(rogueThrottled) {
		t.Fatalf("table Throttled(1) = %d, flags saw %d", got, rogueThrottled)
	}
}

// Grants survive a crash-restart (they are config); the partition
// content and the admission buckets do not (they are soft state).
func TestGuardReboot(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, Guard: true, TPPRate: 10})
	h := n.AddHost()
	n.LinkHost(h, sw, edge)

	g, err := sw.GrantTenant(5, guard.DefaultACL(), 16, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := sw.GuardedViewForTesting(nil, 0, 5)
	if err := v.Store(mem.SRAMBase, 99); err != nil {
		t.Fatal(err)
	}
	// Drain the bucket.
	now := sw.Now()
	sw.Guard().Admit(5, now, 10)
	sw.Guard().Admit(5, now, 10)
	if sw.Guard().Admit(5, now, 10) {
		t.Fatal("bucket not drained")
	}

	sw.Reboot(netsim.Millisecond)
	sim.RunUntil(sim.Now() + 10*netsim.Millisecond)

	got, ok := sw.Guard().Lookup(5)
	if !ok || got.Partition != g.Partition {
		t.Fatalf("grant lost across reboot: %+v, %v", got, ok)
	}
	if sw.SRAM(mem.SRAMIndex(g.Partition.Base)) != 0 {
		t.Fatal("partition content survived the wipe")
	}
	if !sw.Guard().Admit(5, sw.Now(), 10) {
		t.Fatal("bucket not refilled by boot")
	}
}

// Teardown zeroes the partition before the words can be re-granted.
func TestRevokeTenantZeroes(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, Guard: true})
	h := n.AddHost()
	n.LinkHost(h, sw, edge)

	g, err := sw.GrantTenant(1, guard.DefaultACL(), 16, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	v := sw.GuardedViewForTesting(nil, 0, 1)
	for i := 0; i < 16; i++ {
		if err := v.Store(mem.SRAMBase+mem.Addr(i), 0x5EC); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.RevokeTenant(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if got := sw.SRAM(mem.SRAMIndex(g.Partition.Base) + i); got != 0 {
			t.Fatalf("word %d leaked %#x after revoke", i, got)
		}
	}
	// The successor tenant reuses the gap and reads zeros.
	g2, err := sw.GrantTenant(2, guard.DefaultACL(), 16, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Partition != g.Partition {
		t.Fatalf("gap not reused: %+v vs %+v", g2.Partition, g.Partition)
	}
	v2 := sw.GuardedViewForTesting(nil, 0, 2)
	if got, _ := v2.Load(mem.SRAMBase); got != 0 {
		t.Fatalf("successor read predecessor residue %#x", got)
	}
}

// A guarded switch with no tenants behaves exactly like an unguarded
// one for untenanted (operator) traffic.
func TestGuardOperatorCompat(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4, Guard: true})
	h1, h2 := n.AddHost(), n.AddHost()
	n.LinkHost(h1, sw, edge)
	n.LinkHost(h2, sw, edge)
	n.PrimeL2(time1ms())

	var echoed *core.TPP
	h2.HandleDefault(func(p *core.Packet) {
		if p.TPP != nil {
			echoed = p.TPP
		}
	})
	prog := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpSTORE, A: uint16(mem.SRAMBase + 7), B: 0},
		{Op: core.OpPUSH, A: uint16(mem.QueueBase + mem.QueueBytes)},
	}, 2)
	prog.SetWord(0, 1234)
	h1.Send(&core.Packet{
		Eth: core.Ethernet{Dst: h2.MAC, Src: h1.MAC, Type: core.EtherTypeTPP},
		TPP: prog,
		IP:  &core.IPv4{TTL: 64, Proto: core.ProtoUDP, Src: h1.IP, Dst: h2.IP},
		UDP: &core.UDP{SrcPort: 1, DstPort: 9},
	})
	sim.RunUntil(20 * netsim.Millisecond)
	if echoed == nil {
		t.Fatal("no delivery")
	}
	if echoed.Flags&(core.FlagAccessFault|core.FlagError) != 0 {
		t.Fatalf("operator traffic flagged: %#x", echoed.Flags)
	}
	if sw.SRAM(7) != 1234 {
		t.Fatal("operator store did not land at its physical address")
	}
	if sw.TPPsDenied() != 0 {
		t.Fatal("operator access denied")
	}
}
