package asic

import (
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// Port is one switch port: the egress side owns the queues and the
// transmit channel; the ingress side feeds the pipeline and maintains
// receive counters.
type Port struct {
	sw *Switch
	id int

	ch     *netsim.Channel // egress channel; nil while unwired
	queues []*Queue

	// Trusted marks whether TPPs arriving on this port are executed
	// and forwarded.  Untrusted edge ports strip TPPs (§4: "the
	// ingress switches at the network edge ... can strip TPPs
	// injected by VMs, or those TPPs received from the Internet").
	trusted bool

	// Cumulative byte counters (wrap in the 32-bit register view).
	rxBytes uint64
	txBytes uint64

	rxUtil *meter // traffic entering the egress link (enqueue rate)
	txUtil *meter // traffic leaving on the wire

	// scratch is the per-port task scratch area ([Link:Scratch*]);
	// word 0 is the conventional RCP rate register.
	scratch [mem.PortScratchWords]uint32

	// snr is the wireless channel SNR register in centi-dB, updated
	// by access-point models (internal/wireless).
	snr uint32

	// Telemetry handles, resolved at construction (nil when metrics
	// are disabled — recording through them is then a no-op).
	mQueueDepth *obs.Histogram // occupancy in bytes after each enqueue
	mTxBytes    *obs.Counter
	mDrops      *obs.Counter
}

// ID returns the port number.
func (p *Port) ID() int { return p.id }

// Trusted reports whether TPPs may enter on this port.
func (p *Port) Trusted() bool { return p.trusted }

// SetTrusted marks the port as a trusted (internal) or untrusted (edge)
// port for TPP admission.
func (p *Port) SetTrusted(v bool) { p.trusted = v }

// Wire attaches the egress channel; the channel's idle callback drives
// the output scheduler.
func (p *Port) Wire(ch *netsim.Channel) {
	p.ch = ch
	ch.SetOnIdle(p.kick)
}

// Wired reports whether the port has an egress channel.
func (p *Port) Wired() bool { return p.ch != nil }

// Channel returns the egress channel (nil while unwired).
func (p *Port) Channel() *netsim.Channel { return p.ch }

// Queue returns egress queue i.
func (p *Port) Queue(i int) *Queue { return p.queues[i] }

// Queues returns the number of egress queues.
func (p *Port) Queues() int { return len(p.queues) }

// QueueBytes returns the instantaneous occupancy summed over the
// port's queues — the [Link:QueueSize] register.
func (p *Port) QueueBytes() int {
	n := 0
	for _, q := range p.queues {
		n += q.Bytes()
	}
	return n
}

// Scratch returns task scratch word i ([Link:Scratch<i>]).
func (p *Port) Scratch(i int) uint32 { return p.scratch[i] }

// SetScratch writes task scratch word i; the control-plane agent uses
// this to initialize task state (e.g. seeding the RCP rate register
// with the link capacity, §2.2 footnote).
func (p *Port) SetScratch(i int, v uint32) { p.scratch[i] = v }

// SetSNR updates the wireless SNR register (centi-dB).
func (p *Port) SetSNR(v uint32) { p.snr = v }

// SNR reads the wireless SNR register.
func (p *Port) SNR() uint32 { return p.snr }

// RXUtil returns the smoothed rate of traffic entering the egress link
// (bytes/sec) — the [Link:RX-Utilization] register.
func (p *Port) RXUtil() uint32 { return p.rxUtil.Rate() }

// TXUtil returns the smoothed transmitted rate (bytes/sec).
func (p *Port) TXUtil() uint32 { return p.txUtil.Rate() }

// DropBytes returns cumulative bytes dropped across the port's queues.
func (p *Port) DropBytes() uint64 {
	var n uint64
	for _, q := range p.queues {
		n += q.DropBytes
	}
	return n
}

// EnqBytes returns cumulative bytes enqueued across the port's queues.
func (p *Port) EnqBytes() uint64 {
	var n uint64
	for _, q := range p.queues {
		n += q.EnqBytes
	}
	return n
}

// enqueue commits a packet to egress queue qid, then kicks the
// scheduler.  It returns false when the queue dropped the packet.
//
//alloc:free
func (p *Port) enqueue(pkt *core.Packet, qid int) bool {
	if qid < 0 || qid >= len(p.queues) {
		qid = 0
	}
	wire := pkt.WireLen()
	if !p.queues[qid].Enqueue(pkt) {
		p.mDrops.Inc()
		p.sw.span(pkt, obs.StageDrop, uint64(qid), uint64(wire))
		pkt.Recycle() // tail drop: the fabric destroys the packet here
		return false
	}
	p.mQueueDepth.Observe(uint64(p.queues[qid].Bytes()))
	p.sw.span(pkt, obs.StageEnqueue, uint64(qid), uint64(p.queues[qid].Bytes()))
	p.rxUtil.Add(wire) // demand entering the egress link
	p.kick()
	return true
}

// kick starts a transmission if the channel is idle and a packet is
// waiting.  The scheduler is strict priority: queue 0 first.
//
//alloc:free
func (p *Port) kick() {
	if p.ch == nil || p.ch.Busy() {
		return
	}
	for qi, q := range p.queues {
		if pkt := q.Dequeue(); pkt != nil {
			wire := pkt.WireLen()
			p.txBytes += uint64(wire)
			p.txUtil.Add(wire)
			p.mTxBytes.Add(uint64(wire))
			lat := uint64(int64(p.sw.sim.Now()) - pkt.Meta.EnqueuedAt)
			p.sw.m.hopLatency.Observe(lat)
			p.sw.span(pkt, obs.StageSched, uint64(qi), lat)
			p.ch.Send(pkt)
			return
		}
	}
}

// tick advances the port's rate meters by one statistics window.
//
//alloc:free
func (p *Port) tick() {
	p.rxUtil.Tick()
	p.txUtil.Tick()
}

// stat reads per-port statistic word idx for the TPP memory map.
func (p *Port) stat(idx int) (uint32, bool) {
	switch idx {
	case mem.PortQueueSize:
		return uint32(p.QueueBytes()), true
	case mem.PortRXUtil:
		return p.rxUtil.Rate(), true
	case mem.PortTXUtil:
		return p.txUtil.Rate(), true
	case mem.PortRXBytes:
		return uint32(p.rxBytes), true
	case mem.PortTXBytes:
		return uint32(p.txBytes), true
	case mem.PortDropBytes:
		return uint32(p.DropBytes()), true
	case mem.PortEnqBytes:
		return uint32(p.EnqBytes()), true
	case mem.PortCapacity:
		if p.ch == nil {
			return 0, true
		}
		return p.ch.RateBytes(), true
	case mem.PortSNR:
		return p.snr, true
	}
	if idx >= mem.PortScratchBase && idx < mem.PortScratchBase+mem.PortScratchWords {
		return p.scratch[idx-mem.PortScratchBase], true
	}
	return 0, false
}
