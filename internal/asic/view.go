package asic

import (
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// view is the per-packet window onto the switch's unified memory map
// (§3.2.1).  Context-relative namespaces resolve against the packet's
// selected egress port and queue: "to the ASIC, the address 0xb000
// refers to the queue size on the link the packet will be sent out".
type view struct {
	sw   *Switch
	pkt  *core.Packet
	port *Port
}

var _ interface {
	mem.View
	CondStore(mem.Addr, uint32, uint32) (uint32, error)
} = (*view)(nil)

// Load implements mem.View.
func (v *view) Load(a mem.Addr) (uint32, error) {
	switch mem.NamespaceOf(a) {
	case mem.NSSwitch:
		if val, ok := v.switchStat(int(a - mem.SwitchBase)); ok {
			return val, nil
		}
	case mem.NSPort:
		if val, ok := v.port.stat(int(a - mem.PortBase)); ok {
			return val, nil
		}
	case mem.NSQueue:
		if val, ok := v.queueStat(int(a - mem.QueueBase)); ok {
			return val, nil
		}
	case mem.NSPacket:
		if val, ok := v.packetStat(int(a - mem.PacketBase)); ok {
			return val, nil
		}
	case mem.NSSRAM:
		return v.sw.sram[mem.SRAMIndex(a)], nil
	case mem.NSPortAbs:
		port, stat := mem.PortAbsDecode(a)
		if port < len(v.sw.ports) {
			if val, ok := v.sw.ports[port].stat(stat); ok {
				return val, nil
			}
		}
	}
	return 0, mem.ErrUnmapped(a, false)
}

// Store implements mem.View, enforcing the protection map.
func (v *view) Store(a mem.Addr, val uint32) error {
	if !mem.Writable(a) {
		if _, err := v.Load(a); err != nil {
			return mem.ErrUnmapped(a, true)
		}
		return mem.ErrReadOnly(a)
	}
	v.sw.busMu.Lock()
	defer v.sw.busMu.Unlock()
	return v.storeLocked(a, val)
}

func (v *view) storeLocked(a mem.Addr, val uint32) error {
	switch mem.NamespaceOf(a) {
	case mem.NSSRAM:
		v.sw.sram[mem.SRAMIndex(a)] = val
		return nil
	case mem.NSPort:
		v.port.scratch[int(a-mem.PortBase)-mem.PortScratchBase] = val
		return nil
	case mem.NSPortAbs:
		port, stat := mem.PortAbsDecode(a)
		if port >= len(v.sw.ports) {
			return mem.ErrUnmapped(a, true)
		}
		v.sw.ports[port].scratch[stat-mem.PortScratchBase] = val
		return nil
	}
	return mem.ErrUnmapped(a, true)
}

// CondStore implements the linearizable compare-and-store behind
// CSTORE: the switch memory bus lock makes the load and store one
// atomic step.
func (v *view) CondStore(a mem.Addr, cond, val uint32) (uint32, error) {
	if !mem.Writable(a) {
		if _, err := v.Load(a); err != nil {
			return 0, mem.ErrUnmapped(a, true)
		}
		return 0, mem.ErrReadOnly(a)
	}
	v.sw.busMu.Lock()
	defer v.sw.busMu.Unlock()
	old, err := v.Load(a)
	if err != nil {
		return 0, err
	}
	if old == cond {
		if err := v.storeLocked(a, val); err != nil {
			return 0, err
		}
		// One commit, accounted once across counter, metric and span,
		// so the in-band telemetry plane can reconcile every applied
		// dataplane update against what its sweeps later collect.
		v.sw.cstores++
		v.sw.m.cstores.Inc()
		v.sw.span(v.pkt, obs.StageCStore, uint64(a), uint64(val))
	}
	return old, nil
}

func (v *view) switchStat(idx int) (uint32, bool) {
	s := v.sw
	switch idx {
	case mem.SwitchID:
		return s.cfg.ID, true
	case mem.SwitchNumPorts:
		return uint32(len(s.ports)), true
	case mem.SwitchClockLo:
		return uint32(uint64(s.sim.Now())), true
	case mem.SwitchClockHi:
		return uint32(uint64(s.sim.Now()) >> 32), true
	case mem.SwitchFlowVersion:
		return s.tcam.Version(), true
	case mem.SwitchL2Size:
		return uint32(s.l2.Size()), true
	case mem.SwitchL3Size:
		return uint32(s.l3.Size()), true
	case mem.SwitchTCAMSize:
		return uint32(s.tcam.Size()), true
	case mem.SwitchPackets:
		return uint32(s.packets), true
	case mem.SwitchTPPs:
		return uint32(s.tppsExecuted), true
	case mem.SwitchEpoch:
		return s.epoch, true
	}
	return 0, false
}

func (v *view) queueStat(idx int) (uint32, bool) {
	q := v.port.queues[v.pkt.Meta.QueueID]
	switch idx {
	case mem.QueueBytes:
		return uint32(q.Bytes()), true
	case mem.QueueDropBytes:
		return uint32(q.DropBytes), true
	case mem.QueuePackets:
		return uint32(q.EnqPkts), true
	case mem.QueueDropPackets:
		return uint32(q.DropPkts), true
	case mem.QueueMaxBytes:
		return uint32(q.CapBytes()), true
	}
	return 0, false
}

func (v *view) packetStat(idx int) (uint32, bool) {
	m := &v.pkt.Meta
	switch idx {
	case mem.PacketInputPort:
		return m.InPort, true
	case mem.PacketOutputPort:
		return m.OutPort, true
	case mem.PacketMatchedID:
		return m.MatchedEntry, true
	case mem.PacketMatchedVer:
		return m.MatchedVer, true
	case mem.PacketQueueID:
		return m.QueueID, true
	case mem.PacketAltRoutes:
		return m.AltRoutes, true
	case mem.PacketUIDLo:
		return uint32(m.UID), true
	case mem.PacketUIDHi:
		return uint32(m.UID >> 32), true
	case mem.PacketHopLatency:
		return uint32(int64(v.sw.sim.Now()) - m.EnqueuedAt), true
	}
	return 0, false
}

// ViewForTesting builds a memory view bound to outPort with the given
// packet context, so tests and experiment harnesses can read registers
// the way a TPP would without sending one.
func (s *Switch) ViewForTesting(pkt *core.Packet, outPort int) mem.View {
	if pkt == nil {
		pkt = &core.Packet{Meta: core.Metadata{OutPort: uint32(outPort), EnqueuedAt: int64(s.sim.Now())}}
	}
	return &view{sw: s, pkt: pkt, port: s.ports[outPort]}
}

// Now exposes the switch's dataplane clock for tests.
func (s *Switch) Now() netsim.Time { return s.sim.Now() }

// ReadWord is the control plane's read-back path: it reads one word of
// the unified memory map through the same per-packet view machinery a
// collect TPP's LOAD resolves through, so a controller verifying its
// writes observes exactly what the dataplane would report — the epoch
// word, table sizes, SRAM contents — never a cached copy.  Context-
// relative Port and Queue addresses resolve against port 0, and packet
// metadata against a synthetic zero packet.  ok is false for unmapped
// addresses and while the switch is booting: a switch that is dark to
// the dataplane answers no read-back either, which is how a controller
// tells "mid-boot" apart from "epoch raced".
func (s *Switch) ReadWord(a mem.Addr) (uint32, bool) {
	if s.booting {
		return 0, false
	}
	pkt := core.Packet{Meta: core.Metadata{EnqueuedAt: int64(s.sim.Now())}}
	v := view{sw: s, pkt: &pkt, port: s.ports[0]}
	val, err := v.Load(a)
	if err != nil {
		return 0, false
	}
	return val, true
}
