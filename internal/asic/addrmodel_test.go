package asic

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/tcpu"
)

// The static address model the verifier trusts (mem.Readable and
// mem.StoreOK) must agree with the live per-packet view for every one
// of the 4096 virtual addresses: if they ever drift, the verifier's
// "verified programs never fault" guarantee silently breaks.
func TestStaticAddressModelMatchesView(t *testing.T) {
	for _, ports := range []int{1, 2, 4} {
		sim := netsim.New(1)
		sw := New(sim, Config{ID: 1, Ports: ports, TCPU: tcpu.Config{}})
		v := sw.ViewForTesting(nil, 0)

		for a := 0; a < mem.AddrSpaceWords; a++ {
			addr := mem.Addr(a)
			_, loadErr := v.Load(addr)
			if got, want := mem.Readable(addr, ports), loadErr == nil; got != want {
				t.Fatalf("ports=%d addr %s (%#x): Readable=%v but view load err=%v",
					ports, mem.NameOf(addr), addr.ByteAddr(), got, loadErr)
			}
			storeErr := v.Store(addr, 0)
			if got, want := mem.StoreOK(addr, ports), storeErr == nil; got != want {
				t.Fatalf("ports=%d addr %s (%#x): StoreOK=%v but view store err=%v",
					ports, mem.NameOf(addr), addr.ByteAddr(), got, storeErr)
			}
		}
	}
}
