package asic

import (
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// spinWatch is one fixed-function spin-bit observer: a §4-style
// comparator watching a single flow's TOS spin bit (core.SpinBit) as
// packets transit the switch.  Endpoints alternate the bit once per
// round trip (QUIC-style), so the interval between observed transitions
// is the flow's RTT as seen from this vantage point — measured entirely
// in the dataplane, with zero cooperation from the end hosts beyond
// running their own spin protocol.
//
// Each edge interval is bucketed with the same power-of-two function
// the host-side obs.Histogram uses (obs.BucketOf) and counted into an
// SRAM histogram window of obs.NumBuckets words starting at base, where
// collector TPPs can sweep it like any other dataplane histogram.  The
// edge-tracking state (last bit, last edge time) is soft: a crash wipes
// it along with the SRAM, and the first post-boot packet re-anchors.
type spinWatch struct {
	src, dst uint32   // the watched flow, exact-match on IPv4 src/dst
	base     mem.Addr // SRAM histogram window, obs.NumBuckets words

	seen     bool // a packet of the flow has anchored lastBit/lastEdge
	lastBit  uint8
	lastEdge netsim.Time

	edges   uint64 // transitions observed (the first has no interval)
	samples uint64 // intervals bucketed into the SRAM window
}

func (w *spinWatch) reset() {
	w.seen = false
	w.lastBit = 0
	w.lastEdge = 0
}

// observe inspects one forwarded packet; non-flow packets are ignored.
// Runs in the fixed-function stage just before the ECN comparator.
func (w *spinWatch) observe(s *Switch, pkt *core.Packet) {
	if pkt.IP.Src != w.src || pkt.IP.Dst != w.dst {
		return
	}
	bit := pkt.IP.TOS & core.SpinBit
	now := s.sim.Now()
	if !w.seen {
		w.seen = true
		w.lastBit = bit
		w.lastEdge = now
		return
	}
	if bit == w.lastBit {
		return
	}
	// An edge.  The very first edge after (re-)anchoring measures the
	// interval since the anchor packet, which is only a true RTT when
	// the anchor itself was an edge — after a reboot wipe the anchor is
	// an arbitrary mid-spin packet, so implementations conservatively
	// bucket only edge-to-edge intervals; we anchor on the first packet
	// seen, whose TOS carries the current spin value, making every
	// subsequent transition a true edge-to-edge interval.
	interval := uint64(now - w.lastEdge)
	w.edges++
	s.m.spinEdges.Inc()
	bucketed := uint64(0)
	if idx := obs.BucketOf(interval); idx < obs.NumBuckets {
		i := mem.SRAMIndex(w.base + mem.Addr(idx))
		if i >= 0 && i < len(s.sram) {
			s.busMu.Lock()
			s.sram[i]++
			s.busMu.Unlock()
			w.samples++
			s.m.spinSamples.Inc()
			bucketed = 1
		}
	}
	s.span(pkt, obs.StageSpinEdge, interval, bucketed)
	w.lastBit = bit
	w.lastEdge = now
}

// WatchSpin installs a spin-bit observer for the (src, dst) flow,
// bucketing edge intervals into the obs.NumBuckets-word SRAM window at
// base (an NSSRAM address, typically allocated through the control
// plane agent).  Multiple watches may coexist; each needs its own
// window.
func (s *Switch) WatchSpin(src, dst uint32, base mem.Addr) {
	s.spin = append(s.spin, &spinWatch{src: src, dst: dst, base: base})
}

// SpinEdges returns how many spin-bit transitions the observer for
// (src, dst) has seen, and SpinSamples how many intervals it bucketed;
// both are zero for an unwatched flow.  Like the other Go-side counters
// they survive Reboot, while the SRAM buckets do not.
func (s *Switch) SpinEdges(src, dst uint32) uint64 {
	for _, w := range s.spin {
		if w.src == src && w.dst == dst {
			return w.edges
		}
	}
	return 0
}

// SpinSamples returns how many spin intervals the observer for
// (src, dst) has bucketed into its SRAM window.
func (s *Switch) SpinSamples(src, dst uint32) uint64 {
	for _, w := range s.spin {
		if w.src == src && w.dst == dst {
			return w.samples
		}
	}
	return 0
}
