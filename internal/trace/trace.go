// Package trace provides the small result-recording utilities the
// experiment harnesses share: CSV series emission and aligned text
// tables, so every figure and table of the paper can be regenerated as
// machine-readable rows.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV writes rows of values as comma-separated lines.  Values are
// formatted with %v; floats keep full precision via %g.
type CSV struct {
	w   io.Writer
	err error
}

// NewCSV starts a CSV stream with the given header columns.
func NewCSV(w io.Writer, header ...string) *CSV {
	c := &CSV{w: w}
	if len(header) > 0 {
		c.writeLine(header)
	}
	return c
}

// Row appends one row.
func (c *CSV) Row(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%g", x)
		case float32:
			// Format at 32-bit precision: going through %g (which
			// converts to float64 first) renders float32(0.1) as
			// 0.10000000149011612 instead of 0.1.
			cells[i] = strconv.FormatFloat(float64(x), 'g', -1, 32)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	c.writeLine(cells)
}

// Err returns the first write error, if any.
func (c *CSV) Err() error { return c.err }

func (c *CSV) writeLine(cells []string) {
	if c.err != nil {
		return
	}
	for i, cell := range cells {
		if strings.ContainsAny(cell, ",\"\n") {
			cells[i] = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
		}
	}
	_, c.err = fmt.Fprintln(c.w, strings.Join(cells, ","))
}

// Table renders aligned text tables for terminal reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given columns.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends one row; values are formatted with %v.
func (t *Table) Row(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, cells)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var total int64
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
		n, err := io.WriteString(w, b.String())
		total += int64(n)
		return err
	}
	if err := line(t.header); err != nil {
		return total, err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return total, err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.  Rendering to an in-memory
// buffer cannot fail, but WriteTo's contract allows an error, so it is
// surfaced rather than silently dropped.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("trace: table render failed: %v", err)
	}
	return b.String()
}
