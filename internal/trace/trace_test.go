package trace

import (
	"strings"
	"testing"
)

func TestCSV(t *testing.T) {
	var b strings.Builder
	c := NewCSV(&b, "t", "r_over_c", "note")
	c.Row(0.1, 1.0, "plain")
	c.Row(0.2, 0.5, `has,comma and "quote"`)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if lines[0] != "t,r_over_c,note" {
		t.Fatalf("header: %q", lines[0])
	}
	if lines[1] != "0.1,1,plain" {
		t.Fatalf("row 1: %q", lines[1])
	}
	if lines[2] != `0.2,0.5,"has,comma and ""quote"""` {
		t.Fatalf("row 2: %q", lines[2])
	}
}

func TestCSVNoHeader(t *testing.T) {
	var b strings.Builder
	c := NewCSV(&b)
	c.Row(1, 2)
	if got := strings.TrimSpace(b.String()); got != "1,2" {
		t.Fatalf("got %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("short", 1)
	tb.Row("a-much-longer-name", 123456)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator: %q", lines[1])
	}
	// The value column starts at the same offset in every row.
	idx := strings.Index(lines[2], "1")
	if idx < 0 || !strings.Contains(lines[3][idx:], "123456") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("x")
	tb.Row(0.333333333)
	if !strings.Contains(tb.String(), "0.3333") {
		t.Fatalf("float formatting: %s", tb.String())
	}
}

// failWriter errors after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFail
	}
	f.n--
	return len(p), nil
}

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "injected write failure" }

func TestCSVWriteErrorSticky(t *testing.T) {
	c := NewCSV(&failWriter{n: 1}, "a")
	c.Row(1)
	c.Row(2)
	if c.Err() == nil {
		t.Fatal("write error not surfaced")
	}
}

func TestTableWriteError(t *testing.T) {
	tb := NewTable("x")
	tb.Row(1)
	if _, err := tb.WriteTo(&failWriter{}); err == nil {
		t.Fatal("header write error not surfaced")
	}
	if _, err := tb.WriteTo(&failWriter{n: 1}); err == nil {
		t.Fatal("separator write error not surfaced")
	}
	if _, err := tb.WriteTo(&failWriter{n: 2}); err == nil {
		t.Fatal("row write error not surfaced")
	}
}

func TestCSVFloat32Precision(t *testing.T) {
	var b strings.Builder
	c := NewCSV(&b)
	c.Row(float32(0.1), float32(16777217), float32(2.5))
	got := strings.TrimSpace(b.String())
	// float32(0.1) must round-trip as "0.1", not the float64 rendering
	// of its 32-bit approximation.
	if got != "0.1,1.6777216e+07,2.5" {
		t.Fatalf("float32 row = %q", got)
	}
}

func TestCSVQuotedCells(t *testing.T) {
	var b strings.Builder
	c := NewCSV(&b, "k", "v")
	c.Row("embedded\nnewline", `only "quotes"`)
	c.Row("plain", "also plain")
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	lines := strings.SplitN(b.String(), "\n", 2)
	if lines[0] != "k,v" {
		t.Fatalf("header: %q", lines[0])
	}
	rest := lines[1]
	if !strings.HasPrefix(rest, "\"embedded\nnewline\",\"only \"\"quotes\"\"\"\n") {
		t.Fatalf("quoted row: %q", rest)
	}
	if !strings.HasSuffix(strings.TrimSpace(rest), "plain,also plain") {
		t.Fatalf("plain row not preserved: %q", rest)
	}
}

func TestTableStringNeverPanics(t *testing.T) {
	// String goes through WriteTo's error path machinery; on the
	// in-memory builder it must simply render.
	tb := NewTable("a", "b")
	tb.Row(1, 2)
	s := tb.String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "2") {
		t.Fatalf("String() = %q", s)
	}
	if strings.Contains(s, "render failed") {
		t.Fatalf("in-memory render reported failure: %q", s)
	}
}
