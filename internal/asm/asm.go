// Package asm assembles the x86-like TPP assembly language used
// throughout the paper ("when we write TPPs in an x86-like assembly
// language, we will refer to specific dataplane statistics using the
// notation [Namespace:Statistic]") into wire-format TPPs, and
// disassembles them back.
//
// Source syntax, one statement per line ('#' or ';' start a comment):
//
//	.mode stack|hop          addressing mode (default stack)
//	.mem N                   packet memory words to preallocate
//	.hopsize N               per-hop bytes (hop mode)
//	.def NAME VALUE          define $NAME for use as an immediate
//	.init OFF V1 [V2 ...]    initialize packet memory words
//	.ptr N                   initial stack pointer (stack mode) or hop
//	                         counter (hop mode), in raw header bytes;
//	                         overrides the computed pool offset
//
//	PUSH [Queue:QueueSize]
//	POP  [SRAM:0x10]
//	LOAD [Switch:SwitchID], [Packet:Hop[1]]
//	STORE [Link:RCP-RateRegister], [Packet:0]
//	CSTORE [SRAM:0x10], [Packet:4]
//	CEXEC [Switch:SwitchID], [Packet:0]
//	ADD [Link:QueueSize], [Packet:2]
//	NOP
//
// The paper's three-operand immediate forms are also accepted in stack
// mode:
//
//	CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
//	CSTORE [SRAM:0], 10, 42
//
// Immediate operands are placed in an immediate pool at the front of
// packet memory and the initial stack pointer is set past the pool, so
// PUSHes never clobber them.  In hop mode every packet operand is
// hop-relative, so immediates must be laid out explicitly with .init.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
)

// Program is the result of assembling a source file.
type Program struct {
	TPP *core.TPP
	// PoolWords is the number of immediate-pool words placed at the
	// front of packet memory (stack mode only).
	PoolWords int
	// Lines maps each instruction index to its 1-based source line, so
	// verifier diagnostics can be attributed back to the source.
	Lines []int
}

// Line returns the 1-based source line of instruction pc, or 0 when
// unknown.
func (p *Program) Line(pc int) int {
	if pc < 0 || pc >= len(p.Lines) {
		return 0
	}
	return p.Lines[pc]
}

// Assemble compiles TPP assembly source into a ready-to-send TPP.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		mode: core.AddrStack,
		defs: make(map[string]uint32),
		init: make(map[int]uint32),
	}
	for lineno, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		a.curLine = lineno + 1
		if err := a.statement(line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineno+1, err)
		}
	}
	return a.finish()
}

// MustAssemble is Assemble for programs embedded in source code; it
// panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type pendingIns struct {
	op   core.Opcode
	a    mem.Addr
	line int // 1-based source line
	// Exactly one of the following B-operand shapes is used.
	hasPkt bool
	pkt    uint16   // explicit packet word (or hop offset)
	imms   []uint32 // immediates to pool (stack mode)
	poolAt int      // filled in at finish: pool slot of imms[0]
	extra  int      // extra pool words after the immediates (CSTORE result)
}

type assembler struct {
	mode     core.AddrMode
	memWords int
	hopLen   int
	ptr      int
	ptrSet   bool
	curLine  int
	defs     map[string]uint32
	init     map[int]uint32
	ins      []pendingIns
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, "#;"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func (a *assembler) statement(line string) error {
	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	return a.instruction(line)
}

func (a *assembler) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".mode":
		if len(fields) != 2 {
			return fmt.Errorf(".mode wants one argument")
		}
		switch fields[1] {
		case "stack":
			a.mode = core.AddrStack
		case "hop":
			a.mode = core.AddrHop
		default:
			return fmt.Errorf("unknown mode %q", fields[1])
		}
	case ".mem":
		n, err := parseInt(fields, 1)
		if err != nil {
			return err
		}
		a.memWords = int(n)
	case ".hopsize":
		n, err := parseInt(fields, 1)
		if err != nil {
			return err
		}
		if n%4 != 0 {
			return fmt.Errorf(".hopsize must be 4-byte aligned")
		}
		a.hopLen = int(n)
	case ".ptr":
		n, err := parseInt(fields, 1)
		if err != nil {
			return err
		}
		if n%4 != 0 {
			return fmt.Errorf(".ptr must be 4-byte aligned")
		}
		a.ptr = int(n)
		a.ptrSet = true
	case ".def":
		if len(fields) != 3 {
			return fmt.Errorf(".def wants NAME VALUE")
		}
		v, err := parseValue(fields[2], a.defs)
		if err != nil {
			return err
		}
		a.defs[fields[1]] = v
	case ".init":
		if len(fields) < 3 {
			return fmt.Errorf(".init wants OFFSET VALUE...")
		}
		off, err := parseValue(fields[1], a.defs)
		if err != nil {
			return err
		}
		for i, f := range fields[2:] {
			v, err := parseValue(f, a.defs)
			if err != nil {
				return err
			}
			a.init[int(off)+i] = v
		}
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

func parseInt(fields []string, i int) (uint32, error) {
	if len(fields) != i+1 {
		return 0, fmt.Errorf("%s wants one argument", fields[0])
	}
	v, err := strconv.ParseUint(fields[i], 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", fields[i])
	}
	return uint32(v), nil
}

// parseValue parses a numeric literal or a $NAME reference.
func parseValue(s string, defs map[string]uint32) (uint32, error) {
	if name, ok := strings.CutPrefix(s, "$"); ok {
		v, ok := defs[name]
		if !ok {
			return 0, fmt.Errorf("undefined symbol $%s", name)
		}
		return v, nil
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return uint32(v), nil
}

func (a *assembler) instruction(line string) error {
	op, rest, _ := strings.Cut(line, " ")
	opcode, ok := map[string]core.Opcode{
		"NOP": core.OpNOP, "LOAD": core.OpLOAD, "STORE": core.OpSTORE,
		"PUSH": core.OpPUSH, "POP": core.OpPOP, "CSTORE": core.OpCSTORE,
		"CEXEC": core.OpCEXEC, "ADD": core.OpADD,
		"SUB": core.OpSUB, "MAX": core.OpMAX,
	}[strings.ToUpper(op)]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	operands := splitOperands(rest)

	switch opcode {
	case core.OpNOP:
		if len(operands) != 0 {
			return fmt.Errorf("NOP takes no operands")
		}
		a.ins = append(a.ins, pendingIns{op: opcode, line: a.curLine})
		return nil

	case core.OpPUSH, core.OpPOP:
		if len(operands) != 1 {
			return fmt.Errorf("%s wants one switch operand", op)
		}
		addr, err := a.switchOperand(operands[0])
		if err != nil {
			return err
		}
		a.ins = append(a.ins, pendingIns{op: opcode, a: addr, line: a.curLine})
		return nil

	case core.OpLOAD, core.OpSTORE, core.OpADD, core.OpSUB, core.OpMAX:
		if len(operands) != 2 {
			return fmt.Errorf("%s wants a switch and a packet operand", op)
		}
		// The paper writes destination first: LOAD [sw],[pkt] and
		// STORE [sw],[pkt]; both orders carry the switch operand in
		// the bracketed non-Packet position.
		addr, err := a.switchOperand(operands[0])
		if err != nil {
			return err
		}
		pkt, err := a.packetOperand(operands[1])
		if err != nil {
			return err
		}
		a.ins = append(a.ins, pendingIns{op: opcode, a: addr, hasPkt: true, pkt: pkt, line: a.curLine})
		return nil

	case core.OpCSTORE, core.OpCEXEC:
		if len(operands) < 2 {
			return fmt.Errorf("%s wants 2 or 3 operands", op)
		}
		addr, err := a.switchOperand(operands[0])
		if err != nil {
			return err
		}
		switch len(operands) {
		case 2: // explicit packet operand
			pkt, err := a.packetOperand(operands[1])
			if err != nil {
				return err
			}
			a.ins = append(a.ins, pendingIns{op: opcode, a: addr, hasPkt: true, pkt: pkt, line: a.curLine})
			return nil
		case 3: // immediate form: pool the two values
			if a.mode != core.AddrStack {
				return fmt.Errorf("immediate operands need stack mode; use .init in hop mode")
			}
			v1, err := parseValue(operands[1], a.defs)
			if err != nil {
				return err
			}
			v2, err := parseValue(operands[2], a.defs)
			if err != nil {
				return err
			}
			p := pendingIns{op: opcode, a: addr, imms: []uint32{v1, v2}, line: a.curLine}
			if opcode == core.OpCSTORE {
				p.extra = 1 // result slot for the old value
			}
			a.ins = append(a.ins, p)
			return nil
		default:
			return fmt.Errorf("%s wants 2 or 3 operands", op)
		}
	}
	return fmt.Errorf("unknown mnemonic %q", op)
}

// splitOperands splits "a, b, c" respecting that brackets never nest.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// switchOperand parses "[Namespace:Statistic]" (or a bracketed raw
// address) into a virtual address.
func (a *assembler) switchOperand(s string) (mem.Addr, error) {
	inner, ok := unbracket(s)
	if !ok {
		return 0, fmt.Errorf("switch operand %q must be bracketed", s)
	}
	addr, err := mem.ParseSymbolOrAddr(inner)
	if err != nil {
		return 0, err
	}
	return addr, nil
}

// packetOperand parses "[Packet:N]" or "[Packet:Hop[N]]".
func (a *assembler) packetOperand(s string) (uint16, error) {
	inner, ok := unbracket(s)
	if !ok {
		return 0, fmt.Errorf("packet operand %q must be bracketed", s)
	}
	rest, ok := strings.CutPrefix(inner, "Packet:")
	if !ok {
		// The paper also spells it [PacketMemory:Offset] (§2.2).
		rest, ok = strings.CutPrefix(inner, "PacketMemory:")
	}
	if !ok {
		return 0, fmt.Errorf("packet operand %q must use the Packet namespace", s)
	}
	if hopArg, ok := strings.CutPrefix(strings.ToLower(rest), "hop["); ok {
		hopArg = strings.TrimSuffix(hopArg, "]")
		n, err := strconv.ParseUint(hopArg, 0, 16)
		if err != nil {
			return 0, fmt.Errorf("bad hop offset %q", rest)
		}
		if a.mode != core.AddrHop {
			return 0, fmt.Errorf("Hop[] operands need .mode hop")
		}
		return uint16(n), nil
	}
	n, err := strconv.ParseUint(rest, 0, 16)
	if err != nil || n > core.MaxOperand {
		return 0, fmt.Errorf("bad packet word %q", rest)
	}
	return uint16(n), nil
}

func unbracket(s string) (string, bool) {
	if len(s) >= 2 && s[0] == '[' && s[len(s)-1] == ']' {
		return strings.TrimSpace(s[1 : len(s)-1]), true
	}
	return "", false
}

// finish lays out the immediate pool, resolves operands and builds the
// TPP.
func (a *assembler) finish() (*Program, error) {
	pool := 0
	for i := range a.ins {
		if a.ins[i].imms != nil {
			a.ins[i].poolAt = pool
			pool += len(a.ins[i].imms) + a.ins[i].extra
		}
	}
	totalWords := pool + a.memWords
	if totalWords > int(core.MaxOperand)+1 {
		return nil, fmt.Errorf("asm: packet memory of %d words not addressable", totalWords)
	}

	ins := make([]core.Instruction, 0, len(a.ins))
	for _, p := range a.ins {
		in := core.Instruction{Op: p.op, A: uint16(p.a)}
		switch {
		case p.imms != nil:
			in.B = uint16(p.poolAt)
		case p.hasPkt:
			b := p.pkt
			if a.mode == core.AddrStack {
				// Explicit packet words are relative to the
				// program's working memory, after the pool.
				b += uint16(pool)
			}
			in.B = b
		}
		if int(in.B) > core.MaxOperand {
			return nil, fmt.Errorf("asm: packet operand %d not encodable", in.B)
		}
		ins = append(ins, in)
	}

	tpp := core.NewTPP(a.mode, ins, totalWords)
	if a.mode == core.AddrHop {
		tpp.HopLen = uint16(a.hopLen)
	} else {
		tpp.Ptr = uint16(pool * 4) // SP starts after the pool
	}
	if a.ptrSet {
		tpp.Ptr = uint16(a.ptr)
	}
	for _, p := range a.ins {
		for k, v := range p.imms {
			tpp.SetWord(p.poolAt+k, v)
		}
	}
	inits := make([]int, 0, len(a.init))
	for off := range a.init { //lint:allow maporder (sorted below)
		inits = append(inits, off)
	}
	sort.Ints(inits) // deterministic error selection on overlapping .init
	for _, off := range inits {
		w := off
		if a.mode == core.AddrStack {
			w += pool
		}
		if !tpp.InRange(w) {
			return nil, fmt.Errorf("asm: .init word %d outside packet memory", off)
		}
		tpp.SetWord(w, a.init[off])
	}
	if err := tpp.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	lines := make([]int, len(a.ins))
	for i, p := range a.ins {
		lines[i] = p.line
	}
	return &Program{TPP: tpp, PoolWords: pool, Lines: lines}, nil
}
