package asm

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// Every opcode must survive assemble → wire → disassemble → assemble
// with byte-identical wire images: the disassembler's output is a
// complete, re-assemblable description of the program (including the
// initial stack pointer and pre-initialized packet memory).
func TestRoundTripFixedPointPerOpcode(t *testing.T) {
	cases := map[string]string{
		"NOP": "NOP\n.mem 1\n",
		"LOAD": `
.mem 2
LOAD [Switch:SwitchID], [Packet:0]
`,
		"STORE": `
.mem 2
.init 0 7
STORE [SRAM:0x10], [Packet:0]
`,
		"PUSH": `
.mem 2
PUSH [Queue:QueueSize]
`,
		"POP": `
.mem 2
.ptr 4
POP [SRAM:0]
`,
		"CSTORE": `
CSTORE [SRAM:0x10], 0, 42
`,
		"CEXEC": `
CEXEC [Switch:SwitchID], 0xffffffff, 3
LOAD [Queue:QueueSize], [Packet:0]
.mem 1
`,
		"ADD": `
.mem 1
ADD [Link:RX-Bytes], [Packet:0]
`,
		"SUB": `
.mem 1
SUB [Link:TX-Bytes], [Packet:0]
`,
		"MAX": `
.mem 1
MAX [Queue:QueueSize], [Packet:0]
`,
		"hop-mode": `
.mode hop
.hopsize 8
.mem 6
LOAD [Switch:SwitchID], [Packet:Hop[0]]
LOAD [Queue:QueueSize], [Packet:Hop[1]]
`,
		"hop-mode-ptr": `
.mode hop
.hopsize 4
.ptr 4
.mem 4
LOAD [Queue:QueueSize], [Packet:Hop[0]]
`,
		"mixed": `
.mem 4
.init 2 0xdeadbeef
PUSH [Queue:QueueSize]
LOAD [Switch:SwitchID], [Packet:1]
CSTORE [SRAM:0], 10, 20
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			p1, err := Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			wire1 := p1.TPP.AppendTo(nil)

			var parsed core.TPP
			if _, err := core.ParseTPP(wire1, &parsed); err != nil {
				t.Fatalf("parse: %v", err)
			}
			src2 := Disassemble(&parsed)

			p2, err := Assemble(src2)
			if err != nil {
				t.Fatalf("re-assemble disassembly:\n%s\nerror: %v", src2, err)
			}
			wire2 := p2.TPP.AppendTo(nil)
			if !bytes.Equal(wire1, wire2) {
				t.Fatalf("wire image changed across round trip:\n%x\n%x\ndisassembly:\n%s",
					wire1, wire2, src2)
			}

			// And the round trip is a fixed point: disassembling the
			// re-assembled program reproduces the same source.
			var parsed2 core.TPP
			if _, err := core.ParseTPP(wire2, &parsed2); err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if src3 := Disassemble(&parsed2); src3 != src2 {
				t.Fatalf("disassembly not a fixed point:\n%q\n%q", src2, src3)
			}
		})
	}
}

// Lines attributes each instruction to its source line, skipping
// directives, comments and blanks.
func TestProgramLines(t *testing.T) {
	p, err := Assemble(`# comment
.mem 2

PUSH [Queue:QueueSize]
# another comment
LOAD [Switch:SwitchID], [Packet:0]
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 6}
	if len(p.Lines) != len(want) {
		t.Fatalf("Lines = %v", p.Lines)
	}
	for i, w := range want {
		if p.Line(i) != w {
			t.Fatalf("Line(%d) = %d, want %d", i, p.Line(i), w)
		}
	}
	if p.Line(-1) != 0 || p.Line(99) != 0 {
		t.Fatal("out-of-range Line not 0")
	}
}
