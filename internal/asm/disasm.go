package asm

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
)

// Disassemble renders a TPP back into assembly source.  Switch operands
// are printed with their canonical mnemonics where known; packet
// operands are printed as raw word indexes (the immediate pool cannot
// be reconstructed from the wire format, so three-operand forms
// disassemble to their two-operand equivalents).
func Disassemble(t *core.TPP) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".mode %s\n", t.Mode)
	fmt.Fprintf(&b, ".mem %d\n", t.MemWords())
	if t.Mode == core.AddrHop {
		fmt.Fprintf(&b, ".hopsize %d\n", t.HopLen)
	}
	if t.Ptr != 0 {
		fmt.Fprintf(&b, ".ptr %d\n", t.Ptr)
	}
	for w := 0; w < t.MemWords(); w++ {
		if v := t.Word(w); v != 0 {
			fmt.Fprintf(&b, ".init %d %#x\n", w, v)
		}
	}
	for _, in := range t.Ins {
		b.WriteString(formatIns(t.Mode, in))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatIns(mode core.AddrMode, in core.Instruction) string {
	sw := fmt.Sprintf("[%s]", mem.NameOf(mem.Addr(in.A)))
	pkt := func() string {
		if mode == core.AddrHop {
			return fmt.Sprintf("[Packet:Hop[%d]]", in.B)
		}
		return fmt.Sprintf("[Packet:%d]", in.B)
	}
	switch in.Op {
	case core.OpNOP:
		return "NOP"
	case core.OpPUSH, core.OpPOP:
		return fmt.Sprintf("%s %s", in.Op, sw)
	case core.OpLOAD, core.OpSTORE, core.OpCSTORE, core.OpCEXEC, core.OpADD, core.OpSUB, core.OpMAX:
		return fmt.Sprintf("%s %s, %s", in.Op, sw, pkt())
	default:
		return fmt.Sprintf("; unknown opcode %d", uint8(in.Op))
	}
}
