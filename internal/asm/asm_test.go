package asm

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
)

func TestAssembleMicroburstProgram(t *testing.T) {
	// §2.1: "PUSH [Queue:QueueSize] copies the queue register onto
	// packet memory."
	p, err := Assemble(`
		# micro-burst probe: one queue sample per hop
		.mem 8
		PUSH [Queue:QueueSize]
	`)
	if err != nil {
		t.Fatal(err)
	}
	tpp := p.TPP
	if tpp.Mode != core.AddrStack || tpp.MemWords() != 8 || len(tpp.Ins) != 1 {
		t.Fatalf("unexpected program: %+v", tpp)
	}
	in := tpp.Ins[0]
	want, _ := mem.LookupSymbol("Queue:QueueSize")
	if in.Op != core.OpPUSH || mem.Addr(in.A) != want {
		t.Fatalf("instruction = %+v", in)
	}
}

func TestAssembleRCPCollectPhase(t *testing.T) {
	// §2.2 phase 1, verbatim from the paper.
	p, err := Assemble(`
		.mem 32
		PUSH [Switch:SwitchID]
		PUSH [Link:QueueSize]
		PUSH [Link:RX-Utilization]
		PUSH [Link:RCP-RateRegister]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TPP.Ins) != 4 {
		t.Fatalf("want 4 instructions, got %d", len(p.TPP.Ins))
	}
	for i, name := range []string{"Switch:SwitchID", "Link:QueueSize",
		"Link:RX-Utilization", "Link:RCP-RateRegister"} {
		want, _ := mem.LookupSymbol(name)
		if got := mem.Addr(p.TPP.Ins[i].A); got != want {
			t.Errorf("ins %d: addr %#x, want %s=%#x", i, got, name, want)
		}
	}
}

func TestAssembleRCPUpdatePhaseWithImmediates(t *testing.T) {
	// §2.2 phase 3, verbatim: the immediate form pools mask/value.
	p, err := Assemble(`
		.def BottleneckSwitchID 0x2
		.mem 1
		.init 0 125000   ; the rate to install
		CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
		STORE [Link:RCP-RateRegister], [PacketMemory:0]
	`)
	if err != nil {
		t.Fatal(err)
	}
	tpp := p.TPP
	if p.PoolWords != 2 {
		t.Fatalf("PoolWords = %d, want 2", p.PoolWords)
	}
	if tpp.MemWords() != 3 {
		t.Fatalf("MemWords = %d, want 3 (pool + 1)", tpp.MemWords())
	}
	// Pool holds mask then value.
	if tpp.Word(0) != 0xFFFFFFFF || tpp.Word(1) != 0x2 {
		t.Fatalf("pool = %#x %#x", tpp.Word(0), tpp.Word(1))
	}
	// .init offset 0 shifted past the pool.
	if tpp.Word(2) != 125000 {
		t.Fatalf("init word = %d", tpp.Word(2))
	}
	// SP starts after the pool so pushes would not clobber it.
	if tpp.Ptr != 8 {
		t.Fatalf("initial SP = %d, want 8", tpp.Ptr)
	}
	// The STORE's packet operand is shifted past the pool too.
	if tpp.Ins[1].B != 2 {
		t.Fatalf("STORE B = %d, want 2", tpp.Ins[1].B)
	}
}

func TestAssembleNdbProgram(t *testing.T) {
	// §2.3, verbatim.
	p, err := Assemble(`
		.mem 30
		PUSH [Switch:ID]
		PUSH [PacketMetadata:MatchedEntryID]
		PUSH [PacketMetadata:InputPort]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TPP.Ins) != 3 {
		t.Fatalf("want 3 instructions")
	}
}

func TestAssembleHopMode(t *testing.T) {
	p, err := Assemble(`
		.mode hop
		.hopsize 16
		.mem 16
		LOAD [Switch:SwitchID], [Packet:Hop[1]]
	`)
	if err != nil {
		t.Fatal(err)
	}
	tpp := p.TPP
	if tpp.Mode != core.AddrHop || tpp.HopLen != 16 {
		t.Fatalf("hop header: %+v", tpp)
	}
	if tpp.Ins[0].B != 1 {
		t.Fatalf("hop offset = %d", tpp.Ins[0].B)
	}
}

func TestAssembleCSTOREImmediateForm(t *testing.T) {
	p, err := Assemble(`
		.mem 0
		CSTORE [SRAM:0x10], 10, 42
	`)
	if err != nil {
		t.Fatal(err)
	}
	tpp := p.TPP
	// cond, src, result slot.
	if p.PoolWords != 3 || tpp.MemWords() != 3 {
		t.Fatalf("pool = %d, mem = %d", p.PoolWords, tpp.MemWords())
	}
	if tpp.Word(0) != 10 || tpp.Word(1) != 42 {
		t.Fatalf("pool contents %d %d", tpp.Word(0), tpp.Word(1))
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"FROB [Switch:SwitchID]",                 // unknown mnemonic
		".mode sideways",                         // unknown mode
		".frob 1",                                // unknown directive
		"PUSH Switch:SwitchID",                   // missing brackets
		"PUSH [NoSuch:Symbol]",                   // unknown symbol
		"PUSH [Switch:SwitchID], [Packet:0]",     // too many operands
		"LOAD [Switch:SwitchID]",                 // too few operands
		"NOP [Switch:SwitchID]",                  // NOP takes none
		"LOAD [Switch:SwitchID], [Switch:ID]",    // second operand not packet
		"CEXEC [Switch:SwitchID], 1, 2, 3",       // too many operands
		"CEXEC [Switch:SwitchID]",                // too few
		"CEXEC [Switch:SwitchID], 1, $undefined", // undefined $def
		".mode hop\nCEXEC [Switch:ID], 1, 2",     // immediates need stack mode
		".init 0 1",                              // .init outside memory
		"LOAD [Switch:ID], [Packet:Hop[1]]",      // Hop[] needs hop mode
		".mode hop\n.hopsize 6",                  // unaligned hopsize
		".def X",                                 // malformed .def
		".mem 99999999",                          // unaddressable memory
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble("\n\n# leading comment\n  ; another\n.mem 2\nNOP # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TPP.Ins) != 1 || p.TPP.Ins[0].Op != core.OpNOP {
		t.Fatalf("program: %+v", p.TPP.Ins)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAssemble("BOGUS")
}

func TestDisassembleReadable(t *testing.T) {
	p := MustAssemble(`
		.mem 4
		PUSH [Switch:SwitchID]
		PUSH [Queue:QueueSize]
	`)
	text := Disassemble(p.TPP)
	for _, want := range []string{".mode stack", ".mem 4",
		"PUSH [Switch:SwitchID]", "PUSH [Queue:QueueSize]"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

// Property: disassembling and re-assembling reproduces the program
// (instructions, mode, memory image).
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ops := []core.Opcode{core.OpNOP, core.OpLOAD, core.OpSTORE,
		core.OpPUSH, core.OpPOP, core.OpCSTORE, core.OpCEXEC, core.OpADD}
	for trial := 0; trial < 200; trial++ {
		mode := core.AddrStack
		if r.Intn(2) == 0 {
			mode = core.AddrHop
		}
		memWords := 1 + r.Intn(20)
		nIns := r.Intn(6)
		ins := make([]core.Instruction, nIns)
		for i := range ins {
			op := ops[r.Intn(len(ops))]
			if mode == core.AddrHop && (op == core.OpPUSH || op == core.OpPOP) {
				op = core.OpLOAD
			}
			in := core.Instruction{
				Op: op,
				A:  uint16(r.Intn(mem.AddrSpaceWords)),
				B:  uint16(r.Intn(memWords)),
			}
			// Operands the wire format carries but the assembly
			// syntax does not express are canonically zero.
			if op == core.OpNOP {
				in.A, in.B = 0, 0
			}
			if op == core.OpPUSH || op == core.OpPOP {
				in.B = 0
			}
			ins[i] = in
		}
		orig := core.NewTPP(mode, ins, memWords)
		if mode == core.AddrHop {
			orig.HopLen = 4 * uint16(1+r.Intn(4))
		}
		for w := 0; w < memWords; w++ {
			if r.Intn(3) == 0 {
				orig.SetWord(w, r.Uint32())
			}
		}
		text := Disassemble(orig)
		back, err := Assemble(text)
		if err != nil {
			t.Fatalf("trial %d: reassembly failed: %v\n%s", trial, err, text)
		}
		got := back.TPP
		if got.Mode != orig.Mode || got.HopLen != orig.HopLen ||
			got.MemWords() != orig.MemWords() {
			t.Fatalf("trial %d: header mismatch\n%s", trial, text)
		}
		if len(got.Ins) != len(orig.Ins) {
			t.Fatalf("trial %d: %d instructions, want %d", trial, len(got.Ins), len(orig.Ins))
		}
		for i := range got.Ins {
			if got.Ins[i] != orig.Ins[i] {
				t.Fatalf("trial %d ins %d: %+v != %+v\n%s",
					trial, i, got.Ins[i], orig.Ins[i], text)
			}
		}
		if string(got.Mem) != string(orig.Mem) {
			t.Fatalf("trial %d: memory image differs\n%s", trial, text)
		}
	}
}

func TestDirectiveArgumentErrors(t *testing.T) {
	bad := []string{
		".mode",           // missing argument
		".mem",            // missing argument
		".mem 1 2",        // too many
		".mem xyz",        // not a number
		".hopsize",        // missing
		".init 0",         // missing values
		".init zz 1",      // bad offset
		".init 0 zz",      // bad value
		".def X $missing", // undefined reference
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestDefReferencesDef(t *testing.T) {
	p, err := Assemble(`
		.def A 5
		.def B $A
		.mem 0
		CEXEC [Switch:SwitchID], $A, $B
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.TPP.Word(0) != 5 || p.TPP.Word(1) != 5 {
		t.Fatalf("defs: %d %d", p.TPP.Word(0), p.TPP.Word(1))
	}
}

func TestDisassembleUnknownOpcode(t *testing.T) {
	tpp := core.NewTPP(core.AddrStack, nil, 1)
	tpp.Ins = []core.Instruction{{Op: 99}}
	text := Disassemble(tpp)
	if !strings.Contains(text, "unknown opcode 99") {
		t.Fatalf("disassembly: %q", text)
	}
}
