// Package agent implements the control-plane agent of §3.2: "We rely
// on a control-plane agent to partition switch SRAM and isolate
// concurrently executing network tasks.  For instance, if end-hosts
// implement both RCP and ndb, the agent would allocate a
// non-overlapping set of SRAM addresses to RCP and ndb."
//
// The agent manages a fleet of switches: it allocates congruent SRAM
// regions for each task on every switch (so one compiled TPP works
// network-wide), hands out per-port scratch words, seeds initial
// values, and enforces the §4 admission policy by marking edge ports
// untrusted.
package agent

import (
	"fmt"

	"repro/internal/asic"
	"repro/internal/mem"
)

// Agent is a network-wide control-plane coordinator.
type Agent struct {
	switches []*asic.Switch
	tasks    map[string]Task
	// scratchOwner maps per-port scratch word index -> task name.
	scratchOwner map[int]string
}

// Task records one network task's allocation.
type Task struct {
	Name string
	// Region is the task's SRAM region; identical Base/Words on every
	// switch, so a single TPP addresses it network-wide.
	Region mem.Region
	// ScratchWords lists the per-port scratch word indexes assigned
	// to the task (offsets from mem.PortScratchBase).
	ScratchWords []int
}

// New builds an agent managing the given switches.
func New(switches ...*asic.Switch) *Agent {
	return &Agent{
		switches:     switches,
		tasks:        make(map[string]Task),
		scratchOwner: make(map[int]string),
	}
}

// Switches returns the managed fleet.
func (a *Agent) Switches() []*asic.Switch { return a.switches }

// Register allocates sramWords of SRAM and scratchWords per-port
// scratch slots for a task, congruently across every switch.  The
// returned Task carries the addresses the task's TPP compiler should
// use.
func (a *Agent) Register(name string, sramWords, scratchWords int) (Task, error) {
	if _, ok := a.tasks[name]; ok {
		return Task{}, fmt.Errorf("agent: task %q already registered", name)
	}
	if scratchWords < 0 || scratchWords > mem.PortScratchWords {
		return Task{}, fmt.Errorf("agent: %d scratch words unavailable", scratchWords)
	}

	var region mem.Region
	if sramWords > 0 {
		// Allocate on every switch; congruence holds because every
		// switch's allocator sees the same request sequence.  If any
		// switch disagrees (e.g. pre-existing local allocations),
		// fail and roll back.
		for i, sw := range a.switches {
			r, err := sw.Allocator().Alloc(name, sramWords)
			if err != nil || (i > 0 && r != region) {
				for _, prev := range a.switches[:i+1] {
					prev.Allocator().Free(name) //nolint:errcheck // rollback
				}
				if err == nil {
					err = fmt.Errorf("agent: switch %d region %+v diverges from %+v", sw.ID(), r, region)
				}
				return Task{}, err
			}
			region = r
		}
	}

	var scratch []int
	for w := 0; w < mem.PortScratchWords && len(scratch) < scratchWords; w++ {
		if _, taken := a.scratchOwner[w]; !taken {
			scratch = append(scratch, w)
		}
	}
	if len(scratch) < scratchWords {
		if sramWords > 0 {
			for _, sw := range a.switches {
				sw.Allocator().Free(name) //nolint:errcheck // rollback
			}
		}
		return Task{}, fmt.Errorf("agent: only %d of %d scratch words free", len(scratch), scratchWords)
	}
	for _, w := range scratch {
		a.scratchOwner[w] = name
	}

	t := Task{Name: name, Region: region, ScratchWords: scratch}
	a.tasks[name] = t
	return t, nil
}

// Unregister releases everything a task holds.
func (a *Agent) Unregister(name string) error {
	t, ok := a.tasks[name]
	if !ok {
		return fmt.Errorf("agent: unknown task %q", name)
	}
	if t.Region.Words > 0 {
		for _, sw := range a.switches {
			sw.Allocator().Free(name) //nolint:errcheck // best-effort release
		}
	}
	for _, w := range t.ScratchWords {
		delete(a.scratchOwner, w)
	}
	delete(a.tasks, name)
	return nil
}

// Lookup returns a registered task.
func (a *Agent) Lookup(name string) (Task, bool) {
	t, ok := a.tasks[name]
	return t, ok
}

// SeedScratch writes v into scratch word (offset from the task's first
// assigned slot) on every wired port of every switch — e.g. the RCP
// initialization "a control plane program initializes each link's fair
// share rate to its capacity" uses SeedScratchFunc instead.
func (a *Agent) SeedScratch(task Task, slot int, v uint32) error {
	if slot < 0 || slot >= len(task.ScratchWords) {
		return fmt.Errorf("agent: task %q has no scratch slot %d", task.Name, slot)
	}
	w := task.ScratchWords[slot]
	for _, sw := range a.switches {
		for p := 0; p < sw.Ports(); p++ {
			if sw.Port(p).Wired() {
				sw.Port(p).SetScratch(w, v)
			}
		}
	}
	return nil
}

// SeedScratchFunc initializes a scratch slot per port with a computed
// value (e.g. the port's link capacity).
func (a *Agent) SeedScratchFunc(task Task, slot int, fn func(sw *asic.Switch, port int) uint32) error {
	if slot < 0 || slot >= len(task.ScratchWords) {
		return fmt.Errorf("agent: task %q has no scratch slot %d", task.Name, slot)
	}
	w := task.ScratchWords[slot]
	for _, sw := range a.switches {
		for p := 0; p < sw.Ports(); p++ {
			if sw.Port(p).Wired() {
				sw.Port(p).SetScratch(w, fn(sw, p))
			}
		}
	}
	return nil
}

// ScratchAddr returns the context-relative virtual address of a task's
// scratch slot, for the task's TPP compiler.
func (t Task) ScratchAddr(slot int) (mem.Addr, error) {
	if slot < 0 || slot >= len(t.ScratchWords) {
		return 0, fmt.Errorf("agent: task %q has no scratch slot %d", t.Name, slot)
	}
	return mem.PortBase + mem.PortScratchBase + mem.Addr(t.ScratchWords[slot]), nil
}

// SecureEdge marks the given (switch, port) pairs untrusted, so TPPs
// arriving there are stripped (§4): "the ingress switches at the
// network edge ... can strip TPPs injected by VMs, or those TPPs
// received from the Internet".
func SecureEdge(ports ...EdgePort) {
	for _, ep := range ports {
		ep.Switch.Port(ep.Port).SetTrusted(false)
	}
}

// EdgePort names one untrusted attachment point.
type EdgePort struct {
	Switch *asic.Switch
	Port   int
}
