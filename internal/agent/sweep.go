package agent

// RegionPoller folds periodic sweeps of a switch SRAM word region into
// monotone per-word accumulations, with the same discontinuity
// semantics as accounting.Counter.Poll: a sweep whose boot epoch
// differs from the last one observed for a word — or whose value ran
// backwards, belt-and-braces — means the switch crash-restarted and
// wiped the region, so the word's delta is re-based to the value
// accumulated since the wipe instead of going negative.
//
// The poller is transport-agnostic: callers (the in-band telemetry
// collector, or any task sweeping counters it laid out in SRAM) read
// chunks of the region with gated TPPs that fetch the chunk and the
// switch's [Switch:Epoch] atomically in one execution, then Fold each
// chunk.  Words are tracked independently because chunks land in
// separate probes: a reboot between two probes of one sweep re-bases
// exactly the words read after the wipe.
type RegionPoller struct {
	last      []uint32
	lastEpoch []uint32
	polled    []bool
	cum       []uint64

	// Discontinuities counts word re-basings (epoch bump or value
	// regression).  Folds counts Fold calls that were applied.
	Discontinuities uint64
	Folds           uint64
}

// NewRegionPoller tracks a region of the given word count.
func NewRegionPoller(words int) *RegionPoller {
	return &RegionPoller{
		last:      make([]uint32, words),
		lastEpoch: make([]uint32, words),
		polled:    make([]bool, words),
		cum:       make([]uint64, words),
	}
}

// Words returns the tracked region size.
func (p *RegionPoller) Words() int { return len(p.last) }

// Fold applies one atomically-read chunk: vals[i] is the value of word
// offset+i, and epoch is the boot epoch read in the same TPP execution.
// It returns the per-word deltas this sweep contributed (never
// negative: a wiped word re-bases to its post-wipe value) and whether
// any word was re-based.  The first observation of a word establishes
// its baseline with a zero delta — the increments it reports were
// already accumulated by whoever wrote them, not by this poller.
// Chunks that fall outside the region are clipped.
func (p *RegionPoller) Fold(offset int, epoch uint32, vals []uint32) (deltas []uint64, discont bool) {
	deltas = make([]uint64, len(vals))
	for i, v := range vals {
		w := offset + i
		if w < 0 || w >= len(p.last) {
			continue
		}
		switch {
		case !p.polled[w]:
			p.polled[w] = true
			// Baseline: what is already in the region predates this
			// poller; count it so Cumulative covers the whole epoch.
			deltas[i] = uint64(v)
		case epoch != p.lastEpoch[w] || v < p.last[w]:
			p.Discontinuities++
			discont = true
			deltas[i] = uint64(v)
		default:
			deltas[i] = uint64(v) - uint64(p.last[w])
		}
		p.cum[w] += deltas[i]
		p.last[w] = v
		p.lastEpoch[w] = epoch
	}
	p.Folds++
	return deltas, discont
}

// Current returns the last observed value of word w — the word's
// accumulation within the switch's current boot epoch, i.e. what is in
// SRAM right now (as of the last sweep).
func (p *RegionPoller) Current(w int) uint32 {
	if w < 0 || w >= len(p.last) {
		return 0
	}
	return p.last[w]
}

// Cumulative returns everything ever folded for word w, across wipes:
// the sum of all (re-based, never negative) deltas.  Cumulative(w) >=
// Current(w) always; the difference is what sweeps collected before a
// wipe destroyed it.
func (p *RegionPoller) Cumulative(w int) uint64 {
	if w < 0 || w >= len(p.cum) {
		return 0
	}
	return p.cum[w]
}
