package agent

import "testing"

func TestRegionPollerBaselineAndDeltas(t *testing.T) {
	p := NewRegionPoller(4)
	if p.Words() != 4 {
		t.Fatalf("Words() = %d", p.Words())
	}
	// Baseline sweep: pre-existing values count into cumulative.
	deltas, discont := p.Fold(0, 0, []uint32{3, 0, 7, 1})
	if discont {
		t.Fatal("baseline flagged a discontinuity")
	}
	if deltas[0] != 3 || deltas[2] != 7 {
		t.Fatalf("baseline deltas = %v", deltas)
	}
	// Steady growth.
	deltas, discont = p.Fold(0, 0, []uint32{5, 2, 7, 1})
	if discont || deltas[0] != 2 || deltas[1] != 2 || deltas[2] != 0 {
		t.Fatalf("growth deltas = %v (discont %v)", deltas, discont)
	}
	if p.Current(0) != 5 || p.Cumulative(0) != 5 {
		t.Fatalf("word 0: current %d cumulative %d", p.Current(0), p.Cumulative(0))
	}
	if p.Folds != 2 {
		t.Fatalf("Folds = %d", p.Folds)
	}
}

func TestRegionPollerEpochRebase(t *testing.T) {
	p := NewRegionPoller(2)
	p.Fold(0, 0, []uint32{10, 20})
	// Crash: epoch bumps, values restart low.  Deltas re-base to the
	// post-wipe value instead of going negative.
	deltas, discont := p.Fold(0, 1, []uint32{2, 1})
	if !discont {
		t.Fatal("epoch bump not flagged")
	}
	if deltas[0] != 2 || deltas[1] != 1 {
		t.Fatalf("re-based deltas = %v", deltas)
	}
	if p.Discontinuities != 2 {
		t.Fatalf("Discontinuities = %d", p.Discontinuities)
	}
	if p.Cumulative(0) != 12 || p.Current(0) != 2 {
		t.Fatalf("word 0: cumulative %d current %d", p.Cumulative(0), p.Current(0))
	}
}

func TestRegionPollerValueRegression(t *testing.T) {
	p := NewRegionPoller(1)
	p.Fold(0, 5, []uint32{10})
	// Same epoch but the value ran backwards: belt-and-braces re-base.
	deltas, discont := p.Fold(0, 5, []uint32{4})
	if !discont || deltas[0] != 4 {
		t.Fatalf("regression: deltas %v discont %v", deltas, discont)
	}
	if p.Cumulative(0) != 14 {
		t.Fatalf("Cumulative = %d", p.Cumulative(0))
	}
}

func TestRegionPollerClipsOutOfRegion(t *testing.T) {
	p := NewRegionPoller(2)
	deltas, _ := p.Fold(1, 0, []uint32{5, 9, 9})
	if deltas[0] != 5 || deltas[1] != 0 || deltas[2] != 0 {
		t.Fatalf("clipped deltas = %v", deltas)
	}
	if p.Cumulative(1) != 5 {
		t.Fatalf("Cumulative(1) = %d", p.Cumulative(1))
	}
	// Out-of-range queries are zero, not panics.
	if p.Current(-1) != 0 || p.Cumulative(7) != 0 {
		t.Fatal("out-of-range query not zero")
	}
}
