package agent

import (
	"testing"

	"repro/internal/asic"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/tcpu"
	"repro/internal/topo"
)

func fleet(t *testing.T) (*netsim.Sim, *topo.Network, []*asic.Switch) {
	t.Helper()
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	var sws []*asic.Switch
	for i := 0; i < 3; i++ {
		sws = append(sws, n.AddSwitch(asic.Config{Ports: 4}))
	}
	n.LinkSwitches(sws[0], sws[1], topo.Mbps(10, 0))
	n.LinkSwitches(sws[1], sws[2], topo.Mbps(10, 0))
	return sim, n, sws
}

func TestRegisterCongruentRegions(t *testing.T) {
	_, _, sws := fleet(t)
	a := New(sws...)
	rcpTask, err := a.Register("rcp", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	ndbTask, err := a.Register("ndb", 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same region on every switch.
	for _, sw := range sws {
		r, ok := sw.Allocator().Lookup("rcp")
		if !ok || r != rcpTask.Region {
			t.Fatalf("switch %d rcp region %+v, want %+v", sw.ID(), r, rcpTask.Region)
		}
	}
	// Non-overlapping.
	if rcpTask.Region.End() > ndbTask.Region.Base && ndbTask.Region.End() > rcpTask.Region.Base {
		t.Fatal("task regions overlap")
	}
	if len(rcpTask.ScratchWords) != 1 || len(ndbTask.ScratchWords) != 0 {
		t.Fatalf("scratch assignment: %v %v", rcpTask.ScratchWords, ndbTask.ScratchWords)
	}
}

func TestRegisterConflicts(t *testing.T) {
	_, _, sws := fleet(t)
	a := New(sws...)
	if _, err := a.Register("t", 8, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Register("t", 8, 0); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := a.Register("huge", mem.SRAMWords, 0); err == nil {
		t.Fatal("oversized registration accepted")
	}
	if _, err := a.Register("greedy", 0, mem.PortScratchWords+1); err == nil {
		t.Fatal("scratch over-allocation accepted")
	}
	// Rollback left the allocators clean.
	if _, err := a.Register("t2", 8, 0); err != nil {
		t.Fatalf("post-failure registration broken: %v", err)
	}
}

func TestScratchExhaustionRollsBackSRAM(t *testing.T) {
	_, _, sws := fleet(t)
	a := New(sws...)
	if _, err := a.Register("eat", 0, mem.PortScratchWords); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Register("late", 16, 1); err == nil {
		t.Fatal("scratch exhaustion not detected")
	}
	for _, sw := range sws {
		if _, ok := sw.Allocator().Lookup("late"); ok {
			t.Fatal("failed registration leaked SRAM")
		}
	}
}

func TestUnregisterReleases(t *testing.T) {
	_, _, sws := fleet(t)
	a := New(sws...)
	task, _ := a.Register("tmp", 32, 2)
	_ = task
	if err := a.Unregister("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := a.Unregister("tmp"); err == nil {
		t.Fatal("double unregister succeeded")
	}
	if _, ok := a.Lookup("tmp"); ok {
		t.Fatal("task still visible")
	}
	again, err := a.Register("tmp2", 32, mem.PortScratchWords)
	if err != nil {
		t.Fatalf("resources not released: %v", err)
	}
	if len(again.ScratchWords) != mem.PortScratchWords {
		t.Fatal("scratch words not recycled")
	}
}

func TestSeedScratchAndTPPVisibility(t *testing.T) {
	sim, _, sws := fleet(t)
	a := New(sws...)
	task, err := a.Register("rcp", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Seed each wired port's slot with its capacity, the §2.2
	// initialization.
	if err := a.SeedScratchFunc(task, 0, func(sw *asic.Switch, port int) uint32 {
		return sw.Port(port).Channel().RateBytes()
	}); err != nil {
		t.Fatal(err)
	}
	addr, err := task.ScratchAddr(0)
	if err != nil {
		t.Fatal(err)
	}
	// A TPP reading that address on switch 0 port 0 sees the seeded
	// capacity.
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpPUSH, A: uint16(addr)},
	}, 1)
	view := sws[0].ViewForTesting(nil, 0)
	if res := tcpu.Exec(tpp, view); res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if got := tpp.Word(0); got != 1_250_000 {
		t.Fatalf("TPP read %d, want seeded capacity 1250000", got)
	}
	_ = sim

	if err := a.SeedScratch(task, 5, 1); err == nil {
		t.Fatal("seeding unassigned slot succeeded")
	}
	if _, err := task.ScratchAddr(9); err == nil {
		t.Fatal("ScratchAddr out of range accepted")
	}
}

func TestSecureEdge(t *testing.T) {
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{Ports: 4})
	h1, h2 := n.AddHost(), n.AddHost()
	p1 := n.LinkHost(h1, sw, topo.Mbps(100, 0))
	n.LinkHost(h2, sw, topo.Mbps(100, 0))
	n.PrimeL2(netsim.Millisecond)

	SecureEdge(EdgePort{Switch: sw, Port: p1})
	if sw.Port(p1).Trusted() {
		t.Fatal("edge port still trusted")
	}
	// A TPP injected from the untrusted host is stripped.
	h1.Send(&core.Packet{
		Eth: core.Ethernet{Dst: h2.MAC, Src: h1.MAC, Type: core.EtherTypeTPP},
		TPP: core.NewTPP(core.AddrStack, nil, 1),
		IP:  &core.IPv4{TTL: 8, Proto: core.ProtoUDP, Src: h1.IP, Dst: h2.IP},
		UDP: &core.UDP{SrcPort: 1, DstPort: 2},
	})
	sim.RunUntil(sim.Now() + 10*netsim.Millisecond)
	if sw.TPPsStripped() != 1 {
		t.Fatalf("TPPsStripped = %d", sw.TPPsStripped())
	}
	_ = endhost.ProbeEchoPort // keep the import honest if ports change
}

func TestSwitchesAndSeedScratchValue(t *testing.T) {
	_, _, sws := fleet(t)
	a := New(sws...)
	if got := a.Switches(); len(got) != 3 {
		t.Fatalf("Switches = %d", len(got))
	}
	task, err := a.Register("seeded", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SeedScratch(task, 1, 777); err != nil {
		t.Fatal(err)
	}
	for _, sw := range sws {
		for p := 0; p < sw.Ports(); p++ {
			if !sw.Port(p).Wired() {
				continue
			}
			if sw.Port(p).Scratch(task.ScratchWords[1]) != 777 {
				t.Fatalf("switch %d port %d not seeded", sw.ID(), p)
			}
		}
	}
	if err := a.SeedScratchFunc(task, 9, nil); err == nil {
		t.Fatal("bad slot accepted")
	}
}
