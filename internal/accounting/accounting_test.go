package accounting

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/asic"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// fixture: three writer hosts and one target host around one switch;
// the shared counter lives in switch SRAM allocated by the agent.
type fixture struct {
	sim      *netsim.Sim
	sw       *asic.Switch
	writers  []*endhost.Host
	probers  []*endhost.Prober
	target   *endhost.Host
	addr     mem.Addr
	sramSlot int
}

func setup(t *testing.T) *fixture {
	t.Helper()
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	sw := n.AddSwitch(asic.Config{ID: 5, Ports: 8})
	f := &fixture{sim: sim, sw: sw}
	for i := 0; i < 3; i++ {
		h := n.AddHost()
		n.LinkHost(h, sw, topo.Mbps(100, 50*netsim.Microsecond))
		f.writers = append(f.writers, h)
		f.probers = append(f.probers, endhost.NewProber(h))
	}
	f.target = n.AddHost()
	n.LinkHost(f.target, sw, topo.Mbps(100, 50*netsim.Microsecond))
	n.PrimeL2(5 * netsim.Millisecond)

	a := agent.New(sw)
	task, err := a.Register("accounting", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.addr = task.Region.Base
	f.sramSlot = mem.SRAMIndex(f.addr)
	return f
}

// drive issues `per` increments of 1 from every writer, each writer
// pipelining its next Add behind the previous completion, with all
// writers running concurrently (in simulated time).
func drive(f *fixture, proto Protocol, per int) []*Counter {
	counters := make([]*Counter, len(f.writers))
	for i := range f.writers {
		c := NewCounter(f.probers[i], f.target.MAC, f.target.IP, f.sw.ID(), f.addr, proto)
		counters[i] = c
		remaining := per
		var next func(uint32)
		next = func(uint32) {
			remaining--
			if remaining > 0 {
				c.Add(1, next)
			}
		}
		c.Add(1, next)
	}
	f.sim.RunUntil(f.sim.Now() + 30*netsim.Second)
	return counters
}

func TestAtomicCountersLoseNothing(t *testing.T) {
	f := setup(t)
	counters := drive(f, Atomic, 50)
	got := f.sw.SRAM(f.sramSlot)
	if got != 150 {
		t.Fatalf("counter = %d, want 150 (3 writers x 50)", got)
	}
	var retries uint64
	for _, c := range counters {
		retries += c.Retries
		if c.Failures != 0 {
			t.Fatalf("abandoned updates: %d", c.Failures)
		}
	}
	// Concurrent writers on one switch must actually have conflicted;
	// otherwise the test proves nothing.
	if retries == 0 {
		t.Fatal("no CSTORE conflicts observed: writers never raced")
	}
	t.Logf("150 increments, %d CSTORE retries", retries)
}

func TestRacyCountersLoseUpdates(t *testing.T) {
	f := setup(t)
	drive(f, Racy, 50)
	got := f.sw.SRAM(f.sramSlot)
	if got == 150 {
		t.Fatal("racy protocol lost nothing: interleaving did not occur")
	}
	if got == 0 || got > 150 {
		t.Fatalf("counter = %d, expected partial loss", got)
	}
	t.Logf("racy result: %d of 150 survived", got)
}

func TestAtomicGatedToOneSwitch(t *testing.T) {
	// On a two-switch path, only the CEXEC-matching switch applies
	// the update.
	sim := netsim.New(1)
	n := topo.NewNetwork(sim)
	s1 := n.AddSwitch(asic.Config{ID: 1, Ports: 4})
	s2 := n.AddSwitch(asic.Config{ID: 2, Ports: 4})
	n.LinkSwitches(s1, s2, topo.Mbps(100, 0))
	w := n.AddHost()
	tgt := n.AddHost()
	n.LinkHost(w, s1, topo.Mbps(100, 0))
	n.LinkHost(tgt, s2, topo.Mbps(100, 0))
	n.PrimeL2(5 * netsim.Millisecond)

	prober := endhost.NewProber(w)
	addr := mem.SRAMBase
	c := NewCounter(prober, tgt.MAC, tgt.IP, 2, addr, Atomic)
	var final uint32
	c.Add(7, func(v uint32) { final = v })
	sim.RunUntil(sim.Now() + netsim.Second)

	if final != 7 {
		t.Fatalf("completion value = %d", final)
	}
	if s2.SRAM(0) != 7 {
		t.Fatalf("target switch counter = %d", s2.SRAM(0))
	}
	if s1.SRAM(0) != 0 {
		t.Fatalf("non-target switch was written: %d", s1.SRAM(0))
	}
}
