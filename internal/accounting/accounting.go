// Package accounting makes §2.2's consistency discussion concrete:
// "With multiple concurrent writers to a shared switch memory, one
// might wonder if there could be race conditions ... While this is a
// legitimate concern for network tasks such as accounting ... we
// support a conditional store instruction to provide a stronger
// (linearizable) notion of consistency for memory updates."
//
// A Counter is a shared 32-bit tally in switch SRAM that multiple
// end-hosts increment concurrently through the network.  Two update
// protocols are provided:
//
//   - Atomic: optimistic concurrency over CSTORE — read the counter
//     with one TPP, then attempt CSTORE(old, old+n) with another,
//     retrying when a concurrent writer got there first.  No update is
//     ever lost.
//   - Racy: the naive LOAD-then-STORE pair.  Interleaved writers
//     overwrite each other and updates vanish — the failure mode the
//     CSTORE instruction exists to prevent.
package accounting

import (
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/netsim"
)

// Protocol selects the update discipline.
type Protocol int

// The two update protocols.
const (
	Atomic Protocol = iota // CSTORE with retry
	Racy                   // blind read-modify-write
)

// DefaultRetries bounds the CSTORE retry loop per Add.
const DefaultRetries = 16

// unexecuted pre-fills every result slot before a probe departs.  A
// TPP can come back echoed without having executed at the gated
// switch — throttled by an admission gate, stripped at the hop limit —
// and its result words then still hold whatever the sender wrote.
// Zero would be ambiguous (a tally can legitimately be zero), so the
// sentinel makes "the program never ran" distinguishable from every
// plausible executed outcome, and the client retries instead of
// trusting garbage.  (A tally that actually reaches 0xFFFFFFFF would
// alias the sentinel; a 32-bit counter is re-based long before that.)
const unexecuted = ^uint32(0)

// Inconclusive-echo backoff.  A sentinel echo means an admission gate
// throttled the program: the tenant is over its token-bucket share.
// Retrying at echo pace (one RTT, often well under a refill interval)
// just burns the next token and storms the gate, so retries instead
// back off exponentially from backoffBase up to backoffCap, giving the
// bucket time to refill.
const (
	backoffBase = 2 * netsim.Millisecond
	backoffCap  = 64 * netsim.Millisecond
)

// backoffDelay returns the pause before the retry that will spend the
// given remaining budget, doubling per attempt already burned.
func backoffDelay(budget int) netsim.Time {
	d := backoffBase
	for burned := DefaultRetries - budget; burned > 0 && d < backoffCap; burned-- {
		d *= 2
	}
	return min(d, backoffCap)
}

// Counter is an end-host handle onto a shared SRAM tally reachable
// through probes toward (dstMAC, dstIP); the counter lives at addr on
// every switch along the path, gated to one switch by CEXEC.
type Counter struct {
	prober   *endhost.Prober
	dstMAC   core.MAC
	dstIP    uint32
	addr     mem.Addr
	switchID uint32
	proto    Protocol

	// Retries counts CSTORE conflicts that forced another round trip.
	Retries uint64
	// Failures counts Adds abandoned after DefaultRetries conflicts.
	Failures uint64
	// Inconclusive counts echoes that came back without having
	// executed at the gated switch (throttled or stripped en route);
	// each one is retried rather than trusted.
	Inconclusive uint64

	// Poll bookkeeping: the last value/epoch pair observed, so deltas
	// survive a switch crash-restart wiping the tally back to zero.
	lastValue uint32
	lastEpoch uint32
	polled    bool
	// Discontinuities counts Polls that found the counter re-based —
	// the switch rebooted (epoch bump) or the value ran backwards.
	Discontinuities uint64
}

// NewCounter builds a handle for the tally at SRAM address addr on the
// switch with the given id, along the path toward (dstMAC, dstIP).
func NewCounter(prober *endhost.Prober, dstMAC core.MAC, dstIP uint32,
	switchID uint32, addr mem.Addr, proto Protocol) *Counter {
	return &Counter{prober: prober, dstMAC: dstMAC, dstIP: dstIP,
		addr: addr, switchID: switchID, proto: proto}
}

// Add increments the shared counter by n; done (optional) runs with the
// value the counter held after this update was applied (or the last
// observed value if the update was abandoned).
func (c *Counter) Add(n uint32, done func(uint32)) {
	c.read(func(old, _ uint32) { c.attempt(old, n, DefaultRetries, done) })
}

// read fetches the current value and the switch's boot epoch in one
// gated TPP.
//
//	CEXEC [Switch:SwitchID], 0xFFFFFFFF, $switchID
//	LOAD  [addr], [Packet:2]
//	LOAD  [Switch:Epoch], [Packet:3]
func (c *Counter) read(fn func(value, epoch uint32)) {
	c.readRetry(DefaultRetries, fn)
}

// readRetry issues the read probe, retrying up to budget times when
// the echo shows the program never executed at the gated switch (both
// result slots still hold the sentinel).  An exhausted budget drops
// the read silently: the caller's next cycle re-reads anyway.
func (c *Counter) readRetry(budget int, fn func(value, epoch uint32)) {
	tpp := core.NewTPP(core.AddrStack, []core.Instruction{
		{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
		{Op: core.OpLOAD, A: uint16(c.addr), B: 2},
		{Op: core.OpLOAD, A: uint16(mem.SwitchBase + mem.SwitchEpoch), B: 3},
	}, 4)
	tpp.SetWord(0, 0xFFFFFFFF)
	tpp.SetWord(1, c.switchID)
	tpp.SetWord(2, unexecuted)
	tpp.SetWord(3, unexecuted)
	c.prober.Probe(c.dstMAC, c.dstIP, tpp, func(e *core.TPP) {
		if e.Word(2) == unexecuted && e.Word(3) == unexecuted {
			c.Inconclusive++
			if budget > 1 {
				c.prober.After(backoffDelay(budget), func() {
					c.readRetry(budget-1, fn)
				})
			}
			return
		}
		fn(e.Word(2), e.Word(3))
	})
}

// Poll reads the counter and reports the change since the previous
// Poll.  A switch crash-restart wipes the tally back to zero; without
// the epoch word a poller would compute a large negative delta and
// corrupt any rate estimate built on it.  Poll instead flags the
// discontinuity: discont is true (and the delta re-based to the
// increments accumulated since the wipe) whenever the boot epoch
// changed — or, belt-and-braces, whenever the value ran backwards.
// The first Poll establishes the baseline with discont == false.
func (c *Counter) Poll(fn func(value uint32, delta int64, discont bool)) {
	c.read(func(value, epoch uint32) {
		first := !c.polled
		discont := !first && (epoch != c.lastEpoch || value < c.lastValue)
		var delta int64
		switch {
		case first:
			delta = 0
		case discont:
			c.Discontinuities++
			delta = int64(value)
		default:
			delta = int64(value) - int64(c.lastValue)
		}
		c.polled = true
		c.lastValue = value
		c.lastEpoch = epoch
		if fn != nil {
			fn(value, delta, discont)
		}
	})
}

func (c *Counter) attempt(old, n uint32, budget int, done func(uint32)) {
	switch c.proto {
	case Atomic:
		// CEXEC gate, then CSTORE(addr, cond=old, src=old+n); the
		// switch writes the observed old value into the result slot,
		// which tells us whether we won.
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
			{Op: core.OpCSTORE, A: uint16(c.addr), B: 2},
		}, 5)
		tpp.SetWord(0, 0xFFFFFFFF)
		tpp.SetWord(1, c.switchID)
		tpp.SetWord(2, old)   // cond
		tpp.SetWord(3, old+n) // src
		tpp.SetWord(4, unexecuted)
		c.prober.Probe(c.dstMAC, c.dstIP, tpp, func(e *core.TPP) {
			observed := e.Word(4)
			if observed == unexecuted {
				// The CSTORE never ran at the gated switch (throttled
				// or stripped en route): the attempt is inconclusive,
				// not lost — retry with the same expected value.
				c.Inconclusive++
				if budget <= 1 {
					c.Failures++
					if done != nil {
						done(old)
					}
					return
				}
				c.prober.After(backoffDelay(budget), func() {
					c.attempt(old, n, budget-1, done)
				})
				return
			}
			if observed == old {
				if done != nil {
					done(old + n)
				}
				return
			}
			// Lost the race: retry from the freshly observed value.
			c.Retries++
			if budget <= 1 {
				c.Failures++
				if done != nil {
					done(observed)
				}
				return
			}
			c.attempt(observed, n, budget-1, done)
		})
	case Racy:
		// Blind STORE of old+n: concurrent updates are silently lost.
		tpp := core.NewTPP(core.AddrStack, []core.Instruction{
			{Op: core.OpCEXEC, A: uint16(mem.SwitchBase + mem.SwitchID), B: 0},
			{Op: core.OpSTORE, A: uint16(c.addr), B: 2},
		}, 3)
		tpp.SetWord(0, 0xFFFFFFFF)
		tpp.SetWord(1, c.switchID)
		tpp.SetWord(2, old+n)
		c.prober.Probe(c.dstMAC, c.dstIP, tpp, func(e *core.TPP) {
			if done != nil {
				done(old + n)
			}
		})
	}
}
