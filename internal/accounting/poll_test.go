package accounting

import (
	"testing"

	"repro/internal/netsim"
)

// TestPollFlagsRebootDiscontinuity: a switch crash-restart zeroes the
// SRAM tally; the next Poll must report a flagged, re-based delta (the
// increments since the wipe) instead of the garbage negative delta a
// naive last-minus-current poller would compute.
func TestPollFlagsRebootDiscontinuity(t *testing.T) {
	f := setup(t)
	c := NewCounter(f.probers[0], f.target.MAC, f.target.IP, f.sw.ID(), f.addr, Atomic)

	type sample struct {
		value   uint32
		delta   int64
		discont bool
	}
	var polls []sample
	poll := func() sample {
		n := len(polls)
		c.Poll(func(value uint32, delta int64, discont bool) {
			polls = append(polls, sample{value, delta, discont})
		})
		f.sim.RunUntil(f.sim.Now() + 10*netsim.Millisecond)
		if len(polls) != n+1 {
			t.Fatal("poll echo never arrived")
		}
		return polls[n]
	}
	add := func(n uint32) {
		c.Add(n, nil)
		f.sim.RunUntil(f.sim.Now() + 10*netsim.Millisecond)
	}

	// Baseline, then a normal delta.
	if s := poll(); s.value != 0 || s.delta != 0 || s.discont {
		t.Fatalf("first poll = %+v, want {0 0 false}", s)
	}
	add(40)
	if s := poll(); s.value != 40 || s.delta != 40 || s.discont {
		t.Fatalf("steady poll = %+v, want {40 40 false}", s)
	}

	// Crash: the tally resets to zero and the epoch bumps.  Post-crash
	// increments accumulate from zero.
	f.sw.Reboot(netsim.Millisecond)
	f.sim.RunUntil(f.sim.Now() + 5*netsim.Millisecond)
	add(7)

	s := poll()
	if !s.discont {
		t.Fatalf("reboot not flagged: %+v", s)
	}
	if s.delta < 0 {
		t.Fatalf("poll reported a negative delta across the reboot: %+v", s)
	}
	if s.value != 7 || s.delta != 7 {
		t.Fatalf("re-based poll = %+v, want value 7, delta 7", s)
	}
	if c.Discontinuities != 1 {
		t.Fatalf("Discontinuities = %d, want 1", c.Discontinuities)
	}

	// Back to steady state: the next poll is ordinary again.
	add(3)
	if s := poll(); s.value != 10 || s.delta != 3 || s.discont {
		t.Fatalf("post-recovery poll = %+v, want {10 3 false}", s)
	}
}
