// Package stats provides the small statistical utilities the
// experiment harnesses share: streaming mean/variance (Welford) and a
// sampling histogram with quantile queries, used for the per-hop
// queueing-latency breakdowns of §2.1 ("a detailed breakdown of
// queueing latencies on all network hops").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min and Max return the extremes (0 with no observations).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation.
func (w *Welford) Max() float64 { return w.max }

// Histogram collects samples for quantile queries.  It keeps the raw
// samples (experiments are bounded), sorting lazily.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.samples = append(h.samples, x)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Quantile returns the q-quantile (0 <= q <= 1) by linear
// interpolation; it panics on an out-of-range q and returns 0 when
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	pos := q * float64(len(h.samples)-1)
	lo := int(pos)
	if lo == len(h.samples)-1 {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[lo+1]*frac
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range h.samples {
		sum += x
	}
	return sum / float64(len(h.samples))
}

// Summary formats N, mean, p50, p99 and max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Quantile(1))
}
