package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*5 + 10
		w.Add(xs[i])
	}
	// Direct mean/variance.
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	variance := ss / float64(len(xs)-1)

	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %v vs %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance) > 1e-6 {
		t.Fatalf("var %v vs %v", w.Var(), variance)
	}
	if w.Min() != mn || w.Max() != mx {
		t.Fatal("min/max wrong")
	}
	if w.N() != 1000 || w.Std() <= 0 {
		t.Fatal("N/Std wrong")
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("empty Welford not zero")
	}
	w.Add(7)
	if w.Mean() != 7 || w.Var() != 0 || w.Min() != 7 || w.Max() != 7 {
		t.Fatal("single observation wrong")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 0.5: 50.5, 1: 100}
	for q, want := range cases {
		if got := h.Quantile(q); math.Abs(got-want) > 0.01 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
}

func TestHistogramInterleavedAddQuery(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Quantile(0.5)
	h.Add(0) // must re-sort after a post-query Add
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %v after interleaved add", got)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range quantile did not panic")
		}
	}()
	h.Add(1)
	h.Quantile(1.5)
}

// Property: quantiles are monotone in q.
func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64, qa, qb float64) bool {
		qa = math.Abs(qa)
		qb = math.Abs(qb)
		qa -= math.Floor(qa)
		qb -= math.Floor(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		r := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 50; i++ {
			h.Add(r.Float64() * 100)
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryFormat(t *testing.T) {
	var h Histogram
	h.Add(1)
	h.Add(2)
	s := h.Summary()
	for _, want := range []string{"n=2", "mean=1.5", "p50=", "p99=", "max=2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary %q missing %q", s, want)
		}
	}
}
