package inband

import (
	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/endhost"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/tcpu"
)

// CollectorConfig wires a Collector to the window it sweeps.
type CollectorConfig struct {
	Prober *endhost.Prober
	DstMAC core.MAC
	// DstIP is a host beyond the histogram's switch, so sweep probes
	// transit it and echo back.
	DstIP uint32
	Spec  HistSpec
	// InsLimit is the device instruction limit that sizes sweep chunks
	// (tcpu.DefaultMaxInstructions when zero).
	InsLimit int
	// Metrics (optional) registers inband/<Name>/* counters; Tracer
	// (optional) receives one StageSweep span per completed sweep.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Name defaults to "collector".
	Name string
	// Now supplies span/series timestamps (the simulation clock).
	Now func() int64
}

// SweepPoint is one completed sweep in the collector's time series.
type SweepPoint struct {
	AtNs    int64
	Seq     uint64
	Folded  uint64
	Discont bool
}

// Collector periodically sweeps a dataplane histogram window with
// gated chunk TPPs (each chunk reads its words and the switch's boot
// epoch atomically in one execution) and folds the sweeps through an
// agent.RegionPoller into host-side obs.Histogram accumulations.  A
// crash-wiped window re-bases instead of going negative, with the same
// discontinuity semantics as accounting.Counter.Poll; what a wipe
// destroyed stays in the cumulative histogram, captured by whichever
// sweeps ran before the crash.
type Collector struct {
	cfg     CollectorConfig
	offsets []int // first bucket index of each chunk
	sizes   []int // word count of each chunk
	poller  *agent.RegionPoller
	cum     *obs.Histogram

	seq      uint64
	inFlight bool

	// Series is the per-sweep time series.  Incomplete counts chunks
	// dropped because their probe was lost or never executed at the
	// gated switch; the next sweep re-reads those words.
	Series     []SweepPoint
	Incomplete uint64

	mSweeps, mFolded, mDiscont, mIncomplete *obs.Counter
}

// NewCollector builds a collector; chunking is fixed at construction.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Name == "" {
		cfg.Name = "collector"
	}
	if cfg.InsLimit <= 0 {
		cfg.InsLimit = tcpu.DefaultMaxInstructions
	}
	c := &Collector{
		cfg:    cfg,
		poller: agent.NewRegionPoller(cfg.Spec.Buckets),
		cum:    obs.NewHistogram(),
	}
	per := endhost.GatedChunkWords(cfg.InsLimit)
	for off := 0; off < cfg.Spec.Buckets; off += per {
		n := min(per, cfg.Spec.Buckets-off)
		c.offsets = append(c.offsets, off)
		c.sizes = append(c.sizes, n)
	}
	if cfg.Metrics != nil {
		pre := "inband/" + cfg.Name + "/"
		c.mSweeps = cfg.Metrics.Counter(pre + "sweeps")
		c.mFolded = cfg.Metrics.Counter(pre + "folded")
		c.mDiscont = cfg.Metrics.Counter(pre + "discontinuities")
		c.mIncomplete = cfg.Metrics.Counter(pre + "incomplete_chunks")
	}
	return c
}

// Sweep launches one sweep: a ProbeGroup of gated chunk reads.  It
// reports whether the sweep was launched — false while the previous
// sweep is still resolving (the periodic caller just skips a beat) or
// when no probe could be sent at all.
func (c *Collector) Sweep() bool {
	if c.inFlight {
		return false
	}
	tpps := make([]*core.TPP, len(c.offsets))
	for k, off := range c.offsets {
		addrs := make([]mem.Addr, c.sizes[k])
		for j := range addrs {
			addrs[j] = c.cfg.Spec.BucketAddr(off + j)
		}
		tpp, err := endhost.GatedChunkProgram(c.cfg.Spec.SwitchID, addrs, c.cfg.InsLimit)
		if err != nil {
			return false // impossible by construction
		}
		tpps[k] = tpp
	}
	c.inFlight = true
	ok := c.cfg.Prober.ProbeGroup(c.cfg.DstMAC, c.cfg.DstIP, tpps, c.fold)
	if !ok {
		c.inFlight = false
	}
	return ok
}

// fold applies one resolved sweep group.
func (c *Collector) fold(echoes []*core.TPP) {
	c.inFlight = false
	var folded uint64
	discont := false
	for k, e := range echoes {
		if e == nil {
			c.Incomplete++
			c.mIncomplete.Inc()
			continue
		}
		epoch, vals, ok := endhost.DecodeGatedChunk(e, c.sizes[k])
		if !ok {
			c.Incomplete++
			c.mIncomplete.Inc()
			continue
		}
		deltas, d := c.poller.Fold(c.offsets[k], epoch, vals)
		if d {
			discont = true
		}
		for j, dv := range deltas {
			if dv != 0 {
				c.cum.ObserveBucket(c.offsets[k]+j, dv)
				folded += dv
			}
		}
	}
	c.seq++
	c.mSweeps.Inc()
	c.mFolded.Add(folded)
	if discont {
		c.mDiscont.Inc()
	}
	var at int64
	if c.cfg.Now != nil {
		at = c.cfg.Now()
	}
	c.Series = append(c.Series, SweepPoint{AtNs: at, Seq: c.seq, Folded: folded, Discont: discont})
	c.cfg.Tracer.Record(obs.SpanEvent{
		At: at, Node: c.cfg.Spec.SwitchID, Stage: obs.StageSweep,
		A: c.seq, B: folded,
	})
}

// Sweeps returns how many sweeps have completed (resolved and folded).
func (c *Collector) Sweeps() uint64 { return c.seq }

// Discontinuities returns how many word re-basings the sweeps observed.
func (c *Collector) Discontinuities() uint64 { return c.poller.Discontinuities }

// CurrentBucket returns bucket i as of the last sweep that read it —
// the accumulation within the switch's current boot epoch, i.e. what
// the SRAM word held.
func (c *Collector) CurrentBucket(i int) uint32 { return c.poller.Current(i) }

// CumulativeBucket returns everything ever folded for bucket i, across
// wipes; never less than CurrentBucket.
func (c *Collector) CumulativeBucket(i int) uint64 { return c.poller.Cumulative(i) }

// Cumulative returns the across-wipes histogram accumulation.
func (c *Collector) Cumulative() *obs.Histogram { return c.cum }

// Current materializes the current-epoch view as a histogram.
func (c *Collector) Current() *obs.Histogram {
	h := obs.NewHistogram()
	for i := 0; i < c.cfg.Spec.Buckets; i++ {
		h.ObserveBucket(i, uint64(c.poller.Current(i)))
	}
	return h
}
